package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke compiles and executes the example end to end, asserting
// it succeeds and prints the golden result lines.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"triangles (serial count)",
		"sqrt(m/q) LB",
		"three-round census (find -> per-node counts -> histogram):",
		"nodes in >=1 triangle:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
