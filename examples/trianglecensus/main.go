// Triangle census: the social-network-analysis workload of Section 4.2.
// A sparse random graph stands in for a friendship network; the partition
// algorithm counts its triangles at several parallelism levels, showing
// the measured replication rate rise as the reducer size shrinks, against
// the paper's sparse lower bound √(m/q).
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"repro/internal/graphs"
	"repro/internal/mr"
	"repro/internal/triangle"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const (
		n = 400
		m = 6000
	)
	rng := rand.New(rand.NewSource(7))
	g := graphs.GNM(n, m, rng)
	serial := g.TriangleCount()
	fmt.Fprintf(w, "network: %s, %d triangles (serial count)\n\n", g, serial)

	fmt.Fprintf(w, "%4s %10s %12s %14s %12s %10s\n",
		"k", "max q", "r measured", "sqrt(m/q) LB", "reducers", "count")
	for _, k := range []int{2, 4, 8, 12, 16} {
		schema, err := triangle.NewPartitionSchema(n, k)
		if err != nil {
			return err
		}
		count, met, err := triangle.Count(schema, g, mr.Config{Workers: 4})
		if err != nil {
			return err
		}
		if count != serial {
			return fmt.Errorf("k=%d: count %d != serial %d", k, count, serial)
		}
		lb := triangle.SparseLowerBound(g.M(), float64(met.MaxReducerInput))
		fmt.Fprintf(w, "%4d %10d %12.2f %14.2f %12d %10d\n",
			k, met.MaxReducerInput, met.ReplicationRate(), lb, met.Reducers, count)
	}

	fmt.Fprintln(w, "\nmore parallelism (larger k) shrinks reducers but multiplies the")
	fmt.Fprintln(w, "communication — the replication rate tracks k while the bound grows as √(m/q).")

	// The Section 4.2 target-q rescaling: how many *possible* edges a
	// reducer may be assigned so that the expected number of actual edges
	// stays at q.
	q := 200.0
	fmt.Fprintf(w, "\nSection 4.2 rescaling at q=%.0f actual edges: target q_t = q·n(n-1)/2m = %.0f possible edges\n",
		q, triangle.TargetQ(q, n, m))

	// The full three-round census on the engine's multi-round API:
	// find triangles, count per node, histogram the counts — with the
	// per-round communication meters coming from the real exchange.
	schema, err := triangle.NewPartitionSchema(n, 8)
	if err != nil {
		return err
	}
	census, err := triangle.Census(schema, g, mr.Config{Workers: 4})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthree-round census (find -> per-node counts -> histogram):")
	for _, round := range census.Pipeline.Rounds {
		fmt.Fprintf(w, "  %-28s %s\n", round.Name+":", round.Metrics.LogicalString())
	}
	fmt.Fprintf(w, "  nodes in >=1 triangle: %d; distribution of per-node triangle counts:\n", len(census.PerNode))
	shown := 0
	for _, b := range census.Bins {
		if shown == 6 {
			fmt.Fprintf(w, "    ... %d more bins\n", len(census.Bins)-shown)
			break
		}
		fmt.Fprintf(w, "    %3d triangles x %4d nodes\n", b.Triangles, b.Nodes)
		shown++
	}
	return nil
}
