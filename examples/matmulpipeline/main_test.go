package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke compiles and executes the example end to end, asserting
// it succeeds and prints the golden result lines.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"multiplying 60x60 matrices with reducer budget q = 240",
		"one-phase  (s=2):",
		"two-phase wins, as Section 6.3 proves.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
