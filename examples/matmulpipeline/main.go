// Matrix pipeline: the Section 6.3 head-to-head. Multiplies two n×n
// matrices with the one-phase tiling algorithm and the two-phase
// (multiply, then regroup-and-sum) algorithm at the same reducer size,
// printing the live communication meters of every round, and verifies
// both products against the serial baseline.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"repro/internal/matmul"
	"repro/internal/mr"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const n = 60
	rng := rand.New(rand.NewSource(8))
	a := matmul.Random(n, n, rng)
	b := matmul.Random(n, n, rng)
	want := a.Mul(b)

	// Reducer budget q = 2·s·n for the one-phase algorithm with s = 2.
	one, err := matmul.NewOnePhaseSchema(n, 2)
	if err != nil {
		return err
	}
	q := one.ReducerSize()
	fmt.Fprintf(w, "multiplying %dx%d matrices with reducer budget q = %d\n\n", n, n, q)

	p1, met1, err := matmul.RunOnePhase(a, b, one, mr.Config{Workers: 4})
	if err != nil {
		return err
	}
	if !matmul.Equal(p1, want, 1e-9) {
		return errors.New("one-phase product wrong")
	}
	fmt.Fprintf(w, "one-phase  (s=%d):          %s\n", one.S, met1.LogicalString())

	// Two-phase with the Lagrange-optimal 2:1 tiles: 2·s·t = q,
	// s = 2t ⇒ t = √(q/4). q = 240 ⇒ t ≈ 7.75; use the divisors of n
	// closest to the optimum: s = 12, t = 10 (q = 240).
	two, err := matmul.NewTwoPhaseSchema(n, 12, 10)
	if err != nil {
		return err
	}
	if two.ReducerSize() != q {
		return fmt.Errorf("tile mismatch: q = %d", two.ReducerSize())
	}
	p2, pipe, err := matmul.RunTwoPhase(a, b, two, mr.Config{Workers: 4})
	if err != nil {
		return err
	}
	if !matmul.Equal(p2, want, 1e-9) {
		return errors.New("two-phase product wrong")
	}
	for _, r := range pipe.Rounds {
		fmt.Fprintf(w, "two-phase  %-16s %s\n", r.Name+":", r.Metrics.LogicalString())
	}

	fmt.Fprintf(w, "\ntotal communication: one-phase %d pairs, two-phase %d pairs\n",
		met1.PairsEmitted, pipe.TotalPairsEmitted())
	fmt.Fprintf(w, "closed forms:        4n^4/q = %.0f,   4n^3/sqrt(q) = %.0f\n",
		matmul.OnePhaseCommunication(n, float64(q)), matmul.TwoPhaseCommunication(n, float64(q)))
	fmt.Fprintf(w, "crossover at q = n^2 = %.0f: with q = %d << n^2, two-phase wins, as Section 6.3 proves.\n",
		matmul.CrossoverQ(n), q)
	return nil
}
