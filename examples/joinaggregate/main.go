// Join + aggregation: the Section 7.1 open-problem workload ("SQL
// statements that require two phases of map-reduce, e.g., joins followed
// by aggregations"), explored along the lines of the two-phase matrix
// multiplication of Section 6.3.
//
// The query is SELECT A, SUM(C) FROM R(A,B) JOIN S(B,C) ON B GROUP BY A.
// The naive plan ships every joined tuple to the round-2 aggregators; the
// pre-aggregating plan emits one partial sum per (round-1 reducer, A
// value) — the exact analogue of the partial-sum trick that makes
// two-phase matmul beat one-phase.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"repro/internal/mr"
	"repro/internal/problems"
	"repro/internal/relation"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	rng := rand.New(rand.NewSource(12))
	// A fact-style R joining a wide S: small A-domain, heavy join fan-out,
	// the regime where pre-aggregation matters most.
	r := relation.New("R", "A", "B")
	for i := 0; i < 2000; i++ {
		r.Add(rng.Intn(20), rng.Intn(50)) // 20 groups, 50 join keys
	}
	s := relation.New("S", "B", "C")
	for i := 0; i < 2000; i++ {
		s.Add(rng.Intn(50), rng.Intn(100))
	}
	want := problems.SerialJoinAggregate(r, s)
	fmt.Fprintf(w, "query: SELECT A, SUM(C) FROM R JOIN S ON B GROUP BY A\n")
	fmt.Fprintf(w, "R: %d tuples, S: %d tuples, %d result groups\n\n", r.Size(), s.Size(), len(want))

	const k = 8 // join buckets
	naive, err := problems.RunJoinAggregateNaive(r, s, k, mr.Config{Workers: 4})
	if err != nil {
		return err
	}
	pre, err := problems.RunJoinAggregatePreAgg(r, s, k, mr.Config{Workers: 4})
	if err != nil {
		return err
	}

	show := func(name string, res problems.JoinAggregateResult) {
		fmt.Fprintf(w, "%s:\n", name)
		for _, round := range res.Pipeline.Rounds {
			fmt.Fprintf(w, "  %-22s %s\n", round.Name+":", round.Metrics.LogicalString())
		}
		fmt.Fprintf(w, "  total communication: %d pairs\n\n", res.Pipeline.TotalPairsEmitted())
	}
	show("naive (join, then aggregate everything)", naive)
	show("pre-aggregated (Section 6.3's partial-sum trick)", pre)

	if fmt.Sprint(naive.Sums) != fmt.Sprint(want) || fmt.Sprint(pre.Sums) != fmt.Sprint(want) {
		return errors.New("strategies disagree with the serial result")
	}
	saved := naive.Pipeline.TotalPairsEmitted() - pre.Pipeline.TotalPairsEmitted()
	fmt.Fprintf(w, "both plans agree with the serial result; pre-aggregation saved %d pairs (%.0f%% of round 2)\n",
		saved, 100*float64(saved)/float64(naive.Pipeline.Rounds[1].Metrics.PairsEmitted))

	// One round further on the engine's multi-round API: ORDER BY SUM(C)
	// DESC LIMIT 5 as a third round, whose combiner caps each map task's
	// contribution at the top 5 candidates.
	const topN = 5
	top, pipe, err := problems.RunJoinAggregateTopK(r, s, k, topN, mr.Config{Workers: 4, MapChunk: 4})
	if err != nil {
		return err
	}
	wantTop := problems.SerialTopK(r, s, topN)
	if fmt.Sprint(top) != fmt.Sprint(wantTop) {
		return errors.New("top-k disagrees with the serial result")
	}
	fmt.Fprintf(w, "\nthree-round plan (... ORDER BY SUM(C) DESC LIMIT %d):\n", topN)
	for _, round := range pipe.Rounds {
		fmt.Fprintf(w, "  %-22s %s\n", round.Name+":", round.Metrics.LogicalString())
	}
	for i, g := range top {
		fmt.Fprintf(w, "  #%d  A=%-3d SUM(C)=%d\n", i+1, g.A, g.Sum)
	}
	return nil
}
