package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke compiles and executes the example end to end, asserting
// it succeeds and prints the golden result lines.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"query: SELECT A, SUM(C) FROM R JOIN S ON B GROUP BY A",
		"both plans agree with the serial result",
		"three-round plan (... ORDER BY SUM(C) DESC LIMIT 5):",
		"#1  A=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
