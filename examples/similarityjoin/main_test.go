package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke compiles and executes the example end to end, asserting
// it succeeds and prints the golden result lines.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"corpus: 3000 distinct 16-bit signatures (120 planted clusters)",
		"Ball-2:",
		"Splitting-2:",
		"both algorithms agree with the brute-force join.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
