// Similarity join: the fuzzy-join workload that motivates Section 3 of
// the paper (and its reference [3]). A corpus of documents is reduced to
// 16-bit signatures; near-duplicates are pairs of signatures within
// Hamming distance 2. The example runs both distance-2 algorithms from
// Section 3.6 — Ball-2 and generalized Splitting — on the same corpus and
// compares their communication profiles, then cross-checks against the
// brute-force join.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"repro/internal/hamming"
	"repro/internal/mr"
)

const (
	bits       = 16
	corpusSize = 3000
	clusters   = 120 // near-duplicate families in the corpus
)

// corpus synthesizes signatures with planted near-duplicates: cluster
// centers plus 1-2 bit perturbations, the typical shape of a fuzzy-join
// input.
func corpus(rng *rand.Rand) []uint64 {
	seen := make(map[uint64]bool)
	var sigs []uint64
	add := func(x uint64) {
		if !seen[x] {
			seen[x] = true
			sigs = append(sigs, x)
		}
	}
	for c := 0; c < clusters; c++ {
		center := uint64(rng.Intn(1 << bits))
		add(center)
		for v := 0; v < 4; v++ {
			perturbed := center
			flips := 1 + rng.Intn(2)
			for f := 0; f < flips; f++ {
				perturbed ^= 1 << uint(rng.Intn(bits))
			}
			add(perturbed)
		}
	}
	for len(sigs) < corpusSize {
		add(uint64(rng.Intn(1 << bits)))
	}
	return sigs
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	rng := rand.New(rand.NewSource(99))
	sigs := corpus(rng)
	fmt.Fprintf(w, "corpus: %d distinct %d-bit signatures (%d planted clusters)\n",
		len(sigs), bits, clusters)

	want := hamming.BruteForcePairs(sigs, 2)
	fmt.Fprintf(w, "brute force: %d near-duplicate pairs (distance <= 2)\n\n", len(want))

	// Algorithm 1: Ball-2 — one reducer per string, q = b+1, r = b+1.
	ball := hamming.NewBallSchema(bits)
	pairsBall, metBall, err := hamming.RunBall(ball, sigs, mr.Config{Workers: 4})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ball-2:        r = %5.1f   pairs shuffled = %7d   max reducer = %3d   found %d pairs\n",
		metBall.ReplicationRate(), metBall.PairsShuffled, metBall.MaxReducerInput, len(pairsBall))

	// Algorithm 2: generalized Splitting with c = 8 segments, d = 2:
	// r = C(8,2) = 28 but far fewer, larger reducers.
	schema, err := hamming.NewSplittingDSchema(bits, 8, 2)
	if err != nil {
		return err
	}
	pairsSplit, metSplit, err := hamming.RunSplittingD(schema, sigs, mr.Config{Workers: 4})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Splitting-2:   r = %5.1f   pairs shuffled = %7d   max reducer = %3d   found %d pairs\n",
		metSplit.ReplicationRate(), metSplit.PairsShuffled, metSplit.MaxReducerInput, len(pairsSplit))

	if len(pairsBall) != len(want) || len(pairsSplit) != len(want) {
		return fmt.Errorf("result mismatch: ball=%d split=%d want=%d", len(pairsBall), len(pairsSplit), len(want))
	}
	fmt.Fprintln(w, "\nboth algorithms agree with the brute-force join.")
	fmt.Fprintln(w, "tradeoff: Ball-2 pays less communication per input here but needs a reducer")
	fmt.Fprintln(w, "per string; Splitting-2 uses far fewer reducers at higher replication —")
	fmt.Fprintln(w, "exactly the parallelism/communication tradeoff the paper quantifies.")
	return nil
}
