// Quickstart: define a problem in the paper's model, validate a mapping
// schema against it, measure the replication rate, and execute the schema
// on the MapReduce engine.
//
// The problem here is the smallest interesting one: find all pairs of
// 8-bit strings at Hamming distance 1 (Section 3 of the paper), using the
// Splitting algorithm with c = 2 segments — replication rate exactly 2 at
// reducer size 2^{b/2} = 16.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/hamming"
	"repro/internal/mr"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const b = 8

	// 1. The problem: inputs are all 2^b strings, outputs are pairs at
	//    Hamming distance 1.
	problem := hamming.NewProblem(b)
	fmt.Fprintf(w, "problem %s: |I| = %d, |O| = %d\n",
		problem.Name(), problem.NumInputs(), problem.NumOutputs())

	// 2. A mapping schema: Splitting with c = 2 (each string keyed by
	//    each half with the other half removed).
	schema, err := hamming.NewSplittingSchema(b, 2)
	if err != nil {
		return err
	}

	// 3. Validate the paper's two constraints: reducer size <= q and
	//    every output covered by some reducer.
	q := schema.ReducerSize()
	if err := core.Validate(problem, schema, q); err != nil {
		return fmt.Errorf("schema invalid: %w", err)
	}
	stats := core.Measure(problem, schema)
	fmt.Fprintf(w, "schema valid: %d reducers, q = %d, replication rate r = %.2f\n",
		stats.NumReducers, stats.MaxReducerLoad, stats.ReplicationRate)
	fmt.Fprintf(w, "lower bound at this q: r >= b/log2(q) = %.2f (Theorem 3.2) — matched exactly\n",
		hamming.LowerBound(b, float64(q)))

	// 4. Execute it for real on the MapReduce engine over the full
	//    universe of strings.
	inputs := make([]uint64, problem.NumInputs())
	for i := range inputs {
		inputs[i] = uint64(i)
	}
	pairs, metrics, err := hamming.RunSplitting(schema, inputs, mr.Config{Workers: 4})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "engine run: %s\n", metrics.LogicalString())
	fmt.Fprintf(w, "found %d distance-1 pairs (expected %d)\n", len(pairs), problem.NumOutputs())
	fmt.Fprintf(w, "first three: %v %v %v\n", pairs[0], pairs[1], pairs[2])
	return nil
}
