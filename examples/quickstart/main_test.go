package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke compiles and executes the example end to end, asserting
// it succeeds and prints the golden result lines.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"problem hamming(b=8,d=1): |I| = 256, |O| = 1024",
		"replication rate r = 2.00",
		"found 1024 distance-1 pairs (expected 1024)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
