// Package repro holds the top-level benchmark harness: one benchmark per
// table and figure of the paper (see DESIGN.md's experiment index E1–E10),
// plus ablation benches for the design choices DESIGN.md calls out. Each
// benchmark executes the real algorithms and reports the paper's metrics —
// replication rate (pairs/input) and communication (pairs) — via
// b.ReportMetric, so `go test -bench=.` regenerates the quantitative
// content of the paper alongside wall-clock costs.
package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/hamming"
	"repro/internal/join"
	"repro/internal/matmul"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/subgraph"
	"repro/internal/triangle"
)

func allStrings(b int) []uint64 {
	xs := make([]uint64, bitstr.Universe(b))
	for i := range xs {
		xs[i] = uint64(i)
	}
	return xs
}

// BenchmarkTable1Recipes (E1) evaluates every lower-bound recipe of
// Table 1, including the numeric monotonicity verification the recipe
// requires.
func BenchmarkTable1Recipes(b *testing.B) {
	recipes := []core.Recipe{
		hamming.Recipe(16),
		triangle.Recipe(100),
		subgraph.TwoPathRecipe(100),
		matmul.Recipe(64),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rc := range recipes {
			_ = rc.LowerBound(256)
			_ = rc.GOverQMonotone(2, 1<<16, 100)
		}
		_ = subgraph.AlonLowerBound(100, 4, 400)
		_ = join.LowerBound(10, 4, 2, 100)
	}
}

// BenchmarkTable2 (E2) runs each constructive algorithm once per
// iteration on its Table 2 instance and reports the measured replication
// rate as a custom metric.
func BenchmarkTable2(b *testing.B) {
	b.Run("hamming-splitting-b12-c3", func(b *testing.B) {
		inputs := allStrings(12)
		s, err := hamming.NewSplittingSchema(12, 3)
		if err != nil {
			b.Fatal(err)
		}
		var met mr.Metrics
		for i := 0; i < b.N; i++ {
			_, met, err = hamming.RunSplitting(s, inputs, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(met.ReplicationRate(), "r")
	})
	b.Run("triangles-k4-n60", func(b *testing.B) {
		g := graphs.Complete(60)
		s, err := triangle.NewPartitionSchema(60, 4)
		if err != nil {
			b.Fatal(err)
		}
		var met mr.Metrics
		for i := 0; i < b.N; i++ {
			_, met, err = triangle.Count(s, g, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(met.ReplicationRate(), "r")
	})
	b.Run("twopaths-k4-n48", func(b *testing.B) {
		g := graphs.Complete(48)
		s, err := subgraph.NewTwoPathSchema(48, 4)
		if err != nil {
			b.Fatal(err)
		}
		var met mr.Metrics
		for i := 0; i < b.N; i++ {
			_, met, err = subgraph.RunTwoPaths(s, g, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(met.ReplicationRate(), "r")
	})
	b.Run("chainjoin-N3-p16", func(b *testing.B) {
		rels := relation.FullChain(3, 8)
		s, err := join.OptimizeShares(rels, 16)
		if err != nil {
			b.Fatal(err)
		}
		var met mr.Metrics
		for i := 0; i < b.N; i++ {
			_, met, err = s.Run(mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(met.ReplicationRate(), "r")
	})
	b.Run("matmul-1phase-n32-s4", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		x := matmul.Random(32, 32, rng)
		y := matmul.Random(32, 32, rng)
		s, err := matmul.NewOnePhaseSchema(32, 4)
		if err != nil {
			b.Fatal(err)
		}
		var met mr.Metrics
		for i := 0; i < b.N; i++ {
			_, met, err = matmul.RunOnePhase(x, y, s, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(met.ReplicationRate(), "r")
	})
}

// BenchmarkFig1Splitting (E3) sweeps the Splitting algorithm across every
// c dividing b = 12, the dots of Figure 1.
func BenchmarkFig1Splitting(b *testing.B) {
	inputs := allStrings(12)
	for _, c := range []int{1, 2, 3, 4, 6, 12} {
		s, err := hamming.NewSplittingSchema(12, c)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			var met mr.Metrics
			for i := 0; i < b.N; i++ {
				_, met, err = hamming.RunSplitting(s, inputs, mr.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(met.ReplicationRate(), "r")
			b.ReportMetric(math.Log2(float64(met.MaxReducerInput)), "log2q")
		})
	}
}

// BenchmarkWeightPartition (E4) measures the Sections 3.4/3.5 algorithm
// on the structural model (replication and max cell).
func BenchmarkWeightPartition(b *testing.B) {
	for _, tc := range []struct{ b, d, k int }{
		{16, 2, 1}, {16, 2, 2}, {16, 2, 4}, {16, 4, 2},
	} {
		s, err := hamming.NewWeightSchema(tc.b, tc.k, tc.d)
		if err != nil {
			b.Fatal(err)
		}
		p := hamming.NewProblem(tc.b)
		b.Run(fmt.Sprintf("b=%d/d=%d/k=%d", tc.b, tc.d, tc.k), func(b *testing.B) {
			var st core.Stats
			for i := 0; i < b.N; i++ {
				st = core.Measure(p, s)
			}
			b.ReportMetric(st.ReplicationRate, "r")
			b.ReportMetric(float64(st.MaxReducerLoad), "maxq")
		})
	}
}

// BenchmarkHammingD (E5) runs the two distance-2 algorithms of
// Section 3.6.
func BenchmarkHammingD(b *testing.B) {
	inputs := allStrings(10)
	b.Run("ball2-b10", func(b *testing.B) {
		s := hamming.NewBallSchema(10)
		var met mr.Metrics
		var err error
		for i := 0; i < b.N; i++ {
			_, met, err = hamming.RunBall(s, inputs, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(met.ReplicationRate(), "r")
	})
	b.Run("splitting-b10-c5-d2", func(b *testing.B) {
		s, err := hamming.NewSplittingDSchema(10, 5, 2)
		if err != nil {
			b.Fatal(err)
		}
		var met mr.Metrics
		for i := 0; i < b.N; i++ {
			_, met, err = hamming.RunSplittingD(s, inputs, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(met.ReplicationRate(), "r")
	})
}

// BenchmarkTriangle (E6) covers the dense and sparse Section 4 workloads
// and the serial baseline.
func BenchmarkTriangle(b *testing.B) {
	b.Run("serial-n200-m3000", func(b *testing.B) {
		g := graphs.GNM(200, 3000, rand.New(rand.NewSource(2)))
		for i := 0; i < b.N; i++ {
			_ = g.TriangleCount()
		}
	})
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("dense-n60-k=%d", k), func(b *testing.B) {
			g := graphs.Complete(60)
			s, err := triangle.NewPartitionSchema(60, k)
			if err != nil {
				b.Fatal(err)
			}
			var met mr.Metrics
			for i := 0; i < b.N; i++ {
				_, met, err = triangle.Count(s, g, mr.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(met.ReplicationRate(), "r")
			b.ReportMetric(float64(met.MaxReducerInput), "maxq")
		})
		b.Run(fmt.Sprintf("sparse-n200-m3000-k=%d", k), func(b *testing.B) {
			g := graphs.GNM(200, 3000, rand.New(rand.NewSource(3)))
			s, err := triangle.NewPartitionSchema(200, k)
			if err != nil {
				b.Fatal(err)
			}
			var met mr.Metrics
			for i := 0; i < b.N; i++ {
				_, met, err = triangle.Count(s, g, mr.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(met.ReplicationRate(), "r")
			b.ReportMetric(float64(met.MaxReducerInput), "maxq")
		})
	}
}

// BenchmarkTwoPaths (E7) sweeps k for the Section 5.4 algorithm.
func BenchmarkTwoPaths(b *testing.B) {
	g := graphs.Complete(48)
	for _, k := range []int{1, 2, 4, 6} {
		s, err := subgraph.NewTwoPathSchema(48, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var met mr.Metrics
			for i := 0; i < b.N; i++ {
				_, met, err = subgraph.RunTwoPaths(s, g, mr.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(met.ReplicationRate(), "r")
		})
	}
}

// BenchmarkChainJoin and BenchmarkStarJoin (E8) run the Shares algorithm
// with optimized share vectors.
func BenchmarkChainJoin(b *testing.B) {
	for _, numRels := range []int{2, 3, 4} {
		rels := relation.FullChain(numRels, 8)
		s, err := join.OptimizeShares(rels, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", numRels), func(b *testing.B) {
			var met mr.Metrics
			for i := 0; i < b.N; i++ {
				_, met, err = s.Run(mr.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(met.ReplicationRate(), "r")
		})
	}
}

// BenchmarkStarJoin (E8) measures a fact-heavy star query.
func BenchmarkStarJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	fact, dims := relation.Star(2, 8, 500, 40, rng)
	query := append([]*relation.Relation{fact}, dims...)
	s, err := join.OptimizeShares(query, 16)
	if err != nil {
		b.Fatal(err)
	}
	var met mr.Metrics
	for i := 0; i < b.N; i++ {
		_, met, err = s.Run(mr.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(met.ReplicationRate(), "r")
}

// BenchmarkMatMul (E9) compares serial, one-phase, and two-phase at a
// fixed reducer budget, reporting total communication.
func BenchmarkMatMul(b *testing.B) {
	const n = 48
	rng := rand.New(rand.NewSource(5))
	x := matmul.Random(n, n, rng)
	y := matmul.Random(n, n, rng)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Mul(y)
		}
	})
	b.Run("onephase-q192", func(b *testing.B) {
		s, err := matmul.NewOnePhaseSchema(n, 2)
		if err != nil {
			b.Fatal(err)
		}
		var met mr.Metrics
		for i := 0; i < b.N; i++ {
			_, met, err = matmul.RunOnePhase(x, y, s, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(met.PairsEmitted), "comm")
	})
	b.Run("twophase-q192", func(b *testing.B) {
		s, err := matmul.NewTwoPhaseSchema(n, 24, 4)
		if err != nil {
			b.Fatal(err)
		}
		var pipe *mr.Pipeline
		for i := 0; i < b.N; i++ {
			var err error
			_, pipe, err = matmul.RunTwoPhase(x, y, s, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(pipe.TotalPairsEmitted()), "comm")
	})
}

// BenchmarkMatMulAspect is the DESIGN.md ablation: 2:1 vs square first-
// phase tiles at the same q (st = 18 on n = 36).
func BenchmarkMatMulAspect(b *testing.B) {
	const n = 36
	rng := rand.New(rand.NewSource(6))
	x := matmul.Random(n, n, rng)
	y := matmul.Random(n, n, rng)
	for _, tc := range []struct{ s, t int }{{6, 3}, {9, 2}, {3, 6}} {
		schema, err := matmul.NewTwoPhaseSchema(n, tc.s, tc.t)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("s=%d_t=%d", tc.s, tc.t), func(b *testing.B) {
			var pipe *mr.Pipeline
			for i := 0; i < b.N; i++ {
				var err error
				_, pipe, err = matmul.RunTwoPhase(x, y, schema, mr.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pipe.TotalPairsEmitted()), "comm")
		})
	}
}

// BenchmarkCostModel (E10) optimizes the Section 1.2 cluster cost.
func BenchmarkCostModel(b *testing.B) {
	m := core.CostModel{
		F: func(q float64) float64 { return 20 / math.Log2(q) },
		A: 1e4, B: 1,
	}
	var q float64
	for i := 0; i < b.N; i++ {
		q, _ = m.OptimalQ(2, 1<<20)
	}
	b.ReportMetric(q, "q*")
}

// BenchmarkTriangleEmitAll is the exactly-once ablation: duplicated
// emission plus driver-side dedup versus the bucket-multiset rule.
func BenchmarkTriangleEmitAll(b *testing.B) {
	g := graphs.GNM(100, 1500, rand.New(rand.NewSource(7)))
	s, err := triangle.NewPartitionSchema(100, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, emitAll := range []bool{false, true} {
		name := "exactly-once"
		if emitAll {
			name = "emit-all-dedup"
		}
		b.Run(name, func(b *testing.B) {
			var res triangle.Result
			for i := 0; i < b.N; i++ {
				res, err = triangle.Run(s, g, triangle.Options{EmitAll: emitAll})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Metrics.Outputs), "rawout")
		})
	}
}

// BenchmarkEngineWorkers is the runtime ablation: the same job at several
// worker-pool sizes.
func BenchmarkEngineWorkers(b *testing.B) {
	inputs := allStrings(14)
	s, err := hamming.NewSplittingSchema(14, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := hamming.RunSplitting(s, inputs, mr.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
