// Package textio reads and writes the library's data types in the plain
// text formats real workloads arrive in: whitespace-separated edge lists
// for graphs (the format of SNAP and most public network datasets) and
// tab-separated values for relations. It exists so the examples and the
// harness can run on a user's own data, not only on generators.
package textio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graphs"
	"repro/internal/relation"
)

// ReadGraph parses a whitespace-separated edge list ("u v" per line;
// blank lines and lines starting with '#' or '%' are ignored). Node ids
// are used as-is, with the graph sized to the largest id seen plus one —
// so WriteGraph followed by ReadGraph round-trips exactly (up to isolated
// trailing nodes). For datasets with large sparse ids, use
// ReadGraphCompact.
func ReadGraph(r io.Reader) (*graphs.Graph, error) {
	edges, maxID, err := readEdges(r, nil)
	if err != nil {
		return nil, err
	}
	return graphs.New(maxID+1, edges), nil
}

// ReadGraphCompact parses the same format but renumbers node ids densely
// to 0..n-1 in first-appearance order, returning the raw→dense mapping.
func ReadGraphCompact(r io.Reader) (*graphs.Graph, map[int]int, error) {
	compact := make(map[int]int)
	edges, _, err := readEdges(r, func(raw int) int {
		if c, ok := compact[raw]; ok {
			return c
		}
		c := len(compact)
		compact[raw] = c
		return c
	})
	if err != nil {
		return nil, nil, err
	}
	return graphs.New(len(compact), edges), compact, nil
}

// readEdges is the shared scanner; remap may be nil for identity ids.
func readEdges(r io.Reader, remap func(int) int) (edges []graphs.Edge, maxID int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	maxID = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("textio: line %d: want two node ids, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, 0, fmt.Errorf("textio: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, 0, fmt.Errorf("textio: line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, 0, fmt.Errorf("textio: line %d: negative node id", line)
		}
		if remap != nil {
			u, v = remap(u), remap(v)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, graphs.NewEdge(u, v))
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("textio: %w", err)
	}
	return edges, maxID, nil
}

// WriteGraph emits the graph as an edge list with a header comment.
func WriteGraph(w io.Writer, g *graphs.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N, g.M())
	for _, e := range g.Edges {
		fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// ReadRelation parses a TSV relation: the first non-comment line is the
// header "Name<TAB>Attr1<TAB>Attr2…", each following line one tuple of
// integers.
func ReadRelation(r io.Reader) (*relation.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rel *relation.Relation
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(text) == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if rel == nil {
			if len(fields) < 2 {
				return nil, fmt.Errorf("textio: line %d: header needs a name and at least one attribute", line)
			}
			rel = relation.New(fields[0], fields[1:]...)
			continue
		}
		if len(fields) != rel.Arity() {
			return nil, fmt.Errorf("textio: line %d: %d values for arity %d", line, len(fields), rel.Arity())
		}
		vals := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %v", line, err)
			}
			vals[i] = v
		}
		rel.Add(vals...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	if rel == nil {
		return nil, fmt.Errorf("textio: empty input")
	}
	return rel, nil
}

// WriteRelation emits the relation in the same TSV format ReadRelation
// accepts.
func WriteRelation(w io.Writer, rel *relation.Relation) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\t%s\n", rel.Name, strings.Join(rel.Attrs, "\t"))
	for _, t := range rel.Tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = strconv.Itoa(v)
		}
		fmt.Fprintln(bw, strings.Join(parts, "\t"))
	}
	return bw.Flush()
}
