package textio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graphs"
	"repro/internal/relation"
)

func TestReadGraphBasic(t *testing.T) {
	in := `# a comment
% another comment style

10 20
20 30
10 30
`
	g, compact, err := ReadGraphCompact(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 3 {
		t.Errorf("graph = %s, want 3 nodes 3 edges", g)
	}
	if g.TriangleCount() != 1 {
		t.Errorf("triangle count = %d, want 1", g.TriangleCount())
	}
	// First-appearance compaction: 10→0, 20→1, 30→2.
	if compact[10] != 0 || compact[20] != 1 || compact[30] != 2 {
		t.Errorf("compaction = %v", compact)
	}
}

func TestReadGraphErrors(t *testing.T) {
	for _, in := range []string{"1", "x y", "1 y", "-1 2"} {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("identity input %q should fail", in)
		}
		if _, _, err := ReadGraphCompact(strings.NewReader(in)); err == nil {
			t.Errorf("compact input %q should fail", in)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	orig := graphs.GNM(40, 150, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := WriteGraph(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != orig.M() {
		t.Fatalf("round trip changed shape: %s vs %s", got, orig)
	}
	for i, e := range orig.Edges {
		if got.Edges[i] != e {
			t.Fatalf("edge %d: %v vs %v", i, got.Edges[i], e)
		}
	}
}

func TestReadRelationBasic(t *testing.T) {
	in := "# comment\nR\tA\tB\n1\t2\n3\t4\n"
	rel, err := ReadRelation(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Name != "R" || rel.Arity() != 2 || rel.Size() != 2 {
		t.Errorf("relation = %v", rel)
	}
	if rel.Tuples[1][1] != 4 {
		t.Errorf("tuple = %v", rel.Tuples[1])
	}
}

func TestReadRelationErrors(t *testing.T) {
	for _, in := range []string{
		"",                  // empty
		"R\n1\n",            // header without attributes
		"R\tA\tB\n1\n",      // wrong arity
		"R\tA\tB\n1\tx\n",   // non-integer
		"R\tA\tB\n1\t2\t3;", // arity excess
	} {
		if _, err := ReadRelation(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestRelationRoundTrip(t *testing.T) {
	orig := relation.Random("T", 9, 50, rand.New(rand.NewSource(2)), "A", "B", "C")
	var buf bytes.Buffer
	if err := WriteRelation(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, orig) {
		t.Error("round trip changed the relation")
	}
}

// Property: any generated graph round-trips unchanged.
func TestPropertyGraphRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		orig := graphs.GNM(n, m, rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := WriteGraph(&buf, orig); err != nil {
			return false
		}
		got, err := ReadGraph(&buf)
		if err != nil {
			return false
		}
		if got.M() != orig.M() {
			return false
		}
		for i := range orig.Edges {
			if got.Edges[i] != orig.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
