// Package cluster turns the logical communication profile of an executed
// map-reduce job (pairs shuffled, per-reducer input sizes) into the
// dollar costs and wall-clock times of Section 1.2 of the paper, for a
// parametric cluster. It makes the paper's abstract cost coefficients
// concrete: the communication price a is PairCost · |I|, the linear
// compute price b comes from a per-input reducer cost, and the quadratic
// wall-clock term c from all-pairs reducers as in Example 1.1. Reducers
// are scheduled onto workers with the footnote-4 LPT balancer, so the
// simulated wall clock reflects the skew the schema actually produced.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mr"
)

// Spec prices and times a hypothetical cluster.
type Spec struct {
	// Workers is the number of reduce workers (compute nodes).
	Workers int
	// PairCost is the dollar cost of shipping one key-value pair.
	PairCost float64
	// PairTime is the wall-clock seconds to ship one pair (aggregate
	// network; the shuffle is modeled as fully pipelined).
	PairTime float64
	// ComputeCost is the dollar cost of running one reducer with q
	// inputs.
	ComputeCost func(q int) float64
	// ComputeTime is the wall-clock seconds of one reducer with q inputs.
	ComputeTime func(q int) float64
}

// LinearWork models reducers doing O(q) work at the given per-input rate
// (the b·q term of Section 1.2).
func LinearWork(perInput float64) func(int) float64 {
	return func(q int) float64 { return perInput * float64(q) }
}

// QuadraticWork models all-pairs reducers doing O(q²) work, as in the
// Hamming-distance join of Example 1.1 (the c·q² term).
func QuadraticWork(perPair float64) func(int) float64 {
	return func(q int) float64 { return perPair * float64(q) * float64(q) / 2 }
}

// Report is the simulated execution profile of one round.
type Report struct {
	// CommunicationCost is PairCost · pairs shuffled.
	CommunicationCost float64
	// ComputeCost is the summed reducer cost.
	ComputeCost float64
	// TotalCost is their sum — the paper's a·r + (compute) objective.
	TotalCost float64
	// ShuffleTime is PairTime · pairs shuffled.
	ShuffleTime float64
	// ComputeMakespan is the LPT-scheduled longest worker time.
	ComputeMakespan float64
	// WallClock is ShuffleTime + ComputeMakespan (phases barrier-
	// synchronized, as in MapReduce).
	WallClock float64
	// Utilization is total compute time divided by workers·makespan,
	// in (0, 1]; low values indicate skew the schema did not resolve.
	Utilization float64
}

// Simulate prices one executed round. The metrics must carry per-reducer
// loads (run the job with Config.RecordLoads).
func Simulate(spec Spec, met mr.Metrics) (Report, error) {
	if spec.Workers < 1 {
		return Report{}, fmt.Errorf("cluster: need at least one worker")
	}
	if met.Reducers > 0 && len(met.ReducerLoads) == 0 {
		return Report{}, fmt.Errorf("cluster: metrics lack per-reducer loads; run with mr.Config.RecordLoads")
	}
	var rep Report
	rep.CommunicationCost = spec.PairCost * float64(met.PairsShuffled)
	rep.ShuffleTime = spec.PairTime * float64(met.PairsShuffled)

	var totalTime float64
	times := make([]int, len(met.ReducerLoads))
	const timeScale = 1e6 // integer microseconds for the LPT balancer
	for i, q := range met.ReducerLoads {
		if spec.ComputeCost != nil {
			rep.ComputeCost += spec.ComputeCost(q)
		}
		t := 0.0
		if spec.ComputeTime != nil {
			t = spec.ComputeTime(q)
		}
		totalTime += t
		times[i] = int(t * timeScale)
	}
	_, makespan := core.BalanceLoads(times, spec.Workers)
	rep.ComputeMakespan = float64(makespan) / timeScale
	rep.TotalCost = rep.CommunicationCost + rep.ComputeCost
	rep.WallClock = rep.ShuffleTime + rep.ComputeMakespan
	if rep.ComputeMakespan > 0 {
		rep.Utilization = totalTime / (float64(spec.Workers) * rep.ComputeMakespan)
	}
	return rep, nil
}

// SimulatePipeline prices a multi-round pipeline: costs add, wall clocks
// add (rounds are barrier-synchronized).
func SimulatePipeline(spec Spec, pipe *mr.Pipeline) (Report, error) {
	var total Report
	for _, round := range pipe.Rounds {
		rep, err := Simulate(spec, round.Metrics)
		if err != nil {
			return Report{}, fmt.Errorf("cluster: round %s: %w", round.Name, err)
		}
		total.CommunicationCost += rep.CommunicationCost
		total.ComputeCost += rep.ComputeCost
		total.TotalCost += rep.TotalCost
		total.ShuffleTime += rep.ShuffleTime
		total.ComputeMakespan += rep.ComputeMakespan
		total.WallClock += rep.WallClock
	}
	if total.ComputeMakespan > 0 {
		// Aggregate utilization: weighted by makespan.
		var weighted float64
		for _, round := range pipe.Rounds {
			rep, _ := Simulate(spec, round.Metrics)
			weighted += rep.Utilization * rep.ComputeMakespan
		}
		total.Utilization = weighted / total.ComputeMakespan
	}
	return total, nil
}

// String renders a compact report line.
func (r Report) String() string {
	return fmt.Sprintf("cost=$%.4g (comm $%.4g + compute $%.4g), wall=%.4gs (shuffle %.4gs + compute %.4gs, util %.0f%%)",
		r.TotalCost, r.CommunicationCost, r.ComputeCost,
		r.WallClock, r.ShuffleTime, r.ComputeMakespan, 100*r.Utilization)
}
