package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hamming"
	"repro/internal/mr"
)

// syntheticMetrics builds a Metrics with explicit loads.
func syntheticMetrics(loads []int) mr.Metrics {
	var met mr.Metrics
	met.ReducerLoads = loads
	met.Reducers = int64(len(loads))
	for _, l := range loads {
		met.PairsShuffled += int64(l)
		met.TotalReducerInput += int64(l)
		if int64(l) > met.MaxReducerInput {
			met.MaxReducerInput = int64(l)
		}
	}
	met.PairsEmitted = met.PairsShuffled
	return met
}

func TestSimulateClosedForm(t *testing.T) {
	// 4 equal reducers of 10 inputs, 2 workers, linear compute.
	met := syntheticMetrics([]int{10, 10, 10, 10})
	spec := Spec{
		Workers:     2,
		PairCost:    0.5,
		PairTime:    0.001,
		ComputeCost: LinearWork(2),
		ComputeTime: LinearWork(0.1),
	}
	rep, err := Simulate(spec, met)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommunicationCost != 20 { // 40 pairs · 0.5
		t.Errorf("comm cost = %v, want 20", rep.CommunicationCost)
	}
	if rep.ComputeCost != 80 { // 4 reducers · 2·10
		t.Errorf("compute cost = %v, want 80", rep.ComputeCost)
	}
	if rep.TotalCost != 100 {
		t.Errorf("total = %v, want 100", rep.TotalCost)
	}
	// Perfect balance: 2 reducers per worker, 1s each ⇒ makespan 2s.
	if math.Abs(rep.ComputeMakespan-2) > 1e-6 {
		t.Errorf("makespan = %v, want 2", rep.ComputeMakespan)
	}
	if math.Abs(rep.WallClock-(0.04+2)) > 1e-6 {
		t.Errorf("wall = %v, want 2.04", rep.WallClock)
	}
	if math.Abs(rep.Utilization-1) > 1e-6 {
		t.Errorf("utilization = %v, want 1", rep.Utilization)
	}
	if !strings.Contains(rep.String(), "cost=") {
		t.Error("String() malformed")
	}
}

func TestSimulateQuadraticExample11(t *testing.T) {
	// Example 1.1: all-pairs reducers cost O(q²); doubling q at constant
	// total input quadruples per-reducer time but halves the count.
	small := syntheticMetrics([]int{10, 10, 10, 10})
	big := syntheticMetrics([]int{20, 20})
	spec := Spec{Workers: 1, ComputeTime: QuadraticWork(1)}
	repSmall, err := Simulate(spec, small)
	if err != nil {
		t.Fatal(err)
	}
	repBig, err := Simulate(spec, big)
	if err != nil {
		t.Fatal(err)
	}
	// Total quadratic work: 4·50 = 200 vs 2·200 = 400 — doubling q
	// doubles total O(q²) work at fixed total input.
	if math.Abs(repBig.ComputeMakespan/repSmall.ComputeMakespan-2) > 1e-6 {
		t.Errorf("quadratic work ratio = %v, want 2", repBig.ComputeMakespan/repSmall.ComputeMakespan)
	}
}

func TestSimulateRequiresLoads(t *testing.T) {
	var met mr.Metrics
	met.Reducers = 3 // but no loads recorded
	if _, err := Simulate(Spec{Workers: 1}, met); err == nil {
		t.Error("missing loads must be rejected")
	}
	if _, err := Simulate(Spec{Workers: 0}, syntheticMetrics([]int{1})); err == nil {
		t.Error("workers=0 must be rejected")
	}
}

func TestSimulateSkewLowersUtilization(t *testing.T) {
	balanced := syntheticMetrics([]int{10, 10, 10, 10})
	skewed := syntheticMetrics([]int{37, 1, 1, 1})
	spec := Spec{Workers: 4, ComputeTime: LinearWork(1)}
	repB, err := Simulate(spec, balanced)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := Simulate(spec, skewed)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Utilization >= repB.Utilization {
		t.Errorf("skewed utilization %v should be below balanced %v", repS.Utilization, repB.Utilization)
	}
	// The makespan is pinned to the giant reducer.
	if math.Abs(repS.ComputeMakespan-37) > 1e-6 {
		t.Errorf("skewed makespan = %v, want 37", repS.ComputeMakespan)
	}
}

func TestSimulateRealJobEndToEnd(t *testing.T) {
	// Run the Splitting join with load recording and price it: the
	// simulated communication cost must equal PairCost · r · |I|.
	const b = 10
	inputs := make([]uint64, 1<<b)
	for i := range inputs {
		inputs[i] = uint64(i)
	}
	s, err := hamming.NewSplittingSchema(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, met, err := hamming.RunSplitting(s, inputs, mr.Config{RecordLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Workers:     8,
		PairCost:    0.01,
		PairTime:    1e-6,
		ComputeCost: LinearWork(0.001),
		ComputeTime: QuadraticWork(1e-7),
	}
	rep, err := Simulate(spec, met)
	if err != nil {
		t.Fatal(err)
	}
	wantComm := 0.01 * met.ReplicationRate() * float64(met.MapInputs)
	if math.Abs(rep.CommunicationCost-wantComm) > 1e-9 {
		t.Errorf("comm cost %v, want r·|I|·price = %v", rep.CommunicationCost, wantComm)
	}
	// Splitting's reducers are perfectly uniform: utilization ≈ 1.
	if rep.Utilization < 0.95 {
		t.Errorf("utilization %v, want near 1 for uniform reducers", rep.Utilization)
	}
}

func TestSimulateTradeoffAcrossC(t *testing.T) {
	// The Section 1.2 story end to end: on a communication-expensive
	// cluster, larger reducers (smaller c) must win; on a compute-
	// expensive cluster with quadratic reducers, smaller reducers win.
	const b = 12
	inputs := make([]uint64, 1<<b)
	for i := range inputs {
		inputs[i] = uint64(i)
	}
	costAt := func(c int, spec Spec) float64 {
		s, err := hamming.NewSplittingSchema(b, c)
		if err != nil {
			t.Fatal(err)
		}
		_, met, err := hamming.RunSplitting(s, inputs, mr.Config{RecordLoads: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Simulate(spec, met)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalCost
	}
	commHeavy := Spec{Workers: 8, PairCost: 1, ComputeCost: LinearWork(1e-6)}
	if costAt(2, commHeavy) >= costAt(6, commHeavy) {
		t.Error("communication-priced cluster should prefer c=2 over c=6")
	}
	computeHeavy := Spec{Workers: 8, PairCost: 1e-6, ComputeCost: QuadraticWork(0.01)}
	if costAt(6, computeHeavy) >= costAt(2, computeHeavy) {
		t.Error("quadratic-compute cluster should prefer c=6 over c=2")
	}
}

func TestSimulatePipelineAddsRounds(t *testing.T) {
	pipe := &mr.Pipeline{}
	pipe.Record("r1", syntheticMetrics([]int{5, 5}))
	pipe.Record("r2", syntheticMetrics([]int{10}))
	spec := Spec{Workers: 2, PairCost: 1, ComputeTime: LinearWork(1)}
	rep, err := SimulatePipeline(spec, pipe)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommunicationCost != 20 {
		t.Errorf("comm = %v, want 20", rep.CommunicationCost)
	}
	// Round 1 makespan 5 (one reducer per worker), round 2 makespan 10.
	if math.Abs(rep.ComputeMakespan-15) > 1e-6 {
		t.Errorf("makespan = %v, want 15", rep.ComputeMakespan)
	}
}

func TestSimulatePipelineErrorPropagates(t *testing.T) {
	pipe := &mr.Pipeline{}
	var bad mr.Metrics
	bad.Reducers = 2
	pipe.Record("broken", bad)
	if _, err := SimulatePipeline(Spec{Workers: 1}, pipe); err == nil {
		t.Error("missing loads in a round must surface")
	}
}

// Property: total cost decomposes exactly and utilization stays in (0,1].
func TestPropertyReportInvariants(t *testing.T) {
	f := func(loadsRaw []uint8, workersRaw uint8) bool {
		if len(loadsRaw) == 0 {
			return true
		}
		loads := make([]int, len(loadsRaw))
		for i, l := range loadsRaw {
			loads[i] = int(l%50) + 1
		}
		spec := Spec{
			Workers:     int(workersRaw%6) + 1,
			PairCost:    0.1,
			ComputeCost: LinearWork(1),
			ComputeTime: LinearWork(0.5),
		}
		rep, err := Simulate(spec, syntheticMetrics(loads))
		if err != nil {
			return false
		}
		if math.Abs(rep.TotalCost-(rep.CommunicationCost+rep.ComputeCost)) > 1e-9 {
			return false
		}
		return rep.Utilization > 0 && rep.Utilization <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
