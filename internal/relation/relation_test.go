package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndSchema(t *testing.T) {
	r := New("R", "A", "B")
	r.Add(1, 2)
	r.Add(3, 4)
	if r.Arity() != 2 || r.Size() != 2 {
		t.Errorf("arity=%d size=%d, want 2 and 2", r.Arity(), r.Size())
	}
	if r.AttrIndex("B") != 1 || r.AttrIndex("Z") != -1 {
		t.Error("AttrIndex misbehaves")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong arity should panic")
		}
	}()
	r.Add(1)
}

func TestFull(t *testing.T) {
	r := Full("R", 3, "A", "B")
	if r.Size() != 9 {
		t.Errorf("Full size = %d, want 9", r.Size())
	}
	seen := make(map[[2]int]bool)
	for _, tup := range r.Tuples {
		seen[[2]int{tup[0], tup[1]}] = true
	}
	if len(seen) != 9 {
		t.Errorf("Full has %d distinct tuples, want 9", len(seen))
	}
}

func TestRandomDistinctAndClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := Random("R", 4, 100, rng, "A", "B") // only 16 possible
	if r.Size() != 16 {
		t.Errorf("Random clamped size = %d, want 16", r.Size())
	}
	seen := make(map[[2]int]bool)
	for _, tup := range r.Tuples {
		k := [2]int{tup[0], tup[1]}
		if seen[k] {
			t.Fatalf("duplicate tuple %v", tup)
		}
		seen[k] = true
	}
}

func TestNaturalJoinExample21(t *testing.T) {
	// Example 2.1: R(A,B) ⋈ S(B,C).
	r := New("R", "A", "B")
	r.Add(1, 10)
	r.Add(2, 20)
	r.Add(3, 10)
	s := New("S", "B", "C")
	s.Add(10, 100)
	s.Add(10, 200)
	s.Add(30, 300)
	j := NaturalJoin(r, s)
	if len(j.Attrs) != 3 || j.Attrs[0] != "A" || j.Attrs[1] != "B" || j.Attrs[2] != "C" {
		t.Fatalf("schema = %v, want [A B C]", j.Attrs)
	}
	want := New("J", "A", "B", "C")
	want.Add(1, 10, 100)
	want.Add(1, 10, 200)
	want.Add(3, 10, 100)
	want.Add(3, 10, 200)
	if !Equal(j, want) {
		t.Errorf("join = %v, want %v", j.Tuples, want.Tuples)
	}
}

func TestNaturalJoinNoSharedAttrsIsCrossProduct(t *testing.T) {
	r := New("R", "A")
	r.Add(1)
	r.Add(2)
	s := New("S", "B")
	s.Add(10)
	s.Add(20)
	j := NaturalJoin(r, s)
	if j.Size() != 4 {
		t.Errorf("cross product size = %d, want 4", j.Size())
	}
}

func TestMultiJoinChain(t *testing.T) {
	rels := FullChain(3, 2) // full chain over domain {0,1}
	j := MultiJoin(rels...)
	// Full chain join: every assignment of A0..A3 ⇒ 2^4 = 16 tuples.
	if j.Size() != 16 {
		t.Errorf("full 3-chain join size = %d, want 16", j.Size())
	}
	if len(j.Attrs) != 4 {
		t.Errorf("join schema = %v, want 4 attributes", j.Attrs)
	}
}

func TestMultiJoinEmpty(t *testing.T) {
	j := MultiJoin()
	if j.Size() != 0 {
		t.Error("empty MultiJoin should be empty")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := New("R", "A")
	a.Add(1)
	b := New("R", "A")
	b.Add(2)
	if Equal(a, b) {
		t.Error("Equal(1-tuple vs different 1-tuple) = true")
	}
	c := New("R", "X")
	c.Add(1)
	if Equal(a, c) {
		t.Error("Equal must compare schemas")
	}
	d := New("R", "A")
	d.Add(1)
	if !Equal(a, d) {
		t.Error("Equal(same) = false")
	}
}

func TestEqualOrderInsensitive(t *testing.T) {
	a := New("R", "A", "B")
	a.Add(1, 2)
	a.Add(3, 4)
	b := New("R", "A", "B")
	b.Add(3, 4)
	b.Add(1, 2)
	if !Equal(a, b) {
		t.Error("Equal should ignore tuple order")
	}
	// Equal must not mutate its arguments' order.
	if a.Tuples[0][0] != 1 {
		t.Error("Equal mutated its argument")
	}
}

func TestChainGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rels := Chain(4, 10, 30, rng)
	if len(rels) != 4 {
		t.Fatalf("Chain made %d relations, want 4", len(rels))
	}
	for i, r := range rels {
		if r.Size() != 30 || r.Arity() != 2 {
			t.Errorf("rel %d: size=%d arity=%d", i, r.Size(), r.Arity())
		}
	}
	// Adjacent relations share exactly one attribute.
	for i := 0; i+1 < len(rels); i++ {
		if rels[i].Attrs[1] != rels[i+1].Attrs[0] {
			t.Errorf("chain link %d broken: %v vs %v", i, rels[i].Attrs, rels[i+1].Attrs)
		}
	}
}

func TestStarGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fact, dims := Star(3, 8, 100, 20, rng)
	if fact.Arity() != 3 {
		t.Errorf("fact arity = %d, want 3", fact.Arity())
	}
	if len(dims) != 3 {
		t.Fatalf("dims = %d, want 3", len(dims))
	}
	for i, d := range dims {
		if d.Size() != 20 {
			t.Errorf("dim %d size = %d, want 20", i, d.Size())
		}
		if fact.AttrIndex(d.Attrs[0]) != i {
			t.Errorf("dim %d does not share attribute %s with fact", i, d.Attrs[0])
		}
		// Dimensions pairwise share nothing.
		for j := i + 1; j < len(dims); j++ {
			for _, a := range d.Attrs {
				if dims[j].AttrIndex(a) >= 0 {
					t.Errorf("dims %d and %d share attribute %s", i, j, a)
				}
			}
		}
	}
}

// Property: |R ⋈ S| on shared attribute B equals Σ_b count_R(b)·count_S(b).
func TestPropertyJoinSizeMatchesHistogram(t *testing.T) {
	f := func(seed int64, szR, szS uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Random("R", 5, int(szR%20)+1, rng, "A", "B")
		s := Random("S", 5, int(szS%20)+1, rng, "B", "C")
		j := NaturalJoin(r, s)
		histR := map[int]int{}
		histS := map[int]int{}
		for _, t := range r.Tuples {
			histR[t[1]]++
		}
		for _, t := range s.Tuples {
			histS[t[0]]++
		}
		want := 0
		for b, c := range histR {
			want += c * histS[b]
		}
		return j.Size() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: join is commutative up to schema/column reordering — sizes
// must match.
func TestPropertyJoinSizeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Random("R", 4, 10, rng, "A", "B")
		s := Random("S", 4, 10, rng, "B", "C")
		return NaturalJoin(r, s).Size() == NaturalJoin(s, r).Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
