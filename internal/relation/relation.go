// Package relation provides the relational substrate for the join
// problems of Examples 2.1/2.4 and Section 5.5: named relations over
// finite integer domains, serial hash joins as correctness baselines, and
// generators for the chain and star query workloads the paper analyzes.
package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Tuple is one row; values are drawn from finite integer domains.
type Tuple []int

// Relation is a named relation with an attribute schema.
type Relation struct {
	Name   string
	Attrs  []string
	Tuples []Tuple
}

// New creates an empty relation with the given schema.
func New(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: attrs}
}

// Arity is the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Size is the number of tuples.
func (r *Relation) Size() int { return len(r.Tuples) }

// Add appends a tuple; it panics if the arity is wrong (programmer error).
func (r *Relation) Add(vals ...int) {
	if len(vals) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %s: tuple arity %d, want %d", r.Name, len(vals), len(r.Attrs)))
	}
	t := make(Tuple, len(vals))
	copy(t, vals)
	r.Tuples = append(r.Tuples, t)
}

// AttrIndex returns the position of attribute a, or -1.
func (r *Relation) AttrIndex(a string) int {
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// String renders the schema.
func (r *Relation) String() string {
	return fmt.Sprintf("%s(%s)[%d tuples]", r.Name, strings.Join(r.Attrs, ","), len(r.Tuples))
}

// Full returns the relation holding every tuple over domain {0..n-1}^arity
// — the paper's "all possible inputs present" instance.
func Full(name string, n int, attrs ...string) *Relation {
	r := New(name, attrs...)
	arity := len(attrs)
	t := make([]int, arity)
	var rec func(i int)
	rec = func(i int) {
		if i == arity {
			r.Add(t...)
			return
		}
		for v := 0; v < n; v++ {
			t[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return r
}

// Random returns a relation with size distinct random tuples over domain
// {0..n-1}^arity.
func Random(name string, n, size int, rng *rand.Rand, attrs ...string) *Relation {
	r := New(name, attrs...)
	arity := len(attrs)
	max := 1
	for i := 0; i < arity; i++ {
		max *= n
		if max > 1<<30 {
			break
		}
	}
	if size > max {
		size = max
	}
	seen := make(map[string]bool, size)
	for len(r.Tuples) < size {
		t := make(Tuple, arity)
		for i := range t {
			t[i] = rng.Intn(n)
		}
		k := fmt.Sprint([]int(t))
		if seen[k] {
			continue
		}
		seen[k] = true
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// NaturalJoin computes the natural join of two relations on their shared
// attribute names with a hash join; the output schema is r's attributes
// followed by s's non-shared attributes. It is the serial baseline for the
// distributed joins.
func NaturalJoin(r, s *Relation) *Relation {
	var shared [][2]int // (index in r, index in s)
	var sExtra []int
	for j, a := range s.Attrs {
		if i := r.AttrIndex(a); i >= 0 {
			shared = append(shared, [2]int{i, j})
		} else {
			sExtra = append(sExtra, j)
		}
	}
	attrs := append([]string{}, r.Attrs...)
	for _, j := range sExtra {
		attrs = append(attrs, s.Attrs[j])
	}
	out := New(r.Name+"_"+s.Name, attrs...)

	// Build hash table on s keyed by the shared attributes.
	index := make(map[string][]Tuple)
	keyOf := func(t Tuple, side int) string {
		var b strings.Builder
		for _, p := range shared {
			fmt.Fprintf(&b, "%d,", t[p[side]])
		}
		return b.String()
	}
	for _, t := range s.Tuples {
		k := keyOf(t, 1)
		index[k] = append(index[k], t)
	}
	for _, tr := range r.Tuples {
		for _, ts := range index[keyOf(tr, 0)] {
			row := make(Tuple, 0, len(attrs))
			row = append(row, tr...)
			for _, j := range sExtra {
				row = append(row, ts[j])
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out
}

// MultiJoin folds NaturalJoin over a list of relations, left to right.
func MultiJoin(rels ...*Relation) *Relation {
	if len(rels) == 0 {
		return New("empty")
	}
	acc := rels[0]
	for _, r := range rels[1:] {
		acc = NaturalJoin(acc, r)
	}
	return acc
}

// Sort orders tuples lexicographically in place (for deterministic
// comparison in tests).
func (r *Relation) Sort() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i], r.Tuples[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Equal reports whether two relations hold the same multiset of tuples
// (after sorting copies); schemas must match exactly.
func Equal(a, b *Relation) bool {
	if len(a.Attrs) != len(b.Attrs) || len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	ca, cb := a.clone(), b.clone()
	ca.Sort()
	cb.Sort()
	for i := range ca.Tuples {
		for k := range ca.Tuples[i] {
			if ca.Tuples[i][k] != cb.Tuples[i][k] {
				return false
			}
		}
	}
	return true
}

func (r *Relation) clone() *Relation {
	c := New(r.Name, r.Attrs...)
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		ct := make(Tuple, len(t))
		copy(ct, t)
		c.Tuples[i] = ct
	}
	return c
}

// Chain builds the chain query R1(A0,A1), R2(A1,A2), …, RN(A_{N-1},A_N)
// with each relation holding size random tuples over domain {0..n-1}.
func Chain(numRels, n, size int, rng *rand.Rand) []*Relation {
	rels := make([]*Relation, numRels)
	for i := 0; i < numRels; i++ {
		rels[i] = Random(fmt.Sprintf("R%d", i+1), n, size, rng,
			fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", i+1))
	}
	return rels
}

// FullChain builds the chain query with every relation complete (n²
// tuples), the paper's all-inputs-present instance.
func FullChain(numRels, n int) []*Relation {
	rels := make([]*Relation, numRels)
	for i := 0; i < numRels; i++ {
		rels[i] = Full(fmt.Sprintf("R%d", i+1), n,
			fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", i+1))
	}
	return rels
}

// Star builds a star query: a fact table F(A1..AN) with factSize tuples
// and N dimension tables Di(Ai, Bi) with dimSize tuples each, over domain
// {0..n-1}. Dimension tables pairwise share no attributes, as Section
// 5.5.2 assumes.
func Star(numDims, n, factSize, dimSize int, rng *rand.Rand) (fact *Relation, dims []*Relation) {
	attrs := make([]string, numDims)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i+1)
	}
	fact = Random("F", n, factSize, rng, attrs...)
	dims = make([]*Relation, numDims)
	for i := 0; i < numDims; i++ {
		dims[i] = Random(fmt.Sprintf("D%d", i+1), n, dimSize, rng,
			fmt.Sprintf("A%d", i+1), fmt.Sprintf("B%d", i+1))
	}
	return fact, dims
}
