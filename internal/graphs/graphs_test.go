package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompleteGraph(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Errorf("K5 has %d edges, want 10", g.M())
	}
	if got := g.TriangleCount(); got != 10 { // C(5,3)
		t.Errorf("K5 triangles = %d, want 10", got)
	}
	if !g.HasEdge(0, 4) || g.HasEdge(0, 0) {
		t.Error("HasEdge misbehaves on K5")
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 4 {
			t.Errorf("deg(%d) = %d, want 4", u, g.Degree(u))
		}
	}
}

func TestNewDeduplicatesAndNormalizes(t *testing.T) {
	g := New(4, []Edge{{1, 0}, {0, 1}, {2, 2}, {3, 2}, {-1, 2}, {2, 9}})
	if g.M() != 2 {
		t.Errorf("M = %d, want 2 (dedup, drop loops and out-of-range)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Error("expected edges missing")
	}
}

func TestCycleAndPath(t *testing.T) {
	c := Cycle(5)
	if c.M() != 5 {
		t.Errorf("C5 edges = %d, want 5", c.M())
	}
	if c.TriangleCount() != 0 {
		t.Errorf("C5 has no triangles")
	}
	if Cycle(3).TriangleCount() != 1 {
		t.Error("C3 is one triangle")
	}
	p := Path(6)
	if p.M() != 5 {
		t.Errorf("P6 edges = %d, want 5", p.M())
	}
	if got := p.TwoPathCount(); got != 4 {
		t.Errorf("P6 2-paths = %d, want 4", got)
	}
}

func TestStarSkew(t *testing.T) {
	s := Star(10)
	if s.Degree(0) != 9 {
		t.Errorf("hub degree = %d, want 9", s.Degree(0))
	}
	// 2-paths through the hub: C(9,2) = 36.
	if got := s.TwoPathCount(); got != 36 {
		t.Errorf("star 2-paths = %d, want 36", got)
	}
	if s.TriangleCount() != 0 {
		t.Error("star has no triangles")
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNM(50, 200, rng)
	if g.N != 50 || g.M() != 200 {
		t.Errorf("GNM(50,200) = (%d nodes, %d edges)", g.N, g.M())
	}
	// Requesting more edges than possible clamps to C(n,2).
	g2 := GNM(5, 100, rng)
	if g2.M() != 10 {
		t.Errorf("GNM clamp: M = %d, want 10", g2.M())
	}
}

func TestGNMDeterministicWithSeed(t *testing.T) {
	a := GNM(30, 80, rand.New(rand.NewSource(42)))
	b := GNM(30, 80, rand.New(rand.NewSource(42)))
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("seeded GNM not deterministic")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("seeded GNM edge lists differ")
		}
	}
}

func TestTrianglesEnumerationMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := GNM(40, 200, rng)
	tris := g.Triangles()
	if int64(len(tris)) != g.TriangleCount() {
		t.Errorf("enumerated %d triangles, count says %d", len(tris), g.TriangleCount())
	}
	for _, tr := range tris {
		if !(tr[0] < tr[1] && tr[1] < tr[2]) {
			t.Errorf("triangle %v not ordered", tr)
		}
		if !g.HasEdge(tr[0], tr[1]) || !g.HasEdge(tr[1], tr[2]) || !g.HasEdge(tr[0], tr[2]) {
			t.Errorf("triangle %v has a missing edge", tr)
		}
	}
}

func TestTwoPathsEnumerationMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := GNM(25, 60, rng)
	paths := g.TwoPaths()
	if int64(len(paths)) != g.TwoPathCount() {
		t.Errorf("enumerated %d 2-paths, count says %d", len(paths), g.TwoPathCount())
	}
	seen := make(map[[3]int]bool)
	for _, p := range paths {
		if p[1] >= p[2] {
			t.Errorf("2-path %v ends not ordered", p)
		}
		if !g.HasEdge(p[0], p[1]) || !g.HasEdge(p[0], p[2]) {
			t.Errorf("2-path %v has a missing edge", p)
		}
		if seen[p] {
			t.Errorf("2-path %v repeated", p)
		}
		seen[p] = true
	}
}

// Property: triangle count of K_n is C(n,3) and 2-path count is 3·C(n,3).
func TestPropertyCompleteGraphCounts(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%12) + 3
		g := Complete(n)
		c3 := int64(n * (n - 1) * (n - 2) / 6)
		return g.TriangleCount() == c3 && g.TwoPathCount() == 3*c3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sum of degrees is twice the edge count.
func TestPropertyHandshake(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		g := GNM(n, m, rand.New(rand.NewSource(seed)))
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
