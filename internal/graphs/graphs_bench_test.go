package graphs

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkTriangleCount measures the serial counter across densities.
func BenchmarkTriangleCount(b *testing.B) {
	for _, m := range []int{500, 2000, 8000} {
		g := GNM(300, m, rand.New(rand.NewSource(1)))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = g.TriangleCount()
			}
		})
	}
}

// BenchmarkGNM measures graph generation.
func BenchmarkGNM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < b.N; i++ {
		_ = GNM(500, 5000, rng)
	}
}

// BenchmarkAdjacency measures lazy adjacency construction plus queries.
func BenchmarkAdjacency(b *testing.B) {
	base := GNM(400, 6000, rand.New(rand.NewSource(3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(base.N, base.Edges)
		found := 0
		for u := 0; u < g.N; u += 7 {
			if g.HasEdge(u, (u+13)%g.N) {
				found++
			}
		}
		_ = found
	}
}
