// Package graphs provides the undirected-graph substrate for the
// triangle-finding (Section 4) and sample-graph (Section 5) problems:
// graph construction, standard generators, and serial baseline counters
// against which the MapReduce algorithms are verified.
package graphs

import (
	"fmt"
	"math/rand"
	"sort"
)

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// NewEdge normalizes an endpoint pair into an Edge.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// Graph is a simple undirected graph on nodes 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
	adj   [][]int // lazily built adjacency lists, sorted
}

// New builds a graph from an edge list, dropping duplicates and loops.
func New(n int, edges []Edge) *Graph {
	seen := make(map[Edge]bool, len(edges))
	g := &Graph{N: n}
	for _, e := range edges {
		e = NewEdge(e.U, e.V)
		if e.U == e.V || e.U < 0 || e.V >= n || seen[e] {
			continue
		}
		seen[e] = true
		g.Edges = append(g.Edges, e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].U != g.Edges[j].U {
			return g.Edges[i].U < g.Edges[j].U
		}
		return g.Edges[i].V < g.Edges[j].V
	})
	return g
}

// M is the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Adj returns the sorted adjacency list of node u.
func (g *Graph) Adj(u int) []int {
	if g.adj == nil {
		g.adj = make([][]int, g.N)
		for _, e := range g.Edges {
			g.adj[e.U] = append(g.adj[e.U], e.V)
			g.adj[e.V] = append(g.adj[e.V], e.U)
		}
		for _, l := range g.adj {
			sort.Ints(l)
		}
	}
	return g.adj[u]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	l := g.Adj(u)
	i := sort.SearchInts(l, v)
	return i < len(l) && l[i] == v
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.Adj(u)) }

// Complete returns K_n, the paper's "all possible edges present" instance.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{u, v})
		}
	}
	return New(n, edges)
}

// GNM returns a uniform random graph with n nodes and m distinct edges —
// the sparse-data model of Section 4.2.
func GNM(n, m int, rng *rand.Rand) *Graph {
	max := n * (n - 1) / 2
	if m > max {
		m = max
	}
	seen := make(map[Edge]bool, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		e := NewEdge(u, v)
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return New(n, edges)
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, NewEdge(i, (i+1)%n))
	}
	return New(n, edges)
}

// Path returns the path with n nodes (n-1 edges).
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return New(n, edges)
}

// Star returns the star with one hub (node 0) and n-1 leaves — the
// skewed-degree instance discussed in Section 1.4.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, i})
	}
	return New(n, edges)
}

// TriangleCount counts triangles serially with the standard
// degree-ordered adjacency intersection; it is the correctness baseline
// for the Section 4 algorithms.
func (g *Graph) TriangleCount() int64 {
	var count int64
	for _, e := range g.Edges {
		u, v := e.U, e.V
		au, av := g.Adj(u), g.Adj(v)
		i, j := 0, 0
		for i < len(au) && j < len(av) {
			switch {
			case au[i] < av[j]:
				i++
			case au[i] > av[j]:
				j++
			default:
				if au[i] > v { // count each triangle once: w > v > u
					count++
				}
				i++
				j++
			}
		}
	}
	return count
}

// Triangles enumerates all triangles (u < v < w) serially.
func (g *Graph) Triangles() [][3]int {
	var out [][3]int
	for _, e := range g.Edges {
		u, v := e.U, e.V
		au, av := g.Adj(u), g.Adj(v)
		i, j := 0, 0
		for i < len(au) && j < len(av) {
			switch {
			case au[i] < av[j]:
				i++
			case au[i] > av[j]:
				j++
			default:
				if au[i] > v {
					out = append(out, [3]int{u, v, au[i]})
				}
				i++
				j++
			}
		}
	}
	return out
}

// TwoPathCount counts unordered 2-paths v—u—w (u the middle node):
// Σᵤ C(deg(u), 2). This is the |O| of Section 5.4 restricted to the
// instance.
func (g *Graph) TwoPathCount() int64 {
	var count int64
	for u := 0; u < g.N; u++ {
		d := int64(g.Degree(u))
		count += d * (d - 1) / 2
	}
	return count
}

// TwoPaths enumerates all 2-paths as (middle, end1, end2) with end1 < end2.
func (g *Graph) TwoPaths() [][3]int {
	var out [][3]int
	for u := 0; u < g.N; u++ {
		adj := g.Adj(u)
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				out = append(out, [3]int{u, adj[i], adj[j]})
			}
		}
	}
	return out
}

// String renders a short description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N, g.M())
}
