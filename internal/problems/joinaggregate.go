package problems

import (
	"repro/internal/mr"
	"repro/internal/relation"
)

// This file explores the open problem of Section 7.1: multi-round
// analyses "along the lines of Section 6.3", for the suggested first
// target — an SQL statement requiring two rounds of map-reduce, a join
// followed by an aggregation:
//
//	SELECT A, SUM(C) FROM R(A,B) JOIN S(B,C) ON B GROUP BY A
//
// Two strategies are implemented. Naive materializes the join in round 1
// and ships every joined triple to the round-2 aggregators, so round-2
// communication equals the join size. PreAggregate applies the lesson of
// the two-phase matrix multiplication: each round-1 reducer emits one
// partial sum per distinct A it sees rather than one record per joined
// tuple, bounding round-2 communication by (#round-1 reducers)·|A-domain|
// — the exact analogue of the n³/t partial-sum term of Section 6.3.

// JoinAggregateResult is the outcome of either strategy.
type JoinAggregateResult struct {
	Sums     []GroupSum
	Pipeline *mr.Pipeline
}

// taggedBC is a round-1 input: an R tuple (A,B) or an S tuple (B,C).
type taggedBC struct {
	FromR bool
	X, Y  int
}

func joinInputs(r, s *relation.Relation) []taggedBC {
	var inputs []taggedBC
	for _, t := range r.Tuples {
		inputs = append(inputs, taggedBC{true, t[0], t[1]})
	}
	for _, t := range s.Tuples {
		inputs = append(inputs, taggedBC{false, t[0], t[1]})
	}
	return inputs
}

// ac is a partially or fully joined (A, C-contribution) record.
type ac struct {
	A int
	C int64
}

// RunJoinAggregateNaive runs round 1 as a pure join on B (emitting every
// joined (a, c) pair) and round 2 as the group-by-A summation.
func RunJoinAggregateNaive(r, s *relation.Relation, k int, cfg mr.Config) (JoinAggregateResult, error) {
	round1 := &mr.Job[taggedBC, int, taggedBC, ac]{
		Name: "join-on-B",
		Map: func(t taggedBC, emit func(int, taggedBC)) {
			if t.FromR {
				emit(t.Y%k, t)
			} else {
				emit(t.X%k, t)
			}
		},
		Reduce: func(_ int, ts []taggedBC, emit func(ac)) {
			aByB := make(map[int][]int)
			for _, t := range ts {
				if t.FromR {
					aByB[t.Y] = append(aByB[t.Y], t.X)
				}
			}
			for _, t := range ts {
				if t.FromR {
					continue
				}
				for _, a := range aByB[t.X] {
					emit(ac{A: a, C: int64(t.Y)})
				}
			}
		},
		Config: cfg,
	}
	return finishAggregate(round1, r, s, cfg)
}

// RunJoinAggregatePreAgg is the two-phase-optimized variant: round-1
// reducers sum their local contributions per A before emitting.
func RunJoinAggregatePreAgg(r, s *relation.Relation, k int, cfg mr.Config) (JoinAggregateResult, error) {
	return finishAggregate(preAggJoinRound(k, cfg), r, s, cfg)
}

// preAggJoinRound is the round-1 join on B with per-reducer partial
// sums per A — the Section 6.3 partial-sum trick applied to the join.
func preAggJoinRound(k int, cfg mr.Config) *mr.Job[taggedBC, int, taggedBC, ac] {
	return &mr.Job[taggedBC, int, taggedBC, ac]{
		Name: "join-on-B-preagg",
		Map: func(t taggedBC, emit func(int, taggedBC)) {
			if t.FromR {
				emit(t.Y%k, t)
			} else {
				emit(t.X%k, t)
			}
		},
		Reduce: func(_ int, ts []taggedBC, emit func(ac)) {
			aByB := make(map[int][]int)
			for _, t := range ts {
				if t.FromR {
					aByB[t.Y] = append(aByB[t.Y], t.X)
				}
			}
			partial := make(map[int]int64)
			for _, t := range ts {
				if t.FromR {
					continue
				}
				for _, a := range aByB[t.X] {
					partial[a] += int64(t.Y)
				}
			}
			// Emit one partial sum per distinct A, in sorted order for
			// determinism.
			as := make([]int, 0, len(partial))
			for a := range partial {
				as = append(as, a)
			}
			sortInts(as)
			for _, a := range as {
				emit(ac{A: a, C: partial[a]})
			}
		},
		Config: cfg,
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func aggregateRound(cfg mr.Config) *mr.Job[ac, int, int64, GroupSum] {
	return &mr.Job[ac, int, int64, GroupSum]{
		Name: "group-by-A",
		Map: func(p ac, emit func(int, int64)) {
			emit(p.A, p.C)
		},
		Reduce: func(a int, vs []int64, emit func(GroupSum)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(GroupSum{A: a, Sum: sum})
		},
		Config: cfg,
	}
}

func finishAggregate(round1 *mr.Job[taggedBC, int, taggedBC, ac], r, s *relation.Relation, cfg mr.Config) (JoinAggregateResult, error) {
	outAny, pipe, err := mr.RunPipeline(joinInputs(r, s),
		mr.RoundOf(round1), mr.RoundOf(aggregateRound(cfg)))
	if err != nil {
		return JoinAggregateResult{}, err
	}
	return JoinAggregateResult{Sums: outAny.([]GroupSum), Pipeline: pipe}, nil
}

// SerialJoinAggregate is the correctness baseline.
func SerialJoinAggregate(r, s *relation.Relation) []GroupSum {
	sums := make(map[int]int64)
	byB := make(map[int][]int)
	for _, t := range r.Tuples {
		byB[t[1]] = append(byB[t[1]], t[0])
	}
	for _, t := range s.Tuples {
		for _, a := range byB[t[0]] {
			sums[a] += int64(t[1])
		}
	}
	var as []int
	for a := range sums {
		as = append(as, a)
	}
	sortInts(as)
	out := make([]GroupSum, 0, len(as))
	for _, a := range as {
		out = append(out, GroupSum{A: a, Sum: sums[a]})
	}
	return out
}
