package problems

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mr"
	"repro/internal/relation"
)

func topkRelations(t *testing.T) (*relation.Relation, *relation.Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	r := relation.New("R", "A", "B")
	for i := 0; i < 600; i++ {
		r.Add(rng.Intn(25), rng.Intn(40))
	}
	s := relation.New("S", "B", "C")
	for i := 0; i < 600; i++ {
		s.Add(rng.Intn(40), rng.Intn(50))
	}
	return r, s
}

func TestJoinAggregateTopKThreeRounds(t *testing.T) {
	r, s := topkRelations(t)
	const topN = 5
	// MapChunk 10 keeps round-3 map tasks larger than topN so the
	// combiner has something to cut.
	got, pipe, err := RunJoinAggregateTopK(r, s, 8, topN, mr.Config{Workers: 4, MapChunk: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := SerialTopK(r, s, topN)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("top-%d = %v, want %v", topN, got, want)
	}
	if len(pipe.Rounds) != 3 {
		t.Fatalf("pipeline recorded %d rounds, want 3", len(pipe.Rounds))
	}
	names := []string{pipe.Rounds[0].Name, pipe.Rounds[1].Name, pipe.Rounds[2].Name}
	wantNames := []string{"join-on-B-preagg", "group-by-A", "top-k"}
	if !reflect.DeepEqual(names, wantNames) {
		t.Errorf("round names = %v, want %v", names, wantNames)
	}
	// The top-k combiner must bound round-3 communication: at most topN
	// candidates survive each map task.
	r3 := pipe.Rounds[2].Metrics
	if r3.PairsShuffled >= r3.PairsEmitted {
		t.Errorf("round 3 combiner did not shrink the shuffle: %d >= %d",
			r3.PairsShuffled, r3.PairsEmitted)
	}
	if r3.Reducers != 1 {
		t.Errorf("round 3 reducers = %d, want 1 (global selection)", r3.Reducers)
	}
}

func TestTopKSmallerThanGroups(t *testing.T) {
	r, s := topkRelations(t)
	// topN larger than the number of groups degrades to a full sort.
	got, _, err := RunJoinAggregateTopK(r, s, 4, 1000, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := SerialTopK(r, s, 1000)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("full ordering mismatch: %v vs %v", got[:3], want[:3])
	}
}
