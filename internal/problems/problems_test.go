package problems

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/relation"
)

func TestJoinProblemModel(t *testing.T) {
	p := NewJoinProblem(3, 4, 5)
	if p.NumInputs() != 3*4+4*5 {
		t.Errorf("|I| = %d, want 32", p.NumInputs())
	}
	if p.NumOutputs() != 60 {
		t.Errorf("|O| = %d, want 60", p.NumOutputs())
	}
	count := 0
	p.ForEachOutput(func(inputs []int) bool {
		if len(inputs) != 2 {
			t.Fatalf("join output depends on %d inputs, want 2", len(inputs))
		}
		count++
		return true
	})
	if count != 60 {
		t.Errorf("enumerated %d outputs, want 60", count)
	}
}

func TestHashJoinSchemaValidAndReplicationOne(t *testing.T) {
	p := NewJoinProblem(3, 4, 5)
	for _, k := range []int{1, 2, 4} {
		s, err := NewHashJoinSchema(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(p, s, 0); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		st := core.Measure(p, s)
		if st.ReplicationRate != 1 {
			t.Errorf("k=%d: r = %v, want exactly 1 (join keyed on B is embarrassingly parallel)", k, st.ReplicationRate)
		}
	}
}

func TestHashJoinSchemaRejectsBadK(t *testing.T) {
	p := NewJoinProblem(3, 4, 5)
	if _, err := NewHashJoinSchema(p, 0); err == nil {
		t.Error("k=0 rejected")
	}
	if _, err := NewHashJoinSchema(p, 5); err == nil {
		t.Error("k > NB rejected")
	}
}

func TestRunHashJoinMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	r := relation.Random("R", 6, 20, rng, "A", "B")
	s := relation.Random("S", 6, 20, rng, "B", "C")
	want := relation.NaturalJoin(r, s)
	for _, k := range []int{1, 3, 6} {
		got, met, err := RunHashJoin(r, s, k, mr.Config{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !relation.Equal(got, want) {
			t.Errorf("k=%d: join (%d tuples) differs from serial (%d)", k, got.Size(), want.Size())
		}
		if met.ReplicationRate() != 1 {
			t.Errorf("k=%d: measured r = %v, want 1", k, met.ReplicationRate())
		}
	}
}

func TestGroupByProblemModel(t *testing.T) {
	p := NewGroupByProblem(4, 6)
	if p.NumInputs() != 24 || p.NumOutputs() != 4 {
		t.Errorf("|I|=%d |O|=%d, want 24 and 4", p.NumInputs(), p.NumOutputs())
	}
	count := 0
	p.ForEachOutput(func(inputs []int) bool {
		if len(inputs) != 6 {
			t.Fatalf("group depends on %d inputs, want NB=6", len(inputs))
		}
		count++
		return true
	})
	if count != 4 {
		t.Errorf("enumerated %d groups, want 4", count)
	}
}

func TestGroupBySchemaReplicationOne(t *testing.T) {
	p := NewGroupByProblem(4, 6)
	s := GroupBySchema{P: p}
	if err := core.Validate(p, s, 6); err != nil {
		t.Errorf("group-by schema invalid: %v", err)
	}
	st := core.Measure(p, s)
	if st.ReplicationRate != 1 {
		t.Errorf("r = %v, want 1", st.ReplicationRate)
	}
	if st.MaxReducerLoad != 6 {
		t.Errorf("q = %d, want NB = 6", st.MaxReducerLoad)
	}
	// Below q = NB the schema is infeasible (footnote-3 analogue).
	if err := core.Validate(p, s, 5); err == nil {
		t.Error("q < NB should be rejected")
	}
}

func TestRunGroupBy(t *testing.T) {
	r := relation.New("R", "A", "B")
	r.Add(0, 5)
	r.Add(1, 3)
	r.Add(0, 7)
	r.Add(2, 1)
	r.Add(1, 4)
	sums, met, err := RunGroupBy(r, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []GroupSum{{0, 12}, {1, 7}, {2, 1}}
	if !reflect.DeepEqual(sums, want) {
		t.Errorf("sums = %v, want %v", sums, want)
	}
	if met.ReplicationRate() != 1 {
		t.Errorf("r = %v, want exactly 1", met.ReplicationRate())
	}
}

func TestRunGroupByCombinerShrinksShuffle(t *testing.T) {
	r := relation.New("R", "A", "B")
	for i := 0; i < 500; i++ {
		r.Add(i%3, 1)
	}
	sums, met, err := RunGroupBy(r, mr.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range sums {
		total += s.Sum
	}
	if total != 500 {
		t.Errorf("total = %d, want 500", total)
	}
	if met.PairsShuffled >= met.PairsEmitted {
		t.Errorf("combiner should shrink shuffle: %d >= %d", met.PairsShuffled, met.PairsEmitted)
	}
}

func TestWordCountProblemReplicationOne(t *testing.T) {
	p := WordCountProblem{V: 5, P: 8}
	s := WordCountSchema{P: p}
	if err := core.Validate(p, s, p.P); err != nil {
		t.Errorf("word-count schema invalid: %v", err)
	}
	st := core.Measure(p, s)
	if st.ReplicationRate != 1 {
		t.Errorf("r = %v, want exactly 1: no tradeoff (Example 2.5)", st.ReplicationRate)
	}
}

func TestJoinAggregateBothStrategiesCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	r := relation.Random("R", 8, 40, rng, "A", "B")
	s := relation.Random("S", 8, 40, rng, "B", "C")
	want := SerialJoinAggregate(r, s)

	naive, err := RunJoinAggregateNaive(r, s, 4, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(naive.Sums, want) {
		t.Errorf("naive sums differ: %v vs %v", naive.Sums, want)
	}
	pre, err := RunJoinAggregatePreAgg(r, s, 4, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pre.Sums, want) {
		t.Errorf("pre-agg sums differ: %v vs %v", pre.Sums, want)
	}
}

func TestJoinAggregatePreAggSavesRound2Communication(t *testing.T) {
	// A skewed workload where the join is much larger than the A-domain:
	// pre-aggregation must shrink round-2 communication strictly.
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	for i := 0; i < 30; i++ {
		r.Add(i%3, i%5) // A-domain of 3, joining heavily
	}
	for i := 0; i < 30; i++ {
		s.Add(i%5, i)
	}
	naive, err := RunJoinAggregateNaive(r, s, 2, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := RunJoinAggregatePreAgg(r, s, 2, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	naiveR2 := naive.Pipeline.Rounds[1].Metrics.PairsEmitted
	preR2 := pre.Pipeline.Rounds[1].Metrics.PairsEmitted
	if preR2 >= naiveR2 {
		t.Errorf("pre-agg round-2 comm %d should beat naive %d", preR2, naiveR2)
	}
	// Round-1 communication is identical (same join shuffle).
	if naive.Pipeline.Rounds[0].Metrics.PairsEmitted != pre.Pipeline.Rounds[0].Metrics.PairsEmitted {
		t.Error("round-1 communication should be identical")
	}
	if !reflect.DeepEqual(naive.Sums, pre.Sums) {
		t.Error("strategies disagree")
	}
}

// Property: both join-aggregate strategies agree with the serial result
// on random instances.
func TestPropertyJoinAggregateAgree(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := relation.Random("R", 5, 15, rng, "A", "B")
		s := relation.Random("S", 5, 15, rng, "B", "C")
		k := int(kRaw%4) + 1
		want := SerialJoinAggregate(r, s)
		naive, err := RunJoinAggregateNaive(r, s, k, mr.Config{})
		if err != nil || !reflect.DeepEqual(naive.Sums, want) {
			return false
		}
		pre, err := RunJoinAggregatePreAgg(r, s, k, mr.Config{})
		return err == nil && reflect.DeepEqual(pre.Sums, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: hash-join replication is exactly 1 for any bucket count.
func TestPropertyHashJoinReplicationOne(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := relation.Random("R", 4, 10, rng, "A", "B")
		s := relation.Random("S", 4, 10, rng, "B", "C")
		k := int(kRaw%4) + 1
		_, met, err := RunHashJoin(r, s, k, mr.Config{})
		return err == nil && met.ReplicationRate() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
