package problems

import (
	"sort"

	"repro/internal/mr"
	"repro/internal/relation"
)

// This file extends the Section 7.1 exploration one round further: the
// analytics staple
//
//	SELECT A, SUM(C) FROM R(A,B) JOIN S(B,C) ON B
//	GROUP BY A ORDER BY SUM(C) DESC LIMIT topN
//
// as a three-round pipeline — join (with the Section 6.3 partial-sum
// trick), aggregate, then a global top-N selection. Round 3 shows the
// same communication lever the paper pulls everywhere else: a combiner
// keeps each map task's candidate list at topN, so the single final
// reducer receives O(tasks · topN) records instead of one per group.

// RunJoinAggregateTopK executes the three rounds through the
// partitioned executor and returns the topN groups by descending sum
// (ties broken by ascending A), along with the per-round pipeline
// metrics.
func RunJoinAggregateTopK(r, s *relation.Relation, k, topN int, cfg mr.Config) ([]GroupSum, *mr.Pipeline, error) {
	round3 := &mr.Job[GroupSum, int, GroupSum, GroupSum]{
		Name: "top-k",
		Map: func(g GroupSum, emit func(int, GroupSum)) {
			emit(0, g) // a single logical reducer performs the global selection
		},
		Combine: func(_ int, gs []GroupSum) []GroupSum {
			return topGroups(gs, topN)
		},
		Reduce: func(_ int, gs []GroupSum, emit func(GroupSum)) {
			for _, g := range topGroups(gs, topN) {
				emit(g)
			}
		},
		Config: cfg,
	}
	outAny, pipe, err := mr.RunPipeline(joinInputs(r, s),
		mr.RoundOf(preAggJoinRound(k, cfg)),
		mr.RoundOf(aggregateRound(cfg)),
		mr.RoundOf(round3))
	if err != nil {
		return nil, pipe, err
	}
	return outAny.([]GroupSum), pipe, nil
}

// topGroups returns the n best groups by descending sum, ties by
// ascending A. It copies before sorting: reduce inputs are shared with
// the shuffle.
func topGroups(gs []GroupSum, n int) []GroupSum {
	out := make([]GroupSum, len(gs))
	copy(out, gs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sum != out[j].Sum {
			return out[i].Sum > out[j].Sum
		}
		return out[i].A < out[j].A
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// SerialTopK is the correctness baseline for RunJoinAggregateTopK.
func SerialTopK(r, s *relation.Relation, topN int) []GroupSum {
	return topGroups(SerialJoinAggregate(r, s), topN)
}
