package problems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/relation"
)

// GroupByProblem is Example 2.4: SELECT A, SUM(B) FROM R GROUP BY A over
// finite domains of sizes NA and NB. Inputs are the NA·NB possible
// tuples; outputs are the NA groups, each depending on the NB possible
// tuples sharing its A value. Unlike the other examples, an output is
// produced when *any* (not all) of its inputs are present, and its value
// is computed from the inputs that appear.
type GroupByProblem struct {
	NA, NB int
}

// NewGroupByProblem returns the grouping problem for the given domains.
func NewGroupByProblem(na, nb int) GroupByProblem { return GroupByProblem{na, nb} }

// Name implements core.Problem.
func (p GroupByProblem) Name() string { return fmt.Sprintf("groupby(NA=%d,NB=%d)", p.NA, p.NB) }

// NumInputs implements core.Problem.
func (p GroupByProblem) NumInputs() int { return p.NA * p.NB }

// NumOutputs implements core.Problem: one per A value.
func (p GroupByProblem) NumOutputs() int { return p.NA }

// ForEachOutput implements core.Problem: group a depends on the NB tuples
// (a, *).
func (p GroupByProblem) ForEachOutput(fn func(inputs []int) bool) {
	buf := make([]int, p.NB)
	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			buf[b] = a*p.NB + b
		}
		if !fn(buf) {
			return
		}
	}
}

// GroupBySchema sends each tuple to the single reducer of its A value —
// replication rate exactly 1: grouping is embarrassingly parallel, the
// zero-tradeoff end of the paper's spectrum. Each reducer holds at most
// NB inputs, so the schema is only feasible for q ≥ NB (the analogue of
// footnote 3's caveat for word count).
type GroupBySchema struct {
	P GroupByProblem
}

// NumReducers implements core.MappingSchema.
func (s GroupBySchema) NumReducers() int { return s.P.NA }

// Assign implements core.MappingSchema.
func (s GroupBySchema) Assign(in int) []int { return []int{in / s.P.NB} }

var _ core.MappingSchema = GroupBySchema{}

// GroupSum is one aggregation result.
type GroupSum struct {
	A   int
	Sum int64
}

// RunGroupBy executes the aggregation over an actual relation R(A,B) with
// a combiner pre-summing per map task, the classic MapReduce aggregation
// pattern. Replication rate is exactly 1 regardless of q.
func RunGroupBy(r *relation.Relation, cfg mr.Config) ([]GroupSum, mr.Metrics, error) {
	job := &mr.Job[relation.Tuple, int, int64, GroupSum]{
		Name: "group-by-sum",
		Map: func(t relation.Tuple, emit func(int, int64)) {
			emit(t[0], int64(t[1]))
		},
		Combine: func(_ int, vs []int64) []int64 {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			return []int64{sum}
		},
		Reduce: func(a int, vs []int64, emit func(GroupSum)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(GroupSum{A: a, Sum: sum})
		},
		Config: cfg,
	}
	return job.Run(r.Tuples)
}

// WordCountProblem is Example 2.5: with word *occurrences* as the inputs
// (the view under which the replication rate is meaningfully 1), inputs
// are (document position, word) pairs over a vocabulary of V words and a
// corpus of P positions; outputs are the V per-word counts. The paper's
// point: the natural schema has replication rate exactly 1 independent of
// q, so word count exhibits no tradeoff at all.
type WordCountProblem struct {
	V, P int // vocabulary size, total positions
}

// Name implements core.Problem.
func (w WordCountProblem) Name() string { return fmt.Sprintf("wordcount(V=%d,P=%d)", w.V, w.P) }

// NumInputs implements core.Problem: every position can hold any word.
func (w WordCountProblem) NumInputs() int { return w.V * w.P }

// NumOutputs implements core.Problem.
func (w WordCountProblem) NumOutputs() int { return w.V }

// ForEachOutput implements core.Problem: the count of word v depends on
// the P possible occurrences of v.
func (w WordCountProblem) ForEachOutput(fn func(inputs []int) bool) {
	buf := make([]int, w.P)
	for v := 0; v < w.V; v++ {
		for p := 0; p < w.P; p++ {
			buf[p] = v*w.P + p
		}
		if !fn(buf) {
			return
		}
	}
}

// WordCountSchema routes each occurrence to its word's reducer:
// replication rate 1.
type WordCountSchema struct {
	P WordCountProblem
}

// NumReducers implements core.MappingSchema.
func (s WordCountSchema) NumReducers() int { return s.P.V }

// Assign implements core.MappingSchema.
func (s WordCountSchema) Assign(in int) []int { return []int{in / s.P.P} }

var _ core.MappingSchema = WordCountSchema{}
