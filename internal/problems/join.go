// Package problems implements the worked examples of Section 2 of the
// paper, demonstrating that the model "can capture a varied set of
// problems": the natural join of Example 2.1, the grouping-and-
// aggregation problem of Example 2.4, and the word-count discussion of
// Example 2.5 (the embarrassingly parallel case with replication rate 1).
// Each comes with its core.Problem model, a mapping schema, and an
// executable MapReduce job.
package problems

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/relation"
)

// JoinProblem is Example 2.1: the natural join R(A,B) ⋈ S(B,C) over
// finite domains of sizes NA, NB, NC. Inputs are the NA·NB possible R
// tuples followed by the NB·NC possible S tuples; outputs are the
// NA·NB·NC triples (a,b,c), each depending on the two inputs R(a,b) and
// S(b,c).
type JoinProblem struct {
	NA, NB, NC int
}

// NewJoinProblem returns the join problem for the given domain sizes.
func NewJoinProblem(na, nb, nc int) JoinProblem { return JoinProblem{na, nb, nc} }

// Name implements core.Problem.
func (p JoinProblem) Name() string {
	return fmt.Sprintf("join(NA=%d,NB=%d,NC=%d)", p.NA, p.NB, p.NC)
}

// NumInputs implements core.Problem: NA·NB + NB·NC.
func (p JoinProblem) NumInputs() int { return p.NA*p.NB + p.NB*p.NC }

// NumOutputs implements core.Problem: NA·NB·NC.
func (p JoinProblem) NumOutputs() int { return p.NA * p.NB * p.NC }

// RInput and SInput are the dense input indices of the possible tuples.
func (p JoinProblem) RInput(a, b int) int { return a*p.NB + b }

// SInput gives the dense input index of the possible tuple S(b,c).
func (p JoinProblem) SInput(b, c int) int { return p.NA*p.NB + b*p.NC + c }

// ForEachOutput implements core.Problem.
func (p JoinProblem) ForEachOutput(fn func(inputs []int) bool) {
	buf := make([]int, 2)
	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			for c := 0; c < p.NC; c++ {
				buf[0] = p.RInput(a, b)
				buf[1] = p.SInput(b, c)
				if !fn(buf) {
					return
				}
			}
		}
	}
}

// HashJoinSchema is the standard one-round join schema: one reducer per
// B-value (or per B-hash-bucket when k < NB), with every tuple sent to
// the single reducer of its B value — replication rate exactly 1, the
// join being embarrassingly parallel in this model when keyed on B.
type HashJoinSchema struct {
	P JoinProblem
	K int // number of B buckets, 1 ≤ K ≤ NB
}

// NewHashJoinSchema buckets B into k groups.
func NewHashJoinSchema(p JoinProblem, k int) (HashJoinSchema, error) {
	if k < 1 || k > p.NB {
		return HashJoinSchema{}, fmt.Errorf("problems: need 1 <= k <= NB, got %d", k)
	}
	return HashJoinSchema{P: p, K: k}, nil
}

// NumReducers implements core.MappingSchema.
func (s HashJoinSchema) NumReducers() int { return s.K }

// Assign implements core.MappingSchema: a tuple goes to the bucket of its
// B value.
func (s HashJoinSchema) Assign(in int) []int {
	var b int
	if in < s.P.NA*s.P.NB {
		b = in % s.P.NB
	} else {
		b = (in - s.P.NA*s.P.NB) / s.P.NC
	}
	return []int{b % s.K}
}

var _ core.MappingSchema = HashJoinSchema{}

// RunHashJoin executes the join of two actual relations (with attribute
// schemas (A,B) and (B,C)) using the hash-join schema, returning the
// joined triples.
func RunHashJoin(r, s *relation.Relation, k int, cfg mr.Config) (*relation.Relation, mr.Metrics, error) {
	type tagged struct {
		FromR bool
		X, Y  int
	}
	var inputs []tagged
	for _, t := range r.Tuples {
		inputs = append(inputs, tagged{true, t[0], t[1]})
	}
	for _, t := range s.Tuples {
		inputs = append(inputs, tagged{false, t[0], t[1]})
	}
	job := &mr.Job[tagged, int, tagged, [3]int]{
		Name: "hash-join",
		Map: func(t tagged, emit func(int, tagged)) {
			if t.FromR {
				emit(t.Y%k, t) // key on B
			} else {
				emit(t.X%k, t)
			}
		},
		Reduce: func(_ int, ts []tagged, emit func([3]int)) {
			byB := make(map[int][][2]int) // B -> list of (a) from R
			for _, t := range ts {
				if t.FromR {
					byB[t.Y] = append(byB[t.Y], [2]int{t.X, t.Y})
				}
			}
			// Deterministic order: sort the S side before probing.
			var ss [][2]int
			for _, t := range ts {
				if !t.FromR {
					ss = append(ss, [2]int{t.X, t.Y})
				}
			}
			sort.Slice(ss, func(i, j int) bool {
				if ss[i][0] != ss[j][0] {
					return ss[i][0] < ss[j][0]
				}
				return ss[i][1] < ss[j][1]
			})
			for _, st := range ss {
				for _, rt := range byB[st[0]] {
					emit([3]int{rt[0], st[0], st[1]})
				}
			}
		},
		Config: cfg,
	}
	outs, met, err := job.Run(inputs)
	if err != nil {
		return nil, met, err
	}
	res := relation.New("joined", "A", "B", "C")
	for _, o := range outs {
		res.Add(o[0], o[1], o[2])
	}
	return res, met, nil
}
