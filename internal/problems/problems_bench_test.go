package problems

import (
	"math/rand"
	"testing"

	"repro/internal/mr"
	"repro/internal/relation"
)

// BenchmarkHashJoin measures the Example 2.1 distributed join.
func BenchmarkHashJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := relation.Random("R", 50, 2000, rng, "A", "B")
	s := relation.Random("S", 50, 2000, rng, "B", "C")
	for i := 0; i < b.N; i++ {
		if _, _, err := RunHashJoin(r, s, 8, mr.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupBy measures the Example 2.4 aggregation with combiner.
func BenchmarkGroupBy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	r := relation.Random("R", 100, 5000, rng, "A", "B")
	for i := 0; i < b.N; i++ {
		if _, _, err := RunGroupBy(r, mr.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinAggregate compares the two Section 7.1 plans.
func BenchmarkJoinAggregate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	r := relation.Random("R", 30, 1000, rng, "A", "B")
	s := relation.Random("S", 30, 1000, rng, "B", "C")
	b.Run("naive", func(b *testing.B) {
		var res JoinAggregateResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = RunJoinAggregateNaive(r, s, 4, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Pipeline.TotalPairsEmitted()), "comm")
	})
	b.Run("preagg", func(b *testing.B) {
		var res JoinAggregateResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = RunJoinAggregatePreAgg(r, s, 4, mr.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Pipeline.TotalPairsEmitted()), "comm")
	})
}
