package subgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/mr"
)

func TestInAlonClassExamples(t *testing.T) {
	tests := []struct {
		name string
		g    *graphs.Graph
		want bool
	}{
		// Section 5.1: every cycle, every graph with a perfect matching,
		// and every complete graph is in the Alon class; odd paths
		// (odd number of edges) are in, even paths are not.
		{"single edge", graphs.Path(2), true},
		{"triangle", graphs.Cycle(3), true},
		{"4-cycle", graphs.Cycle(4), true},
		{"5-cycle", graphs.Cycle(5), true},
		{"K4", graphs.Complete(4), true},
		{"K5", graphs.Complete(5), true},
		{"path 2 edges (3 nodes)", graphs.Path(3), false},
		{"path 3 edges (4 nodes)", graphs.Path(4), true},
		{"path 4 edges (5 nodes)", graphs.Path(5), false},
		{"path 5 edges (6 nodes)", graphs.Path(6), true},
		{"star 3 leaves", graphs.Star(4), false},
		{"empty", graphs.New(0, nil), true},
	}
	for _, tc := range tests {
		if got := InAlonClass(tc.g); got != tc.want {
			t.Errorf("InAlonClass(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestHamiltonianCycleHelper(t *testing.T) {
	g := graphs.Cycle(5)
	if !hasHamiltonianCycle(g, []int{0, 1, 2, 3, 4}) {
		t.Error("C5 should have a Hamiltonian cycle on all nodes")
	}
	if hasHamiltonianCycle(g, []int{0, 1, 2}) {
		t.Error("a sub-path of C5 has no induced Hamiltonian cycle")
	}
	if hasHamiltonianCycle(g, []int{0, 1}) {
		t.Error("two nodes cannot have a Hamiltonian cycle")
	}
}

func TestAlonBoundsShapes(t *testing.T) {
	// Triangles: s = 3 ⇒ (n/√q)^1, matching Section 4's n/√(2q) shape.
	if AlonLowerBound(100, 3, 100) != 10 {
		t.Errorf("AlonLowerBound(100,3,100) = %v, want 10", AlonLowerBound(100, 3, 100))
	}
	// s = 4 squares the ratio.
	if AlonLowerBound(100, 4, 100) != 100 {
		t.Errorf("AlonLowerBound(100,4,100) = %v, want 100", AlonLowerBound(100, 4, 100))
	}
	if EdgeLowerBound(10000, 3, 100) != 10 {
		t.Errorf("EdgeLowerBound(10000,3,100) = %v, want 10", EdgeLowerBound(10000, 3, 100))
	}
	if MaxInstancesAlon(100, 4) != 10000 {
		t.Errorf("MaxInstancesAlon(100,4) = %v, want 100²", MaxInstancesAlon(100, 4))
	}
}

func TestAlonTheoremEmpirically(t *testing.T) {
	// Embeddings of an Alon-class sample in a graph with m edges is
	// O(m^{s/2}); check the triangle (s=3, constant ≤ some small c) on
	// random graphs.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		data := graphs.GNM(20, 60, rng)
		count := CountEmbeddings(graphs.Cycle(3), data)
		bound := MaxInstancesAlon(float64(data.M()), 3)
		// Embeddings count ordered triples: 6 per triangle; allow the
		// constant.
		if float64(count) > 6*bound {
			t.Errorf("trial %d: %d embeddings exceed 6·m^1.5 = %v", trial, count, 6*bound)
		}
	}
}

func TestTwoPathProblemCounts(t *testing.T) {
	p := NewTwoPathProblem(5)
	if p.NumInputs() != 10 {
		t.Errorf("NumInputs = %d, want 10", p.NumInputs())
	}
	if p.NumOutputs() != 30 { // 3·C(5,3) = 30
		t.Errorf("NumOutputs = %d, want 30", p.NumOutputs())
	}
	count := 0
	p.ForEachOutput(func(inputs []int) bool {
		if len(inputs) != 2 || inputs[0] == inputs[1] {
			t.Fatalf("bad output inputs %v", inputs)
		}
		count++
		return true
	})
	if count != 30 {
		t.Errorf("enumerated %d, want 30", count)
	}
}

func TestTwoPathLowerBoundClamp(t *testing.T) {
	if TwoPathLowerBound(100, 50) != 4 {
		t.Errorf("2n/q = 4 expected, got %v", TwoPathLowerBound(100, 50))
	}
	if TwoPathLowerBound(100, 1000) != 1 {
		t.Errorf("bound should clamp to 1 for q > 2n, got %v", TwoPathLowerBound(100, 1000))
	}
}

func TestTwoPathSchemaValidAndReplication(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		n := 12
		s, err := NewTwoPathSchema(n, k)
		if err != nil {
			t.Fatal(err)
		}
		p := NewTwoPathProblem(n)
		if err := core.Validate(p, s, 0); err != nil {
			t.Errorf("k=%d: coverage fails: %v", k, err)
		}
		st := core.Measure(p, s)
		if st.ReplicationRate != float64(s.Replication()) {
			t.Errorf("k=%d: replication %v, want %d", k, st.ReplicationRate, s.Replication())
		}
	}
}

func TestTwoPathSchemaRejectsBadParams(t *testing.T) {
	if _, err := NewTwoPathSchema(10, 0); err == nil {
		t.Error("k=0 rejected")
	}
	if _, err := NewTwoPathSchema(1, 1); err == nil {
		t.Error("n=1 rejected")
	}
}

func TestTwoPathReducerLoadNearPrediction(t *testing.T) {
	n, k := 24, 4
	s, err := NewTwoPathSchema(n, k)
	if err != nil {
		t.Fatal(err)
	}
	st := core.Measure(NewTwoPathProblem(n), s)
	pred := s.ExpectedReducerInput() // 2n/k
	if float64(st.MaxReducerLoad) > 1.5*pred || float64(st.MaxReducerLoad) < 0.5*pred {
		t.Errorf("max load %d far from prediction %v", st.MaxReducerLoad, pred)
	}
}

func twoPathsAsStructs(g *graphs.Graph) []TwoPath {
	var out []TwoPath
	for _, p := range g.TwoPaths() {
		out = append(out, TwoPath{Mid: p[0], V: p[1], W: p[2]})
	}
	return out
}

func TestRunTwoPathsMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graphs.GNM(20, 70, rng)
	want := twoPathsAsStructs(g)
	sortTwoPaths(want)
	for _, k := range []int{1, 2, 3, 5} {
		s, err := NewTwoPathSchema(20, k)
		if err != nil {
			t.Fatal(err)
		}
		got, met, err := RunTwoPaths(s, g, mr.Config{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("k=%d: found %d 2-paths, want %d", k, len(got), len(want))
		}
		if r := met.ReplicationRate(); r != float64(s.Replication()) {
			t.Errorf("k=%d: measured replication %v, want %d", k, r, s.Replication())
		}
	}
}

func sortTwoPaths(ps []TwoPath) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			a, b := ps[j-1], ps[j]
			if b.Mid < a.Mid || (b.Mid == a.Mid && (b.V < a.V || (b.V == a.V && b.W < a.W))) {
				ps[j-1], ps[j] = ps[j], ps[j-1]
			} else {
				break
			}
		}
	}
}

func TestRunTwoPathsCompleteGraph(t *testing.T) {
	n := 10
	g := graphs.Complete(n)
	s, err := NewTwoPathSchema(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunTwoPaths(s, g, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != g.TwoPathCount() {
		t.Errorf("found %d, want %d", len(got), g.TwoPathCount())
	}
}

func TestRunTwoPathsStarSkew(t *testing.T) {
	// All 2-paths run through the hub; the hash-pair split divides the
	// hub's work across C(k,2) reducers.
	g := graphs.Star(16)
	s, err := NewTwoPathSchema(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, met, err := RunTwoPaths(s, g, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != g.TwoPathCount() {
		t.Errorf("found %d, want %d", len(got), g.TwoPathCount())
	}
	// No reducer may hold all 15 hub edges: the split must spread them.
	if met.MaxReducerInput >= 15 {
		t.Errorf("max reducer input %d; hash split should cap below full hub degree", met.MaxReducerInput)
	}
}

func TestMatcherTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := graphs.GNM(18, 60, rng)
	m, err := NewMatcher(graphs.Cycle(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	embs, met, err := m.Run(data, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := CountEmbeddings(graphs.Cycle(3), data)
	if int64(len(embs)) != want {
		t.Errorf("matcher found %d embeddings, serial %d", len(embs), want)
	}
	// 6 ordered embeddings per triangle.
	if want != 6*data.TriangleCount() {
		t.Errorf("embedding count %d != 6·triangles %d", want, 6*data.TriangleCount())
	}
	if met.PairsEmitted == 0 {
		t.Error("no communication recorded")
	}
}

func TestMatcherSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	data := graphs.GNM(14, 40, rng)
	m, err := NewMatcher(graphs.Cycle(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	embs, _, err := m.Run(data, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := CountEmbeddings(graphs.Cycle(4), data)
	if int64(len(embs)) != want {
		t.Errorf("matcher found %d 4-cycle embeddings, serial %d", len(embs), want)
	}
}

func TestMatcherNoDuplicates(t *testing.T) {
	data := graphs.Complete(8)
	m, err := NewMatcher(graphs.Cycle(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	embs, _, err := m.Run(data, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range embs {
		k := encodeEmbedding(e)
		if seen[k] {
			t.Fatalf("embedding %v produced twice", e)
		}
		seen[k] = true
	}
	if int64(len(embs)) != CountEmbeddings(graphs.Cycle(3), data) {
		t.Errorf("count mismatch")
	}
}

func TestMatcherRejectsBadParams(t *testing.T) {
	if _, err := NewMatcher(graphs.New(3, nil), 2); err == nil {
		t.Error("edgeless sample rejected")
	}
	if _, err := NewMatcher(graphs.Cycle(3), 0); err == nil {
		t.Error("b=0 rejected")
	}
}

// Property: the exactly-once rule partitions responsibility — for every
// pair of distinct end buckets and every cell pair, exactly one cell
// produces it.
func TestPropertyTwoPathProduceRule(t *testing.T) {
	s, err := NewTwoPathSchema(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(hvRaw, hwRaw uint8) bool {
		hv, hw := int(hvRaw)%5, int(hwRaw)%5
		producers := 0
		for pair := 0; pair < s.pairsPerNode(); pair++ {
			if s.shouldProduce(pair, hv, hw) {
				producers++
			}
		}
		return producers == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every embedding's cell is among the cells of each of its
// edges (the coverage witness for the matcher).
func TestPropertyMatcherCoverage(t *testing.T) {
	m, err := NewMatcher(graphs.Cycle(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c uint8) bool {
		u, v, w := int(a)%30, int(b)%30, int(c)%30
		if u == v || v == w || u == w {
			return true
		}
		emb := []int{u, v, w}
		cell := m.cellOfEmbedding(emb)
		// The triangle's edges: (0,1), (1,2), (0,2) in the sample.
		pairs := [][2]int{{u, v}, {v, w}, {u, w}}
		for _, p := range pairs {
			found := false
			for _, cc := range m.cellsForEdge(p[0], p[1]) {
				if cc == cell {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutomorphisms(t *testing.T) {
	tests := []struct {
		name string
		g    *graphs.Graph
		want int64
	}{
		{"triangle", graphs.Cycle(3), 6},
		{"4-cycle", graphs.Cycle(4), 8},
		{"path of 3 nodes", graphs.Path(3), 2},
		{"K4", graphs.Complete(4), 24},
		{"single edge", graphs.Path(2), 2},
		{"star 3 leaves", graphs.Star(4), 6}, // 3! leaf permutations
	}
	for _, tc := range tests {
		if got := Automorphisms(tc.g); got != tc.want {
			t.Errorf("Automorphisms(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestInstanceCountTrianglesInCompleteGraph(t *testing.T) {
	// Instances of the triangle in K_n = C(n,3): embeddings / |Aut| (the
	// Section 5.2 symmetry correction).
	for _, n := range []int{4, 5, 6} {
		data := graphs.Complete(n)
		want := int64(n * (n - 1) * (n - 2) / 6)
		if got := InstanceCount(graphs.Cycle(3), data); got != want {
			t.Errorf("n=%d: InstanceCount = %d, want C(n,3) = %d", n, got, want)
		}
	}
	// Consistency with the dedicated triangle counter on a random graph.
	data := graphs.GNM(15, 45, rand.New(rand.NewSource(31)))
	if got := InstanceCount(graphs.Cycle(3), data); got != data.TriangleCount() {
		t.Errorf("InstanceCount = %d, TriangleCount = %d", got, data.TriangleCount())
	}
}
