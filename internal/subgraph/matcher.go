package subgraph

import (
	"fmt"
	"sort"

	"repro/internal/graphs"
	"repro/internal/mr"
)

// Matcher finds all embeddings of a fixed sample graph in a data graph
// with one round of map-reduce, using a share b per sample node in the
// style of the subgraph-enumeration algorithm of [2]: the reducers form a
// b^s grid over the sample's s nodes; a data edge (u,v) is sent, for every
// sample edge (x,y) and both orientations, to all cells whose x and y
// coordinates match the endpoint hashes. Every embedding hashes to exactly
// one cell, which finds it and produces it there exactly once.
type Matcher struct {
	Sample *graphs.Graph
	B      int // share per sample node
}

// NewMatcher builds a matcher; the sample must have at least one edge.
func NewMatcher(sample *graphs.Graph, b int) (*Matcher, error) {
	if sample.M() == 0 {
		return nil, fmt.Errorf("subgraph: sample graph has no edges")
	}
	if b < 1 {
		return nil, fmt.Errorf("subgraph: need share b >= 1, got %d", b)
	}
	return &Matcher{Sample: sample, B: b}, nil
}

// NumReducers is b^s.
func (m *Matcher) NumReducers() int {
	p := 1
	for i := 0; i < m.Sample.N; i++ {
		p *= m.B
	}
	return p
}

// ReplicationPerEdge is the number of (cell, edge) pairs one data edge
// generates: for each of the sample's edges and 2 orientations, b^{s-2}
// cells (before deduplication of coinciding cells).
func (m *Matcher) ReplicationPerEdge() int {
	free := m.NumReducers() / (m.B * m.B)
	return 2 * m.Sample.M() * free
}

// hash buckets a data node.
func (m *Matcher) hash(u int) int { return u % m.B }

// cellsForEdge enumerates the distinct cells receiving the data edge
// (u,v).
func (m *Matcher) cellsForEdge(u, v int) []int {
	s := m.Sample.N
	strides := make([]int, s)
	st := 1
	for i := s - 1; i >= 0; i-- {
		strides[i] = st
		st *= m.B
	}
	seen := make(map[int]bool)
	var out []int
	var addAll func(fixed map[int]int)
	addAll = func(fixed map[int]int) {
		cells := []int{0}
		for i := 0; i < s; i++ {
			var next []int
			if c, ok := fixed[i]; ok {
				for _, base := range cells {
					next = append(next, base+c*strides[i])
				}
			} else {
				for _, base := range cells {
					for c := 0; c < m.B; c++ {
						next = append(next, base+c*strides[i])
					}
				}
			}
			cells = next
		}
		for _, c := range cells {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	for _, se := range m.Sample.Edges {
		addAll(map[int]int{se.U: m.hash(u), se.V: m.hash(v)})
		addAll(map[int]int{se.U: m.hash(v), se.V: m.hash(u)})
	}
	sort.Ints(out)
	return out
}

// cellOfEmbedding is the unique cell an embedding (sample node i → data
// node emb[i]) hashes to.
func (m *Matcher) cellOfEmbedding(emb []int) int {
	id := 0
	for i := 0; i < m.Sample.N; i++ {
		id = id*m.B + m.hash(emb[i])
	}
	return id
}

// Automorphisms counts the automorphisms of a sample graph (embeddings
// of the graph into itself). Section 5.2 notes that the number of
// *instances* of a sample graph S differs from the number of node tuples
// by the symmetries of S: instances = embeddings / |Aut(S)|, and there
// are at least n^s/s! distinct instance sets. Classic values: triangle 6,
// 4-cycle 8, path of 3 nodes 2, K4 24.
func Automorphisms(sample *graphs.Graph) int64 {
	var count int64
	emb := make([]int, sample.N)
	used := make([]bool, sample.N)
	var rec func(i int)
	rec = func(i int) {
		if i == sample.N {
			count++
			return
		}
		for u := 0; u < sample.N; u++ {
			if used[u] {
				continue
			}
			ok := true
			for j := 0; j < i && ok; j++ {
				// An automorphism preserves both edges and non-edges.
				if sample.HasEdge(i, j) != sample.HasEdge(u, emb[j]) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			emb[i] = u
			used[u] = true
			rec(i + 1)
			used[u] = false
		}
	}
	rec(0)
	return count
}

// InstanceCount converts an embedding count into an instance count by
// dividing out the sample's automorphisms.
func InstanceCount(sample, data *graphs.Graph) int64 {
	aut := Automorphisms(sample)
	if aut == 0 {
		return 0
	}
	return CountEmbeddings(sample, data) / aut
}

// Embeddings enumerates, serially, every injective mapping of the
// sample's nodes to data nodes that maps every sample edge to a data
// edge. It is the correctness baseline.
func Embeddings(sample, data *graphs.Graph) [][]int {
	var out [][]int
	emb := make([]int, sample.N)
	used := make(map[int]bool)
	var rec func(i int)
	rec = func(i int) {
		if i == sample.N {
			cp := make([]int, len(emb))
			copy(cp, emb)
			out = append(out, cp)
			return
		}
		for u := 0; u < data.N; u++ {
			if used[u] {
				continue
			}
			ok := true
			for j := 0; j < i && ok; j++ {
				if sample.HasEdge(i, j) && !data.HasEdge(u, emb[j]) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			emb[i] = u
			used[u] = true
			rec(i + 1)
			used[u] = false
		}
	}
	rec(0)
	return out
}

// CountEmbeddings is len(Embeddings) without materializing them.
func CountEmbeddings(sample, data *graphs.Graph) int64 {
	var count int64
	emb := make([]int, sample.N)
	used := make(map[int]bool)
	var rec func(i int)
	rec = func(i int) {
		if i == sample.N {
			count++
			return
		}
		for u := 0; u < data.N; u++ {
			if used[u] {
				continue
			}
			ok := true
			for j := 0; j < i && ok; j++ {
				if sample.HasEdge(i, j) && !data.HasEdge(u, emb[j]) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			emb[i] = u
			used[u] = true
			rec(i + 1)
			used[u] = false
		}
	}
	rec(0)
	return count
}

// Run executes the matcher over a data graph, returning all embeddings
// (each exactly once) and the round metrics.
func (m *Matcher) Run(data *graphs.Graph, cfg mr.Config) ([][]int, mr.Metrics, error) {
	job := &mr.Job[graphs.Edge, int, graphs.Edge, string]{
		Name: fmt.Sprintf("sample-matcher(s=%d,b=%d)", m.Sample.N, m.B),
		Map: func(e graphs.Edge, emit func(int, graphs.Edge)) {
			for _, cell := range m.cellsForEdge(e.U, e.V) {
				emit(cell, e)
			}
		},
		Reduce: func(cell int, edges []graphs.Edge, emit func(string)) {
			local := graphs.New(data.N, edges)
			for _, emb := range Embeddings(m.Sample, local) {
				if m.cellOfEmbedding(emb) == cell {
					emit(encodeEmbedding(emb))
				}
			}
		},
		Config: cfg,
	}
	outs, met, err := job.Run(data.Edges)
	if err != nil {
		return nil, met, err
	}
	embs := make([][]int, len(outs))
	for i, o := range outs {
		embs[i] = decodeEmbedding(o)
	}
	sort.Slice(embs, func(i, j int) bool { return lessIntSlice(embs[i], embs[j]) })
	return embs, met, nil
}

func encodeEmbedding(emb []int) string {
	b := make([]byte, 0, len(emb)*3)
	for _, v := range emb {
		b = append(b, byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

func decodeEmbedding(s string) []int {
	emb := make([]int, len(s)/3)
	for i := range emb {
		emb[i] = int(s[3*i])<<16 | int(s[3*i+1])<<8 | int(s[3*i+2])
	}
	return emb
}

func lessIntSlice(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
