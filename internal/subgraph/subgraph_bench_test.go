package subgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graphs"
	"repro/internal/mr"
)

// BenchmarkTwoPathsRun sweeps the bucket count on a complete graph.
func BenchmarkTwoPathsRun(b *testing.B) {
	g := graphs.Complete(36)
	for _, k := range []int{1, 3, 6} {
		s, err := NewTwoPathSchema(36, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := RunTwoPaths(s, g, mr.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatcher measures the generic sample-graph matcher for the
// triangle and the 4-cycle.
func BenchmarkMatcher(b *testing.B) {
	data := graphs.GNM(24, 100, rand.New(rand.NewSource(1)))
	for _, tc := range []struct {
		name   string
		sample *graphs.Graph
	}{
		{"triangle", graphs.Cycle(3)},
		{"square", graphs.Cycle(4)},
	} {
		m, err := NewMatcher(tc.sample, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Run(data, mr.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInAlonClass measures the partition search on the hardest small
// inputs (even paths, which force exhausting the search space).
func BenchmarkInAlonClass(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *graphs.Graph
	}{
		{"K6", graphs.Complete(6)},
		{"path7", graphs.Path(7)},
		{"cycle9", graphs.Cycle(9)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = InAlonClass(tc.g)
			}
		})
	}
}

// BenchmarkEmbeddings is the serial matcher baseline.
func BenchmarkEmbeddings(b *testing.B) {
	data := graphs.GNM(20, 80, rand.New(rand.NewSource(2)))
	sample := graphs.Cycle(3)
	for i := 0; i < b.N; i++ {
		_ = CountEmbeddings(sample, data)
	}
}
