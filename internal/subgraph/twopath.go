package subgraph

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/mr"
	"repro/internal/triangle"
)

// TwoPathProblem is the paths-of-length-two problem of Section 5.4, the
// simplest sample graph outside the Alon class: inputs are the C(n,2)
// possible edges, outputs are the 3·C(n,3) two-paths v—u—w (three per node
// triple, one per choice of middle node u).
type TwoPathProblem struct {
	N int
}

// NewTwoPathProblem returns the 2-paths problem on n nodes.
func NewTwoPathProblem(n int) TwoPathProblem { return TwoPathProblem{N: n} }

// Name implements core.Problem.
func (p TwoPathProblem) Name() string { return fmt.Sprintf("2-paths(n=%d)", p.N) }

// NumInputs implements core.Problem: C(n,2) edges.
func (p TwoPathProblem) NumInputs() int { return p.N * (p.N - 1) / 2 }

// NumOutputs implements core.Problem: 3·C(n,3) ≈ n³/2.
func (p TwoPathProblem) NumOutputs() int { return p.N * (p.N - 1) * (p.N - 2) / 2 }

// ForEachOutput implements core.Problem: the 2-path v—u—w depends on the
// edges {u,v} and {u,w}.
func (p TwoPathProblem) ForEachOutput(fn func(inputs []int) bool) {
	tp := triangle.Problem{N: p.N}
	buf := make([]int, 2)
	for u := 0; u < p.N; u++ {
		for v := 0; v < p.N; v++ {
			if v == u {
				continue
			}
			for w := v + 1; w < p.N; w++ {
				if w == u {
					continue
				}
				buf[0] = tp.EdgeIndex(u, v)
				buf[1] = tp.EdgeIndex(u, w)
				if !fn(buf) {
					return
				}
			}
		}
	}
}

// TwoPathLowerBound is the Section 5.4.1 bound r ≥ 2n/q, clamped at the
// trivial bound 1 for q > 2n.
func TwoPathLowerBound(n int, q float64) float64 {
	r := 2 * float64(n) / q
	if r < 1 {
		return 1
	}
	return r
}

// TwoPathRecipe is the Section 5.4.1 recipe: g(q) = q²/2 (any two edges
// make at most one 2-path), |I| ≈ n²/2, |O| ≈ n³/2.
func TwoPathRecipe(n int) core.Recipe {
	nf := float64(n)
	return core.Recipe{
		ProblemName: fmt.Sprintf("2-paths(n=%d)", n),
		G:           func(q float64) float64 { return q * q / 2 },
		NumInputs:   nf * nf / 2,
		NumOutputs:  nf * nf * nf / 2,
	}
}

// TwoPathSchema is the Section 5.4.2 algorithm. For k = 1 it is the
// simple q = n case: one reducer per node u holding all edges incident to
// u, replication rate 2. For k ≥ 2, nodes are hashed into k buckets and
// the reducers are pairs [u, {i,j}] with i < j; the edge (a,b) is sent to
// the 2(k-1) reducers [b, {h(a), *}] and [a, {*, h(b)}].
type TwoPathSchema struct {
	N, K int
}

// NewTwoPathSchema builds the schema for n nodes and k ≥ 1 buckets.
func NewTwoPathSchema(n, k int) (*TwoPathSchema, error) {
	if k < 1 {
		return nil, fmt.Errorf("subgraph: need k >= 1, got %d", k)
	}
	if n < 2 {
		return nil, fmt.Errorf("subgraph: need n >= 2, got %d", n)
	}
	return &TwoPathSchema{N: n, K: k}, nil
}

// Bucket is the node hash.
func (s *TwoPathSchema) Bucket(u int) int { return u % s.K }

// pairsPerNode is C(k,2) for k ≥ 2, or 1 for the k = 1 special case.
func (s *TwoPathSchema) pairsPerNode() int {
	if s.K == 1 {
		return 1
	}
	return s.K * (s.K - 1) / 2
}

// pairID ranks the set {i,j}, i < j, among the C(k,2) bucket pairs.
func (s *TwoPathSchema) pairID(i, j int) int {
	// pairs (0,1),(0,2),...,(0,k-1),(1,2),...
	return i*s.K - i*(i+1)/2 + (j - i - 1)
}

// reducerID packs (node u, bucket pair) into a dense reducer index.
func (s *TwoPathSchema) reducerID(u, pair int) int { return u*s.pairsPerNode() + pair }

// NumReducers implements core.MappingSchema: n·C(k,2) (or n when k = 1).
func (s *TwoPathSchema) NumReducers() int { return s.N * s.pairsPerNode() }

// Assign implements core.MappingSchema.
func (s *TwoPathSchema) Assign(in int) []int {
	tp := triangle.Problem{N: s.N}
	a, b := tp.EdgeFromIndex(in)
	return s.reducersForEdge(a, b)
}

func (s *TwoPathSchema) reducersForEdge(a, b int) []int {
	if s.K == 1 {
		return []int{s.reducerID(a, 0), s.reducerID(b, 0)}
	}
	var rs []int
	seen := make(map[int]bool)
	add := func(mid, i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		id := s.reducerID(mid, s.pairID(i, j))
		if !seen[id] {
			seen[id] = true
			rs = append(rs, id)
		}
	}
	ha, hb := s.Bucket(a), s.Bucket(b)
	for x := 0; x < s.K; x++ {
		add(b, ha, x) // b may be the middle node; other end hashed to ha
		add(a, hb, x) // a may be the middle node
	}
	return rs
}

var _ core.MappingSchema = (*TwoPathSchema)(nil)

// Replication is the exact replication rate: 2 for k = 1, 2(k-1)
// otherwise.
func (s *TwoPathSchema) Replication() int {
	if s.K == 1 {
		return 2
	}
	return 2 * (s.K - 1)
}

// ExpectedReducerInput is the expected edges per reducer on the complete
// instance: all n-1 incident edges for k = 1, else about 2n/k.
func (s *TwoPathSchema) ExpectedReducerInput() float64 {
	if s.K == 1 {
		return float64(s.N - 1)
	}
	return 2 * float64(s.N) / float64(s.K)
}

// TwoPath is an output v—u—w with middle node Mid and ends V < W.
type TwoPath struct {
	Mid, V, W int
}

// shouldProduce is the exactly-once rule of Section 5.4.2: the reducer
// [u,{i,j}] produces v—u—w iff {h(v),h(w)} = {i,j}, or h(v) = h(w) = i
// and j = i+1 mod k.
func (s *TwoPathSchema) shouldProduce(pair int, hv, hw int) bool {
	if s.K == 1 {
		return true
	}
	// Decode pair back to (i, j).
	i, j := 0, 0
	id := pair
	for i = 0; i < s.K; i++ {
		row := s.K - i - 1
		if id < row {
			j = i + 1 + id
			break
		}
		id -= row
	}
	if hv > hw {
		hv, hw = hw, hv
	}
	if hv != hw {
		return hv == i && hw == j
	}
	// Equal buckets: the canonical cell pairs i = hv with its cyclic
	// successor.
	succ := (hv + 1) % s.K
	lo, hi := hv, succ
	if lo > hi {
		lo, hi = hi, lo
	}
	return i == lo && j == hi
}

// RunTwoPaths executes the Section 5.4.2 algorithm over a data graph,
// producing every 2-path exactly once.
func RunTwoPaths(s *TwoPathSchema, g *graphs.Graph, cfg mr.Config) ([]TwoPath, mr.Metrics, error) {
	type key struct {
		Mid  int
		Pair int
	}
	job := &mr.Job[graphs.Edge, key, int, TwoPath]{
		Name: fmt.Sprintf("two-paths(n=%d,k=%d)", s.N, s.K),
		Map: func(e graphs.Edge, emit func(key, int)) {
			for _, rid := range s.reducersForEdge(e.U, e.V) {
				mid := rid / s.pairsPerNode()
				pair := rid % s.pairsPerNode()
				other := e.U
				if mid == e.U {
					other = e.V
				}
				emit(key{mid, pair}, other)
			}
		},
		Reduce: func(k key, ends []int, emit func(TwoPath)) {
			sort.Ints(ends)
			for i := 0; i < len(ends); i++ {
				for j := i + 1; j < len(ends); j++ {
					v, w := ends[i], ends[j]
					if v == w {
						continue
					}
					if s.shouldProduce(k.Pair, s.Bucket(v), s.Bucket(w)) {
						emit(TwoPath{Mid: k.Mid, V: v, W: w})
					}
				}
			}
		},
		Config: cfg,
	}
	paths, met, err := job.Run(g.Edges)
	if err != nil {
		return nil, met, err
	}
	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i], paths[j]
		if a.Mid != b.Mid {
			return a.Mid < b.Mid
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.W < b.W
	})
	return paths, met, nil
}
