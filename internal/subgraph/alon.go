// Package subgraph implements Section 5 of the paper: finding instances
// of a fixed sample graph in a data graph. It provides the Alon-class
// membership test of Section 5.1, the replication-rate lower bounds of
// Sections 5.2 and 5.3, the 2-paths problem and algorithm of Section 5.4,
// and a generic shares-based sample-graph matcher in the style of
// Afrati–Fotakis–Ullman [2] whose replication matches the (√(m/q))^{s-2}
// bound shape.
package subgraph

import (
	"math"

	"repro/internal/graphs"
)

// InAlonClass reports whether the sample graph is in the Alon class of
// Section 5.1: its nodes can be partitioned into disjoint sets such that
// the subgraph induced by each part is either a single edge between two
// nodes, or contains a Hamiltonian cycle of odd length. The search is
// exhaustive and intended for the small sample graphs (s ≤ 10) the
// experiments use.
func InAlonClass(g *graphs.Graph) bool {
	if g.N == 0 {
		return true
	}
	assigned := make([]bool, g.N)
	return alonPartition(g, assigned, 0)
}

// alonPartition tries to cover nodes from as onward.
func alonPartition(g *graphs.Graph, assigned []bool, from int) bool {
	v := -1
	for u := from; u < g.N; u++ {
		if !assigned[u] {
			v = u
			break
		}
	}
	if v == -1 {
		return true
	}
	// Case 1: pair v with an unassigned neighbor (a single-edge part).
	for _, u := range g.Adj(v) {
		if assigned[u] {
			continue
		}
		assigned[v], assigned[u] = true, true
		if alonPartition(g, assigned, v+1) {
			return true
		}
		assigned[v], assigned[u] = false, false
	}
	// Case 2: put v in an odd-size part whose induced subgraph has a
	// Hamiltonian cycle. Enumerate candidate subsets of unassigned nodes
	// containing v.
	var pool []int
	for u := v + 1; u < g.N; u++ {
		if !assigned[u] {
			pool = append(pool, u)
		}
	}
	for size := 3; size <= len(pool)+1; size += 2 {
		if tryOddParts(g, assigned, v, pool, nil, size-1, 0) {
			return true
		}
	}
	return false
}

// tryOddParts enumerates (need)-subsets of pool[start:] to join v, checks
// for an induced odd Hamiltonian cycle, and recurses.
func tryOddParts(g *graphs.Graph, assigned []bool, v int, pool, chosen []int, need, start int) bool {
	if need == 0 {
		part := append([]int{v}, chosen...)
		if !hasHamiltonianCycle(g, part) {
			return false
		}
		for _, u := range part {
			assigned[u] = true
		}
		ok := alonPartition(g, assigned, v+1)
		if !ok {
			for _, u := range part {
				assigned[u] = false
			}
		}
		return ok
	}
	for i := start; i <= len(pool)-need; i++ {
		if tryOddParts(g, assigned, v, pool, append(chosen, pool[i]), need-1, i+1) {
			return true
		}
	}
	return false
}

// hasHamiltonianCycle reports whether the subgraph induced by part has a
// cycle through all of part. Brute-force over permutations with the first
// node fixed; parts are small.
func hasHamiltonianCycle(g *graphs.Graph, part []int) bool {
	if len(part) < 3 {
		return false
	}
	rest := make([]int, len(part)-1)
	copy(rest, part[1:])
	return hamPerm(g, part[0], part[0], rest, 0)
}

func hamPerm(g *graphs.Graph, first, last int, rest []int, used int) bool {
	if used == len(rest) {
		return g.HasEdge(last, first)
	}
	for i := used; i < len(rest); i++ {
		rest[used], rest[i] = rest[i], rest[used]
		if g.HasEdge(last, rest[used]) && hamPerm(g, first, rest[used], rest, used+1) {
			rest[used], rest[i] = rest[i], rest[used]
			return true
		}
		rest[used], rest[i] = rest[i], rest[used]
	}
	return false
}

// AlonLowerBound is the Section 5.2 bound for a sample graph of s nodes
// in the Alon class over the complete n-node instance: r = Ω((n/√q)^{s-2}).
func AlonLowerBound(n float64, s int, q float64) float64 {
	return math.Pow(n/math.Sqrt(q), float64(s-2))
}

// EdgeLowerBound is the Section 5.3 sparse-data rescaling: for a data
// graph with m edges and reducers of q actual edges,
// r = Ω((√(m/q))^{s-2}).
func EdgeLowerBound(m float64, s int, q float64) float64 {
	return math.Pow(math.Sqrt(m/q), float64(s-2))
}

// MaxInstancesAlon is Alon's theorem [4] as used in Section 5.2: a graph
// with q edges contains O(q^{s/2}) instances of an s-node Alon-class
// sample graph. The function returns q^{s/2} (the constant is dropped, as
// in the paper).
func MaxInstancesAlon(q float64, s int) float64 {
	return math.Pow(q, float64(s)/2)
}
