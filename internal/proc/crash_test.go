// kill -9 integration tests: workers die mid-round — externally, mid
// map section, after the manifest commit, and during reduce — and the
// job must finish with output byte-identical to the single-process
// reference. Run under -race in the crashtest CI job across worker
// fleet sizes (MRPROC_WORKERS).
package proc

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runfile"
)

// crashOptions is the shared shape: small lease TTL so fencing is
// exercised quickly, a dwell knob so kills land mid-task, generous
// timeout for slow CI. MemoryBudget comes from the CI matrix
// (MRPROC_MEMBUDGET) so the same kills also land between mid-task
// spills.
func crashOptions(t *testing.T, extraEnv ...string) Options {
	return Options{
		Workers:          testWorkers(t),
		Partitions:       5,
		MemoryBudget:     testMemBudget(t),
		ReduceSplitPairs: testSplitPairs(t),
		LeaseTTL:         time.Second,
		Timeout:          90 * time.Second,
		WorkerEnv:        append([]string{"MR_PROC_SLOW_MS=25"}, extraEnv...),
	}
}

// TestKill9MapWorkerMidRound kill -9s a live worker the moment the
// first map task commits — mid-round, while it and its peers hold
// leases and half-written spool state — and requires byte-identical
// output plus honest death accounting.
func TestKill9MapWorkerMidRound(t *testing.T) {
	lines := genLines(150)
	const parts = 5

	var mu sync.Mutex
	pids := make(map[string]int)
	var killOnce sync.Once
	killed := false

	opts := crashOptions(t)
	opts.Partitions = parts
	opts.Recorder = obs.NewRecorder(0)
	opts.Hooks = Hooks{
		OnSpawn: func(worker string, pid int) {
			mu.Lock()
			pids[worker] = pid
			mu.Unlock()
		},
		OnMapCommitted: func(task, attempt int, worker string) {
			killOnce.Do(func() {
				// Kill the worker that just committed: thanks to the dwell
				// knob it is already inside its next map task.
				mu.Lock()
				pid := pids[worker]
				mu.Unlock()
				if p, err := os.FindProcess(pid); err == nil {
					p.Kill()
					killed = true
				}
			})
		},
	}
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill hook never fired")
	}
	if !reflect.DeepEqual(outs, refWordCount(lines, parts)) {
		t.Fatal("output after map-worker kill -9 diverges from single-process reference")
	}
	if met.WorkerDeaths < 1 {
		t.Errorf("WorkerDeaths = %d, want >= 1", met.WorkerDeaths)
	}

	// The recorder saw the whole story: a worker-life span that ended in
	// death, and the death instant itself.
	deaths := 0
	for _, lane := range opts.Recorder.Snapshot() {
		if lane.Kind != obs.LaneProc {
			continue
		}
		for _, ev := range lane.Events {
			if ev.Op == obs.OpWorkerDeath && ev.Kind == obs.KindInstant {
				deaths++
			}
		}
	}
	if deaths < 1 {
		t.Errorf("recorder saw %d worker-death instants, want >= 1", deaths)
	}
}

// TestKill9ReduceWorker kills the worker assigned partition 0's reduce
// task at the moment it starts; the re-executed attempt must produce
// identical output.
func TestKill9ReduceWorker(t *testing.T) {
	lines := genLines(120)
	opts := crashOptions(t, "MR_PROC_KILL=reduce:0")
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, refWordCount(lines, opts.Partitions)) {
		t.Fatal("output after reduce-worker kill -9 diverges from single-process reference")
	}
	if met.WorkerDeaths < 1 {
		t.Errorf("WorkerDeaths = %d, want >= 1", met.WorkerDeaths)
	}
	if met.ReduceRetries < 1 {
		t.Errorf("ReduceRetries = %d, want >= 1", met.ReduceRetries)
	}
}

// TestKill9AfterManifestCommitSalvages kills a worker after it durably
// committed map task 1 but before its report left the process. The
// driver must adopt the committed sections from the manifest — not
// re-execute — and the output must be identical either way.
func TestKill9AfterManifestCommitSalvages(t *testing.T) {
	lines := genLines(120)
	opts := crashOptions(t, "MR_PROC_KILL=map-manifest:1")
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, refWordCount(lines, opts.Partitions)) {
		t.Fatal("output after salvage diverges from single-process reference")
	}
	if met.WorkerDeaths < 1 {
		t.Errorf("WorkerDeaths = %d, want >= 1", met.WorkerDeaths)
	}
	if met.SalvagedTasks < 1 {
		t.Errorf("SalvagedTasks = %d, want >= 1 (task re-executed instead of adopted)", met.SalvagedTasks)
	}
}

// TestKill9MidSectionReexecutes kills a worker halfway through writing
// map task 0's first spool section — a torn, uncommitted section. The
// task must be re-executed (never salvaged from the torn bytes) and the
// output must be identical.
func TestKill9MidSectionReexecutes(t *testing.T) {
	lines := genLines(120)
	opts := crashOptions(t, "MR_PROC_KILL=map-torn:0")
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, refWordCount(lines, opts.Partitions)) {
		t.Fatal("output after torn-section kill -9 diverges from single-process reference")
	}
	if met.WorkerDeaths < 1 {
		t.Errorf("WorkerDeaths = %d, want >= 1", met.WorkerDeaths)
	}
	if met.MapRetries < 1 {
		t.Errorf("MapRetries = %d, want >= 1 (torn task must re-run)", met.MapRetries)
	}
}

// TestKill9UnderSpill runs with a MemoryBudget small enough that every
// map task spills multiple sections per partition, and kills a worker
// inside the third task's spill sequence — after earlier sections of
// the same attempt already hit the spool. The retry must supersede ALL
// of the fenced attempt's sections (committed and torn alike) and the
// output must stay byte-identical to the single-process reference.
func TestKill9UnderSpill(t *testing.T) {
	lines := genLines(120)
	opts := crashOptions(t, "MR_PROC_KILL=map-torn:2")
	opts.MemoryBudget = 8
	opts.Dir = t.TempDir()
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, refWordCount(lines, opts.Partitions)) {
		t.Fatal("output after kill -9 under spill pressure diverges from single-process reference")
	}
	if met.WorkerDeaths < 1 {
		t.Errorf("WorkerDeaths = %d, want >= 1", met.WorkerDeaths)
	}
	if met.MapRetries < 1 {
		t.Errorf("MapRetries = %d, want >= 1 (torn task must re-run)", met.MapRetries)
	}
	// The kill must have landed mid-spill: some committed attempt in the
	// manifests carries a section with Seq >= 1.
	manifests, err := filepath.Glob(filepath.Join(opts.Dir, "manifest-*.log"))
	if err != nil || len(manifests) == 0 {
		t.Fatalf("no manifests found: %v", err)
	}
	multiSection := false
	for _, mp := range manifests {
		entries, err := readManifest(runfile.OSFS, mp)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			for _, sec := range e.Sections {
				if sec.Seq >= 1 {
					multiSection = true
				}
			}
		}
	}
	if !multiSection {
		t.Error("no multi-section attempt in any manifest: the budget never forced a mid-task spill")
	}
}

// TestHeartbeatKeepsSlowWorkerLeased dwells every task 3.5× the lease
// TTL: slow is not dead, so heartbeats (every TTL/3) must keep the
// leases renewed — zero expirations, zero retries, identical output.
// The inverse (a worker whose heartbeats stop) is covered by the kill
// tests above, where fencing and re-grant are required.
func TestHeartbeatKeepsSlowWorkerLeased(t *testing.T) {
	lines := genLines(40)
	opts := Options{
		Workers:    2,
		Partitions: 3,
		LeaseTTL:   200 * time.Millisecond,
		Timeout:    90 * time.Second,
		WorkerEnv:  []string{"MR_PROC_SLOW_MS=700"},
	}
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, refWordCount(lines, opts.Partitions)) {
		t.Fatal("output of slow run diverges from reference")
	}
	// Heartbeats must have kept every lease alive despite each task
	// dwelling 3.5× the TTL.
	if met.LeaseExpirations != 0 || met.MapRetries != 0 {
		t.Errorf("heartbeats failed to keep slow workers leased: %+v", met)
	}
	if met.WorkerDeaths != 0 {
		t.Errorf("WorkerDeaths = %d in a crash-free run", met.WorkerDeaths)
	}
}
