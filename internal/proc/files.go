// The data plane's file layer: spool files a map worker appends fenced
// run-file sections to, the manifest that commits them durably, and the
// crash-reopen path that validates sections when the committing process
// is gone. Everything driver-side goes through a runfile.FS so the
// fault-injection harness can march failures through reopen/salvage.
package proc

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/runfile"
)

// SpoolPath is the spool file of one (worker, partition) pair. One
// writer process per file — no cross-process write sharing — but any
// process may read committed sections.
func SpoolPath(dir, worker string, part int) string {
	return filepath.Join(dir, fmt.Sprintf("spool-%s-p%03d.run", worker, part))
}

// ManifestPath is the worker's task-commit log.
func ManifestPath(dir, worker string) string {
	return filepath.Join(dir, fmt.Sprintf("manifest-%s.log", worker))
}

// outPath is the output file of one reduce attempt.
func outPath(dir string, part, attempt int) string {
	return filepath.Join(dir, fmt.Sprintf("out-p%03d-a%02d.gob", part, attempt))
}

// spoolSet is one worker's open spool files, created lazily per
// partition. Worker-side only: it writes with the real filesystem, and
// the bytes it has pushed into the kernel survive the process.
type spoolSet struct {
	dir    string
	worker string
	files  map[int]*spoolFile
	w      *runfile.Writer // reused across sections via Reset
}

type spoolFile struct {
	f   *os.File
	off int64 // next section's offset
}

func newSpoolSet(dir, worker string) *spoolSet {
	return &spoolSet{dir: dir, worker: worker, files: make(map[int]*spoolFile)}
}

func (s *spoolSet) file(part int) (*spoolFile, error) {
	if sf, ok := s.files[part]; ok {
		return sf, nil
	}
	f, err := os.OpenFile(SpoolPath(s.dir, s.worker, part), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("proc: opening spool: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("proc: sizing spool: %w", err)
	}
	sf := &spoolFile{f: f, off: st.Size()}
	s.files[part] = sf
	return sf, nil
}

// appendSection writes one run-file section for (task, attempt, part):
// the write callback emits the sorted groups through the runfile.Writer
// (and is where crash-injection knobs fire mid-section), then the
// section is finished (footer + trailer) and its coordinates returned.
// seq orders the sections one attempt writes for one partition (a task
// under memory pressure seals the same partition repeatedly). A crash
// anywhere before the caller's manifest commit leaves only a torn or
// unreferenced byte range that no reader will ever be handed.
func (s *spoolSet) appendSection(task, attempt, part, seq int, write func(w *runfile.Writer) error) (Section, error) {
	sf, err := s.file(part)
	if err != nil {
		return Section{}, err
	}
	if s.w == nil {
		s.w = runfile.NewWriter(sf.f)
	} else {
		s.w.Reset(sf.f)
	}
	w := s.w
	if err := write(w); err != nil {
		return Section{}, err
	}
	if err := w.Finish(); err != nil {
		return Section{}, fmt.Errorf("proc: finishing spool section: %w", err)
	}
	sec := Section{
		Path:       SpoolPath(s.dir, s.worker, part),
		Offset:     sf.off,
		Length:     w.BytesWritten(),
		DataBytes:  w.BodyBytes(),
		IndexBytes: w.BytesWritten() - w.BodyBytes(),
		Pairs:      w.Pairs(),
		Groups:     w.Groups(),
		Task:       task,
		Attempt:    attempt,
		Part:       part,
		Seq:        seq,
	}
	sf.off += w.BytesWritten()
	return sec, nil
}

func (s *spoolSet) closeAll() error {
	var first error
	for _, sf := range s.files {
		if err := sf.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// manifestEntry commits one finished map task: every section it wrote,
// plus its pre-combine emission count for the metrics. The manifest is
// the durability point — a task whose entry reached the file is
// recoverable even if the worker dies before its report lands.
type manifestEntry struct {
	Task         int
	Attempt      int
	PairsEmitted int64
	// PeakResident is the attempt's buffered-pair high-water mark,
	// committed alongside the sections so salvage preserves the metric.
	PeakResident int64
	Sections     []Section
}

// manifestWriter appends entries to the worker's manifest, one JSON
// line per committed task, each line pushed to the kernel in a single
// write so a kill -9 can tear at most the final line (which the reader
// tolerates).
type manifestWriter struct{ f *os.File }

func openManifest(dir, worker string) (*manifestWriter, error) {
	f, err := os.OpenFile(ManifestPath(dir, worker), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("proc: opening manifest: %w", err)
	}
	return &manifestWriter{f: f}, nil
}

func (m *manifestWriter) commit(e manifestEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("proc: encoding manifest entry: %w", err)
	}
	line = append(line, '\n')
	if _, err := m.f.Write(line); err != nil {
		return fmt.Errorf("proc: committing manifest entry: %w", err)
	}
	return nil
}

func (m *manifestWriter) close() error { return m.f.Close() }

// readManifest replays a worker's manifest. A torn final line — the
// worker died inside its last commit — ends the replay cleanly: every
// complete line before it is a committed task. A missing manifest
// means no tasks committed. Any other error is surfaced: salvage must
// not mistake an unreadable log for an empty one.
func readManifest(fs runfile.FS, path string) ([]manifestEntry, error) {
	f, err := fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("proc: opening manifest %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("proc: reading manifest %s: %w", path, err)
	}
	var entries []manifestEntry
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // torn final line: the commit never completed
		}
		var e manifestEntry
		if err := json.Unmarshal(data[:nl], &e); err != nil {
			// A malformed complete line is corruption, not a torn tail:
			// stop replaying here but keep what already parsed — the
			// entries before it were each committed atomically.
			break
		}
		entries = append(entries, e)
		data = data[nl+1:]
	}
	return entries, nil
}

// validateSection reopens one committed section and proves it readable
// and complete: the index is loaded via runfile.LoadIndex — footer
// first, torn-footer fallback to a sequential scan — and the recovered
// group and pair counts must equal what the manifest committed. This is
// the crash-reopen gate: a section that fails here is discarded and its
// task re-executed, never half-used.
func validateSection(fs runfile.FS, sec Section) error {
	f, err := fs.Open(sec.Path)
	if err != nil {
		return fmt.Errorf("proc: reopening spool %s: %w", sec.Path, err)
	}
	defer f.Close()
	idx, err := runfile.LoadIndex(io.NewSectionReader(f, sec.Offset, sec.Length), sec.Length)
	if err != nil {
		return fmt.Errorf("proc: section %s@%d+%d unreadable: %w", sec.Path, sec.Offset, sec.Length, err)
	}
	var pairs int64
	for _, e := range idx {
		pairs += e.Count
	}
	if int64(len(idx)) != sec.Groups || pairs != sec.Pairs {
		return fmt.Errorf("proc: section %s@%d+%d recovered %d groups/%d pairs, manifest committed %d/%d",
			sec.Path, sec.Offset, sec.Length, len(idx), pairs, sec.Groups, sec.Pairs)
	}
	return nil
}
