package proc

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i, 0.5); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.2}
	// u=0 → 0.8x, u≈1 → 1.2x, u=0.5 → exactly the base delay.
	if got := b.Delay(0, 0); got != 80*time.Millisecond {
		t.Errorf("Delay(0, u=0) = %v, want 80ms", got)
	}
	if got := b.Delay(0, 0.5); got != 100*time.Millisecond {
		t.Errorf("Delay(0, u=0.5) = %v, want 100ms", got)
	}
	if got := b.Delay(0, 1); got != 120*time.Millisecond {
		t.Errorf("Delay(0, u=1) = %v, want 120ms", got)
	}
}

// TestRetryScheduleDeterministic pins the exact slept durations with an
// injected clock and variate sequence: no real time passes.
func TestRetryScheduleDeterministic(t *testing.T) {
	var slept []time.Duration
	us := []float64{0.5, 0.5, 0, 1}
	ui := 0
	b := Backoff{
		Base: 10 * time.Millisecond, Max: 100 * time.Millisecond,
		Factor: 2, Jitter: 0.5, Attempts: 5,
		Rand:  func() float64 { u := us[ui]; ui++; return u },
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}
	calls := 0
	err := b.Retry(context.Background(), func() error {
		calls++
		if calls < 5 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 5 {
		t.Fatalf("op called %d times, want 5", calls)
	}
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 0, u=0.5 → no jitter shift
		20 * time.Millisecond,  // attempt 1, u=0.5
		20 * time.Millisecond,  // attempt 2: 40ms, u=0 → 0.5x
		120 * time.Millisecond, // attempt 3: 80ms, u=1 → 1.5x
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRetryAttemptBudget(t *testing.T) {
	calls := 0
	b := Backoff{Attempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	wantErr := errors.New("still down")
	err := b.Retry(context.Background(), func() error { calls++; return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("Retry = %v, want last attempt error", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	b := Backoff{Attempts: 10, Sleep: func(context.Context, time.Duration) error { return nil }}
	fatal := errors.New("fenced")
	err := b.Retry(context.Background(), func() error { calls++; return Permanent(fatal) })
	if !errors.Is(err, fatal) {
		t.Fatalf("Retry = %v, want the permanent error unwrapped", err)
	}
	if calls != 1 {
		t.Errorf("op called %d times, want 1", calls)
	}
}

func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	b := Backoff{Attempts: -1, Sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	err := b.Retry(ctx, func() error { calls++; return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("op called %d times, want 1", calls)
	}
}
