package proc

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/errfs"
	"repro/internal/runfile"
)

// buildSection writes one real committed section (three groups, six
// pairs) into a spool file under dir and returns it.
func buildSection(t *testing.T, dir string) Section {
	t.Helper()
	ss := newSpoolSet(dir, "w0")
	defer ss.closeAll()
	sec, err := ss.appendSection(0, 0, 0, 0, func(w *runfile.Writer) error {
		groups := []struct {
			key  string
			vals []string
		}{
			{"alpha", []string{"1", "22", "333"}},
			{"alps", []string{"4444"}},
			{"beta", []string{"5", "6"}},
		}
		for _, g := range groups {
			if err := w.BeginGroup([]byte(g.key), len(g.vals)); err != nil {
				return err
			}
			for _, v := range g.vals {
				if err := w.AppendValue([]byte(v)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sec
}

func TestValidateSectionClean(t *testing.T) {
	dir := t.TempDir()
	sec := buildSection(t, dir)
	if sec.Pairs != 6 || sec.Groups != 3 {
		t.Fatalf("section profile = %d pairs / %d groups, want 6/3", sec.Pairs, sec.Groups)
	}
	if sec.DataBytes+sec.IndexBytes != sec.Length {
		t.Fatalf("DataBytes(%d)+IndexBytes(%d) != Length(%d)", sec.DataBytes, sec.IndexBytes, sec.Length)
	}
	if err := validateSection(runfile.OSFS, sec); err != nil {
		t.Fatalf("clean section failed validation: %v", err)
	}
}

// TestValidateSectionAppended: a second section appended to the same
// spool file validates independently at its own offset — the fencing
// that makes per-partition spool files shareable across tasks.
func TestValidateSectionAppended(t *testing.T) {
	dir := t.TempDir()
	first := buildSection(t, dir)
	ss := newSpoolSet(dir, "w0")
	defer ss.closeAll()
	second, err := ss.appendSection(1, 0, 0, 0, func(w *runfile.Writer) error {
		if err := w.BeginGroup([]byte("gamma"), 1); err != nil {
			return err
		}
		return w.AppendValue([]byte("7"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Offset != first.Length {
		t.Fatalf("second section offset = %d, want %d (appended after first)", second.Offset, first.Length)
	}
	for _, sec := range []Section{first, second} {
		if err := validateSection(runfile.OSFS, sec); err != nil {
			t.Fatalf("section at %d failed validation: %v", sec.Offset, err)
		}
	}
}

// TestValidateSectionTornFooterRecovers: a crash that tears only the
// section's trailer (body and footer-marker intact) must still
// validate — LoadIndex falls back to the sequential scan and the
// recovered counts match the manifest.
func TestValidateSectionTornFooterRecovers(t *testing.T) {
	dir := t.TempDir()
	sec := buildSection(t, dir)
	// Garble the trailer magic in place (the torn-write shape: bytes
	// present but wrong).
	f, err := os.OpenFile(sec.Path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, sec.Offset+sec.Length-4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := validateSection(runfile.OSFS, sec); err != nil {
		t.Fatalf("torn trailer not recovered: %v", err)
	}
}

// TestValidateSectionTruncatedFails: a section whose bytes never fully
// reached the file (crash mid-body) must be rejected, not half-read.
func TestValidateSectionTruncatedFails(t *testing.T) {
	dir := t.TempDir()
	sec := buildSection(t, dir)
	// Cut inside the group section (DataBytes spans header + groups), so
	// some committed pairs are genuinely gone — unlike a footer-only cut,
	// which the scan fallback correctly recovers.
	if err := os.Truncate(sec.Path, sec.Offset+sec.DataBytes-3); err != nil {
		t.Fatal(err)
	}
	if err := validateSection(runfile.OSFS, sec); err == nil {
		t.Fatal("validateSection accepted a truncated section")
	}
}

// TestValidateSectionCountMismatchFails: a structurally readable
// section that does not carry what the manifest committed (paired
// manifest/spool from different attempts) must be rejected.
func TestValidateSectionCountMismatchFails(t *testing.T) {
	dir := t.TempDir()
	sec := buildSection(t, dir)
	lie := sec
	lie.Pairs += 2
	if err := validateSection(runfile.OSFS, lie); err == nil {
		t.Fatal("validateSection accepted a section with mismatched pair counts")
	}
	lie = sec
	lie.Groups--
	if err := validateSection(runfile.OSFS, lie); err == nil {
		t.Fatal("validateSection accepted a section with mismatched group counts")
	}
}

func TestManifestReplay(t *testing.T) {
	dir := t.TempDir()
	m, err := openManifest(dir, "w0")
	if err != nil {
		t.Fatal(err)
	}
	e0 := manifestEntry{Task: 0, Attempt: 0, PairsEmitted: 4, Sections: []Section{{Path: "p", Length: 9, Task: 0}}}
	e1 := manifestEntry{Task: 3, Attempt: 1, PairsEmitted: 2}
	if err := m.commit(e0); err != nil {
		t.Fatal(err)
	}
	if err := m.commit(e1); err != nil {
		t.Fatal(err)
	}
	m.close()

	entries, err := readManifest(runfile.OSFS, ManifestPath(dir, "w0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Task != 0 || entries[1].Task != 3 || entries[1].Attempt != 1 {
		t.Fatalf("replayed %+v", entries)
	}
}

// TestManifestTornTail: a worker killed inside its final commit leaves
// a partial last line; replay must keep every complete entry and drop
// only the torn one.
func TestManifestTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := openManifest(dir, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.commit(manifestEntry{Task: 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.commit(manifestEntry{Task: 1}); err != nil {
		t.Fatal(err)
	}
	m.close()
	path := ManifestPath(dir, "w0")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Task":2,"Attempt":0,"Sect`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, err := readManifest(runfile.OSFS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Task != 1 {
		t.Fatalf("torn-tail replay = %+v, want tasks 0 and 1", entries)
	}
}

func TestManifestMissingIsEmpty(t *testing.T) {
	entries, err := readManifest(runfile.OSFS, filepath.Join(t.TempDir(), "no-such-manifest"))
	if err != nil || entries != nil {
		t.Fatalf("missing manifest = (%v, %v), want (nil, nil)", entries, err)
	}
}

// TestCrashReopenFaultMarch marches an injected I/O failure through
// every filesystem call of the crash-reopen path — manifest replay plus
// section validation, the exact sequence the driver's salvage runs on a
// dead worker — and requires each outcome to be either success (the
// redundancy absorbed the fault, e.g. the footer read failed and the
// sequential scan recovered) or an error with the injected fault still
// in the chain. An error that lost the cause, or a panic, is a bug in
// the reopen path's error handling.
func TestCrashReopenFaultMarch(t *testing.T) {
	dir := t.TempDir()
	sec := buildSection(t, dir)
	m, err := openManifest(dir, "w0")
	if err != nil {
		t.Fatal(err)
	}
	entry := manifestEntry{Task: 0, Attempt: 0, PairsEmitted: 6, Sections: []Section{sec}}
	if err := m.commit(entry); err != nil {
		t.Fatal(err)
	}
	m.close()

	reopen := func(fs runfile.FS) error {
		entries, err := readManifest(fs, ManifestPath(dir, "w0"))
		if err != nil {
			return err
		}
		if len(entries) != 1 {
			t.Fatalf("replayed %d entries, want 1", len(entries))
		}
		for _, s := range entries[0].Sections {
			if err := validateSection(fs, s); err != nil {
				return err
			}
		}
		return nil
	}

	// Counting pass: how many calls of each op does one reopen perform?
	probe := errfs.New(nil)
	if err := reopen(probe); err != nil {
		t.Fatalf("fault-free reopen failed: %v", err)
	}
	for _, op := range []errfs.Op{errfs.OpOpen, errfs.OpRead, errfs.OpReadAt, errfs.OpClose} {
		total := probe.Calls(op)
		if total == 0 && op != errfs.OpClose {
			t.Fatalf("probe saw no %s calls; the march would be vacuous", op)
		}
		for nth := 1; nth <= total; nth++ {
			fs := errfs.New(nil)
			fs.FailAt(op, nth, nil)
			err := reopen(fs)
			if err == nil {
				continue // redundancy absorbed the fault (footer → scan fallback)
			}
			if !errors.Is(err, errfs.ErrInjected) {
				t.Errorf("%s call %d: injected fault lost from chain: %v", op, nth, err)
			}
		}
	}
}
