// The control-plane seam between driver and workers: plain net/rpc
// (gob) over a unix socket. Everything on the wire is a concrete
// struct — typed keys and values never cross the RPC boundary, only
// file coordinates do; the data itself crosses through the spool files.
package proc

import (
	"time"
)

// TaskKind discriminates the driver's replies to a polling worker.
type TaskKind int

const (
	// TaskWait tells the worker nothing is assignable right now; poll
	// again shortly.
	TaskWait TaskKind = iota
	// TaskMap assigns a map task over inputs [Lo, Hi).
	TaskMap
	// TaskReduce assigns one partition's reduce task over Sections.
	TaskReduce
	// TaskExit tells the worker the job is over (done or failed).
	TaskExit
)

// Section is one fenced byte range of a spool file: the map output of
// one (task, attempt) for one partition. Sections are the unit of the
// inter-process exchange — a map report commits them, the driver hands
// them to reduce tasks, and salvage validates them.
type Section struct {
	// Path is the spool file, Offset/Length the section's byte range.
	Path   string
	Offset int64
	Length int64
	// DataBytes and IndexBytes split Length into run data and footer
	// index (DataBytes+IndexBytes == Length).
	DataBytes  int64
	IndexBytes int64
	// Pairs is the section's value count (post-combine); Groups its
	// distinct keys.
	Pairs  int64
	Groups int64
	// Task and Attempt fence the section; Part is its partition. Seq
	// orders the sections one attempt wrote for one partition: under a
	// small MemoryBudget a map task spills the same partition several
	// times, and the reduce merge must replay those spills in emission
	// order to stay byte-identical with the in-process engine.
	Task    int
	Attempt int
	Part    int
	Seq     int
}

// Task is one assignment (or a Wait/Exit directive).
type Task struct {
	Kind    TaskKind
	ID      int // map task ordinal, or reduce partition
	Attempt int

	// Map fields. MemoryBudget is the per-partition buffered-pair bound
	// the worker's streaming shuffle must respect (0 = unbounded, one
	// section per partition).
	Lo, Hi       int
	Partitions   int
	MemoryBudget int

	// Reduce fields: the committed input sections in map-task order.
	// ReduceSplitPairs and ReduceRangeConcurrency carry the driver's
	// range-split knobs: a positive split target has the worker cut the
	// merge into class-aligned key ranges it runs concurrently.
	Sections               []Section
	MaxReducerInput        int
	ReduceSplitPairs       int
	ReduceRangeConcurrency int

	// HeartbeatEvery is how often the worker should renew its lease on
	// this task (the driver sets a fraction of the lease TTL). Zero means
	// no heartbeating.
	HeartbeatEvery time.Duration

	// Wait fields.
	PollAfter time.Duration
}

// RegisterArgs announces a worker to the driver.
type RegisterArgs struct {
	Worker string
	PID    int
}

// PollArgs asks for work.
type PollArgs struct {
	Worker string
}

// HeartbeatArgs renews the lease on a running task.
type HeartbeatArgs struct {
	Worker  string
	Kind    TaskKind // TaskMap or TaskReduce
	ID      int
	Attempt int
}

// HeartbeatReply tells the worker whether its attempt is still current.
type HeartbeatReply struct {
	// Cancel is set when the attempt has been fenced (lease expired or
	// superseded): the worker should abandon the task; any report it
	// sends will be refused.
	Cancel bool
}

// MapReport commits a finished map attempt: the sections it wrote and
// its pre-combine emission count. Err carries a failed attempt instead.
type MapReport struct {
	Worker       string
	Task         int
	Attempt      int
	PairsEmitted int64
	Sections     []Section
	// PeakResident is the attempt's high-water buffered pair count
	// inside the worker's shuffle (the memory bound being enforced).
	PeakResident int64
	Err          string
	// Fatal marks errors retrying cannot fix (an unregistered job, an
	// unencodable key type): the driver fails the job instead of
	// re-granting the task.
	Fatal bool
}

// ReduceReport commits a finished reduce attempt: the partition's
// output file plus its group profile. Err carries a failed attempt.
type ReduceReport struct {
	Worker    string
	Part      int
	Attempt   int
	OutPath   string
	Keys      int64
	Outputs   int64
	MaxGroup  int64
	PairsIn   int64
	BytesRead int64
	// PeakResident is the attempt's high-water resident pair count: the
	// largest single group the k-way merge held decoded at once.
	PeakResident int64
	// Ranges is how many key-range units the attempt split its merge
	// into (0 when it ran as one whole-partition merge).
	Ranges int64
	Err    string
	Fatal  bool
}

// Ack is the driver's answer to a report.
type Ack struct {
	// Accepted is false when the report was fenced (stale attempt,
	// task already done): the worker's output is discarded.
	Accepted bool
}

// Coord is the driver's RPC service. Workers call its methods; every
// method body just forwards into the Driver under its lock.
type Coord struct{ d *Driver }

// Register implements the worker hello.
func (c *Coord) Register(args RegisterArgs, reply *Ack) error {
	c.d.register(args)
	reply.Accepted = true
	return nil
}

// Poll hands out the next task (or Wait/Exit).
func (c *Coord) Poll(args PollArgs, reply *Task) error {
	*reply = c.d.poll(args.Worker)
	return nil
}

// Heartbeat renews a lease.
func (c *Coord) Heartbeat(args HeartbeatArgs, reply *HeartbeatReply) error {
	reply.Cancel = !c.d.heartbeat(args)
	return nil
}

// MapDone commits (or fails) a map attempt.
func (c *Coord) MapDone(args MapReport, reply *Ack) error {
	reply.Accepted = c.d.mapDone(args)
	return nil
}

// ReduceDone commits (or fails) a reduce attempt.
func (c *Coord) ReduceDone(args ReduceReport, reply *Ack) error {
	reply.Accepted = c.d.reduceDone(args)
	return nil
}
