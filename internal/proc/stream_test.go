// Tests for the worker-side streaming data path: section ordering,
// heartbeat lifecycle, fault injection through the in-worker shuffle,
// and the determinism of salvage + retry rounds under memory pressure.
package proc

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/errfs"
	"repro/internal/runfile"
	"repro/internal/shuffle"
)

// TestSortSectionsTotalOrder: (Task, Attempt, Seq) is a total order, so
// any arrival permutation sorts to the same sequence — the property the
// old Task-only sort (unstable sort.Slice under ties) did not have.
func TestSortSectionsTotalOrder(t *testing.T) {
	canonical := []Section{
		{Task: 0, Attempt: 1, Seq: 0}, {Task: 0, Attempt: 1, Seq: 1},
		{Task: 0, Attempt: 2, Seq: 0}, {Task: 0, Attempt: 2, Seq: 1},
		{Task: 1, Attempt: 0, Seq: 0}, {Task: 1, Attempt: 0, Seq: 2},
		{Task: 2, Attempt: 0, Seq: 0},
	}
	perms := [][]int{
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 2, 5, 1, 4},
		{1, 4, 0, 5, 3, 6, 2},
	}
	for pi, perm := range perms {
		got := make([]Section, len(canonical))
		for i, j := range perm {
			got[i] = canonical[j]
		}
		sortSectionsByTask(got)
		if !reflect.DeepEqual(got, canonical) {
			t.Errorf("permutation %d did not sort to the canonical order:\n got %+v\nwant %+v", pi, got, canonical)
		}
	}
}

// startStubDriver serves the real Coord RPC surface over a unix socket
// with a driver that holds no leases — every heartbeat is fenced —
// without spawning any worker processes.
func startStubDriver(t *testing.T) *rpc.Client {
	t.Helper()
	d := newDriver("stub", Options{}, t.TempDir(), nil)
	socket := filepath.Join(t.TempDir(), "c.sock")
	l, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	if err := srv.Register(&Coord{d: d}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	client, err := rpc.Dial("unix", socket)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		l.Close()
		wg.Wait()
	})
	return client
}

// TestRunTaskStopsHeartbeatOnErrorPath: a failing task must still stop
// and join its heartbeat goroutine before runTask returns — repeated
// failures must not leak goroutines or tickers. The stub driver holds
// no leases, so every heartbeat comes back Cancel, exercising the
// loop's early-exit path as well as the done-channel path.
func TestRunTaskStopsHeartbeatOnErrorPath(t *testing.T) {
	client := startStubDriver(t)
	ws := &workerState{id: "w0", dir: t.TempDir(), client: client}
	ws.spools = newSpoolSet(ws.dir, ws.id)

	// Warm-up RPC so the connection's server-side goroutine exists
	// before the baseline is measured.
	if err := client.Call("Coord.Heartbeat", HeartbeatArgs{Worker: "w0"}, &HeartbeatReply{}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		rep := ws.runTask(TaskMap, Task{ID: i, HeartbeatEvery: time.Millisecond}, func() (any, error) {
			time.Sleep(10 * time.Millisecond) // several ticks, all fenced
			return nil, errors.New("synthetic task failure")
		})
		mr, ok := rep.(MapReport)
		if !ok || mr.Err == "" {
			t.Fatalf("error-path report = %#v, want MapReport with Err", rep)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after failed tasks: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerStreamingFaultMarch marches an injected I/O failure through
// every filesystem call the worker-side streaming path makes under
// memory pressure — the stash swaps and absorb read-backs between a map
// task's emissions and its sealed spool sections. One long-running
// sub-task (nothing absorbable until the end) forces the pressure path
// through the injected FS; every outcome must be either success (the
// fault was absorbable) or an error with ErrInjected still in the
// chain. The sealed sections themselves go through the real filesystem
// — exactly as in a worker process, where section faults are injected
// by kill -9 instead.
func TestWorkerStreamingFaultMarch(t *testing.T) {
	lines := genLines(40)
	run := func(fs runfile.FS) (int64, error) {
		dir := t.TempDir()
		ws := &workerState{id: "w0", dir: dir, spools: newSpoolSet(dir, "w0")}
		defer ws.spools.closeAll()
		sink := &sectionSink[string, int]{ws: ws, task: 0, attempt: 0, seq: make(map[int]int)}
		sh := shuffle.New[string, int](shuffle.Options{
			Partitions:       4,
			MaxBufferedPairs: 8,
			SpillDir:         t.TempDir(),
			FS:               fs,
		})
		defer sh.Close()
		sh.SetSealSink(sink.write)
		in := sh.NewIngester()
		tw := in.Task(0, 0)
		for _, line := range lines {
			for _, w := range strings.Fields(line) {
				tw.Emit(w, 1)
			}
		}
		if err := tw.Commit(); err != nil {
			return 0, err
		}
		if err := in.Finish(); err != nil {
			return 0, err
		}
		if err := sh.SealAllLive(); err != nil {
			return 0, err
		}
		var pairs int64
		for _, sec := range sink.sections() {
			pairs += sec.Pairs
		}
		return pairs, nil
	}

	// Counting pass: the pressure path must actually run, or the march
	// below is vacuous.
	probe := errfs.New(nil)
	wantPairs, err := run(probe)
	if err != nil {
		t.Fatalf("fault-free streaming round failed: %v", err)
	}
	if wantPairs <= 0 {
		t.Fatal("no pairs reached the spool sections")
	}
	if probe.Calls(errfs.OpCreate) == 0 || probe.Calls(errfs.OpWrite) == 0 {
		t.Fatal("pressure path never touched the injected FS; the march would be vacuous")
	}

	for _, op := range []errfs.Op{errfs.OpCreate, errfs.OpWrite, errfs.OpRead, errfs.OpReadAt, errfs.OpClose, errfs.OpRemove} {
		total := probe.Calls(op)
		for nth := 1; nth <= total; nth++ {
			fs := errfs.New(nil)
			fs.FailAt(op, nth, nil)
			pairs, err := run(fs)
			if err == nil {
				if pairs != wantPairs {
					t.Errorf("%s call %d: fault silently lost data: %d pairs, want %d", op, nth, pairs, wantPairs)
				}
				continue
			}
			if !errors.Is(err, errfs.ErrInjected) {
				t.Errorf("%s call %d: injected fault lost from chain: %v", op, nth, err)
			}
		}
	}
}

// registerOrderJob registers a value-order-sensitive job: the reduce
// output is an order-dependent hash chain over each key's values, so
// any instability in section ordering (salvaged vs re-executed
// attempts, seal splits under memory pressure) changes the output.
// Registered from TestMain via registerTestJobs.
func registerOrderJob() {
	Register(JobSpec[string, string, string, wcOut]{
		Name: "order-chain",
		Map: func(line string, emit func(string, string)) {
			for i, w := range strings.Fields(line) {
				emit(w, fmt.Sprintf("%s#%d", line, i))
			}
		},
		Reduce: func(k string, vs []string, emit func(wcOut)) {
			h := fnv.New32a()
			for _, v := range vs {
				h.Write([]byte(v))
			}
			emit(wcOut{Word: k, Count: int(h.Sum32())})
		},
	})
}

// TestSalvageRetryRoundDeterministic: with a MemoryBudget small enough
// that every task spills multi-section output, a salvage round
// (manifest committed, report lost) and a retry round (torn section,
// task re-executed) must both produce output byte-identical to the
// fault-free round, across repeated runs — the regression test for
// (Task, Attempt, Seq) section ordering with an order-sensitive
// reducer.
func TestSalvageRetryRoundDeterministic(t *testing.T) {
	lines := genLines(60)
	base := func(extraEnv ...string) Options {
		return Options{
			Workers:      2,
			Partitions:   5,
			MemoryBudget: 8,
			LeaseTTL:     time.Second,
			Timeout:      90 * time.Second,
			WorkerEnv:    append([]string{"MR_PROC_SLOW_MS=25"}, extraEnv...),
		}
	}
	clean, _, err := Run[string, string, string, wcOut]("order-chain", lines, base())
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("clean round produced no output")
	}
	for _, kill := range []string{"MR_PROC_KILL=map-manifest:1", "MR_PROC_KILL=map-torn:0"} {
		for round := 0; round < 2; round++ {
			outs, met, err := Run[string, string, string, wcOut]("order-chain", lines, base(kill))
			if err != nil {
				t.Fatalf("%s round %d: %v", kill, round, err)
			}
			if met.WorkerDeaths < 1 {
				t.Errorf("%s round %d: WorkerDeaths = %d, want >= 1", kill, round, met.WorkerDeaths)
			}
			if !reflect.DeepEqual(outs, clean) {
				t.Fatalf("%s round %d: output diverges from the fault-free round", kill, round)
			}
		}
	}
}

// TestWorkerTraceExport: with WorkerTraceDir set, every worker writes
// a valid Chrome-trace JSON file on exit, even in a budgeted round
// where task spans interleave with seal events.
func TestWorkerTraceExport(t *testing.T) {
	td := t.TempDir()
	_, _, err := Run[string, string, int, wcOut]("wordcount", genLines(40), Options{
		Workers: 2, Partitions: 3, MemoryBudget: 8, WorkerTraceDir: td, Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(td, "trace-*.json"))
	if err != nil || len(traces) == 0 {
		t.Fatalf("no worker trace files written: %v", err)
	}
	for _, p := range traces {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid trace JSON: %v", p, err)
		}
	}
}

// TestSalvageNotCountedAsRetry: a fenced attempt that salvage then
// adopts is completed work, not a re-grant — SalvagedTasks must count
// it and MapRetries must not. One worker, one map task, killed between
// its manifest commit and its report.
func TestSalvageNotCountedAsRetry(t *testing.T) {
	lines := genLines(60)
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, Options{
		Workers:    1,
		Partitions: 3,
		MapChunk:   len(lines), // exactly one map task
		Timeout:    90 * time.Second,
		WorkerEnv:  []string{"MR_PROC_KILL=map-manifest:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, refWordCount(lines, 3)) {
		t.Fatal("output after salvage diverges from reference")
	}
	if met.SalvagedTasks != 1 {
		t.Errorf("SalvagedTasks = %d, want 1", met.SalvagedTasks)
	}
	if met.MapRetries != 0 {
		t.Errorf("MapRetries = %d, want 0 — the fenced attempt was salvaged, not re-run", met.MapRetries)
	}
}
