// Package proc is the multi-process execution mode: a driver process
// that forks worker processes and runs one map-reduce round across
// them, with the per-partition spool files as the actual exchange
// medium between map and reduce — "communication cost" becomes bytes
// written across a process boundary, not a memcpy.
//
// The control plane is a unix-socket RPC seam (net/rpc): workers poll
// the driver for tasks, heartbeat their leases while executing, and
// report completions. The driver runs every assignment through an
// engine.LeaseTable, so each execution is fenced by its (task, attempt)
// pair: a worker that stalls past its lease TTL, or dies outright, is
// superseded by a re-grant with a bumped attempt, and any late report
// from the fenced attempt is refused. Speculative re-execution is the
// same primitive — grant a duplicate attempt of the slowest in-flight
// task, first completion wins.
//
// The data plane is crash-tolerant by construction. A map worker
// appends each task's output as sorted run-file sections of its
// per-partition spool files, then commits the task by appending one
// record to its manifest before reporting. Bytes written to a file
// survive kill -9 (they are in the kernel regardless of process death),
// so on a worker's death the driver salvages tasks that completed but
// never reported: it replays the manifest and adopts sections that
// validate — runfile.LoadIndex falls back from a torn footer to a
// sequential scan, and the recovered group/pair counts must match the
// manifest's. Anything torn or unaccounted is discarded and the task
// re-executed; map functions are required to be deterministic, so the
// job's output is byte-identical either way.
//
// Because map and reduce run in different processes, key placement
// cannot use the in-process maphash seed; partitioning uses
// shuffle.StableHasher (or the job's explicit Partition func), which
// every process computes identically.
//
// Jobs must be registered (Register) under a name in both the driver
// and the worker binary — normally the same binary, with the role
// chosen by environment (MaybeWorker) or flags (cmd/mrworker) — so
// both sides execute the same code.
package proc

import (
	"encoding/gob"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runfile"
	"repro/internal/shuffle"
)

// JobSpec is one named map-reduce round, typed end to end. The
// functions must be deterministic and side-effect free: the runtime
// re-executes tasks after worker death, lease expiry, and for
// speculation, and the output contract (byte-identical results no
// matter which attempts won) depends on it.
type JobSpec[I any, K comparable, V, O any] struct {
	Name string
	// Map transforms one input record into zero or more key-value pairs.
	Map func(in I, emit func(K, V))
	// Reduce processes one key with all its values (map task order).
	Reduce func(key K, values []V, emit func(O))
	// Combine optionally pre-aggregates one key's values inside a map
	// task before the pairs cross the process boundary. Must satisfy
	// reduce(k, combine(vs)) == reduce(k, vs), and under a MemoryBudget
	// it is applied repeatedly (at every seal), so it must also tolerate
	// combine(append(combine(a), b...)) — associative pre-aggregation.
	Combine func(key K, values []V) []V
	// Partition optionally overrides key placement onto partitions. It
	// MUST be a pure function of the key (it runs in every worker
	// process); the default is shuffle.StableHasher.
	Partition func(K) int
	// BatchReduce declares that Reduce does not retain the values slice
	// after returning, letting reduce workers reuse one decode arena
	// across keys instead of allocating a fresh slice per key.
	BatchReduce bool
}

// Options configures a multi-process run.
type Options struct {
	// Workers is the number of worker processes. Zero means 3.
	Workers int
	// Partitions is the number of shuffle partitions (and the maximum
	// number of reduce tasks). Zero means 8.
	Partitions int
	// MapChunk is the number of input records per map task. Zero targets
	// ~4 tasks per worker.
	MapChunk int
	// MemoryBudget bounds each map worker's buffered pairs per partition:
	// a partition whose live run reaches this many pairs is sealed
	// (combined, sorted) and written to the spool as one section, inside
	// the worker, mid-task. Zero disables the bound — each task writes
	// one section per non-empty partition, all of it resident at once.
	MemoryBudget int
	// Dir is the job's scratch directory (inputs, spools, outputs,
	// manifests, socket). Empty creates a temp dir, removed when the
	// run finishes.
	Dir string
	// KeepDir preserves the scratch directory for post-mortems.
	KeepDir bool
	// WorkerCommand is the argv used to spawn each worker process. The
	// worker's configuration travels in the environment (see
	// MaybeWorker), so any command that reaches MaybeWorker or
	// WorkerMain works: cmd/mrworker, or the current binary re-executed
	// (the default when empty: os.Executable()).
	WorkerCommand []string
	// WorkerEnv is appended to each worker's environment (test knobs).
	WorkerEnv []string
	// LeaseTTL is how long a task lease survives without a heartbeat
	// before the driver fences it and re-grants the task. Zero means 2s.
	LeaseTTL time.Duration
	// MaxTaskAttempts caps the grants any one task receives before the
	// job fails. Zero means 5.
	MaxTaskAttempts int
	// MaxWorkerRestarts caps replacement workers spawned after
	// unexpected deaths. Zero means 2×Workers; negative disables
	// respawn.
	MaxWorkerRestarts int
	// SpeculativeAfter, when positive, re-grants the longest-unrenewed
	// in-flight task to an idle worker once it has been running that
	// long — speculative execution, fenced like any other duplicate.
	// Zero disables speculation.
	SpeculativeAfter time.Duration
	// MaxReducerInput, when positive, fails the job if any reduce key
	// receives more values (the paper's q limit).
	MaxReducerInput int
	// ReduceSplitPairs, when positive, has each reduce worker split its
	// partition's merge into class-aligned key ranges of roughly this
	// many pairs and run them concurrently; output files stay
	// byte-identical to the unsplit merge. ReduceRangeConcurrency caps
	// the ranges per partition (zero selects GOMAXPROCS).
	ReduceSplitPairs       int
	ReduceRangeConcurrency int
	// Timeout bounds the whole run. Zero means 2 minutes.
	Timeout time.Duration
	// Recorder, when non-nil, receives driver-side lifecycle events:
	// per-worker-process lanes with spawn-to-exit spans and task
	// assignment spans, plus lease-expiry, worker-death, salvage and
	// stale-report instants. Nil records nothing.
	Recorder *obs.Recorder
	// FS is the driver-side filesystem for salvage validation and
	// output assembly. Nil means runfile.OSFS. Worker processes always
	// use the real filesystem — faults are injected there by killing
	// them.
	FS runfile.FS
	// WorkerTraceDir, when set, makes every worker process record its
	// own task-execution events (including its shuffle's seal and block
	// lanes) and write a Perfetto trace named trace-<worker>.json into
	// this directory when it exits cleanly.
	WorkerTraceDir string
	// Hooks are test seams; see Hooks.
	Hooks Hooks
}

// Hooks expose driver lifecycle moments to tests (crash injection
// points). All are optional and called synchronously from the driver's
// RPC or supervision paths — keep them fast.
type Hooks struct {
	// OnSpawn fires after a worker process starts.
	OnSpawn func(worker string, pid int)
	// OnMapCommitted fires when a map task's report is accepted.
	OnMapCommitted func(task, attempt int, worker string)
	// OnReduceAssigned fires when a reduce task is granted.
	OnReduceAssigned func(part, attempt int, worker string)
	// OnWorkerExit fires when a worker process exits (expected or not).
	OnWorkerExit func(worker string, pid int, err error)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 3
}

func (o Options) partitions() int {
	if o.Partitions > 0 {
		return o.Partitions
	}
	return 8
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 2 * time.Second
}

func (o Options) maxTaskAttempts() int {
	if o.MaxTaskAttempts > 0 {
		return o.MaxTaskAttempts
	}
	return 5
}

func (o Options) maxWorkerRestarts() int {
	if o.MaxWorkerRestarts > 0 {
		return o.MaxWorkerRestarts
	}
	if o.MaxWorkerRestarts < 0 {
		return 0
	}
	return 2 * o.workers()
}

func (o Options) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 2 * time.Minute
}

func (o Options) fs() runfile.FS {
	if o.FS != nil {
		return o.FS
	}
	return runfile.OSFS
}

// Metrics is the communication and fault-tolerance profile of one
// multi-process run. The logical fields mirror mr.Metrics; the
// robustness counters are specific to this mode.
type Metrics struct {
	MapInputs       int64
	PairsEmitted    int64 // pre-combine communication cost
	PairsShuffled   int64 // post-combine pairs that crossed the boundary
	Reducers        int64
	MaxReducerInput int64
	Outputs         int64
	MapTasks        int64
	ReduceTasks     int64

	// BytesSpilled is the run data written to the inter-process spool
	// files by committed (accepted or salvaged) map attempts — genuinely
	// bytes over the process boundary. IndexBytesSpilled is the footer
	// metadata alongside it; a committed section occupies exactly
	// BytesSpilled+IndexBytesSpilled bytes of spool file.
	// DiskBytesRead is what accepted reduce attempts read back.
	BytesSpilled      int64
	IndexBytesSpilled int64
	DiskBytesRead     int64

	// PeakResidentPairs is the largest buffered-pair high-water mark any
	// accepted (or salvaged) task attempt observed inside a worker: map
	// attempts report their shuffle's resident peak, reduce attempts the
	// largest single group the merge held decoded. With a MemoryBudget
	// set this stays near P*MemoryBudget + BlockPairs regardless of
	// input size — the bound the paper's q-tradeoff needs enforced.
	PeakResidentPairs int64

	// ReduceRanges is the total key-range units accepted reduce attempts
	// split their merges into under Options.ReduceSplitPairs (zero when
	// splitting was off or no partition crossed the threshold).
	ReduceRanges int64

	// MapRetries and ReduceRetries count task re-grants beyond the
	// first (lease expiry, worker death, speculation, reported
	// failures). WorkerDeaths counts worker processes that exited
	// without being told to. LeaseExpirations counts TTL sweeps that
	// fenced a lease. SalvagedTasks counts map tasks adopted from a
	// dead worker's manifest instead of re-executed. Speculative counts
	// duplicate grants issued to idle workers.
	MapRetries       int64
	ReduceRetries    int64
	WorkerDeaths     int64
	LeaseExpirations int64
	SalvagedTasks    int64
	Speculative      int64
}

// runnable is the untyped face of a registered job: what a worker
// process needs to execute tasks of any key/value types.
type runnable interface {
	jobName() string
	// loadInputs decodes the driver's input file into a typed slice,
	// returning it opaquely plus the record count.
	loadInputs(path string) (any, int, error)
	// runMapTask maps records [lo, hi) of the loaded inputs through a
	// streaming shuffle under the task's MemoryBudget, appending each
	// sealed run to the worker's spools as one fenced section.
	runMapTask(ws *workerState, inputs any, t Task) (MapReport, error)
	// runReduceTask merge-reads the task's sections, reduces every
	// group as it surfaces, and writes the partition's output file.
	runReduceTask(ws *workerState, t Task) (ReduceReport, error)
}

var registry = struct {
	mu   sync.Mutex
	jobs map[string]runnable
}{jobs: make(map[string]runnable)}

// Register makes the job runnable by name in this process. Both the
// driver and its workers must register the same spec (normally the
// same code path runs in both, since workers are the same binary).
// Registering a name twice replaces the previous spec.
func Register[I any, K comparable, V, O any](spec JobSpec[I, K, V, O]) {
	if spec.Name == "" {
		panic("proc: Register with empty job name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.jobs[spec.Name] = &jobImpl[I, K, V, O]{spec: spec}
}

// lookup returns the registered job by name.
func lookup(name string) (runnable, error) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	j, ok := registry.jobs[name]
	if !ok {
		return nil, fmt.Errorf("proc: job %q is not registered in this process", name)
	}
	return j, nil
}

// jobImpl binds a typed spec to the untyped runnable interface.
type jobImpl[I any, K comparable, V, O any] struct {
	spec JobSpec[I, K, V, O]
}

func (j *jobImpl[I, K, V, O]) jobName() string { return j.spec.Name }

// writeInputs encodes the records to the job's input file: a gob stream
// of the count followed by each record.
func (j *jobImpl[I, K, V, O]) writeInputs(path string, inputs []I) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("proc: creating input file: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(len(inputs)); err != nil {
		f.Close()
		return fmt.Errorf("proc: encoding input count: %w", err)
	}
	for i := range inputs {
		if err := enc.Encode(&inputs[i]); err != nil {
			f.Close()
			return fmt.Errorf("proc: encoding input %d: %w", i, err)
		}
	}
	return f.Close()
}

func (j *jobImpl[I, K, V, O]) loadInputs(path string) (any, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("proc: opening input file: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, 0, fmt.Errorf("proc: decoding input count: %w", err)
	}
	inputs := make([]I, n)
	for i := 0; i < n; i++ {
		if err := dec.Decode(&inputs[i]); err != nil {
			return nil, 0, fmt.Errorf("proc: decoding input %d: %w", i, err)
		}
	}
	return inputs, n, nil
}

// partition places k on one of p partitions: the explicit Partition
// func reduced modulo p, or the stable cross-process hash.
func (j *jobImpl[I, K, V, O]) partition(h *shuffle.StableHasher[K], k K, p int) (int, error) {
	if j.spec.Partition != nil {
		part := j.spec.Partition(k) % p
		if part < 0 {
			part += p
		}
		return part, nil
	}
	return h.StablePartition(k, p)
}

// outGroup is one reduced key's output, as serialized between a reduce
// worker and the driver's assembly pass.
type outGroup[K comparable, O any] struct {
	Key  K
	Outs []O
	Load int
}
