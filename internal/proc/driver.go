// The driver process: spawns and supervises worker processes, serves
// the task RPC, runs every assignment through lease tables so crashed
// or stalled executions are fenced and re-granted, salvages committed
// work from dead workers' manifests, and assembles the final output.
package proc

import (
	"fmt"
	"net"
	"net/rpc"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/runfile"
	"repro/internal/shuffle"
)

// mapTaskSpec is one map task's input range [lo, hi).
type mapTaskSpec struct{ lo, hi int }

// workerProc is one spawned worker process under supervision.
type workerProc struct {
	id   string
	seq  int
	pid  int
	cmd  *exec.Cmd
	lane *obs.Ring
}

// Driver owns one multi-process run. It is created and driven by Run;
// the RPC methods on Coord call into it from worker connections.
type Driver struct {
	opts    Options
	jobName string
	dir     string
	socket  string
	sockDir string
	fs      runfile.FS

	tasks   []mapTaskSpec
	nMap    int
	parts   int
	hbEvery time.Duration

	listener net.Listener
	server   *rpc.Server
	wg       sync.WaitGroup
	stop     chan struct{} // closed to stop the sweeper

	mapLeases    *engine.LeaseTable
	reduceLeases *engine.LeaseTable

	mu             sync.Mutex
	mapGrant       map[int]time.Time // last grant time, for speculation age
	reduceGrant    map[int]time.Time
	mapSections    map[int][]Section // accepted (or salvaged) map output
	mapsDone       int
	reduceReady    bool
	reduceParts    []int // partitions with data, ascending
	reduceSections map[int][]Section
	reduceOut      map[int]ReduceReport
	reducesDone    int
	workers        map[string]*workerProc
	lanes          map[string]*obs.Ring // survives worker death
	spawnSeq       int
	restarts       int
	met            Metrics
	failure        error
	finished       bool
	doneOnce       sync.Once
	done           chan struct{}
}

func newDriver(jobName string, opts Options, dir string, tasks []mapTaskSpec) *Driver {
	ttl := opts.leaseTTL()
	return &Driver{
		opts:           opts,
		jobName:        jobName,
		dir:            dir,
		fs:             opts.fs(),
		tasks:          tasks,
		nMap:           len(tasks),
		parts:          opts.partitions(),
		hbEvery:        ttl / 3,
		stop:           make(chan struct{}),
		mapLeases:      engine.NewLeaseTable(ttl, nil),
		reduceLeases:   engine.NewLeaseTable(ttl, nil),
		mapGrant:       make(map[int]time.Time),
		reduceGrant:    make(map[int]time.Time),
		mapSections:    make(map[int][]Section),
		reduceSections: make(map[int][]Section),
		reduceOut:      make(map[int]ReduceReport),
		workers:        make(map[string]*workerProc),
		lanes:          make(map[string]*obs.Ring),
		done:           make(chan struct{}),
	}
}

// start opens the RPC seam, begins lease sweeping, and spawns the
// worker fleet.
func (d *Driver) start() error {
	sockDir, err := os.MkdirTemp("", "mrp")
	if err != nil {
		return fmt.Errorf("proc: creating socket dir: %w", err)
	}
	d.sockDir = sockDir
	d.socket = filepath.Join(sockDir, "c.sock")
	l, err := net.Listen("unix", d.socket)
	if err != nil {
		os.RemoveAll(sockDir)
		return fmt.Errorf("proc: listening on %s: %w", d.socket, err)
	}
	d.listener = l
	d.server = rpc.NewServer()
	if err := d.server.Register(&Coord{d: d}); err != nil {
		l.Close()
		os.RemoveAll(sockDir)
		return fmt.Errorf("proc: registering RPC service: %w", err)
	}
	d.wg.Add(1)
	go d.acceptLoop()
	d.wg.Add(1)
	go d.sweepLoop()

	if d.nMap == 0 {
		d.mu.Lock()
		d.beginReduceLocked()
		d.mu.Unlock()
	}
	for i := 0; i < d.opts.workers(); i++ {
		if err := d.spawnWorker(); err != nil {
			d.fail(err)
			return nil // the run fails through the normal path
		}
	}
	return nil
}

func (d *Driver) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.listener.Accept()
		if err != nil {
			return // listener closed at shutdown
		}
		go d.server.ServeConn(conn)
	}
}

// sweepLoop fences leases whose TTL lapsed — the recovery path for
// workers that stall without dying (death itself is handled faster by
// the supervisor's ExpireOwner).
func (d *Driver) sweepLoop() {
	defer d.wg.Done()
	every := d.opts.leaseTTL() / 2
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			expM := d.mapLeases.Sweep()
			expR := d.reduceLeases.Sweep()
			if len(expM)+len(expR) == 0 {
				continue
			}
			d.mu.Lock()
			d.met.LeaseExpirations += int64(len(expM) + len(expR))
			for _, e := range expM {
				d.lanes[e.Owner].Instant(obs.OpLeaseExpire, int64(e.Task), int64(e.Attempt))
			}
			for _, e := range expR {
				d.lanes[e.Owner].Instant(obs.OpLeaseExpire, int64(-1-e.Task), int64(e.Attempt))
			}
			d.mu.Unlock()
		}
	}
}

// spawnWorker starts one worker process and its supervisor.
func (d *Driver) spawnWorker() error {
	d.mu.Lock()
	seq := d.spawnSeq
	d.spawnSeq++
	d.mu.Unlock()
	id := fmt.Sprintf("w%d", seq)

	argv := d.opts.WorkerCommand
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("proc: resolving worker binary: %w", err)
		}
		argv = []string{exe}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(),
		envWorker+"=1",
		envSocket+"="+d.socket,
		envDir+"="+d.dir,
		envJob+"="+d.jobName,
		envID+"="+id,
	)
	if d.opts.WorkerTraceDir != "" {
		cmd.Env = append(cmd.Env, envTraceDir+"="+d.opts.WorkerTraceDir)
	}
	cmd.Env = append(cmd.Env, d.opts.WorkerEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("proc: spawning worker %s: %w", id, err)
	}
	wp := &workerProc{id: id, seq: seq, pid: cmd.Process.Pid, cmd: cmd,
		lane: d.opts.Recorder.Lane(obs.LaneProc, seq)}
	wp.lane.Begin(obs.OpWorkerLife, int64(wp.pid), 0)
	d.mu.Lock()
	d.workers[id] = wp
	d.lanes[id] = wp.lane
	d.mu.Unlock()
	if d.opts.Hooks.OnSpawn != nil {
		d.opts.Hooks.OnSpawn(id, wp.pid)
	}
	d.wg.Add(1)
	go d.supervise(wp)
	return nil
}

// supervise reaps one worker process. An unexpected exit fences the
// worker's leases immediately, salvages its committed-but-unreported
// map tasks from its manifest, and spawns a replacement while the
// restart budget lasts.
func (d *Driver) supervise(wp *workerProc) {
	defer d.wg.Done()
	waitErr := wp.cmd.Wait()

	d.mu.Lock()
	delete(d.workers, wp.id)
	if d.finished {
		wp.lane.End(obs.OpWorkerLife, int64(wp.pid), 0)
		d.mu.Unlock()
		if d.opts.Hooks.OnWorkerExit != nil {
			d.opts.Hooks.OnWorkerExit(wp.id, wp.pid, waitErr)
		}
		return
	}
	d.met.WorkerDeaths++
	expired := append(d.mapLeases.ExpireOwner(wp.id), d.reduceLeases.ExpireOwner(wp.id)...)
	wp.lane.Instant(obs.OpWorkerDeath, int64(wp.pid), int64(len(expired)))
	wp.lane.End(obs.OpWorkerLife, int64(wp.pid), 1)
	d.salvageLocked(wp)
	respawn := false
	if !d.finished { // salvage may have completed the job
		if d.restarts < d.opts.maxWorkerRestarts() {
			d.restarts++
			respawn = true
		} else if len(d.workers) == 0 {
			d.failLocked(fmt.Errorf("proc: all workers dead and restart budget (%d) spent", d.opts.maxWorkerRestarts()))
		}
	}
	d.mu.Unlock()

	if d.opts.Hooks.OnWorkerExit != nil {
		d.opts.Hooks.OnWorkerExit(wp.id, wp.pid, waitErr)
	}
	if respawn {
		if err := d.spawnWorker(); err != nil {
			d.fail(err)
		}
	}
}

// salvageLocked adopts a dead worker's completed-but-unreported map
// tasks: replay its manifest, validate every committed section through
// the crash-reopen gate, and complete tasks whose output fully
// survived. Anything torn, missing, or already done is skipped — those
// tasks simply re-run. Called with d.mu held.
func (d *Driver) salvageLocked(wp *workerProc) {
	entries, err := readManifest(d.fs, ManifestPath(d.dir, wp.id))
	if err != nil {
		// An unreadable manifest only costs re-execution, never
		// correctness — but say so, it is a disk problem worth seeing.
		fmt.Fprintf(os.Stderr, "proc: salvage of %s skipped: %v\n", wp.id, err)
		return
	}
	for _, e := range entries {
		if _, _, done := d.mapLeases.Current(e.Task); done {
			continue
		}
		ok := true
		for _, sec := range e.Sections {
			if verr := validateSection(d.fs, sec); verr != nil {
				fmt.Fprintf(os.Stderr, "proc: not salvaging task %d from %s: %v\n", e.Task, wp.id, verr)
				ok = false
				break
			}
		}
		if !ok || !d.mapLeases.CompleteSalvaged(e.Task) {
			continue
		}
		d.met.SalvagedTasks++
		wp.lane.Instant(obs.OpSalvage, int64(e.Task), int64(e.Attempt))
		d.acceptMapLocked(e.Task, e.Attempt, wp.id, e.Sections, e.PairsEmitted, e.PeakResident)
	}
}

// register records a worker hello. The supervisor already knows the
// process; this is the RPC-level liveness signal.
func (d *Driver) register(args RegisterArgs) {}

// poll hands the worker its next assignment: the first unleased map
// task, then (map phase done) the first unleased reduce partition, with
// speculative duplicates of the longest-unrenewed in-flight task when
// enabled and nothing fresh is assignable.
func (d *Driver) poll(worker string) Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finished {
		return Task{Kind: TaskExit}
	}
	if d.mapsDone < d.nMap {
		for id := range d.tasks {
			_, active, done := d.mapLeases.Current(id)
			if active || done {
				continue
			}
			return d.grantMapLocked(id, worker)
		}
		if id, ok := d.speculationTarget(d.mapLeases, d.mapGrant); ok {
			d.met.Speculative++
			return d.grantMapLocked(id, worker)
		}
		return Task{Kind: TaskWait, PollAfter: 20 * time.Millisecond}
	}
	for _, p := range d.reduceParts {
		_, active, done := d.reduceLeases.Current(p)
		if active || done {
			continue
		}
		return d.grantReduceLocked(p, worker)
	}
	if p, ok := d.speculationTarget(d.reduceLeases, d.reduceGrant); ok {
		d.met.Speculative++
		return d.grantReduceLocked(p, worker)
	}
	return Task{Kind: TaskWait, PollAfter: 20 * time.Millisecond}
}

// speculationTarget picks the longest-unrenewed in-flight task once its
// current grant is older than SpeculativeAfter.
func (d *Driver) speculationTarget(lt *engine.LeaseTable, grants map[int]time.Time) (int, bool) {
	after := d.opts.SpeculativeAfter
	if after <= 0 {
		return 0, false
	}
	id, ok := lt.Oldest()
	if !ok {
		return 0, false
	}
	if g, seen := grants[id]; !seen || time.Since(g) < after {
		return 0, false
	}
	return id, true
}

func (d *Driver) grantMapLocked(id int, worker string) Task {
	attempt, ok := d.mapLeases.Grant(id, worker)
	if !ok {
		return Task{Kind: TaskWait, PollAfter: 20 * time.Millisecond}
	}
	if n := d.mapLeases.Attempts(id); n > d.opts.maxTaskAttempts() {
		d.failLocked(fmt.Errorf("proc: map task %d failed after %d attempts", id, n-1))
		return Task{Kind: TaskExit}
	}
	if attempt > 0 {
		d.met.MapRetries++
	}
	d.mapGrant[id] = time.Now()
	d.lanes[worker].Begin(obs.OpProcMapTask, int64(id), int64(attempt))
	spec := d.tasks[id]
	return Task{
		Kind: TaskMap, ID: id, Attempt: attempt,
		Lo: spec.lo, Hi: spec.hi, Partitions: d.parts,
		MemoryBudget:   d.opts.MemoryBudget,
		HeartbeatEvery: d.hbEvery,
	}
}

func (d *Driver) grantReduceLocked(p int, worker string) Task {
	attempt, ok := d.reduceLeases.Grant(p, worker)
	if !ok {
		return Task{Kind: TaskWait, PollAfter: 20 * time.Millisecond}
	}
	if n := d.reduceLeases.Attempts(p); n > d.opts.maxTaskAttempts() {
		d.failLocked(fmt.Errorf("proc: reduce partition %d failed after %d attempts", p, n-1))
		return Task{Kind: TaskExit}
	}
	if attempt > 0 {
		d.met.ReduceRetries++
	}
	d.reduceGrant[p] = time.Now()
	d.lanes[worker].Begin(obs.OpProcReduceTask, int64(p), int64(attempt))
	if d.opts.Hooks.OnReduceAssigned != nil {
		d.opts.Hooks.OnReduceAssigned(p, attempt, worker)
	}
	return Task{
		Kind: TaskReduce, ID: p, Attempt: attempt,
		Sections:               d.reduceSections[p],
		MaxReducerInput:        d.opts.MaxReducerInput,
		ReduceSplitPairs:       d.opts.ReduceSplitPairs,
		ReduceRangeConcurrency: d.opts.ReduceRangeConcurrency,
		HeartbeatEvery:         d.hbEvery,
	}
}

// heartbeat renews the lease; false tells the worker it is fenced.
func (d *Driver) heartbeat(args HeartbeatArgs) bool {
	switch args.Kind {
	case TaskMap:
		return d.mapLeases.Renew(args.ID, args.Attempt, args.Worker)
	case TaskReduce:
		return d.reduceLeases.Renew(args.ID, args.Attempt, args.Worker)
	}
	return false
}

// mapDone accepts or refuses a map attempt's report. Only the lease
// table's verdict matters: a fenced attempt's sections are never
// adopted, no matter how complete they are on disk.
func (d *Driver) mapDone(rep MapReport) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	lane := d.lanes[rep.Worker]
	if rep.Err != "" {
		lane.End(obs.OpProcMapTask, int64(rep.Task), 1)
		if rep.Fatal {
			d.failLocked(fmt.Errorf("proc: map task %d: %s", rep.Task, rep.Err))
			return false
		}
		d.mapLeases.Release(rep.Task, rep.Attempt)
		return false
	}
	if !d.mapLeases.Complete(rep.Task, rep.Attempt) {
		lane.End(obs.OpProcMapTask, int64(rep.Task), 1)
		lane.Instant(obs.OpStaleReport, int64(rep.Task), int64(rep.Attempt))
		return false
	}
	lane.End(obs.OpProcMapTask, int64(rep.Task), 0)
	d.acceptMapLocked(rep.Task, rep.Attempt, rep.Worker, rep.Sections, rep.PairsEmitted, rep.PeakResident)
	return true
}

// acceptMapLocked books one completed map task (reported or salvaged):
// its sections become reduce input and the spill accounting — the bytes
// that actually crossed the process boundary. Called with d.mu held,
// after the lease table accepted the completion.
func (d *Driver) acceptMapLocked(task, attempt int, worker string, secs []Section, pairsEmitted, peakResident int64) {
	d.mapSections[task] = secs
	d.met.PairsEmitted += pairsEmitted
	if peakResident > d.met.PeakResidentPairs {
		d.met.PeakResidentPairs = peakResident
	}
	for _, sec := range secs {
		d.met.BytesSpilled += sec.DataBytes
		d.met.IndexBytesSpilled += sec.IndexBytes
		d.met.PairsShuffled += sec.Pairs
	}
	d.mapsDone++
	if d.opts.Hooks.OnMapCommitted != nil {
		d.opts.Hooks.OnMapCommitted(task, attempt, worker)
	}
	if d.mapsDone == d.nMap {
		d.beginReduceLocked()
	}
}

// beginReduceLocked freezes the map output into per-partition section
// lists (map-task order) and opens the reduce phase. A job whose map
// output is empty finishes here.
func (d *Driver) beginReduceLocked() {
	if d.reduceReady {
		return
	}
	d.reduceReady = true
	for task := 0; task < d.nMap; task++ {
		for _, sec := range d.mapSections[task] {
			d.reduceSections[sec.Part] = append(d.reduceSections[sec.Part], sec)
		}
	}
	for p := 0; p < d.parts; p++ {
		if len(d.reduceSections[p]) > 0 {
			sortSectionsByTask(d.reduceSections[p])
			d.reduceParts = append(d.reduceParts, p)
		}
	}
	if len(d.reduceParts) == 0 {
		d.finishLocked()
	}
}

// reduceDone accepts or refuses a reduce attempt's report.
func (d *Driver) reduceDone(rep ReduceReport) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	lane := d.lanes[rep.Worker]
	if rep.Err != "" {
		lane.End(obs.OpProcReduceTask, int64(rep.Part), 1)
		if rep.Fatal {
			d.failLocked(fmt.Errorf("proc: reduce partition %d: %s", rep.Part, rep.Err))
			return false
		}
		d.reduceLeases.Release(rep.Part, rep.Attempt)
		return false
	}
	if !d.reduceLeases.Complete(rep.Part, rep.Attempt) {
		lane.End(obs.OpProcReduceTask, int64(rep.Part), 1)
		lane.Instant(obs.OpStaleReport, int64(-1-rep.Part), int64(rep.Attempt))
		return false
	}
	lane.End(obs.OpProcReduceTask, int64(rep.Part), 0)
	d.reduceOut[rep.Part] = rep
	d.met.DiskBytesRead += rep.BytesRead
	d.met.ReduceRanges += rep.Ranges
	if rep.PeakResident > d.met.PeakResidentPairs {
		d.met.PeakResidentPairs = rep.PeakResident
	}
	d.reducesDone++
	if d.reducesDone == len(d.reduceParts) {
		d.finishLocked()
	}
	return true
}

func (d *Driver) finishLocked() {
	d.finished = true
	d.doneOnce.Do(func() { close(d.done) })
}

func (d *Driver) failLocked(err error) {
	if d.failure == nil {
		d.failure = err
	}
	d.finishLocked()
}

func (d *Driver) fail(err error) {
	d.mu.Lock()
	d.failLocked(err)
	d.mu.Unlock()
}

// shutdown winds the run down: workers learn TaskExit from their next
// poll; stragglers are killed after a grace period; the listener and
// sweeper stop; every supervisor is reaped.
func (d *Driver) shutdown() {
	d.mu.Lock()
	d.finished = true
	d.mu.Unlock()

	deadline := time.Now().Add(3 * time.Second)
	for {
		d.mu.Lock()
		n := len(d.workers)
		var rest []*workerProc
		if time.Now().After(deadline) {
			for _, wp := range d.workers {
				rest = append(rest, wp)
			}
		}
		d.mu.Unlock()
		if n == 0 {
			break
		}
		if rest != nil {
			for _, wp := range rest {
				wp.cmd.Process.Kill()
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(d.stop)
	d.listener.Close()
	d.wg.Wait()
	os.RemoveAll(d.sockDir)
}

// Run executes the named registered job over inputs across worker
// processes and returns the outputs in global canonical key order —
// the same deterministic, attempt- and schedule-invariant order the
// in-process engine produces — plus the run's communication and
// fault-tolerance metrics.
func Run[I any, K comparable, V, O any](name string, inputs []I, opts Options) ([]O, Metrics, error) {
	var met Metrics
	j, err := lookup(name)
	if err != nil {
		return nil, met, err
	}
	ji, ok := j.(*jobImpl[I, K, V, O])
	if !ok {
		return nil, met, fmt.Errorf("proc: job %q is registered with different types than Run was called with", name)
	}
	if err := runfile.CanRoundTripIdentity[K](); err != nil {
		return nil, met, fmt.Errorf("proc: key type unusable across processes: %w", err)
	}
	if err := runfile.CanRoundTripFidelity[V](); err != nil {
		return nil, met, fmt.Errorf("proc: value type unusable across processes: %w", err)
	}

	dir := opts.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "mrproc")
		if err != nil {
			return nil, met, fmt.Errorf("proc: creating scratch dir: %w", err)
		}
		if !opts.KeepDir {
			defer os.RemoveAll(dir)
		}
	}
	if err := ji.writeInputs(filepath.Join(dir, inputsFile), inputs); err != nil {
		return nil, met, err
	}

	chunk := opts.MapChunk
	if chunk <= 0 {
		chunk = (len(inputs) + 4*opts.workers() - 1) / (4 * opts.workers())
		if chunk < 1 {
			chunk = 1
		}
	}
	var tasks []mapTaskSpec
	for lo := 0; lo < len(inputs); lo += chunk {
		hi := lo + chunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		tasks = append(tasks, mapTaskSpec{lo: lo, hi: hi})
	}

	d := newDriver(name, opts, dir, tasks)
	if err := d.start(); err != nil {
		return nil, met, err
	}
	select {
	case <-d.done:
	case <-time.After(opts.timeout()):
		d.fail(fmt.Errorf("proc: job %q timed out after %v", name, opts.timeout()))
		<-d.done
	}
	d.shutdown()

	d.mu.Lock()
	met = d.met
	failure := d.failure
	reduceParts := append([]int(nil), d.reduceParts...)
	reduceOut := make(map[int]ReduceReport, len(d.reduceOut))
	for p, r := range d.reduceOut {
		reduceOut[p] = r
	}
	d.mu.Unlock()

	met.MapInputs = int64(len(inputs))
	met.MapTasks = int64(len(tasks))
	met.ReduceTasks = int64(len(reduceParts))
	if failure != nil {
		return nil, met, failure
	}

	fs := opts.fs()
	var all []outGroup[K, O]
	for _, p := range reduceParts {
		rep, ok := reduceOut[p]
		if !ok {
			return nil, met, fmt.Errorf("proc: partition %d finished without an accepted reduce report", p)
		}
		groups, err := readOutputs[K, O](fs, rep.OutPath)
		if err != nil {
			return nil, met, err
		}
		all = append(all, groups...)
		met.Reducers += rep.Keys
		met.Outputs += rep.Outputs
	}
	// Merge the per-partition outputs into the global canonical key
	// order, so ProcMode output is indistinguishable from in-process
	// output record for record.
	keys := make([]K, len(all))
	byKey := make(map[K]int, len(all))
	for i, g := range all {
		keys[i] = g.Key
		byKey[g.Key] = i
		if int64(g.Load) > met.MaxReducerInput {
			met.MaxReducerInput = int64(g.Load)
		}
	}
	shuffle.SortKeys(keys)
	var outs []O
	for _, k := range keys {
		outs = append(outs, all[byKey[k]].Outs...)
	}
	return outs, met, nil
}
