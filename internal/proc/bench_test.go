package proc

import (
	"reflect"
	"testing"
	"time"
)

// BenchmarkProcRound runs a full multi-process wordcount round under a
// small MemoryBudget and reports the realized worker-side residency
// high-water mark next to the bound the budget promises:
//
//	proc-peak-resident-pairs  worst buffered-pair count any worker saw
//	proc-peak-bound           8×budget + one staging block, or the
//	                          largest reduce group if that is bigger
//
// scripts/benchcmp gates peak <= bound on every artifact (absolute, no
// previous run needed), so a change that quietly re-materializes task
// output inside workers fails the bench job even if no test covers the
// exact path.
func BenchmarkProcRound(b *testing.B) {
	lines := genLines(240)
	const budget = 16
	for i := 0; i < b.N; i++ {
		outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, Options{
			Workers:      2,
			Partitions:   5,
			MemoryBudget: budget,
			Timeout:      120 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(outs, refWordCount(lines, 5)) {
			b.Fatal("benchmark round diverges from reference")
		}
		bound := int64(8*budget + 16)
		if met.MaxReducerInput > bound {
			bound = met.MaxReducerInput
		}
		b.ReportMetric(float64(met.PeakResidentPairs), "proc-peak-resident-pairs")
		b.ReportMetric(float64(bound), "proc-peak-bound")
		b.ReportMetric(float64(met.BytesSpilled+met.IndexBytesSpilled)/(1<<20), "proc-spool-MB")
	}
}
