// Capped exponential backoff with jitter: the retry policy behind every
// control-plane interaction a worker has with the driver (dialing the
// socket, reporting task completion, heartbeating) and behind the
// driver's own worker respawns. Data-plane work is never retried here —
// task re-execution is the lease table's job, with attempt fencing; this
// helper only covers transient transport failures where the operation
// itself is idempotent.
package proc

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Backoff is a retry schedule: Base doubling (times Factor) per attempt
// up to Max, each delay multiplied by a random factor in
// [1-Jitter, 1+Jitter] so synchronized clients spread out. The zero
// value selects the defaults documented on each field.
type Backoff struct {
	// Base is the first delay. Zero means 10ms.
	Base time.Duration
	// Max caps the grown (pre-jitter) delay. Zero means 2s.
	Max time.Duration
	// Factor is the per-attempt growth multiplier. Zero means 2.
	Factor float64
	// Jitter is the relative half-width of the randomization applied to
	// every delay: the slept duration is delay * (1 + Jitter*(2u-1)) for
	// uniform u. Zero means 0.2; negative disables jitter entirely.
	Jitter float64
	// Attempts caps how many times Retry invokes the operation. Zero
	// means 10; negative means unlimited (bounded only by the context).
	Attempts int

	// Rand supplies the uniform variates for jitter; nil uses the global
	// math/rand source. Tests inject a deterministic sequence.
	Rand func() float64
	// Sleep waits for d or until the context is done; nil uses a real
	// timer. Tests inject a recorder to check the schedule without
	// sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 10 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 2 * time.Second
}

func (b Backoff) factor() float64 {
	if b.Factor > 0 {
		return b.Factor
	}
	return 2
}

func (b Backoff) jitter() float64 {
	if b.Jitter > 0 {
		return b.Jitter
	}
	if b.Jitter < 0 {
		return 0
	}
	return 0.2
}

func (b Backoff) attempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	if b.Attempts < 0 {
		return int(^uint(0) >> 1)
	}
	return 10
}

// Delay is the pure schedule: the pre-sleep duration before retrying
// after the given zero-based failed attempt, using u in [0,1) as the
// jitter variate. Exposed so tests can pin the schedule exactly and
// callers can display "retrying in ...".
func (b Backoff) Delay(attempt int, u float64) time.Duration {
	d := float64(b.base())
	f := b.factor()
	maxD := float64(b.max())
	for i := 0; i < attempt; i++ {
		d *= f
		if d >= maxD {
			d = maxD
			break
		}
	}
	if d > maxD {
		d = maxD
	}
	if j := b.jitter(); j > 0 {
		d *= 1 + j*(2*u-1)
	}
	return time.Duration(d)
}

// errPermanent marks an error that must not be retried.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// Permanent wraps err so Retry returns it immediately instead of
// retrying: the failure is a property of the request, not the
// transport (a fenced report, an unknown job).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return errPermanent{err}
}

// Retry runs op until it succeeds, returns a Permanent error, the
// attempt budget is spent, or the context is done. The returned error
// is the last attempt's (unwrapped from Permanent), or the context's
// error when it won the race.
func (b Backoff) Retry(ctx context.Context, op func() error) error {
	randf := b.Rand
	if randf == nil {
		randf = rand.Float64
	}
	sleep := b.Sleep
	if sleep == nil {
		sleep = realSleep
	}
	attempts := b.attempts()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op()
		if err == nil {
			return nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
		if attempt == attempts-1 {
			break
		}
		if err := sleep(ctx, b.Delay(attempt, randf())); err != nil {
			return err
		}
	}
	return lastErr
}

// realSleep waits for d on a timer, or returns the context's error if
// it is done first.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
