// The worker process: poll the driver for tasks over the unix socket,
// heartbeat the lease while executing, write map output as fenced spool
// sections committed through the manifest, and report. Workers are the
// same binary as the driver — the role travels in the environment, so
// MaybeWorker at the top of main (or TestMain) turns any process into a
// worker when the driver spawned it as one.
package proc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/rpc"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/runfile"
	"repro/internal/shuffle"
)

// workerCtx bounds the worker's control-plane retries. Workers live and
// die by the driver's word (and its process lifetime), so the context
// is unbounded; the retry budgets bound each interaction.
func workerCtx() context.Context { return context.Background() }

// Environment contract between driver and worker. Everything a worker
// needs rides in env so the spawn command's argv is unconstrained.
const (
	envWorker = "MR_PROC_WORKER" // "1" marks a worker process
	envSocket = "MR_PROC_SOCKET" // driver's unix socket path
	envDir    = "MR_PROC_DIR"    // job scratch directory
	envJob    = "MR_PROC_JOB"    // registered job name
	envID     = "MR_PROC_ID"     // this worker's identity

	// Test knobs (crash injection; see crashPoint).
	envSlowMS = "MR_PROC_SLOW_MS" // dwell this many ms inside every task
	envKill   = "MR_PROC_KILL"    // "point:taskID" self-SIGKILL spec
)

// inputsFile is the job's encoded input records inside the scratch dir.
const inputsFile = "inputs.gob"

// MaybeWorker turns the current process into a worker and never returns
// if the driver spawned it as one; otherwise it is a no-op. Call it
// first thing in main (or TestMain) of any binary used as
// Options.WorkerCommand — including the default, the current binary
// re-executed.
func MaybeWorker() {
	if os.Getenv(envWorker) != "1" {
		return
	}
	if err := WorkerMain(); err != nil {
		fmt.Fprintln(os.Stderr, "mrworker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain runs the worker loop against the driver named by the
// environment until the driver says exit (nil) or becomes unreachable.
func WorkerMain() error {
	id := os.Getenv(envID)
	dir := os.Getenv(envDir)
	socket := os.Getenv(envSocket)
	jobName := os.Getenv(envJob)
	if id == "" || dir == "" || socket == "" || jobName == "" {
		return fmt.Errorf("proc: worker env incomplete (%s=%q %s=%q %s=%q %s=%q)",
			envID, id, envDir, dir, envSocket, socket, envJob, jobName)
	}
	job, err := lookup(jobName)
	if err != nil {
		return err
	}
	ws, err := newWorkerState(id, dir, socket)
	if err != nil {
		return err
	}
	defer ws.close()
	return ws.loop(job)
}

// workerState is one worker process's runtime: its RPC client, spools,
// manifest, and the crash-injection knobs.
type workerState struct {
	id     string
	dir    string
	client *rpc.Client

	spools   *spoolSet
	manifest *manifestWriter

	slow      time.Duration // dwell inside every task (test knob)
	killPoint string        // crash point name ("" disables)
	killID    int           // task/partition the crash point is armed for

	// scratch buffers reused across groups.
	kbuf, vbuf []byte
}

// rpcBackoff is the worker's policy for transient control-plane
// failures: dialing the socket before the driver listens, a report call
// racing a driver hiccup. Roughly 10ms..2s doubling, ~10 tries.
var rpcBackoff = Backoff{}

func newWorkerState(id, dir, socket string) (*workerState, error) {
	var client *rpc.Client
	err := rpcBackoff.Retry(workerCtx(), func() error {
		var err error
		client, err = rpc.Dial("unix", socket)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("proc: dialing driver at %s: %w", socket, err)
	}
	var ack Ack
	if err := client.Call("Coord.Register", RegisterArgs{Worker: id, PID: os.Getpid()}, &ack); err != nil {
		client.Close()
		return nil, fmt.Errorf("proc: registering with driver: %w", err)
	}
	ws := &workerState{id: id, dir: dir, client: client, spools: newSpoolSet(dir, id)}
	if ms, err := strconv.Atoi(os.Getenv(envSlowMS)); err == nil && ms > 0 {
		ws.slow = time.Duration(ms) * time.Millisecond
	}
	if spec := os.Getenv(envKill); spec != "" {
		if point, idStr, ok := strings.Cut(spec, ":"); ok {
			if n, err := strconv.Atoi(idStr); err == nil {
				ws.killPoint, ws.killID = point, n
			}
		}
	}
	return ws, nil
}

func (ws *workerState) close() {
	ws.spools.closeAll()
	if ws.manifest != nil {
		ws.manifest.close()
	}
	ws.client.Close()
}

func (ws *workerState) ensureManifest() error {
	if ws.manifest != nil {
		return nil
	}
	m, err := openManifest(ws.dir, ws.id)
	if err != nil {
		return err
	}
	ws.manifest = m
	return nil
}

// crashPoint self-SIGKILLs when the named injection point is armed for
// this task. The kill is one-shot per job directory: an exclusive-create
// marker file makes sure a replacement worker running the re-executed
// task does not die again, so each knob injects exactly one crash. pre
// runs after the marker is claimed and before the kill (e.g. flushing a
// torn section's bytes into the kernel).
func (ws *workerState) crashPoint(point string, id int, pre func()) {
	if ws.killPoint != point || ws.killID != id {
		return
	}
	marker := filepath.Join(ws.dir, fmt.Sprintf("killed-%s-%d", point, id))
	f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return // already fired once
	}
	f.Close()
	if pre != nil {
		pre()
	}
	p, _ := os.FindProcess(os.Getpid())
	p.Kill()
	select {} // SIGKILL is not instantaneous; never execute past this point
}

// loop polls for tasks until exit. Transient RPC failures are retried
// with backoff; a driver that stays unreachable ends the worker.
func (ws *workerState) loop(job runnable) error {
	var inputs any
	for {
		var t Task
		err := rpcBackoff.Retry(workerCtx(), func() error {
			t = Task{}
			return ws.client.Call("Coord.Poll", PollArgs{Worker: ws.id}, &t)
		})
		if err != nil {
			return fmt.Errorf("proc: polling driver: %w", err)
		}
		switch t.Kind {
		case TaskExit:
			return nil
		case TaskWait:
			d := t.PollAfter
			if d <= 0 {
				d = 20 * time.Millisecond
			}
			time.Sleep(d)
		case TaskMap:
			if inputs == nil {
				var err error
				if inputs, _, err = job.loadInputs(filepath.Join(ws.dir, inputsFile)); err != nil {
					ws.report("Coord.MapDone", &Ack{}, MapReport{
						Worker: ws.id, Task: t.ID, Attempt: t.Attempt, Err: err.Error(), Fatal: true,
					})
					return err
				}
			}
			rep := ws.runTask(TaskMap, t, func() (any, error) { return job.runMapTask(ws, inputs, t) })
			ws.report("Coord.MapDone", &Ack{}, rep.(MapReport))
		case TaskReduce:
			rep := ws.runTask(TaskReduce, t, func() (any, error) { return job.runReduceTask(ws, t) })
			ws.report("Coord.ReduceDone", &Ack{}, rep.(ReduceReport))
		}
	}
}

// runTask executes one assignment under a heartbeat, converting an
// execution error into a failure report.
func (ws *workerState) runTask(kind TaskKind, t Task, run func() (any, error)) any {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws.heartbeatLoop(done, kind, t.ID, t.Attempt, t.HeartbeatEvery)
	}()
	if ws.slow > 0 {
		time.Sleep(ws.slow)
	}
	rep, err := run()
	close(done)
	wg.Wait()
	if err == nil {
		return rep
	}
	if kind == TaskMap {
		return MapReport{Worker: ws.id, Task: t.ID, Attempt: t.Attempt, Err: err.Error(), Fatal: isFatal(err)}
	}
	return ReduceReport{Worker: ws.id, Part: t.ID, Attempt: t.Attempt, Err: err.Error(), Fatal: isFatal(err)}
}

// heartbeatLoop renews the lease on (kind, id, attempt) every interval
// until the task finishes, the driver cancels the attempt, or the
// driver becomes unreachable. It only renews — cancellation does not
// abort the running task; the driver's fencing refuses the stale report
// either way.
func (ws *workerState) heartbeatLoop(done <-chan struct{}, kind TaskKind, id, attempt int, every time.Duration) {
	if every <= 0 {
		return
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			var rep HeartbeatReply
			err := ws.client.Call("Coord.Heartbeat", HeartbeatArgs{
				Worker: ws.id, Kind: kind, ID: id, Attempt: attempt,
			}, &rep)
			if err != nil || rep.Cancel {
				return
			}
		}
	}
}

// report delivers a completion report with retries. A report that still
// cannot be delivered is dropped: the lease will expire and the task
// re-run, which is correct (if slower) — reports are advisory to the
// worker, authoritative only once the driver accepts them.
func (ws *workerState) report(method string, reply any, args any) {
	err := rpcBackoff.Retry(workerCtx(), func() error {
		return ws.client.Call(method, args, reply)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrworker %s: dropping %s report: %v\n", ws.id, method, err)
	}
}

// fatalErr marks an execution error retrying cannot fix (an unencodable
// key type, a violated reducer-size limit): the driver fails the job
// instead of re-granting the task.
type fatalErr struct{ error }

func fatal(err error) error {
	if err == nil {
		return nil
	}
	return fatalErr{err}
}

func isFatal(err error) bool {
	var f fatalErr
	return errors.As(err, &f)
}

// runMapTask maps records [Lo, Hi), partitions pairs with the job's
// stable placement, optionally combines, and writes one sorted run-file
// section per non-empty partition to this worker's spools — then
// commits the whole task with one manifest record before reporting.
// The manifest write is the task's durability point.
func (j *jobImpl[I, K, V, O]) runMapTask(ws *workerState, inputs any, t Task) (MapReport, error) {
	ins, ok := inputs.([]I)
	if !ok {
		return MapReport{}, fatal(fmt.Errorf("proc: job %q inputs are %T, not []%T", j.spec.Name, inputs, *new(I)))
	}
	if t.Lo < 0 || t.Hi > len(ins) || t.Lo > t.Hi {
		return MapReport{}, fatal(fmt.Errorf("proc: map task %d range [%d,%d) outside %d inputs", t.ID, t.Lo, t.Hi, len(ins)))
	}
	var hasher shuffle.StableHasher[K]
	parts := make([]map[K][]V, t.Partitions)
	var pairsEmitted int64
	var emitErr error
	for i := t.Lo; i < t.Hi; i++ {
		j.spec.Map(ins[i], func(k K, v V) {
			pairsEmitted++
			if emitErr != nil {
				return
			}
			p, err := j.partition(&hasher, k, t.Partitions)
			if err != nil {
				emitErr = err
				return
			}
			if parts[p] == nil {
				parts[p] = make(map[K][]V)
			}
			parts[p][k] = append(parts[p][k], v)
		})
	}
	if emitErr != nil {
		return MapReport{}, fatal(fmt.Errorf("proc: partitioning map task %d: %w", t.ID, emitErr))
	}
	if j.spec.Combine != nil {
		for _, m := range parts {
			for k, vs := range m {
				m[k] = j.spec.Combine(k, vs)
			}
		}
	}
	if err := ws.ensureManifest(); err != nil {
		return MapReport{}, err
	}
	var secs []Section
	for p := 0; p < t.Partitions; p++ {
		m := parts[p]
		if len(m) == 0 {
			continue
		}
		keys := make([]K, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		shuffle.SortKeys(keys)
		sec, err := ws.spools.appendSection(t.ID, t.Attempt, p, func(w *runfile.Writer) error {
			for gi, k := range keys {
				kb, err := runfile.Append(ws.kbuf[:0], k)
				if err != nil {
					return fatal(fmt.Errorf("proc: encoding key: %w", err))
				}
				ws.kbuf = kb
				vs := m[k]
				if err := w.BeginGroup(kb, len(vs)); err != nil {
					return err
				}
				for _, v := range vs {
					vb, err := runfile.Append(ws.vbuf[:0], v)
					if err != nil {
						return fatal(fmt.Errorf("proc: encoding value: %w", err))
					}
					ws.vbuf = vb
					if err := w.AppendValue(vb); err != nil {
						return err
					}
				}
				if gi == len(keys)/2 {
					// Torn-section injection: push the half-written section
					// into the kernel, then die before Finish — the spool
					// gets a headerful of bytes with no footer and no
					// manifest record.
					ws.crashPoint("map-torn", t.ID, func() { w.Flush() })
				}
			}
			return nil
		})
		if err != nil {
			return MapReport{}, err
		}
		secs = append(secs, sec)
	}
	if err := ws.manifest.commit(manifestEntry{
		Task: t.ID, Attempt: t.Attempt, PairsEmitted: pairsEmitted, Sections: secs,
	}); err != nil {
		return MapReport{}, err
	}
	// Committed-but-unreported injection: the manifest record is durable,
	// the report never leaves — salvage must adopt this task.
	ws.crashPoint("map-manifest", t.ID, nil)
	return MapReport{
		Worker: ws.id, Task: t.ID, Attempt: t.Attempt,
		PairsEmitted: pairsEmitted, Sections: secs,
	}, nil
}

// runReduceTask merges the partition's committed sections in map-task
// order, reduces every group in canonical key order, and writes the
// partition's output file (gob: group count, then outGroups).
func (j *jobImpl[I, K, V, O]) runReduceTask(ws *workerState, t Task) (ReduceReport, error) {
	ws.crashPoint("reduce", t.ID, nil)
	acc := make(map[K][]V)
	var pairsIn, bytesRead int64
	for _, sec := range t.Sections {
		if err := j.accumulateSection(ws, sec, acc, &pairsIn); err != nil {
			return ReduceReport{}, err
		}
		bytesRead += sec.DataBytes
	}
	keys := make([]K, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	shuffle.SortKeys(keys)

	var maxGroup int64
	var outputs int64
	groups := make([]outGroup[K, O], 0, len(keys))
	for _, k := range keys {
		vs := acc[k]
		if t.MaxReducerInput > 0 && len(vs) > t.MaxReducerInput {
			return ReduceReport{}, fatal(fmt.Errorf(
				"proc: reducer for a key in partition %d received %d values, limit %d", t.ID, len(vs), t.MaxReducerInput))
		}
		if int64(len(vs)) > maxGroup {
			maxGroup = int64(len(vs))
		}
		g := outGroup[K, O]{Key: k, Load: len(vs)}
		j.spec.Reduce(k, vs, func(o O) { g.Outs = append(g.Outs, o) })
		outputs += int64(len(g.Outs))
		groups = append(groups, g)
	}
	path := outPath(ws.dir, t.ID, t.Attempt)
	if err := writeOutputs(path, groups); err != nil {
		return ReduceReport{}, err
	}
	return ReduceReport{
		Worker: ws.id, Part: t.ID, Attempt: t.Attempt, OutPath: path,
		Keys: int64(len(keys)), Outputs: outputs, MaxGroup: maxGroup,
		PairsIn: pairsIn, BytesRead: bytesRead,
	}, nil
}

// accumulateSection streams one committed section's groups into acc,
// appending values in section order (the driver orders sections by map
// task, preserving the value-order contract).
func (j *jobImpl[I, K, V, O]) accumulateSection(ws *workerState, sec Section, acc map[K][]V, pairsIn *int64) error {
	r, closeF, err := openSection(runfile.OSFS, sec)
	if err != nil {
		return err
	}
	defer closeF()
	for {
		kb, n, err := r.NextAppend(ws.kbuf[:0])
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("proc: reading section %s@%d: %w", sec.Path, sec.Offset, err)
		}
		ws.kbuf = kb
		k, err := runfile.Decode[K](kb)
		if err != nil {
			return fatal(fmt.Errorf("proc: decoding key: %w", err))
		}
		for i := 0; i < n; i++ {
			vb, err := r.ValueAppend(ws.vbuf[:0])
			if err != nil {
				return fmt.Errorf("proc: reading value in section %s@%d: %w", sec.Path, sec.Offset, err)
			}
			ws.vbuf = vb
			v, err := runfile.Decode[V](vb)
			if err != nil {
				return fatal(fmt.Errorf("proc: decoding value: %w", err))
			}
			acc[k] = append(acc[k], v)
			*pairsIn++
		}
	}
}

// writeOutputs encodes one reduce attempt's groups to its output file:
// a gob stream of the group count followed by each group, already in
// canonical key order.
func writeOutputs[K comparable, O any](path string, groups []outGroup[K, O]) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("proc: creating reduce output: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(len(groups)); err != nil {
		f.Close()
		return fmt.Errorf("proc: encoding output count: %w", err)
	}
	for i := range groups {
		if err := enc.Encode(&groups[i]); err != nil {
			f.Close()
			return fmt.Errorf("proc: encoding output group: %w", err)
		}
	}
	return f.Close()
}

// readOutputs decodes one accepted reduce output file through the
// driver's FS (so reopen faults are injectable).
func readOutputs[K comparable, O any](fs runfile.FS, path string) ([]outGroup[K, O], error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("proc: opening reduce output %s: %w", path, err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("proc: decoding output count in %s: %w", path, err)
	}
	groups := make([]outGroup[K, O], n)
	for i := range groups {
		if err := dec.Decode(&groups[i]); err != nil {
			return nil, fmt.Errorf("proc: decoding output group in %s: %w", path, err)
		}
	}
	return groups, nil
}

// sortSectionsByTask orders a reduce task's input sections by map task
// ordinal — the value-order contract (values arrive in map-task order,
// whatever order the tasks actually completed in).
func sortSectionsByTask(secs []Section) {
	sort.Slice(secs, func(i, j int) bool { return secs[i].Task < secs[j].Task })
}
