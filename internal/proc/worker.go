// The worker process: poll the driver for tasks over the unix socket,
// heartbeat the lease while executing, write map output as fenced spool
// sections committed through the manifest, and report. Workers are the
// same binary as the driver — the role travels in the environment, so
// MaybeWorker at the top of main (or TestMain) turns any process into a
// worker when the driver spawned it as one.
package proc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/rpc"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runfile"
	"repro/internal/shuffle"
)

// workerCtx bounds the worker's control-plane retries. Workers live and
// die by the driver's word (and its process lifetime), so the context
// is unbounded; the retry budgets bound each interaction.
func workerCtx() context.Context { return context.Background() }

// Environment contract between driver and worker. Everything a worker
// needs rides in env so the spawn command's argv is unconstrained.
const (
	envWorker = "MR_PROC_WORKER" // "1" marks a worker process
	envSocket = "MR_PROC_SOCKET" // driver's unix socket path
	envDir    = "MR_PROC_DIR"    // job scratch directory
	envJob    = "MR_PROC_JOB"    // registered job name
	envID     = "MR_PROC_ID"     // this worker's identity

	// Observability (Options.WorkerTraceDir).
	envTraceDir = "MR_PROC_TRACE" // dir for per-worker Perfetto traces

	// Test knobs (crash injection; see crashPoint).
	envSlowMS = "MR_PROC_SLOW_MS" // dwell this many ms inside every task
	envKill   = "MR_PROC_KILL"    // "point:taskID" self-SIGKILL spec
)

// inputsFile is the job's encoded input records inside the scratch dir.
const inputsFile = "inputs.gob"

// MaybeWorker turns the current process into a worker and never returns
// if the driver spawned it as one; otherwise it is a no-op. Call it
// first thing in main (or TestMain) of any binary used as
// Options.WorkerCommand — including the default, the current binary
// re-executed.
func MaybeWorker() {
	if os.Getenv(envWorker) != "1" {
		return
	}
	if err := WorkerMain(); err != nil {
		fmt.Fprintln(os.Stderr, "mrworker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain runs the worker loop against the driver named by the
// environment until the driver says exit (nil) or becomes unreachable.
func WorkerMain() error {
	id := os.Getenv(envID)
	dir := os.Getenv(envDir)
	socket := os.Getenv(envSocket)
	jobName := os.Getenv(envJob)
	if id == "" || dir == "" || socket == "" || jobName == "" {
		return fmt.Errorf("proc: worker env incomplete (%s=%q %s=%q %s=%q %s=%q)",
			envID, id, envDir, dir, envSocket, socket, envJob, jobName)
	}
	job, err := lookup(jobName)
	if err != nil {
		return err
	}
	ws, err := newWorkerState(id, dir, socket)
	if err != nil {
		return err
	}
	defer ws.close()
	return ws.loop(job)
}

// workerState is one worker process's runtime: its RPC client, spools,
// manifest, and the crash-injection knobs.
type workerState struct {
	id     string
	dir    string
	client *rpc.Client

	spools   *spoolSet
	manifest *manifestWriter

	slow      time.Duration // dwell inside every task (test knob)
	killPoint string        // crash point name ("" disables)
	killID    int           // task/partition the crash point is armed for

	// rec is this process's own recorder (non-nil only when the driver
	// set MR_PROC_TRACE): task spans land on lane, and each map task's
	// shuffle emits its seal/block events on partition lanes inside it.
	// The trace is exported to traceFile on clean exit.
	rec       *obs.Recorder
	lane      *obs.Ring
	traceFile string

	// scratch buffers reused across groups.
	kbuf, vbuf []byte
}

// rpcBackoff is the worker's policy for transient control-plane
// failures: dialing the socket before the driver listens, a report call
// racing a driver hiccup. Roughly 10ms..2s doubling, ~10 tries.
var rpcBackoff = Backoff{}

func newWorkerState(id, dir, socket string) (*workerState, error) {
	var client *rpc.Client
	err := rpcBackoff.Retry(workerCtx(), func() error {
		var err error
		client, err = rpc.Dial("unix", socket)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("proc: dialing driver at %s: %w", socket, err)
	}
	var ack Ack
	if err := client.Call("Coord.Register", RegisterArgs{Worker: id, PID: os.Getpid()}, &ack); err != nil {
		client.Close()
		return nil, fmt.Errorf("proc: registering with driver: %w", err)
	}
	ws := &workerState{id: id, dir: dir, client: client, spools: newSpoolSet(dir, id)}
	if ms, err := strconv.Atoi(os.Getenv(envSlowMS)); err == nil && ms > 0 {
		ws.slow = time.Duration(ms) * time.Millisecond
	}
	if spec := os.Getenv(envKill); spec != "" {
		if point, idStr, ok := strings.Cut(spec, ":"); ok {
			if n, err := strconv.Atoi(idStr); err == nil {
				ws.killPoint, ws.killID = point, n
			}
		}
	}
	if tdir := os.Getenv(envTraceDir); tdir != "" {
		ws.rec = obs.NewRecorder(0)
		seq := 0
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "w")); err == nil {
			seq = n
		}
		ws.lane = ws.rec.Lane(obs.LaneProc, seq)
		ws.traceFile = filepath.Join(tdir, "trace-"+id+".json")
	}
	return ws, nil
}

func (ws *workerState) close() {
	ws.spools.closeAll()
	if ws.manifest != nil {
		ws.manifest.close()
	}
	if ws.rec != nil {
		if err := obs.WriteTraceFile(ws.traceFile, ws.rec); err != nil {
			fmt.Fprintf(os.Stderr, "mrworker %s: dropping trace: %v\n", ws.id, err)
		}
	}
	ws.client.Close()
}

func (ws *workerState) ensureManifest() error {
	if ws.manifest != nil {
		return nil
	}
	m, err := openManifest(ws.dir, ws.id)
	if err != nil {
		return err
	}
	ws.manifest = m
	return nil
}

// crashPoint self-SIGKILLs when the named injection point is armed for
// this task. The kill is one-shot per job directory: an exclusive-create
// marker file makes sure a replacement worker running the re-executed
// task does not die again, so each knob injects exactly one crash. pre
// runs after the marker is claimed and before the kill (e.g. flushing a
// torn section's bytes into the kernel).
func (ws *workerState) crashPoint(point string, id int, pre func()) {
	if ws.killPoint != point || ws.killID != id {
		return
	}
	marker := filepath.Join(ws.dir, fmt.Sprintf("killed-%s-%d", point, id))
	f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return // already fired once
	}
	f.Close()
	if pre != nil {
		pre()
	}
	p, _ := os.FindProcess(os.Getpid())
	p.Kill()
	select {} // SIGKILL is not instantaneous; never execute past this point
}

// loop polls for tasks until exit. Transient RPC failures are retried
// with backoff; a driver that stays unreachable ends the worker.
func (ws *workerState) loop(job runnable) error {
	var inputs any
	for {
		var t Task
		err := rpcBackoff.Retry(workerCtx(), func() error {
			t = Task{}
			return ws.client.Call("Coord.Poll", PollArgs{Worker: ws.id}, &t)
		})
		if err != nil {
			return fmt.Errorf("proc: polling driver: %w", err)
		}
		switch t.Kind {
		case TaskExit:
			return nil
		case TaskWait:
			d := t.PollAfter
			if d <= 0 {
				d = 20 * time.Millisecond
			}
			time.Sleep(d)
		case TaskMap:
			if inputs == nil {
				var err error
				if inputs, _, err = job.loadInputs(filepath.Join(ws.dir, inputsFile)); err != nil {
					ws.report("Coord.MapDone", &Ack{}, MapReport{
						Worker: ws.id, Task: t.ID, Attempt: t.Attempt, Err: err.Error(), Fatal: true,
					})
					return err
				}
			}
			rep := ws.runTask(TaskMap, t, func() (any, error) { return job.runMapTask(ws, inputs, t) })
			ws.report("Coord.MapDone", &Ack{}, rep.(MapReport))
		case TaskReduce:
			rep := ws.runTask(TaskReduce, t, func() (any, error) { return job.runReduceTask(ws, t) })
			ws.report("Coord.ReduceDone", &Ack{}, rep.(ReduceReport))
		}
	}
}

// runTask executes one assignment under a heartbeat, converting an
// execution error into a failure report.
func (ws *workerState) runTask(kind TaskKind, t Task, run func() (any, error)) any {
	op := obs.OpProcMapTask
	if kind == TaskReduce {
		op = obs.OpProcReduceTask
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws.heartbeatLoop(done, kind, t.ID, t.Attempt, t.HeartbeatEvery)
	}()
	rep, err := func() (any, error) {
		// Stop the heartbeat (and reap its goroutine) on every way out of
		// the task body — success, error, or a panic unwinding through us
		// — so no ticker or goroutine outlives its task.
		defer func() {
			close(done)
			wg.Wait()
		}()
		ws.lane.Begin(op, int64(t.ID), int64(t.Attempt))
		if ws.slow > 0 {
			time.Sleep(ws.slow)
		}
		return run()
	}()
	if err != nil {
		ws.lane.End(op, int64(t.ID), 1)
	} else {
		ws.lane.End(op, int64(t.ID), 0)
	}
	if err == nil {
		return rep
	}
	if kind == TaskMap {
		return MapReport{Worker: ws.id, Task: t.ID, Attempt: t.Attempt, Err: err.Error(), Fatal: isFatal(err)}
	}
	return ReduceReport{Worker: ws.id, Part: t.ID, Attempt: t.Attempt, Err: err.Error(), Fatal: isFatal(err)}
}

// heartbeatLoop renews the lease on (kind, id, attempt) every interval
// until the task finishes, the driver cancels the attempt, or the
// driver becomes unreachable. It only renews — cancellation does not
// abort the running task; the driver's fencing refuses the stale report
// either way.
func (ws *workerState) heartbeatLoop(done <-chan struct{}, kind TaskKind, id, attempt int, every time.Duration) {
	if every <= 0 {
		return
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			var rep HeartbeatReply
			err := ws.client.Call("Coord.Heartbeat", HeartbeatArgs{
				Worker: ws.id, Kind: kind, ID: id, Attempt: attempt,
			}, &rep)
			if err != nil || rep.Cancel {
				return
			}
		}
	}
}

// report delivers a completion report with retries. A report that still
// cannot be delivered is dropped: the lease will expire and the task
// re-run, which is correct (if slower) — reports are advisory to the
// worker, authoritative only once the driver accepts them.
func (ws *workerState) report(method string, reply any, args any) {
	err := rpcBackoff.Retry(workerCtx(), func() error {
		return ws.client.Call(method, args, reply)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrworker %s: dropping %s report: %v\n", ws.id, method, err)
	}
}

// fatalErr marks an execution error retrying cannot fix (an unencodable
// key type, a violated reducer-size limit): the driver fails the job
// instead of re-granting the task.
type fatalErr struct{ error }

func fatal(err error) error {
	if err == nil {
		return nil
	}
	return fatalErr{err}
}

func isFatal(err error) bool {
	var f fatalErr
	return errors.As(err, &f)
}

// sectionSink receives a map-task shuffle's sealed runs and writes each
// as one fenced spool section — the seam that marries the streaming
// data path's pressure relief to the per-task section + manifest commit
// protocol. Seals arrive single-threaded while the task is mapping, but
// Ingester.Finish drains partitions on parallel workers, so writes are
// serialized under mu (the spool set shares one runfile.Writer).
type sectionSink[K comparable, V any] struct {
	mu      sync.Mutex
	ws      *workerState
	task    int
	attempt int
	seq     map[int]int // next section ordinal per partition
	secs    []Section
}

// write appends one sealed run (post-combine, keys sorted) as a spool
// section. The torn-section crash knob arms only inside the task's
// first section, matching the pre-streaming injection point: the spool
// gets a headerful of bytes with no footer and no manifest record.
func (sk *sectionSink[K, V]) write(part int, keys []K, groups map[K][]V) error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	ws := sk.ws
	arm := len(sk.secs) == 0
	sec, err := ws.spools.appendSection(sk.task, sk.attempt, part, sk.seq[part], func(w *runfile.Writer) error {
		for gi, k := range keys {
			kb, err := runfile.Append(ws.kbuf[:0], k)
			if err != nil {
				return fatal(fmt.Errorf("proc: encoding key: %w", err))
			}
			ws.kbuf = kb
			vs := groups[k]
			if err := w.BeginGroup(kb, len(vs)); err != nil {
				return err
			}
			for _, v := range vs {
				vb, err := runfile.Append(ws.vbuf[:0], v)
				if err != nil {
					return fatal(fmt.Errorf("proc: encoding value: %w", err))
				}
				ws.vbuf = vb
				if err := w.AppendValue(vb); err != nil {
					return err
				}
			}
			if arm && gi == len(keys)/2 {
				ws.crashPoint("map-torn", sk.task, func() { w.Flush() })
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	sk.seq[part]++
	sk.secs = append(sk.secs, sec)
	return nil
}

// sections returns everything written, in (Part, Seq) order — the
// parallel Finish drain interleaves partitions nondeterministically,
// so the manifest must not record arrival order.
func (sk *sectionSink[K, V]) sections() []Section {
	sort.Slice(sk.secs, func(i, j int) bool {
		if sk.secs[i].Part != sk.secs[j].Part {
			return sk.secs[i].Part < sk.secs[j].Part
		}
		return sk.secs[i].Seq < sk.secs[j].Seq
	})
	return sk.secs
}

// runMapTask maps records [Lo, Hi) through a worker-local streaming
// shuffle: pairs route through an Ingester under the job's
// MemoryBudget, so pressure relief, combiner push-down, and
// spill-as-sorted-sections all happen inside the worker, mid-task —
// resident pairs stay bounded by P*MemoryBudget + BlockPairs instead
// of the task's output size. Every sealed run lands in the spools as
// one fenced section via sectionSink; the task then commits all its
// sections with one manifest record before reporting (the manifest
// write is still the task's durability point, and with MemoryBudget
// zero the layout degenerates to the pre-streaming one section per
// non-empty partition).
func (j *jobImpl[I, K, V, O]) runMapTask(ws *workerState, inputs any, t Task) (MapReport, error) {
	ins, ok := inputs.([]I)
	if !ok {
		return MapReport{}, fatal(fmt.Errorf("proc: job %q inputs are %T, not []%T", j.spec.Name, inputs, *new(I)))
	}
	if t.Lo < 0 || t.Hi > len(ins) || t.Lo > t.Hi {
		return MapReport{}, fatal(fmt.Errorf("proc: map task %d range [%d,%d) outside %d inputs", t.ID, t.Lo, t.Hi, len(ins)))
	}
	if err := ws.ensureManifest(); err != nil {
		return MapReport{}, err
	}
	// The scratch dir holds only the shuffle's transient pressure-swap
	// stash files, never committed sections — keeping it out of the job
	// dir's spool namespace keeps spool accounting literal.
	scratch := filepath.Join(ws.dir, "scratch-"+ws.id)
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		return MapReport{}, fmt.Errorf("proc: creating worker scratch dir: %w", err)
	}
	sh := shuffle.New[K, V](shuffle.Options{
		Partitions:       t.Partitions,
		MaxBufferedPairs: t.MemoryBudget,
		SpillDir:         scratch,
		Recorder:         ws.rec,
	})
	defer sh.Close()
	var hasher shuffle.StableHasher[K]
	var emitErr error
	sh.SetPartitioner(func(k K) int {
		p, err := j.partition(&hasher, k, t.Partitions)
		if err != nil {
			if emitErr == nil {
				emitErr = err
			}
			return 0
		}
		return p
	})
	if j.spec.Combine != nil {
		sh.SetCombiner(j.spec.Combine)
	}
	sink := &sectionSink[K, V]{ws: ws, task: t.ID, attempt: t.Attempt, seq: make(map[int]int)}
	sh.SetSealSink(sink.write)

	// One ingester sub-task per input record, committed in order: the
	// watermark advances continuously, so absorption (and the seals it
	// triggers) overlaps mapping and fires at deterministic points —
	// the map loop is single-threaded, which is what makes re-executed
	// attempts byte-identical.
	in := sh.NewIngester()
	var pairsEmitted int64
	for i := t.Lo; i < t.Hi; i++ {
		tw := in.Task(i-t.Lo, 0)
		j.spec.Map(ins[i], func(k K, v V) {
			pairsEmitted++
			if emitErr != nil {
				return
			}
			tw.Emit(k, v)
		})
		if err := tw.Commit(); err != nil {
			return MapReport{}, fmt.Errorf("proc: streaming map task %d: %w", t.ID, err)
		}
		if emitErr != nil {
			return MapReport{}, fatal(fmt.Errorf("proc: partitioning map task %d: %w", t.ID, emitErr))
		}
	}
	if err := in.Finish(); err != nil {
		return MapReport{}, fmt.Errorf("proc: draining map task %d: %w", t.ID, err)
	}
	if err := sh.SealAllLive(); err != nil {
		return MapReport{}, fmt.Errorf("proc: final seal of map task %d: %w", t.ID, err)
	}
	secs := sink.sections()
	peak := sh.PeakResidentPairs()
	if err := ws.manifest.commit(manifestEntry{
		Task: t.ID, Attempt: t.Attempt, PairsEmitted: pairsEmitted, PeakResident: peak, Sections: secs,
	}); err != nil {
		return MapReport{}, err
	}
	// Committed-but-unreported injection: the manifest record is durable,
	// the report never leaves — salvage must adopt this task.
	ws.crashPoint("map-manifest", t.ID, nil)
	return MapReport{
		Worker: ws.id, Task: t.ID, Attempt: t.Attempt,
		PairsEmitted: pairsEmitted, Sections: secs, PeakResident: peak,
	}, nil
}

// runReduceTask streams a k-way merge over the partition's committed
// sections — each a sorted run, ordered (Task, Attempt, Seq) by the
// driver — reducing every group in canonical key order as it surfaces
// and writing the partition's output file (gob: group count, then
// outGroups). Only the sections' indexes and one decoded group are
// resident at a time: the memory bound is the merge fan-in plus the
// largest single group, not the partition size.
//
// With Task.ReduceSplitPairs set, the worker first plans class-aligned
// key ranges from the sections' decoded indexes, slices every section
// cursor per range, and runs the range merges concurrently — then
// concatenates their groups in range order, so the output file is
// byte-identical to the unsplit merge. PeakResident stays the largest
// single decoded group either way (each range holds at most one), but
// a split attempt holds up to one group per concurrent range resident
// at once — the documented residency multiplier of range concurrency.
func (j *jobImpl[I, K, V, O]) runReduceTask(ws *workerState, t Task) (ReduceReport, error) {
	ws.crashPoint("reduce", t.ID, nil)
	// One handle per distinct spool file; every cursor reads through it
	// with positioned reads, no seek state to share.
	files := make(map[string]*os.File)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	var scs []*runfile.SectionCursor
	var bytesRead int64
	for _, sec := range t.Sections {
		f, ok := files[sec.Path]
		if !ok {
			var err error
			f, err = os.Open(sec.Path)
			if err != nil {
				return ReduceReport{}, fmt.Errorf("proc: opening spool %s: %w", sec.Path, err)
			}
			files[sec.Path] = f
		}
		sc, err := runfile.NewSectionCursor(io.NewSectionReader(f, sec.Offset, sec.Length), sec.Length, sec.DataBytes)
		if err != nil {
			return ReduceReport{}, fmt.Errorf("proc: section %s@%d+%d unreadable: %w", sec.Path, sec.Offset, sec.Length, err)
		}
		bytesRead += sec.DataBytes
		scs = append(scs, sc)
	}

	var groups []outGroup[K, O]
	var st mergeStats
	var nRanges int64
	if slices := sliceSectionsByRange[K](scs, t.ReduceSplitPairs, t.ReduceRangeConcurrency); slices != nil {
		nRanges = int64(len(slices))
		rangeGroups := make([][]outGroup[K, O], len(slices))
		stats := make([]mergeStats, len(slices))
		errs := make([]error, len(slices))
		var wg sync.WaitGroup
		for r := range slices {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rangeGroups[r], stats[r], errs[r] = mergeSections(j, slices[r], t)
			}(r)
		}
		wg.Wait()
		for r := range slices {
			if errs[r] != nil {
				return ReduceReport{}, errs[r]
			}
			groups = append(groups, rangeGroups[r]...)
			st.keys += stats[r].keys
			st.outputs += stats[r].outputs
			st.pairsIn += stats[r].pairsIn
			if stats[r].maxGroup > st.maxGroup {
				st.maxGroup = stats[r].maxGroup
			}
		}
	} else {
		var err error
		groups, st, err = mergeSections(j, scs, t)
		if err != nil {
			return ReduceReport{}, err
		}
	}
	path := outPath(ws.dir, t.ID, t.Attempt)
	if err := writeOutputs(path, groups); err != nil {
		return ReduceReport{}, err
	}
	return ReduceReport{
		Worker: ws.id, Part: t.ID, Attempt: t.Attempt, OutPath: path,
		Keys: st.keys, Outputs: st.outputs, MaxGroup: st.maxGroup,
		PairsIn: st.pairsIn, BytesRead: bytesRead, PeakResident: st.maxGroup,
		Ranges: nRanges,
	}, nil
}

// sliceSectionsByRange plans class-aligned key ranges from the
// sections' resident indexes (decoded keys + counts — no value read)
// and slices every cursor to each range's [lo, hi) window. nil means
// run unsplit: splitting disabled, the partition under the target, or
// an index key that fails to decode (the whole-partition merge decodes
// the same bytes and surfaces the error fatally).
func sliceSectionsByRange[K comparable](scs []*runfile.SectionCursor, splitPairs, maxRanges int) [][]*runfile.SectionCursor {
	if splitPairs <= 0 {
		return nil
	}
	if maxRanges <= 0 {
		// A split target is an explicit opt-in: keep at least two ranges
		// even on a single-CPU worker so the requested split happens.
		maxRanges = runtime.GOMAXPROCS(0)
		if maxRanges < 2 {
			maxRanges = 2
		}
	}
	secKeys := make([][]K, len(scs))
	counts := make(map[K]int64)
	var total int64
	for i, sc := range scs {
		ks := make([]K, sc.Len())
		for e := 0; e < sc.Len(); e++ {
			k, err := runfile.Decode[K](sc.KeyAt(e))
			if err != nil {
				return nil
			}
			ks[e] = k
			counts[k] += sc.CountAt(e)
			total += sc.CountAt(e)
		}
		secKeys[i] = ks
	}
	if total <= int64(splitPairs) {
		return nil
	}
	distinct := make([]K, 0, len(counts))
	for k := range counts {
		distinct = append(distinct, k)
	}
	shuffle.SortKeys(distinct)
	loads := make([]int64, len(distinct))
	for i, k := range distinct {
		loads[i] = counts[k]
	}
	ranges := shuffle.PlanRangesFromCounts(distinct, loads, int64(splitPairs), maxRanges)
	if ranges == nil {
		return nil
	}
	out := make([][]*runfile.SectionCursor, len(ranges))
	for r, kr := range ranges {
		// Slices stay in section (task, attempt, seq) order — the
		// value-order contract each range merge preserves.
		for i, sc := range scs {
			lo, hi := kr.Clamp(secKeys[i])
			if lo == hi {
				continue
			}
			s, err := sc.Slice(lo, hi)
			if err != nil {
				return nil
			}
			out[r] = append(out[r], s)
		}
	}
	return out
}

// mergeStats is one merge's group profile, summed across ranges when
// the partition was split.
type mergeStats struct {
	keys, outputs, maxGroup, pairsIn int64
}

// mergeSections runs the k-way merge-reduce over the given section
// cursors (whole sections, or one range's slices) and returns the
// reduced groups in canonical key order. Each call owns its cursors
// and decode arena, so disjoint ranges merge concurrently.
func mergeSections[I any, K comparable, V, O any](j *jobImpl[I, K, V, O], scs []*runfile.SectionCursor, t Task) ([]outGroup[K, O], mergeStats, error) {
	// mergeCursor is one section's position in the merge. curs stays in
	// section (task, attempt, seq) order throughout — gathering a key's
	// values by ascending scan is what preserves the value-order
	// contract across seal splits.
	type mergeCursor struct {
		sc  *runfile.SectionCursor
		key K
	}
	var curs []*mergeCursor
	for _, sc := range scs {
		if !sc.Next() {
			continue
		}
		k, err := runfile.Decode[K](sc.Key())
		if err != nil {
			return nil, mergeStats{}, fatal(fmt.Errorf("proc: decoding key: %w", err))
		}
		curs = append(curs, &mergeCursor{sc: sc, key: k})
	}

	less := shuffle.KeyLess[K]()
	var vb runfile.ValueBatch
	var vals []V
	var st mergeStats
	var groups []outGroup[K, O]
	for len(curs) > 0 {
		// Select the minimum key by linear scan: the fan-in is the
		// partition's section count — small next to the decode work per
		// group — and group membership below is decided by ==, so even
		// distinct keys the fallback comparator cannot separate gather
		// correctly.
		mi := 0
		for i := 1; i < len(curs); i++ {
			if less(curs[i].key, curs[mi].key) {
				mi = i
			}
		}
		k := curs[mi].key
		var total int64
		for _, c := range curs {
			if c.key == k {
				total += c.sc.Count()
			}
		}
		if t.MaxReducerInput > 0 && total > int64(t.MaxReducerInput) {
			return nil, mergeStats{}, fatal(fmt.Errorf(
				"proc: reducer for a key in partition %d received %d values, limit %d", t.ID, total, t.MaxReducerInput))
		}
		if total > st.maxGroup {
			st.maxGroup = total
		}
		if j.spec.BatchReduce {
			vals = vals[:0] // reduce released the arena; reuse it
		} else {
			vals = nil // reduce may retain the slice; give each key its own
		}
		for i := 0; i < len(curs); {
			c := curs[i]
			if c.key != k {
				i++
				continue
			}
			if err := c.sc.Values(&vb); err != nil {
				return nil, mergeStats{}, fmt.Errorf("proc: reading values in partition %d: %w", t.ID, err)
			}
			var err error
			vals, err = runfile.DecodeBatch[V](&vb, vals)
			if err != nil {
				return nil, mergeStats{}, fatal(fmt.Errorf("proc: decoding values: %w", err))
			}
			st.pairsIn += c.sc.Count()
			if c.sc.Next() {
				nk, err := runfile.Decode[K](c.sc.Key())
				if err != nil {
					return nil, mergeStats{}, fatal(fmt.Errorf("proc: decoding key: %w", err))
				}
				c.key = nk
				i++
			} else {
				curs = append(curs[:i], curs[i+1:]...)
			}
		}
		g := outGroup[K, O]{Key: k, Load: len(vals)}
		j.spec.Reduce(k, vals, func(o O) { g.Outs = append(g.Outs, o) })
		st.outputs += int64(len(g.Outs))
		st.keys++
		groups = append(groups, g)
	}
	return groups, st, nil
}

// writeOutputs encodes one reduce attempt's groups to its output file:
// a gob stream of the group count followed by each group, already in
// canonical key order.
func writeOutputs[K comparable, O any](path string, groups []outGroup[K, O]) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("proc: creating reduce output: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(len(groups)); err != nil {
		f.Close()
		return fmt.Errorf("proc: encoding output count: %w", err)
	}
	for i := range groups {
		if err := enc.Encode(&groups[i]); err != nil {
			f.Close()
			return fmt.Errorf("proc: encoding output group: %w", err)
		}
	}
	return f.Close()
}

// readOutputs decodes one accepted reduce output file through the
// driver's FS (so reopen faults are injectable).
func readOutputs[K comparable, O any](fs runfile.FS, path string) ([]outGroup[K, O], error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("proc: opening reduce output %s: %w", path, err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("proc: decoding output count in %s: %w", path, err)
	}
	groups := make([]outGroup[K, O], n)
	for i := range groups {
		if err := dec.Decode(&groups[i]); err != nil {
			return nil, fmt.Errorf("proc: decoding output group in %s: %w", path, err)
		}
	}
	return groups, nil
}

// sortSectionsByTask orders a reduce task's input sections by (Task,
// Attempt, Seq) — the value-order contract (values arrive in map-task
// order, and within a task in the order its winning attempt sealed
// them). Attempt breaks the tie when a salvaged section and a
// re-executed attempt's section coexist for the same task; sorting by
// Task alone left that order unstable across runs.
func sortSectionsByTask(secs []Section) {
	sort.Slice(secs, func(i, j int) bool {
		a, b := secs[i], secs[j]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Seq < b.Seq
	})
}
