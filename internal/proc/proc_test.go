package proc

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/runfile"
	"repro/internal/shuffle"
)

// TestMain doubles as the worker binary: the driver spawns the test
// executable itself, and MaybeWorker hijacks the process before any
// test runs when the worker environment is set.
func TestMain(m *testing.M) {
	registerTestJobs()
	MaybeWorker()
	os.Exit(m.Run())
}

// wcOut is one word's count — the wordcount job's output record.
type wcOut struct {
	Word  string
	Count int
}

func registerTestJobs() {
	Register(JobSpec[string, string, int, wcOut]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int) []int {
			s := 0
			for _, v := range vs {
				s += v
			}
			return []int{s}
		},
		Reduce: func(k string, vs []int, emit func(wcOut)) {
			s := 0
			for _, v := range vs {
				s += v
			}
			emit(wcOut{Word: k, Count: s})
		},
	})
	// Same job without a combiner: every emitted pair crosses the
	// process boundary, which the skew/limit tests rely on.
	Register(JobSpec[string, string, int, wcOut]{
		Name: "wordcount-nocombine",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Reduce: func(k string, vs []int, emit func(wcOut)) {
			s := 0
			for _, v := range vs {
				s += v
			}
			emit(wcOut{Word: k, Count: s})
		},
	})
	registerOrderJob()
}

// genLines builds a deterministic corpus with repeated words and skew.
func genLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		a := fmt.Sprintf("w%02d", i%23)
		b := fmt.Sprintf("w%02d", (i*7)%31)
		c := fmt.Sprintf("rare%03d", i%97)
		lines[i] = strings.Join([]string{a, b, c, "common"}, " ")
	}
	return lines
}

// refWordCount is the single-process reference: the same grouping and
// global canonical key order computed directly in this process, with no
// partitioning at all — partition placement must not leak into the
// output. Crash-tolerant runs must match it exactly.
func refWordCount(lines []string, parts int) []wcOut {
	_ = parts // placement-invariant by contract
	counts := make(map[string]int)
	for _, line := range lines {
		for _, w := range strings.Fields(line) {
			counts[w]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	shuffle.SortKeys(keys)
	outs := make([]wcOut, 0, len(keys))
	for _, k := range keys {
		outs = append(outs, wcOut{Word: k, Count: counts[k]})
	}
	return outs
}

// testWorkers reads the CI matrix knob (crashtest job) so the same
// tests cover several fleet sizes; default 3.
func testWorkers(t *testing.T) int {
	if s := os.Getenv("MRPROC_WORKERS"); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n > 0 {
			return n
		}
		t.Fatalf("bad MRPROC_WORKERS=%q", s)
	}
	return 3
}

// testMemBudget reads the CI matrix's MemoryBudget column so the whole
// crash suite also runs with tiny worker budgets (mid-task spills
// everywhere); default 0 = unbounded, one section per partition.
func testMemBudget(t *testing.T) int {
	if s := os.Getenv("MRPROC_MEMBUDGET"); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n >= 0 {
			return n
		}
		t.Fatalf("bad MRPROC_MEMBUDGET=%q", s)
	}
	return 0
}

// testSplitPairs reads the CI matrix's range-split column so the crash
// suite also runs with reduce workers cutting their merges into
// concurrent key ranges; default 0 = whole-partition merges.
func testSplitPairs(t *testing.T) int {
	if s := os.Getenv("MRPROC_SPLITPAIRS"); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n >= 0 {
			return n
		}
		t.Fatalf("bad MRPROC_SPLITPAIRS=%q", s)
	}
	return 0
}

// TestProcRangeSplit: reduce workers told to split their merges into
// key-range units must produce output files byte-identical to the
// whole-partition merge — same records, same order — and report the
// ranges they cut.
func TestProcRangeSplit(t *testing.T) {
	lines := genLines(150) // "common" dominates: a genuinely skewed hot key
	const parts = 3
	run := func(splitPairs, conc int) ([]wcOut, Metrics) {
		outs, met, err := Run[string, string, int, wcOut]("wordcount-nocombine", lines, Options{
			Workers: 2, Partitions: parts, Dir: t.TempDir(),
			ReduceSplitPairs: splitPairs, ReduceRangeConcurrency: conc,
			Timeout: 90 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs, met
	}
	want, wantMet := run(0, 0)
	if !reflect.DeepEqual(want, refWordCount(lines, parts)) {
		t.Fatal("unsplit run diverges from reference")
	}
	for _, conc := range []int{0, 2} {
		got, met := run(8, conc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("range-split outputs (conc=%d) diverge from whole-partition merge", conc)
		}
		if met.ReduceRanges == 0 {
			t.Fatalf("ReduceRanges = 0 with split target 8 over %d shuffled pairs", met.PairsShuffled)
		}
		if met.Reducers != wantMet.Reducers || met.MaxReducerInput != wantMet.MaxReducerInput ||
			met.PeakResidentPairs != wantMet.PeakResidentPairs {
			t.Fatalf("range-split metrics diverge:\nsplit %+v\nwhole %+v", met, wantMet)
		}
	}
}

func TestProcRunClean(t *testing.T) {
	t.Run("unbounded", func(t *testing.T) { testProcRunClean(t, 0) })
	// Inputs (480 pairs) far exceed the budget: every map task must
	// spill mid-task, and the resident high-water mark stays bounded.
	t.Run("budget8", func(t *testing.T) { testProcRunClean(t, 8) })
}

func testProcRunClean(t *testing.T, budget int) {
	lines := genLines(120)
	const parts = 5
	dir := t.TempDir()
	outs, met, err := Run[string, string, int, wcOut]("wordcount", lines, Options{
		Workers:      testWorkers(t),
		Partitions:   parts,
		MemoryBudget: budget,
		Dir:          dir,
		Timeout:      90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := refWordCount(lines, parts)
	if !reflect.DeepEqual(outs, want) {
		t.Fatalf("multi-process output diverges from single-process reference:\n got %d records\nwant %d records", len(outs), len(want))
	}

	if met.MapInputs != 120 || met.Outputs != int64(len(want)) || met.Reducers != int64(len(want)) {
		t.Errorf("logical metrics off: %+v", met)
	}
	if met.WorkerDeaths != 0 || met.MapRetries != 0 || met.ReduceRetries != 0 || met.SalvagedTasks != 0 {
		t.Errorf("clean run recorded faults: %+v", met)
	}
	if met.PairsEmitted != 4*120 {
		t.Errorf("PairsEmitted = %d, want %d", met.PairsEmitted, 4*120)
	}
	if met.PairsShuffled <= 0 || met.PairsShuffled >= met.PairsEmitted {
		t.Errorf("combiner did not shrink the boundary crossing: shuffled %d of %d emitted", met.PairsShuffled, met.PairsEmitted)
	}

	// The acceptance criterion for BytesSpilled in proc mode: it must
	// equal the bytes actually written to the inter-process spool files.
	// In a fault-free run every written section is committed and
	// accepted, so the spool files on disk are exactly the accepted
	// sections.
	spools, err := filepath.Glob(filepath.Join(dir, "spool-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spools) == 0 {
		t.Fatal("no spool files written")
	}
	var onDisk int64
	for _, p := range spools {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += st.Size()
	}
	if got := met.BytesSpilled + met.IndexBytesSpilled; got != onDisk {
		t.Errorf("BytesSpilled+IndexBytesSpilled = %d, but spool files hold %d bytes", got, onDisk)
	}
	if met.BytesSpilled <= 0 || met.DiskBytesRead <= 0 {
		t.Errorf("boundary accounting empty: %+v", met)
	}

	if met.PeakResidentPairs <= 0 {
		t.Errorf("PeakResidentPairs = %d, want > 0", met.PeakResidentPairs)
	}
	if budget > 0 {
		// Map side: 8 internal partitions (5 rounded up) × budget, plus
		// one staging block (min 16 pairs). Reduce side: the largest
		// single group, which merge-read cannot shrink below.
		mapBound := int64(8*budget + 16)
		bound := mapBound
		if met.MaxReducerInput > bound {
			bound = met.MaxReducerInput
		}
		if bound >= met.PairsEmitted {
			t.Fatalf("bound %d is not smaller than the input (%d pairs); the test proves nothing", bound, met.PairsEmitted)
		}
		if met.PeakResidentPairs > bound {
			t.Errorf("PeakResidentPairs = %d exceeds the memory bound %d", met.PeakResidentPairs, bound)
		}
		// Mid-task spill evidence: some task committed more than one
		// section for a partition (Seq >= 1), i.e. pressure sealed part
		// of its output before the task finished.
		manifests, err := filepath.Glob(filepath.Join(dir, "manifest-*.log"))
		if err != nil || len(manifests) == 0 {
			t.Fatalf("no manifests found: %v", err)
		}
		spilled := false
		for _, mp := range manifests {
			entries, err := readManifest(runfile.OSFS, mp)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				for _, sec := range e.Sections {
					if sec.Seq >= 1 {
						spilled = true
					}
				}
			}
		}
		if !spilled {
			t.Error("no section with Seq >= 1: no map task spilled mid-task under the budget")
		}
	}
}

// TestProcRunMatchesAcrossWorkerCounts: the output contract is
// placement- and schedule-invariant — 1 worker and N workers produce
// identical bytes.
func TestProcRunMatchesAcrossWorkerCounts(t *testing.T) {
	lines := genLines(60)
	const parts = 4
	want := refWordCount(lines, parts)
	for _, workers := range []int{1, 4} {
		outs, _, err := Run[string, string, int, wcOut]("wordcount", lines, Options{
			Workers: workers, Partitions: parts, Timeout: 90 * time.Second,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(outs, want) {
			t.Fatalf("workers=%d output diverges from reference", workers)
		}
	}
}

// TestProcMaxReducerInput: the paper's q limit is enforced across the
// process boundary — a key group larger than the limit fails the job.
func TestProcMaxReducerInput(t *testing.T) {
	lines := genLines(40) // "common" appears 40 times
	_, _, err := Run[string, string, int, wcOut]("wordcount-nocombine", lines, Options{
		Workers: 2, Partitions: 3, MaxReducerInput: 10, Timeout: 90 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized reducer not rejected: %v", err)
	}
}

func TestProcUnregisteredJob(t *testing.T) {
	_, _, err := Run[string, string, int, wcOut]("no-such-job", nil, Options{Timeout: 10 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("unregistered job = %v", err)
	}
}

func TestProcEmptyInputs(t *testing.T) {
	outs, met, err := Run[string, string, int, wcOut]("wordcount", nil, Options{
		Workers: 2, Partitions: 3, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 || met.MapTasks != 0 || met.Outputs != 0 {
		t.Fatalf("empty job produced %d outputs, %+v", len(outs), met)
	}
}
