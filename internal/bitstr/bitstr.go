// Package bitstr provides fixed-length bit-string utilities for the
// Hamming-distance problems of Section 3 of the paper. A bit string of
// length b ≤ 63 is represented as the low b bits of a uint64; bit 0 is the
// first (leftmost, in the paper's segment terminology) bit.
package bitstr

import "math/bits"

// MaxLen is the largest supported string length.
const MaxLen = 63

// Universe returns the number of bit strings of length b, i.e. 2^b.
func Universe(b int) int {
	return 1 << uint(b)
}

// Weight is the number of 1-bits of x (the paper's "weight of a string").
func Weight(x uint64) int {
	return bits.OnesCount64(x)
}

// Distance is the Hamming distance between x and y.
func Distance(x, y uint64) int {
	return bits.OnesCount64(x ^ y)
}

// Flip returns x with bit i inverted.
func Flip(x uint64, i int) uint64 {
	return x ^ (1 << uint(i))
}

// Neighbors calls fn for each of the b strings at Hamming distance exactly
// 1 from x.
func Neighbors(x uint64, b int, fn func(y uint64)) {
	for i := 0; i < b; i++ {
		fn(Flip(x, i))
	}
}

// Segment extracts the i-th of c equal segments of an x of length b
// (i in [0, c)). b must be divisible by c. Segment 0 holds bits 0..b/c-1.
func Segment(x uint64, i, c, b int) uint64 {
	seg := b / c
	return (x >> uint(i*seg)) & ((1 << uint(seg)) - 1)
}

// RemoveSegment deletes the i-th of c equal segments from x, concatenating
// the remaining bits: the result has b - b/c significant bits. This is the
// reducer key of the Splitting algorithm of Section 3.3.
func RemoveSegment(x uint64, i, c, b int) uint64 {
	seg := b / c
	lowMask := uint64(1)<<uint(i*seg) - 1
	low := x & lowMask
	high := x >> uint((i+1)*seg)
	return low | high<<uint(i*seg)
}

// RemoveSegments deletes the segments whose indices are the set bits of
// segMask (a bitmask over the c segments) and concatenates the rest. It
// generalizes RemoveSegment to the distance-d Splitting algorithm of
// Section 3.6.
func RemoveSegments(x uint64, segMask uint64, c, b int) uint64 {
	seg := b / c
	var out uint64
	shift := 0
	for i := 0; i < c; i++ {
		if segMask&(1<<uint(i)) != 0 {
			continue
		}
		out |= Segment(x, i, c, b) << uint(shift)
		shift += seg
	}
	return out
}

// HalfWeights returns the weights of the left half (bits 0..b/2-1) and the
// right half of x; b must be even. These index the cells of the
// weight-partition algorithm of Section 3.4.
func HalfWeights(x uint64, b int) (left, right int) {
	half := b / 2
	mask := uint64(1)<<uint(half) - 1
	return bits.OnesCount64(x & mask), bits.OnesCount64(x >> uint(half))
}

// PieceWeights returns the weights of the d equal pieces of x (Section
// 3.5); b must be divisible by d.
func PieceWeights(x uint64, d, b int) []int {
	piece := b / d
	mask := uint64(1)<<uint(piece) - 1
	ws := make([]int, d)
	for i := 0; i < d; i++ {
		ws[i] = bits.OnesCount64((x >> uint(i*piece)) & mask)
	}
	return ws
}

// Binomial returns C(n, k) as a float64 (exact for the modest sizes the
// experiments use).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// ChooseSets calls fn for every k-subset of {0..n-1}, encoded as a bitmask,
// in increasing mask order.
func ChooseSets(n, k int, fn func(mask uint64)) {
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		fn(0)
		return
	}
	// Gosper's hack: iterate masks with exactly k bits.
	mask := uint64(1)<<uint(k) - 1
	limit := uint64(1) << uint(n)
	for mask < limit {
		fn(mask)
		c := mask & (^mask + 1)
		r := mask + c
		mask = (((r ^ mask) >> 2) / c) | r
	}
}
