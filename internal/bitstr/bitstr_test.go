package bitstr

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestWeightAndDistance(t *testing.T) {
	tests := []struct {
		x, y uint64
		d    int
	}{
		{0, 0, 0},
		{0b1010, 0b1010, 0},
		{0b1010, 0b1011, 1},
		{0b0000, 0b1111, 4},
		{0b1100, 0b0011, 4},
	}
	for _, tc := range tests {
		if got := Distance(tc.x, tc.y); got != tc.d {
			t.Errorf("Distance(%b, %b) = %d, want %d", tc.x, tc.y, got, tc.d)
		}
	}
	if Weight(0b10110) != 3 {
		t.Errorf("Weight(10110) = %d, want 3", Weight(0b10110))
	}
}

func TestFlipAndNeighbors(t *testing.T) {
	x := uint64(0b0101)
	if Flip(x, 1) != 0b0111 {
		t.Errorf("Flip(0101, 1) = %b, want 0111", Flip(x, 1))
	}
	var seen []uint64
	Neighbors(x, 4, func(y uint64) { seen = append(seen, y) })
	if len(seen) != 4 {
		t.Fatalf("Neighbors produced %d strings, want 4", len(seen))
	}
	for _, y := range seen {
		if Distance(x, y) != 1 {
			t.Errorf("neighbor %b at distance %d, want 1", y, Distance(x, y))
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	// b=12, c=3 segments of 4 bits. x = seg2|seg1|seg0.
	x := uint64(0xABC) // seg0=0xC, seg1=0xB, seg2=0xA
	if Segment(x, 0, 3, 12) != 0xC {
		t.Errorf("Segment 0 = %x, want C", Segment(x, 0, 3, 12))
	}
	if Segment(x, 1, 3, 12) != 0xB {
		t.Errorf("Segment 1 = %x, want B", Segment(x, 1, 3, 12))
	}
	if Segment(x, 2, 3, 12) != 0xA {
		t.Errorf("Segment 2 = %x, want A", Segment(x, 2, 3, 12))
	}
}

func TestRemoveSegment(t *testing.T) {
	x := uint64(0xABC)
	if got := RemoveSegment(x, 0, 3, 12); got != 0xAB {
		t.Errorf("RemoveSegment(ABC, 0) = %x, want AB", got)
	}
	if got := RemoveSegment(x, 1, 3, 12); got != 0xAC {
		t.Errorf("RemoveSegment(ABC, 1) = %x, want AC", got)
	}
	if got := RemoveSegment(x, 2, 3, 12); got != 0xBC {
		t.Errorf("RemoveSegment(ABC, 2) = %x, want BC", got)
	}
}

func TestRemoveSegmentsMatchesSingle(t *testing.T) {
	x := uint64(0x5A3)
	for i := 0; i < 3; i++ {
		want := RemoveSegment(x, i, 3, 12)
		got := RemoveSegments(x, 1<<uint(i), 3, 12)
		if got != want {
			t.Errorf("RemoveSegments(mask=1<<%d) = %x, want %x", i, got, want)
		}
	}
	// Removing segments 0 and 2 of ABC leaves segment 1 = B.
	if got := RemoveSegments(0xABC, 0b101, 3, 12); got != 0xB {
		t.Errorf("RemoveSegments(ABC, {0,2}) = %x, want B", got)
	}
}

func TestHalfWeights(t *testing.T) {
	// b=8: left = bits 0..3, right = bits 4..7.
	x := uint64(0b1111_0101)
	l, r := HalfWeights(x, 8)
	if l != 2 || r != 4 {
		t.Errorf("HalfWeights = (%d,%d), want (2,4)", l, r)
	}
}

func TestPieceWeights(t *testing.T) {
	x := uint64(0b111_000_101_011) // 4 pieces of 3 bits, b=12
	ws := PieceWeights(x, 4, 12)
	want := []int{2, 2, 0, 3}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("PieceWeights[%d] = %d, want %d", i, ws[i], want[i])
		}
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120},
		{4, 5, 0}, {4, -1, 0}, {20, 10, 184756},
	}
	for _, tc := range tests {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("Binomial(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestChooseSets(t *testing.T) {
	var masks []uint64
	ChooseSets(5, 2, func(m uint64) { masks = append(masks, m) })
	if len(masks) != 10 {
		t.Fatalf("ChooseSets(5,2) produced %d masks, want 10", len(masks))
	}
	seen := map[uint64]bool{}
	for _, m := range masks {
		if bits.OnesCount64(m) != 2 {
			t.Errorf("mask %b has %d bits, want 2", m, bits.OnesCount64(m))
		}
		if m >= 32 {
			t.Errorf("mask %b out of 5-bit universe", m)
		}
		if seen[m] {
			t.Errorf("mask %b repeated", m)
		}
		seen[m] = true
	}
}

func TestChooseSetsEdgeCases(t *testing.T) {
	count := 0
	ChooseSets(4, 0, func(uint64) { count++ })
	if count != 1 {
		t.Errorf("ChooseSets(4,0) fired %d times, want 1", count)
	}
	count = 0
	ChooseSets(4, 4, func(uint64) { count++ })
	if count != 1 {
		t.Errorf("ChooseSets(4,4) fired %d times, want 1", count)
	}
	count = 0
	ChooseSets(4, 5, func(uint64) { count++ })
	if count != 0 {
		t.Errorf("ChooseSets(4,5) fired %d times, want 0", count)
	}
}

// Property: RemoveSegment drops exactly the bits of segment i; two strings
// agreeing outside segment i collapse to the same key.
func TestPropertyRemoveSegmentCollapses(t *testing.T) {
	f := func(xRaw, yRaw uint16, iRaw uint8) bool {
		const b, c = 12, 3
		const segBits = b / c
		i := int(iRaw) % c
		x := uint64(xRaw) & (1<<b - 1)
		// y agrees with x outside segment i, differs arbitrarily inside.
		segMask := uint64((1<<segBits)-1) << uint(i*segBits)
		y := (x &^ segMask) | (uint64(yRaw) & segMask)
		return RemoveSegment(x, i, c, b) == RemoveSegment(y, i, c, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distance-1 strings have half weights differing by exactly 1 in
// exactly one half — the invariant behind the weight-partition algorithm.
func TestPropertyDistanceOneWeights(t *testing.T) {
	f := func(xRaw uint16, bitRaw uint8) bool {
		const b = 16
		x := uint64(xRaw)
		y := Flip(x, int(bitRaw)%b)
		lx, rx := HalfWeights(x, b)
		ly, ry := HalfWeights(y, b)
		dl, dr := abs(lx-ly), abs(rx-ry)
		return (dl == 1 && dr == 0) || (dl == 0 && dr == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: sum of piece weights equals total weight.
func TestPropertyPieceWeightsSum(t *testing.T) {
	f := func(xRaw uint16, dRaw uint8) bool {
		const b = 12
		ds := []int{2, 3, 4, 6}
		d := ds[int(dRaw)%len(ds)]
		x := uint64(xRaw) & (1<<b - 1)
		sum := 0
		for _, w := range PieceWeights(x, d, b) {
			sum += w
		}
		return sum == Weight(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
