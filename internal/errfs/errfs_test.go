package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestPassThroughAndCounting: with nothing armed the wrapper is a
// faithful filesystem, and every operation is counted.
func TestPassThroughAndCounting(t *testing.T) {
	fs := New(nil)
	dir := t.TempDir()
	f, err := fs.CreateTemp(dir, "errfs-*.run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := fs.Open(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := rf.Read(buf); err != nil || string(buf) != "hello" {
		t.Fatalf("Read = %q, %v", buf, err)
	}
	if _, err := rf.ReadAt(buf, 6); err != nil || string(buf) != "world" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(f.Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(f.Name()); !os.IsNotExist(err) {
		t.Fatal("Remove did not delete the file")
	}
	for op, want := range map[Op]int{
		OpCreate: 1, OpOpen: 1, OpRead: 1, OpReadAt: 1,
		OpWrite: 1, OpClose: 2, OpRemove: 1,
	} {
		if got := fs.Calls(op); got != want {
			t.Errorf("Calls(%s) = %d, want %d", op, got, want)
		}
	}
}

// TestNthCallInjection: exactly the armed ordinal fails, with the
// chosen error in the chain; earlier and later calls succeed.
func TestNthCallInjection(t *testing.T) {
	boom := errors.New("boom")
	fs := New(nil)
	fs.FailAt(OpCreate, 2, boom)
	dir := t.TempDir()
	if _, err := fs.CreateTemp(dir, "a-*"); err != nil {
		t.Fatalf("call 1 failed: %v", err)
	}
	if _, err := fs.CreateTemp(dir, "b-*"); !errors.Is(err, boom) {
		t.Fatalf("call 2 err = %v, want boom", err)
	}
	if _, err := fs.CreateTemp(dir, "c-*"); err != nil {
		t.Fatalf("call 3 failed: %v", err)
	}

	// Default error and re-arming (FailAt resets the op's counter).
	fs.FailAt(OpWrite, 1, nil)
	f, err := fs.CreateTemp(dir, "d-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after injection failed: %v", err)
	}

	// Reset disarms and zeroes.
	fs.FailAt(OpWrite, 1, nil)
	fs.Reset()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after Reset failed: %v", err)
	}
	if got := fs.Calls(OpWrite); got != 1 {
		t.Fatalf("Calls(write) after Reset = %d, want 1", got)
	}
}

// TestInjectedCloseStillReleasesHandle: a failed Close must close the
// real descriptor anyway, so tests cannot leak handles.
func TestInjectedCloseStillReleasesHandle(t *testing.T) {
	fs := New(nil)
	f, err := fs.CreateTemp(t.TempDir(), "x-*")
	if err != nil {
		t.Fatal(err)
	}
	fs.FailAt(OpClose, 1, nil)
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close err = %v, want ErrInjected", err)
	}
	// The underlying handle is gone: a second real close errors.
	if err := f.Close(); err == nil {
		t.Fatal("underlying file was not closed by the failing Close")
	}
	name := f.Name()
	if filepath.Dir(name) == "" {
		t.Fatal("Name lost through the wrapper")
	}
}
