// Package errfs is a fault-injection filesystem for the spill data
// path: a runfile.FS wrapper that fails the Nth call of a chosen
// operation with a chosen error, and counts every call either way.
//
// The external shuffle's failure surface is exactly the operations in
// runfile.FS plus the per-handle reads, writes and closes, so a test
// can march an injection point through a workload — fail the first
// create, the third read, the last write — and assert that spill,
// compaction and the reduce-time merge surface the error wrapped (not
// panicking, and never silently truncating a partition). Counting mode
// (no injection armed) doubles as a probe for how many calls a
// scenario performs, so tests can target "the read in the middle of
// the merge" without hard-coding fragile ordinals.
package errfs

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/runfile"
)

// Op names one injectable filesystem operation.
type Op string

const (
	OpCreate  Op = "create"  // FS.CreateTemp
	OpOpen    Op = "open"    // FS.Open
	OpRemove  Op = "remove"  // FS.Remove
	OpRead    Op = "read"    // File.Read
	OpReadAt  Op = "readat"  // File.ReadAt
	OpWrite   Op = "write"   // File.Write
	OpClose   Op = "close"   // File.Close
	OpMmap    Op = "mmap"    // Mapper.Mmap
	OpMadvise Op = "madvise" // Mapper.Madvise
	OpMunmap  Op = "munmap"  // Mapper.Munmap
)

// ErrInjected is the default injected failure.
var ErrInjected = errors.New("errfs: injected I/O failure")

// FS wraps a base runfile.FS, counting calls per operation and failing
// the armed ones. Safe for concurrent use, like the FS it wraps.
type FS struct {
	base runfile.FS

	mu     sync.Mutex
	calls  map[Op]int
	failAt map[Op]int // 1-based call ordinal that fails; 0 = disarmed
	errs   map[Op]error
}

// New wraps base (nil means runfile.OSFS) with no injections armed.
func New(base runfile.FS) *FS {
	if base == nil {
		base = runfile.OSFS
	}
	return &FS{
		base:   base,
		calls:  make(map[Op]int),
		failAt: make(map[Op]int),
		errs:   make(map[Op]error),
	}
}

// FailAt arms op to fail on its nth call from now (1 = the next call)
// with err (nil selects ErrInjected). Arming an op resets its counter,
// so ordinals are local to the phase under test. Only the armed call
// fails; later calls of the same op succeed again.
func (f *FS) FailAt(op Op, nth int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op] = 0
	f.failAt[op] = nth
	f.errs[op] = err
}

// Reset disarms every injection and zeroes all counters.
func (f *FS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = make(map[Op]int)
	f.failAt = make(map[Op]int)
	f.errs = make(map[Op]error)
}

// Calls reports how many times op has been invoked since the last
// Reset (or FailAt arming of that op).
func (f *FS) Calls(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// check counts one call of op and returns the injected error when this
// call is the armed ordinal.
func (f *FS) check(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	if n := f.failAt[op]; n > 0 && f.calls[op] == n {
		return fmt.Errorf("%s call %d: %w", op, n, f.errs[op])
	}
	return nil
}

// CreateTemp implements runfile.FS.
func (f *FS) CreateTemp(dir, pattern string) (runfile.File, error) {
	if err := f.check(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: file}, nil
}

// Open implements runfile.FS.
func (f *FS) Open(name string) (runfile.File, error) {
	if err := f.check(OpOpen); err != nil {
		return nil, err
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: file}, nil
}

// Remove implements runfile.FS.
func (f *FS) Remove(name string) error {
	if err := f.check(OpRemove); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// faultFile threads the handle-level operations through the wrapper's
// counters and injections.
type faultFile struct {
	fs *FS
	runfile.File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.check(OpRead); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(OpReadAt); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Close() error {
	if err := f.fs.check(OpClose); err != nil {
		f.File.Close() // release the real handle either way
		return err
	}
	return f.File.Close()
}

// The Mapper methods make faultFile an injectable runfile.Mapper. When
// the base file cannot map, the base error propagates (so the wrapper
// never claims more capability than the platform has); injections sit
// in front, modelling a kernel that refuses or revokes a mapping. An
// injected Mmap or Madvise failure must push the reader onto the
// pread fallback — the march in internal/shuffle asserts that.

func (f *faultFile) Mmap(length int64) ([]byte, error) {
	if err := f.fs.check(OpMmap); err != nil {
		return nil, err
	}
	m, ok := f.File.(runfile.Mapper)
	if !ok {
		return nil, runfile.ErrNoMmap
	}
	return m.Mmap(length)
}

func (f *faultFile) Madvise(data []byte) error {
	if err := f.fs.check(OpMadvise); err != nil {
		return err
	}
	m, ok := f.File.(runfile.Mapper)
	if !ok {
		return runfile.ErrNoMmap
	}
	return m.Madvise(data)
}

func (f *faultFile) Munmap(data []byte) error {
	if err := f.fs.check(OpMunmap); err != nil {
		// Release the real mapping either way: an injected unmap
		// failure models a reported error, not a leaked map.
		if m, ok := f.File.(runfile.Mapper); ok {
			m.Munmap(data)
		}
		return err
	}
	m, ok := f.File.(runfile.Mapper)
	if !ok {
		return runfile.ErrNoMmap
	}
	return m.Munmap(data)
}
