package hamming

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/mr"
)

func allStrings(b int) []uint64 {
	xs := make([]uint64, bitstr.Universe(b))
	for i := range xs {
		xs[i] = uint64(i)
	}
	return xs
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

func TestProblemCounts(t *testing.T) {
	p := NewProblem(8)
	if p.NumInputs() != 256 {
		t.Errorf("NumInputs = %d, want 256", p.NumInputs())
	}
	// |O| = (b/2)·2^b = 4·256 = 1024.
	if p.NumOutputs() != 1024 {
		t.Errorf("NumOutputs = %d, want 1024", p.NumOutputs())
	}
	count := 0
	p.ForEachOutput(func(inputs []int) bool {
		if bitstr.Distance(uint64(inputs[0]), uint64(inputs[1])) != 1 {
			t.Fatalf("output %v not at distance 1", inputs)
		}
		count++
		return true
	})
	if count != p.NumOutputs() {
		t.Errorf("enumerated %d outputs, want %d", count, p.NumOutputs())
	}
}

func TestDistanceProblemCounts(t *testing.T) {
	p := NewDistanceProblem(6, 2)
	// 2^5·(C(6,1)+C(6,2)) = 32·21 = 672.
	if p.NumOutputs() != 672 {
		t.Errorf("NumOutputs = %d, want 672", p.NumOutputs())
	}
	count := 0
	p.ForEachOutput(func(inputs []int) bool {
		d := bitstr.Distance(uint64(inputs[0]), uint64(inputs[1]))
		if d < 1 || d > 2 {
			t.Fatalf("output %v at distance %d", inputs, d)
		}
		count++
		return true
	})
	if count != 672 {
		t.Errorf("enumerated %d outputs, want 672", count)
	}
}

func TestForEachOutputEarlyStop(t *testing.T) {
	p := NewProblem(6)
	count := 0
	p.ForEachOutput(func([]int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d outputs, want 5", count)
	}
}

// TestLemma31BruteForce verifies Lemma 3.1 exhaustively on tiny instances:
// no q strings contain more than (q/2)·log₂q distance-1 pairs, and
// subcubes achieve the bound exactly at q = 2^k.
func TestLemma31BruteForce(t *testing.T) {
	for b := 2; b <= 4; b++ {
		maxQ := 8
		if bitstr.Universe(b) < maxQ {
			maxQ = bitstr.Universe(b)
		}
		for q := 1; q <= maxQ; q++ {
			got := MaxPairsBruteForce(b, q)
			bound := MaxCoverable(float64(q))
			if float64(got) > bound+1e-9 {
				t.Errorf("b=%d q=%d: %d pairs exceed Lemma 3.1 bound %.3f", b, q, got, bound)
			}
			// Subcubes meet the bound exactly when q is a power of two
			// that fits in the cube.
			if q&(q-1) == 0 {
				if float64(got) != bound {
					t.Errorf("b=%d q=%d: brute force %d, want exact bound %.0f", b, q, got, bound)
				}
			}
		}
	}
}

func TestTheorem32ExtremePoints(t *testing.T) {
	b := 12
	// q=2 ⇒ r ≥ b; q=2^b ⇒ r ≥ 1 (Section 3.3's two extremes).
	if got := LowerBound(b, 2); got != float64(b) {
		t.Errorf("LowerBound(q=2) = %v, want %d", got, b)
	}
	if got := LowerBound(b, math.Exp2(float64(b))); math.Abs(got-1) > 1e-12 {
		t.Errorf("LowerBound(q=2^b) = %v, want 1", got)
	}
	if !math.IsInf(LowerBound(b, 1), 1) {
		t.Error("LowerBound(q=1) should be +Inf")
	}
}

func TestRecipeMatchesClosedForm(t *testing.T) {
	b := 10
	rc := Recipe(b)
	for _, q := range []float64{2, 4, 32, 1024} {
		want := LowerBound(b, q)
		if got := rc.LowerBound(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("recipe LowerBound(%v) = %v, want %v", q, got, want)
		}
	}
	if !rc.GOverQMonotone(2, 1024, 100) {
		t.Error("g(q)/q must be monotone for the recipe to be valid")
	}
}

func TestSplittingSchemaValid(t *testing.T) {
	for _, c := range []int{1, 2, 3, 4} {
		s, err := NewSplittingSchema(12, c)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		p := NewProblem(12)
		if err := core.Validate(p, s, s.ReducerSize()); err != nil {
			t.Errorf("c=%d: schema invalid: %v", c, err)
		}
		st := core.Measure(p, s)
		if st.ReplicationRate != float64(c) {
			t.Errorf("c=%d: replication = %v, want exactly %d", c, st.ReplicationRate, c)
		}
		if st.MaxReducerLoad != s.ReducerSize() {
			t.Errorf("c=%d: max load = %d, want %d", c, st.MaxReducerLoad, s.ReducerSize())
		}
		// The schema matches the lower bound exactly: r = c = b/log₂(2^{b/c}).
		lb := LowerBound(12, float64(s.ReducerSize()))
		if math.Abs(st.ReplicationRate-lb) > 1e-9 {
			t.Errorf("c=%d: replication %v does not match lower bound %v", c, st.ReplicationRate, lb)
		}
	}
}

func TestSplittingSchemaRejectsBadC(t *testing.T) {
	if _, err := NewSplittingSchema(12, 5); err == nil {
		t.Error("c=5 does not divide b=12; want error")
	}
	if _, err := NewSplittingSchema(12, 0); err == nil {
		t.Error("c=0 must be rejected")
	}
}

func TestRunSplittingMatchesBruteForce(t *testing.T) {
	const b = 8
	inputs := allStrings(b)
	want := BruteForcePairs(inputs, 1)
	sortPairs(want)
	for _, c := range []int{1, 2, 4} {
		s, err := NewSplittingSchema(b, c)
		if err != nil {
			t.Fatal(err)
		}
		got, met, err := RunSplitting(s, inputs, mr.Config{})
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		sortPairs(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("c=%d: found %d pairs, want %d", c, len(got), len(want))
		}
		if r := met.ReplicationRate(); r != float64(c) {
			t.Errorf("c=%d: measured replication %v, want %d", c, r, c)
		}
		if met.MaxReducerInput != int64(s.ReducerSize()) {
			t.Errorf("c=%d: max reducer input %d, want %d", c, met.MaxReducerInput, s.ReducerSize())
		}
	}
}

func TestRunSplittingSparseInput(t *testing.T) {
	// A sparse subset of the universe: correctness must not depend on all
	// inputs being present (Section 2.3's independence property).
	const b = 12
	inputs := []uint64{0, 1, 3, 7, 0xF0, 0xF1, 0xFF, 0x800, 0x801, 0xABC}
	want := BruteForcePairs(inputs, 1)
	sortPairs(want)
	s, err := NewSplittingSchema(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunSplitting(s, inputs, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sparse: got %v, want %v", got, want)
	}
}

func TestWeightSchemaValidAndCoverage(t *testing.T) {
	for _, tc := range []struct{ b, k, d int }{
		{8, 1, 2}, {8, 2, 2}, {8, 4, 2}, {8, 1, 4}, {8, 2, 4}, {12, 2, 2}, {12, 3, 2},
	} {
		s, err := NewWeightSchema(tc.b, tc.k, tc.d)
		if err != nil {
			t.Fatalf("b=%d k=%d d=%d: %v", tc.b, tc.k, tc.d, err)
		}
		p := NewProblem(tc.b)
		if err := core.Validate(p, s, 0); err != nil {
			t.Errorf("b=%d k=%d d=%d: coverage fails: %v", tc.b, tc.k, tc.d, err)
		}
	}
}

func TestWeightSchemaReplicationNearPrediction(t *testing.T) {
	s, err := NewWeightSchema(16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := core.Measure(NewProblem(16), s)
	want := s.ExpectedReplication() // 1 + d/k = 2
	// The finite-b measured rate differs from the asymptotic 1+d/k because
	// border weights do not hold exactly 1/k of the strings; allow 25%.
	if math.Abs(st.ReplicationRate-want)/want > 0.25 {
		t.Errorf("replication = %v, want near %v", st.ReplicationRate, want)
	}
	if st.ReplicationRate <= 1 || st.ReplicationRate >= 3 {
		t.Errorf("replication = %v, want in (1, 3)", st.ReplicationRate)
	}
}

func TestWeightSchemaMaxCellNearPrediction(t *testing.T) {
	s, err := NewWeightSchema(16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := core.Measure(NewProblem(16), s)
	pred := s.PredictedMaxCell()
	ratio := float64(st.MaxReducerLoad) / pred
	// Stirling is asymptotic and the estimate excludes border replicas;
	// at b=16 expect agreement within 2x.
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("max cell = %d, Stirling prediction = %.0f (ratio %.2f)", st.MaxReducerLoad, pred, ratio)
	}
	// The paper's printed expression is low by about 2^d (slipped Stirling
	// constant): document the relationship rather than asserting equality.
	if s.PaperPredictedMaxCell() >= pred {
		t.Errorf("paper's estimate %.0f should be below corrected %.0f", s.PaperPredictedMaxCell(), pred)
	}
}

func TestWeightSchemaRejectsBadParams(t *testing.T) {
	if _, err := NewWeightSchema(8, 3, 2); err == nil {
		t.Error("k=3 does not divide 4; want error")
	}
	if _, err := NewWeightSchema(8, 1, 3); err == nil {
		t.Error("d=3 does not divide 8; want error")
	}
}

func TestRunWeightMatchesBruteForce(t *testing.T) {
	const b = 10
	inputs := allStrings(b)
	want := BruteForcePairs(inputs, 1)
	sortPairs(want)
	s, err := NewWeightSchema(b, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, met, err := RunWeight(s, inputs, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("found %d pairs, want %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("pair sets differ")
	}
	if met.ReplicationRate() >= 3.2 {
		t.Errorf("replication %v too high for k=1,d=2 (want ≈ 1+2/1 = 3)", met.ReplicationRate())
	}
}

func TestBallSchemaCoversDistanceTwo(t *testing.T) {
	const b = 6
	s := NewBallSchema(b)
	p := NewDistanceProblem(b, 2)
	if err := core.Validate(p, s, s.ReducerSize()); err != nil {
		t.Errorf("Ball-2 coverage fails: %v", err)
	}
	st := core.Measure(p, s)
	if st.ReplicationRate != float64(b+1) {
		t.Errorf("replication = %v, want b+1 = %d", st.ReplicationRate, b+1)
	}
	if st.MaxReducerLoad != b+1 {
		t.Errorf("max load = %d, want b+1 = %d", st.MaxReducerLoad, b+1)
	}
	// Coverage per reducer is Θ(q²): C(b,2) distance-2 outputs.
	if got := s.CoveredPerReducer(); got != bitstr.Binomial(b, 2) {
		t.Errorf("CoveredPerReducer = %v, want %v", got, bitstr.Binomial(b, 2))
	}
}

func TestRunBallMatchesBruteForce(t *testing.T) {
	const b = 7
	inputs := allStrings(b)
	want := BruteForcePairs(inputs, 2)
	sortPairs(want)
	got, met, err := RunBall(NewBallSchema(b), inputs, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("found %d pairs, want %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("pair sets differ")
	}
	if r := met.ReplicationRate(); r != float64(b+1) {
		t.Errorf("replication = %v, want %d", r, b+1)
	}
}

func TestRunBallSparse(t *testing.T) {
	const b = 10
	inputs := []uint64{0, 1, 2, 3, 5, 9, 17, 0x3FF, 0x3FE, 0x2FF}
	want := BruteForcePairs(inputs, 2)
	sortPairs(want)
	got, _, err := RunBall(NewBallSchema(b), inputs, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sparse Ball-2: got %d pairs, want %d", len(got), len(want))
	}
}

func TestSplittingDSchemaValid(t *testing.T) {
	for _, tc := range []struct{ b, c, d int }{
		{8, 4, 2}, {8, 4, 1}, {9, 3, 2}, {8, 2, 2},
	} {
		s, err := NewSplittingDSchema(tc.b, tc.c, tc.d)
		if err != nil {
			t.Fatalf("b=%d c=%d d=%d: %v", tc.b, tc.c, tc.d, err)
		}
		p := NewDistanceProblem(tc.b, tc.d)
		if err := core.Validate(p, s, s.ReducerSize()); err != nil {
			t.Errorf("b=%d c=%d d=%d: %v", tc.b, tc.c, tc.d, err)
		}
		st := core.Measure(p, s)
		wantR := bitstr.Binomial(tc.c, tc.d)
		if st.ReplicationRate != wantR {
			t.Errorf("b=%d c=%d d=%d: replication %v, want C(c,d) = %v", tc.b, tc.c, tc.d, st.ReplicationRate, wantR)
		}
	}
}

func TestSplittingDRejectsBadParams(t *testing.T) {
	if _, err := NewSplittingDSchema(8, 3, 1); err == nil {
		t.Error("c=3 does not divide 8; want error")
	}
	if _, err := NewSplittingDSchema(8, 4, 5); err == nil {
		t.Error("d > c must be rejected")
	}
	if _, err := NewSplittingDSchema(8, 4, 0); err == nil {
		t.Error("d=0 must be rejected")
	}
}

func TestRunSplittingDMatchesBruteForce(t *testing.T) {
	const b, c, d = 8, 4, 2
	inputs := allStrings(b)
	want := BruteForcePairs(inputs, d)
	sortPairs(want)
	s, err := NewSplittingDSchema(b, c, d)
	if err != nil {
		t.Fatal(err)
	}
	got, met, err := RunSplittingD(s, inputs, mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("found %d pairs, want %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("pair sets differ")
	}
	if r := met.ReplicationRate(); r != bitstr.Binomial(c, d) {
		t.Errorf("replication = %v, want C(%d,%d) = %v", r, c, d, bitstr.Binomial(c, d))
	}
}

func TestCanonicalDeletionMask(t *testing.T) {
	// diff in segment 2 only, c=4, d=2: canonical adds segment 0.
	if got := canonicalDeletionMask(0b0100, 4, 2); got != 0b0101 {
		t.Errorf("canonical(0100) = %04b, want 0101", got)
	}
	// diff already has d segments: unchanged.
	if got := canonicalDeletionMask(0b1010, 4, 2); got != 0b1010 {
		t.Errorf("canonical(1010) = %04b, want 1010", got)
	}
	// empty diff (identical strings): first d segments.
	if got := canonicalDeletionMask(0, 4, 2); got != 0b0011 {
		t.Errorf("canonical(0) = %04b, want 0011", got)
	}
}

// Property: every distance-1 pair is covered by exactly one Splitting
// reducer (the natural exactly-once property of the algorithm).
func TestPropertySplittingExactlyOnce(t *testing.T) {
	const b, c = 12, 3
	s, err := NewSplittingSchema(b, c)
	if err != nil {
		t.Fatal(err)
	}
	f := func(xRaw uint16, bitRaw uint8) bool {
		x := uint64(xRaw) & (1<<b - 1)
		y := bitstr.Flip(x, int(bitRaw)%b)
		shared := 0
		rx, ry := s.Assign(int(x)), s.Assign(int(y))
		for _, a := range rx {
			for _, bb := range ry {
				if a == bb {
					shared++
				}
			}
		}
		return shared == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the weight schema covers every distance-1 pair (randomized
// spot check at a larger b than Validate can afford).
func TestPropertyWeightCoversAtLargeB(t *testing.T) {
	const b = 20
	s, err := NewWeightSchema(b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(xRaw uint32, bitRaw uint8) bool {
		x := uint64(xRaw) & (1<<b - 1)
		y := bitstr.Flip(x, int(bitRaw)%b)
		rx, ry := s.Assign(int(x)), s.Assign(int(y))
		for _, a := range rx {
			for _, bb := range ry {
				if a == bb {
					return true
				}
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Ball-2 covers every distance-≤2 pair at larger b.
func TestPropertyBallCoversAtLargeB(t *testing.T) {
	const b = 16
	s := NewBallSchema(b)
	f := func(xRaw uint16, b1, b2 uint8) bool {
		x := uint64(xRaw)
		y := bitstr.Flip(bitstr.Flip(x, int(b1)%b), int(b2)%b)
		if x == y {
			return true // distance 0: not an output
		}
		rx, ry := s.Assign(int(x)), s.Assign(int(y))
		set := make(map[int]bool, len(rx))
		for _, a := range rx {
			set[a] = true
		}
		for _, bb := range ry {
			if set[bb] {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBruteForcePairsThreshold(t *testing.T) {
	inputs := []uint64{0b000, 0b001, 0b011, 0b111}
	d1 := BruteForcePairs(inputs, 1)
	if len(d1) != 3 {
		t.Errorf("d=1: %d pairs, want 3", len(d1))
	}
	d3 := BruteForcePairs(inputs, 3)
	if len(d3) != 6 {
		t.Errorf("d=3: %d pairs, want all 6", len(d3))
	}
	for _, p := range d3 {
		if p.X >= p.Y {
			t.Errorf("pair %v not normalized", p)
		}
	}
}

// TestFootnote4CellBalancing reproduces footnote 4 of the paper: the
// weight-partition cells have wildly uneven populations, and combining
// small cells at one compute node equalizes the work. LPT balancing over
// the measured cell loads must bring the per-worker makespan close to the
// ideal total/workers, far below the raw largest-cell load times spread.
func TestFootnote4CellBalancing(t *testing.T) {
	s, err := NewWeightSchema(16, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := core.Measure(NewProblem(16), s)
	workers := 4
	_, makespan := core.BalanceLoads(st.Loads, workers)
	ideal := core.IdealMakespan(st.Loads, workers)
	if makespan > ideal*5/4 {
		t.Errorf("balanced makespan %d exceeds 1.25x ideal %d", makespan, ideal)
	}
	// Sanity: cells really are uneven — the largest holds far more than
	// the mean (the binomial concentration of Section 3.4).
	mean := st.TotalAssigned / st.NumReducers
	if st.MaxReducerLoad < 4*mean {
		t.Errorf("expected heavy skew across cells: max %d vs mean %d", st.MaxReducerLoad, mean)
	}
}

func TestPairSchemaQ2Extreme(t *testing.T) {
	// The q=2 endpoint of Figure 1: one reducer per pair, r = b exactly.
	for _, b := range []int{3, 6, 8} {
		s := NewPairSchema(b)
		p := NewProblem(b)
		if s.NumReducers() != p.NumOutputs() {
			t.Errorf("b=%d: reducers %d, want one per output %d", b, s.NumReducers(), p.NumOutputs())
		}
		if err := core.Validate(p, s, 2); err != nil {
			t.Errorf("b=%d: invalid at q=2: %v", b, err)
		}
		st := core.Measure(p, s)
		if st.ReplicationRate != float64(b) {
			t.Errorf("b=%d: r = %v, want exactly b", b, st.ReplicationRate)
		}
		if st.MaxReducerLoad != 2 {
			t.Errorf("b=%d: max load = %d, want 2", b, st.MaxReducerLoad)
		}
		// Matches the Theorem 3.2 bound b/log2(2) = b exactly.
		if lb := LowerBound(b, 2); st.ReplicationRate != lb {
			t.Errorf("b=%d: r = %v does not sit on the bound %v", b, st.ReplicationRate, lb)
		}
	}
}
