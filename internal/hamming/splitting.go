package hamming

import (
	"fmt"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/mr"
)

// SplittingSchema is the Splitting algorithm of Section 3.3 (after [3]):
// each string of length b is split into c equal segments; for each segment
// index g there is one group of reducers, keyed by the string with segment
// g removed. Every input is sent to exactly c reducers, so the replication
// rate is exactly c, matching the lower bound b/log₂q at q = 2^{b/c}
// (ignoring the negligible chance a reducer receives every string sharing
// its key — reducer size is exactly 2^{b/c}).
type SplittingSchema struct {
	B, C int
}

// NewSplittingSchema returns the schema for strings of length b split into
// c segments. c must divide b.
func NewSplittingSchema(b, c int) (SplittingSchema, error) {
	if c < 1 || b%c != 0 {
		return SplittingSchema{}, fmt.Errorf("hamming: c=%d must divide b=%d", c, b)
	}
	return SplittingSchema{B: b, C: c}, nil
}

// ReducerSize is the number of inputs each reducer receives: 2^{b/c}
// strings share each "segment removed" key.
func (s SplittingSchema) ReducerSize() int {
	return bitstr.Universe(s.B / s.C)
}

// NumReducers implements core.MappingSchema: c groups of 2^{b-b/c} keys.
func (s SplittingSchema) NumReducers() int {
	return s.C * bitstr.Universe(s.B-s.B/s.C)
}

// Assign implements core.MappingSchema: input x goes to the group-g reducer
// keyed by x with segment g removed, for every g.
func (s SplittingSchema) Assign(in int) []int {
	x := uint64(in)
	perGroup := bitstr.Universe(s.B - s.B/s.C)
	rs := make([]int, s.C)
	for g := 0; g < s.C; g++ {
		key := bitstr.RemoveSegment(x, g, s.C, s.B)
		rs[g] = g*perGroup + int(key)
	}
	return rs
}

var _ core.MappingSchema = SplittingSchema{}

// splitKey identifies one Splitting reducer: the group (removed segment)
// and the remaining bits.
type splitKey struct {
	Group int
	Rest  uint64
}

// RunSplitting executes the Splitting algorithm as a real MapReduce job
// over the given input strings, returning the distance-1 pairs found, the
// round metrics, and an error if the job fails. Each qualifying pair is
// produced exactly once: a pair at distance 1 differs in exactly one
// segment, so exactly one reducer group co-locates it.
func RunSplitting(s SplittingSchema, inputs []uint64, cfg mr.Config) ([]Pair, mr.Metrics, error) {
	job := &mr.Job[uint64, splitKey, uint64, Pair]{
		Name: fmt.Sprintf("hamming-splitting(b=%d,c=%d)", s.B, s.C),
		Map: func(x uint64, emit func(splitKey, uint64)) {
			for g := 0; g < s.C; g++ {
				emit(splitKey{g, bitstr.RemoveSegment(x, g, s.C, s.B)}, x)
			}
		},
		Reduce: func(_ splitKey, xs []uint64, emit func(Pair)) {
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			for i := 0; i < len(xs); i++ {
				for j := i + 1; j < len(xs); j++ {
					if bitstr.Distance(xs[i], xs[j]) == 1 {
						emit(Pair{xs[i], xs[j]})
					}
				}
			}
		},
		Config: cfg,
	}
	return job.Run(inputs)
}

// PairSchema is the q = 2 extreme of Section 3.3: one reducer per
// distance-1 pair, so every input string is sent to exactly the b
// reducers of the b pairs it belongs to — replication rate exactly b,
// matching the lower bound b/log₂2 = b. It is the maximum-parallelism
// endpoint of Figure 1.
type PairSchema struct {
	B int
}

// NewPairSchema returns the q = 2 schema for strings of length b.
func NewPairSchema(b int) PairSchema { return PairSchema{B: b} }

// NumReducers implements core.MappingSchema: one per output,
// (b/2)·2^b pairs.
func (s PairSchema) NumReducers() int {
	return s.B * bitstr.Universe(s.B) / 2
}

// pairIndex ranks the pair {x, x^(1<<i)}: pairs are enumerated as (y, i)
// where y has bit i clear.
func (s PairSchema) pairIndex(x uint64, bit int) int {
	y := x &^ (1 << uint(bit)) // the endpoint with bit clear
	// Rank of y among strings with bit `bit` clear: drop the bit.
	rank := int(bitstr.RemoveSegments(y, 1<<uint(bit), s.B, s.B))
	return bit*bitstr.Universe(s.B-1) + rank
}

// Assign implements core.MappingSchema: x joins the b reducers of the b
// pairs containing it.
func (s PairSchema) Assign(in int) []int {
	x := uint64(in)
	rs := make([]int, s.B)
	for i := 0; i < s.B; i++ {
		rs[i] = s.pairIndex(x, i)
	}
	return rs
}

var _ core.MappingSchema = PairSchema{}

// SplittingDSchema is the generalized Splitting algorithm for Hamming
// distance up to d (Section 3.6): split each string into c segments, and
// use one reducer group for every d-subset of segments to delete. An input
// is sent to C(c,d) reducers, so r = C(c,d) ≈ (ec/d)^d / √(2πd); any two
// strings at distance ≤ d differ in at most d segments and therefore share
// the reducer that deletes a superset of those segments.
type SplittingDSchema struct {
	B, C, D int
	masks   []uint64 // the C(c,d) deletion masks, in increasing order
}

// NewSplittingDSchema builds the distance-d schema; c must divide b and
// 1 ≤ d ≤ c.
func NewSplittingDSchema(b, c, d int) (*SplittingDSchema, error) {
	if c < 1 || b%c != 0 {
		return nil, fmt.Errorf("hamming: c=%d must divide b=%d", c, b)
	}
	if d < 1 || d > c {
		return nil, fmt.Errorf("hamming: need 1 <= d=%d <= c=%d", d, c)
	}
	s := &SplittingDSchema{B: b, C: c, D: d}
	bitstr.ChooseSets(c, d, func(m uint64) { s.masks = append(s.masks, m) })
	return s, nil
}

// Replication is the exact replication rate C(c,d).
func (s *SplittingDSchema) Replication() int { return len(s.masks) }

// ReducerSize is the number of strings sharing one key: 2^{d·b/c}.
func (s *SplittingDSchema) ReducerSize() int {
	return bitstr.Universe(s.D * s.B / s.C)
}

// NumReducers implements core.MappingSchema.
func (s *SplittingDSchema) NumReducers() int {
	return len(s.masks) * bitstr.Universe(s.B-s.D*s.B/s.C)
}

// Assign implements core.MappingSchema.
func (s *SplittingDSchema) Assign(in int) []int {
	x := uint64(in)
	perGroup := bitstr.Universe(s.B - s.D*s.B/s.C)
	rs := make([]int, len(s.masks))
	for gi, m := range s.masks {
		key := bitstr.RemoveSegments(x, m, s.C, s.B)
		rs[gi] = gi*perGroup + int(key)
	}
	return rs
}

var _ core.MappingSchema = (*SplittingDSchema)(nil)

// differingSegments returns the bitmask of segments in which x and y
// differ.
func differingSegments(x, y uint64, c, b int) uint64 {
	var mask uint64
	for g := 0; g < c; g++ {
		if bitstr.Segment(x, g, c, b) != bitstr.Segment(y, g, c, b) {
			mask |= 1 << uint(g)
		}
	}
	return mask
}

// canonicalDeletionMask returns the lexicographically smallest d-subset of
// the c segments (as a bitmask, smallest numeric value) that contains
// diff. It defines the unique reducer allowed to produce a pair, giving
// the generalized Splitting algorithm exactly-once output semantics.
func canonicalDeletionMask(diff uint64, c, d int) uint64 {
	mask := diff
	need := d - popcount(diff)
	for g := 0; g < c && need > 0; g++ {
		bit := uint64(1) << uint(g)
		if mask&bit == 0 {
			mask |= bit
			need--
		}
	}
	return mask
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

type splitDKey struct {
	Mask uint64
	Rest uint64
}

// RunSplittingD executes the generalized Splitting algorithm for distance
// up to s.D as a MapReduce job, producing each qualifying pair exactly
// once via the canonical-deletion-mask rule.
func RunSplittingD(s *SplittingDSchema, inputs []uint64, cfg mr.Config) ([]Pair, mr.Metrics, error) {
	job := &mr.Job[uint64, splitDKey, uint64, Pair]{
		Name: fmt.Sprintf("hamming-splitting-d(b=%d,c=%d,d=%d)", s.B, s.C, s.D),
		Map: func(x uint64, emit func(splitDKey, uint64)) {
			for _, m := range s.masks {
				emit(splitDKey{m, bitstr.RemoveSegments(x, m, s.C, s.B)}, x)
			}
		},
		Reduce: func(k splitDKey, xs []uint64, emit func(Pair)) {
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			for i := 0; i < len(xs); i++ {
				for j := i + 1; j < len(xs); j++ {
					x, y := xs[i], xs[j]
					dist := bitstr.Distance(x, y)
					if dist < 1 || dist > s.D {
						continue
					}
					diff := differingSegments(x, y, s.C, s.B)
					if canonicalDeletionMask(diff, s.C, s.D) == k.Mask {
						emit(Pair{x, y})
					}
				}
			}
		},
		Config: cfg,
	}
	return job.Run(inputs)
}
