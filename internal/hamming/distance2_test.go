package hamming

import (
	"testing"

	"repro/internal/bitstr"
)

// TestDistance2CoverageIsQuadratic is the Section 3.6 observation made
// empirical: for distance 2 the maximum number of outputs q inputs can
// cover grows like q² at small q — far above the (q/2)log₂q available at
// distance 1 — so the Hamming-1 lower-bound recipe cannot give a useful
// bound for d = 2.
func TestDistance2CoverageIsQuadratic(t *testing.T) {
	const b = 4
	for q := 2; q <= 6; q++ {
		g2 := MaxPairsBruteForceD(b, q, 2)
		g1 := MaxCoverable(float64(q))
		// At distance 2 the extremal sets do substantially better than
		// the distance-1 bound from q = 3 on.
		if q >= 3 && float64(g2) <= g1 {
			t.Errorf("q=%d: g₂ = %d should exceed the distance-1 bound %.2f", q, g2, g1)
		}
		// And the quadratic envelope holds: no q strings contain more
		// than C(q,2) pairs in total.
		if max := q * (q - 1) / 2; g2 > max {
			t.Errorf("q=%d: g₂ = %d exceeds C(q,2) = %d", q, g2, max)
		}
	}
}

// TestBallWitnessIsNearExtremal: the Ball-2 reducer (a center and its b
// neighbors) achieves every possible pair within distance 2 — the witness
// the paper uses for the Ω(q²) claim.
func TestBallWitnessIsNearExtremal(t *testing.T) {
	const b = 4
	q := b + 1
	// The ball's pair count: center-to-neighbor b pairs at distance 1
	// plus C(b,2) neighbor pairs at distance 2 = C(q,2) — every pair.
	wantPairs := q * (q - 1) / 2
	var members []uint64
	members = append(members, 0)
	bitstr.Neighbors(0, b, func(y uint64) { members = append(members, y) })
	pairs := 0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if d := bitstr.Distance(members[i], members[j]); d >= 1 && d <= 2 {
				pairs++
			}
		}
	}
	if pairs != wantPairs {
		t.Errorf("ball contains %d pairs, want all C(q,2) = %d", pairs, wantPairs)
	}
	// Therefore the brute-force maximum at q = b+1 is exactly C(q,2).
	if got := MaxPairsBruteForceD(b, q, 2); got != wantPairs {
		t.Errorf("g₂(b+1) = %d, want %d", got, wantPairs)
	}
}
