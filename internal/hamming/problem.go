// Package hamming implements Section 3 of the paper: the
// Hamming-distance-1 problem, its exact lower bound r ≥ b/log₂q, and every
// matching or near-matching algorithm the paper describes — the Splitting
// algorithm (Section 3.3), the weight-partition algorithm for large q
// (Section 3.4) and its d-dimensional generalization (Section 3.5), and
// the distance-d algorithms Ball-2 and generalized Splitting (Section 3.6).
//
// Inputs are the 2^b bit strings of length b; outputs are pairs of strings
// at Hamming distance exactly 1 (or at most d for the distance-d problem).
package hamming

import (
	"fmt"
	"math"

	"repro/internal/bitstr"
	"repro/internal/core"
)

// Problem is the Hamming-distance problem over all strings of length B:
// outputs are pairs of strings at distance at least 1 and at most D. For
// D = 1 this is exactly the paper's Hamming-distance-1 problem, with
// |I| = 2^b and |O| = (b/2)·2^b.
type Problem struct {
	B int // string length in bits
	D int // distance threshold (outputs are pairs with 1 ≤ distance ≤ D)
}

// NewProblem returns the Hamming-distance-1 problem for strings of length b.
func NewProblem(b int) Problem { return Problem{B: b, D: 1} }

// NewDistanceProblem returns the distance-≤d problem for strings of
// length b.
func NewDistanceProblem(b, d int) Problem { return Problem{B: b, D: d} }

// Name implements core.Problem.
func (p Problem) Name() string {
	return fmt.Sprintf("hamming(b=%d,d=%d)", p.B, p.D)
}

// NumInputs implements core.Problem: 2^b strings.
func (p Problem) NumInputs() int { return bitstr.Universe(p.B) }

// NumOutputs implements core.Problem. The number of unordered pairs at
// distance exactly e is 2^b · C(b,e) / 2, so the total for 1 ≤ e ≤ D is
// 2^(b-1) · Σ C(b,e). For D = 1 this is (b/2)·2^b, matching Table 1.
func (p Problem) NumOutputs() int {
	total := 0.0
	for e := 1; e <= p.D; e++ {
		total += bitstr.Binomial(p.B, e)
	}
	return int(total) * bitstr.Universe(p.B) / 2
}

// ForEachOutput implements core.Problem: each output's inputs are the two
// string values themselves (a string x is input index x).
func (p Problem) ForEachOutput(fn func(inputs []int) bool) {
	buf := make([]int, 2)
	n := uint64(bitstr.Universe(p.B))
	for e := 1; e <= p.D; e++ {
		stop := false
		bitstr.ChooseSets(p.B, e, func(diff uint64) {
			if stop {
				return
			}
			for x := uint64(0); x < n; x++ {
				y := x ^ diff
				if x >= y {
					continue // count each pair once
				}
				buf[0], buf[1] = int(x), int(y)
				if !fn(buf) {
					stop = true
					return
				}
			}
		})
		if stop {
			return
		}
	}
}

// Recipe returns the Section 2.4 lower-bound recipe for the distance-1
// problem: g(q) = (q/2)·log₂q (Lemma 3.1), |I| = 2^b, |O| = (b/2)·2^b,
// which yields r ≥ b/log₂q (Theorem 3.2).
func Recipe(b int) core.Recipe {
	return core.Recipe{
		ProblemName: fmt.Sprintf("hamming-1(b=%d)", b),
		G: func(q float64) float64 {
			if q <= 1 {
				return 0
			}
			return q / 2 * math.Log2(q)
		},
		NumInputs:  math.Exp2(float64(b)),
		NumOutputs: float64(b) / 2 * math.Exp2(float64(b)),
	}
}

// LowerBound is the closed-form Theorem 3.2 bound r ≥ b / log₂q.
func LowerBound(b int, q float64) float64 {
	if q <= 1 {
		return math.Inf(1)
	}
	return float64(b) / math.Log2(q)
}

// MaxCoverable returns Lemma 3.1's bound (q/2)·log₂q on the number of
// distance-1 pairs any q strings can contain.
func MaxCoverable(q float64) float64 {
	if q <= 1 {
		return 0
	}
	return q / 2 * math.Log2(q)
}

// MaxPairsBruteForce computes, by exhaustive search over all q-subsets of
// the 2^b strings, the true maximum number of distance-1 pairs within a set
// of q strings. It is exponential and intended only for verifying
// Lemma 3.1 on tiny instances (b ≤ 4, q ≤ 8).
func MaxPairsBruteForce(b, q int) int {
	n := bitstr.Universe(b)
	best := 0
	bitstr.ChooseSets(n, q, func(mask uint64) {
		var members []uint64
		for x := 0; x < n; x++ {
			if mask&(1<<uint(x)) != 0 {
				members = append(members, uint64(x))
			}
		}
		pairs := 0
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if bitstr.Distance(members[i], members[j]) == 1 {
					pairs++
				}
			}
		}
		if pairs > best {
			best = pairs
		}
	})
	return best
}

// MaxPairsBruteForceD generalizes MaxPairsBruteForce to Hamming distance
// at most d: the true maximum number of distance-≤d pairs within any q
// strings of length b. Section 3.6 observes that for d = 2 this quantity
// is Ω(q²) at small q (witnessed by the Ball-2 reducer: a center plus its
// b neighbors contain C(b,2)+b pairs within distance 2), which is what
// blocks the distance-1 lower-bound technique. Exponential; tiny b and q
// only.
func MaxPairsBruteForceD(b, q, d int) int {
	n := bitstr.Universe(b)
	best := 0
	bitstr.ChooseSets(n, q, func(mask uint64) {
		var members []uint64
		for x := 0; x < n; x++ {
			if mask&(1<<uint(x)) != 0 {
				members = append(members, uint64(x))
			}
		}
		pairs := 0
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if dist := bitstr.Distance(members[i], members[j]); dist >= 1 && dist <= d {
					pairs++
				}
			}
		}
		if pairs > best {
			best = pairs
		}
	})
	return best
}

// BruteForcePairs returns all unordered pairs (x, y) from inputs with
// 1 ≤ Distance(x,y) ≤ d, as the serial baseline for the join algorithms.
func BruteForcePairs(inputs []uint64, d int) []Pair {
	var out []Pair
	for i := 0; i < len(inputs); i++ {
		for j := i + 1; j < len(inputs); j++ {
			dist := bitstr.Distance(inputs[i], inputs[j])
			if dist >= 1 && dist <= d {
				x, y := inputs[i], inputs[j]
				if x > y {
					x, y = y, x
				}
				out = append(out, Pair{x, y})
			}
		}
	}
	return out
}

// Pair is an unordered output pair with X < Y.
type Pair struct{ X, Y uint64 }
