package hamming

import (
	"fmt"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/mr"
)

// BallSchema is the "Ball-2" algorithm of Section 3.6 (after [3]): one
// reducer for every string s of length b, assigned all strings at distance
// at most 1 from s. Every pair at distance ≤ 2 is covered: for a
// distance-2 pair the two midpoint strings both work, and for a distance-1
// pair either endpoint's reducer works. Each reducer has q = b+1 inputs and
// covers about C(b,2) = Θ(q²) distance-2 outputs — the coverage that blocks
// the distance-1 style lower-bound argument for distance 2.
type BallSchema struct {
	B int
}

// NewBallSchema returns the Ball-2 schema for strings of length b.
func NewBallSchema(b int) BallSchema { return BallSchema{B: b} }

// ReducerSize is b+1: the center plus its b neighbors.
func (s BallSchema) ReducerSize() int { return s.B + 1 }

// NumReducers implements core.MappingSchema: one per string.
func (s BallSchema) NumReducers() int { return bitstr.Universe(s.B) }

// Assign implements core.MappingSchema: x is sent to its own reducer and
// to the reducer of each of its b neighbors, so r = b+1 exactly.
func (s BallSchema) Assign(in int) []int {
	x := uint64(in)
	rs := make([]int, 0, s.B+1)
	rs = append(rs, int(x))
	bitstr.Neighbors(x, s.B, func(y uint64) { rs = append(rs, int(y)) })
	return rs
}

var _ core.MappingSchema = BallSchema{}

// CoveredPerReducer is the number of distance-2 outputs one Ball-2 reducer
// covers: all C(b,2) pairs of distinct neighbors of the center are at
// distance 2 from each other.
func (s BallSchema) CoveredPerReducer() float64 {
	return bitstr.Binomial(s.B, 2)
}

// canonicalBallCenter returns the unique reducer (center string) allowed
// to produce the pair {x, y}: for a distance-1 pair the smaller endpoint,
// for a distance-2 pair the smaller of the two midpoints.
func canonicalBallCenter(x, y uint64) uint64 {
	switch bitstr.Distance(x, y) {
	case 1:
		if x < y {
			return x
		}
		return y
	case 2:
		diff := x ^ y
		i := trailingOne(diff)
		j := trailingOne(diff &^ (1 << uint(i)))
		m1 := x ^ (1 << uint(i))
		m2 := x ^ (1 << uint(j))
		if m1 < m2 {
			return m1
		}
		return m2
	default:
		return ^uint64(0)
	}
}

func trailingOne(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// RunBall executes Ball-2 as a MapReduce job over the given strings,
// producing each pair at distance 1 or 2 exactly once.
func RunBall(s BallSchema, inputs []uint64, cfg mr.Config) ([]Pair, mr.Metrics, error) {
	job := &mr.Job[uint64, uint64, uint64, Pair]{
		Name: fmt.Sprintf("hamming-ball2(b=%d)", s.B),
		Map: func(x uint64, emit func(uint64, uint64)) {
			emit(x, x)
			bitstr.Neighbors(x, s.B, func(y uint64) { emit(y, x) })
		},
		Reduce: func(center uint64, xs []uint64, emit func(Pair)) {
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			for i := 0; i < len(xs); i++ {
				for j := i + 1; j < len(xs); j++ {
					x, y := xs[i], xs[j]
					d := bitstr.Distance(x, y)
					if d < 1 || d > 2 {
						continue
					}
					if canonicalBallCenter(x, y) == center {
						emit(Pair{x, y})
					}
				}
			}
		},
		Config: cfg,
	}
	return job.Run(inputs)
}
