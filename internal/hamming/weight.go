package hamming

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/mr"
)

// WeightSchema is the weight-partition algorithm of Sections 3.4 (d = 2)
// and 3.5 (general d) for reducer sizes q close to 2^b. Each string of
// length b is cut into d pieces of length b/d; a cell of the d-dimensional
// grid is the tuple of weight groups of the pieces, where weights
// 0..b/d are partitioned into groups of k consecutive weights (the last
// group also absorbing the weight b/d). A string is assigned to its own
// cell, and additionally replicated to the neighboring lower cell in every
// dimension where its piece weight sits on the lower border of its group,
// so that flipping a 1-bit (which lowers one piece weight by 1) still
// lands in a shared cell. The replication rate is 1 + d/k on average.
type WeightSchema struct {
	B, K, D   int
	pieceLen  int
	numGroups int
}

// NewWeightSchema builds the schema; d must divide b and k must divide b/d.
func NewWeightSchema(b, k, d int) (*WeightSchema, error) {
	if d < 1 || b%d != 0 {
		return nil, fmt.Errorf("hamming: d=%d must divide b=%d", d, b)
	}
	pieceLen := b / d
	if k < 1 || pieceLen%k != 0 {
		return nil, fmt.Errorf("hamming: k=%d must divide piece length %d", k, pieceLen)
	}
	return &WeightSchema{B: b, K: k, D: d, pieceLen: pieceLen, numGroups: pieceLen / k}, nil
}

// group maps a piece weight to its weight-group index. Groups are
// [0,k-1], [k,2k-1], ..., with the final group absorbing the extra weight
// b/d, exactly as in the paper.
func (s *WeightSchema) group(w int) int {
	g := w / s.K
	if g >= s.numGroups {
		g = s.numGroups - 1
	}
	return g
}

// onLowerBorder reports whether piece weight w is the lowest weight of its
// group (and the group is not the bottom one), which forces replication to
// the neighboring lower cell.
func (s *WeightSchema) onLowerBorder(w int) bool {
	g := s.group(w)
	return g > 0 && w == g*s.K
}

// cellID packs a tuple of group indices into a single reducer index.
func (s *WeightSchema) cellID(groups []int) int {
	id := 0
	for _, g := range groups {
		id = id*s.numGroups + g
	}
	return id
}

// NumReducers implements core.MappingSchema: (pieceLen/k)^d cells.
func (s *WeightSchema) NumReducers() int {
	n := 1
	for i := 0; i < s.D; i++ {
		n *= s.numGroups
	}
	return n
}

// Assign implements core.MappingSchema: the primary cell plus one replica
// per lower-border dimension.
func (s *WeightSchema) Assign(in int) []int {
	ws := bitstr.PieceWeights(uint64(in), s.D, s.B)
	groups := make([]int, s.D)
	for i, w := range ws {
		groups[i] = s.group(w)
	}
	rs := []int{s.cellID(groups)}
	for i, w := range ws {
		if s.onLowerBorder(w) {
			groups[i]--
			rs = append(rs, s.cellID(groups))
			groups[i]++
		}
	}
	return rs
}

var _ core.MappingSchema = (*WeightSchema)(nil)

// ExpectedReplication is the paper's asymptotic replication rate 1 + d/k.
func (s *WeightSchema) ExpectedReplication() float64 {
	return 1 + float64(s.D)/float64(s.K)
}

// PredictedMaxCell estimates the most populous cell as
// (k · C(b/d, b/2d))^d ≈ k^d · 2^b · (2d/(πb))^{d/2} strings, using the
// correct central-binomial asymptotic C(n, n/2) ≈ 2^n·√(2/(πn)). The
// paper's Section 3.4 expression k²·2^b/(πb) uses 2^n/√(2πn) instead,
// which drops a factor of 2 per dimension; see PaperPredictedMaxCell and
// EXPERIMENTS.md. Border replicas add a further (1 + 1/k)^d factor not
// included in either estimate.
func (s *WeightSchema) PredictedMaxCell() float64 {
	b, d, k := float64(s.B), float64(s.D), float64(s.K)
	return math.Pow(k, d) * math.Exp2(b) * math.Pow(2*d/(math.Pi*b), d/2)
}

// PaperPredictedMaxCell is the estimate exactly as printed in Sections 3.4
// and 3.5 of the paper: k^d · 2^b / (b^{d/2} (2π/d)^{d/2}); for d = 2 this
// is k²·2^b/(πb). It understates the true maximum by a factor of about 2^d
// because of a slipped Stirling constant.
func (s *WeightSchema) PaperPredictedMaxCell() float64 {
	b, d, k := float64(s.B), float64(s.D), float64(s.K)
	return math.Pow(k, d) * math.Exp2(b) / (math.Pow(b, d/2) * math.Pow(2*math.Pi/d, d/2))
}

// RunWeight executes the weight-partition algorithm as a MapReduce job over
// the given strings, returning distance-1 pairs exactly once. The
// exactly-once rule: a pair {x, y} with y = x plus one extra 1-bit is
// produced only by the primary cell of x (the lower-weight string); the
// coverage argument of Section 3.4 guarantees y is present in that cell,
// either natively or as a border replica.
func RunWeight(s *WeightSchema, inputs []uint64, cfg mr.Config) ([]Pair, mr.Metrics, error) {
	primary := func(x uint64) int {
		ws := bitstr.PieceWeights(x, s.D, s.B)
		groups := make([]int, s.D)
		for i, w := range ws {
			groups[i] = s.group(w)
		}
		return s.cellID(groups)
	}
	job := &mr.Job[uint64, int, uint64, Pair]{
		Name: fmt.Sprintf("hamming-weight(b=%d,k=%d,d=%d)", s.B, s.K, s.D),
		Map: func(x uint64, emit func(int, uint64)) {
			for _, cell := range s.Assign(int(x)) {
				emit(cell, x)
			}
		},
		Reduce: func(cell int, xs []uint64, emit func(Pair)) {
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			for i := 0; i < len(xs); i++ {
				for j := i + 1; j < len(xs); j++ {
					x, y := xs[i], xs[j]
					if bitstr.Distance(x, y) != 1 {
						continue
					}
					lower := x
					if bitstr.Weight(y) < bitstr.Weight(x) {
						lower = y
					}
					if primary(lower) == cell {
						emit(Pair{x, y})
					}
				}
			}
		},
		Config: cfg,
	}
	return job.Run(inputs)
}
