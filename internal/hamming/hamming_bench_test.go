package hamming

import (
	"fmt"
	"testing"

	"repro/internal/mr"
)

// BenchmarkSplitting measures the Section 3.3 algorithm across the
// replication/parallelism knob c.
func BenchmarkSplitting(b *testing.B) {
	inputs := allStrings(12)
	for _, c := range []int{1, 2, 3, 4, 6} {
		s, err := NewSplittingSchema(12, c)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := RunSplitting(s, inputs, mr.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBruteForce is the serial all-pairs baseline the distributed
// algorithms are compared against.
func BenchmarkBruteForce(b *testing.B) {
	inputs := allStrings(10)
	for i := 0; i < b.N; i++ {
		_ = BruteForcePairs(inputs, 1)
	}
}

// BenchmarkBall2 measures the distance-2 ball algorithm.
func BenchmarkBall2(b *testing.B) {
	inputs := allStrings(10)
	s := NewBallSchema(10)
	for i := 0; i < b.N; i++ {
		if _, _, err := RunBall(s, inputs, mr.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightRun measures the large-q weight-partition join.
func BenchmarkWeightRun(b *testing.B) {
	inputs := allStrings(12)
	s, err := NewWeightSchema(12, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := RunWeight(s, inputs, mr.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemaMeasure isolates the structural model cost (assignment
// enumeration without the engine).
func BenchmarkSchemaMeasure(b *testing.B) {
	s, err := NewSplittingSchema(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	p := NewProblem(16)
	for i := 0; i < b.N; i++ {
		for in := 0; in < p.NumInputs(); in++ {
			_ = s.Assign(in)
		}
	}
}
