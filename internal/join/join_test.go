package join

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mr"
	"repro/internal/relation"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestHypergraphFromChain(t *testing.T) {
	rels := relation.FullChain(3, 2)
	h := FromQuery(rels)
	if h.NumVars() != 4 {
		t.Errorf("vars = %d, want 4", h.NumVars())
	}
	if len(h.Edges) != 3 {
		t.Errorf("edges = %d, want 3", len(h.Edges))
	}
	// Edge i covers vars {i, i+1}.
	for i, e := range h.Edges {
		if len(e.Vars) != 2 || e.Vars[0] != i || e.Vars[1] != i+1 {
			t.Errorf("edge %d vars = %v, want [%d %d]", i, e.Vars, i, i+1)
		}
	}
}

func TestFractionalEdgeCoverChains(t *testing.T) {
	// Chains of N binary relations have ρ = ⌈(N+1)/2⌉.
	for _, tc := range []struct {
		n    int
		want float64
	}{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {6, 4}} {
		rels := relation.FullChain(tc.n, 2)
		rho, weights, err := FromQuery(rels).FractionalEdgeCover()
		if err != nil {
			t.Fatalf("N=%d: %v", tc.n, err)
		}
		if !approx(rho, tc.want) {
			t.Errorf("N=%d: ρ = %v, want %v", tc.n, rho, tc.want)
		}
		if len(weights) != tc.n {
			t.Errorf("N=%d: %d weights, want %d", tc.n, len(weights), tc.n)
		}
	}
}

func TestFractionalEdgeCoverTriangleQuery(t *testing.T) {
	// R(A,B) ⋈ S(B,C) ⋈ T(C,A): the triangle, ρ = 3/2.
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	u := relation.New("T", "C", "A")
	rho, _, err := FromQuery([]*relation.Relation{r, s, u}).FractionalEdgeCover()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rho, 1.5) {
		t.Errorf("triangle ρ = %v, want 1.5", rho)
	}
}

func TestFractionalEdgeCoverStar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fact, dims := relation.Star(3, 4, 10, 5, rng)
	query := append([]*relation.Relation{fact}, dims...)
	rho, _, err := FromQuery(query).FractionalEdgeCover()
	if err != nil {
		t.Fatal(err)
	}
	// Each Bi forces its dimension edge to 1; the fact attributes are then
	// covered, so ρ = N = 3 (Section 5.5.2's "ρ is equal to N").
	if !approx(rho, 3) {
		t.Errorf("star ρ = %v, want 3", rho)
	}
}

func TestFractionalEdgeCoverEmptyQuery(t *testing.T) {
	if _, _, err := (Hypergraph{}).FractionalEdgeCover(); err == nil {
		t.Error("empty query should error")
	}
}

func TestAGMBound(t *testing.T) {
	// Triangle with |R|=|S|=|T|=m: bound = m^{3/2}.
	got := AGMBound([]float64{100, 100, 100}, []float64{0.5, 0.5, 0.5})
	if !approx(got, 1000) {
		t.Errorf("AGM = %v, want 1000", got)
	}
}

func TestAGMBoundIsValidOnRandomJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		rels := relation.Chain(3, 6, 12, rng)
		h := FromQuery(rels)
		_, weights, err := h.FractionalEdgeCover()
		if err != nil {
			t.Fatal(err)
		}
		sizes := make([]float64, len(rels))
		for i, r := range rels {
			sizes[i] = float64(r.Size())
		}
		bound := AGMBound(sizes, weights)
		actual := float64(relation.MultiJoin(rels...).Size())
		if actual > bound+1e-6 {
			t.Errorf("trial %d: join size %v exceeds AGM bound %v", trial, actual, bound)
		}
	}
}

func TestLowerBoundForms(t *testing.T) {
	// Chain of 3 over domain n: m=4, ρ=2 ⇒ n²/q; ChainLowerBound gives
	// (n/√q)² — identical.
	n, q := 50.0, 100.0
	if !approx(LowerBound(n, 4, 2, q), ChainLowerBound(n, 3, q)) {
		t.Error("general bound and chain specialization disagree for N=3")
	}
	// Matmul-style: bound decreases in q.
	if LowerBound(n, 4, 2, 2*q) >= LowerBound(n, 4, 2, q) {
		t.Error("lower bound should decrease with q")
	}
}

func TestStarBoundsRelationship(t *testing.T) {
	// In the paper's self-consistent regime (f/p = (1-e)·q), redoing the
	// Section 5.5.2 substitution gives upper/lower = e^{-N} exactly: with
	// p = (Nd0/eq)^N and f = pq(1-e), the upper bound's numerator
	// simplifies to Nd0·(Nd0/eq)^{N-1}/e, which is e^{-N} times the lower
	// bound's numerator Nd0·(Nd0/q)^{N-1}. (The paper prints the constant
	// as e(1-e)/e^N — an algebra slip; see EXPERIMENTS.md.) For constant
	// e this is a constant factor, which is the paper's claim.
	d0 := 1e3
	numDims := 3
	for _, e := range []float64{0.2, 0.5, 0.8} {
		for _, q := range []float64{2e4, 1e5} {
			nd := float64(numDims)
			p := math.Pow(nd*d0/(e*q), nd)
			f := p * q * (1 - e)
			ub := StarUpperBound(f, d0, numDims, p)
			lb := StarLowerBound(f, d0, numDims, q)
			if lb > ub+1e-9 {
				t.Errorf("e=%v q=%v: lower bound %v exceeds upper bound %v", e, q, lb, ub)
			}
			wantRatio := math.Pow(e, -nd)
			if math.Abs(ub/lb-wantRatio)/wantRatio > 1e-6 {
				t.Errorf("e=%v q=%v: ub/lb = %v, want e^-N = %v", e, q, ub/lb, wantRatio)
			}
		}
	}
}

func TestNewSharesValidation(t *testing.T) {
	rels := relation.FullChain(2, 2)
	if _, err := NewShares(rels, []int{2, 2}); err == nil {
		t.Error("3 vars need 3 shares; want error")
	}
	if _, err := NewShares(rels, []int{1, 0, 1}); err == nil {
		t.Error("share 0 must be rejected")
	}
	s, err := NewShares(rels, []int{1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumReducers() != 8 {
		t.Errorf("p = %d, want 8", s.NumReducers())
	}
}

func TestSharesReplication(t *testing.T) {
	// Chain of 3: vars A0..A3, shares (1, b, b, 1).
	rels := relation.FullChain(3, 4)
	s, err := NewShares(rels, []int{1, 3, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// R1(A0,A1) fixes A1 ⇒ replicated p/(1·3) = 3; R2 fixes A1,A2 ⇒ 1;
	// R3 fixes A2 ⇒ 3.
	if got := s.ReplicationOf(0); got != 3 {
		t.Errorf("ReplicationOf(R1) = %d, want 3", got)
	}
	if got := s.ReplicationOf(1); got != 1 {
		t.Errorf("ReplicationOf(R2) = %d, want 1", got)
	}
	if got := s.ReplicationOf(2); got != 3 {
		t.Errorf("ReplicationOf(R3) = %d, want 3", got)
	}
	wantComm := int64(16*3 + 16*1 + 16*3)
	if got := s.PredictedCommunication(); got != wantComm {
		t.Errorf("PredictedCommunication = %d, want %d", got, wantComm)
	}
}

func TestSharesRunMatchesSerialChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rels := relation.Chain(3, 8, 40, rng)
	want := relation.MultiJoin(rels...)
	for _, share := range [][]int{
		{1, 1, 1, 1}, {1, 2, 2, 1}, {1, 4, 2, 1}, {2, 2, 2, 2},
	} {
		s, err := NewShares(rels, share)
		if err != nil {
			t.Fatal(err)
		}
		got, met, err := s.Run(mr.Config{})
		if err != nil {
			t.Fatalf("share %v: %v", share, err)
		}
		if !relation.Equal(got, want) {
			t.Errorf("share %v: result (%d tuples) differs from serial (%d)", share, got.Size(), want.Size())
		}
		// Measured communication equals the prediction exactly.
		if met.PairsEmitted != s.PredictedCommunication() {
			t.Errorf("share %v: pairs %d, predicted %d", share, met.PairsEmitted, s.PredictedCommunication())
		}
	}
}

func TestSharesRunMatchesSerialStar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fact, dims := relation.Star(2, 6, 60, 12, rng)
	query := append([]*relation.Relation{fact}, dims...)
	want := relation.MultiJoin(query...)
	// Share 2 on each fact attribute, 1 on the B's.
	share := make([]int, FromQuery(query).NumVars())
	for i := range share {
		share[i] = 1
	}
	share[0], share[1] = 2, 2 // A1, A2 are first two vars (fact schema)
	s, err := NewShares(query, share)
	if err != nil {
		t.Fatal(err)
	}
	got, met, err := s.Run(mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, want) {
		t.Errorf("star join: result (%d tuples) differs from serial (%d)", got.Size(), want.Size())
	}
	// Fact tuples fix all shared coordinates: replication 1 each.
	if s.ReplicationOf(0) != 1 {
		t.Errorf("fact replication = %d, want 1", s.ReplicationOf(0))
	}
	// Each dimension is replicated p^{(N-1)/N} = √4 = 2 times.
	if s.ReplicationOf(1) != 2 || s.ReplicationOf(2) != 2 {
		t.Errorf("dim replication = %d/%d, want 2/2", s.ReplicationOf(1), s.ReplicationOf(2))
	}
	_ = met
}

func TestSharesRunWithFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rels := relation.Chain(2, 6, 20, rng)
	want := relation.MultiJoin(rels...)
	s, err := NewShares(rels, []int{1, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, met, err := s.Run(mr.Config{FailureEveryN: 2, MaxRetries: 3, MapChunk: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, want) {
		t.Error("faulty run differs from serial join")
	}
	if met.MapRetries == 0 {
		t.Error("expected injected retries")
	}
}

func TestOptimizeSharesChainPutsSharesOnInteriorVars(t *testing.T) {
	// For a uniform chain of 3, the optimizer should shard the two
	// interior attributes and leave the end attributes at share 1.
	rels := relation.FullChain(3, 6)
	s, err := OptimizeShares(rels, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShareByName("A0") != 1 || s.ShareByName("A3") != 1 {
		t.Errorf("end attributes sharded: %s", s.Describe())
	}
	if s.ShareByName("A1") < 2 || s.ShareByName("A2") < 2 {
		t.Errorf("interior attributes not sharded: %s", s.Describe())
	}
}

func TestOptimizeSharesStarShardsFactAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	fact, dims := relation.Star(2, 8, 400, 20, rng)
	query := append([]*relation.Relation{fact}, dims...)
	s, err := OptimizeShares(query, 16)
	if err != nil {
		t.Fatal(err)
	}
	// B attributes must keep share 1 (sharding them only multiplies p).
	if s.ShareByName("B1") != 1 || s.ShareByName("B2") != 1 {
		t.Errorf("non-fact attributes sharded: %s", s.Describe())
	}
	// Fact attributes take the parallelism.
	if s.ShareByName("A1")*s.ShareByName("A2") < 4 {
		t.Errorf("fact attributes under-sharded: %s", s.Describe())
	}
}

func TestOptimizedSharesStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rels := relation.Chain(4, 6, 30, rng)
	want := relation.MultiJoin(rels...)
	s, err := OptimizeShares(rels, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Run(mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, want) {
		t.Errorf("optimized shares %s give wrong join", s.Describe())
	}
}

// Property: every potential output tuple is covered by exactly one cell —
// the cells of the constituent tuples always share exactly one id.
func TestPropertySharesExactlyOnce(t *testing.T) {
	rels := relation.FullChain(2, 5) // R1(A0,A1), R2(A1,A2)
	s, err := NewShares(rels, []int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a0, a1, a2 uint8) bool {
		t1 := relation.Tuple{int(a0) % 5, int(a1) % 5}
		t2 := relation.Tuple{int(a1) % 5, int(a2) % 5}
		c1 := s.cellsForTuple(0, t1)
		c2 := s.cellsForTuple(1, t2)
		set := make(map[int]bool)
		for _, c := range c1 {
			set[c] = true
		}
		shared := 0
		for _, c := range c2 {
			if set[c] {
				shared++
			}
		}
		return shared == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: replication of a tuple equals the number of cells enumerated.
func TestPropertyReplicationMatchesCells(t *testing.T) {
	rels := relation.FullChain(3, 4)
	s, err := NewShares(rels, []int{1, 2, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(rel uint8, x, y uint8) bool {
		ri := int(rel) % 3
		t := relation.Tuple{int(x) % 4, int(y) % 4}
		return len(s.cellsForTuple(ri, t)) == s.ReplicationOf(ri)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneralArityLowerBound(t *testing.T) {
	// With alpha = 2 the general form reduces to LowerBound with rho = s/2.
	n, q := 20.0, 50.0
	if !approx(GeneralArityLowerBound(n, 4, 2, 4, q), LowerBound(n, 4, 2, q)) {
		t.Error("alpha=2 specialization disagrees with the binary bound")
	}
	// The s = m special case of Section 5.5.1: r >= n^{m-alpha} q^{1-m/alpha}.
	m, alpha := 6, 3
	got := GeneralArityLowerBound(n, m, alpha, m, q)
	want := math.Pow(n, float64(m-alpha)) * math.Pow(q, 1-float64(m)/float64(alpha))
	if !approx(got, want) {
		t.Errorf("s=m case: got %v, want %v", got, want)
	}
}

func TestDescribeAndShareByName(t *testing.T) {
	rels := relation.FullChain(2, 3)
	s, err := NewShares(rels, []int{1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	desc := s.Describe()
	for _, want := range []string{"A0=1", "A1=4", "A2=2", "p=8"} {
		if !containsStr(desc, want) {
			t.Errorf("Describe() = %q, want it to contain %q", desc, want)
		}
	}
	if s.ShareByName("A1") != 4 {
		t.Errorf("ShareByName(A1) = %d, want 4", s.ShareByName("A1"))
	}
	if s.ShareByName("missing") != 0 {
		t.Errorf("ShareByName(missing) = %d, want 0", s.ShareByName("missing"))
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestOptimizeSharesRejectsBadP(t *testing.T) {
	rels := relation.FullChain(2, 3)
	if _, err := OptimizeShares(rels, 0); err == nil {
		t.Error("p=0 must be rejected")
	}
	// p=1 degenerates to the single-reducer schema.
	s, err := OptimizeShares(rels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumReducers() != 1 {
		t.Errorf("p=1: reducers = %d, want 1", s.NumReducers())
	}
}

func TestSharesTernaryRelations(t *testing.T) {
	// The Shares algorithm is not limited to binary relations: join two
	// ternary relations sharing one attribute (the general-arity setting
	// of Section 5.5.1).
	rng := rand.New(rand.NewSource(61))
	r := relation.Random("R", 4, 30, rng, "A", "B", "C")
	s := relation.Random("S", 4, 30, rng, "C", "D", "E")
	query := []*relation.Relation{r, s}
	want := relation.MultiJoin(query...)
	sh, err := OptimizeShares(query, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, met, err := sh.Run(mr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, want) {
		t.Errorf("ternary join (%d tuples) differs from serial (%d)", got.Size(), want.Size())
	}
	if met.PairsEmitted != sh.PredictedCommunication() {
		t.Errorf("pairs %d, predicted %d", met.PairsEmitted, sh.PredictedCommunication())
	}
	// rho for two hyperedges covering disjoint-but-linked vars: both
	// edges forced to 1 by their private attributes.
	rho, _, err := FromQuery(query).FractionalEdgeCover()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rho, 2) {
		t.Errorf("ternary chain rho = %v, want 2", rho)
	}
}
