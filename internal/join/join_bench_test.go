package join

import (
	"fmt"
	"testing"

	"repro/internal/mr"
	"repro/internal/relation"
)

// BenchmarkFractionalEdgeCover measures the LP on chain hypergraphs.
func BenchmarkFractionalEdgeCover(b *testing.B) {
	for _, n := range []int{3, 6, 10} {
		h := FromQuery(relation.FullChain(n, 2))
		b.Run(fmt.Sprintf("chain-N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := h.FractionalEdgeCover(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSharesRun measures the end-to-end distributed join.
func BenchmarkSharesRun(b *testing.B) {
	rels := relation.FullChain(3, 8)
	for _, p := range []int{4, 16, 64} {
		s, err := OptimizeShares(rels, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Run(mr.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeShares measures the share-vector search itself.
func BenchmarkOptimizeShares(b *testing.B) {
	rels := relation.FullChain(4, 6)
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeShares(rels, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialMultiJoin is the non-distributed baseline.
func BenchmarkSerialMultiJoin(b *testing.B) {
	rels := relation.FullChain(3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = relation.MultiJoin(rels...)
	}
}
