package join

import (
	"fmt"
	"sort"

	"repro/internal/mr"
	"repro/internal/relation"
)

// Shares is the Afrati–Ullman Shares algorithm [1] configured for a
// query: each attribute a receives a share b_a ≥ 1, the reducers form a
// grid of p = Π b_a cells, and a tuple of relation R is sent to every cell
// that agrees with the tuple's hashed values on R's attributes (so it is
// replicated p / Π_{a ∈ attrs(R)} b_a times). Every potential join result
// hashes to exactly one cell, which both guarantees coverage and makes
// output production exactly-once.
type Shares struct {
	Query  []*relation.Relation
	H      Hypergraph
	Share  []int // per variable of H.Vars, each ≥ 1
	stride []int // mixed-radix strides for cell ids
}

// NewShares validates a share vector for a query.
func NewShares(query []*relation.Relation, share []int) (*Shares, error) {
	h := FromQuery(query)
	if len(share) != h.NumVars() {
		return nil, fmt.Errorf("join: %d shares for %d variables", len(share), h.NumVars())
	}
	for i, b := range share {
		if b < 1 {
			return nil, fmt.Errorf("join: share for %s is %d, want >= 1", h.Vars[i], b)
		}
	}
	s := &Shares{Query: query, H: h, Share: share}
	s.stride = make([]int, len(share))
	st := 1
	for i := len(share) - 1; i >= 0; i-- {
		s.stride[i] = st
		st *= share[i]
	}
	return s, nil
}

// NumReducers is p = Π b_a.
func (s *Shares) NumReducers() int {
	p := 1
	for _, b := range s.Share {
		p *= b
	}
	return p
}

// hash maps an attribute value into its share range.
func (s *Shares) hash(varIdx, value int) int {
	if value < 0 {
		value = -value
	}
	return value % s.Share[varIdx]
}

// ReplicationOf returns how many cells one tuple of relation rel reaches.
func (s *Shares) ReplicationOf(rel int) int {
	rep := s.NumReducers()
	for _, v := range s.H.Edges[rel].Vars {
		rep /= s.Share[v]
	}
	return rep
}

// PredictedCommunication is Σ_R |R| · ReplicationOf(R): the total number
// of key-value pairs the map phase will emit.
func (s *Shares) PredictedCommunication() int64 {
	var total int64
	for i, r := range s.Query {
		total += int64(r.Size()) * int64(s.ReplicationOf(i))
	}
	return total
}

// PredictedReplicationRate is PredictedCommunication divided by the total
// input size.
func (s *Shares) PredictedReplicationRate() float64 {
	var inputs int64
	for _, r := range s.Query {
		inputs += int64(r.Size())
	}
	if inputs == 0 {
		return 0
	}
	return float64(s.PredictedCommunication()) / float64(inputs)
}

// cellsForTuple enumerates the cell ids receiving a tuple of relation rel.
func (s *Shares) cellsForTuple(rel int, t relation.Tuple) []int {
	fixed := make(map[int]int) // var index -> coordinate
	for pos, v := range s.H.Edges[rel].Vars {
		fixed[v] = s.hash(v, t[pos])
	}
	cells := []int{0}
	for v := range s.H.Vars {
		var next []int
		if c, ok := fixed[v]; ok {
			for _, base := range cells {
				next = append(next, base+c*s.stride[v])
			}
		} else {
			for _, base := range cells {
				for c := 0; c < s.Share[v]; c++ {
					next = append(next, base+c*s.stride[v])
				}
			}
		}
		cells = next
	}
	return cells
}

// tagged is one input record of the join job: a tuple and the index of
// the relation it belongs to.
type tagged struct {
	Rel int
	T   string // encoded tuple (comparable for mr value grouping)
}

// encodeTuple packs attribute values (which must lie in [0, 2^24), as all
// generated workloads do) into a compact comparable string.
func encodeTuple(t relation.Tuple) string {
	b := make([]byte, 0, len(t)*3)
	for _, v := range t {
		b = append(b, byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

func decodeTuple(s string) relation.Tuple {
	t := make(relation.Tuple, len(s)/3)
	for i := range t {
		t[i] = int(s[3*i])<<16 | int(s[3*i+1])<<8 | int(s[3*i+2])
	}
	return t
}

// Run executes the Shares algorithm as one MapReduce round and returns
// the join result (schema identical to relation.MultiJoin's) plus the
// round metrics. Each reducer joins its local fragments; because a cell's
// fragment of R holds exactly the tuples agreeing with the cell on R's
// attributes, the local join emits exactly the global results hashing to
// that cell — exactly-once by construction.
func (s *Shares) Run(cfg mr.Config) (*relation.Relation, mr.Metrics, error) {
	var inputs []tagged
	for ri, r := range s.Query {
		for _, t := range r.Tuples {
			inputs = append(inputs, tagged{Rel: ri, T: encodeTuple(t)})
		}
	}
	job := &mr.Job[tagged, int, tagged, string]{
		Name: "shares-join",
		Map: func(in tagged, emit func(int, tagged)) {
			t := decodeTuple(in.T)
			for _, cell := range s.cellsForTuple(in.Rel, t) {
				emit(cell, in)
			}
		},
		Reduce: func(_ int, vs []tagged, emit func(string)) {
			frags := make([]*relation.Relation, len(s.Query))
			for i, r := range s.Query {
				frags[i] = relation.New(r.Name, r.Attrs...)
			}
			for _, v := range vs {
				frags[v.Rel].Tuples = append(frags[v.Rel].Tuples, decodeTuple(v.T))
			}
			local := relation.MultiJoin(frags...)
			for _, t := range local.Tuples {
				emit(encodeTuple(t))
			}
		},
		Config: cfg,
	}
	outs, met, err := job.Run(inputs)
	if err != nil {
		return nil, met, err
	}
	schema := relation.MultiJoin(emptyCopies(s.Query)...).Attrs
	res := relation.New("shares_result", schema...)
	for _, o := range outs {
		res.Tuples = append(res.Tuples, decodeTuple(o))
	}
	return res, met, nil
}

func emptyCopies(rels []*relation.Relation) []*relation.Relation {
	out := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		out[i] = relation.New(r.Name, r.Attrs...)
	}
	return out
}

// OptimizeShares searches for the share vector minimizing predicted
// communication for a fixed number of reducers: p is rounded down to a
// power of two and the search covers every power-of-two share vector with
// Π b_a equal to that p. This reproduces the optimization that [1] solves
// with Lagrange multipliers, as an exact search over the discrete grid the
// experiments use. (The reducer count must be held fixed: communication
// alone is always minimized by the trivial p = 1.)
func OptimizeShares(query []*relation.Relation, p int) (*Shares, error) {
	if p < 1 {
		return nil, fmt.Errorf("join: need p >= 1, got %d", p)
	}
	h := FromQuery(query)
	m := h.NumVars()
	logP := 0
	for 1<<uint(logP+1) <= p {
		logP++
	}
	best := (*Shares)(nil)
	var bestComm int64
	exps := make([]int, m)
	var rec func(i, budget int)
	rec = func(i, budget int) {
		if i == m {
			if budget != 0 {
				return // product must be exactly 2^logP
			}
			share := make([]int, m)
			for j, e := range exps {
				share[j] = 1 << uint(e)
			}
			s, err := NewShares(query, share)
			if err != nil {
				return
			}
			comm := s.PredictedCommunication()
			if best == nil || comm < bestComm {
				best, bestComm = s, comm
			}
			return
		}
		for e := 0; e <= budget; e++ {
			exps[i] = e
			rec(i+1, budget-e)
		}
		exps[i] = 0
	}
	rec(0, logP)
	if best == nil {
		return nil, fmt.Errorf("join: no feasible share vector at p = %d", 1<<uint(logP))
	}
	return best, nil
}

// ShareByName returns the share assigned to the named attribute (for
// reporting), or 0 if absent.
func (s *Shares) ShareByName(attr string) int {
	for i, a := range s.H.Vars {
		if a == attr {
			return s.Share[i]
		}
	}
	return 0
}

// Describe renders the share vector sorted by attribute name.
func (s *Shares) Describe() string {
	type kv struct {
		a string
		b int
	}
	var list []kv
	for i, a := range s.H.Vars {
		list = append(list, kv{a, s.Share[i]})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].a < list[j].a })
	out := ""
	for _, e := range list {
		out += fmt.Sprintf("%s=%d ", e.a, e.b)
	}
	return out + fmt.Sprintf("(p=%d)", s.NumReducers())
}
