// Package join implements Section 5.5 of the paper: multiway joins as
// map-reduce problems. It provides the query hypergraph, optimal
// fractional edge covers (the parameter ρ of Table 1, computed with the
// simplex solver of internal/lp following Atserias–Grohe–Marx [6]), the
// AGM output-size bound of Section 5.5's closing discussion, the
// replication-rate lower bounds for general multiway joins and star
// joins, and an executable Shares algorithm (Afrati–Ullman [1]) with a
// communication-optimizing share search for chain and star queries.
package join

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/relation"
)

// Hypergraph is the hypergraph G(q) of a join query: one node per
// attribute, one hyperedge per relational atom.
type Hypergraph struct {
	Vars  []string // attribute names, in first-appearance order
	Edges []Edge   // one per relation
}

// Edge is one hyperedge: the atom's name and the indices of its
// attributes in Vars.
type Edge struct {
	Name string
	Vars []int
}

// FromQuery builds the hypergraph of a query given as a list of relations.
func FromQuery(rels []*relation.Relation) Hypergraph {
	var h Hypergraph
	index := map[string]int{}
	for _, r := range rels {
		e := Edge{Name: r.Name}
		for _, a := range r.Attrs {
			i, ok := index[a]
			if !ok {
				i = len(h.Vars)
				index[a] = i
				h.Vars = append(h.Vars, a)
			}
			e.Vars = append(e.Vars, i)
		}
		h.Edges = append(h.Edges, e)
	}
	return h
}

// NumVars is the number of attributes m.
func (h Hypergraph) NumVars() int { return len(h.Vars) }

// FractionalEdgeCover solves the LP
//
//	minimize Σ_e x_e  subject to  Σ_{e ∋ v} x_e ≥ 1 for every var v, x ≥ 0
//
// returning ρ = Σ x_e and the per-edge weights. This is the parameter ρ
// that bounds the output of any q inputs by g(q) = q^ρ (Section 5.5.1).
func (h Hypergraph) FractionalEdgeCover() (rho float64, weights []float64, err error) {
	if len(h.Edges) == 0 {
		return 0, nil, fmt.Errorf("join: empty query")
	}
	p := lp.Problem{Minimize: make([]float64, len(h.Edges))}
	for j := range p.Minimize {
		p.Minimize[j] = 1
	}
	for v := range h.Vars {
		row := make([]float64, len(h.Edges))
		for j, e := range h.Edges {
			for _, u := range e.Vars {
				if u == v {
					row[j] = 1
				}
			}
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.GE, RHS: 1})
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return 0, nil, fmt.Errorf("join: fractional edge cover: %w", err)
	}
	return sol.Value, sol.X, nil
}

// AGMBound is the Atserias–Grohe–Marx bound on the join output size:
// |O| ≤ Π_e |R_e|^{x_e} for any fractional edge cover x. Called with the
// optimal cover it is tight up to constants.
func AGMBound(sizes []float64, weights []float64) float64 {
	bound := 1.0
	for i, s := range sizes {
		bound *= math.Pow(s, weights[i])
	}
	return bound
}

// LowerBound is the Section 5.5.1 replication-rate lower bound for a
// multiway join over binary relations on a domain of n values with m
// variables and fractional-cover parameter ρ:
//
//	r ≥ n^{m-2} / q^{ρ-1}
//
// (constant factors dropped, as in the paper).
func LowerBound(n float64, m int, rho, q float64) float64 {
	return math.Pow(n, float64(m-2)) / math.Pow(q, rho-1)
}

// GeneralArityLowerBound generalizes the Section 5.5.1 bound to relations
// of uniform arity α ≥ 2 with s relational atoms and ρ = s/α:
//
//	r ≥ n^{m-α} / q^{s/α - 1}
func GeneralArityLowerBound(n float64, m, alpha, s int, q float64) float64 {
	return math.Pow(n, float64(m-alpha)) / math.Pow(q, float64(s)/float64(alpha)-1)
}

// ChainLowerBound specializes the bound to a chain of N binary relations
// (m = N+1, ρ = (N+1)/2 for odd N): r ≥ (n/√q)^{N-1} (Section 5.5.2).
func ChainLowerBound(n float64, numRels int, q float64) float64 {
	return math.Pow(n/math.Sqrt(q), float64(numRels-1))
}

// StarUpperBound is the Section 5.5.2 replication rate of the Shares
// algorithm on a star join with N dimension tables: fact size f, dimension
// size d0, p reducers, share p^{1/N} on each fact attribute:
//
//	r = (f + N·d0·p^{(N-1)/N}) / (f + N·d0)
func StarUpperBound(f, d0 float64, numDims int, p float64) float64 {
	nd := float64(numDims)
	return (f + nd*d0*math.Pow(p, (nd-1)/nd)) / (f + nd*d0)
}

// StarLowerBound is the Section 5.5.2 lower bound for the star join:
//
//	r ≥ N·d0·(N·d0/q)^{N-1} / (f + N·d0)
func StarLowerBound(f, d0 float64, numDims int, q float64) float64 {
	nd := float64(numDims)
	return nd * d0 * math.Pow(nd*d0/q, nd-1) / (f + nd*d0)
}
