package engine

import (
	"testing"
	"time"
)

// fakeClock is a hand-marched time source for deterministic lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func TestLeaseGrantRenewComplete(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Second, clk.now)

	a, ok := lt.Grant(3, "w1")
	if !ok || a != 0 {
		t.Fatalf("Grant = (%d, %v), want (0, true)", a, ok)
	}
	clk.advance(500 * time.Millisecond)
	if !lt.Renew(3, 0, "w1") {
		t.Fatal("Renew of live lease refused")
	}
	clk.advance(900 * time.Millisecond) // inside renewed TTL
	if exp := lt.Sweep(); len(exp) != 0 {
		t.Fatalf("Sweep fenced a renewed lease: %v", exp)
	}
	if !lt.Complete(3, 0) {
		t.Fatal("Complete of current attempt refused")
	}
	if lt.Complete(3, 0) {
		t.Fatal("second Complete accepted")
	}
	if _, ok := lt.Grant(3, "w2"); ok {
		t.Fatal("Grant of done task accepted")
	}
}

func TestLeaseExpiryFencesAttempt(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Second, clk.now)
	lt.Grant(0, "w1")

	clk.advance(1100 * time.Millisecond)
	exp := lt.Sweep()
	if len(exp) != 1 || exp[0] != (Expired{Task: 0, Attempt: 0, Owner: "w1"}) {
		t.Fatalf("Sweep = %v, want task 0 attempt 0 of w1", exp)
	}
	// The old owner is fenced on every path.
	if lt.Renew(0, 0, "w1") {
		t.Fatal("Renew of expired lease accepted")
	}
	a2, ok := lt.Grant(0, "w2")
	if !ok || a2 != 1 {
		t.Fatalf("re-Grant = (%d, %v), want (1, true)", a2, ok)
	}
	if lt.Complete(0, 0) {
		t.Fatal("stale attempt's Complete accepted after re-grant")
	}
	if !lt.Complete(0, 1) {
		t.Fatal("current attempt's Complete refused")
	}
	if got := lt.Attempts(0); got != 2 {
		t.Errorf("Attempts = %d, want 2", got)
	}
}

func TestLeaseSpeculativeDuplicateFirstWins(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Second, clk.now)
	lt.Grant(7, "slow")
	// Speculative duplicate while the first lease is still live.
	a2, ok := lt.Grant(7, "fast")
	if !ok || a2 != 1 {
		t.Fatalf("speculative Grant = (%d, %v), want (1, true)", a2, ok)
	}
	// The original execution is now stale everywhere.
	if lt.Renew(7, 0, "slow") {
		t.Fatal("stale renew accepted")
	}
	if !lt.Complete(7, 1) {
		t.Fatal("speculative attempt's Complete refused")
	}
	if lt.Complete(7, 0) {
		t.Fatal("fenced original completed after the duplicate won")
	}
}

func TestLeaseExpireOwner(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Minute, clk.now)
	lt.Grant(1, "w1")
	lt.Grant(2, "w1")
	lt.Grant(3, "w2")
	exp := lt.ExpireOwner("w1")
	if len(exp) != 2 {
		t.Fatalf("ExpireOwner fenced %d leases, want 2: %v", len(exp), exp)
	}
	if _, active, _ := lt.Current(3); !active {
		t.Fatal("w2's lease was collaterally fenced")
	}
	if lt.Renew(1, 0, "w1") || lt.Renew(2, 0, "w1") {
		t.Fatal("dead owner can still renew")
	}
}

func TestLeaseReleaseAndSalvage(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Minute, clk.now)
	lt.Grant(4, "w1")
	if !lt.Release(4, 0) {
		t.Fatal("Release of current lease refused")
	}
	if lt.Release(4, 0) {
		t.Fatal("double Release accepted")
	}
	if _, active, done := lt.Current(4); active || done {
		t.Fatal("released task should be inactive and not done")
	}
	// Salvage adopts a dead worker's completed output regardless of the
	// attempt bookkeeping, once.
	if !lt.CompleteSalvaged(4) {
		t.Fatal("CompleteSalvaged refused")
	}
	if lt.CompleteSalvaged(4) {
		t.Fatal("second CompleteSalvaged accepted")
	}
	if lt.Complete(4, 0) {
		t.Fatal("Complete accepted after salvage")
	}
}

func TestLeaseOldest(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Second, clk.now)
	if _, ok := lt.Oldest(); ok {
		t.Fatal("Oldest on empty table returned a task")
	}
	lt.Grant(1, "w1")
	clk.advance(100 * time.Millisecond)
	lt.Grant(2, "w2")
	task, ok := lt.Oldest()
	if !ok || task != 1 {
		t.Fatalf("Oldest = (%d, %v), want task 1", task, ok)
	}
	// Renewing task 1 pushes its expiry past task 2's.
	clk.advance(100 * time.Millisecond)
	lt.Renew(1, 0, "w1")
	task, ok = lt.Oldest()
	if !ok || task != 2 {
		t.Fatalf("Oldest after renew = (%d, %v), want task 2", task, ok)
	}
}
