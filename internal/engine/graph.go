package engine

import (
	"fmt"
)

// StageFunc is one node of a multi-round DAG: it receives the values
// produced by its dependencies (in declaration order; source nodes
// receive the pipeline's source value as the single element) and
// returns its own value plus the round's metrics.
type StageFunc func(ins []any) (out any, m Metrics, err error)

// NamedMetrics pairs a stage name with its metrics.
type NamedMetrics struct {
	Name    string
	Metrics Metrics
}

// Graph is a DAG of rounds. Stages whose dependencies are all complete
// run concurrently — the round-level parallelism that a linear chain
// cannot express (e.g. joining two independently-prepared relations).
type Graph struct {
	nodes []*gnode
}

type gnode struct {
	name string
	deps []string
	fn   StageFunc
}

// NewGraph returns an empty DAG.
func NewGraph() *Graph { return &Graph{} }

// Add registers a stage with its dependencies and returns the graph for
// chaining. Validation (unknown deps, duplicates, cycles) happens in
// Run.
func (g *Graph) Add(name string, fn StageFunc, deps ...string) *Graph {
	g.nodes = append(g.nodes, &gnode{name: name, deps: deps, fn: fn})
	return g
}

// GraphResult holds every stage's value and the metrics of every round
// in declaration order.
type GraphResult struct {
	values map[string]any
	sinks  []string
	// Rounds are the executed rounds' metrics, in declaration order.
	Rounds []NamedMetrics
}

// Value returns the named stage's output.
func (r *GraphResult) Value(name string) (any, bool) {
	v, ok := r.values[name]
	return v, ok
}

// Sinks lists the stages nothing depends on, in declaration order.
func (r *GraphResult) Sinks() []string { return r.sinks }

// Output returns the single sink's value; it errors when the DAG has
// more than one sink (use Value then).
func (r *GraphResult) Output() (any, error) {
	if len(r.sinks) != 1 {
		return nil, fmt.Errorf("engine: graph has %d sinks %v, want exactly 1", len(r.sinks), r.sinks)
	}
	return r.values[r.sinks[0]], nil
}

// TotalPairsShuffled sums the communication of all executed rounds.
func (r *GraphResult) TotalPairsShuffled() int64 {
	var total int64
	for _, rm := range r.Rounds {
		total += rm.Metrics.PairsShuffled
	}
	return total
}

// Run validates and executes the DAG: stages run as soon as all their
// dependencies have completed, concurrently where the shape allows.
// Source stages (no dependencies) receive []any{source}. On the first
// stage error execution stops and the error is returned, wrapped with
// the stage name; already-running stages are awaited first.
func (g *Graph) Run(source any) (*GraphResult, error) {
	byName := make(map[string]*gnode, len(g.nodes))
	for _, n := range g.nodes {
		if _, dup := byName[n.name]; dup {
			return nil, fmt.Errorf("engine: duplicate stage %q", n.name)
		}
		byName[n.name] = n
	}
	indeg := make(map[string]int, len(g.nodes))
	dependents := make(map[string][]*gnode)
	for _, n := range g.nodes {
		indeg[n.name] = len(n.deps)
		for _, d := range n.deps {
			if _, ok := byName[d]; !ok {
				return nil, fmt.Errorf("engine: stage %q depends on unknown stage %q", n.name, d)
			}
			dependents[d] = append(dependents[d], n)
		}
	}

	res := &GraphResult{values: make(map[string]any, len(g.nodes))}
	metrics := make(map[string]Metrics, len(g.nodes))

	type outcome struct {
		node *gnode
		val  any
		m    Metrics
		err  error
	}
	done := make(chan outcome)
	running := 0
	launch := func(n *gnode) {
		running++
		ins := make([]any, 0, len(n.deps))
		if len(n.deps) == 0 {
			ins = append(ins, source)
		} else {
			for _, d := range n.deps {
				ins = append(ins, res.values[d])
			}
		}
		go func() {
			val, m, err := n.fn(ins)
			done <- outcome{node: n, val: val, m: m, err: err}
		}()
	}

	completed := 0
	for _, n := range g.nodes {
		if indeg[n.name] == 0 {
			launch(n)
		}
	}
	var firstErr error
	for running > 0 {
		oc := <-done
		running--
		if oc.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("engine: stage %q: %w", oc.node.name, oc.err)
			}
			continue
		}
		if firstErr != nil {
			continue // draining; don't launch further work
		}
		res.values[oc.node.name] = oc.val
		metrics[oc.node.name] = oc.m
		completed++
		for _, dep := range dependents[oc.node.name] {
			indeg[dep.name]--
			if indeg[dep.name] == 0 {
				launch(dep)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if completed != len(g.nodes) {
		var stuck []string
		for _, n := range g.nodes {
			if _, ok := res.values[n.name]; !ok {
				stuck = append(stuck, n.name)
			}
		}
		return nil, fmt.Errorf("engine: graph has a dependency cycle through %v", stuck)
	}
	for _, n := range g.nodes {
		res.Rounds = append(res.Rounds, NamedMetrics{Name: n.name, Metrics: metrics[n.name]})
		if len(dependents[n.name]) == 0 {
			res.sinks = append(res.sinks, n.name)
		}
	}
	return res, nil
}

// Stage adapts a typed Round into a DAG stage. Dependency values must
// each be a []I; multiple dependencies are concatenated in declaration
// order.
func Stage[I any, K comparable, V, O any](r Round[I, K, V, O]) StageFunc {
	return func(ins []any) (any, Metrics, error) {
		var inputs []I
		for i, in := range ins {
			if in == nil {
				continue
			}
			xs, ok := in.([]I)
			if !ok {
				var want []I
				return nil, Metrics{}, fmt.Errorf("engine: round %q input %d is %T, want %T", r.Name, i, in, want)
			}
			if inputs == nil {
				inputs = xs
			} else {
				inputs = append(inputs[:len(inputs):len(inputs)], xs...)
			}
		}
		res, err := Run(r, inputs)
		return res.Outputs, res.Metrics, err
	}
}
