package engine

import (
	"sync"
	"time"
)

// LeaseTable is the scheduler's task-ownership ledger for executions
// that can die without unwinding a Go stack: each task is leased to one
// owner for a TTL, heartbeats renew the lease, and every grant bumps
// the task's attempt number so stale owners are fenced — a report from
// an attempt that is no longer current is simply refused, which is what
// makes speculative re-execution and kill -9 recovery safe. The
// in-process engine gets the same guarantee structurally (a worker
// goroutine cannot outlive its round); the multi-process driver
// (internal/proc) cannot, so it runs every assignment through this
// table.
//
// All methods are safe for concurrent use. Time is injected so tests
// can march the clock deterministically.
type LeaseTable struct {
	ttl time.Duration
	now func() time.Time

	mu     sync.Mutex
	leases map[int]*lease
}

type lease struct {
	attempt  int // current (fencing) attempt; grants bump it
	attempts int // total grants, for retry accounting
	owner    string
	expires  time.Time
	active   bool // an owner currently holds the lease
	done     bool // a current attempt completed; task is finished
}

// Expired describes one lease the table fenced off.
type Expired struct {
	Task    int
	Attempt int
	Owner   string
}

// NewLeaseTable creates a table with the given TTL. now may be nil for
// the real clock; tests inject their own.
func NewLeaseTable(ttl time.Duration, now func() time.Time) *LeaseTable {
	if now == nil {
		now = time.Now
	}
	return &LeaseTable{ttl: ttl, now: now, leases: make(map[int]*lease)}
}

// Grant leases the task to owner and returns the attempt number that
// fences this execution. Granting a task that is already leased bumps
// the attempt — the previous owner's lease is implicitly fenced (its
// renews and completions will be refused) — which is exactly the
// speculative re-execution primitive. Granting a done task returns
// (-1, false).
func (t *LeaseTable) Grant(task int, owner string) (attempt int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[task]
	if l == nil {
		l = &lease{attempt: -1}
		t.leases[task] = l
	}
	if l.done {
		return -1, false
	}
	l.attempt++
	l.attempts++
	l.owner = owner
	l.expires = t.now().Add(t.ttl)
	l.active = true
	return l.attempt, true
}

// Renew extends the lease iff (task, attempt) is still the current
// active lease held by owner. A false return tells the caller its
// execution has been fenced (expired, superseded, or the task is done)
// and its work will be discarded.
func (t *LeaseTable) Renew(task, attempt int, owner string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[task]
	if l == nil || l.done || !l.active || l.attempt != attempt || l.owner != owner {
		return false
	}
	l.expires = t.now().Add(t.ttl)
	return true
}

// Complete marks the task done iff (task, attempt) is the current
// attempt and the task is not already done. A false return fences a
// stale completion: the caller must discard the attempt's output.
func (t *LeaseTable) Complete(task, attempt int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[task]
	if l == nil || l.done || l.attempt != attempt {
		return false
	}
	l.done = true
	l.active = false
	return true
}

// CompleteSalvaged marks the task done regardless of the current
// attempt, for recovery paths that adopt a dead owner's completed,
// validated output (the attempt finished on disk but its report never
// arrived). Returns false if the task was already done.
func (t *LeaseTable) CompleteSalvaged(task int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[task]
	if l == nil {
		l = &lease{attempt: -1}
		t.leases[task] = l
	}
	if l.done {
		return false
	}
	l.done = true
	l.active = false
	return true
}

// Release deactivates the lease iff (task, attempt) is current: the
// owner reported a failed execution and the task should be re-granted
// without waiting for the TTL. Returns false on a stale release.
func (t *LeaseTable) Release(task, attempt int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[task]
	if l == nil || l.done || !l.active || l.attempt != attempt {
		return false
	}
	l.active = false
	return true
}

// Sweep fences every active lease whose TTL has passed and returns
// them. Swept tasks are re-grantable (their next Grant bumps the
// attempt past the fenced one).
func (t *LeaseTable) Sweep() []Expired {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []Expired
	for task, l := range t.leases {
		if l.active && !l.done && now.After(l.expires) {
			l.active = false
			out = append(out, Expired{Task: task, Attempt: l.attempt, Owner: l.owner})
		}
	}
	return out
}

// ExpireOwner fences every active lease held by owner — the owner's
// process is known dead, so there is no reason to wait out the TTL —
// and returns them.
func (t *LeaseTable) ExpireOwner(owner string) []Expired {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Expired
	for task, l := range t.leases {
		if l.active && !l.done && l.owner == owner {
			l.active = false
			out = append(out, Expired{Task: task, Attempt: l.attempt, Owner: l.owner})
		}
	}
	return out
}

// Current returns the task's current attempt and whether an owner
// actively holds it. done reports a finished task.
func (t *LeaseTable) Current(task int) (attempt int, active, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[task]
	if l == nil {
		return -1, false, false
	}
	return l.attempt, l.active, l.done
}

// Attempts is the total number of grants the task has received — the
// retry/speculation accounting the driver caps task re-execution on.
func (t *LeaseTable) Attempts(task int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[task]
	if l == nil {
		return 0
	}
	return l.attempts
}

// Oldest returns the active lease closest to expiry (the longest-unrenewed
// in-flight task) — the speculation candidate — or ok=false when no
// lease is active.
func (t *LeaseTable) Oldest() (task int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best time.Time
	ok = false
	for tk, l := range t.leases {
		if !l.active || l.done {
			continue
		}
		if !ok || l.expires.Before(best) || (l.expires.Equal(best) && tk < task) {
			task, best, ok = tk, l.expires, true
		}
	}
	return task, ok
}
