package engine

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func wordCountRound(cfg Config) Round[string, string, int, string] {
	return Round[string, string, int, string]{
		Name: "wordcount",
		Map: func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		Reduce: func(w string, counts []int, emit func(string)) {
			total := 0
			for _, c := range counts {
				total += c
			}
			emit(w + "=" + itoa(total))
		},
		Config: cfg,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestRunDeterministicGlobalOrder(t *testing.T) {
	docs := []string{"the quick brown fox", "the lazy dog", "the fox"}
	want := []string{"brown=1", "dog=1", "fox=2", "lazy=1", "quick=1", "the=3"}
	for trial := 0; trial < 5; trial++ {
		res, err := Run(wordCountRound(Config{Workers: 4, MapChunk: 1, Partitions: 16}), docs)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !reflect.DeepEqual(res.Outputs, want) {
			t.Fatalf("trial %d: outputs = %v, want %v", trial, res.Outputs, want)
		}
	}
}

func TestPerPartitionMetrics(t *testing.T) {
	docs := []string{"a b c d e f g h"}
	res, err := Run(wordCountRound(Config{Partitions: 4}), docs)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if len(m.Partitions) != 4 {
		t.Fatalf("Partitions = %d stats, want 4", len(m.Partitions))
	}
	var pairs, keys int64
	for _, ps := range m.Partitions {
		pairs += ps.Pairs
		keys += ps.Keys
		if ps.Keys > 0 && ps.Worker < 0 {
			t.Errorf("non-empty partition not scheduled: %+v", ps)
		}
	}
	if pairs != m.PairsShuffled || keys != m.Reducers {
		t.Errorf("partition sums (%d pairs, %d keys) disagree with totals (%d, %d)",
			pairs, keys, m.PairsShuffled, m.Reducers)
	}
	if m.Makespan < m.IdealMakespan {
		t.Errorf("Makespan %d < IdealMakespan %d", m.Makespan, m.IdealMakespan)
	}
	if s := m.PartitionSkew(); s < 1 {
		t.Errorf("PartitionSkew = %v, want >= 1 on a non-empty round", s)
	}
}

func TestLPTSchedulingBalancesPartitions(t *testing.T) {
	// Explicit partitioner: key i to partition i, loads 8,4,2,1 over 2
	// workers. LPT must not put everything on one worker.
	r := Round[int, int, int, int]{
		Name: "skewed",
		Map: func(x int, emit func(int, int)) {
			emit(x, x)
		},
		Reduce:      func(k int, vs []int, emit func(int)) { emit(len(vs)) },
		Partitioner: func(k int) int { return k },
		Config:      Config{Workers: 2, Partitions: 4},
	}
	var inputs []int
	for k, n := range map[int]int{0: 8, 1: 4, 2: 2, 3: 1} {
		for i := 0; i < n; i++ {
			inputs = append(inputs, k)
		}
	}
	res, err := Run(r, inputs)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Makespan != 8 {
		t.Errorf("Makespan = %d, want 8 (LPT: {8} vs {4,2,1})", m.Makespan)
	}
	if m.Partitions[0].Worker == m.Partitions[1].Worker {
		t.Errorf("two heaviest partitions share worker %d", m.Partitions[0].Worker)
	}
	if m.Partitions[0].MaxGroup != 8 {
		t.Errorf("partition 0 MaxGroup = %d, want 8", m.Partitions[0].MaxGroup)
	}
}

func TestOverflowSingleKeyAloneInPartition(t *testing.T) {
	// The partition-boundary case: the overflowing key is the *only* key
	// in its partition, so the violation must be detected from partition
	// stats, not from comparing against neighbors.
	r := Round[int, int, int, int]{
		Name:        "boundary",
		Map:         func(x int, emit func(int, int)) { emit(x, x) },
		Reduce:      func(k int, vs []int, emit func(int)) { emit(len(vs)) },
		Partitioner: func(k int) int { return k }, // key 0 alone in partition 0
		Config:      Config{Partitions: 2, MaxReducerInput: 3},
	}
	inputs := []int{0, 0, 0, 0, 1} // key 0 has 4 values > limit 3; key 1 is fine
	res, err := Run(r, inputs)
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
	// Metrics up to the failure point must be populated.
	if res.Metrics.MaxReducerInput != 4 || res.Metrics.Reducers != 2 {
		t.Errorf("metrics at failure = %+v", res.Metrics)
	}
	// And the reduce phase must not have run.
	if res.Outputs != nil || res.Metrics.Outputs != 0 {
		t.Errorf("reduce ran despite overflow: %v", res.Outputs)
	}

	// At exactly the limit the round succeeds.
	r.Config.MaxReducerInput = 4
	if _, err := Run(r, inputs); err != nil {
		t.Fatalf("at limit: %v", err)
	}

	// With RecordLoads/RecordKeys, the failure still reports which
	// reducers blew the limit even though reduce never ran.
	r.Config.MaxReducerInput = 3
	r.Config.RecordLoads = true
	r.Config.RecordKeys = true
	res, err = Run(r, inputs)
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v", err)
	}
	if !reflect.DeepEqual(res.Keys, []int{0, 1}) || !reflect.DeepEqual(res.Loads, []int{4, 1}) {
		t.Errorf("at-failure keys/loads = %v / %v, want [0 1] / [4 1]", res.Keys, res.Loads)
	}
}

func TestFaultInjectionThroughPartitionedExecutor(t *testing.T) {
	docs := []string{"a b", "b c", "c d", "d e", "e f", "f g"}
	clean, err := Run(wordCountRound(Config{Workers: 3}), docs)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(wordCountRound(Config{
		Workers: 3, MapChunk: 1, Partitions: 8, FailureEveryN: 2, MaxRetries: 3,
	}), docs)
	if err != nil {
		t.Fatalf("faulty run: %v", err)
	}
	if !reflect.DeepEqual(faulty.Outputs, clean.Outputs) {
		t.Errorf("faulty outputs %v != clean %v", faulty.Outputs, clean.Outputs)
	}
	if faulty.Metrics.MapRetries == 0 {
		t.Error("MapRetries = 0, want > 0")
	}
	// Reduce ordinals count non-empty partitions from 0, so ordinal 0
	// always exists and always fails its first attempt.
	if faulty.Metrics.ReduceRetries == 0 {
		t.Error("ReduceRetries = 0, want > 0")
	}
	if faulty.Metrics.PairsEmitted != 12 {
		t.Errorf("PairsEmitted = %d, want 12 (no double counting)", faulty.Metrics.PairsEmitted)
	}
}

func TestFaultInjectionExhaustsRetries(t *testing.T) {
	r := wordCountRound(Config{FailureEveryN: 1, MaxRetries: 0})
	// MaxRetries defaults to 2 with injection on, so this recovers.
	if _, err := Run(r, []string{"a"}); err != nil {
		t.Fatalf("should recover: %v", err)
	}
	// An always-failing reduce exhausts retries and surfaces the error.
	always := Round[int, int, int, int]{
		Name:   "doomed",
		Map:    func(x int, emit func(int, int)) { emit(0, x) },
		Reduce: func(int, []int, func(int)) {},
		Config: Config{FailureEveryN: 1, MaxRetries: 1},
	}
	// FailureEveryN only fails attempt 0, so even MaxRetries 1 recovers;
	// instead prove the retry counter reflects both phases.
	res, err := Run(always, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MapRetries == 0 || res.Metrics.ReduceRetries == 0 {
		t.Errorf("retries = %+v, want both phases retried", res.Metrics)
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	doc := strings.Repeat("x ", 100)
	r := Round[string, string, int, int]{
		Name: "combined",
		Map: func(d string, emit func(string, int)) {
			for _, w := range strings.Fields(d) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int) []int {
			total := 0
			for _, v := range vs {
				total += v
			}
			return []int{total}
		},
		Reduce: func(_ string, vs []int, emit func(int)) {
			total := 0
			for _, v := range vs {
				total += v
			}
			emit(total)
		},
		Config: Config{Workers: 2},
	}
	res, err := Run(r, []string{doc, doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Outputs[0] != 200 {
		t.Fatalf("outputs = %v, want [200]", res.Outputs)
	}
	if res.Metrics.PairsEmitted != 200 {
		t.Errorf("PairsEmitted = %d, want 200 (pre-combine)", res.Metrics.PairsEmitted)
	}
	if res.Metrics.PairsShuffled >= 200 || res.Metrics.PairsShuffled < 1 {
		t.Errorf("PairsShuffled = %d, want a handful of partials", res.Metrics.PairsShuffled)
	}
}

func TestRecordKeysAndLoads(t *testing.T) {
	res, err := Run(wordCountRound(Config{RecordKeys: true, RecordLoads: true}),
		[]string{"b a a", "c b a"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Keys, []string{"a", "b", "c"}) {
		t.Errorf("Keys = %v, want [a b c]", res.Keys)
	}
	if !reflect.DeepEqual(res.Loads, []int{3, 2, 1}) {
		t.Errorf("Loads = %v, want [3 2 1]", res.Loads)
	}
}

func TestBoundedMemorySurfacesInMetrics(t *testing.T) {
	docs := make([]string, 50)
	for i := range docs {
		docs[i] = "w w w w"
	}
	res, err := Run(wordCountRound(Config{Partitions: 2, MaxBufferedPairs: 16}), docs)
	if err != nil {
		t.Fatal(err)
	}
	// A single key means a single partition regardless of the hash
	// seed, so the spill profile is exact: 200 pairs against a 16-pair
	// budget seal 12 runs of 16, leaving 8 live.
	if res.Metrics.SpillEvents != 12 || res.Metrics.SpilledPairs != 192 {
		t.Errorf("spill profile = %d events, %d pairs; want 12 and 192: %+v",
			res.Metrics.SpillEvents, res.Metrics.SpilledPairs, res.Metrics)
	}
	if res.Metrics.MaxLivePairs != 16 {
		t.Errorf("MaxLivePairs = %d, want exactly the 16-pair budget", res.Metrics.MaxLivePairs)
	}
	if res.Metrics.BytesSpilled != 0 {
		t.Errorf("BytesSpilled = %d without a SpillDir, want 0", res.Metrics.BytesSpilled)
	}
	if res.Metrics.Reducers != 1 || res.Metrics.MaxReducerInput != 200 {
		t.Errorf("grouping wrong under spills: %+v", res.Metrics)
	}
	if len(res.Outputs) != 1 || res.Outputs[0] != "w=200" {
		t.Errorf("outputs = %v, want [w=200]", res.Outputs)
	}
}

func TestDiskSpillThroughEngine(t *testing.T) {
	// The same workload with a SpillDir must produce identical outputs
	// and additionally report real disk traffic; fault injection on top
	// exercises re-reading spilled runs on reduce retry.
	docs := make([]string, 64)
	for i := range docs {
		docs[i] = "a b c d"
	}
	clean, err := Run(wordCountRound(Config{Partitions: 4, Workers: 2}), docs)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := Run(wordCountRound(Config{
		Partitions: 4, Workers: 2,
		MemoryBudget: 8, SpillDir: t.TempDir(),
		FailureEveryN: 2, MaxRetries: 3, MapChunk: 4,
	}), docs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spill.Outputs, clean.Outputs) {
		t.Errorf("spilled outputs %v != clean %v", spill.Outputs, clean.Outputs)
	}
	if spill.Metrics.BytesSpilled == 0 {
		t.Error("BytesSpilled = 0, want real disk spill traffic")
	}
	if spill.Metrics.RunsMerged == 0 {
		t.Error("RunsMerged = 0, want k-way merges at reduce time")
	}
	if spill.Metrics.MaxLivePairs > 8 {
		t.Errorf("MaxLivePairs = %d exceeds the 8-pair budget", spill.Metrics.MaxLivePairs)
	}
	if spill.Metrics.ReduceRetries == 0 {
		t.Error("ReduceRetries = 0: injection should have retried a streamed reduce")
	}
	if spill.Metrics.MaxReducerInput != clean.Metrics.MaxReducerInput ||
		spill.Metrics.Reducers != clean.Metrics.Reducers ||
		spill.Metrics.PairsShuffled != clean.Metrics.PairsShuffled {
		t.Errorf("logical metrics diverge under spill:\nclean %+v\nspill %+v",
			clean.Metrics, spill.Metrics)
	}
}

func TestSpillDirWithoutBudgetRejected(t *testing.T) {
	// SpillDir alone cannot spill anything (no budget means no seals);
	// silently running fully in memory would defeat the point, so the
	// misconfiguration is an error.
	_, err := Run(wordCountRound(Config{SpillDir: t.TempDir()}), []string{"a b"})
	if err == nil || !strings.Contains(err.Error(), "SpillDir without a memory budget") {
		t.Fatalf("err = %v, want the SpillDir-without-budget rejection", err)
	}
}

func TestDiskSpillOverflowPathRecordsLoads(t *testing.T) {
	// MaxReducerInput enforcement reads group sizes from the counting
	// pass over spilled runs; RecordLoads must survive that path.
	r := Round[int, int, int, int]{
		Name:        "spill-overflow",
		Map:         func(x int, emit func(int, int)) { emit(x%3, x) },
		Reduce:      func(k int, vs []int, emit func(int)) { emit(len(vs)) },
		Partitioner: func(k int) int { return k },
		Config: Config{
			Partitions: 4, MaxReducerInput: 10,
			MemoryBudget: 4, SpillDir: t.TempDir(),
			RecordLoads: true, RecordKeys: true,
		},
	}
	inputs := make([]int, 36) // keys 0,1,2 get 12 values each, limit 10
	for i := range inputs {
		inputs[i] = i
	}
	res, err := Run(r, inputs)
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
	if !reflect.DeepEqual(res.Keys, []int{0, 1, 2}) || !reflect.DeepEqual(res.Loads, []int{12, 12, 12}) {
		t.Errorf("keys/loads at failure = %v / %v, want [0 1 2] / [12 12 12]", res.Keys, res.Loads)
	}
	if res.Metrics.BytesSpilled == 0 {
		t.Error("expected disk spills before the overflow was detected")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(wordCountRound(Config{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 || res.Metrics.Reducers != 0 {
		t.Errorf("empty run: %+v", res.Metrics)
	}
}

func TestOverflowDiagnosisIsMemoryOnly(t *testing.T) {
	// A spilled round that blows the q limit must diagnose the overflow
	// (keys and loads) without re-reading the spilled runs: Stats and
	// collectKeyLoads both merge the resident run indexes in memory.
	docs := make([]string, 40)
	for i := range docs {
		docs[i] = "hot a b"
	}
	res, err := Run(wordCountRound(Config{
		Partitions: 2, MemoryBudget: 8, SpillDir: t.TempDir(),
		MaxReducerInput: 10, RecordLoads: true, RecordKeys: true,
	}), docs)
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
	if res.Metrics.BytesSpilled == 0 {
		t.Fatal("workload never spilled; test is vacuous")
	}
	if res.Metrics.DiskBytesRead != 0 {
		t.Errorf("overflow diagnosis read %d bytes from disk, want 0 (index merge only)",
			res.Metrics.DiskBytesRead)
	}
	if len(res.Keys) != 3 || len(res.Loads) != 3 {
		t.Fatalf("diagnosis incomplete: keys %v loads %v", res.Keys, res.Loads)
	}
	for i, k := range res.Keys {
		if res.Loads[i] != 40 {
			t.Errorf("key %q load = %d, want 40", k, res.Loads[i])
		}
	}
}

func TestCombinerPushDownThroughEngine(t *testing.T) {
	// The same spilled word count with and without a combiner: the
	// combiner run must write fewer spill bytes (the paper's
	// post-combine communication cost) and produce identical outputs.
	docs := make([]string, 64)
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := range docs {
		docs[i] = strings.Join(words, " ")
	}
	cfg := Config{Partitions: 2, Workers: 2, MemoryBudget: 8}
	mk := func(withCombiner bool, spillDir string) Round[string, string, int, string] {
		r := wordCountRound(cfg)
		r.Config.SpillDir = spillDir
		if withCombiner {
			r.Combine = func(_ string, vs []int) []int {
				total := 0
				for _, v := range vs {
					total += v
				}
				return []int{total}
			}
		}
		return r
	}
	raw, err := Run(mk(false, t.TempDir()), docs)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(mk(true, t.TempDir()), docs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(raw.Outputs, combined.Outputs) {
		t.Fatalf("combiner changed outputs:\nraw  %v\ncomb %v", raw.Outputs, combined.Outputs)
	}
	if raw.Metrics.BytesSpilled == 0 {
		t.Fatal("raw run never spilled; test is vacuous")
	}
	if combined.Metrics.BytesSpilled >= raw.Metrics.BytesSpilled {
		t.Errorf("BytesSpilled with combiner = %d, want < %d",
			combined.Metrics.BytesSpilled, raw.Metrics.BytesSpilled)
	}
	if raw.Metrics.DiskBytesRead == 0 {
		t.Error("raw spilled round reported zero DiskBytesRead after its reduce merge")
	}
	if combined.Metrics.DiskBytesRead >= raw.Metrics.DiskBytesRead {
		t.Errorf("DiskBytesRead with combiner = %d, want < %d (less spilled, less read back)",
			combined.Metrics.DiskBytesRead, raw.Metrics.DiskBytesRead)
	}
	if combined.Metrics.PairsEmitted != raw.Metrics.PairsEmitted {
		t.Errorf("PairsEmitted must stay pre-combine: %d vs %d",
			combined.Metrics.PairsEmitted, raw.Metrics.PairsEmitted)
	}
}
