// Package engine is the partitioned execution driver under the mr
// runtime: it runs one map-reduce round as a map phase fanning out to P
// shuffle partitions (internal/shuffle), schedules reduce *partitions*
// — not single keys — onto workers with the LPT balancer the paper's
// footnote 4 describes (core.BalanceLoads), and reports per-partition
// metrics, so the skew and replication-rate numbers the paper reasons
// about are measured on the real data path rather than reconstructed
// afterwards.
//
// The package is deliberately independent of internal/mr: mr's typed
// Job API is a thin veneer over Run, and multi-round pipelines (the
// paper's Section 6.3 two-phase matrix multiplication, the Section 7.1
// join-then-aggregate workloads) execute as a DAG of rounds through
// Graph.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shuffle"
)

// MapFunc transforms one input record into zero or more key-value
// pairs. It must be deterministic and side-effect free: the engine
// re-executes it when fault injection is enabled.
type MapFunc[I any, K comparable, V any] func(in I, emit func(K, V))

// ReduceFunc processes one reduce key with all its values.
type ReduceFunc[K comparable, V, O any] func(key K, values []V, emit func(O))

// CombineFunc optionally pre-aggregates one key's values inside a map
// task before shuffle.
type CombineFunc[K comparable, V any] func(key K, values []V) []V

// Config controls the execution of one round.
type Config struct {
	// Workers is the number of parallel map (and reduce) workers.
	// Zero means runtime.NumCPU().
	Workers int

	// MapChunk is the number of input records per map task. Zero means
	// an automatic chunk targeting ~4 tasks per worker.
	MapChunk int

	// Partitions is the shuffle partition count P; <= 0 selects
	// shuffle.DefaultPartitions().
	Partitions int

	// MemoryBudget is the per-partition memory budget in buffered
	// pairs: a shuffle partition whose live buffer reaches the budget
	// seals its run. With SpillDir set, sealed runs are encoded to
	// disk and reduce partitions stream a k-way merge over them;
	// without it sealed runs stay in memory and only spill pressure is
	// reported. MaxBufferedPairs is the older alias, honored when
	// MemoryBudget is zero.
	MemoryBudget     int
	MaxBufferedPairs int

	// SpillDir is the directory for spill run files (temp files,
	// deleted when the round finishes). Empty means no disk spill.
	SpillDir string

	// CompactionConcurrency sizes the shuffle's background compaction
	// worker pool on the streaming path: zero selects the default pool,
	// negative compacts inline with sealing (single-threaded, as the
	// barrier path always does). SpoolRotateBytes bounds how many dead
	// (compacted or aborted) bytes a streaming spool file accumulates
	// before it is rotated and its disk reclaimed mid-round: zero
	// selects the default threshold, negative disables rotation. Both
	// pass straight through to the shuffle.
	CompactionConcurrency int
	SpoolRotateBytes      int64

	// MaxReducerInput, when positive, fails the round before the reduce
	// phase if any key group exceeds it (the paper's reducer size limit
	// q enforced at runtime).
	MaxReducerInput int

	// RecordLoads asks for per-reducer input sizes in global sorted key
	// order; RecordKeys additionally exports the keys themselves.
	RecordLoads bool
	RecordKeys  bool

	// FailureEveryN deterministically fails each task's first attempt
	// whenever the task ordinal is divisible by FailureEveryN; failed
	// tasks retry up to MaxRetries times (default 2 when injection is
	// on). Map tasks fail *after* emitting their output, so injection
	// exercises the streaming path's attempt fencing (flushed pairs of
	// the failed attempt are discarded, the retry re-emits). Reduce
	// tasks are partitions; their ordinal counts non-empty partitions
	// in ascending order, so injection always hits at least one reduce
	// task regardless of how keys hashed.
	FailureEveryN int
	MaxRetries    int

	// ReduceSplitPairs, when positive, splits heavy reduce partitions'
	// merges into class-aligned key ranges of roughly this many pairs —
	// planned from the resident run indexes, never splitting a key
	// group — and LPT-schedules the range units, not whole partitions,
	// onto the reduce workers. Disjoint ranges of one partition then
	// merge and reduce concurrently over a shared read surface (one set
	// of spool handles and mmaps per partition), and the output is
	// byte-identical to the unsplit round: ranges reassemble in key
	// order before global assembly. Zero or negative keeps
	// whole-partition scheduling.
	ReduceSplitPairs int
	// ReduceRangeConcurrency caps how many ranges one partition may be
	// split into — the partition's maximum reduce parallelism. Zero
	// means the worker count.
	ReduceRangeConcurrency int

	// LegacyMerge opts the round out of streaming shuffle ingestion and
	// back onto the barrier path: every map task's output is buffered
	// whole and merged after the map phase ends. Outputs are identical
	// either way, as are PairsEmitted, Reducers and MaxReducerInput
	// (the differential suite pins this); only the physical profile —
	// resident memory, spill timing, run boundaries — differs. With a
	// Combine func, PairsShuffled (a post-combine count) additionally
	// depends on where the runtime applied the combiner, which the two
	// paths do at different points — like spill-on vs spill-off, it is
	// comparable only within one configuration. Tests and benchmarks
	// use LegacyMerge to compare the two data paths.
	LegacyMerge bool

	// Recorder, when non-nil, captures the round's lifecycle as timed
	// events: phase boundaries on the round lane, map/reduce task
	// attempts on per-worker lanes, and the shuffle's block flushes,
	// seals, fences, compactions and reduce merges on per-partition
	// lanes (the shuffle inherits the same recorder). Export with
	// obs.WriteTrace / obs.WritePrometheus after Run returns. Nil keeps
	// the hot path free of everything but a nil check.
	Recorder *obs.Recorder
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) memoryBudget() int {
	if c.MemoryBudget > 0 {
		return c.MemoryBudget
	}
	return c.MaxBufferedPairs
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	if c.FailureEveryN > 0 {
		return 2
	}
	return 0
}

// Round is one typed map-reduce round.
type Round[I any, K comparable, V, O any] struct {
	Name    string
	Map     MapFunc[I, K, V]
	Reduce  ReduceFunc[K, V, O]
	Combine CombineFunc[K, V] // optional

	// ReduceBatch, when set, replaces Reduce on the reduce path and
	// opts the round into the shuffle's batch read contract
	// (Partition.ForEachGroupBatch): each spilled group's value section
	// is read in one pass and decoded into a scratch slice that the
	// next group reuses, so the values slice is valid only during the
	// call — the function must not retain it (copy to keep). Reduce
	// stays the compatible default: its slices are the function's to
	// keep.
	ReduceBatch ReduceFunc[K, V, O]

	// Partitioner, when set, overrides hash placement of keys onto
	// shuffle partitions (reduced modulo the effective power-of-two
	// partition count). Schemas with an explicit reducer layout, and
	// tests that need to corner a key in its own partition, use this.
	Partitioner func(K) int

	Config Config
}

// PartitionStat is the realized profile of one shuffle partition.
type PartitionStat struct {
	// Pairs and Keys are the partition's share of the shuffle.
	Pairs int64
	Keys  int64
	// MaxGroup is the partition's largest key group (its local q).
	MaxGroup int64
	// Worker is the reduce worker the LPT scheduler placed the
	// partition on (-1 when the round failed before scheduling).
	Worker int
}

// Metrics is the communication profile of one executed round. The
// scalar fields mirror the paper's quantities; Partitions carries the
// per-partition breakdown from the real exchange.
type Metrics struct {
	MapInputs         int64
	PairsEmitted      int64 // pre-combine: the paper's communication cost
	PairsShuffled     int64 // post-combine pairs crossing the exchange
	Reducers          int64 // distinct keys
	MaxReducerInput   int64 // realized q
	TotalReducerInput int64
	Outputs           int64
	MapRetries        int64
	ReduceRetries     int64

	// Partitions is the per-partition profile (length P).
	Partitions []PartitionStat
	// Makespan is the LPT-scheduled heaviest worker load, in pairs;
	// IdealMakespan is the load-balance floor. Their ratio is the
	// residual skew the partitioning did not resolve. With
	// ReduceSplitPairs set both are computed over range units, so they
	// reflect the schedule actually executed.
	Makespan      int64
	IdealMakespan int64
	// ReduceRanges is the number of key-range units that split
	// partitions' reduce merges executed as (0 when no partition was
	// split); ReduceRangeSkew is max/mean pair load across those units
	// (1 = perfectly balanced, 0 when unsplit) — the residual imbalance
	// the index-driven split could not remove without splitting a
	// group.
	ReduceRanges    int64
	ReduceRangeSkew float64
	// SpillEvents and SpilledPairs report bounded-memory pressure;
	// BytesSpilled and RunsMerged report the realized disk traffic and
	// reduce-time merge width when a SpillDir made the spills real.
	// DiskBytesRead is the total read back from spill run files over
	// the whole round — profiling (Stats) and overflow diagnosis merge
	// resident run indexes in memory and contribute nothing to it, so
	// it measures the reduce merge (plus compaction re-reads) alone.
	// IndexBytesSpilled is the footer-index metadata written alongside
	// BytesSpilled; total spill file bytes are the sum of the two.
	SpillEvents       int64
	SpilledPairs      int64
	BytesSpilled      int64
	IndexBytesSpilled int64
	RunsMerged        int64
	DiskBytesRead     int64
	// SwapBytes is the raw bytes the streaming path's pressure relief
	// swapped to stash files and read back — bookkeeping traffic, kept
	// out of BytesSpilled so spilled volume stays the deterministic
	// communication cost. BytesReclaimed is the total size of spill
	// files deleted while the round was still running (spool rotation,
	// compaction retiring its inputs): disk handed back before Close.
	SwapBytes      int64
	BytesReclaimed int64
	// MaxLivePairs is the high-water mark of any shuffle partition's
	// live buffer; under a memory budget it never exceeds the budget.
	MaxLivePairs int
	// PeakResidentPairs is the whole-round high-water mark of pairs
	// resident in shuffle memory (live runs, staged streaming blocks,
	// in-memory sealed runs). On the streaming path with a SpillDir it
	// stays under P*MemoryBudget + workers*BlockPairs — the runtime's
	// whole-round bounded-memory guarantee, as opposed to
	// MaxLivePairs's per-partition one.
	PeakResidentPairs int64
	// SpillOverlapNs is the time the streaming path spent absorbing,
	// sealing and spilling while map tasks were still running — work
	// the legacy barrier serialized after the map phase. FinishDrainNs
	// is the residual post-map drain: the barrier that remains.
	SpillOverlapNs int64
	FinishDrainNs  int64
	// ReducerInputLog2 is the log2-bucketed distribution of reducer
	// input sizes — the paper's q distribution. Bucket i counts the
	// reducers whose input lies in [2^i, 2^(i+1)); trimmed after the
	// last non-empty bucket.
	ReducerInputLog2 []int64
}

// PartitionSkew is max/mean partition pairs (1 = perfectly even).
func (m Metrics) PartitionSkew() float64 {
	if len(m.Partitions) == 0 || m.PairsShuffled == 0 {
		return 0
	}
	var max int64
	for _, p := range m.Partitions {
		if p.Pairs > max {
			max = p.Pairs
		}
	}
	return float64(max) / (float64(m.PairsShuffled) / float64(len(m.Partitions)))
}

// Result is the outcome of one round.
type Result[K comparable, O any] struct {
	// Outputs are the reduce outputs in global deterministic order:
	// keys ascending (shuffle.SortKeys order), emission order within a
	// key.
	Outputs []O
	// Keys and Loads, when Config.RecordKeys / RecordLoads were set,
	// are the reduce keys in that same global order and their input
	// sizes.
	Keys    []K
	Loads   []int
	Metrics Metrics
}

// ErrReducerOverflow is returned (wrapped) when a key group exceeds
// Config.MaxReducerInput.
var ErrReducerOverflow = errors.New("engine: reducer input exceeds configured maximum")

// errInjected marks a deterministic injected task failure.
var errInjected = errors.New("engine: injected task failure")

// Run executes one round over inputs. On error the returned Result
// still carries the metrics accumulated up to the failure point.
func Run[I any, K comparable, V, O any](r Round[I, K, V, O], inputs []I) (res Result[K, O], retErr error) {
	res.Metrics.MapInputs = int64(len(inputs))
	cfg := r.Config
	if cfg.SpillDir != "" && cfg.memoryBudget() <= 0 {
		return res, fmt.Errorf(
			"engine: round %q sets SpillDir without a memory budget; set Config.MemoryBudget (pairs per partition) to enable spilling",
			r.Name)
	}

	sh := shuffle.New[K, V](shuffle.Options{
		Partitions:            cfg.Partitions,
		MaxBufferedPairs:      cfg.memoryBudget(),
		SpillDir:              cfg.SpillDir,
		CompactionConcurrency: cfg.CompactionConcurrency,
		SpoolRotateBytes:      cfg.SpoolRotateBytes,
		Recorder:              cfg.Recorder,
	})
	defer func() {
		if err := sh.Close(); err != nil && retErr == nil {
			retErr = fmt.Errorf("engine: removing spill files of round %q: %w", r.Name, err)
		}
	}()
	if r.Partitioner != nil {
		sh.SetPartitioner(r.Partitioner)
	}
	if r.Combine != nil {
		// Push the combiner down into the shuffle's sealing path: under
		// a memory budget each key group is combined again before a run
		// is sealed (and across runs during compaction), so spilled
		// bytes track the post-combine communication cost. Safe because
		// CombineFunc is required to be semantically transparent.
		sh.SetCombiner(r.Combine)
	}

	if err := runMapPhase(r, inputs, sh, &res.Metrics); err != nil {
		return res, err
	}

	rlane := cfg.Recorder.Lane(obs.LaneRound, 0)
	rlane.Begin(obs.OpPhaseProfile, 0, 0)
	st, err := sh.Stats()
	rlane.End(obs.OpPhaseProfile, 0, errFlag(err))
	if err != nil {
		return res, fmt.Errorf("engine: profiling shuffle of round %q: %w", r.Name, err)
	}
	res.Metrics.PairsShuffled = st.Pairs
	res.Metrics.Reducers = st.Keys
	res.Metrics.MaxReducerInput = st.MaxGroup
	res.Metrics.TotalReducerInput = st.Pairs
	res.Metrics.SpillEvents = st.SpillEvents
	res.Metrics.SpilledPairs = st.SpilledPairs
	res.Metrics.BytesSpilled = st.BytesSpilled
	res.Metrics.IndexBytesSpilled = st.IndexBytesSpilled
	res.Metrics.RunsMerged = st.RunsMerged
	res.Metrics.SwapBytes = st.SwapBytes
	res.Metrics.BytesReclaimed = st.BytesReclaimed
	res.Metrics.MaxLivePairs = st.MaxLivePairs
	res.Metrics.PeakResidentPairs = st.PeakResidentPairs
	res.Metrics.ReducerInputLog2 = st.GroupSizeLog2
	res.Metrics.Partitions = make([]PartitionStat, st.Partitions)
	for p := range res.Metrics.Partitions {
		res.Metrics.Partitions[p] = PartitionStat{
			Pairs:    st.PartitionPairs[p],
			Keys:     st.PartitionKeys[p],
			MaxGroup: st.PartitionMaxGroup[p],
			Worker:   -1,
		}
	}

	if max := cfg.MaxReducerInput; max > 0 && st.MaxGroup > int64(max) {
		// The reduce phase never runs, but callers diagnosing which
		// reducers blew the q limit still get keys and loads.
		if cfg.RecordLoads || cfg.RecordKeys {
			keys, loads, err := collectKeyLoads(sh, int(st.Keys))
			if err != nil {
				return res, err
			}
			res.Loads = loads
			if cfg.RecordKeys {
				res.Keys = keys
			}
		}
		res.Metrics.DiskBytesRead = sh.DiskBytesRead()
		return res, fmt.Errorf("%w: round %q saw reducer with %d inputs, limit %d",
			ErrReducerOverflow, r.Name, st.MaxGroup, max)
	}

	rlane.Begin(obs.OpPhaseReduce, int64(st.Partitions), 0)
	res, retErr = runReducePhase(r, sh, st, res)
	rlane.End(obs.OpPhaseReduce, res.Metrics.Outputs, errFlag(retErr))
	res.Metrics.DiskBytesRead = sh.DiskBytesRead()
	return res, retErr
}

// errFlag renders an error as the 0/1 "err" argument of a span's End
// event.
func errFlag(err error) int64 {
	if err != nil {
		return 1
	}
	return 0
}

// mapTask is one map task's input slice and ordinal.
type mapTask struct{ lo, hi, idx int }

// splitTasks cuts the inputs into map tasks of cfg's chunk size.
func splitTasks(cfg Config, n int) []mapTask {
	workers := cfg.workers()
	chunk := cfg.MapChunk
	if chunk <= 0 {
		chunk = (n + workers*4 - 1) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	var tasks []mapTask
	for lo, idx := 0, 0; lo < n; lo, idx = lo+chunk, idx+1 {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		tasks = append(tasks, mapTask{lo, hi, idx})
	}
	return tasks
}

// runMapPhase executes map tasks in parallel. By default each task
// streams its output into the shuffle as it is produced (block-based
// ingestion: full blocks flush to their partition, which absorbs,
// seals and spills concurrently with still-running map tasks); with
// Config.LegacyMerge every task's output is buffered whole and merged
// after the map phase ends.
func runMapPhase[I any, K comparable, V, O any](r Round[I, K, V, O], inputs []I, sh *shuffle.Shuffle[K, V], met *Metrics) (retErr error) {
	cfg := r.Config
	tasks := splitTasks(cfg, len(inputs))
	// The map-phase span covers mapping plus (on the streaming path) the
	// Finish drain, so partition-lane seal/fence spans inside it that
	// overlap worker map-task spans are exactly SpillOverlapNs.
	rlane := cfg.Recorder.Lane(obs.LaneRound, 0)
	rlane.Begin(obs.OpPhaseMap, int64(len(tasks)), 0)
	defer func() { rlane.End(obs.OpPhaseMap, met.PairsEmitted, errFlag(retErr)) }()
	if cfg.LegacyMerge {
		return runMapPhaseLegacy(r, inputs, tasks, sh, met)
	}

	ing := sh.NewIngester()
	emitted := make([]int64, len(tasks))
	retries := make([]int64, len(tasks))
	errs := make([]error, len(tasks))

	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wlane := cfg.Recorder.Lane(obs.LaneWorker, w)
			for ti := range taskCh {
				t := tasks[ti]
				attempts := 0
				for {
					wlane.Begin(obs.OpMapTask, int64(t.idx), int64(attempts))
					count, err, fatal := attemptMapTaskStreaming(r, inputs[t.lo:t.hi], ing, t.idx, attempts)
					wlane.End(obs.OpMapTask, count, errFlag(err))
					if err == nil {
						emitted[ti] = count
						break
					}
					if fatal {
						// A commit error means the shuffle's absorption or
						// spill failed with the attempt's pairs possibly
						// already folded in; retrying would double them.
						errs[ti] = fmt.Errorf("engine: shuffle ingest of round %q: %w", r.Name, err)
						break
					}
					attempts++
					retries[ti]++
					if attempts > cfg.maxRetries() {
						errs[ti] = fmt.Errorf("engine: map task %d of round %q failed after %d attempts: %w",
							t.idx, r.Name, attempts, err)
						break
					}
				}
			}
		}(w)
	}
	for ti := range tasks {
		taskCh <- ti
	}
	close(taskCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for ti := range tasks {
		met.PairsEmitted += emitted[ti]
		met.MapRetries += retries[ti]
	}
	if err := ing.Finish(); err != nil {
		return fmt.Errorf("engine: shuffle ingest of round %q: %w", r.Name, err)
	}
	met.SpillOverlapNs = ing.OverlapNs()
	met.FinishDrainNs = ing.FinishNs()
	return nil
}

// attemptMapTaskStreaming runs one attempt of a map task against the
// streaming ingester. Injected failures fire after the task emitted
// (and flushed) its output, so the attempt's staged pairs must be
// fenced off by Abort and re-emitted by the retry. fatal marks commit
// errors, which must fail the round rather than retry the task.
func attemptMapTaskStreaming[I any, K comparable, V, O any](r Round[I, K, V, O], records []I, ing *shuffle.Ingester[K, V], taskIdx, attempt int) (n int64, err error, fatal bool) {
	tw := ing.Task(taskIdx, attempt)
	count := runMapAttempt(r, records, tw.Emit)
	if fe := r.Config.FailureEveryN; fe > 0 && attempt == 0 && taskIdx%fe == 0 {
		tw.Abort()
		return 0, errInjected, false
	}
	if err := tw.Commit(); err != nil {
		return 0, err, true
	}
	return count, nil, false
}

// runMapPhaseLegacy is the barrier path: every task's output is
// buffered whole, then merged with the shuffle's per-partition
// goroutines after the map phase ends.
func runMapPhaseLegacy[I any, K comparable, V, O any](r Round[I, K, V, O], inputs []I, tasks []mapTask, sh *shuffle.Shuffle[K, V], met *Metrics) error {
	cfg := r.Config
	buffers := make([]*shuffle.TaskBuffer[K, V], len(tasks))
	emitted := make([]int64, len(tasks))
	retries := make([]int64, len(tasks))
	errs := make([]error, len(tasks))

	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wlane := cfg.Recorder.Lane(obs.LaneWorker, w)
			for ti := range taskCh {
				t := tasks[ti]
				attempts := 0
				for {
					wlane.Begin(obs.OpMapTask, int64(t.idx), int64(attempts))
					buf, count, err := attemptMapTask(r, inputs[t.lo:t.hi], sh, t.idx, attempts)
					wlane.End(obs.OpMapTask, count, errFlag(err))
					if err == nil {
						buffers[ti], emitted[ti] = buf, count
						break
					}
					attempts++
					retries[ti]++
					if attempts > cfg.maxRetries() {
						errs[ti] = fmt.Errorf("engine: map task %d of round %q failed after %d attempts: %w",
							t.idx, r.Name, attempts, err)
						break
					}
				}
			}
		}(w)
	}
	for ti := range tasks {
		taskCh <- ti
	}
	close(taskCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for ti := range tasks {
		met.PairsEmitted += emitted[ti]
		met.MapRetries += retries[ti]
	}
	if err := sh.Merge(buffers); err != nil {
		return fmt.Errorf("engine: shuffle merge of round %q: %w", r.Name, err)
	}
	return nil
}

// attemptMapTask runs one attempt of a map task on the barrier path,
// returning the task's shuffle buffer and its pre-combine emission
// count. Like the streaming path, injected failures fire after the
// task produced its output: the discarded buffer is the legacy
// equivalent of an aborted streaming attempt.
func attemptMapTask[I any, K comparable, V, O any](r Round[I, K, V, O], records []I, sh *shuffle.Shuffle[K, V], taskIdx, attempt int) (*shuffle.TaskBuffer[K, V], int64, error) {
	buf := sh.NewTaskBuffer()
	count := runMapAttempt(r, records, buf.Emit)
	if fe := r.Config.FailureEveryN; fe > 0 && attempt == 0 && taskIdx%fe == 0 {
		return nil, 0, errInjected
	}
	return buf, count, nil
}

// runMapAttempt maps the records into emit, returning the pre-combine
// emission count. With a combiner the task groups locally first,
// combines each key's values, and only then emits the (smaller)
// combined output.
func runMapAttempt[I any, K comparable, V, O any](r Round[I, K, V, O], records []I, emit func(K, V)) int64 {
	var count int64
	if r.Combine == nil {
		counted := func(k K, v V) {
			emit(k, v)
			count++
		}
		for _, rec := range records {
			r.Map(rec, counted)
		}
		return count
	}
	local := make(map[K][]V)
	collect := func(k K, v V) {
		local[k] = append(local[k], v)
		count++
	}
	for _, rec := range records {
		r.Map(rec, collect)
	}
	for k, vs := range local {
		for _, v := range r.Combine(k, vs) {
			emit(k, v)
		}
	}
	return count
}

// partResult is one reduced partition, keys in sorted order.
type partResult[K comparable, O any] struct {
	keys  []K
	outs  [][]O
	loads []int
}

// reduceUnit is one schedulable piece of the reduce phase: a whole
// partition (rng < 0) or one planned key range of a split partition.
type reduceUnit struct {
	part int
	rng  int
}

// partReader lazily opens one partition's shared RangeReader and
// refcounts it across the partition's concurrently-executing range
// units: the first active unit opens (taking the disk-read semaphore
// slot), the last active one closes. The slot is therefore held only
// while at least one unit of the partition is actually running, which
// is what keeps the semaphore deadlock-free under LPT's static
// per-worker unit queues.
type partReader[K comparable, V any] struct {
	mu    sync.Mutex
	part  shuffle.Partition[K, V]
	rr    *shuffle.RangeReader[K, V]
	users int
}

func (pr *partReader[K, V]) acquire() (*shuffle.RangeReader[K, V], error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.rr == nil {
		rr, err := pr.part.OpenRangeReader()
		if err != nil {
			return nil, err
		}
		pr.rr = rr
	}
	pr.users++
	return pr.rr, nil
}

func (pr *partReader[K, V]) release() error {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.users--
	if pr.users > 0 {
		return nil
	}
	rr := pr.rr
	pr.rr = nil
	return rr.Close()
}

// runReducePhase schedules reduce units onto workers with the LPT
// balancer — whole non-empty partitions by default; with
// Config.ReduceSplitPairs, heavy partitions split into class-aligned
// key-range units weighted by indexed pair load — reduces each unit's
// keys in sorted order, and assembles the outputs in global key order.
// Range units of one partition reassemble in range order first, so the
// output is byte-identical to the unsplit round.
func runReducePhase[I any, K comparable, V, O any](r Round[I, K, V, O], sh *shuffle.Shuffle[K, V], st shuffle.Stats, res Result[K, O]) (Result[K, O], error) {
	cfg := r.Config
	workers := cfg.workers()
	P := sh.NumPartitions()

	// Plan key-range splits for partitions heavier than the target.
	// Planning is a counting merge over the resident indexes — no disk
	// read — and never splits an order-equivalence class.
	ranges := make([][]shuffle.KeyRange[K], P)
	if sp := cfg.ReduceSplitPairs; sp > 0 {
		maxRanges := cfg.ReduceRangeConcurrency
		if maxRanges <= 0 {
			// A split target is an explicit opt-in: keep at least two
			// ranges even with a single worker so the split happens.
			maxRanges = workers
			if maxRanges < 2 {
				maxRanges = 2
			}
		}
		for p := 0; p < P; p++ {
			if st.PartitionKeys[p] == 0 || st.PartitionPairs[p] <= int64(sp) {
				continue
			}
			ranges[p] = sh.Partition(p).PlanReduceRanges(int64(sp), maxRanges)
		}
	}

	// One schedulable unit per partition — or per planned range —
	// weighted by indexed pair load, LPT-assigned to workers. With no
	// splits this degenerates to exactly the whole-partition schedule.
	var units []reduceUnit
	var loads []int
	for p := 0; p < P; p++ {
		if rs := ranges[p]; rs != nil {
			for i := range rs {
				units = append(units, reduceUnit{p, i})
				loads = append(loads, int(rs[i].Pairs))
			}
		} else {
			units = append(units, reduceUnit{p, -1})
			loads = append(loads, int(st.PartitionPairs[p]))
		}
	}
	assignment, makespan := core.BalanceLoads(loads, workers)
	res.Metrics.Makespan = makespan
	res.Metrics.IdealMakespan = core.IdealMakespan(loads, workers)
	perWorker := make([][]int, workers)
	var rangeUnits, maxRangeLoad, sumRangeLoad int64
	for u := range units {
		if units[u].rng <= 0 {
			// The partition's worker is where its first unit landed.
			res.Metrics.Partitions[units[u].part].Worker = assignment[u]
		}
		if units[u].rng >= 0 {
			rangeUnits++
			l := int64(loads[u])
			sumRangeLoad += l
			if l > maxRangeLoad {
				maxRangeLoad = l
			}
		}
		perWorker[assignment[u]] = append(perWorker[assignment[u]], u)
	}
	res.Metrics.ReduceRanges = rangeUnits
	if rangeUnits > 0 && sumRangeLoad > 0 {
		res.Metrics.ReduceRangeSkew = float64(maxRangeLoad) / (float64(sumRangeLoad) / float64(rangeUnits))
	}

	// Reduce-task ordinals: non-empty partitions in ascending order, so
	// fault injection is independent of key placement. A split
	// partition's injection fires on its first range unit only, keeping
	// the injected-failure count identical to the unsplit round.
	ordinal := make([]int, P)
	next := 0
	for p := 0; p < P; p++ {
		if st.PartitionKeys[p] > 0 {
			ordinal[p] = next
			next++
		} else {
			ordinal[p] = -1
		}
	}

	results := make([]partResult[K, O], P)
	rangeResults := make([][]partResult[K, O], P)
	readers := make([]partReader[K, V], P)
	for p := 0; p < P; p++ {
		if ranges[p] != nil {
			rangeResults[p] = make([]partResult[K, O], len(ranges[p]))
		}
		readers[p].part = sh.Partition(p)
	}
	retries := make([]int64, len(units))
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		if len(perWorker[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, us []int) {
			defer wg.Done()
			wlane := cfg.Recorder.Lane(obs.LaneWorker, w)
			for _, u := range us {
				p, rng := units[u].part, units[u].rng
				if ordinal[p] < 0 {
					continue
				}
				if rng < 0 {
					part := sh.Partition(p)
					attempts := 0
					for {
						wlane.Begin(obs.OpReduceTask, int64(p), int64(attempts))
						pr, err := attemptReducePartition(r, part, ordinal[p], attempts)
						wlane.End(obs.OpReduceTask, int64(len(pr.keys)), errFlag(err))
						if err == nil {
							results[p] = pr
							break
						}
						attempts++
						retries[u]++
						if attempts > cfg.maxRetries() {
							errs[u] = fmt.Errorf("engine: reduce partition %d of round %q failed after %d attempts: %w",
								p, r.Name, attempts, err)
							break
						}
					}
					continue
				}
				rr, err := readers[p].acquire()
				if err != nil {
					errs[u] = fmt.Errorf("engine: opening partition %d for range reduce of round %q: %w",
						p, r.Name, err)
					continue
				}
				rlane := cfg.Recorder.Lane(obs.LaneRange, u)
				attempts := 0
				for {
					wlane.Begin(obs.OpReduceTask, int64(p), int64(attempts))
					rlane.Begin(obs.OpReduceRange, int64(p), int64(rng))
					pr, err := attemptReduceRange(r, rr, ranges[p][rng], rng == 0, ordinal[p], attempts)
					rlane.End(obs.OpReduceRange, int64(len(pr.keys)), errFlag(err))
					wlane.End(obs.OpReduceTask, int64(len(pr.keys)), errFlag(err))
					if err == nil {
						rangeResults[p][rng] = pr
						break
					}
					attempts++
					retries[u]++
					if attempts > cfg.maxRetries() {
						errs[u] = fmt.Errorf("engine: reduce partition %d range %d of round %q failed after %d attempts: %w",
							p, rng, r.Name, attempts, err)
						break
					}
				}
				if cerr := readers[p].release(); cerr != nil && errs[u] == nil {
					errs[u] = fmt.Errorf("engine: closing partition %d range reader of round %q: %w",
						p, r.Name, cerr)
				}
			}
		}(w, perWorker[w])
	}
	wg.Wait()

	for u := range units {
		if errs[u] != nil {
			return res, errs[u]
		}
		res.Metrics.ReduceRetries += retries[u]
	}

	// Reassemble split partitions in range order: the ranges partition
	// the key space in canonical order, so concatenation reproduces the
	// whole-partition merge's key sequence exactly.
	for p := 0; p < P; p++ {
		if ranges[p] == nil {
			continue
		}
		var pr partResult[K, O]
		for _, rpr := range rangeResults[p] {
			pr.keys = append(pr.keys, rpr.keys...)
			pr.outs = append(pr.outs, rpr.outs...)
			pr.loads = append(pr.loads, rpr.loads...)
		}
		results[p] = pr
	}

	// Global assembly: all keys sorted once, outputs concatenated in
	// that order — the runtime's deterministic output contract.
	totalKeys := int(st.Keys)
	allKeys := make([]K, 0, totalKeys)
	type ref struct{ p, i int }
	refs := make(map[K]ref, totalKeys)
	for p := 0; p < P; p++ {
		for i, k := range results[p].keys {
			allKeys = append(allKeys, k)
			refs[k] = ref{p, i}
		}
	}
	shuffle.SortKeys(allKeys)

	var outs []O
	for _, k := range allKeys {
		rf := refs[k]
		outs = append(outs, results[rf.p].outs[rf.i]...)
	}
	res.Outputs = outs
	res.Metrics.Outputs = int64(len(outs))
	if cfg.RecordLoads || cfg.RecordKeys {
		res.Loads = make([]int, len(allKeys))
		for i, k := range allKeys {
			rf := refs[k]
			res.Loads[i] = results[rf.p].loads[rf.i]
		}
	}
	if cfg.RecordKeys {
		res.Keys = allKeys
	}
	return res, nil
}

// collectKeyLoads gathers every key's input size in global sorted key
// order directly from the shuffle, for failure paths that never reach
// the reduce phase. It reuses the counting pass's in-memory index
// merge (ForEachGroupCount), so diagnosing an overflow costs zero
// run-file reads — the round's spilled data is never scanned a second
// time just to report which reducers blew the limit.
func collectKeyLoads[K comparable, V any](sh *shuffle.Shuffle[K, V], totalKeys int) ([]K, []int, error) {
	allKeys := make([]K, 0, totalKeys)
	sizes := make(map[K]int, totalKeys)
	for p := 0; p < sh.NumPartitions(); p++ {
		err := sh.Partition(p).ForEachGroupCount(func(k K, count int) error {
			allKeys = append(allKeys, k)
			sizes[k] = count
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	shuffle.SortKeys(allKeys)
	loads := make([]int, len(allKeys))
	for i, k := range allKeys {
		loads[i] = sizes[k]
	}
	return allKeys, loads, nil
}

// attemptReducePartition runs one attempt of a partition's reduce task,
// streaming the partition's key groups in sorted order through the
// shuffle's k-way merge: only one group's values are resident per run
// at a time, so a spilled partition reduces within the memory budget.
func attemptReducePartition[I any, K comparable, V, O any](r Round[I, K, V, O], part shuffle.Partition[K, V], taskOrdinal, attempt int) (partResult[K, O], error) {
	if fe := r.Config.FailureEveryN; fe > 0 && attempt == 0 && taskOrdinal%fe == 0 {
		return partResult[K, O]{}, errInjected
	}
	var pr partResult[K, O]
	reduce, each := r.Reduce, part.ForEachGroup
	if r.ReduceBatch != nil {
		// The batch contract: one value-section read and one batch
		// decode per group, values only valid during the call.
		reduce, each = r.ReduceBatch, part.ForEachGroupBatch
	}
	err := each(func(k K, vs []V) error {
		pr.keys = append(pr.keys, k)
		pr.loads = append(pr.loads, len(vs))
		var outs []O
		reduce(k, vs, func(o O) { outs = append(outs, o) })
		pr.outs = append(pr.outs, outs)
		return nil
	})
	if err != nil {
		return partResult[K, O]{}, err
	}
	return pr, nil
}

// attemptReduceRange runs one attempt of a single key-range unit of a
// split partition, through the partition's shared RangeReader. Fault
// injection fires only on the partition's first range (first == true),
// so a split round injects exactly as many failures as an unsplit one.
func attemptReduceRange[I any, K comparable, V, O any](r Round[I, K, V, O], rr *shuffle.RangeReader[K, V], kr shuffle.KeyRange[K], first bool, taskOrdinal, attempt int) (partResult[K, O], error) {
	if fe := r.Config.FailureEveryN; fe > 0 && first && attempt == 0 && taskOrdinal%fe == 0 {
		return partResult[K, O]{}, errInjected
	}
	var pr partResult[K, O]
	reduce, batch := r.Reduce, false
	if r.ReduceBatch != nil {
		reduce, batch = r.ReduceBatch, true
	}
	err := rr.ForEachGroupRange(kr, batch, func(k K, vs []V) error {
		pr.keys = append(pr.keys, k)
		pr.loads = append(pr.loads, len(vs))
		var outs []O
		reduce(k, vs, func(o O) { outs = append(outs, o) })
		pr.outs = append(pr.outs, outs)
		return nil
	})
	if err != nil {
		return partResult[K, O]{}, err
	}
	return pr, nil
}

// SortKeys re-exports the shuffle's canonical key ordering for callers
// assembling their own output.
func SortKeys[K comparable](keys []K) { shuffle.SortKeys(keys) }
