package engine

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// splitRound tokenizes docs into (word, 1) pairs and passes them on.
func splitRound() Round[string, string, int, string] {
	return Round[string, string, int, string]{
		Name: "split",
		Map: func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		Reduce: func(w string, counts []int, emit func(string)) {
			for range counts {
				emit(w)
			}
		},
	}
}

// countRound counts word occurrences.
func countRound(name string) Round[string, string, int, string] {
	return Round[string, string, int, string]{
		Name: name,
		Map:  func(w string, emit func(string, int)) { emit(w, 1) },
		Reduce: func(w string, counts []int, emit func(string)) {
			emit(w + "=" + itoa(len(counts)))
		},
	}
}

func TestGraphLinearThreeRounds(t *testing.T) {
	// Round 1 tokenizes, round 2 counts, round 3 buckets counts into a
	// histogram — an N=3 pipeline through the engine.
	hist := Round[string, int, int, string]{
		Name: "histogram",
		Map: func(wc string, emit func(int, int)) {
			eq := strings.IndexByte(wc, '=')
			n := 0
			for _, c := range wc[eq+1:] {
				n = n*10 + int(c-'0')
			}
			emit(n, 1)
		},
		Reduce: func(count int, ones []int, emit func(string)) {
			emit(itoa(count) + "x" + itoa(len(ones)))
		},
	}
	g := NewGraph().
		Add("split", Stage(splitRound())).
		Add("count", Stage(countRound("count")), "split").
		Add("histogram", Stage(hist), "count")
	res, err := g.Run([]string{"a b a", "b b c"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Output()
	if err != nil {
		t.Fatal(err)
	}
	// Counts: a=2 b=3 c=1 -> histogram: count 1 x1 word, 2 x1, 3 x1.
	want := []string{"1x1", "2x1", "3x1"}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("Rounds = %d, want 3", len(res.Rounds))
	}
	if res.Rounds[0].Name != "split" || res.Rounds[2].Name != "histogram" {
		t.Errorf("round order = %v", res.Rounds)
	}
	if res.TotalPairsShuffled() <= 0 {
		t.Error("no communication recorded")
	}
}

func TestGraphDiamondFanInConcatenatesInputs(t *testing.T) {
	// source -> (left, right) -> join: the join stage sees both branches'
	// outputs concatenated in dependency-declaration order.
	passthrough := func(name, tag string) Round[string, string, int, string] {
		return Round[string, string, int, string]{
			Name: name,
			Map:  func(w string, emit func(string, int)) { emit(tag+w, 1) },
			Reduce: func(w string, _ []int, emit func(string)) {
				emit(w)
			},
		}
	}
	g := NewGraph().
		Add("source", Stage(splitRound())).
		Add("left", Stage(passthrough("left", "L:")), "source").
		Add("right", Stage(passthrough("right", "R:")), "source").
		Add("join", Stage(countRound("join")), "left", "right")
	res, err := g.Run([]string{"x y"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Output()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"L:x=1", "L:y=1", "R:x=1", "R:y=1"}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
	if got := res.Sinks(); !reflect.DeepEqual(got, []string{"join"}) {
		t.Errorf("Sinks = %v, want [join]", got)
	}
	if v, ok := res.Value("left"); !ok || len(v.([]string)) != 2 {
		t.Errorf("Value(left) = %v, %v", v, ok)
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph().
		Add("a", Stage(splitRound())).
		Add("a", Stage(splitRound())).
		Run(nil); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate stage: err = %v", err)
	}
	if _, err := NewGraph().
		Add("a", Stage(splitRound()), "ghost").
		Run(nil); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown dep: err = %v", err)
	}
	if _, err := NewGraph().
		Add("a", Stage(splitRound()), "b").
		Add("b", Stage(splitRound()), "a").
		Run(nil); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: err = %v", err)
	}
}

func TestGraphPropagatesStageError(t *testing.T) {
	overflowing := wordCountRound(Config{MaxReducerInput: 1})
	g := NewGraph().
		Add("bad", Stage(overflowing)).
		Add("after", Stage(countRound("after")), "bad")
	_, err := g.Run([]string{"a a a"})
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error %q does not name the failing stage", err)
	}
}

func TestGraphTypeMismatch(t *testing.T) {
	intRound := Round[int, int, int, int]{
		Name:   "ints",
		Map:    func(x int, emit func(int, int)) { emit(x, x) },
		Reduce: func(k int, _ []int, emit func(int)) { emit(k) },
	}
	g := NewGraph().
		Add("strings", Stage(splitRound())).
		Add("ints", Stage(intRound), "strings")
	if _, err := g.Run([]string{"a"}); err == nil || !strings.Contains(err.Error(), "want []int") {
		t.Errorf("type mismatch err = %v", err)
	}
}

func TestGraphMultipleSinksOutputErrors(t *testing.T) {
	g := NewGraph().
		Add("a", Stage(splitRound())).
		Add("b", Stage(countRound("b")), "a").
		Add("c", Stage(countRound("c")), "a")
	res, err := g.Run([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Output(); err == nil {
		t.Error("Output() on two-sink graph should error")
	}
}
