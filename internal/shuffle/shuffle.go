// Package shuffle implements the partitioned grouped shuffle that sits
// between the map and reduce phases of the mr runtime.
//
// The paper's whole subject is the data volume crossing this boundary
// (the communication cost, from which the replication rate r is derived)
// and how it is divided among reducers (the reducer size q). The seed
// runtime modeled the boundary as a single global map merged under one
// goroutine; this package replaces it with a real partitioned exchange:
// keys are hashed into P partitions, each map task pre-buckets its
// output by partition, and the merge runs one goroutine per partition
// with exclusive ownership — no locks on the merge path at all. The
// per-partition pair counts, key counts and largest key group that the
// package reports are therefore properties of an actual execution, not
// post-hoc accounting.
//
// Keys are hashed with hash/maphash's typed fast path
// (maphash.Comparable compiles down to the runtime's native memhash for
// fixed-size keys and strhash for strings) rather than by formatting
// the key with fmt and hashing the string, which the seed did.
//
// An optional bounded-memory mode caps the number of pairs a partition
// buffers in its live run: when the cap is reached the run is sealed
// and, when a SpillDir is configured, encoded in sorted-key order to a
// disk run file (internal/runfile). At read time each partition streams
// its key groups through a k-way heap merge over the on-disk runs, the
// in-memory sealed runs, and the live run, so a partition several times
// larger than its budget is reduced without ever being resident at
// once. Without a SpillDir, sealed runs stay in memory and only the
// spill pressure is reported, as in earlier versions.
package shuffle

import (
	"fmt"
	"hash/maphash"
	"math/bits"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/runfile"
)

// sharedSeed makes every Hasher in the process agree on key placement,
// so that independently created hashers (for example one per job round)
// route the same key to the same partition.
var sharedSeed = maphash.MakeSeed()

// pinnedHash is the WithSeed test hook: when armed, new Hashers place
// keys with a deterministic FNV-1a over the formatted key instead of
// the process-random maphash seed, so partition-placement-dependent
// observations (per-partition profiles, makespan, spill counts) are
// reproducible across runs and processes.
var pinnedHash struct {
	mu   sync.Mutex
	on   bool
	seed uint64
}

// WithSeed pins key placement to a deterministic seed and returns a
// restore func. Hashers (and therefore Shuffles and engine rounds)
// created between WithSeed and restore hash the canonical formatted
// key with seeded FNV-1a — slower, but identical in every process.
// Intended for tests; do not leave pinned in production paths.
func WithSeed(seed uint64) (restore func()) {
	pinnedHash.mu.Lock()
	prevOn, prevSeed := pinnedHash.on, pinnedHash.seed
	pinnedHash.on, pinnedHash.seed = true, seed
	pinnedHash.mu.Unlock()
	return func() {
		pinnedHash.mu.Lock()
		pinnedHash.on, pinnedHash.seed = prevOn, prevSeed
		pinnedHash.mu.Unlock()
	}
}

// Hasher hashes comparable keys with the runtime's typed hash.
type Hasher[K comparable] struct {
	seed   maphash.Seed
	pinned bool
	pseed  uint64
}

// NewHasher returns a Hasher using the process-wide seed, or the
// deterministic pinned hasher when WithSeed is in effect.
func NewHasher[K comparable]() Hasher[K] {
	pinnedHash.mu.Lock()
	on, ps := pinnedHash.on, pinnedHash.seed
	pinnedHash.mu.Unlock()
	if on {
		return Hasher[K]{pinned: true, pseed: ps}
	}
	return Hasher[K]{seed: sharedSeed}
}

// Hash returns a 64-bit hash of the key. This is the typed fast path:
// maphash.Comparable dispatches to the runtime's native hash for K's
// memory layout (memhash for fixed-size keys such as ints and structs,
// strhash for strings) with no formatting, boxing, or reflection.
func (h Hasher[K]) Hash(k K) uint64 {
	if h.pinned {
		const prime = 1099511628211
		hv := uint64(14695981039346656037) ^ (h.pseed * prime)
		s := fmt.Sprint(k)
		for i := 0; i < len(s); i++ {
			hv = (hv ^ uint64(s[i])) * prime
		}
		return hv
	}
	return maphash.Comparable(h.seed, k)
}

// Options configures a Shuffle.
type Options struct {
	// Partitions is the number of shuffle partitions P. Values <= 0
	// select DefaultPartitions(). The effective count is rounded up to
	// a power of two so partition selection is a mask, not a modulo.
	Partitions int

	// MaxBufferedPairs is the per-partition memory budget, in pairs.
	// When positive, a partition whose live run reaches this many
	// buffered pairs seals the run and starts a new one, so the live
	// buffer never exceeds the budget. Stats reports the spill
	// pressure.
	MaxBufferedPairs int

	// SpillDir, when set together with MaxBufferedPairs, makes sealed
	// runs real: each is encoded in sorted-key order to a temp run
	// file under this directory and dropped from memory. Read APIs
	// stream a k-way merge over disk and live runs. Call Close to
	// delete the files. When empty, sealed runs stay in memory.
	SpillDir string

	// FS overrides the filesystem behind spill run files. Nil selects
	// the real filesystem (runfile.OSFS); fault-injection tests thread
	// an errfs.FS here to fail chosen creates, reads, writes and
	// closes.
	FS runfile.FS

	// BlockPairs is the streaming-ingestion block budget: the number of
	// pairs a TaskWriter buffers across its per-partition blocks before
	// flushing the fullest block to its partition, and the chunk size
	// of a TaskBuffer's pooled bucket blocks. Zero derives it from
	// MaxBufferedPairs (half the budget, clamped to [16, 8192]; 1024
	// without a budget). The whole-round resident bound of the
	// streaming path is P*MaxBufferedPairs + writers*BlockPairs.
	BlockPairs int

	// Recorder, when non-nil, receives the shuffle's lifecycle events:
	// block flushes, seals, pressure-relief swaps and swap aborts,
	// compactions and reduce-time merges, each on its partition's lane;
	// asynchronous compactions land on per-worker compactor lanes.
	// Nil disables recording at the cost of one nil-check per event —
	// the hot data path is identical either way.
	Recorder *obs.Recorder

	// CompactionConcurrency is the number of background workers that
	// compact disk runs during streaming ingestion, so a partition whose
	// run count outgrows the merge fan-in is rewritten off the ingestion
	// path instead of stalling its seal. Zero selects a small default
	// (2); negative forces inline compaction (the pre-worker behavior,
	// useful for deterministic tests). Barrier-mode Merge always
	// compacts inline on the partition's own goroutine.
	CompactionConcurrency int

	// SpoolRotateBytes bounds how many dead bytes — sections already
	// compacted away, absorbed, or aborted — a streaming spool file may
	// accumulate before it is rotated: a fresh file takes over the
	// writes and the old one is deleted as soon as its last live section
	// is released, so long rounds reclaim disk instead of growing every
	// spool monotonically. Zero selects a 4 MiB default; negative
	// disables rotation. Reclaimed bytes are reported in
	// Stats.BytesReclaimed.
	SpoolRotateBytes int64

	// DisableMmap forces the positioned-read (pread) fallback for run
	// file reads even where the platform supports memory mapping. Used
	// by tests that must exercise the fallback deterministically; the
	// default (mmap where available, automatic fallback otherwise)
	// is right for production.
	DisableMmap bool
}

// DefaultPartitions is the partition count used when Options.Partitions
// is unset: enough to keep every core busy during the merge and to give
// the LPT partition scheduler room to balance, rounded to a power of
// two and clamped to [8, 256].
func DefaultPartitions() int {
	p := runtime.GOMAXPROCS(0) * 4
	if p < 8 {
		p = 8
	}
	if p > 256 {
		p = 256
	}
	return ceilPow2(p)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Pair is one key-value pair buffered by a map task.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Shuffle is a P-way partitioned grouped exchange from map tasks to
// reduce partitions.
type Shuffle[K comparable, V any] struct {
	hasher       Hasher[K]
	partitioner  func(K) int                                      // optional override; used by tests and schemas
	combiner     func(K, []V) []V                                 // optional associative pre-aggregation, applied at seal time
	sealSink     func(part int, keys []K, groups map[K][]V) error // optional seal redirect (SetSealSink)
	opts         Options
	nparts       int
	mask         uint64
	blockPairs   int // per-writer block budget (Options.BlockPairs, defaulted)
	parts        []partitionState[K, V]
	mergeMu      sync.Mutex
	closed       bool
	spillTypeErr error         // non-nil when K or V cannot survive a disk round trip
	fs           runfile.FS    // filesystem behind run files (OSFS unless injected)
	diskSem      chan struct{} // bounds concurrent multi-file disk reads (fd cap)
	diskRead     atomic.Int64  // bytes read back from spill run files
	perValue     bool          // test/bench hook: legacy per-value spill decode

	// Async compaction (see compact.go): partitions over their run-count
	// bound are enqueued on compactCh (at most one entry per partition)
	// and merged by CompactionConcurrency background workers. compactWG
	// tracks queued + in-flight work; Finish and Close wait on it, and
	// the first worker error is surfaced through Finish.
	compactCh    chan int
	compactStart sync.Once
	compactWG    sync.WaitGroup
	compactMu    sync.Mutex // guards compactErr
	compactErr   error

	swapBytes      atomic.Int64 // raw bytes written by pressure swaps (ingest.go)
	bytesReclaimed atomic.Int64 // spill-file bytes deleted mid-round (rotation, compaction)

	// pool recycles flushed block backing arrays between the map-side
	// writers and the absorption path, so steady-state streaming
	// ingestion allocates no per-block memory.
	pool sync.Pool

	// resident counts the pairs currently held in shuffle memory (live
	// runs, staged blocks, in-memory sealed runs); peakResident is its
	// whole-round high-water mark, the bound the streaming data path
	// promises to keep under P*MemoryBudget + writers*BlockPairs.
	resident     atomic.Int64
	peakResident atomic.Int64

	statsMu   sync.Mutex
	statsMemo *Stats // memoized Stats, invalidated by Merge
}

// partitionState is owned by exactly one goroutine during Merge; the
// streaming ingestion path (Ingester) instead shares it between
// flushing map workers and draining committers under mu.
type partitionState[K comparable, V any] struct {
	mu            sync.Mutex   // guards all fields during streaming ingestion
	idx           int          // this partition's index (compaction enqueue key)
	runs          []map[K][]V  // sealed in-memory runs, in seal order
	disk          []diskRun[K] // sealed on-disk runs, in seal order
	spilledToDisk bool         // ever had a disk run (sticky across Close)
	live          map[K][]V
	livePairs     int
	maxLivePairs  int // high-water mark of livePairs
	pairs         int64
	spillEvents   int64
	spilledPairs  int64
	bytesSpilled  int64
	indexBytes    int64 // footer-index bytes written alongside run data

	// staged holds flushed-but-uncommitted blocks per map task during
	// streaming ingestion (see ingest.go); stagedPairs is the in-memory
	// pair count across all staged runs of this partition. Both are
	// guarded by stageMu — a tiny lock separate from mu so a flushing
	// map worker appends in O(1) without waiting behind an absorb or a
	// disk spill running under mu.
	stageMu     sync.Mutex
	staged      map[int]*stagedRun[K, V]
	stagedPairs int

	// scratch is the reused per-block key-count map that lets the
	// absorb fast path pre-size live value slices instead of growing
	// them by repeated appends. presizeOff latches when a block turns
	// out to be mostly distinct keys — counting such blocks costs two
	// map operations per pair and pre-sizes nothing, so the partition
	// falls back to plain appends for the rest of the round.
	scratch    map[K]int
	presizeOff bool

	// freeVs recycles live-run value-slice backing arrays across
	// disk-bound seals: once a run's groups are encoded into the spool
	// the slices are dead, so the next fill reuses their capacity
	// instead of re-growing every key's slice from nil. Slices are
	// zeroed before harvesting so recycled capacity never pins decoded
	// values. The in-memory-run and seal-sink paths hand the map itself
	// away and must not recycle.
	freeVs []([]V)
	// swapBuf and swapChunk are absorbSwapped's reused section read
	// buffer and decode staging block (values are copied out by absorb,
	// keys/values by Decode, so reuse is safe). intern dedups string
	// keys decoded from swapped sections: a partition re-reads each of
	// its hot keys once per swapped pair, so without the table the
	// readback allocates one string per pair instead of one per
	// distinct key.
	swapBuf   []byte
	swapChunk []Pair[K, V]
	intern    map[string]K

	// pspool is the partition's seal spool: one shared temp file (per
	// rotation epoch) receiving every run the streaming path seals for
	// this partition; stash is the swap spool, receiving the raw
	// pressure-swapped sections of staged tasks (see ingest.go). Both
	// are closed by Ingester.Finish (Close is the safety net) and
	// guarded by mu.
	pspool *spool[K, V]
	stash  *spool[K, V]

	// compacting marks that this partition is queued for (or undergoing)
	// asynchronous compaction; at most one queue entry per partition
	// exists, which is what lets enqueue sends never block. Guarded by
	// mu.
	compacting bool

	// liveApprox mirrors livePairs for lock-free reads: the streaming
	// flush path consults it (plus stagedPairs) to decide whether it
	// must stop and relieve pressure, without taking the work lock that
	// an in-flight absorb or spill holds. Updated at block granularity;
	// staleness is bounded by one block, which the resident bound's
	// per-writer term already allows for.
	liveApprox atomic.Int64

	// lane is the partition's observability ring (nil when the shuffle
	// has no Recorder — every emit is then a nil-check no-op). Span
	// events on it are emitted under mu or by the partition's exclusive
	// owner, so they nest.
	lane *obs.Ring
}

// syncLive refreshes the lock-free livePairs mirror; call after any
// block-granularity livePairs change.
func (st *partitionState[K, V]) syncLive() { st.liveApprox.Store(int64(st.livePairs)) }

// New creates a shuffle with the given options.
func New[K comparable, V any](opts Options) *Shuffle[K, V] {
	n := opts.Partitions
	if n <= 0 {
		n = DefaultPartitions()
	}
	n = ceilPow2(n)
	s := &Shuffle[K, V]{
		hasher:     NewHasher[K](),
		opts:       opts,
		nparts:     n,
		mask:       uint64(n - 1),
		blockPairs: blockPairs(opts),
		parts:      make([]partitionState[K, V], n),
	}
	for i := range s.parts {
		s.parts[i].idx = i
		s.parts[i].live = make(map[K][]V)
		// A nil Recorder hands out nil lanes; every emit is then a no-op.
		s.parts[i].lane = opts.Recorder.Lane(obs.LanePartition, i)
	}
	s.fs = opts.FS
	if s.fs == nil {
		s.fs = runfile.OSFS
	}
	if opts.SpillDir != "" {
		// Keys grouped after a disk round trip are compared with ==, so
		// types whose decoded copies break == (pointer fields, etc.)
		// must fail the first seal loudly instead of splitting groups;
		// values must survive without silent loss (gob drops unexported
		// struct fields without error).
		if err := runfile.CanRoundTripIdentity[K](); err != nil {
			s.spillTypeErr = fmt.Errorf("key type: %w", err)
		} else if err := runfile.CanRoundTripFidelity[V](); err != nil {
			s.spillTypeErr = fmt.Errorf("value type: %w", err)
		}
		s.diskSem = make(chan struct{}, diskReadConcurrency)
	}
	return s
}

// blockPairs resolves Options.BlockPairs: half the memory budget by
// default, so two flushed blocks fit a partition's live run, clamped
// so blocks stay big enough to amortize locking and small enough to
// keep the per-writer buffer a fraction of the budget.
func blockPairs(opts Options) int {
	bp := opts.BlockPairs
	if bp <= 0 {
		if b := opts.MaxBufferedPairs; b > 0 {
			bp = b / 2
		} else {
			bp = 1024
		}
	}
	if bp < 16 {
		bp = 16
	}
	if bp > 8192 {
		bp = 8192
	}
	return bp
}

// BlockPairs is the effective streaming block budget (see
// Options.BlockPairs): the number of pairs a TaskWriter buffers before
// flushing, and the term the resident-memory bound charges per writer.
func (s *Shuffle[K, V]) BlockPairs() int { return s.blockPairs }

// getBlock takes a block backing array from the pool (or allocates one
// at the block budget) with length zero.
func (s *Shuffle[K, V]) getBlock() []Pair[K, V] {
	if v := s.pool.Get(); v != nil {
		return (*v.(*[]Pair[K, V]))[:0]
	}
	return make([]Pair[K, V], 0, s.blockPairs)
}

// putBlock recycles a flushed block's backing array.
func (s *Shuffle[K, V]) putBlock(b []Pair[K, V]) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	s.pool.Put(&b)
}

// addResident adjusts the shuffle's in-memory pair count, updating the
// whole-round peak on growth.
func (s *Shuffle[K, V]) addResident(n int) {
	if n == 0 {
		return
	}
	cur := s.resident.Add(int64(n))
	if n < 0 {
		return
	}
	for {
		peak := s.peakResident.Load()
		if cur <= peak || s.peakResident.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// ResidentPairs is the number of pairs currently held in shuffle
// memory (live runs, staged blocks, in-memory sealed runs);
// PeakResidentPairs is its whole-round high-water mark.
func (s *Shuffle[K, V]) ResidentPairs() int64     { return s.resident.Load() }
func (s *Shuffle[K, V]) PeakResidentPairs() int64 { return s.peakResident.Load() }

// SetPartitioner overrides hash placement with an explicit key-to-
// partition function (reduced modulo the partition count). It must be
// called before any TaskBuffer is created.
func (s *Shuffle[K, V]) SetPartitioner(fn func(K) int) {
	s.partitioner = fn
}

// invalidateStats drops the memoized Stats profile. Every mutation of
// a partition's runs — seals, swaps, compaction installs, aborts —
// must route through this (or Merge's inline invalidation) so a
// profile memoized mid-round is never served after the state it
// described has changed.
func (s *Shuffle[K, V]) invalidateStats() {
	s.statsMu.Lock()
	s.statsMemo = nil
	s.statsMu.Unlock()
}

// SetCombiner pushes an associative pre-aggregation down into the
// shuffle's sealing path: whenever a partition's live run reaches the
// memory budget, each key's buffered values are combined before the
// run is sealed, and sealed again across runs when disk runs are
// compacted. Spilled bytes then track the post-combine communication
// cost rather than the raw emission stream, and a seal whose combine
// frees enough of the budget is skipped entirely. The function must be
// semantically transparent the way a map-side combiner is —
// reduce(k, combine(vs)) == reduce(k, vs) for any split of vs — since
// sealing applies it to arbitrary prefixes of a key's values and may
// re-apply it to already-combined partials. It must be called before
// Merge.
func (s *Shuffle[K, V]) SetCombiner(fn func(key K, values []V) []V) {
	// The combiner changes what future seals spill, so a Stats profile
	// memoized before this call must not survive it — invalidating only
	// on Merge would serve a stale profile to a caller that re-reads
	// Stats between SetCombiner and the next Merge.
	s.invalidateStats()
	s.combiner = fn
}

// SetSealSink redirects every sealed run to fn instead of the
// shuffle's own spill path: whenever a partition's live run seals
// (budget reached, or SealAllLive), fn receives the partition index
// and the post-combine run — keys in canonical SortKeys order, values
// in absorption order — and owns writing it somewhere durable. The
// shuffle keeps nothing: resident pairs drop by the run's size, no
// disk run is recorded, and compaction never fires, so the sink is the
// exchange medium. This is how an external executor (internal/proc's
// map workers) reuses the streaming ingestion path — budget-driven
// sealing, combiner push-down, swap relief — while keeping its own
// section/commit protocol. fn runs under the partition lock; it may be
// called from concurrent goroutines for different partitions (the
// Finish drain), never concurrently for one partition. Must be set
// before ingestion starts. A sink requires a SpillDir when pressure
// swaps should relieve staged memory; the sealed runs themselves never
// touch the SpillDir.
func (s *Shuffle[K, V]) SetSealSink(fn func(part int, keys []K, groups map[K][]V) error) {
	s.invalidateStats()
	s.sealSink = fn
}

// SealAllLive force-seals every partition's remaining live run, in
// partition order — the final flush of a sink-directed round, turning
// the under-budget residue into the sink's last runs. (The regular
// Finish deliberately leaves under-budget live runs buffered for
// in-process reads; a seal sink has no read side, so everything must
// go to the sink.) Call after Ingester.Finish.
func (s *Shuffle[K, V]) SealAllLive() error {
	for p := range s.parts {
		st := &s.parts[p]
		st.mu.Lock()
		err := st.seal(s, true)
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// NumPartitions returns the effective partition count P.
func (s *Shuffle[K, V]) NumPartitions() int { return s.nparts }

// PartitionOf returns the partition a key routes to.
func (s *Shuffle[K, V]) PartitionOf(k K) int {
	if s.partitioner != nil {
		p := s.partitioner(k) % s.nparts
		if p < 0 {
			p += s.nparts
		}
		return p
	}
	return int(s.hasher.Hash(k) & s.mask)
}

// TaskBuffer collects one map task's output, pre-bucketed by partition
// into pool-backed blocks, so the merge never rehashes a key and the
// bucket storage never pays append-doubling garbage. A TaskBuffer
// belongs to a single map task and is not safe for concurrent use.
// It is the barrier-mode compat layer over the same blocks the
// streaming Ingester flushes incrementally (see ingest.go).
type TaskBuffer[K comparable, V any] struct {
	s      *Shuffle[K, V]
	blocks [][][]Pair[K, V] // per partition: full blocks, in emission order
	cur    [][]Pair[K, V]   // per partition: the open block
	pairs  int64
}

// NewTaskBuffer creates an empty buffer bound to this shuffle's
// partitioning.
func (s *Shuffle[K, V]) NewTaskBuffer() *TaskBuffer[K, V] {
	return &TaskBuffer[K, V]{
		s:      s,
		blocks: make([][][]Pair[K, V], s.nparts),
		cur:    make([][]Pair[K, V], s.nparts),
	}
}

// Emit buffers one pair into its partition's open block, sealing the
// block into the bucket's block list when it reaches the block budget.
func (b *TaskBuffer[K, V]) Emit(k K, v V) {
	p := b.s.PartitionOf(k)
	blk := b.cur[p]
	if blk == nil {
		blk = b.s.getBlock()
	}
	blk = append(blk, Pair[K, V]{k, v})
	if len(blk) >= b.s.blockPairs {
		b.blocks[p] = append(b.blocks[p], blk)
		blk = nil
	}
	b.cur[p] = blk
	b.pairs++
}

// Pairs returns the number of pairs buffered so far.
func (b *TaskBuffer[K, V]) Pairs() int64 { return b.pairs }

// Merge folds the buffers into the shuffle's partitions, one goroutine
// per partition with exclusive ownership of its state (lock-free on the
// merge path). Buffers are processed in slice order, so the values of a
// key preserve task order and, within a task, emission order — the
// property the runtime's deterministic output contract rests on. Merge
// consumes the buffers (their blocks return to the shuffle's pool) and
// may be called more than once with fresh buffers; calls are
// serialized. The error is non-nil only when a disk spill fails.
func (s *Shuffle[K, V]) Merge(buffers []*TaskBuffer[K, V]) error {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	s.invalidateStats() // the profile is about to change
	var wg sync.WaitGroup
	errs := make([]error, s.nparts)
	for p := 0; p < s.nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			st := &s.parts[p]
			for _, b := range buffers {
				if b == nil {
					continue
				}
				for _, blk := range append(b.blocks[p], b.cur[p]) {
					if len(blk) == 0 {
						continue
					}
					s.addResident(len(blk))
					err := st.absorb(s, blk)
					s.putBlock(blk)
					if err != nil {
						errs[p] = err
						return
					}
				}
				b.blocks[p], b.cur[p] = nil, nil
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// absorb folds one block of pairs (a single task's output for this
// partition, in emission order) into the live run, sealing at the
// memory budget. When the whole block fits under the budget the live
// value slices are pre-sized from the block's per-key counts — one
// exact growth per key instead of append-doubling — otherwise the
// block is walked pair by pair so the run seals at exactly the budget.
func (st *partitionState[K, V]) absorb(s *Shuffle[K, V], pairs []Pair[K, V]) error {
	budget := s.opts.MaxBufferedPairs
	if budget <= 0 || st.livePairs+len(pairs) < budget {
		st.absorbPresized(pairs)
		return nil
	}
	for i := range pairs {
		vs, ok := st.live[pairs[i].Key]
		if !ok && len(st.freeVs) > 0 {
			vs = st.grabSlice(1)
		}
		st.live[pairs[i].Key] = append(vs, pairs[i].Value)
		st.livePairs++
		if st.livePairs > st.maxLivePairs {
			st.maxLivePairs = st.livePairs
		}
		st.pairs++
		if st.livePairs >= budget {
			if err := st.seal(s, false); err != nil {
				return err
			}
		}
	}
	st.syncLive()
	return nil
}

// recycleLive clears the live map in place — keeping its buckets, so
// refills never pay rehash growth — and harvests the now-dead value
// slices' backing arrays for reuse by later absorbs. Only the
// disk-spill seal path may call this: the groups were synchronously
// encoded into the spool, so nothing else references the slices. The
// harvest is capped so a round whose key population shifts cannot grow
// the freelist without bound.
func (st *partitionState[K, V]) recycleLive() {
	for _, vs := range st.live {
		if cap(vs) == 0 || len(st.freeVs) >= 8192 {
			continue
		}
		clear(vs) // drop value references so recycled capacity pins nothing
		st.freeVs = append(st.freeVs, vs[:0])
	}
	clear(st.live)
}

// grabSlice returns an empty value slice with capacity at least n,
// preferring a recycled backing array. Only the freelist's top few
// entries are probed; a miss falls through to a fresh allocation.
func (st *partitionState[K, V]) grabSlice(n int) []V {
	for i, l := 0, len(st.freeVs); i < 4 && i < l; i++ {
		s := st.freeVs[l-1-i]
		if cap(s) >= n {
			st.freeVs[l-1-i] = st.freeVs[l-1]
			st.freeVs = st.freeVs[:l-1]
			return s
		}
	}
	return make([]V, 0, n)
}

// absorbPresized is absorb's under-budget fast path: count the block's
// pairs per key into the reused scratch map, grow each touched live
// slice at most once per block — to exactly what the block needs when
// that dominates, but never below doubling, so a key fed one value per
// block across many blocks still pays O(log n) growths rather than one
// per block — then append without capacity checks.
func (st *partitionState[K, V]) absorbPresized(pairs []Pair[K, V]) {
	if !st.presizeOff && len(pairs) >= 16 {
		cnt := st.scratch
		if cnt == nil {
			cnt = make(map[K]int, 64)
			st.scratch = cnt
		}
		for i := range pairs {
			cnt[pairs[i].Key]++
		}
		if len(cnt)*4 >= len(pairs)*3 {
			st.presizeOff = true // mostly distinct; counting buys nothing
		}
		for k, c := range cnt {
			vs := st.live[k]
			if cap(vs)-len(vs) < c {
				newCap := len(vs) + c
				if min := 2 * cap(vs); newCap < min {
					newCap = min
				}
				grown := st.grabSlice(newCap)[:len(vs)]
				copy(grown, vs)
				st.live[k] = grown
				if cap(vs) > 0 && len(st.freeVs) < 8192 {
					clear(vs) // old backing is dead; recycle it too
					st.freeVs = append(st.freeVs, vs[:0])
				}
			}
		}
		clear(cnt)
	}
	for i := range pairs {
		vs, ok := st.live[pairs[i].Key]
		if !ok && len(st.freeVs) > 0 {
			vs = st.grabSlice(1)
		}
		st.live[pairs[i].Key] = append(vs, pairs[i].Value)
	}
	st.livePairs += len(pairs)
	if st.livePairs > st.maxLivePairs {
		st.maxLivePairs = st.livePairs
	}
	st.pairs += int64(len(pairs))
	st.syncLive()
}

// seal closes the live run — to a disk run when a SpillDir is set,
// otherwise to the in-memory run list — and records spill pressure.
// With a combiner, the live run is combined first; a combine that
// frees at least half the budget cancels the seal and the partition
// keeps buffering, so combiner-friendly workloads spill far less than
// their raw emission volume. force overrides that cancellation: the
// streaming path must seal the live run before adopting a task's
// fenced spill runs (run order is value order), and must be able to
// shed live pairs under global memory pressure, regardless of how well
// the combine went.
//
// On the streaming path (an open pressure spool) the sealed run is
// appended to the partition's spool file; a whole round's seals then
// cost one file per partition instead of one per seal, which on
// syscall-expensive filesystems is most of the spill path's wall
// clock. The barrier path writes the classic one-file-per-seal run.
func (st *partitionState[K, V]) seal(s *Shuffle[K, V], force bool) (err error) {
	if st.livePairs == 0 {
		return nil
	}
	if s.combiner != nil {
		st.combineLive(s)
		if !force && st.livePairs <= s.opts.MaxBufferedPairs/2 {
			return nil
		}
		if st.livePairs == 0 {
			return nil
		}
	}
	sealing := int64(st.livePairs)
	st.lane.Begin(obs.OpSeal, sealing, 0)
	defer func() { st.lane.End(obs.OpSeal, sealing, errFlag(err)) }()
	if s.sealSink != nil {
		// Sink-directed seal: the run leaves the shuffle entirely. No
		// disk run, no compaction — the sink's storage is the read side.
		if err := s.sealSink(st.idx, sortedMapKeys(st.live), st.live); err != nil {
			return err
		}
		s.addResident(-st.livePairs)
		st.spillEvents++
		st.spilledPairs += int64(st.livePairs)
		st.live = make(map[K][]V)
		st.livePairs = 0
		st.syncLive()
		return nil
	}
	if s.opts.SpillDir != "" {
		if s.spillTypeErr != nil {
			return fmt.Errorf("shuffle: cannot spill: %w", s.spillTypeErr)
		}
		if st.pspool != nil {
			dr, body, idx, err := st.pspool.addRunGroups(sortedMapKeys(st.live), st.live, int64(st.livePairs))
			if err != nil {
				return err
			}
			st.disk = append(st.disk, dr)
			st.spilledToDisk = true
			st.bytesSpilled += body
			st.indexBytes += idx
		} else if err := st.spillToDisk(s); err != nil {
			return err
		}
		s.addResident(-st.livePairs) // live pairs now on disk
		st.recycleLive()
	} else {
		st.runs = append(st.runs, st.live)
		st.live = make(map[K][]V)
	}
	st.spillEvents++
	st.spilledPairs += int64(st.livePairs)
	st.livePairs = 0
	st.syncLive()
	if st.pspool != nil && needsCompaction(st.disk) {
		if s.opts.CompactionConcurrency < 0 {
			// Inline mode: compact on the sealing goroutine, pre-worker
			// behavior (deterministic scheduling for tests).
			s.diskSem <- struct{}{}
			err := st.compactDiskRuns(s, st.lane, false)
			<-s.diskSem
			return err
		}
		s.maybeCompact(st)
	}
	return nil
}

// errFlag renders an error as the 0/1 "err" argument of a span's End
// event.
func errFlag(err error) int64 {
	if err != nil {
		return 1
	}
	return 0
}

// combineLive applies the combiner to every key group of the live run
// in place, keeping the partition's pair totals equal to the sum of
// its group counts. Keys whose combined value list comes back empty
// are dropped.
func (st *partitionState[K, V]) combineLive(s *Shuffle[K, V]) {
	post := 0
	for k, vs := range st.live {
		cv := s.combiner(k, vs)
		if len(cv) == 0 {
			delete(st.live, k)
			continue
		}
		st.live[k] = cv
		post += len(cv)
	}
	st.pairs -= int64(st.livePairs - post)
	s.addResident(post - st.livePairs)
	st.livePairs = post
}

// Partition is a read view of one shuffle partition.
type Partition[K comparable, V any] struct {
	s   *Shuffle[K, V]
	idx int
}

// Partition returns the view of partition p.
func (s *Shuffle[K, V]) Partition(p int) Partition[K, V] {
	return Partition[K, V]{s: s, idx: p}
}

// Pairs is the number of pairs the partition holds.
func (p Partition[K, V]) Pairs() int64 { return p.s.parts[p.idx].pairs }

// NumKeys is the number of distinct keys in the partition. For a
// partition with on-disk runs this merges the runs' resident indexes
// in memory — no disk read. NumKeys is a best-effort convenience view:
// an error (such as reads after Close) yields a zero or partial count
// — use ForEachGroup where errors must be observed.
func (p Partition[K, V]) NumKeys() int {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 && !st.spilledToDisk {
		return len(st.live)
	}
	n := 0
	p.forEachGroup(false, false, func(K, int, []V) error { n++; return nil })
	return n
}

// SortedKeys returns the partition's distinct keys in the package's
// canonical deterministic order (see SortKeys), merging resident
// indexes for spilled runs (no disk read). Like NumKeys it is a
// best-effort view: an error yields a truncated slice — use
// ForEachGroup where errors must be observed.
func (p Partition[K, V]) SortedKeys() []K {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 && !st.spilledToDisk {
		return sortedMapKeys(st.live)
	}
	var keys []K
	p.forEachGroup(false, false, func(k K, _ int, _ []V) error {
		keys = append(keys, k)
		return nil
	})
	return keys
}

// Values returns all values for a key, concatenated across sealed runs
// in seal order and then the live run — which preserves the original
// task-emission order. With on-disk runs this scans the partition (and
// like NumKeys returns best-effort data on a spill read error); use
// ForEachGroup to visit every group in one error-aware streaming pass.
func (p Partition[K, V]) Values(k K) []V {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 && !st.spilledToDisk {
		return st.live[k]
	}
	var out []V
	p.forEachGroup(true, false, func(key K, _ int, vs []V) error {
		if key == k {
			out = vs
			return errStopIteration
		}
		return nil
	})
	return out
}

// ForEachSorted visits the partition's groups in sorted key order.
// Unlike ForEachGroup it cannot surface spill-read errors; callers on
// the disk-backed path should prefer ForEachGroup.
func (p Partition[K, V]) ForEachSorted(fn func(k K, vs []V)) {
	p.ForEachGroup(func(k K, vs []V) error {
		fn(k, vs)
		return nil
	})
}

// ForEachGroup streams the partition's key groups in canonical sorted
// key order through fn, k-way merging the partition's on-disk runs,
// in-memory sealed runs, and live run without materializing the
// partition. A key's values arrive concatenated across runs in seal
// order then the live run — the package's value-order contract. An
// error from fn stops the iteration and is returned; I/O and decode
// errors reading spilled runs are returned likewise. The value slices
// are stable — nothing overwrites them after fn returns, so they are
// safe to retain — but in-memory groups alias the shuffle's live and
// sealed run buffers, so treat them as read-only. Use
// ForEachGroupBatch when fn does not retain them at all.
func (p Partition[K, V]) ForEachGroup(fn func(k K, vs []V) error) error {
	return p.forEachGroup(true, false, func(k K, _ int, vs []V) error {
		return fn(k, vs)
	})
}

// ForEachGroupBatch is ForEachGroup under the batch arena-reuse
// contract: the value slice passed to fn is valid only during the
// call — for spilled runs it is decoded into a per-run scratch slice
// that the next group reuses, so a full partition streams with one
// value-section read and one batch decode per group and near-zero
// per-group allocation. fn must not retain the slice (copy it to keep
// it). Callers that retain values use ForEachGroup, whose slices stay
// stable after the call — the two are otherwise identical, key order
// and value-order contract included.
func (p Partition[K, V]) ForEachGroupBatch(fn func(k K, vs []V) error) error {
	return p.forEachGroup(true, true, func(k K, _ int, vs []V) error {
		return fn(k, vs)
	})
}

// ForEachGroupCount is ForEachGroup's counting mode: it streams every
// group's key and size in sorted key order by merging the spilled
// runs' resident indexes with the in-memory runs — run files are never
// opened, so the pass is pure memory. This is the cheap pass for load
// profiling and overflow diagnosis.
func (p Partition[K, V]) ForEachGroupCount(fn func(k K, count int) error) error {
	return p.forEachGroup(false, false, func(k K, count int, _ []V) error {
		return fn(k, count)
	})
}

// Stats is the realized communication profile of the shuffle.
type Stats struct {
	// Partitions is the effective partition count P.
	Partitions int
	// Pairs is the total number of pairs shuffled (post-combine when the
	// caller combined before buffering).
	Pairs int64
	// Keys is the total number of distinct keys across partitions —
	// the number of reducers in the paper's sense.
	Keys int64
	// PartitionPairs, PartitionKeys and PartitionMaxGroup are the
	// per-partition profiles (pairs held, distinct keys, largest single
	// key group).
	PartitionPairs    []int64
	PartitionKeys     []int64
	PartitionMaxGroup []int64
	// MaxPartitionPairs is the heaviest partition's pair count; with
	// MeanPartitionPairs it quantifies partition skew.
	MaxPartitionPairs int64
	// MaxGroup is the largest single key group — the realized reducer
	// size q.
	MaxGroup int64
	// SpillEvents and SpilledPairs report bounded-memory pressure: how
	// many runs were sealed and how many pairs they held.
	SpillEvents  int64
	SpilledPairs int64
	// BytesSpilled is the total encoded size of run data written to
	// disk — header and key groups, not the footer indexes — so it
	// tracks the communication volume the paper reasons about (zero
	// without a SpillDir). With a combiner pushed down (SetCombiner) it
	// tracks the post-combine communication cost rather than the raw
	// emission volume. IndexBytesSpilled is the metadata written on
	// top: the prefix-compressed footer indexes; total file bytes are
	// the sum of the two.
	BytesSpilled      int64
	IndexBytesSpilled int64
	// DiskBytesRead is the cumulative number of bytes read back from
	// spill run files, across reduce-time merges and compaction.
	// Computing Stats itself adds nothing to it: the counting pass
	// merges resident indexes in memory.
	DiskBytesRead int64
	// SwapBytes is the raw bytes the streaming path's pressure relief
	// wrote to swap stash files — staged pairs shed to disk and read
	// back verbatim at their task's turn. Swap traffic is bookkeeping,
	// not shuffle output, so it is reported separately from
	// BytesSpilled (which stays a pure function of the committed pair
	// stream — the property the bench's cross-lane determinism check
	// pins).
	SwapBytes int64
	// BytesReclaimed is the total size of spill files deleted while the
	// round was still running — spool rotation retiring dead sections
	// and compaction releasing its inputs — i.e. disk given back before
	// Close.
	BytesReclaimed int64
	// RunsMerged is the number of runs (disk, sealed in-memory, live)
	// that the reduce-time k-way merges combine, summed over the
	// partitions that sealed at least once.
	RunsMerged int64
	// GroupSizeLog2 is the log2-bucketed distribution of key-group
	// sizes — the realized reducer-input (q) distribution the paper's
	// bounds are stated over. Bucket i counts the keys whose group size
	// lies in [2^i, 2^(i+1)); the slice is trimmed after the last
	// non-empty bucket (nil when the shuffle is empty).
	GroupSizeLog2 []int64
	// MaxLivePairs is the high-water mark of any partition's live
	// buffer. Under a memory budget it never exceeds MaxBufferedPairs:
	// the proof that execution stayed within budget.
	MaxLivePairs int
	// PeakResidentPairs is the whole-round high-water mark of pairs
	// held in shuffle memory at once: live runs, staged streaming
	// blocks, and in-memory sealed runs, summed over partitions. With a
	// SpillDir the streaming ingestion path keeps it under
	// P*MaxBufferedPairs + writers*BlockPairs — the bound that makes
	// the communication cost, not the dataset size, the limit on
	// resident memory.
	PeakResidentPairs int64
}

// Skew is max/mean partition load, 1 for a perfectly even exchange and
// 0 for an empty one.
func (st Stats) Skew() float64 {
	if st.Pairs == 0 || st.Partitions == 0 {
		return 0
	}
	mean := float64(st.Pairs) / float64(st.Partitions)
	return float64(st.MaxPartitionPairs) / mean
}

// String renders a one-line summary.
func (st Stats) String() string {
	return fmt.Sprintf("P=%d pairs=%d keys=%d maxq=%d skew=%.2f spills=%d",
		st.Partitions, st.Pairs, st.Keys, st.MaxGroup, st.Skew(), st.SpillEvents)
}

// Stats computes the shuffle's realized profile. The walk is pure
// memory even for spilled partitions — each disk run's (key, count)
// index is resident, so no run file is read. The result is memoized:
// repeat calls return the cached profile (with the cumulative I/O
// counters — DiskBytesRead, SwapBytes, BytesReclaimed — and the
// resident peak refreshed, since those keep accruing after the
// profile stabilizes) until the next mutation invalidates it. The error is non-nil only when the shuffle's
// spilled state is unreadable (for example after Close).
func (s *Shuffle[K, V]) Stats() (Stats, error) {
	s.statsMu.Lock()
	if s.statsMemo != nil {
		st := *s.statsMemo
		s.statsMu.Unlock()
		// Fresh per-partition slices, as a computed Stats would return:
		// a caller sorting or scaling its result must not corrupt the
		// memo for later calls.
		st.PartitionPairs = append([]int64(nil), st.PartitionPairs...)
		st.PartitionKeys = append([]int64(nil), st.PartitionKeys...)
		st.PartitionMaxGroup = append([]int64(nil), st.PartitionMaxGroup...)
		st.GroupSizeLog2 = append([]int64(nil), st.GroupSizeLog2...)
		st.DiskBytesRead = s.diskRead.Load()
		st.SwapBytes = s.swapBytes.Load()
		st.BytesReclaimed = s.bytesReclaimed.Load()
		st.PeakResidentPairs = s.peakResident.Load()
		return st, nil
	}
	s.statsMu.Unlock()
	st, err := s.computeStats()
	if err != nil {
		return st, err
	}
	memo := st
	s.statsMu.Lock()
	s.statsMemo = &memo
	s.statsMu.Unlock()
	return st, nil
}

// DiskBytesRead is the cumulative number of bytes read back from spill
// run files so far (see Stats.DiskBytesRead).
func (s *Shuffle[K, V]) DiskBytesRead() int64 { return s.diskRead.Load() }

func (s *Shuffle[K, V]) computeStats() (Stats, error) {
	st := Stats{
		Partitions:        s.nparts,
		PartitionPairs:    make([]int64, s.nparts),
		PartitionKeys:     make([]int64, s.nparts),
		PartitionMaxGroup: make([]int64, s.nparts),
	}
	type partProfile struct {
		keys     int64
		maxGroup int64
		log2     [64]int64 // group-size histogram: bucket i = [2^i, 2^(i+1))
	}
	profiles := make([]partProfile, s.nparts)
	errs := make([]error, s.nparts)
	var wg sync.WaitGroup
	for p := 0; p < s.nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ps := &s.parts[p]
			if len(ps.runs) == 0 && !ps.spilledToDisk {
				profiles[p].keys = int64(len(ps.live))
				for _, vs := range ps.live {
					if g := int64(len(vs)); g > profiles[p].maxGroup {
						profiles[p].maxGroup = g
					}
					profiles[p].log2[log2Bucket(len(vs))]++
				}
				return
			}
			// Spilled partitions merge their resident run indexes with
			// the in-memory runs: a pure in-memory pass.
			errs[p] = s.Partition(p).forEachGroup(false, false, func(_ K, count int, _ []V) error {
				profiles[p].keys++
				if g := int64(count); g > profiles[p].maxGroup {
					profiles[p].maxGroup = g
				}
				profiles[p].log2[log2Bucket(count)]++
				return nil
			})
		}(p)
	}
	wg.Wait()
	var log2 [64]int64
	for p := 0; p < s.nparts; p++ {
		if errs[p] != nil {
			return st, errs[p]
		}
		ps := &s.parts[p]
		st.PartitionPairs[p] = ps.pairs
		st.PartitionKeys[p] = profiles[p].keys
		st.PartitionMaxGroup[p] = profiles[p].maxGroup
		st.Pairs += ps.pairs
		st.Keys += profiles[p].keys
		if ps.pairs > st.MaxPartitionPairs {
			st.MaxPartitionPairs = ps.pairs
		}
		if profiles[p].maxGroup > st.MaxGroup {
			st.MaxGroup = profiles[p].maxGroup
		}
		st.SpillEvents += ps.spillEvents
		st.SpilledPairs += ps.spilledPairs
		st.BytesSpilled += ps.bytesSpilled
		st.IndexBytesSpilled += ps.indexBytes
		if ps.maxLivePairs > st.MaxLivePairs {
			st.MaxLivePairs = ps.maxLivePairs
		}
		if nruns := len(ps.runs) + len(ps.disk) + liveRun(ps.livePairs); nruns > 1 {
			st.RunsMerged += int64(nruns)
		}
		for i := range log2 {
			log2[i] += profiles[p].log2[i]
		}
	}
	for i := len(log2) - 1; i >= 0; i-- {
		if log2[i] > 0 {
			st.GroupSizeLog2 = append([]int64(nil), log2[:i+1]...)
			break
		}
	}
	st.DiskBytesRead = s.diskRead.Load()
	st.SwapBytes = s.swapBytes.Load()
	st.BytesReclaimed = s.bytesReclaimed.Load()
	st.PeakResidentPairs = s.peakResident.Load()
	return st, nil
}

// log2Bucket maps a group size to its GroupSizeLog2 bucket:
// floor(log2(n)), with sizes < 1 folded into bucket 0.
func log2Bucket(n int) int {
	if n < 2 {
		return 0
	}
	return bits.Len64(uint64(n)) - 1
}

// liveRun is 1 when a partition's live buffer holds pairs, else 0.
func liveRun(livePairs int) int {
	if livePairs > 0 {
		return 1
	}
	return 0
}

// SortKeys sorts keys in the package's canonical deterministic order:
// numeric order for the integer and float kinds (slices.Sort — pdqsort
// on the concrete type, no reflection), byte order for strings and,
// for every other comparable type, order of the formatted value —
// computed once per key rather than once per comparison, unlike the
// seed's fmt-per-comparison fallback.
func SortKeys[K comparable](keys []K) {
	switch ks := any(keys).(type) {
	case []int:
		slices.Sort(ks)
	case []int8:
		slices.Sort(ks)
	case []int16:
		slices.Sort(ks)
	case []int32:
		slices.Sort(ks)
	case []int64:
		slices.Sort(ks)
	case []uint:
		slices.Sort(ks)
	case []uint8:
		slices.Sort(ks)
	case []uint16:
		slices.Sort(ks)
	case []uint32:
		slices.Sort(ks)
	case []uint64:
		slices.Sort(ks)
	case []uintptr:
		slices.Sort(ks)
	case []float32:
		slices.Sort(ks)
	case []float64:
		slices.Sort(ks)
	case []string:
		slices.Sort(ks)
	default:
		fm := make(map[K]string, len(keys))
		for _, k := range keys {
			if _, ok := fm[k]; !ok {
				fm[k] = fmt.Sprint(k)
			}
		}
		slices.SortFunc(keys, func(a, b K) int { return strings.Compare(fm[a], fm[b]) })
	}
}
