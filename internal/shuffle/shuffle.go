// Package shuffle implements the partitioned grouped shuffle that sits
// between the map and reduce phases of the mr runtime.
//
// The paper's whole subject is the data volume crossing this boundary
// (the communication cost, from which the replication rate r is derived)
// and how it is divided among reducers (the reducer size q). The seed
// runtime modeled the boundary as a single global map merged under one
// goroutine; this package replaces it with a real partitioned exchange:
// keys are hashed into P partitions, each map task pre-buckets its
// output by partition, and the merge runs one goroutine per partition
// with exclusive ownership — no locks on the merge path at all. The
// per-partition pair counts, key counts and largest key group that the
// package reports are therefore properties of an actual execution, not
// post-hoc accounting.
//
// Keys are hashed with hash/maphash's typed fast path
// (maphash.Comparable compiles down to the runtime's native memhash for
// fixed-size keys and strhash for strings) rather than by formatting
// the key with fmt and hashing the string, which the seed did.
//
// An optional bounded-memory mode caps the number of pairs a partition
// buffers in its live run: when the cap is exceeded the run is sealed —
// the in-memory analogue of a spill to disk — and the shuffle reports
// the resulting spill pressure, so that callers can observe when a
// workload outgrows memory long before a disk-backed backend exists.
package shuffle

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
)

// sharedSeed makes every Hasher in the process agree on key placement,
// so that independently created hashers (for example one per job round)
// route the same key to the same partition.
var sharedSeed = maphash.MakeSeed()

// Hasher hashes comparable keys with the runtime's typed hash.
type Hasher[K comparable] struct {
	seed maphash.Seed
}

// NewHasher returns a Hasher using the process-wide seed.
func NewHasher[K comparable]() Hasher[K] {
	return Hasher[K]{seed: sharedSeed}
}

// Hash returns a 64-bit hash of the key. This is the typed fast path:
// maphash.Comparable dispatches to the runtime's native hash for K's
// memory layout (memhash for fixed-size keys such as ints and structs,
// strhash for strings) with no formatting, boxing, or reflection.
func (h Hasher[K]) Hash(k K) uint64 {
	return maphash.Comparable(h.seed, k)
}

// Options configures a Shuffle.
type Options struct {
	// Partitions is the number of shuffle partitions P. Values <= 0
	// select DefaultPartitions(). The effective count is rounded up to
	// a power of two so partition selection is a mask, not a modulo.
	Partitions int

	// MaxBufferedPairs, when positive, enables bounded-memory mode: a
	// partition whose live run exceeds this many buffered pairs seals
	// the run (the in-memory analogue of spilling a sorted segment to
	// disk) and starts a new one. Stats reports the spill pressure.
	MaxBufferedPairs int
}

// DefaultPartitions is the partition count used when Options.Partitions
// is unset: enough to keep every core busy during the merge and to give
// the LPT partition scheduler room to balance, rounded to a power of
// two and clamped to [8, 256].
func DefaultPartitions() int {
	p := runtime.GOMAXPROCS(0) * 4
	if p < 8 {
		p = 8
	}
	if p > 256 {
		p = 256
	}
	return ceilPow2(p)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Pair is one key-value pair buffered by a map task.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Shuffle is a P-way partitioned grouped exchange from map tasks to
// reduce partitions.
type Shuffle[K comparable, V any] struct {
	hasher      Hasher[K]
	partitioner func(K) int // optional override; used by tests and schemas
	opts        Options
	nparts      int
	mask        uint64
	parts       []partitionState[K, V]
	mergeMu     sync.Mutex
}

// partitionState is owned by exactly one goroutine during Merge, so it
// needs no lock.
type partitionState[K comparable, V any] struct {
	runs         []map[K][]V // sealed runs, in seal order (bounded-memory mode)
	live         map[K][]V
	livePairs    int
	pairs        int64
	spillEvents  int64
	spilledPairs int64
}

// New creates a shuffle with the given options.
func New[K comparable, V any](opts Options) *Shuffle[K, V] {
	n := opts.Partitions
	if n <= 0 {
		n = DefaultPartitions()
	}
	n = ceilPow2(n)
	s := &Shuffle[K, V]{
		hasher: NewHasher[K](),
		opts:   opts,
		nparts: n,
		mask:   uint64(n - 1),
		parts:  make([]partitionState[K, V], n),
	}
	for i := range s.parts {
		s.parts[i].live = make(map[K][]V)
	}
	return s
}

// SetPartitioner overrides hash placement with an explicit key-to-
// partition function (reduced modulo the partition count). It must be
// called before any TaskBuffer is created.
func (s *Shuffle[K, V]) SetPartitioner(fn func(K) int) {
	s.partitioner = fn
}

// NumPartitions returns the effective partition count P.
func (s *Shuffle[K, V]) NumPartitions() int { return s.nparts }

// PartitionOf returns the partition a key routes to.
func (s *Shuffle[K, V]) PartitionOf(k K) int {
	if s.partitioner != nil {
		p := s.partitioner(k) % s.nparts
		if p < 0 {
			p += s.nparts
		}
		return p
	}
	return int(s.hasher.Hash(k) & s.mask)
}

// TaskBuffer collects one map task's output, pre-bucketed by partition,
// so the merge never rehashes a key. A TaskBuffer belongs to a single
// map task and is not safe for concurrent use.
type TaskBuffer[K comparable, V any] struct {
	s       *Shuffle[K, V]
	buckets [][]Pair[K, V]
	pairs   int64
}

// NewTaskBuffer creates an empty buffer bound to this shuffle's
// partitioning.
func (s *Shuffle[K, V]) NewTaskBuffer() *TaskBuffer[K, V] {
	return &TaskBuffer[K, V]{s: s, buckets: make([][]Pair[K, V], s.nparts)}
}

// Emit buffers one pair into its partition's bucket.
func (b *TaskBuffer[K, V]) Emit(k K, v V) {
	p := b.s.PartitionOf(k)
	b.buckets[p] = append(b.buckets[p], Pair[K, V]{k, v})
	b.pairs++
}

// Pairs returns the number of pairs buffered so far.
func (b *TaskBuffer[K, V]) Pairs() int64 { return b.pairs }

// Merge folds the buffers into the shuffle's partitions, one goroutine
// per partition with exclusive ownership of its state (lock-free on the
// merge path). Buffers are processed in slice order, so the values of a
// key preserve task order and, within a task, emission order — the
// property the runtime's deterministic output contract rests on. Merge
// may be called more than once; calls are serialized.
func (s *Shuffle[K, V]) Merge(buffers []*TaskBuffer[K, V]) {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	var wg sync.WaitGroup
	for p := 0; p < s.nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			st := &s.parts[p]
			for _, b := range buffers {
				if b == nil {
					continue
				}
				for _, pr := range b.buckets[p] {
					st.live[pr.Key] = append(st.live[pr.Key], pr.Value)
					st.livePairs++
					st.pairs++
					if cap := s.opts.MaxBufferedPairs; cap > 0 && st.livePairs > cap {
						st.seal()
					}
				}
			}
		}(p)
	}
	wg.Wait()
}

// seal closes the live run, recording spill pressure.
func (st *partitionState[K, V]) seal() {
	if st.livePairs == 0 {
		return
	}
	st.runs = append(st.runs, st.live)
	st.spillEvents++
	st.spilledPairs += int64(st.livePairs)
	st.live = make(map[K][]V)
	st.livePairs = 0
}

// Partition is a read view of one shuffle partition.
type Partition[K comparable, V any] struct {
	s   *Shuffle[K, V]
	idx int
}

// Partition returns the view of partition p.
func (s *Shuffle[K, V]) Partition(p int) Partition[K, V] {
	return Partition[K, V]{s: s, idx: p}
}

// Pairs is the number of pairs the partition holds.
func (p Partition[K, V]) Pairs() int64 { return p.s.parts[p.idx].pairs }

// NumKeys is the number of distinct keys in the partition.
func (p Partition[K, V]) NumKeys() int {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 {
		return len(st.live)
	}
	seen := make(map[K]struct{}, len(st.live))
	for _, run := range st.runs {
		for k := range run {
			seen[k] = struct{}{}
		}
	}
	for k := range st.live {
		seen[k] = struct{}{}
	}
	return len(seen)
}

// SortedKeys returns the partition's distinct keys in the package's
// canonical deterministic order (see SortKeys).
func (p Partition[K, V]) SortedKeys() []K {
	st := &p.s.parts[p.idx]
	var keys []K
	if len(st.runs) == 0 {
		keys = make([]K, 0, len(st.live))
		for k := range st.live {
			keys = append(keys, k)
		}
	} else {
		seen := make(map[K]struct{})
		for _, run := range st.runs {
			for k := range run {
				seen[k] = struct{}{}
			}
		}
		for k := range st.live {
			seen[k] = struct{}{}
		}
		keys = make([]K, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
	}
	SortKeys(keys)
	return keys
}

// Values returns all values for a key, concatenated across sealed runs
// in seal order and then the live run — which preserves the original
// task-emission order.
func (p Partition[K, V]) Values(k K) []V {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 {
		return st.live[k]
	}
	var vs []V
	for _, run := range st.runs {
		vs = append(vs, run[k]...)
	}
	vs = append(vs, st.live[k]...)
	return vs
}

// ForEachSorted visits the partition's groups in sorted key order.
func (p Partition[K, V]) ForEachSorted(fn func(k K, vs []V)) {
	for _, k := range p.SortedKeys() {
		fn(k, p.Values(k))
	}
}

// Stats is the realized communication profile of the shuffle.
type Stats struct {
	// Partitions is the effective partition count P.
	Partitions int
	// Pairs is the total number of pairs shuffled (post-combine when the
	// caller combined before buffering).
	Pairs int64
	// Keys is the total number of distinct keys across partitions —
	// the number of reducers in the paper's sense.
	Keys int64
	// PartitionPairs, PartitionKeys and PartitionMaxGroup are the
	// per-partition profiles (pairs held, distinct keys, largest single
	// key group).
	PartitionPairs    []int64
	PartitionKeys     []int64
	PartitionMaxGroup []int64
	// MaxPartitionPairs is the heaviest partition's pair count; with
	// MeanPartitionPairs it quantifies partition skew.
	MaxPartitionPairs int64
	// MaxGroup is the largest single key group — the realized reducer
	// size q.
	MaxGroup int64
	// SpillEvents and SpilledPairs report bounded-memory pressure: how
	// many runs were sealed and how many pairs they held.
	SpillEvents  int64
	SpilledPairs int64
}

// Skew is max/mean partition load, 1 for a perfectly even exchange and
// 0 for an empty one.
func (st Stats) Skew() float64 {
	if st.Pairs == 0 || st.Partitions == 0 {
		return 0
	}
	mean := float64(st.Pairs) / float64(st.Partitions)
	return float64(st.MaxPartitionPairs) / mean
}

// String renders a one-line summary.
func (st Stats) String() string {
	return fmt.Sprintf("P=%d pairs=%d keys=%d maxq=%d skew=%.2f spills=%d",
		st.Partitions, st.Pairs, st.Keys, st.MaxGroup, st.Skew(), st.SpillEvents)
}

// Stats computes the shuffle's realized profile. It walks every group,
// so call it once per phase, not per key.
func (s *Shuffle[K, V]) Stats() Stats {
	st := Stats{
		Partitions:        s.nparts,
		PartitionPairs:    make([]int64, s.nparts),
		PartitionKeys:     make([]int64, s.nparts),
		PartitionMaxGroup: make([]int64, s.nparts),
	}
	type partProfile struct {
		keys     int64
		maxGroup int64
	}
	profiles := make([]partProfile, s.nparts)
	var wg sync.WaitGroup
	for p := 0; p < s.nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ps := &s.parts[p]
			if len(ps.runs) == 0 {
				profiles[p].keys = int64(len(ps.live))
				for _, vs := range ps.live {
					if g := int64(len(vs)); g > profiles[p].maxGroup {
						profiles[p].maxGroup = g
					}
				}
				return
			}
			sizes := make(map[K]int64, len(ps.live))
			for _, run := range ps.runs {
				for k, vs := range run {
					sizes[k] += int64(len(vs))
				}
			}
			for k, vs := range ps.live {
				sizes[k] += int64(len(vs))
			}
			profiles[p].keys = int64(len(sizes))
			for _, g := range sizes {
				if g > profiles[p].maxGroup {
					profiles[p].maxGroup = g
				}
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < s.nparts; p++ {
		ps := &s.parts[p]
		st.PartitionPairs[p] = ps.pairs
		st.PartitionKeys[p] = profiles[p].keys
		st.PartitionMaxGroup[p] = profiles[p].maxGroup
		st.Pairs += ps.pairs
		st.Keys += profiles[p].keys
		if ps.pairs > st.MaxPartitionPairs {
			st.MaxPartitionPairs = ps.pairs
		}
		if profiles[p].maxGroup > st.MaxGroup {
			st.MaxGroup = profiles[p].maxGroup
		}
		st.SpillEvents += ps.spillEvents
		st.SpilledPairs += ps.spilledPairs
	}
	return st
}

// SortKeys sorts keys in the package's canonical deterministic order:
// numeric order for the integer and float kinds, byte order for strings
// and, for every other comparable type, order of the formatted value —
// computed once per key rather than once per comparison, unlike the
// seed's fmt-per-comparison fallback.
func SortKeys[K comparable](keys []K) {
	switch ks := any(keys).(type) {
	case []int:
		sort.Ints(ks)
	case []int8:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []int16:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []int32:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []int64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint8:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint16:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint32:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uintptr:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []float32:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []float64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []string:
		sort.Strings(ks)
	default:
		formatted := make([]string, len(keys))
		for i, k := range keys {
			formatted[i] = fmt.Sprint(k)
		}
		sort.Sort(&byFormatted[K]{keys: keys, formatted: formatted})
	}
}

type byFormatted[K comparable] struct {
	keys      []K
	formatted []string
}

func (b *byFormatted[K]) Len() int           { return len(b.keys) }
func (b *byFormatted[K]) Less(i, j int) bool { return b.formatted[i] < b.formatted[j] }
func (b *byFormatted[K]) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.formatted[i], b.formatted[j] = b.formatted[j], b.formatted[i]
}
