// Package shuffle implements the partitioned grouped shuffle that sits
// between the map and reduce phases of the mr runtime.
//
// The paper's whole subject is the data volume crossing this boundary
// (the communication cost, from which the replication rate r is derived)
// and how it is divided among reducers (the reducer size q). The seed
// runtime modeled the boundary as a single global map merged under one
// goroutine; this package replaces it with a real partitioned exchange:
// keys are hashed into P partitions, each map task pre-buckets its
// output by partition, and the merge runs one goroutine per partition
// with exclusive ownership — no locks on the merge path at all. The
// per-partition pair counts, key counts and largest key group that the
// package reports are therefore properties of an actual execution, not
// post-hoc accounting.
//
// Keys are hashed with hash/maphash's typed fast path
// (maphash.Comparable compiles down to the runtime's native memhash for
// fixed-size keys and strhash for strings) rather than by formatting
// the key with fmt and hashing the string, which the seed did.
//
// An optional bounded-memory mode caps the number of pairs a partition
// buffers in its live run: when the cap is reached the run is sealed
// and, when a SpillDir is configured, encoded in sorted-key order to a
// disk run file (internal/runfile). At read time each partition streams
// its key groups through a k-way heap merge over the on-disk runs, the
// in-memory sealed runs, and the live run, so a partition several times
// larger than its budget is reduced without ever being resident at
// once. Without a SpillDir, sealed runs stay in memory and only the
// spill pressure is reported, as in earlier versions.
package shuffle

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/runfile"
)

// sharedSeed makes every Hasher in the process agree on key placement,
// so that independently created hashers (for example one per job round)
// route the same key to the same partition.
var sharedSeed = maphash.MakeSeed()

// pinnedHash is the WithSeed test hook: when armed, new Hashers place
// keys with a deterministic FNV-1a over the formatted key instead of
// the process-random maphash seed, so partition-placement-dependent
// observations (per-partition profiles, makespan, spill counts) are
// reproducible across runs and processes.
var pinnedHash struct {
	mu   sync.Mutex
	on   bool
	seed uint64
}

// WithSeed pins key placement to a deterministic seed and returns a
// restore func. Hashers (and therefore Shuffles and engine rounds)
// created between WithSeed and restore hash the canonical formatted
// key with seeded FNV-1a — slower, but identical in every process.
// Intended for tests; do not leave pinned in production paths.
func WithSeed(seed uint64) (restore func()) {
	pinnedHash.mu.Lock()
	prevOn, prevSeed := pinnedHash.on, pinnedHash.seed
	pinnedHash.on, pinnedHash.seed = true, seed
	pinnedHash.mu.Unlock()
	return func() {
		pinnedHash.mu.Lock()
		pinnedHash.on, pinnedHash.seed = prevOn, prevSeed
		pinnedHash.mu.Unlock()
	}
}

// Hasher hashes comparable keys with the runtime's typed hash.
type Hasher[K comparable] struct {
	seed   maphash.Seed
	pinned bool
	pseed  uint64
}

// NewHasher returns a Hasher using the process-wide seed, or the
// deterministic pinned hasher when WithSeed is in effect.
func NewHasher[K comparable]() Hasher[K] {
	pinnedHash.mu.Lock()
	on, ps := pinnedHash.on, pinnedHash.seed
	pinnedHash.mu.Unlock()
	if on {
		return Hasher[K]{pinned: true, pseed: ps}
	}
	return Hasher[K]{seed: sharedSeed}
}

// Hash returns a 64-bit hash of the key. This is the typed fast path:
// maphash.Comparable dispatches to the runtime's native hash for K's
// memory layout (memhash for fixed-size keys such as ints and structs,
// strhash for strings) with no formatting, boxing, or reflection.
func (h Hasher[K]) Hash(k K) uint64 {
	if h.pinned {
		const prime = 1099511628211
		hv := uint64(14695981039346656037) ^ (h.pseed * prime)
		s := fmt.Sprint(k)
		for i := 0; i < len(s); i++ {
			hv = (hv ^ uint64(s[i])) * prime
		}
		return hv
	}
	return maphash.Comparable(h.seed, k)
}

// Options configures a Shuffle.
type Options struct {
	// Partitions is the number of shuffle partitions P. Values <= 0
	// select DefaultPartitions(). The effective count is rounded up to
	// a power of two so partition selection is a mask, not a modulo.
	Partitions int

	// MaxBufferedPairs is the per-partition memory budget, in pairs.
	// When positive, a partition whose live run reaches this many
	// buffered pairs seals the run and starts a new one, so the live
	// buffer never exceeds the budget. Stats reports the spill
	// pressure.
	MaxBufferedPairs int

	// SpillDir, when set together with MaxBufferedPairs, makes sealed
	// runs real: each is encoded in sorted-key order to a temp run
	// file under this directory and dropped from memory. Read APIs
	// stream a k-way merge over disk and live runs. Call Close to
	// delete the files. When empty, sealed runs stay in memory.
	SpillDir string

	// FS overrides the filesystem behind spill run files. Nil selects
	// the real filesystem (runfile.OSFS); fault-injection tests thread
	// an errfs.FS here to fail chosen creates, reads, writes and
	// closes.
	FS runfile.FS
}

// DefaultPartitions is the partition count used when Options.Partitions
// is unset: enough to keep every core busy during the merge and to give
// the LPT partition scheduler room to balance, rounded to a power of
// two and clamped to [8, 256].
func DefaultPartitions() int {
	p := runtime.GOMAXPROCS(0) * 4
	if p < 8 {
		p = 8
	}
	if p > 256 {
		p = 256
	}
	return ceilPow2(p)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Pair is one key-value pair buffered by a map task.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Shuffle is a P-way partitioned grouped exchange from map tasks to
// reduce partitions.
type Shuffle[K comparable, V any] struct {
	hasher       Hasher[K]
	partitioner  func(K) int      // optional override; used by tests and schemas
	combiner     func(K, []V) []V // optional associative pre-aggregation, applied at seal time
	opts         Options
	nparts       int
	mask         uint64
	parts        []partitionState[K, V]
	mergeMu      sync.Mutex
	closed       bool
	spillTypeErr error         // non-nil when K or V cannot survive a disk round trip
	fs           runfile.FS    // filesystem behind run files (OSFS unless injected)
	diskSem      chan struct{} // bounds concurrent multi-file disk reads (fd cap)
	diskRead     atomic.Int64  // bytes read back from spill run files
	perValue     bool          // test/bench hook: legacy per-value spill decode

	statsMu   sync.Mutex
	statsMemo *Stats // memoized Stats, invalidated by Merge
}

// partitionState is owned by exactly one goroutine during Merge, so it
// needs no lock.
type partitionState[K comparable, V any] struct {
	runs          []map[K][]V  // sealed in-memory runs, in seal order
	disk          []diskRun[K] // sealed on-disk runs, in seal order
	spilledToDisk bool         // ever had a disk run (sticky across Close)
	live          map[K][]V
	livePairs     int
	maxLivePairs  int // high-water mark of livePairs
	pairs         int64
	spillEvents   int64
	spilledPairs  int64
	bytesSpilled  int64
	indexBytes    int64 // footer-index bytes written alongside run data
}

// New creates a shuffle with the given options.
func New[K comparable, V any](opts Options) *Shuffle[K, V] {
	n := opts.Partitions
	if n <= 0 {
		n = DefaultPartitions()
	}
	n = ceilPow2(n)
	s := &Shuffle[K, V]{
		hasher: NewHasher[K](),
		opts:   opts,
		nparts: n,
		mask:   uint64(n - 1),
		parts:  make([]partitionState[K, V], n),
	}
	for i := range s.parts {
		s.parts[i].live = make(map[K][]V)
	}
	s.fs = opts.FS
	if s.fs == nil {
		s.fs = runfile.OSFS
	}
	if opts.SpillDir != "" {
		// Keys grouped after a disk round trip are compared with ==, so
		// types whose decoded copies break == (pointer fields, etc.)
		// must fail the first seal loudly instead of splitting groups;
		// values must survive without silent loss (gob drops unexported
		// struct fields without error).
		if err := runfile.CanRoundTripIdentity[K](); err != nil {
			s.spillTypeErr = fmt.Errorf("key type: %w", err)
		} else if err := runfile.CanRoundTripFidelity[V](); err != nil {
			s.spillTypeErr = fmt.Errorf("value type: %w", err)
		}
		s.diskSem = make(chan struct{}, diskReadConcurrency)
	}
	return s
}

// SetPartitioner overrides hash placement with an explicit key-to-
// partition function (reduced modulo the partition count). It must be
// called before any TaskBuffer is created.
func (s *Shuffle[K, V]) SetPartitioner(fn func(K) int) {
	s.partitioner = fn
}

// SetCombiner pushes an associative pre-aggregation down into the
// shuffle's sealing path: whenever a partition's live run reaches the
// memory budget, each key's buffered values are combined before the
// run is sealed, and sealed again across runs when disk runs are
// compacted. Spilled bytes then track the post-combine communication
// cost rather than the raw emission stream, and a seal whose combine
// frees enough of the budget is skipped entirely. The function must be
// semantically transparent the way a map-side combiner is —
// reduce(k, combine(vs)) == reduce(k, vs) for any split of vs — since
// sealing applies it to arbitrary prefixes of a key's values and may
// re-apply it to already-combined partials. It must be called before
// Merge.
func (s *Shuffle[K, V]) SetCombiner(fn func(key K, values []V) []V) {
	// The combiner changes what future seals spill, so a Stats profile
	// memoized before this call must not survive it — invalidating only
	// on Merge would serve a stale profile to a caller that re-reads
	// Stats between SetCombiner and the next Merge.
	s.statsMu.Lock()
	s.statsMemo = nil
	s.statsMu.Unlock()
	s.combiner = fn
}

// NumPartitions returns the effective partition count P.
func (s *Shuffle[K, V]) NumPartitions() int { return s.nparts }

// PartitionOf returns the partition a key routes to.
func (s *Shuffle[K, V]) PartitionOf(k K) int {
	if s.partitioner != nil {
		p := s.partitioner(k) % s.nparts
		if p < 0 {
			p += s.nparts
		}
		return p
	}
	return int(s.hasher.Hash(k) & s.mask)
}

// TaskBuffer collects one map task's output, pre-bucketed by partition,
// so the merge never rehashes a key. A TaskBuffer belongs to a single
// map task and is not safe for concurrent use.
type TaskBuffer[K comparable, V any] struct {
	s       *Shuffle[K, V]
	buckets [][]Pair[K, V]
	pairs   int64
}

// NewTaskBuffer creates an empty buffer bound to this shuffle's
// partitioning.
func (s *Shuffle[K, V]) NewTaskBuffer() *TaskBuffer[K, V] {
	return &TaskBuffer[K, V]{s: s, buckets: make([][]Pair[K, V], s.nparts)}
}

// Emit buffers one pair into its partition's bucket.
func (b *TaskBuffer[K, V]) Emit(k K, v V) {
	p := b.s.PartitionOf(k)
	b.buckets[p] = append(b.buckets[p], Pair[K, V]{k, v})
	b.pairs++
}

// Pairs returns the number of pairs buffered so far.
func (b *TaskBuffer[K, V]) Pairs() int64 { return b.pairs }

// Merge folds the buffers into the shuffle's partitions, one goroutine
// per partition with exclusive ownership of its state (lock-free on the
// merge path). Buffers are processed in slice order, so the values of a
// key preserve task order and, within a task, emission order — the
// property the runtime's deterministic output contract rests on. Merge
// may be called more than once; calls are serialized. The error is
// non-nil only when a disk spill fails.
func (s *Shuffle[K, V]) Merge(buffers []*TaskBuffer[K, V]) error {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	s.statsMu.Lock()
	s.statsMemo = nil // the profile is about to change
	s.statsMu.Unlock()
	var wg sync.WaitGroup
	errs := make([]error, s.nparts)
	for p := 0; p < s.nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			st := &s.parts[p]
			for _, b := range buffers {
				if b == nil {
					continue
				}
				for _, pr := range b.buckets[p] {
					st.live[pr.Key] = append(st.live[pr.Key], pr.Value)
					st.livePairs++
					if st.livePairs > st.maxLivePairs {
						st.maxLivePairs = st.livePairs
					}
					st.pairs++
					if budget := s.opts.MaxBufferedPairs; budget > 0 && st.livePairs >= budget {
						if err := st.seal(s); err != nil {
							errs[p] = err
							return
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// seal closes the live run — to a disk run file when a SpillDir is
// set, otherwise to the in-memory run list — and records spill
// pressure. With a combiner, the live run is combined first; a combine
// that frees at least half the budget cancels the seal and the
// partition keeps buffering, so combiner-friendly workloads spill far
// less than their raw emission volume.
func (st *partitionState[K, V]) seal(s *Shuffle[K, V]) error {
	if st.livePairs == 0 {
		return nil
	}
	if s.combiner != nil {
		st.combineLive(s)
		if st.livePairs <= s.opts.MaxBufferedPairs/2 {
			return nil
		}
	}
	if s.opts.SpillDir != "" {
		if s.spillTypeErr != nil {
			return fmt.Errorf("shuffle: cannot spill: %w", s.spillTypeErr)
		}
		if err := st.spillToDisk(s); err != nil {
			return err
		}
	} else {
		st.runs = append(st.runs, st.live)
	}
	st.spillEvents++
	st.spilledPairs += int64(st.livePairs)
	st.live = make(map[K][]V)
	st.livePairs = 0
	return nil
}

// combineLive applies the combiner to every key group of the live run
// in place, keeping the partition's pair totals equal to the sum of
// its group counts. Keys whose combined value list comes back empty
// are dropped.
func (st *partitionState[K, V]) combineLive(s *Shuffle[K, V]) {
	post := 0
	for k, vs := range st.live {
		cv := s.combiner(k, vs)
		if len(cv) == 0 {
			delete(st.live, k)
			continue
		}
		st.live[k] = cv
		post += len(cv)
	}
	st.pairs -= int64(st.livePairs - post)
	st.livePairs = post
}

// Partition is a read view of one shuffle partition.
type Partition[K comparable, V any] struct {
	s   *Shuffle[K, V]
	idx int
}

// Partition returns the view of partition p.
func (s *Shuffle[K, V]) Partition(p int) Partition[K, V] {
	return Partition[K, V]{s: s, idx: p}
}

// Pairs is the number of pairs the partition holds.
func (p Partition[K, V]) Pairs() int64 { return p.s.parts[p.idx].pairs }

// NumKeys is the number of distinct keys in the partition. For a
// partition with on-disk runs this merges the runs' resident indexes
// in memory — no disk read. NumKeys is a best-effort convenience view:
// an error (such as reads after Close) yields a zero or partial count
// — use ForEachGroup where errors must be observed.
func (p Partition[K, V]) NumKeys() int {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 && !st.spilledToDisk {
		return len(st.live)
	}
	n := 0
	p.forEachGroup(false, false, func(K, int, []V) error { n++; return nil })
	return n
}

// SortedKeys returns the partition's distinct keys in the package's
// canonical deterministic order (see SortKeys), merging resident
// indexes for spilled runs (no disk read). Like NumKeys it is a
// best-effort view: an error yields a truncated slice — use
// ForEachGroup where errors must be observed.
func (p Partition[K, V]) SortedKeys() []K {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 && !st.spilledToDisk {
		return sortedMapKeys(st.live)
	}
	var keys []K
	p.forEachGroup(false, false, func(k K, _ int, _ []V) error {
		keys = append(keys, k)
		return nil
	})
	return keys
}

// Values returns all values for a key, concatenated across sealed runs
// in seal order and then the live run — which preserves the original
// task-emission order. With on-disk runs this scans the partition (and
// like NumKeys returns best-effort data on a spill read error); use
// ForEachGroup to visit every group in one error-aware streaming pass.
func (p Partition[K, V]) Values(k K) []V {
	st := &p.s.parts[p.idx]
	if len(st.runs) == 0 && !st.spilledToDisk {
		return st.live[k]
	}
	var out []V
	p.forEachGroup(true, false, func(key K, _ int, vs []V) error {
		if key == k {
			out = vs
			return errStopIteration
		}
		return nil
	})
	return out
}

// ForEachSorted visits the partition's groups in sorted key order.
// Unlike ForEachGroup it cannot surface spill-read errors; callers on
// the disk-backed path should prefer ForEachGroup.
func (p Partition[K, V]) ForEachSorted(fn func(k K, vs []V)) {
	p.ForEachGroup(func(k K, vs []V) error {
		fn(k, vs)
		return nil
	})
}

// ForEachGroup streams the partition's key groups in canonical sorted
// key order through fn, k-way merging the partition's on-disk runs,
// in-memory sealed runs, and live run without materializing the
// partition. A key's values arrive concatenated across runs in seal
// order then the live run — the package's value-order contract. An
// error from fn stops the iteration and is returned; I/O and decode
// errors reading spilled runs are returned likewise. The value slices
// are stable — nothing overwrites them after fn returns, so they are
// safe to retain — but in-memory groups alias the shuffle's live and
// sealed run buffers, so treat them as read-only. Use
// ForEachGroupBatch when fn does not retain them at all.
func (p Partition[K, V]) ForEachGroup(fn func(k K, vs []V) error) error {
	return p.forEachGroup(true, false, func(k K, _ int, vs []V) error {
		return fn(k, vs)
	})
}

// ForEachGroupBatch is ForEachGroup under the batch arena-reuse
// contract: the value slice passed to fn is valid only during the
// call — for spilled runs it is decoded into a per-run scratch slice
// that the next group reuses, so a full partition streams with one
// value-section read and one batch decode per group and near-zero
// per-group allocation. fn must not retain the slice (copy it to keep
// it). Callers that retain values use ForEachGroup, whose slices stay
// stable after the call — the two are otherwise identical, key order
// and value-order contract included.
func (p Partition[K, V]) ForEachGroupBatch(fn func(k K, vs []V) error) error {
	return p.forEachGroup(true, true, func(k K, _ int, vs []V) error {
		return fn(k, vs)
	})
}

// ForEachGroupCount is ForEachGroup's counting mode: it streams every
// group's key and size in sorted key order by merging the spilled
// runs' resident indexes with the in-memory runs — run files are never
// opened, so the pass is pure memory. This is the cheap pass for load
// profiling and overflow diagnosis.
func (p Partition[K, V]) ForEachGroupCount(fn func(k K, count int) error) error {
	return p.forEachGroup(false, false, func(k K, count int, _ []V) error {
		return fn(k, count)
	})
}

// Stats is the realized communication profile of the shuffle.
type Stats struct {
	// Partitions is the effective partition count P.
	Partitions int
	// Pairs is the total number of pairs shuffled (post-combine when the
	// caller combined before buffering).
	Pairs int64
	// Keys is the total number of distinct keys across partitions —
	// the number of reducers in the paper's sense.
	Keys int64
	// PartitionPairs, PartitionKeys and PartitionMaxGroup are the
	// per-partition profiles (pairs held, distinct keys, largest single
	// key group).
	PartitionPairs    []int64
	PartitionKeys     []int64
	PartitionMaxGroup []int64
	// MaxPartitionPairs is the heaviest partition's pair count; with
	// MeanPartitionPairs it quantifies partition skew.
	MaxPartitionPairs int64
	// MaxGroup is the largest single key group — the realized reducer
	// size q.
	MaxGroup int64
	// SpillEvents and SpilledPairs report bounded-memory pressure: how
	// many runs were sealed and how many pairs they held.
	SpillEvents  int64
	SpilledPairs int64
	// BytesSpilled is the total encoded size of run data written to
	// disk — header and key groups, not the footer indexes — so it
	// tracks the communication volume the paper reasons about (zero
	// without a SpillDir). With a combiner pushed down (SetCombiner) it
	// tracks the post-combine communication cost rather than the raw
	// emission volume. IndexBytesSpilled is the metadata written on
	// top: the prefix-compressed footer indexes; total file bytes are
	// the sum of the two.
	BytesSpilled      int64
	IndexBytesSpilled int64
	// DiskBytesRead is the cumulative number of bytes read back from
	// spill run files, across reduce-time merges and compaction.
	// Computing Stats itself adds nothing to it: the counting pass
	// merges resident indexes in memory.
	DiskBytesRead int64
	// RunsMerged is the number of runs (disk, sealed in-memory, live)
	// that the reduce-time k-way merges combine, summed over the
	// partitions that sealed at least once.
	RunsMerged int64
	// MaxLivePairs is the high-water mark of any partition's live
	// buffer. Under a memory budget it never exceeds MaxBufferedPairs:
	// the proof that execution stayed within budget.
	MaxLivePairs int
}

// Skew is max/mean partition load, 1 for a perfectly even exchange and
// 0 for an empty one.
func (st Stats) Skew() float64 {
	if st.Pairs == 0 || st.Partitions == 0 {
		return 0
	}
	mean := float64(st.Pairs) / float64(st.Partitions)
	return float64(st.MaxPartitionPairs) / mean
}

// String renders a one-line summary.
func (st Stats) String() string {
	return fmt.Sprintf("P=%d pairs=%d keys=%d maxq=%d skew=%.2f spills=%d",
		st.Partitions, st.Pairs, st.Keys, st.MaxGroup, st.Skew(), st.SpillEvents)
}

// Stats computes the shuffle's realized profile. The walk is pure
// memory even for spilled partitions — each disk run's (key, count)
// index is resident, so no run file is read. The result is memoized:
// repeat calls return the cached profile (with DiskBytesRead
// refreshed, since reduce-time reads keep accruing) until the next
// Merge invalidates it. The error is non-nil only when the shuffle's
// spilled state is unreadable (for example after Close).
func (s *Shuffle[K, V]) Stats() (Stats, error) {
	s.statsMu.Lock()
	if s.statsMemo != nil {
		st := *s.statsMemo
		s.statsMu.Unlock()
		// Fresh per-partition slices, as a computed Stats would return:
		// a caller sorting or scaling its result must not corrupt the
		// memo for later calls.
		st.PartitionPairs = append([]int64(nil), st.PartitionPairs...)
		st.PartitionKeys = append([]int64(nil), st.PartitionKeys...)
		st.PartitionMaxGroup = append([]int64(nil), st.PartitionMaxGroup...)
		st.DiskBytesRead = s.diskRead.Load()
		return st, nil
	}
	s.statsMu.Unlock()
	st, err := s.computeStats()
	if err != nil {
		return st, err
	}
	memo := st
	s.statsMu.Lock()
	s.statsMemo = &memo
	s.statsMu.Unlock()
	return st, nil
}

// DiskBytesRead is the cumulative number of bytes read back from spill
// run files so far (see Stats.DiskBytesRead).
func (s *Shuffle[K, V]) DiskBytesRead() int64 { return s.diskRead.Load() }

func (s *Shuffle[K, V]) computeStats() (Stats, error) {
	st := Stats{
		Partitions:        s.nparts,
		PartitionPairs:    make([]int64, s.nparts),
		PartitionKeys:     make([]int64, s.nparts),
		PartitionMaxGroup: make([]int64, s.nparts),
	}
	type partProfile struct {
		keys     int64
		maxGroup int64
	}
	profiles := make([]partProfile, s.nparts)
	errs := make([]error, s.nparts)
	var wg sync.WaitGroup
	for p := 0; p < s.nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ps := &s.parts[p]
			if len(ps.runs) == 0 && !ps.spilledToDisk {
				profiles[p].keys = int64(len(ps.live))
				for _, vs := range ps.live {
					if g := int64(len(vs)); g > profiles[p].maxGroup {
						profiles[p].maxGroup = g
					}
				}
				return
			}
			// Spilled partitions merge their resident run indexes with
			// the in-memory runs: a pure in-memory pass.
			errs[p] = s.Partition(p).forEachGroup(false, false, func(_ K, count int, _ []V) error {
				profiles[p].keys++
				if g := int64(count); g > profiles[p].maxGroup {
					profiles[p].maxGroup = g
				}
				return nil
			})
		}(p)
	}
	wg.Wait()
	for p := 0; p < s.nparts; p++ {
		if errs[p] != nil {
			return st, errs[p]
		}
		ps := &s.parts[p]
		st.PartitionPairs[p] = ps.pairs
		st.PartitionKeys[p] = profiles[p].keys
		st.PartitionMaxGroup[p] = profiles[p].maxGroup
		st.Pairs += ps.pairs
		st.Keys += profiles[p].keys
		if ps.pairs > st.MaxPartitionPairs {
			st.MaxPartitionPairs = ps.pairs
		}
		if profiles[p].maxGroup > st.MaxGroup {
			st.MaxGroup = profiles[p].maxGroup
		}
		st.SpillEvents += ps.spillEvents
		st.SpilledPairs += ps.spilledPairs
		st.BytesSpilled += ps.bytesSpilled
		st.IndexBytesSpilled += ps.indexBytes
		if ps.maxLivePairs > st.MaxLivePairs {
			st.MaxLivePairs = ps.maxLivePairs
		}
		if nruns := len(ps.runs) + len(ps.disk) + liveRun(ps.livePairs); nruns > 1 {
			st.RunsMerged += int64(nruns)
		}
	}
	st.DiskBytesRead = s.diskRead.Load()
	return st, nil
}

// liveRun is 1 when a partition's live buffer holds pairs, else 0.
func liveRun(livePairs int) int {
	if livePairs > 0 {
		return 1
	}
	return 0
}

// SortKeys sorts keys in the package's canonical deterministic order:
// numeric order for the integer and float kinds, byte order for strings
// and, for every other comparable type, order of the formatted value —
// computed once per key rather than once per comparison, unlike the
// seed's fmt-per-comparison fallback.
func SortKeys[K comparable](keys []K) {
	switch ks := any(keys).(type) {
	case []int:
		sort.Ints(ks)
	case []int8:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []int16:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []int32:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []int64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint8:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint16:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint32:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uintptr:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []float32:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []float64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []string:
		sort.Strings(ks)
	default:
		formatted := make([]string, len(keys))
		for i, k := range keys {
			formatted[i] = fmt.Sprint(k)
		}
		sort.Sort(&byFormatted[K]{keys: keys, formatted: formatted})
	}
}

type byFormatted[K comparable] struct {
	keys      []K
	formatted []string
}

func (b *byFormatted[K]) Len() int           { return len(b.keys) }
func (b *byFormatted[K]) Less(i, j int) bool { return b.formatted[i] < b.formatted[j] }
func (b *byFormatted[K]) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.formatted[i], b.formatted[j] = b.formatted[j], b.formatted[i]
}
