package shuffle

import (
	"reflect"
	"testing"
)

// buildSpilled fills a one-partition shuffle with n pairs over nKeys
// keys (values i for key i%nKeys) under the given budget and returns
// it unclosed.
func buildSpilled(t *testing.T, budget, n, nKeys int, combiner func(int, []int) []int) *Shuffle[int, int] {
	t.Helper()
	s := New[int, int](Options{Partitions: 2, MaxBufferedPairs: budget, SpillDir: t.TempDir()})
	s.SetPartitioner(func(int) int { return 0 })
	if combiner != nil {
		s.SetCombiner(combiner)
	}
	buf := s.NewTaskBuffer()
	for i := 0; i < n; i++ {
		buf.Emit(i%nKeys, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}
	return s
}

func sumCombiner(_ int, vs []int) []int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return []int{total}
}

// TestCountingPassIsMemoryOnly is the acceptance test for the indexed
// run files: with spilling active, Stats and every other counting API
// perform zero run-file reads — only the value-streaming merge touches
// disk.
func TestCountingPassIsMemoryOnly(t *testing.T) {
	s := buildSpilled(t, 16, 400, 23, nil)
	defer s.Close()
	if got := s.DiskBytesRead(); got != 0 {
		t.Fatalf("DiskBytesRead = %d after merge without compaction, want 0", got)
	}

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesSpilled == 0 || st.SpillEvents == 0 {
		t.Fatalf("workload never spilled: %+v", st)
	}
	if st.Pairs != 400 || st.Keys != 23 {
		t.Fatalf("stats = pairs %d keys %d, want 400 and 23", st.Pairs, st.Keys)
	}
	part := s.Partition(0)
	if got := part.NumKeys(); got != 23 {
		t.Fatalf("NumKeys = %d, want 23", got)
	}
	if got := part.SortedKeys(); len(got) != 23 {
		t.Fatalf("SortedKeys len = %d, want 23", len(got))
	}
	var counted int
	if err := part.ForEachGroupCount(func(_ int, count int) error {
		counted += count
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if counted != 400 {
		t.Fatalf("ForEachGroupCount saw %d pairs, want 400", counted)
	}
	if st.DiskBytesRead != 0 || s.DiskBytesRead() != 0 {
		t.Fatalf("counting pass read %d bytes from disk, want 0", s.DiskBytesRead())
	}

	// The value-streaming merge is the only disk consumer.
	var pairs int
	if err := part.ForEachGroup(func(_ int, vs []int) error {
		pairs += len(vs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pairs != 400 {
		t.Fatalf("streamed %d pairs, want 400", pairs)
	}
	read := s.DiskBytesRead()
	if read == 0 {
		t.Fatal("value merge reported zero disk reads on a spilled partition")
	}
	// The memoized Stats refreshes the read counter but nothing else.
	st2, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.DiskBytesRead != read {
		t.Errorf("Stats.DiskBytesRead = %d, want %d", st2.DiskBytesRead, read)
	}
	if st2.Pairs != st.Pairs || st2.Keys != st.Keys || st2.BytesSpilled != st.BytesSpilled {
		t.Errorf("memoized stats diverge: %+v vs %+v", st2, st)
	}
}

// TestStatsMemoized: repeat Stats calls are served from the memo until
// a Merge invalidates it.
func TestStatsMemoized(t *testing.T) {
	s := New[int, int](Options{Partitions: 2, MaxBufferedPairs: 4, SpillDir: t.TempDir()})
	defer s.Close()
	buf := s.NewTaskBuffer()
	for i := 0; i < 20; i++ {
		buf.Emit(i%3, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}
	if s.statsMemo != nil {
		t.Fatal("memo set before Stats was ever computed")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.statsMemo == nil {
		t.Fatal("Stats did not memoize")
	}
	st2, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pairs != st.Pairs || st2.Keys != st.Keys {
		t.Fatalf("memoized Stats diverges: %+v vs %+v", st2, st)
	}
	// Mutating a returned profile must not corrupt the memo.
	for i := range st2.PartitionPairs {
		st2.PartitionPairs[i] = -1
		st2.PartitionKeys[i] = -1
		st2.PartitionMaxGroup[i] = -1
	}
	clean, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.PartitionPairs {
		if clean.PartitionPairs[i] < 0 || clean.PartitionKeys[i] < 0 || clean.PartitionMaxGroup[i] < 0 {
			t.Fatal("memoized Stats shares per-partition slices with callers")
		}
	}

	buf2 := s.NewTaskBuffer()
	buf2.Emit(100, 1)
	if err := s.Merge([]*TaskBuffer[int, int]{buf2}); err != nil {
		t.Fatal(err)
	}
	if s.statsMemo != nil {
		t.Fatal("Merge did not invalidate the Stats memo")
	}
	st3, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Pairs != st.Pairs+1 || st3.Keys != st.Keys+1 {
		t.Fatalf("post-merge Stats = pairs %d keys %d, want %d and %d",
			st3.Pairs, st3.Keys, st.Pairs+1, st.Keys+1)
	}
}

// TestCompactionFanInBoundaries pins the compaction trigger at the
// fan-in cap: exactly maxDiskRunFanIn seals collapse to one run, one
// more seal starts the next tier at two runs — and both shapes stream
// back the reference grouping.
func TestCompactionFanInBoundaries(t *testing.T) {
	for _, seals := range []int{maxDiskRunFanIn, maxDiskRunFanIn + 1} {
		const budget = 2
		n := seals * budget
		want := make(map[int][]int)
		for i := 0; i < n; i++ {
			want[i%7] = append(want[i%7], i)
		}
		s := buildSpilled(t, budget, n, 7, nil)
		disk := s.parts[0].disk
		wantRuns := 1
		if seals > maxDiskRunFanIn {
			wantRuns = 2
		}
		if len(disk) != wantRuns {
			t.Fatalf("%d seals: %d disk runs, want %d", seals, len(disk), wantRuns)
		}
		if disk[0].pairs != int64(maxDiskRunFanIn*budget) {
			t.Errorf("%d seals: first run holds %d pairs, want %d",
				seals, disk[0].pairs, maxDiskRunFanIn*budget)
		}
		st, err := s.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.SpillEvents != int64(seals) || st.Pairs != int64(n) || st.Keys != 7 {
			t.Errorf("%d seals: stats = %+v", seals, st)
		}
		got := make(map[int][]int)
		if err := s.Partition(0).ForEachGroup(func(k int, vs []int) error {
			got[k] = vs
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%d seals: compacted grouping diverges from reference", seals)
		}
		s.Close()
	}
}

// TestCombinerPushDownShrinksSpill: the same over-budget workload with
// the combiner pushed down must spill far fewer bytes and pairs, while
// the reduced totals (sums per key) stay identical.
func TestCombinerPushDownShrinksSpill(t *testing.T) {
	const (
		budget = 16
		n      = 800
		nKeys  = 5
	)
	raw := buildSpilled(t, budget, n, nKeys, nil)
	defer raw.Close()
	combined := buildSpilled(t, budget, n, nKeys, sumCombiner)
	defer combined.Close()

	rawSt, err := raw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	combSt, err := combined.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rawSt.BytesSpilled == 0 {
		t.Fatal("raw workload never spilled; test is vacuous")
	}
	if combSt.BytesSpilled*4 > rawSt.BytesSpilled {
		t.Errorf("combiner push-down barely shrank spill: %d vs %d bytes",
			combSt.BytesSpilled, rawSt.BytesSpilled)
	}
	if combSt.SpilledPairs >= rawSt.SpilledPairs {
		t.Errorf("SpilledPairs with combiner = %d, want < %d", combSt.SpilledPairs, rawSt.SpilledPairs)
	}
	if combSt.Keys != int64(nKeys) {
		t.Errorf("combiner changed the key count: %d, want %d", combSt.Keys, nKeys)
	}

	// The combined groups must sum to the raw groups' sums, and the
	// partition totals must equal the sum of its group counts.
	sums := func(s *Shuffle[int, int]) (map[int]int, int64) {
		out := make(map[int]int)
		var pairs int64
		if err := s.Partition(0).ForEachGroup(func(k int, vs []int) error {
			total := 0
			for _, v := range vs {
				total += v
			}
			out[k] = total
			pairs += int64(len(vs))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out, pairs
	}
	rawSums, rawPairs := sums(raw)
	combSums, combPairs := sums(combined)
	if !reflect.DeepEqual(rawSums, combSums) {
		t.Fatalf("per-key sums diverge:\nraw  %v\ncomb %v", rawSums, combSums)
	}
	if rawPairs != rawSt.Pairs || combPairs != combSt.Pairs {
		t.Errorf("Stats.Pairs out of sync with streamed groups: raw %d/%d, combined %d/%d",
			rawSt.Pairs, rawPairs, combSt.Pairs, combPairs)
	}
	if combSt.Pairs >= rawSt.Pairs {
		t.Errorf("combined partition holds %d pairs, want < %d", combSt.Pairs, rawSt.Pairs)
	}
}

// TestCombinerSkipsSealWhenCombineFrees: when combining collapses the
// live run well under the budget, the seal is cancelled — a workload
// whose combined footprint fits in memory never touches disk at all,
// no matter how many raw pairs stream through.
func TestCombinerSkipsSealWhenCombineFrees(t *testing.T) {
	const budget = 16
	s := buildSpilled(t, budget, 5000, 3, sumCombiner) // 3 combined pairs << budget/2
	defer s.Close()
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillEvents != 0 || st.BytesSpilled != 0 {
		t.Fatalf("combined-in-memory workload spilled: %+v", st)
	}
	if st.MaxLivePairs > budget {
		t.Fatalf("MaxLivePairs = %d exceeds budget %d", st.MaxLivePairs, budget)
	}
	// The live run holds the 3 combined partials plus whatever raw
	// pairs arrived after the last combine — never more than the budget.
	if st.Keys != 3 || st.Pairs < 3 || st.Pairs > budget {
		t.Fatalf("stats = pairs %d keys %d, want 3 keys and <= %d pairs", st.Pairs, st.Keys, budget)
	}
	var total int
	if err := s.Partition(0).ForEachGroup(func(_ int, vs []int) error {
		for _, v := range vs {
			total += v
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := 5000 * 4999 / 2; total != want {
		t.Fatalf("combined total = %d, want %d", total, want)
	}
}

// TestCombinerRecombinesAcrossCompaction drives enough combined seals
// to trigger compaction, which must re-combine the folded groups: the
// compacted run ends up with one partial per key, and the streamed
// sums match the arithmetic reference.
func TestCombinerRecombinesAcrossCompaction(t *testing.T) {
	const (
		budget = 2
		nKeys  = 2
		// Each seal holds ~2 combined partials, so this forces > fan-in
		// seals and at least one compaction.
		n = 4 * maxDiskRunFanIn * budget
	)
	s := buildSpilled(t, budget, n, nKeys, sumCombiner)
	defer s.Close()
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillEvents < maxDiskRunFanIn {
		t.Fatalf("only %d seals; compaction never triggered", st.SpillEvents)
	}
	disk := s.parts[0].disk
	if len(disk) >= maxDiskRunFanIn {
		t.Fatalf("%d disk runs; compaction should cap below %d", len(disk), maxDiskRunFanIn)
	}
	// The compacted run re-combined each key to a single partial.
	if len(disk[0].index) != nKeys {
		t.Fatalf("compacted run has %d groups, want %d", len(disk[0].index), nKeys)
	}
	for _, e := range disk[0].index {
		if e.count != 1 {
			t.Fatalf("compacted group for key %d holds %d partials, want 1 (re-combined)", e.key, e.count)
		}
	}
	sums := make(map[int]int)
	var pairs int64
	if err := s.Partition(0).ForEachGroup(func(k int, vs []int) error {
		for _, v := range vs {
			sums[k] += v
		}
		pairs += int64(len(vs))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pairs != st.Pairs {
		t.Errorf("Stats.Pairs = %d but streaming saw %d (compaction must keep totals in sync)", st.Pairs, pairs)
	}
	want := make(map[int]int)
	for i := 0; i < n; i++ {
		want[i%nKeys] += i
	}
	if !reflect.DeepEqual(sums, want) {
		t.Fatalf("sums diverge after compaction re-combine:\ngot  %v\nwant %v", sums, want)
	}
}
