package shuffle

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// buildBuffers distributes pairs across nTasks buffers round-robin,
// preserving emission order within each task.
func buildBuffers[K comparable, V any](s *Shuffle[K, V], nTasks int, pairs []Pair[K, V]) []*TaskBuffer[K, V] {
	bufs := make([]*TaskBuffer[K, V], nTasks)
	for i := range bufs {
		bufs[i] = s.NewTaskBuffer()
	}
	for i, p := range pairs {
		bufs[i%nTasks].Emit(p.Key, p.Value)
	}
	return bufs
}

func TestGroupingMatchesNaiveMerge(t *testing.T) {
	var pairs []Pair[string, int]
	for i := 0; i < 500; i++ {
		pairs = append(pairs, Pair[string, int]{fmt.Sprintf("k%d", i%37), i})
	}
	s := New[string, int](Options{Partitions: 8})
	bufs := buildBuffers(s, 4, pairs)
	s.Merge(bufs)

	// Naive reference grouping in the same task-then-emission order the
	// shuffle guarantees: task 0's pairs first, then task 1's, ...
	want := make(map[string][]int)
	for task := 0; task < 4; task++ {
		for i := task; i < len(pairs); i += 4 {
			want[pairs[i].Key] = append(want[pairs[i].Key], pairs[i].Value)
		}
	}

	got := make(map[string][]int)
	var totalPairs int64
	for p := 0; p < s.NumPartitions(); p++ {
		part := s.Partition(p)
		totalPairs += part.Pairs()
		part.ForEachSorted(func(k string, vs []int) {
			if _, dup := got[k]; dup {
				t.Fatalf("key %q appears in more than one partition", k)
			}
			got[k] = vs
		})
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grouped values differ from naive merge")
	}
	if totalPairs != int64(len(pairs)) {
		t.Fatalf("partition pairs sum to %d, want %d", totalPairs, len(pairs))
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != int64(len(pairs)) || st.Keys != 37 {
		t.Fatalf("stats = %+v, want pairs=%d keys=37", st, len(pairs))
	}
	if st.MaxGroup < int64(len(pairs))/37 {
		t.Fatalf("MaxGroup = %d, too small", st.MaxGroup)
	}
}

func TestPartitionCountRoundsToPowerOfTwo(t *testing.T) {
	s := New[int, int](Options{Partitions: 5})
	if s.NumPartitions() != 8 {
		t.Fatalf("NumPartitions = %d, want 8", s.NumPartitions())
	}
	if d := DefaultPartitions(); d&(d-1) != 0 || d < 8 {
		t.Fatalf("DefaultPartitions = %d, want a power of two >= 8", d)
	}
}

func TestHasherIsStableAndSpreads(t *testing.T) {
	h1 := NewHasher[string]()
	h2 := NewHasher[string]()
	if h1.Hash("afrati") != h2.Hash("afrati") {
		t.Fatal("hashers disagree within one process")
	}
	// A hash that collapses to few values would starve partitions.
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[h1.Hash(fmt.Sprintf("key-%d", i))] = true
	}
	if len(seen) < 990 {
		t.Fatalf("only %d distinct hashes over 1000 keys", len(seen))
	}
}

func TestStructKeysHashAndSort(t *testing.T) {
	type cell struct{ I, J int }
	s := New[cell, int](Options{Partitions: 4})
	buf := s.NewTaskBuffer()
	for i := 0; i < 10; i++ {
		buf.Emit(cell{i % 3, i % 2}, i)
	}
	s.Merge([]*TaskBuffer[cell, int]{buf})
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 6 {
		t.Fatalf("Keys = %d, want 6 distinct cells", st.Keys)
	}
	keys := []cell{{2, 0}, {0, 1}, {1, 0}, {0, 0}}
	SortKeys(keys)
	want := []cell{{0, 0}, {0, 1}, {1, 0}, {2, 0}}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("SortKeys(struct) = %v, want %v", keys, want)
	}
}

func TestSortKeysTypedPaths(t *testing.T) {
	ints := []int{5, 1, 3}
	SortKeys(ints)
	if !sort.IntsAreSorted(ints) {
		t.Errorf("ints not sorted: %v", ints)
	}
	u64 := []uint64{9, 2, 7}
	SortKeys(u64)
	if !(u64[0] == 2 && u64[1] == 7 && u64[2] == 9) {
		t.Errorf("uint64 not sorted: %v", u64)
	}
	f := []float64{2.5, -1, 0}
	SortKeys(f)
	if !sort.Float64sAreSorted(f) {
		t.Errorf("float64 not sorted: %v", f)
	}
	strs := []string{"b", "a", "c"}
	SortKeys(strs)
	if !sort.StringsAreSorted(strs) {
		t.Errorf("strings not sorted: %v", strs)
	}
}

func TestBoundedMemorySpillPressure(t *testing.T) {
	s := New[int, int](Options{Partitions: 2, MaxBufferedPairs: 10})
	s.SetPartitioner(func(k int) int { return 0 }) // everything in partition 0
	buf := s.NewTaskBuffer()
	const n = 95
	for i := 0; i < n; i++ {
		buf.Emit(i%7, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Sealing at the budget is deterministic: 95 pairs against a
	// 10-pair budget seal exactly 9 runs of 10, leaving 5 live.
	if st.SpillEvents != 9 {
		t.Errorf("SpillEvents = %d, want exactly 9 runs of 10", st.SpillEvents)
	}
	if st.SpilledPairs != 90 || s.parts[0].livePairs != 5 {
		t.Errorf("spilled %d, live %d; want 90 and 5", st.SpilledPairs, s.parts[0].livePairs)
	}
	if st.MaxLivePairs != 10 {
		t.Errorf("MaxLivePairs = %d, want exactly the 10-pair budget", st.MaxLivePairs)
	}
	if st.RunsMerged != 10 {
		t.Errorf("RunsMerged = %d, want 10 (9 sealed + live)", st.RunsMerged)
	}
	if st.Pairs != n || st.Keys != 7 {
		t.Errorf("stats = %+v, want pairs=%d keys=7", st, n)
	}

	// Grouping must be unaffected by sealing: values concatenate across
	// runs in emission order.
	part := s.Partition(0)
	if got := part.NumKeys(); got != 7 {
		t.Fatalf("NumKeys = %d, want 7", got)
	}
	for _, k := range part.SortedKeys() {
		vs := part.Values(k)
		var want []int
		for i := k; i < n; i += 7 {
			want = append(want, i)
		}
		if !reflect.DeepEqual(vs, want) {
			t.Fatalf("key %d values = %v, want %v", k, vs, want)
		}
	}
	if got := s.Partition(1).Pairs(); got != 0 {
		t.Errorf("partition 1 has %d pairs, want 0", got)
	}
}

func TestSetPartitionerRouting(t *testing.T) {
	s := New[string, int](Options{Partitions: 4})
	s.SetPartitioner(func(k string) int { return len(k) })
	buf := s.NewTaskBuffer()
	buf.Emit("a", 1)     // len 1 -> partition 1
	buf.Emit("bb", 2)    // len 2 -> partition 2
	buf.Emit("ccccc", 3) // len 5 % 4 -> partition 1
	s.Merge([]*TaskBuffer[string, int]{buf})
	if got := s.Partition(1).NumKeys(); got != 2 {
		t.Errorf("partition 1 keys = %d, want 2", got)
	}
	if got := s.Partition(2).NumKeys(); got != 1 {
		t.Errorf("partition 2 keys = %d, want 1", got)
	}
	if got := s.Partition(0).Pairs() + s.Partition(3).Pairs(); got != 0 {
		t.Errorf("partitions 0,3 hold %d pairs, want 0", got)
	}
}

func TestMergeAccumulatesAcrossCalls(t *testing.T) {
	s := New[int, int](Options{Partitions: 2})
	b1 := s.NewTaskBuffer()
	b1.Emit(1, 10)
	s.Merge([]*TaskBuffer[int, int]{b1})
	b2 := s.NewTaskBuffer()
	b2.Emit(1, 20)
	s.Merge([]*TaskBuffer[int, int]{b2})
	p := s.Partition(s.PartitionOf(1))
	if got := p.Values(1); !reflect.DeepEqual(got, []int{10, 20}) {
		t.Fatalf("Values(1) = %v, want [10 20]", got)
	}
}

func TestStatsSkewAndString(t *testing.T) {
	s := New[int, int](Options{Partitions: 2})
	s.SetPartitioner(func(k int) int { return k % 2 })
	buf := s.NewTaskBuffer()
	for i := 0; i < 9; i++ {
		buf.Emit(0, i) // all on partition 0
	}
	buf.Emit(1, 1)
	s.Merge([]*TaskBuffer[int, int]{buf})
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Skew() <= 1 {
		t.Errorf("Skew = %v, want > 1 for a lopsided exchange", st.Skew())
	}
	if s := st.String(); s == "" {
		t.Error("empty Stats.String()")
	}
	if (Stats{}).Skew() != 0 {
		t.Error("empty stats should have zero skew")
	}
}

func TestEmptyShuffle(t *testing.T) {
	s := New[string, int](Options{})
	s.Merge(nil)
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 0 || st.Keys != 0 || st.MaxGroup != 0 {
		t.Fatalf("empty shuffle stats = %+v", st)
	}
	if got := s.Partition(0).SortedKeys(); len(got) != 0 {
		t.Fatalf("SortedKeys on empty partition = %v", got)
	}
}
