package shuffle

import (
	"fmt"
	"reflect"
	"testing"
)

// TestForEachGroupBatchMatchesPerGroup: the batch read contract must
// change only allocation behavior — keys, key order, values and value
// order are identical to ForEachGroup, across spilled and in-memory
// partitions, struct values included.
func TestForEachGroupBatchMatchesPerGroup(t *testing.T) {
	type pay struct {
		A int64
		B float64
	}
	for _, spillDir := range []string{"", t.TempDir()} {
		s := New[int, pay](Options{Partitions: 4, MaxBufferedPairs: 8, SpillDir: spillDir})
		bufs := make([]*TaskBuffer[int, pay], 3)
		for i := range bufs {
			bufs[i] = s.NewTaskBuffer()
		}
		for i := 0; i < 400; i++ {
			bufs[i%3].Emit(i%19, pay{A: int64(i), B: float64(i) / 4})
		}
		if err := s.Merge(bufs); err != nil {
			t.Fatal(err)
		}
		type group struct {
			k  int
			vs []pay
		}
		for p := 0; p < s.NumPartitions(); p++ {
			var plain, batch []group
			if err := s.Partition(p).ForEachGroup(func(k int, vs []pay) error {
				plain = append(plain, group{k, vs})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := s.Partition(p).ForEachGroupBatch(func(k int, vs []pay) error {
				// The slice is only valid during the call: copy to keep.
				batch = append(batch, group{k, append([]pay(nil), vs...)})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, batch) {
				t.Fatalf("spillDir=%q partition %d: batch read diverges from per-group read", spillDir, p)
			}
		}
		s.Close()
	}
}

// TestPerValueDecodeHookMatchesBatch: the legacy per-value decode path
// (kept for head-to-head benchmarks) must produce the same groups as
// the default batch decode.
func TestPerValueDecodeHookMatchesBatch(t *testing.T) {
	build := func(perValue bool) map[string][]int {
		s := New[string, int](Options{Partitions: 2, MaxBufferedPairs: 8, SpillDir: t.TempDir()})
		defer s.Close()
		s.perValue = perValue
		buf := s.NewTaskBuffer()
		for i := 0; i < 300; i++ {
			buf.Emit(fmt.Sprintf("k%02d", i%17), i)
		}
		if err := s.Merge([]*TaskBuffer[string, int]{buf}); err != nil {
			t.Fatal(err)
		}
		got := make(map[string][]int)
		for p := 0; p < s.NumPartitions(); p++ {
			if err := s.Partition(p).ForEachGroup(func(k string, vs []int) error {
				got[k] = vs
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		return got
	}
	if !reflect.DeepEqual(build(true), build(false)) {
		t.Fatal("per-value and batch decode paths disagree")
	}
}

// TestSetCombinerInvalidatesStatsMemo is the regression test for the
// memoization bug: Stats results were invalidated only by Merge, so a
// SetCombiner between a Stats call and the next Merge could serve a
// profile that no longer described the shuffle's sealing behavior.
func TestSetCombinerInvalidatesStatsMemo(t *testing.T) {
	s := New[int, int](Options{Partitions: 2})
	buf := s.NewTaskBuffer()
	for i := 0; i < 20; i++ {
		buf.Emit(i%3, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 20 {
		t.Fatalf("Stats.Pairs = %d, want 20", st.Pairs)
	}
	s.statsMu.Lock()
	memoized := s.statsMemo != nil
	s.statsMu.Unlock()
	if !memoized {
		t.Fatal("Stats result was not memoized")
	}

	s.SetCombiner(func(_ int, vs []int) []int { return vs })

	s.statsMu.Lock()
	stale := s.statsMemo != nil
	s.statsMu.Unlock()
	if stale {
		t.Fatal("SetCombiner left a stale Stats memo in place")
	}
	// And Stats still recomputes correctly afterwards.
	st, err = s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 20 || st.Keys != 3 {
		t.Fatalf("recomputed Stats = pairs %d keys %d, want 20 and 3", st.Pairs, st.Keys)
	}
}
