package shuffle

import (
	"fmt"
	"reflect"
	"testing"
)

// TestForEachGroupBatchMatchesPerGroup: the batch read contract must
// change only allocation behavior — keys, key order, values and value
// order are identical to ForEachGroup, across spilled and in-memory
// partitions, struct values included.
func TestForEachGroupBatchMatchesPerGroup(t *testing.T) {
	type pay struct {
		A int64
		B float64
	}
	for _, spillDir := range []string{"", t.TempDir()} {
		s := New[int, pay](Options{Partitions: 4, MaxBufferedPairs: 8, SpillDir: spillDir})
		bufs := make([]*TaskBuffer[int, pay], 3)
		for i := range bufs {
			bufs[i] = s.NewTaskBuffer()
		}
		for i := 0; i < 400; i++ {
			bufs[i%3].Emit(i%19, pay{A: int64(i), B: float64(i) / 4})
		}
		if err := s.Merge(bufs); err != nil {
			t.Fatal(err)
		}
		type group struct {
			k  int
			vs []pay
		}
		for p := 0; p < s.NumPartitions(); p++ {
			var plain, batch []group
			if err := s.Partition(p).ForEachGroup(func(k int, vs []pay) error {
				plain = append(plain, group{k, vs})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := s.Partition(p).ForEachGroupBatch(func(k int, vs []pay) error {
				// The slice is only valid during the call: copy to keep.
				batch = append(batch, group{k, append([]pay(nil), vs...)})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, batch) {
				t.Fatalf("spillDir=%q partition %d: batch read diverges from per-group read", spillDir, p)
			}
		}
		s.Close()
	}
}

// TestForEachGroupBatchArenaAliasing pins the other half of the batch
// contract: the value slice is a view into reused scratch (and, for
// mapped run files, ultimately into memory that may be unmapped after
// the walk), valid only during the callback. A reducer that retains
// the previous group's slice across callbacks must observe it corrupt
// — loudly diverging from a copied snapshot — rather than silently
// holding stale-but-plausible data. If this test ever fails, the read
// path started copying per group and the zero-copy contract (and its
// allocation win) has quietly regressed.
func TestForEachGroupBatchArenaAliasing(t *testing.T) {
	const keys, perKey = 16, 32
	// Equal-size groups of a fixed-size value type: every group's batch
	// decodes into the same-capacity scratch, so reuse is guaranteed to
	// overwrite the previous group's view.
	s := New[int, int](Options{Partitions: 1, MaxBufferedPairs: 8, SpillDir: t.TempDir()})
	defer s.Close()
	buf := s.NewTaskBuffer()
	for i := 0; i < keys*perKey; i++ {
		buf.Emit(i%keys, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}

	var retained, snapshot []int
	diverged := false
	err := s.Partition(0).ForEachGroupBatch(func(_ int, vs []int) error {
		if retained != nil && !reflect.DeepEqual(retained, snapshot) {
			diverged = true
		}
		retained = vs // illegally kept past this callback
		snapshot = append(snapshot[:0], vs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !diverged {
		t.Fatal("retained batch slice survived across callbacks intact: " +
			"the read path is copying per group instead of reusing scratch")
	}
}

// TestPerValueDecodeHookMatchesBatch: the legacy per-value decode path
// (kept for head-to-head benchmarks) must produce the same groups as
// the default batch decode.
func TestPerValueDecodeHookMatchesBatch(t *testing.T) {
	build := func(perValue bool) map[string][]int {
		s := New[string, int](Options{Partitions: 2, MaxBufferedPairs: 8, SpillDir: t.TempDir()})
		defer s.Close()
		s.perValue = perValue
		buf := s.NewTaskBuffer()
		for i := 0; i < 300; i++ {
			buf.Emit(fmt.Sprintf("k%02d", i%17), i)
		}
		if err := s.Merge([]*TaskBuffer[string, int]{buf}); err != nil {
			t.Fatal(err)
		}
		got := make(map[string][]int)
		for p := 0; p < s.NumPartitions(); p++ {
			if err := s.Partition(p).ForEachGroup(func(k string, vs []int) error {
				got[k] = vs
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		return got
	}
	if !reflect.DeepEqual(build(true), build(false)) {
		t.Fatal("per-value and batch decode paths disagree")
	}
}

// TestSetCombinerInvalidatesStatsMemo is the regression test for the
// memoization bug: Stats results were invalidated only by Merge, so a
// SetCombiner between a Stats call and the next Merge could serve a
// profile that no longer described the shuffle's sealing behavior.
func TestSetCombinerInvalidatesStatsMemo(t *testing.T) {
	s := New[int, int](Options{Partitions: 2})
	buf := s.NewTaskBuffer()
	for i := 0; i < 20; i++ {
		buf.Emit(i%3, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 20 {
		t.Fatalf("Stats.Pairs = %d, want 20", st.Pairs)
	}
	s.statsMu.Lock()
	memoized := s.statsMemo != nil
	s.statsMu.Unlock()
	if !memoized {
		t.Fatal("Stats result was not memoized")
	}

	s.SetCombiner(func(_ int, vs []int) []int { return vs })

	s.statsMu.Lock()
	stale := s.statsMemo != nil
	s.statsMu.Unlock()
	if stale {
		t.Fatal("SetCombiner left a stale Stats memo in place")
	}
	// And Stats still recomputes correctly afterwards.
	st, err = s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 20 || st.Keys != 3 {
		t.Fatalf("recomputed Stats = pairs %d keys %d, want 20 and 3", st.Pairs, st.Keys)
	}
}
