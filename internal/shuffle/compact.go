// Asynchronous disk-run compaction.
//
// Barrier-mode Merge owns each partition outright and compacts inline
// on the partition's goroutine; nothing here applies to it. The
// streaming path used to do the same — a seal that pushed a partition
// over the run-count bound rewrote all of its disk runs before the
// seal returned, stalling that partition's ingestion (and, through the
// global pressure backstop, often the whole round) for the length of a
// multi-run merge. Here the seal only marks the partition and hands it
// to a small pool of background workers; the merge then runs
// concurrently with ingestion, which is safe because sealed runs are
// immutable and new seals only append to the partition's run list — a
// compaction plans a window of that list, merges it without the lock,
// and splices the result back in under the lock.
//
// Queue discipline: at most one queue entry per partition exists at
// any time (partitionState.compacting), so a channel with one slot per
// partition can never block a sender — enqueueing from under the
// partition lock is safe. A worker that finishes a partition and finds
// it has outgrown the bound again (seals landed during the merge)
// re-enqueues it directly, keeping the one-entry invariant.
package shuffle

import "repro/internal/obs"

// defaultCompactionConcurrency is the worker-pool size when
// Options.CompactionConcurrency is zero: compaction is I/O-heavy and
// already bounded by diskSem, so a couple of workers keep run counts
// down without competing with the ingestion goroutines for CPU.
const defaultCompactionConcurrency = 2

// compactionWorkers resolves Options.CompactionConcurrency (zero means
// the default; negative means inline, handled by the caller).
func (s *Shuffle[K, V]) compactionWorkers() int {
	if n := s.opts.CompactionConcurrency; n > 0 {
		return n
	}
	return defaultCompactionConcurrency
}

// maybeCompact enqueues st for asynchronous compaction when its disk
// runs outgrew a bound and it is not already queued. Caller holds
// st.mu. The WaitGroup add happens before the send, so a Finish or
// Close that starts waiting immediately after still sees the queued
// work.
func (s *Shuffle[K, V]) maybeCompact(st *partitionState[K, V]) {
	if st.compacting || !needsCompaction(st.disk) {
		return
	}
	s.compactStart.Do(s.startCompactors)
	st.compacting = true
	s.compactWG.Add(1)
	s.compactCh <- st.idx
}

// startCompactors creates the queue and the worker pool, lazily on the
// first enqueue so rounds that never outgrow the run bounds pay
// nothing.
func (s *Shuffle[K, V]) startCompactors() {
	s.compactCh = make(chan int, s.nparts)
	for i := 0; i < s.compactionWorkers(); i++ {
		// Each worker records its compaction spans on its own lane:
		// spans of different partitions interleave across workers, but
		// per-lane they are strictly nested, which CheckBalanced
		// requires.
		lane := s.opts.Recorder.Lane(obs.LaneCompactor, i)
		go s.compactor(lane)
	}
}

// compactor is one background worker: it takes partition indexes off
// the queue and compacts until the queue closes (Close). Errors are
// latched for Ingester.Finish to surface; the partition's compacting
// mark is cleared either way so a later round (Merge after a failed
// streaming round is torn down) is not wedged.
func (s *Shuffle[K, V]) compactor(lane *obs.Ring) {
	for p := range s.compactCh {
		st := &s.parts[p]
		s.diskSem <- struct{}{}
		st.mu.Lock()
		var err error
		if needsCompaction(st.disk) {
			err = st.compactDiskRuns(s, lane, true)
			s.invalidateStats()
		}
		switch {
		case err != nil:
			s.compactMu.Lock()
			if s.compactErr == nil {
				s.compactErr = err
			}
			s.compactMu.Unlock()
			st.compacting = false
		case needsCompaction(st.disk):
			// Seals that landed during the merge pushed the partition
			// back over a bound: go again. Keeping compacting set keeps
			// the one-entry-per-partition invariant, so this send cannot
			// block either.
			s.compactWG.Add(1)
			s.compactCh <- p
		default:
			st.compacting = false
		}
		st.mu.Unlock()
		<-s.diskSem
		s.compactWG.Done()
	}
}

// waitCompactions blocks until the compaction queue is drained and
// returns the first error any worker hit (sticky until the shuffle is
// torn down). Called by Ingester.Finish — the streaming round must not
// report success while a compaction that will be surfaced nowhere else
// is still failing — and by Close before deleting run files out from
// under the workers.
func (s *Shuffle[K, V]) waitCompactions() error {
	s.compactWG.Wait()
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return s.compactErr
}
