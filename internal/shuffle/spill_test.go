package shuffle

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSpillDatasetLargerThanBudget is the acceptance test for the
// external shuffle: a dataset more than 4x the total configured memory
// budget must complete with correct grouped output, nonzero bytes
// spilled, and live buffered pairs never exceeding the budget.
func TestSpillDatasetLargerThanBudget(t *testing.T) {
	const (
		parts  = 4
		budget = 512         // per-partition pair budget
		total  = 4 * 4 * 512 // 4x the total budget of parts*budget
		keys   = 97          // co-prime with total: uneven groups
	)
	dir := t.TempDir()
	s := New[int, int](Options{Partitions: parts, MaxBufferedPairs: budget, SpillDir: dir})
	defer s.Close()

	const tasks = 8
	bufs := make([]*TaskBuffer[int, int], tasks)
	for i := range bufs {
		bufs[i] = s.NewTaskBuffer()
	}
	want := make(map[int][]int) // reference grouping in shuffle value order
	for task := 0; task < tasks; task++ {
		for i := task; i < total; i += tasks {
			bufs[task].Emit(i%keys, i)
			want[i%keys] = append(want[i%keys], i)
		}
	}
	if err := s.Merge(bufs); err != nil {
		t.Fatal(err)
	}

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != total || st.Keys != keys {
		t.Fatalf("stats = pairs %d keys %d, want %d and %d", st.Pairs, st.Keys, total, keys)
	}
	if st.BytesSpilled == 0 {
		t.Fatal("BytesSpilled = 0: dataset 4x the budget never touched disk")
	}
	if st.SpillEvents == 0 || st.SpilledPairs == 0 {
		t.Fatalf("spill pressure missing: %+v", st)
	}
	if st.MaxLivePairs > budget {
		t.Fatalf("MaxLivePairs = %d exceeds the %d-pair budget", st.MaxLivePairs, budget)
	}
	if st.RunsMerged == 0 {
		t.Fatal("RunsMerged = 0, want multi-run merges on every spilled partition")
	}

	// Run files actually exist before Close.
	files, err := filepath.Glob(filepath.Join(dir, "mr-spill-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no spill files on disk")
	}

	// The streamed groups must exactly reproduce the reference
	// grouping, keys sorted, values in emission order.
	got := make(map[int][]int)
	for p := 0; p < s.NumPartitions(); p++ {
		prev, prevSet := 0, false
		err := s.Partition(p).ForEachGroup(func(k int, vs []int) error {
			if prevSet && k <= prev {
				t.Fatalf("partition %d keys out of order: %d after %d", p, k, prev)
			}
			prev, prevSet = k, true
			if _, dup := got[k]; dup {
				t.Fatalf("key %d in more than one partition or emitted twice", k)
			}
			got[k] = vs
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("grouped values differ from reference")
	}

	// Close removes the run files.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "mr-spill-*.run"))
	if len(files) != 0 {
		t.Fatalf("%d spill files remain after Close", len(files))
	}
}

// TestSpillMatchesInMemorySealing: the same workload with SpillDir set
// and unset must produce identical groups and identical logical stats.
func TestSpillMatchesInMemorySealing(t *testing.T) {
	build := func(spillDir string) *Shuffle[string, int] {
		s := New[string, int](Options{Partitions: 4, MaxBufferedPairs: 16, SpillDir: spillDir})
		bufs := make([]*TaskBuffer[string, int], 3)
		for i := range bufs {
			bufs[i] = s.NewTaskBuffer()
		}
		for i := 0; i < 500; i++ {
			bufs[i%3].Emit(fmt.Sprintf("k%02d", i%23), i)
		}
		if err := s.Merge(bufs); err != nil {
			t.Fatal(err)
		}
		return s
	}
	mem := build("")
	disk := build(t.TempDir())
	defer disk.Close()

	memStats, err := mem.Stats()
	if err != nil {
		t.Fatal(err)
	}
	diskStats, err := disk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if memStats.Pairs != diskStats.Pairs || memStats.Keys != diskStats.Keys ||
		memStats.MaxGroup != diskStats.MaxGroup ||
		memStats.SpillEvents != diskStats.SpillEvents ||
		memStats.SpilledPairs != diskStats.SpilledPairs {
		t.Fatalf("logical stats diverge:\nmem  %+v\ndisk %+v", memStats, diskStats)
	}
	if memStats.BytesSpilled != 0 {
		t.Errorf("in-memory sealing reported %d bytes spilled", memStats.BytesSpilled)
	}
	if diskStats.BytesSpilled == 0 {
		t.Error("disk sealing reported zero bytes spilled")
	}

	for p := 0; p < mem.NumPartitions(); p++ {
		memPart, diskPart := mem.Partition(p), disk.Partition(p)
		type group struct {
			k  string
			vs []int
		}
		var memGroups, diskGroups []group
		memPart.ForEachGroup(func(k string, vs []int) error {
			memGroups = append(memGroups, group{k, vs})
			return nil
		})
		if err := diskPart.ForEachGroup(func(k string, vs []int) error {
			diskGroups = append(diskGroups, group{k, vs})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(memGroups, diskGroups) {
			t.Fatalf("partition %d groups diverge between mem and disk sealing", p)
		}
	}
}

// TestSpillStructKeysViaGob: non-native key and value types round-trip
// through the gob fallback of the run-file codec.
func TestSpillStructKeysViaGob(t *testing.T) {
	type cell struct{ I, J int }
	type payload struct{ X float64 }
	s := New[cell, payload](Options{Partitions: 2, MaxBufferedPairs: 4, SpillDir: t.TempDir()})
	defer s.Close()
	buf := s.NewTaskBuffer()
	want := make(map[cell][]payload)
	for i := 0; i < 40; i++ {
		k := cell{i % 5, i % 3}
		v := payload{float64(i) / 2}
		buf.Emit(k, v)
		want[k] = append(want[k], v)
	}
	if err := s.Merge([]*TaskBuffer[cell, payload]{buf}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesSpilled == 0 {
		t.Fatal("struct-key workload never spilled")
	}
	got := make(map[cell][]payload)
	for p := 0; p < s.NumPartitions(); p++ {
		if err := s.Partition(p).ForEachGroup(func(k cell, vs []payload) error {
			got[k] = vs
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gob round trip diverged: got %d keys, want %d", len(got), len(want))
	}
}

// TestCompactionBoundsRunFanIn: a workload sealing far more than
// maxDiskRunFanIn runs must keep each partition's disk-run count (and
// therefore the merge's open-file count) bounded via compaction, with
// grouping and value order intact.
func TestCompactionBoundsRunFanIn(t *testing.T) {
	s := New[int, int](Options{Partitions: 2, MaxBufferedPairs: 2, SpillDir: t.TempDir()})
	defer s.Close()
	s.SetPartitioner(func(int) int { return 0 })
	buf := s.NewTaskBuffer()
	const n = 2 * 2 * maxDiskRunFanIn // 128 seals of 2: compacts twice
	want := make(map[int][]int)
	for i := 0; i < n; i++ {
		buf.Emit(i%11, i)
		want[i%11] = append(want[i%11], i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}
	// 128 seals of 2 pairs: seal 64 compacts everything into a 128-pair
	// tier-1 run; seals 65-127 accumulate 63 small runs and compact them
	// into a second tier-1 run WITHOUT rewriting the first (tiered
	// policy); seal 128 remains small. Fan-in stays far below the cap.
	disk := s.parts[0].disk
	if len(disk) >= maxDiskRunFanIn {
		t.Fatalf("partition holds %d disk runs; compaction should cap below %d", len(disk), maxDiskRunFanIn)
	}
	if len(disk) != 3 || disk[0].pairs != 128 || disk[1].pairs != 126 || disk[2].pairs != 2 {
		sizes := make([]int64, len(disk))
		for i, dr := range disk {
			sizes[i] = dr.pairs
		}
		t.Fatalf("disk run sizes = %v, want [128 126 2] (earlier tiers must not be rewritten)", sizes)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillEvents != n/2 {
		t.Errorf("SpillEvents = %d, want %d (compaction must not change seal accounting)", st.SpillEvents, n/2)
	}
	if st.Keys != 11 || st.Pairs != n {
		t.Errorf("stats = keys %d pairs %d, want 11 and %d", st.Keys, st.Pairs, n)
	}
	got := make(map[int][]int)
	if err := s.Partition(0).ForEachGroup(func(k int, vs []int) error {
		got[k] = vs
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compacted grouping diverges from reference (value order must survive compaction)")
	}
}

// TestSpillValueOrderAcrossRuns: a key present in several spilled runs
// and the live run must see its values concatenated in seal order.
func TestSpillValueOrderAcrossRuns(t *testing.T) {
	s := New[int, int](Options{Partitions: 2, MaxBufferedPairs: 10, SpillDir: t.TempDir()})
	defer s.Close()
	s.SetPartitioner(func(int) int { return 0 })
	buf := s.NewTaskBuffer()
	const n = 95
	for i := 0; i < n; i++ {
		buf.Emit(i%7, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}
	part := s.Partition(0)
	if got := part.NumKeys(); got != 7 {
		t.Fatalf("NumKeys = %d, want 7", got)
	}
	for _, k := range part.SortedKeys() {
		var want []int
		for i := k; i < n; i += 7 {
			want = append(want, i)
		}
		if got := part.Values(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %d values = %v, want %v", k, got, want)
		}
	}
}

// TestMergeCollidingFormattedKeys: distinct struct keys whose
// fmt.Sprint forms collide sort as equals in the fallback order, and
// different runs may order them differently. The k-way merge must
// still emit exactly one group per actual key with all its values.
func TestMergeCollidingFormattedKeys(t *testing.T) {
	type k2 struct{ A, B string }
	// All four format as "{a b c}"; two more are unambiguous.
	colliders := []k2{{"a b", "c"}, {"a", "b c"}}
	for _, spillDir := range []string{"", t.TempDir()} {
		s := New[k2, int](Options{Partitions: 2, MaxBufferedPairs: 3, SpillDir: spillDir})
		s.SetPartitioner(func(k2) int { return 0 })
		buf := s.NewTaskBuffer()
		want := make(map[k2][]int)
		for i := 0; i < 30; i++ {
			k := colliders[i%2]
			if i%5 == 0 {
				k = k2{"z", fmt.Sprint(i % 3)}
			}
			buf.Emit(k, i)
			want[k] = append(want[k], i)
		}
		if err := s.Merge([]*TaskBuffer[k2, int]{buf}); err != nil {
			t.Fatal(err)
		}
		st, err := s.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.SpillEvents == 0 {
			t.Fatal("workload never sealed; test is vacuous")
		}
		if st.Keys != int64(len(want)) {
			t.Errorf("spillDir=%q: Stats.Keys = %d, want %d", spillDir, st.Keys, len(want))
		}
		got := make(map[k2][]int)
		if err := s.Partition(0).ForEachGroup(func(k k2, vs []int) error {
			if _, dup := got[k]; dup {
				t.Fatalf("spillDir=%q: key %+v emitted as two groups", spillDir, k)
			}
			got[k] = vs
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("spillDir=%q: grouped values diverge\ngot  %v\nwant %v", spillDir, got, want)
		}
		s.Close()
	}
}

// TestReadAfterCloseFails: once Close has deleted the spill files,
// streaming a partition that had spilled must error, not silently
// return the live-only remainder.
func TestReadAfterCloseFails(t *testing.T) {
	s := New[int, int](Options{Partitions: 2, MaxBufferedPairs: 4, SpillDir: t.TempDir()})
	s.SetPartitioner(func(int) int { return 0 })
	buf := s.NewTaskBuffer()
	for i := 0; i < 20; i++ {
		buf.Emit(i%3, i)
	}
	if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Partition(0).ForEachGroup(func(int, []int) error { return nil }); err == nil {
		t.Error("ForEachGroup after Close returned nil error on a spilled partition")
	}
	if _, err := s.Stats(); err == nil {
		t.Error("Stats after Close returned nil error on a spilled shuffle")
	}
	// The never-spilled partition stays readable.
	if err := s.Partition(1).ForEachGroup(func(int, []int) error { return nil }); err != nil {
		t.Errorf("unspilled partition unreadable after Close: %v", err)
	}
}

// TestNativeLessAgreesWithSortKeys pins the invariant the k-way merge
// rests on: for every kind with a typed fast path, nativeLess must
// order exactly as SortKeys sorts, and the kinds without one must
// return nil (formatted fallback) — matching SortKeys' default case.
func TestNativeLessAgreesWithSortKeys(t *testing.T) {
	check := func(t *testing.T, name string, test func() (bool, bool)) {
		t.Helper()
		hasLess, agrees := test()
		if !hasLess {
			t.Fatalf("%s: nativeLess returned nil for a fast-path kind", name)
		}
		if !agrees {
			t.Errorf("%s: nativeLess order disagrees with SortKeys", name)
		}
	}
	check(t, "int", agreeKind([]int{5, -1, 3, 0}))
	check(t, "int8", agreeKind([]int8{5, -1, 3}))
	check(t, "int16", agreeKind([]int16{5, -1, 3}))
	check(t, "int32", agreeKind([]int32{5, -1, 3}))
	check(t, "int64", agreeKind([]int64{5, -1, 3}))
	check(t, "uint", agreeKind([]uint{5, 1, 3}))
	check(t, "uint8", agreeKind([]uint8{5, 1, 3}))
	check(t, "uint16", agreeKind([]uint16{5, 1, 3}))
	check(t, "uint32", agreeKind([]uint32{5, 1, 3}))
	check(t, "uint64", agreeKind([]uint64{5, 1, 3}))
	check(t, "uintptr", agreeKind([]uintptr{5, 1, 3}))
	check(t, "float32", agreeKind([]float32{2.5, -1, 0}))
	check(t, "float64", agreeKind([]float64{2.5, -1, 0}))
	check(t, "string", agreeKind([]string{"b", "a", "c"}))

	type cell struct{ I, J int }
	if nativeLess[cell]() != nil {
		t.Error("struct kind should use the formatted fallback (nil)")
	}
	if nativeLess[bool]() != nil {
		t.Error("bool has no SortKeys fast path; nativeLess must be nil")
	}
}

// agreeKind sorts a copy with SortKeys and verifies nativeLess calls
// it strictly ascending.
func agreeKind[K comparable](vals []K) func() (bool, bool) {
	return func() (bool, bool) {
		less := nativeLess[K]()
		if less == nil {
			return false, false
		}
		sorted := append([]K(nil), vals...)
		SortKeys(sorted)
		for i := 1; i < len(sorted); i++ {
			if less(sorted[i], sorted[i-1]) || !less(sorted[i-1], sorted[i]) && sorted[i-1] != sorted[i] {
				return true, false
			}
		}
		return true, true
	}
}

// TestSpillRejectsPointerKeys: keys containing pointers decode from
// disk as fresh allocations that break ==, which would silently split
// groups — the first seal must fail loudly instead. In-memory sealing
// (no SpillDir) keeps working: it groups by identity in maps.
func TestSpillRejectsPointerKeys(t *testing.T) {
	type pk struct{ P *int }
	x := 7
	key := pk{&x}

	s := New[pk, int](Options{Partitions: 2, MaxBufferedPairs: 2, SpillDir: t.TempDir()})
	buf := s.NewTaskBuffer()
	for i := 0; i < 8; i++ {
		buf.Emit(key, i)
	}
	err := s.Merge([]*TaskBuffer[pk, int]{buf})
	if err == nil || !strings.Contains(err.Error(), "cannot spill: key type") {
		t.Fatalf("Merge err = %v, want a key-type rejection", err)
	}

	mem := New[pk, int](Options{Partitions: 2, MaxBufferedPairs: 2})
	buf = mem.NewTaskBuffer()
	for i := 0; i < 8; i++ {
		buf.Emit(key, i)
	}
	if err := mem.Merge([]*TaskBuffer[pk, int]{buf}); err != nil {
		t.Fatalf("in-memory sealing rejected pointer keys: %v", err)
	}
	if got := mem.Partition(mem.PartitionOf(key)).NumKeys(); got != 1 {
		t.Errorf("in-memory grouping by identity broke: %d keys, want 1", got)
	}
}

// TestSpillRejectsLossyValueTypes: gob silently zeroes unexported
// struct fields, so spilled values would diverge from the in-memory
// run — the first seal must fail loudly. Pointer values are fine
// (fidelity, unlike key identity, survives fresh allocations).
func TestSpillRejectsLossyValueTypes(t *testing.T) {
	type lossy struct {
		Pub  int
		priv int //nolint:unused
	}
	s := New[int, lossy](Options{Partitions: 2, MaxBufferedPairs: 2, SpillDir: t.TempDir()})
	buf := s.NewTaskBuffer()
	for i := 0; i < 8; i++ {
		buf.Emit(i%2, lossy{i, i})
	}
	err := s.Merge([]*TaskBuffer[int, lossy]{buf})
	if err == nil || !strings.Contains(err.Error(), "cannot spill: value type") {
		t.Fatalf("Merge err = %v, want a value-type rejection", err)
	}

	// Pointer-valued payloads round-trip as faithful copies.
	sp := New[int, *int](Options{Partitions: 2, MaxBufferedPairs: 2, SpillDir: t.TempDir()})
	defer sp.Close()
	buf2 := sp.NewTaskBuffer()
	vals := make([]int, 8)
	for i := range vals {
		vals[i] = i * 10
		buf2.Emit(i%2, &vals[i])
	}
	if err := sp.Merge([]*TaskBuffer[int, *int]{buf2}); err != nil {
		t.Fatalf("pointer values should spill: %v", err)
	}
	sum := 0
	for p := 0; p < sp.NumPartitions(); p++ {
		if err := sp.Partition(p).ForEachGroup(func(_ int, vs []*int) error {
			for _, v := range vs {
				sum += *v
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if sum != 280 {
		t.Errorf("pointer values lost data across spill: sum = %d, want 280", sum)
	}
}

// TestSpillFailureSurfaces: an unusable spill directory must fail the
// merge with a useful error, not corrupt the shuffle silently.
func TestSpillFailureSurfaces(t *testing.T) {
	s := New[int, int](Options{
		Partitions: 2, MaxBufferedPairs: 2,
		SpillDir: filepath.Join(t.TempDir(), "does", "not", "exist"),
	})
	buf := s.NewTaskBuffer()
	for i := 0; i < 16; i++ {
		buf.Emit(i, i)
	}
	err := s.Merge([]*TaskBuffer[int, int]{buf})
	if err == nil {
		t.Fatal("Merge succeeded with a nonexistent spill directory")
	}
	if !os.IsNotExist(unwrapAll(err)) {
		t.Fatalf("err = %v, want a not-exist I/O error", err)
	}
}

func unwrapAll(err error) error {
	for {
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}

// TestWithSeedDeterministicPlacement: under a pinned seed, placement —
// and everything derived from it — is identical across hashers and
// matches a freshly computed expectation.
func TestWithSeedDeterministicPlacement(t *testing.T) {
	restore := WithSeed(42)
	defer restore()

	h1 := NewHasher[string]()
	h2 := NewHasher[string]()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if h1.Hash(k) != h2.Hash(k) {
			t.Fatalf("pinned hashers disagree on %q", k)
		}
	}

	// Different seeds give different placements (else the hook is a
	// constant function).
	restore2 := WithSeed(43)
	h3 := NewHasher[string]()
	restore2()
	diff := 0
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if h1.Hash(k) != h3.Hash(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 hash identically")
	}

	// The pinned hash still spreads keys.
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[h1.Hash(fmt.Sprintf("key-%d", i))] = true
	}
	if len(seen) < 990 {
		t.Fatalf("only %d distinct pinned hashes over 1000 keys", len(seen))
	}

	// Restoring un-pins: new hashers return to the process seed.
	restore()
	h4 := NewHasher[string]()
	if h4.pinned {
		t.Fatal("restore did not un-pin the hasher mode")
	}
}
