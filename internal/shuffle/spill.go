// Disk-backed spill runs and the streaming k-way merge that reads them
// back.
//
// A sealed run is written once, in canonical sorted key order, as an
// internal/runfile run file; reading a partition is then the classic
// external-sort merge: one cursor per run (disk runs streamed from
// file, in-memory sealed runs and the live run walked over their
// sorted key slices) driven by a binary heap ordered by (key, seal
// order). Because every run is internally sorted, one pass produces
// the partition's groups in global sorted order with the package's
// value-order contract intact — values of a key concatenate across
// runs in seal order, live run last — while holding only one group per
// run in memory.
package shuffle

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/runfile"
)

// errStopIteration is the internal sentinel for early exit from
// forEachGroup; it is never returned to callers.
var errStopIteration = errors.New("shuffle: stop iteration")

// maxDiskRunFanIn caps how many run files one partition's merge reads
// at once. A seal that would grow a partition past the cap first
// compacts its existing disk runs into a single run — the classic
// multi-pass external merge — so open file descriptors and read
// buffers stay bounded no matter how far a dataset outgrows the
// budget, at the cost of logarithmically rewriting spilled bytes.
const maxDiskRunFanIn = 64

// diskReadConcurrency bounds how many partitions may hold their run
// files open at once — across the Stats counting pass, reduce-time
// merges, and merge-time compaction — keeping the file-descriptor
// high water near diskReadConcurrency * maxDiskRunFanIn regardless of
// partition count or worker count.
const diskReadConcurrency = 8

// diskRun is one sealed run encoded to a temp file; pairs drives the
// tiered compaction policy (small fresh seals vs large compacted runs).
type diskRun struct {
	path  string
	pairs int64
}

// spillToDisk encodes the live run to a new run file in sorted key
// order. Called only from the partition's owning merge goroutine.
func (st *partitionState[K, V]) spillToDisk(s *Shuffle[K, V]) error {
	dir := s.opts.SpillDir
	keys := sortedMapKeys(st.live)
	f, err := os.CreateTemp(dir, "mr-spill-*.run")
	if err != nil {
		return fmt.Errorf("shuffle: creating spill file: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	w := runfile.NewWriter(f)
	var kbuf, vbuf []byte
	for _, k := range keys {
		kbuf, err = runfile.Append(kbuf[:0], k)
		if err != nil {
			return fmt.Errorf("shuffle: spilling key: %w", err)
		}
		vs := st.live[k]
		if err := w.BeginGroup(kbuf, len(vs)); err != nil {
			return fmt.Errorf("shuffle: spilling to %s: %w", f.Name(), err)
		}
		for _, v := range vs {
			vbuf, err = runfile.Append(vbuf[:0], v)
			if err != nil {
				return fmt.Errorf("shuffle: spilling value: %w", err)
			}
			if err := w.AppendValue(vbuf); err != nil {
				return fmt.Errorf("shuffle: spilling to %s: %w", f.Name(), err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("shuffle: flushing spill %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shuffle: closing spill %s: %w", f.Name(), err)
	}
	st.disk = append(st.disk, diskRun{path: f.Name(), pairs: int64(st.livePairs)})
	st.spilledToDisk = true
	st.bytesSpilled += w.BytesWritten()
	ok = true
	if len(st.disk) >= maxDiskRunFanIn {
		s.diskSem <- struct{}{}
		defer func() { <-s.diskSem }()
		return st.compactDiskRuns(s)
	}
	return nil
}

// compactionSuffix picks which runs to compact when the fan-in cap is
// hit: the contiguous suffix of "small" runs (fresh budget-sized
// seals), leaving earlier already-compacted large runs untouched so
// each pair is rewritten once per tier rather than on every
// compaction. When the suffix holds fewer than two runs the list is
// all large runs — a higher-tier merge — and everything is compacted.
// Each tier is ~maxDiskRunFanIn/2 times larger than the last, so total
// rewrite amplification is logarithmic in the spilled volume.
func compactionSuffix[K comparable, V any](s *Shuffle[K, V], disk []diskRun) int {
	large := int64(s.opts.MaxBufferedPairs) * (maxDiskRunFanIn / 2)
	from := 0
	for i := len(disk) - 1; i >= 0; i-- {
		if disk[i].pairs >= large {
			from = i + 1
			break
		}
	}
	if len(disk)-from < 2 {
		return 0
	}
	return from
}

// compactDiskRuns merges the suffix of disk runs chosen by
// compactionSuffix into one new run file, streaming value bytes
// through without decoding them (only keys are decoded, for ordering).
// Groups of order-equal keys pop in seal order, so the rewritten file
// preserves the value-order contract; a key present in several runs
// becomes adjacent groups, which the read path folds back together.
// Peak memory is one value; peak descriptors maxDiskRunFanIn plus the
// output file.
func (st *partitionState[K, V]) compactDiskRuns(s *Shuffle[K, V]) (retErr error) {
	from := compactionSuffix(s, st.disk)
	compacting := st.disk[from:]
	less := nativeLess[K]()
	cursors, closeAll, err := openDiskCursors[K, V](compacting, less == nil)
	defer closeAll()
	if err != nil {
		return fmt.Errorf("shuffle: compacting spill runs: %w", err)
	}

	out, err := os.CreateTemp(s.opts.SpillDir, "mr-spill-*.run")
	if err != nil {
		return fmt.Errorf("shuffle: creating compacted run: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			out.Close()
			os.Remove(out.Name())
		}
	}()
	w := runfile.NewWriter(out)

	h := &cursorHeap[K, V]{less: less}
	if err := primeCursors(h, cursors); err != nil {
		return err
	}
	var kbuf []byte
	var pairs int64
	for len(h.cs) > 0 {
		c := h.pop()
		kbuf, err = runfile.Append(kbuf[:0], c.key)
		if err != nil {
			return fmt.Errorf("shuffle: compacting key: %w", err)
		}
		if err := w.BeginGroup(kbuf, c.count); err != nil {
			return fmt.Errorf("shuffle: compacting to %s: %w", out.Name(), err)
		}
		pairs += int64(c.count)
		for i := 0; i < c.count; i++ {
			v, err := c.rd.Value()
			if err != nil {
				return fmt.Errorf("shuffle: compacting %s: %w", c.file.Name(), err)
			}
			if err := w.AppendValue(v); err != nil {
				return fmt.Errorf("shuffle: compacting to %s: %w", out.Name(), err)
			}
		}
		cok, err := c.next()
		if err != nil {
			return err
		}
		if cok {
			h.push(c)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("shuffle: flushing compacted run: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("shuffle: closing compacted run: %w", err)
	}

	for _, dr := range compacting {
		os.Remove(dr.path)
	}
	st.disk = append(st.disk[:from], diskRun{path: out.Name(), pairs: pairs})
	st.bytesSpilled += w.BytesWritten()
	ok = true
	return nil
}

// openDiskCursors opens one streaming cursor per run file, in seal
// order. The returned closeAll is safe to call whether or not err is
// nil and closes everything opened so far.
func openDiskCursors[K comparable, V any](runs []diskRun, fmtKeys bool) ([]*groupCursor[K, V], func(), error) {
	var cursors []*groupCursor[K, V]
	closeAll := func() {
		for _, c := range cursors {
			c.file.Close()
		}
	}
	for _, dr := range runs {
		f, err := os.Open(dr.path)
		if err != nil {
			return cursors, closeAll, fmt.Errorf("shuffle: opening spill run: %w", err)
		}
		cursors = append(cursors, &groupCursor[K, V]{
			runIdx: len(cursors), fmtKeys: fmtKeys, file: f, rd: runfile.NewReader(f),
		})
	}
	return cursors, closeAll, nil
}

// primeCursors advances every cursor to its first group and pushes the
// non-empty ones onto the heap.
func primeCursors[K comparable, V any](h *cursorHeap[K, V], cursors []*groupCursor[K, V]) error {
	for _, c := range cursors {
		ok, err := c.next()
		if err != nil {
			return err
		}
		if ok {
			h.push(c)
		}
	}
	return nil
}

// Close deletes the shuffle's spill files; call it once the reduce
// phase is done with the partitions. Afterwards ForEachGroup and Stats
// on a partition that had spilled return an error rather than the
// silently truncated live-only view. Close must not run concurrently
// with reads.
func (s *Shuffle[K, V]) Close() error {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	var first error
	for i := range s.parts {
		for _, dr := range s.parts[i].disk {
			if err := os.Remove(dr.path); err != nil && first == nil {
				first = err
			}
		}
		s.parts[i].disk = nil
	}
	s.closed = true
	return first
}

// groupCursor walks one run's groups in canonical key order: either an
// in-memory map run over its sorted key slice, or a disk run streamed
// through a runfile.Reader.
type groupCursor[K comparable, V any] struct {
	runIdx  int  // seal order; the live run is last
	fmtKeys bool // cache fmt.Sprint of each key (formatted-order kinds)

	// in-memory source
	mem     map[K][]V
	memKeys []K
	pos     int

	// disk source
	file *os.File
	rd   *runfile.Reader

	// current group
	key   K
	fkey  string // formatted key, when fmtKeys; computed once per group
	count int
}

// next advances to the cursor's next group, returning false at the end
// of the run. For disk runs any unread values of the previous group
// are skipped without decoding.
func (c *groupCursor[K, V]) next() (bool, error) {
	if c.mem != nil {
		if c.pos >= len(c.memKeys) {
			return false, nil
		}
		c.key = c.memKeys[c.pos]
		c.count = len(c.mem[c.key])
		c.pos++
	} else {
		kb, n, err := c.rd.Next()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("shuffle: reading spill %s: %w", c.file.Name(), err)
		}
		k, err := runfile.Decode[K](kb)
		if err != nil {
			return false, fmt.Errorf("shuffle: decoding spill key in %s: %w", c.file.Name(), err)
		}
		c.key, c.count = k, n
	}
	if c.fmtKeys {
		c.fkey = fmt.Sprint(c.key)
	}
	return true, nil
}

// values decodes the current group's values.
func (c *groupCursor[K, V]) values() ([]V, error) {
	if c.mem != nil {
		return c.mem[c.key], nil
	}
	vs := make([]V, c.count)
	for i := range vs {
		vb, err := c.rd.Value()
		if err != nil {
			return nil, fmt.Errorf("shuffle: reading spill %s: %w", c.file.Name(), err)
		}
		vs[i], err = runfile.Decode[V](vb)
		if err != nil {
			return nil, fmt.Errorf("shuffle: decoding spill value in %s: %w", c.file.Name(), err)
		}
	}
	return vs, nil
}

// cursorHeap is a binary min-heap of cursors ordered by (current key,
// seal order), so equal keys pop in seal order and the concatenated
// values respect the package's value-order contract. less is the
// native typed order; when nil (formatted-order kinds) the cursors'
// cached fkey strings are compared instead, so fmt runs once per group
// advance, not once per heap comparison.
type cursorHeap[K comparable, V any] struct {
	cs   []*groupCursor[K, V]
	less func(a, b K) bool
}

func (h *cursorHeap[K, V]) before(a, b *groupCursor[K, V]) bool {
	if h.less != nil {
		if h.less(a.key, b.key) {
			return true
		}
		if h.less(b.key, a.key) {
			return false
		}
		return a.runIdx < b.runIdx
	}
	if a.fkey != b.fkey {
		return a.fkey < b.fkey
	}
	return a.runIdx < b.runIdx
}

func (h *cursorHeap[K, V]) push(c *groupCursor[K, V]) {
	h.cs = append(h.cs, c)
	i := len(h.cs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.cs[i], h.cs[parent]) {
			break
		}
		h.cs[i], h.cs[parent] = h.cs[parent], h.cs[i]
		i = parent
	}
}

func (h *cursorHeap[K, V]) pop() *groupCursor[K, V] {
	top := h.cs[0]
	last := len(h.cs) - 1
	h.cs[0] = h.cs[last]
	h.cs = h.cs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.cs) && h.before(h.cs[l], h.cs[min]) {
			min = l
		}
		if r < len(h.cs) && h.before(h.cs[r], h.cs[min]) {
			min = r
		}
		if min == i {
			break
		}
		h.cs[i], h.cs[min] = h.cs[min], h.cs[i]
		i = min
	}
	return top
}

// forEachGroup is the streaming core behind every read API: it yields
// the partition's groups in canonical sorted key order. When
// withValues is false, spilled values are skipped (counting mode, used
// by Stats and NumKeys); fn then receives a nil slice and the group's
// size in count.
func (p Partition[K, V]) forEachGroup(withValues bool, fn func(k K, count int, vs []V) error) error {
	st := &p.s.parts[p.idx]
	if p.s.closed && st.spilledToDisk {
		return fmt.Errorf("shuffle: partition %d read after Close: spilled runs deleted", p.idx)
	}

	// Fast path: a single live run needs no merge.
	if len(st.runs) == 0 && len(st.disk) == 0 {
		for _, k := range sortedMapKeys(st.live) {
			vs := st.live[k]
			arg := vs
			if !withValues {
				arg = nil
			}
			if err := fn(k, len(vs), arg); err != nil {
				return stopOK(err)
			}
		}
		return nil
	}

	less := nativeLess[K]()
	fmtKeys := less == nil
	if len(st.disk) > 0 {
		// Bound concurrent open run files across all readers (Stats'
		// counting goroutines, reduce workers): at most
		// diskReadConcurrency partitions hold their fan-in open at once.
		p.s.diskSem <- struct{}{}
		defer func() { <-p.s.diskSem }()
	}
	cursors, closeAll, err := openDiskCursors[K, V](st.disk, fmtKeys)
	defer closeAll()
	if err != nil {
		return err
	}
	for _, run := range st.runs {
		cursors = append(cursors, &groupCursor[K, V]{
			runIdx: len(cursors), fmtKeys: fmtKeys, mem: run, memKeys: sortedMapKeys(run),
		})
	}
	if len(st.live) > 0 {
		cursors = append(cursors, &groupCursor[K, V]{
			runIdx: len(cursors), fmtKeys: fmtKeys, mem: st.live, memKeys: sortedMapKeys(st.live),
		})
	}

	h := &cursorHeap[K, V]{less: less}
	if err := primeCursors(h, cursors); err != nil {
		return err
	}

	// Pop whole order-equivalence classes of the minimum key. For the
	// native key kinds order-equality is equality, so a class is one
	// key; for the formatted fallback, distinct keys can collide in
	// sort order (and each run may hold several of them in arbitrary
	// relative order), so the class is drained entirely and regrouped
	// by actual key before emitting — one group per key, always.
	type entry struct {
		key   K
		count int
		vs    []V
	}
	var entries []entry
	var pivot K
	var pivotFmt string
	inClass := func(c *groupCursor[K, V]) bool {
		if less != nil {
			return !less(c.key, pivot) && !less(pivot, c.key)
		}
		return c.fkey == pivotFmt
	}
	drain := func(c *groupCursor[K, V]) error {
		// Record the cursor's groups through the end of the class;
		// cursors are drained in seal order (the heap tie-breaks equal
		// keys by runIdx), preserving the value-order contract.
		for {
			e := entry{key: c.key, count: c.count}
			if withValues {
				vs, err := c.values()
				if err != nil {
					return err
				}
				e.vs = vs
			}
			entries = append(entries, e)
			ok, err := c.next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if !inClass(c) {
				h.push(c)
				return nil
			}
		}
	}
	for len(h.cs) > 0 {
		top := h.pop()
		pivot, pivotFmt = top.key, top.fkey
		entries = entries[:0]
		if err := drain(top); err != nil {
			return err
		}
		for len(h.cs) > 0 && inClass(h.cs[0]) {
			if err := drain(h.pop()); err != nil {
				return err
			}
		}
		for i := range entries {
			if entries[i].count < 0 {
				continue // folded into an earlier entry of the same key
			}
			k, count, vs := entries[i].key, entries[i].count, entries[i].vs
			copied := false
			for j := i + 1; j < len(entries); j++ {
				if entries[j].count >= 0 && entries[j].key == k {
					if withValues {
						if !copied {
							// Copy before extending: a single-run slice
							// may alias a live map's backing array.
							vs = append(make([]V, 0, count+entries[j].count), vs...)
							copied = true
						}
						vs = append(vs, entries[j].vs...)
					}
					count += entries[j].count
					entries[j].count = -1
				}
			}
			if err := fn(k, count, vs); err != nil {
				return stopOK(err)
			}
		}
	}
	return nil
}

// stopOK converts the early-exit sentinel into a clean return.
func stopOK(err error) error {
	if err == errStopIteration {
		return nil
	}
	return err
}

// sortedMapKeys returns m's keys in canonical SortKeys order.
func sortedMapKeys[K comparable, V any](m map[K][]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	SortKeys(keys)
	return keys
}

// nativeLess returns the typed strict order underlying SortKeys —
// numeric for the number kinds, byte order for strings — or nil for
// every other kind, which the merge then orders by cached formatted
// keys, matching SortKeys' formatted fallback. It must agree with the
// order runs were written in, i.e. with SortKeys; the test
// TestNativeLessAgreesWithSortKeys pins that invariant.
func nativeLess[K comparable]() func(a, b K) bool {
	var zero K
	switch any(zero).(type) {
	case int:
		return func(a, b K) bool { return any(a).(int) < any(b).(int) }
	case int8:
		return func(a, b K) bool { return any(a).(int8) < any(b).(int8) }
	case int16:
		return func(a, b K) bool { return any(a).(int16) < any(b).(int16) }
	case int32:
		return func(a, b K) bool { return any(a).(int32) < any(b).(int32) }
	case int64:
		return func(a, b K) bool { return any(a).(int64) < any(b).(int64) }
	case uint:
		return func(a, b K) bool { return any(a).(uint) < any(b).(uint) }
	case uint8:
		return func(a, b K) bool { return any(a).(uint8) < any(b).(uint8) }
	case uint16:
		return func(a, b K) bool { return any(a).(uint16) < any(b).(uint16) }
	case uint32:
		return func(a, b K) bool { return any(a).(uint32) < any(b).(uint32) }
	case uint64:
		return func(a, b K) bool { return any(a).(uint64) < any(b).(uint64) }
	case uintptr:
		return func(a, b K) bool { return any(a).(uintptr) < any(b).(uintptr) }
	case float32:
		return func(a, b K) bool { return any(a).(float32) < any(b).(float32) }
	case float64:
		return func(a, b K) bool { return any(a).(float64) < any(b).(float64) }
	case string:
		return func(a, b K) bool { return any(a).(string) < any(b).(string) }
	default:
		return nil
	}
}
