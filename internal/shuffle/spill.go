// Disk-backed spill runs and the streaming k-way merge that reads them
// back.
//
// A sealed run is written once, in canonical sorted key order, as an
// internal/runfile run file (format v2: groups plus a footer index of
// key, count, offset, value-bytes per group). The shuffle keeps each
// run's index resident in typed form — the keys were in memory at seal
// time, so the index costs no decode — which splits the read path in
// two:
//
//   - Counting reads (Stats, NumKeys, SortedKeys, ForEachGroupCount,
//     the engine's overflow diagnosis) merge the in-memory indexes and
//     never open a run file at all: zero disk I/O.
//   - Value reads (ForEachGroup, Values) run the classic external-sort
//     merge — one cursor per run driven by a binary heap ordered by
//     (key, seal order) — but the indexes drive the key ordering, so
//     the files supply only value bytes.
//
// Because every run is internally sorted, one pass produces the
// partition's groups in global sorted order with the package's
// value-order contract intact — values of a key concatenate across
// runs in seal order, live run last — while holding only one group per
// run in memory. All run-file reads are metered into the shuffle's
// DiskBytesRead counter, which is how tests assert the counting path
// stayed memory-only.
package shuffle

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/runfile"
)

// errStopIteration is the internal sentinel for early exit from
// forEachGroup; it is never returned to callers.
var errStopIteration = errors.New("shuffle: stop iteration")

// maxDiskRunFanIn caps how many distinct run *files* one partition's
// merge opens at once. A seal or adoption that would grow a partition
// past the cap first compacts its existing disk runs into a single run
// — the classic multi-pass external merge — so open file descriptors
// stay bounded no matter how far a dataset outgrows the budget, at the
// cost of logarithmically rewriting spilled bytes. Runs sharing a
// spool file (the streaming path's fenced runs) count once: the merge
// reads them through sections of a single handle, so dozens of small
// fenced runs do not trigger the compaction avalanche their count
// alone would suggest.
const maxDiskRunFanIn = 64

// maxDiskRunsPerPartition caps the total run count of one partition's
// merge regardless of how the runs share files: every cursor costs a
// read buffer and a heap slot even when its file handle is shared, so
// a streaming round whose pressure writes all land in one spool file
// must still compact once its run count (not file count) outgrows the
// merge. Twice the file fan-in: spool sections are cheaper than files
// but not free.
const maxDiskRunsPerPartition = 2 * maxDiskRunFanIn

// needsCompaction reports whether a partition's disk runs outgrew
// either bound: distinct files (file descriptors) or total runs (read
// buffers and merge width).
func needsCompaction[K comparable](disk []diskRun[K]) bool {
	return len(disk) >= maxDiskRunsPerPartition || diskFanIn(disk) >= maxDiskRunFanIn
}

// diskFanIn is the number of distinct files behind a partition's disk
// runs — the quantity maxDiskRunFanIn bounds.
func diskFanIn[K comparable](disk []diskRun[K]) int {
	n := 0
	var last *runFile
	seen := make(map[*runFile]struct{}, len(disk))
	for i := range disk {
		rf := disk[i].file
		if rf == last {
			continue // runs of one spool adopt adjacently; fast path
		}
		if _, ok := seen[rf]; !ok {
			seen[rf] = struct{}{}
			n++
		}
		last = rf
	}
	return n
}

// diskReadConcurrency bounds how many partitions may hold their run
// files open at once — across reduce-time merges and merge-time
// compaction — keeping the file-descriptor high water near
// diskReadConcurrency * maxDiskRunFanIn regardless of partition count
// or worker count. (The counting pass no longer opens files at all.)
const diskReadConcurrency = 8

// keyCount is one group of a spilled run's resident index: the typed
// key, its value count, and the location of its value section in the
// run image (valOff is relative to the run's start, not the file's —
// runs embedded in a spool add their diskRun offset). Indexes are
// built at spill and compaction time from keys already in memory, so
// counting reads never decode from disk, and value reads address their
// sections directly — no framing is parsed on the read path at all.
type keyCount[K comparable] struct {
	key      K
	count    int64
	valBytes int64
	valOff   int64
}

// runFile is one spill temp file, shared by every diskRun it embeds
// and deleted when the last of them is released. A sealed live run
// owns its whole file (refs = 1); the streaming path's fence spools
// write several runs — one per staged task — into a single file, so a
// pressure event costs one create/close/open no matter how many tasks
// it fences, while each task's run stays independently releasable
// (abort of one task must not delete another's fenced data).
type runFile struct {
	path string
	refs atomic.Int32
	size atomic.Int64 // bytes written into the file
	dead atomic.Int64 // bytes of sections already released (rotation trigger)
}

// release drops one reference, removing the file when none remain.
// When the remove succeeds mid-round, the file's bytes are credited to
// reclaimed (nil to skip the credit, e.g. at Close, where deleting
// spill files is the round ending rather than space coming back to a
// still-running round).
func (rf *runFile) release(fs runfile.FS, reclaimed *atomic.Int64) error {
	if rf.refs.Add(-1) == 0 {
		if err := fs.Remove(rf.path); err != nil {
			return err
		}
		if reclaimed != nil {
			reclaimed.Add(rf.size.Load())
		}
	}
	return nil
}

// diskRun is one sealed run — a complete, self-contained run-file
// image embedded in a (possibly shared) temp file at [off, off+size) —
// together with its resident index; pairs drives the tiered compaction
// policy (small fresh seals vs large compacted runs).
type diskRun[K comparable] struct {
	file  *runFile
	off   int64
	size  int64
	pairs int64
	index []keyCount[K]
}

// countingReader meters every byte read from a run file into the
// shuffle's DiskBytesRead counter.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// countingReaderAt is countingReader for the positioned-read fallback:
// cursors share one handle with no seek state, so every section read
// is a pread, metered the same way.
type countingReaderAt struct {
	ra io.ReaderAt
	n  *atomic.Int64
}

func (c countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.ra.ReadAt(p, off)
	c.n.Add(int64(n))
	return n, err
}

// writeRun encodes one sorted run (keys in sorted order, groups from
// the map) to a new run file under the spill dir and returns the run
// with its typed resident index, plus the body and index byte counts.
// Shared by live-run seals (spillToDisk) and the streaming path's
// fenced staged spills (ingest.go).
func writeRun[K comparable, V any](s *Shuffle[K, V], keys []K, groups map[K][]V, pairs int64) (dr diskRun[K], body, idx int64, retErr error) {
	f, err := s.fs.CreateTemp(s.opts.SpillDir, "mr-spill-*.run")
	if err != nil {
		return dr, 0, 0, fmt.Errorf("shuffle: creating spill file: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
			s.fs.Remove(f.Name())
		}
	}()
	w := runfile.NewWriter(f)
	if err := writeGroups(w, f.Name(), keys, groups); err != nil {
		return dr, 0, 0, err
	}
	if err := w.Finish(); err != nil {
		return dr, 0, 0, fmt.Errorf("shuffle: flushing spill %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		return dr, 0, 0, fmt.Errorf("shuffle: closing spill %s: %w", f.Name(), err)
	}
	ok = true
	rf := &runFile{path: f.Name()}
	rf.refs.Store(1)
	rf.size.Store(w.BytesWritten())
	dr = diskRun[K]{file: rf, off: 0, size: w.BytesWritten(), pairs: pairs, index: typedIndex(keys, w.Index(), w.BodyBytes())}
	return dr, w.BodyBytes(), w.BytesWritten() - w.BodyBytes(), nil
}

// writeGroups encodes one sorted run onto an already-open writer
// (shared by writeRun and the fence spool, which appends several
// complete runs to one file).
func writeGroups[K comparable, V any](w *runfile.Writer, name string, keys []K, groups map[K][]V) error {
	var kbuf, vbuf []byte
	var err error
	for _, k := range keys {
		kbuf, err = runfile.Append(kbuf[:0], k)
		if err != nil {
			return fmt.Errorf("shuffle: spilling key: %w", err)
		}
		vs := groups[k]
		if err := w.BeginGroup(kbuf, len(vs)); err != nil {
			return fmt.Errorf("shuffle: spilling to %s: %w", name, err)
		}
		for _, v := range vs {
			vbuf, err = runfile.Append(vbuf[:0], v)
			if err != nil {
				return fmt.Errorf("shuffle: spilling value: %w", err)
			}
			if err := w.AppendValue(vbuf); err != nil {
				return fmt.Errorf("shuffle: spilling to %s: %w", name, err)
			}
		}
	}
	return nil
}

// spillToDisk encodes the live run (already combined when the shuffle
// has a combiner) to a new run file in sorted key order and retains its
// typed index. Called from the partition's owning merge goroutine, or
// under the partition lock on the streaming path.
func (st *partitionState[K, V]) spillToDisk(s *Shuffle[K, V]) error {
	dr, body, idx, err := writeRun(s, sortedMapKeys(st.live), st.live, int64(st.livePairs))
	if err != nil {
		return err
	}
	st.disk = append(st.disk, dr)
	st.spilledToDisk = true
	st.bytesSpilled += body
	st.indexBytes += idx
	if needsCompaction(st.disk) {
		s.diskSem <- struct{}{}
		defer func() { <-s.diskSem }()
		return st.compactDiskRuns(s, st.lane, false)
	}
	return nil
}

// typedIndex pairs the writer's footer entries (counts and value-byte
// lengths, complete after Finish) with the typed keys they were written
// from, in write order. Each group's value-section offset is derived
// from where the next group starts (bodyEnd for the last group): the
// section is the valBytes-long tail of the group's framing.
func typedIndex[K comparable](keys []K, entries []runfile.IndexEntry, bodyEnd int64) []keyCount[K] {
	index := make([]keyCount[K], len(keys))
	for i, k := range keys {
		end := bodyEnd
		if i+1 < len(entries) {
			end = entries[i+1].Offset
		}
		index[i] = keyCount[K]{
			key:      k,
			count:    entries[i].Count,
			valBytes: entries[i].ValueBytes,
			valOff:   end - entries[i].ValueBytes,
		}
	}
	return index
}

// compactionSuffix picks which runs to compact when the fan-in cap is
// hit: the contiguous suffix of "small" runs (fresh budget-sized
// seals), leaving earlier already-compacted large runs untouched so
// each pair is rewritten once per tier rather than on every
// compaction. When the suffix holds fewer than two runs the list is
// all large runs — a higher-tier merge — and everything is compacted.
// Each tier is ~maxDiskRunFanIn/2 times larger than the last, so total
// rewrite amplification is logarithmic in the spilled volume.
func compactionSuffix[K comparable, V any](s *Shuffle[K, V], disk []diskRun[K]) int {
	large := int64(s.opts.MaxBufferedPairs) * (maxDiskRunFanIn / 2)
	from := 0
	for i := len(disk) - 1; i >= 0; i-- {
		if disk[i].pairs >= large {
			from = i + 1
			break
		}
	}
	if len(disk)-from < 2 {
		return 0
	}
	return from
}

// compactDiskRuns merges the suffix of disk runs chosen by
// compactionSuffix into one new run file and splices it into st.disk.
// The caller holds st.mu (streaming path) or owns the partition
// outright (barrier path). With concurrent set — the async compaction
// workers — the merge I/O runs with st.mu released: the input runs are
// immutable once sealed and concurrent seals only append to st.disk,
// so the planned [from, from+n) window is still the same runs at
// install time, and the splice simply carries any newer seals along.
// The span is recorded on lane: the partition's own lane inline, a
// compactor lane when concurrent (spans of different partitions then
// interleave freely without breaking per-lane LIFO).
func (st *partitionState[K, V]) compactDiskRuns(s *Shuffle[K, V], lane *obs.Ring, concurrent bool) (retErr error) {
	from := compactionSuffix(s, st.disk)
	compacting := append([]diskRun[K](nil), st.disk[from:]...)
	nIn := len(compacting)
	lane.Begin(obs.OpCompact, int64(nIn), 0)
	var outPairs int64
	defer func() { lane.End(obs.OpCompact, outPairs, errFlag(retErr)) }()
	var inPairs int64
	for _, dr := range compacting {
		inPairs += dr.pairs
	}

	if concurrent {
		st.mu.Unlock()
	}
	path, w, keysWritten, err := mergeDiskRuns(s, compacting)
	if concurrent {
		st.mu.Lock()
	}
	if err != nil {
		return err
	}

	for _, dr := range compacting {
		dr.file.dead.Add(dr.size)
		dr.file.release(s.fs, &s.bytesReclaimed)
	}
	outRef := &runFile{path: path}
	outRef.refs.Store(1)
	outRef.size.Store(w.BytesWritten())
	merged := diskRun[K]{
		file:  outRef,
		size:  w.BytesWritten(),
		pairs: w.Pairs(),
		index: typedIndex(keysWritten, w.Index(), w.BodyBytes()),
	}
	tail := append([]diskRun[K]{merged}, st.disk[from+nIn:]...)
	st.disk = append(st.disk[:from], tail...)
	st.bytesSpilled += w.BodyBytes()
	st.indexBytes += w.BytesWritten() - w.BodyBytes()
	// A combiner can shrink the partition's held pairs during the
	// rewrite; keep the partition totals equal to the sum of its group
	// counts.
	st.pairs -= inPairs - w.Pairs()
	outPairs = w.Pairs()
	return nil
}

// mergeDiskRuns merges the given sealed runs into one new run file,
// returning its path, the writer (whose index and counters describe
// the output), and the keys in write order. Pure I/O over immutable
// inputs — no partition state is read or written, which is what lets
// the async compactor run it without the partition lock.
//
// The merge order comes entirely from the runs' resident indexes — no
// key is decoded from disk — and value sections are addressed through
// those indexes and loaded on demand in fold order (a mapped view or
// one pread each), so the formatted-key fallback, where a fold can
// revisit a run's colliding-key groups out of file order, runs the
// same code as the native key kinds. Groups of the same key that
// become adjacent in merge order are folded into a single output group
// whose values concatenate in seal order, preserving the value-order
// contract; without a combiner each section moves as one raw framed
// copy, never parsed, while with a combiner the folded values are
// decoded, re-combined, and re-encoded, shrinking the rewritten bytes
// toward the post-combine communication cost. Peak memory is one
// group; peak descriptors maxDiskRunFanIn plus the output file.
func mergeDiskRuns[K comparable, V any](s *Shuffle[K, V], compacting []diskRun[K]) (path string, w *runfile.Writer, keysWritten []K, retErr error) {
	less := nativeLess[K]()
	cursors, closeAll, err := openDiskCursors[K, V](s, compacting, less == nil)
	defer closeAll()
	if err != nil {
		return "", nil, nil, fmt.Errorf("shuffle: compacting spill runs: %w", err)
	}

	out, err := s.fs.CreateTemp(s.opts.SpillDir, "mr-spill-*.run")
	if err != nil {
		return "", nil, nil, fmt.Errorf("shuffle: creating compacted run: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			out.Close()
			s.fs.Remove(out.Name())
		}
	}()
	w = runfile.NewWriter(out)

	h := &cursorHeap[K, V]{less: less}
	if err := primeCursors(h, cursors); err != nil {
		return "", nil, nil, err
	}

	// Drain whole order-equivalence classes (see forEachGroup): within a
	// class, groups of the same actual key are folded into one output
	// group, values concatenating in seal order. Each drained entry is
	// just an index record — cursor, key, count, section location — and
	// the fold loads sections when it writes them.
	type centry struct {
		c        *groupCursor[K, V]
		key      K
		count    int
		valBytes int64
		valOff   int64
	}
	var entries []centry
	var kbuf, vbuf []byte
	var vals []V // combiner scratch, reused across groups
	var pivot K
	var pivotFmt string
	inClass := func(c *groupCursor[K, V]) bool {
		if less != nil {
			return !less(c.key, pivot) && !less(pivot, c.key)
		}
		return c.fkey == pivotFmt
	}
	drain := func(c *groupCursor[K, V]) error {
		for {
			entries = append(entries, centry{c: c, key: c.key, count: c.count, valBytes: c.valBytes, valOff: c.valOff})
			ok, err := c.next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if !inClass(c) {
				h.push(c)
				return nil
			}
		}
	}
	writeGroup := func(k K, srcs []centry) error {
		var err error
		kbuf, err = runfile.Append(kbuf[:0], k)
		if err != nil {
			return fmt.Errorf("shuffle: compacting key: %w", err)
		}
		if s.combiner == nil {
			total := 0
			for _, e := range srcs {
				total += e.count
			}
			if err := w.BeginGroup(kbuf, total); err != nil {
				return fmt.Errorf("shuffle: compacting to %s: %w", out.Name(), err)
			}
			for _, e := range srcs {
				// One section load (mapped view or pread), one framed
				// append: the group's values move as raw bytes, never
				// parsed.
				if err := e.c.loadSection(e.valOff, e.valBytes, e.count); err != nil {
					return err
				}
				if err := w.AppendRawBytes(e.c.batch.Raw(), e.count); err != nil {
					return fmt.Errorf("shuffle: compacting to %s: %w", out.Name(), err)
				}
			}
			keysWritten = append(keysWritten, k)
			return nil
		}
		// Combiner path: decode the folded group's values in seal order,
		// re-combine, re-encode. The scratch slice is reused across
		// groups; the combined values are encoded before the next group
		// touches it, so a combiner returning a sub-slice of its input is
		// safe.
		vals = vals[:0]
		for _, e := range srcs {
			if err := e.c.loadSection(e.valOff, e.valBytes, e.count); err != nil {
				return err
			}
			vals, err = runfile.DecodeBatch[V](&e.c.batch, vals)
			if err != nil {
				return fmt.Errorf("shuffle: compacting %s: %w", e.c.file.Name(), err)
			}
		}
		combined := s.combiner(k, vals)
		if len(combined) == 0 {
			return nil // combiner dropped the group entirely
		}
		if err := w.BeginGroup(kbuf, len(combined)); err != nil {
			return fmt.Errorf("shuffle: compacting to %s: %w", out.Name(), err)
		}
		for _, v := range combined {
			vbuf, err = runfile.Append(vbuf[:0], v)
			if err != nil {
				return fmt.Errorf("shuffle: compacting value: %w", err)
			}
			if err := w.AppendValue(vbuf); err != nil {
				return fmt.Errorf("shuffle: compacting to %s: %w", out.Name(), err)
			}
		}
		keysWritten = append(keysWritten, k)
		return nil
	}
	var group []centry
	for len(h.cs) > 0 {
		top := h.pop()
		pivot, pivotFmt = top.key, top.fkey
		entries = entries[:0]
		if err := drain(top); err != nil {
			return "", nil, nil, err
		}
		for len(h.cs) > 0 && inClass(h.cs[0]) {
			if err := drain(h.pop()); err != nil {
				return "", nil, nil, err
			}
		}
		for i := range entries {
			if entries[i].count < 0 {
				continue // folded into an earlier group of the same key
			}
			k := entries[i].key
			group = append(group[:0], entries[i])
			for j := i + 1; j < len(entries); j++ {
				if entries[j].count >= 0 && entries[j].key == k {
					group = append(group, entries[j])
					entries[j].count = -1
				}
			}
			if err := writeGroup(k, group); err != nil {
				return "", nil, nil, err
			}
		}
	}
	if err := w.Finish(); err != nil {
		return "", nil, nil, fmt.Errorf("shuffle: flushing compacted run: %w", err)
	}
	if err := out.Close(); err != nil {
		return "", nil, nil, fmt.Errorf("shuffle: closing compacted run: %w", err)
	}
	ok = true
	return out.Name(), w, keysWritten, nil
}

// runView is one disk run's opened read surface: a zero-copy mapped
// view of the run's image when the platform and FS support it, or the
// positioned-read fallback on the shared handle otherwise. Views of
// runs embedded in one spool file share a single handle and a single
// mapping, so several cursors — including clamped range cursors reading
// the same run concurrently — cost one descriptor and one mapping per
// file.
type runView struct {
	file  runfile.File
	img   []byte      // mapped view of the run image (zero-copy path)
	ra    io.ReaderAt // positioned-read fallback (when img is nil)
	raOff int64       // run's offset within the file (ra path)
}

// openRunViews opens one view per disk run, in seal order. Each spool
// file is opened once and mapped once (up to the end of its
// furthest-reaching run) when possible; any mapping failure — no
// platform support, an injected fault, address-space pressure —
// silently selects the pread fallback (no seek state, so sibling
// cursors never interfere). The returned closeAll is safe to call
// whether or not err is nil; it unmaps and closes every handle opened
// so far, once each.
func openRunViews[K comparable, V any](s *Shuffle[K, V], runs []diskRun[K]) ([]runView, func(), error) {
	type openFile struct {
		f      runfile.File
		mapped []byte
	}
	files := make(map[*runFile]*openFile)
	closeAll := func() {
		for _, of := range files {
			if of.mapped != nil {
				// Unmap errors are unactionable here: the views are dead
				// either way, and errfs releases the real mapping even
				// when injecting.
				runfile.Unmap(of.f, of.mapped)
			}
			of.f.Close()
		}
	}
	mapLen := make(map[*runFile]int64, len(runs))
	for _, dr := range runs {
		if end := dr.off + dr.size; end > mapLen[dr.file] {
			mapLen[dr.file] = end
		}
	}
	views := make([]runView, 0, len(runs))
	for _, dr := range runs {
		of, ok := files[dr.file]
		if !ok {
			f, err := s.fs.Open(dr.file.path)
			if err != nil {
				return views, closeAll, fmt.Errorf("shuffle: opening spill run: %w", err)
			}
			of = &openFile{f: f}
			if !s.opts.DisableMmap {
				if m, err := runfile.Map(f, mapLen[dr.file]); err == nil {
					of.mapped = m
				}
			}
			files[dr.file] = of
		}
		v := runView{file: of.f}
		if of.mapped != nil {
			v.img = of.mapped[dr.off : dr.off+dr.size]
		} else {
			v.ra = countingReaderAt{of.f, &s.diskRead}
			v.raOff = dr.off
		}
		views = append(views, v)
	}
	return views, closeAll, nil
}

// openDiskCursors opens one cursor per disk run, in seal order, each
// metered through the shuffle's DiskBytesRead counter. The cursor's
// key ordering comes from the run's resident index; the file supplies
// only value-section bytes, addressed directly through the index (see
// openRunViews for the mapped-view/pread split). The legacy perValue
// hook additionally keeps a sequential reader per run so the pre-batch
// decode loop stays measurable.
func openDiskCursors[K comparable, V any](s *Shuffle[K, V], runs []diskRun[K], fmtKeys bool) ([]*groupCursor[K, V], func(), error) {
	views, closeAll, err := openRunViews(s, runs)
	if err != nil {
		return nil, closeAll, err
	}
	cursors := make([]*groupCursor[K, V], 0, len(runs))
	for i, dr := range runs {
		c := &groupCursor[K, V]{
			runIdx: i, fmtKeys: fmtKeys, perValue: s.perValue, idx: dr.index,
			file: views[i].file, img: views[i].img, ra: views[i].ra, raOff: views[i].raOff,
			meter: &s.diskRead,
		}
		if s.perValue {
			var src io.Reader = views[i].file
			if dr.off != 0 {
				src = io.NewSectionReader(views[i].file, dr.off, dr.size)
			}
			c.rd = runfile.NewReader(countingReader{src, &s.diskRead})
		}
		cursors = append(cursors, c)
	}
	return cursors, closeAll, nil
}

// primeCursors advances every cursor to its first group and pushes the
// non-empty ones onto the heap.
func primeCursors[K comparable, V any](h *cursorHeap[K, V], cursors []*groupCursor[K, V]) error {
	for _, c := range cursors {
		ok, err := c.next()
		if err != nil {
			return err
		}
		if ok {
			h.push(c)
		}
	}
	return nil
}

// Close deletes the shuffle's spill files; call it once the reduce
// phase is done with the partitions. Afterwards ForEachGroup and Stats
// on a partition that had spilled return an error rather than the
// silently truncated live-only view (a Stats result memoized before
// Close stays servable — it needs no disk). Close must not run
// concurrently with reads.
func (s *Shuffle[K, V]) Close() error {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	if s.closed {
		return nil
	}
	// Quiesce the async compaction workers first: an in-flight merge
	// holds run files open and would install its output into the
	// partitions being torn down. Errors they hit surface through
	// Ingester.Finish; Close only waits.
	s.compactWG.Wait()
	if s.compactCh != nil {
		close(s.compactCh)
	}
	// Releases below pass a nil reclaimed counter: deleting spill files
	// because the round is over is teardown, not space coming back to a
	// running round.
	var first error
	for i := range s.parts {
		st := &s.parts[i]
		for _, dr := range st.disk {
			if err := dr.file.release(s.fs, nil); err != nil && first == nil {
				first = err
			}
		}
		st.disk = nil
		// Swapped sections of tasks that never committed (the round
		// failed mid-ingestion) still hold references to their stash
		// files; release them too, and the spools' write handles when a
		// failed round never reached Ingester.Finish.
		for _, sr := range st.staged {
			for _, sec := range sr.swapped {
				if err := sec.rf.release(s.fs, nil); err != nil && first == nil {
					first = err
				}
			}
		}
		st.staged = nil
		if st.pspool != nil {
			if err := st.pspool.close(nil); err != nil && first == nil {
				first = err
			}
			st.pspool = nil
		}
		if st.stash != nil {
			if err := st.stash.close(nil); err != nil && first == nil {
				first = err
			}
			st.stash = nil
		}
	}
	s.closed = true
	return first
}

// groupCursor walks one run's groups in canonical key order: an
// in-memory map run over its sorted key slice, or a spilled run driven
// by its resident index — with the run file attached only when values
// are being read.
type groupCursor[K comparable, V any] struct {
	runIdx   int  // seal order; the live run is last
	fmtKeys  bool // cache fmt.Sprint of each key (formatted-order kinds)
	perValue bool // legacy per-value decode (bench/test comparison hook)

	// in-memory source
	mem     map[K][]V
	memKeys []K

	// spilled source: the resident index drives keys, counts and value
	// section locations; the file (img view or ReaderAt, both nil on
	// the counting path) supplies only section bytes.
	idx   []keyCount[K]
	file  runfile.File
	img   []byte             // mapped view of this run's image (zero-copy path)
	ra    io.ReaderAt        // positioned-read fallback (shared handle)
	raOff int64              // run's offset within the file (ra path)
	meter *atomic.Int64      // DiskBytesRead, charged per section load
	rd    *runfile.Reader    // sequential reader (perValue hook only)
	kbuf  []byte             // reused key-framing scratch for rd
	vbuf  []byte             // reused value scratch for rd (per-value path)
	batch runfile.ValueBatch // reused value-section arena or view (batch path)
	vals  []V                // reused decoded-values scratch (reuse mode)

	pos int

	// current group
	key      K
	fkey     string // formatted key, when fmtKeys; computed once per group
	count    int
	valBytes int64 // value-section length (spilled source)
	valOff   int64 // value-section offset within the run (spilled source)
}

// next advances to the cursor's next group, returning false at the end
// of the run. Purely in-memory: spilled cursors step their index; the
// file is touched only when values() is called.
func (c *groupCursor[K, V]) next() (bool, error) {
	if c.mem != nil {
		if c.pos >= len(c.memKeys) {
			return false, nil
		}
		c.key = c.memKeys[c.pos]
		c.count = len(c.mem[c.key])
		c.pos++
	} else {
		if c.pos >= len(c.idx) {
			return false, nil
		}
		e := c.idx[c.pos]
		c.key, c.count, c.valBytes, c.valOff = e.key, int(e.count), e.valBytes, e.valOff
		c.pos++
	}
	if c.fmtKeys {
		c.fkey = fmt.Sprint(c.key)
	}
	return true, nil
}

// loadSection fills the cursor's batch with the value section at
// [valOff, valOff+valBytes) of the cursor's run: a zero-copy view when
// the run is mapped, one positioned read into the reused arena
// otherwise. The resident index supplies the location and the value
// count, so no framing is parsed from disk on either path; the
// section's own internal framing is still validated as the batch
// splits it (a length overrunning the section is ErrCorrupt).
func (c *groupCursor[K, V]) loadSection(valOff, valBytes int64, count int) error {
	if c.img != nil {
		if valOff < 0 || valBytes < 0 || valOff+valBytes > int64(len(c.img)) {
			return fmt.Errorf("shuffle: reading spill %s: %w: value section [%d,%d) outside run of %d bytes",
				c.file.Name(), runfile.ErrCorrupt, valOff, valOff+valBytes, len(c.img))
		}
		c.meter.Add(valBytes)
		if err := c.batch.SetView(c.img[valOff:valOff+valBytes], count); err != nil {
			return fmt.Errorf("shuffle: reading spill %s: %w", c.file.Name(), err)
		}
		return nil
	}
	if err := c.batch.ReadSectionAt(c.ra, c.raOff+valOff, valBytes, count); err != nil {
		return fmt.Errorf("shuffle: reading spill %s: %w", c.file.Name(), err)
	}
	return nil
}

// values decodes the current group's values. For a spilled run this is
// the only point the file is touched: the resident index locates the
// group's value section, loadSection brings it in (mapped view or one
// pread — no framing decoded, no intermediate copy), and the batch is
// decoded with a single type dispatch (runfile.DecodeBatch). With
// reuse set — the ForEachGroupBatch contract — the decoded slice is
// the cursor's scratch, overwritten by the next group; otherwise it is
// freshly owned. The perValue hook restores the pre-batch sequential
// decode loop so benchmarks can measure the paths head to head.
func (c *groupCursor[K, V]) values(reuse bool) ([]V, error) {
	if c.mem != nil {
		return c.mem[c.key], nil
	}
	if c.perValue {
		kb, n, err := c.rd.NextAppend(c.kbuf[:0])
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("file ended before indexed group")
			}
			return nil, fmt.Errorf("shuffle: reading spill %s: %w", c.file.Name(), err)
		}
		c.kbuf = kb
		if n != c.count {
			return nil, fmt.Errorf("shuffle: reading spill %s: group has %d values, index says %d",
				c.file.Name(), n, c.count)
		}
		vs := make([]V, c.count)
		for i := range vs {
			vb, err := c.rd.ValueAppend(c.vbuf[:0])
			if err != nil {
				return nil, fmt.Errorf("shuffle: reading spill %s: %w", c.file.Name(), err)
			}
			c.vbuf = vb
			vs[i], err = runfile.Decode[V](vb)
			if err != nil {
				return nil, fmt.Errorf("shuffle: decoding spill value in %s: %w", c.file.Name(), err)
			}
		}
		return vs, nil
	}
	if err := c.loadSection(c.valOff, c.valBytes, c.count); err != nil {
		return nil, err
	}
	dst := c.vals[:0]
	if !reuse {
		dst = make([]V, 0, c.count)
	}
	vs, err := runfile.DecodeBatch[V](&c.batch, dst)
	if err != nil {
		return nil, fmt.Errorf("shuffle: decoding spill value in %s: %w", c.file.Name(), err)
	}
	if reuse {
		c.vals = vs
	}
	return vs, nil
}

// cursorHeap is a binary min-heap of cursors ordered by (current key,
// seal order), so equal keys pop in seal order and the concatenated
// values respect the package's value-order contract. less is the
// native typed order; when nil (formatted-order kinds) the cursors'
// cached fkey strings are compared instead, so fmt runs once per group
// advance, not once per heap comparison.
type cursorHeap[K comparable, V any] struct {
	cs   []*groupCursor[K, V]
	less func(a, b K) bool
}

func (h *cursorHeap[K, V]) before(a, b *groupCursor[K, V]) bool {
	if h.less != nil {
		if h.less(a.key, b.key) {
			return true
		}
		if h.less(b.key, a.key) {
			return false
		}
		return a.runIdx < b.runIdx
	}
	if a.fkey != b.fkey {
		return a.fkey < b.fkey
	}
	return a.runIdx < b.runIdx
}

func (h *cursorHeap[K, V]) push(c *groupCursor[K, V]) {
	h.cs = append(h.cs, c)
	i := len(h.cs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.cs[i], h.cs[parent]) {
			break
		}
		h.cs[i], h.cs[parent] = h.cs[parent], h.cs[i]
		i = parent
	}
}

func (h *cursorHeap[K, V]) pop() *groupCursor[K, V] {
	top := h.cs[0]
	last := len(h.cs) - 1
	h.cs[0] = h.cs[last]
	h.cs = h.cs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.cs) && h.before(h.cs[l], h.cs[min]) {
			min = l
		}
		if r < len(h.cs) && h.before(h.cs[r], h.cs[min]) {
			min = r
		}
		if min == i {
			break
		}
		h.cs[i], h.cs[min] = h.cs[min], h.cs[i]
		i = min
	}
	return top
}

// forEachGroup is the streaming core behind every read API: it yields
// the partition's groups in canonical sorted key order. When
// withValues is false the walk is a pure in-memory merge of the
// spilled runs' resident indexes with the live and sealed in-memory
// runs — no run file is opened, no byte of disk is read (counting
// mode, used by Stats, NumKeys, SortedKeys and ForEachGroupCount); fn
// then receives a nil slice and the group's size in count. With
// reuseValues set (ForEachGroupBatch) each disk cursor decodes into a
// scratch slice that its next group overwrites, so fn must not retain
// the slice; the mode is disabled under the formatted-key fallback,
// where a class can drain several groups of one cursor before fn runs.
func (p Partition[K, V]) forEachGroup(withValues, reuseValues bool, fn func(k K, count int, vs []V) error) (retErr error) {
	st := &p.s.parts[p.idx]
	if p.s.closed && st.spilledToDisk {
		return fmt.Errorf("shuffle: partition %d read after Close: spilled runs deleted", p.idx)
	}

	// Fast path: a single live run needs no merge.
	if len(st.runs) == 0 && len(st.disk) == 0 {
		for _, k := range sortedMapKeys(st.live) {
			vs := st.live[k]
			arg := vs
			if !withValues {
				arg = nil
			}
			if err := fn(k, len(vs), arg); err != nil {
				return stopOK(err)
			}
		}
		return nil
	}

	less := nativeLess[K]()
	fmtKeys := less == nil
	reuseValues = reuseValues && !fmtKeys
	var cursors []*groupCursor[K, V]
	if withValues && len(st.disk) > 0 {
		// Bound concurrent open run files across all value readers
		// (reduce workers): at most diskReadConcurrency partitions hold
		// their fan-in open at once.
		p.s.diskSem <- struct{}{}
		defer func() { <-p.s.diskSem }()
		// The reduce-merge span covers the window the partition's run
		// files are held open — counting mode never opens files and is
		// not recorded.
		st.lane.Begin(obs.OpReduceMerge, int64(len(st.disk)), 0)
		defer func() { st.lane.End(obs.OpReduceMerge, 0, errFlag(retErr)) }()
		var closeAll func()
		var err error
		cursors, closeAll, err = openDiskCursors[K, V](p.s, st.disk, fmtKeys)
		defer closeAll()
		if err != nil {
			return err
		}
	} else {
		// Counting mode walks the resident indexes: memory-only.
		for _, dr := range st.disk {
			cursors = append(cursors, &groupCursor[K, V]{
				runIdx: len(cursors), fmtKeys: fmtKeys, idx: dr.index,
			})
		}
	}
	for _, run := range st.runs {
		cursors = append(cursors, &groupCursor[K, V]{
			runIdx: len(cursors), fmtKeys: fmtKeys, mem: run, memKeys: sortedMapKeys(run),
		})
	}
	if len(st.live) > 0 {
		cursors = append(cursors, &groupCursor[K, V]{
			runIdx: len(cursors), fmtKeys: fmtKeys, mem: st.live, memKeys: sortedMapKeys(st.live),
		})
	}

	return mergeGroupCursors(cursors, less, withValues, reuseValues, fn)
}

// mergeGroupCursors runs the k-way heap merge over an already-built
// cursor set, yielding groups in canonical key order — the shared core
// of forEachGroup and the clamped range merges (RangeReader). Cursors
// must be ordered by runIdx ascending (seal order, live run last) so
// the value-order contract holds.
func mergeGroupCursors[K comparable, V any](cursors []*groupCursor[K, V], less func(a, b K) bool, withValues, reuseValues bool, fn func(k K, count int, vs []V) error) error {
	h := &cursorHeap[K, V]{less: less}
	if err := primeCursors(h, cursors); err != nil {
		return err
	}

	// Pop whole order-equivalence classes of the minimum key. For the
	// native key kinds order-equality is equality, so a class is one
	// key; for the formatted fallback, distinct keys can collide in
	// sort order (and each run may hold several of them in arbitrary
	// relative order), so the class is drained entirely and regrouped
	// by actual key before emitting — one group per key, always.
	type entry struct {
		key   K
		count int
		vs    []V
	}
	var entries []entry
	var pivot K
	var pivotFmt string
	inClass := func(c *groupCursor[K, V]) bool {
		if less != nil {
			return !less(c.key, pivot) && !less(pivot, c.key)
		}
		return c.fkey == pivotFmt
	}
	drain := func(c *groupCursor[K, V]) error {
		// Record the cursor's groups through the end of the class;
		// cursors are drained in seal order (the heap tie-breaks equal
		// keys by runIdx), preserving the value-order contract.
		for {
			e := entry{key: c.key, count: c.count}
			if withValues {
				vs, err := c.values(reuseValues)
				if err != nil {
					return err
				}
				e.vs = vs
			}
			entries = append(entries, e)
			ok, err := c.next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if !inClass(c) {
				h.push(c)
				return nil
			}
		}
	}
	for len(h.cs) > 0 {
		top := h.pop()
		pivot, pivotFmt = top.key, top.fkey
		entries = entries[:0]
		if err := drain(top); err != nil {
			return err
		}
		for len(h.cs) > 0 && inClass(h.cs[0]) {
			if err := drain(h.pop()); err != nil {
				return err
			}
		}
		for i := range entries {
			if entries[i].count < 0 {
				continue // folded into an earlier entry of the same key
			}
			k, count, vs := entries[i].key, entries[i].count, entries[i].vs
			copied := false
			for j := i + 1; j < len(entries); j++ {
				if entries[j].count >= 0 && entries[j].key == k {
					if withValues {
						if !copied {
							// Copy before extending: a single-run slice
							// may alias a live map's backing array.
							vs = append(make([]V, 0, count+entries[j].count), vs...)
							copied = true
						}
						vs = append(vs, entries[j].vs...)
					}
					count += entries[j].count
					entries[j].count = -1
				}
			}
			if err := fn(k, count, vs); err != nil {
				return stopOK(err)
			}
		}
	}
	return nil
}

// stopOK converts the early-exit sentinel into a clean return.
func stopOK(err error) error {
	if err == errStopIteration {
		return nil
	}
	return err
}

// sortedMapKeys returns m's keys in canonical SortKeys order.
func sortedMapKeys[K comparable, V any](m map[K][]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	SortKeys(keys)
	return keys
}

// KeyLess returns the canonical strict order on K — the comparator
// behind SortKeys, exported for external k-way merges (internal/proc's
// reduce workers order their section-cursor heap with it). Native
// kinds compare directly; every other comparable kind falls back to
// comparing formatted values, matching SortKeys' formatted fallback
// (callers doing many comparisons should cache the formatted strings).
func KeyLess[K comparable]() func(a, b K) bool {
	if lt := nativeLess[K](); lt != nil {
		return lt
	}
	return func(a, b K) bool { return fmt.Sprint(a) < fmt.Sprint(b) }
}

// nativeLess returns the typed strict order underlying SortKeys —
// numeric for the number kinds, byte order for strings — or nil for
// every other kind, which the merge then orders by cached formatted
// keys, matching SortKeys' formatted fallback. It must agree with the
// order runs were written in, i.e. with SortKeys; the test
// TestNativeLessAgreesWithSortKeys pins that invariant.
func nativeLess[K comparable]() func(a, b K) bool {
	var zero K
	switch any(zero).(type) {
	case int:
		return func(a, b K) bool { return any(a).(int) < any(b).(int) }
	case int8:
		return func(a, b K) bool { return any(a).(int8) < any(b).(int8) }
	case int16:
		return func(a, b K) bool { return any(a).(int16) < any(b).(int16) }
	case int32:
		return func(a, b K) bool { return any(a).(int32) < any(b).(int32) }
	case int64:
		return func(a, b K) bool { return any(a).(int64) < any(b).(int64) }
	case uint:
		return func(a, b K) bool { return any(a).(uint) < any(b).(uint) }
	case uint8:
		return func(a, b K) bool { return any(a).(uint8) < any(b).(uint8) }
	case uint16:
		return func(a, b K) bool { return any(a).(uint16) < any(b).(uint16) }
	case uint32:
		return func(a, b K) bool { return any(a).(uint32) < any(b).(uint32) }
	case uint64:
		return func(a, b K) bool { return any(a).(uint64) < any(b).(uint64) }
	case uintptr:
		return func(a, b K) bool { return any(a).(uintptr) < any(b).(uintptr) }
	case float32:
		return func(a, b K) bool { return any(a).(float32) < any(b).(float32) }
	case float64:
		return func(a, b K) bool { return any(a).(float64) < any(b).(float64) }
	case string:
		return func(a, b K) bool { return any(a).(string) < any(b).(string) }
	default:
		return nil
	}
}
