package shuffle

import (
	"fmt"
	"reflect"
	"testing"
)

// TestCompactionWithCollidingFormattedKeys: distinct struct keys whose
// fmt.Sprint forms collide sort as order-equals, and each spill run
// may hold them in either relative order (sortedMapKeys' sort is not
// stable across fmt-equal keys). Compaction must still fold and copy
// every group correctly — it cannot assume a run contributes at most
// one group per order-equivalence class, nor consume a run's groups
// out of file order.
func TestCompactionWithCollidingFormattedKeys(t *testing.T) {
	type k2 struct{ A, B string }
	colliders := []k2{{"a b", "c"}, {"a", "b c"}} // both format as "{a b c}"
	s := New[k2, int](Options{Partitions: 2, MaxBufferedPairs: 3, SpillDir: t.TempDir()})
	defer s.Close()
	s.SetPartitioner(func(k2) int { return 0 })
	buf := s.NewTaskBuffer()
	want := make(map[k2][]int)
	// Unequal per-seal group sizes for the two colliders, plus a third
	// key, across enough seals to force compaction at the fan-in cap.
	n := 3 * (2*maxDiskRunFanIn + 5)
	for i := 0; i < n; i++ {
		k := colliders[i%3%2] // 2 of every 3 pairs to collider 0, 1 to collider 1
		if i%7 == 0 {
			k = k2{"z", fmt.Sprint(i % 4)}
		}
		buf.Emit(k, i)
		want[k] = append(want[k], i)
	}
	if err := s.Merge([]*TaskBuffer[k2, int]{buf}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.parts[0].disk); got >= maxDiskRunFanIn {
		t.Fatalf("%d disk runs; compaction never triggered", got)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != int64(len(want)) {
		t.Errorf("Stats.Keys = %d, want %d", st.Keys, len(want))
	}
	got := make(map[k2][]int)
	if err := s.Partition(0).ForEachGroup(func(k k2, vs []int) error {
		if _, dup := got[k]; dup {
			t.Fatalf("key %+v emitted as two groups", k)
		}
		got[k] = append([]int(nil), vs...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("grouped values diverge from reference after compaction of colliding keys")
	}
}
