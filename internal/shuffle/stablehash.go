// Cross-process stable key hashing.
//
// The package's default Hasher uses the runtime's maphash with a
// per-process random seed: perfect for one process, useless the moment
// two processes must agree on key placement — each would route the same
// key to a different partition and grouping would silently break. The
// multi-process runtime (internal/proc) partitions map output in worker
// processes and merges it in reduce processes, so it needs a hash that
// is a pure function of the key's value, not of any process state.
//
// StableHasher provides that: the key is encoded with the run-file
// codec (the same canonical byte representation spilled runs use, so
// two equal keys always produce identical bytes) and hashed with
// FNV-1a. Slower than maphash — an encode per key — but placement is
// identical in every process, on every run, forever, which also makes
// per-partition profiles reproducible for tests that need them.
package shuffle

import "repro/internal/runfile"

// fnv64 constants (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// StableHasher hashes keys to the same value in every process. Not safe
// for concurrent use (it reuses an internal encode buffer); give each
// goroutine its own.
type StableHasher[K comparable] struct {
	scratch []byte
}

// Hash returns the key's stable 64-bit hash. It fails only when the
// key type cannot be encoded by the run-file codec (the same types that
// cannot spill).
func (h *StableHasher[K]) Hash(k K) (uint64, error) {
	b, err := runfile.Append(h.scratch[:0], k)
	if err != nil {
		return 0, err
	}
	h.scratch = b
	hv := uint64(fnvOffset64)
	for _, c := range b {
		hv = (hv ^ uint64(c)) * fnvPrime64
	}
	return hv, nil
}

// StablePartition maps the key onto one of p partitions with the stable
// hash. Every process computes the same placement for the same key.
func (h *StableHasher[K]) StablePartition(k K, p int) (int, error) {
	hv, err := h.Hash(k)
	if err != nil {
		return 0, err
	}
	return int(hv % uint64(p)), nil
}
