package shuffle

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// rangeRef drains a partition through the whole-partition merge into an
// ordered (key, values) sequence — the reference a range-split read
// must reproduce exactly, order included.
type rangeGroup[K comparable] struct {
	Key K
	Vs  []int
}

func rangeRef[K comparable](t *testing.T, p Partition[K, int]) []rangeGroup[K] {
	t.Helper()
	var ref []rangeGroup[K]
	if err := p.ForEachGroup(func(k K, vs []int) error {
		ref = append(ref, rangeGroup[K]{Key: k, Vs: append([]int(nil), vs...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ref
}

// readRanges reads every planned range through one shared RangeReader —
// concurrently, into per-range slots — and concatenates in plan order.
func readRanges[K comparable](t *testing.T, p Partition[K, int], ranges []KeyRange[K]) []rangeGroup[K] {
	t.Helper()
	rr, err := p.OpenRangeReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	perRange := make([][]rangeGroup[K], len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i := range ranges {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rr.ForEachGroupRange(ranges[i], false, func(k K, vs []int) error {
				perRange[i] = append(perRange[i], rangeGroup[K]{Key: k, Vs: append([]int(nil), vs...)})
				return nil
			})
		}(i)
	}
	wg.Wait()
	var got []rangeGroup[K]
	for i := range ranges {
		if errs[i] != nil {
			t.Fatalf("range %d: %v", i, errs[i])
		}
		got = append(got, perRange[i]...)
	}
	return got
}

// checkRangeInvariants: every group of the reference belongs to exactly
// one planned range (Contains), the planned loads sum to the partition
// totals, and bounds sit on class starts.
func checkRangeInvariants[K comparable](t *testing.T, ranges []KeyRange[K], ref []rangeGroup[K]) {
	t.Helper()
	var pairs, keys int64
	for _, r := range ranges {
		pairs += r.Pairs
		keys += r.Keys
	}
	var wantPairs int64
	for _, g := range ref {
		wantPairs += int64(len(g.Vs))
		owners := 0
		for _, r := range ranges {
			if r.Contains(g.Key) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %v contained in %d ranges, want exactly 1", g.Key, owners)
		}
	}
	if pairs != wantPairs || keys != int64(len(ref)) {
		t.Fatalf("planned loads sum to %d pairs / %d keys, partition has %d / %d",
			pairs, keys, wantPairs, len(ref))
	}
}

// TestPlanReduceRangesEquivalence is the range-split property test:
// random workloads (spilled and memory-only), random split targets —
// the concatenation of the planned ranges read through a shared
// RangeReader must equal the whole-partition merge byte for byte
// (key order and value order), and every group must fall in exactly
// one range.
func TestPlanReduceRangesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	planned := 0
	for trial := 0; trial < 30; trial++ {
		opts := Options{Partitions: 2}
		if trial%2 == 0 {
			opts.MaxBufferedPairs = 4 + rng.Intn(16)
			opts.SpillDir = t.TempDir()
		}
		if trial%4 == 1 {
			opts.MaxBufferedPairs = 8 // sealed in-memory runs, no disk
		}
		s := New[string, int](opts)
		s.SetPartitioner(func(string) int { return 0 })
		buf := s.NewTaskBuffer()
		nKeys := 1 + rng.Intn(40)
		nPairs := 1 + rng.Intn(400)
		for i := 0; i < nPairs; i++ {
			// Skewed: low key numbers get the bulk of the pairs.
			k := fmt.Sprintf("k%03d", int(float64(nKeys)*rng.Float64()*rng.Float64()))
			buf.Emit(k, i)
		}
		if err := s.Merge([]*TaskBuffer[string, int]{buf}); err != nil {
			t.Fatal(err)
		}
		p := s.Partition(0)
		ref := rangeRef(t, p)
		target := int64(1 + rng.Intn(nPairs))
		maxRanges := 2 + rng.Intn(7)
		ranges := p.PlanReduceRanges(target, maxRanges)
		if ranges == nil {
			s.Close()
			continue
		}
		planned++
		if len(ranges) > maxRanges {
			t.Fatalf("trial %d: %d ranges, cap %d", trial, len(ranges), maxRanges)
		}
		checkRangeInvariants(t, ranges, ref)
		got := readRanges(t, p, ranges)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: range-split read diverges from whole-partition merge", trial)
		}
		s.Close()
	}
	if planned < 10 {
		t.Fatalf("only %d/30 trials produced a split plan; property barely exercised", planned)
	}
}

// TestRangeSplitCollidingKeys pins the fallback-comparator tie case:
// distinct struct keys whose fmt.Sprint forms collide are one
// order-equivalence class — a split boundary must never land between
// them, they stay two separate ==-membership groups, and the split
// read still reproduces the unsplit merge.
func TestRangeSplitCollidingKeys(t *testing.T) {
	type k2 struct{ A, B string }
	colliders := []k2{{"a b", "c"}, {"a", "b c"}} // both format as "{a b c}"
	s := New[k2, int](Options{Partitions: 2, MaxBufferedPairs: 5, SpillDir: t.TempDir()})
	defer s.Close()
	s.SetPartitioner(func(k2) int { return 0 })
	buf := s.NewTaskBuffer()
	// The colliding class carries most of the load, so a naive planner
	// chasing the target would want to cut inside it.
	for i := 0; i < 120; i++ {
		buf.Emit(colliders[i%2], i)
	}
	for i := 0; i < 30; i++ {
		buf.Emit(k2{"x", fmt.Sprint(i % 5)}, i)
		buf.Emit(k2{"zz", fmt.Sprint(i % 3)}, i)
	}
	if err := s.Merge([]*TaskBuffer[k2, int]{buf}); err != nil {
		t.Fatal(err)
	}
	p := s.Partition(0)
	ref := rangeRef(t, p)
	ranges := p.PlanReduceRanges(20, 8)
	if ranges == nil {
		t.Fatal("no split planned; test exercises nothing")
	}
	checkRangeInvariants(t, ranges, ref)
	// Both colliders must fall in the same range.
	owner := -1
	for i, r := range ranges {
		if r.Contains(colliders[0]) {
			owner = i
		}
	}
	if owner < 0 || !ranges[owner].Contains(colliders[1]) {
		t.Fatalf("colliding keys straddle ranges: %+v owns collider 0, collider 1 elsewhere", owner)
	}
	got := readRanges(t, p, ranges)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("range-split read diverges from whole-partition merge on colliding keys")
	}
	// The colliders surfaced as two distinct groups inside one range.
	seen := 0
	for _, g := range got {
		if g.Key == colliders[0] || g.Key == colliders[1] {
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("colliding class surfaced %d groups, want 2", seen)
	}
}

// TestPlanRangesFromCounts covers the standalone planner and Clamp used
// by proc reduce workers: class-aligned cuts over an aggregated
// (key, count) profile, and index windows that tile the key space.
func TestPlanRangesFromCounts(t *testing.T) {
	keys := []int{0, 1, 2, 3, 4, 5, 6, 7}
	counts := []int64{10, 1, 1, 10, 1, 1, 10, 1}
	ranges := PlanRangesFromCounts(keys, counts, 12, 8)
	if ranges == nil {
		t.Fatal("no plan for a 35-pair profile with target 12")
	}
	var pairs int64
	prevHi := 0
	for i, r := range ranges {
		pairs += r.Pairs
		lo, hi := r.Clamp(keys)
		if lo != prevHi {
			t.Fatalf("range %d window [%d,%d) does not tile from %d", i, lo, hi, prevHi)
		}
		if hi <= lo {
			t.Fatalf("range %d empty window [%d,%d)", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != len(keys) || pairs != 35 {
		t.Fatalf("windows end at %d (want %d), pairs %d (want 35)", prevHi, len(keys), pairs)
	}
	// Disabled and degenerate cases plan nothing.
	if PlanRangesFromCounts(keys, counts, 0, 8) != nil ||
		PlanRangesFromCounts(keys, counts, 12, 1) != nil ||
		PlanRangesFromCounts(keys, counts, 100, 8) != nil ||
		PlanRangesFromCounts[int](nil, nil, 12, 8) != nil {
		t.Fatal("degenerate profiles must not plan a split")
	}
}
