package shuffle

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/errfs"
)

// Fault injection over the whole disk data path: every filesystem
// operation behind the spill, compaction and reduce-merge machinery is
// failed in turn (via internal/errfs threaded through Options.FS), and
// each failure must surface as a wrapped error — errors.Is finds the
// injected cause through every layer — with no panic and no silently
// truncated output. Mapping failures are the exception: mmap is an
// optimization with a pread fallback, so injected mmap/madvise/munmap
// faults must select the fallback and leave the output untouched.

// noMmap forces the positioned-read fallback, making OpReadAt ordinals
// deterministic for the injection cases below.
func noMmap(o *Options) { o.DisableMmap = true }

// spillWorkload merges pairs pairs of key i%keys into a single-partition
// shuffle with the given budget over fs, returning the shuffle and the
// merge error.
func spillWorkload(t *testing.T, fs *errfs.FS, budget, pairs, keys int, mod ...func(*Options)) (*Shuffle[int, int], error) {
	t.Helper()
	opts := Options{
		Partitions: 1, MaxBufferedPairs: budget,
		SpillDir: t.TempDir(), FS: fs,
	}
	for _, m := range mod {
		m(&opts)
	}
	s := New[int, int](opts)
	buf := s.NewTaskBuffer()
	for i := 0; i < pairs; i++ {
		buf.Emit(i%keys, i)
	}
	return s, s.Merge([]*TaskBuffer[int, int]{buf})
}

// groupCounts streams the partition and returns per-key value counts.
func groupCounts(t *testing.T, s *Shuffle[int, int]) map[int]int {
	t.Helper()
	got := map[int]int{}
	if err := s.Partition(0).ForEachGroup(func(k int, vs []int) error {
		got[k] += len(vs)
		return nil
	}); err != nil {
		t.Fatalf("reading partition back: %v", err)
	}
	return got
}

// wantCounts is the expected per-key count of the i%keys workload.
func wantCounts(pairs, keys int) map[int]int {
	want := map[int]int{}
	for i := 0; i < pairs; i++ {
		want[i%keys]++
	}
	return want
}

// TestFaultInjectionSpill fails each operation of the seal-to-disk
// path — create, write, close, and the remove on the cleanup path —
// and requires Merge to surface the injected error wrapped.
func TestFaultInjectionSpill(t *testing.T) {
	cases := []struct {
		name    string
		op      errfs.Op
		nth     int
		wantMsg string
	}{
		{"create-first-run", errfs.OpCreate, 1, "creating spill file"},
		{"create-later-run", errfs.OpCreate, 3, "creating spill file"},
		{"write-flush", errfs.OpWrite, 1, "flushing spill"},
		{"close-after-finish", errfs.OpClose, 1, "closing spill"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := errfs.New(nil)
			fs.FailAt(tc.op, tc.nth, nil)
			s, err := spillWorkload(t, fs, 2, 16, 5)
			defer s.Close()
			if err == nil {
				t.Fatal("Merge succeeded despite injected failure")
			}
			if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("injected cause lost from the chain: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantMsg)
			}
		})
	}

	// A failed spill must not leak its partial run file: the create
	// succeeds, the write fails, and the cleanup path removes the file
	// (observed through the remove counter).
	fs := errfs.New(nil)
	fs.FailAt(errfs.OpWrite, 1, nil)
	s, err := spillWorkload(t, fs, 2, 16, 5)
	defer s.Close()
	if err == nil {
		t.Fatal("Merge succeeded despite injected write failure")
	}
	if got := fs.Calls(errfs.OpRemove); got == 0 {
		t.Error("failed spill left its partial run file in place (no remove issued)")
	}
}

// TestFaultInjectionCompaction drives a partition past maxDiskRunFanIn
// seals so compaction runs mid-merge, then fails each of its
// operations: reopening input runs, the positioned section reads, the
// output create, and the output flush. The pread fallback is forced so
// the read ordinals are deterministic; mapping faults get their own
// fallback test below.
func TestFaultInjectionCompaction(t *testing.T) {
	const pairs = maxDiskRunFanIn // budget 1: one seal per pair, compaction at the last
	// Discovery pass: count the clean run's operations so the write and
	// create injections can target the compaction output (the last of
	// each) without hard-coding buffer-dependent ordinals.
	probe := errfs.New(nil)
	s, err := spillWorkload(t, probe, 1, pairs, 7, noMmap)
	if err != nil {
		t.Fatalf("clean compaction run failed: %v", err)
	}
	s.Close()
	creates, writes, preads := probe.Calls(errfs.OpCreate), probe.Calls(errfs.OpWrite), probe.Calls(errfs.OpReadAt)
	if creates != pairs+1 {
		t.Fatalf("clean run created %d files, want %d spills + 1 compaction output", creates, pairs+1)
	}
	if preads == 0 {
		t.Fatal("clean run issued no positioned reads: compaction did not happen")
	}

	cases := []struct {
		name    string
		op      errfs.Op
		nth     int
		wantMsg string
	}{
		{"open-first-input", errfs.OpOpen, 1, "compacting"},
		{"open-last-input", errfs.OpOpen, pairs, "compacting"},
		{"pread-first-section", errfs.OpReadAt, 1, "reading spill"},
		{"pread-mid-section", errfs.OpReadAt, preads / 2, "reading spill"},
		{"create-output", errfs.OpCreate, creates, "creating compacted run"},
		{"write-output-flush", errfs.OpWrite, writes, "compacted run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := errfs.New(nil)
			fs.FailAt(tc.op, tc.nth, nil)
			s, err := spillWorkload(t, fs, 1, pairs, 7, noMmap)
			defer s.Close()
			if err == nil {
				t.Fatal("Merge succeeded despite injected compaction failure")
			}
			if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("injected cause lost from the chain: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantMsg)
			}
		})
	}
}

// TestFaultInjectionMmapFallback fails the mapping operations — mmap,
// madvise, munmap — during a compacting workload with mapping enabled.
// None of them may fail the round: a mapping fault silently selects
// the pread fallback (munmap faults are absorbed at close), and the
// output must be byte-for-byte the same groups as an unfaulted run.
func TestFaultInjectionMmapFallback(t *testing.T) {
	const pairs, keys = maxDiskRunFanIn, 7
	want := wantCounts(pairs, keys)
	for _, tc := range []struct {
		name string
		op   errfs.Op
	}{
		{"mmap-fails", errfs.OpMmap},
		{"madvise-fails", errfs.OpMadvise},
		{"munmap-fails", errfs.OpMunmap},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := errfs.New(nil)
			fs.FailAt(tc.op, 1, nil)
			s, err := spillWorkload(t, fs, 1, pairs, keys)
			defer s.Close()
			if err != nil {
				t.Fatalf("injected %s fault must engage the fallback, not fail the round: %v", tc.name, err)
			}
			// Some cursors may be mapped and some not (the injection hit
			// one file); the merge must not care.
			got := map[int]int{}
			if rerr := s.Partition(0).ForEachGroup(func(k int, vs []int) error {
				got[k] += len(vs)
				return nil
			}); rerr != nil {
				t.Fatalf("read after %s fault: %v", tc.name, rerr)
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("after %s fault: key %d has %d values, want %d", tc.name, k, got[k], n)
				}
			}
		})
	}
}

// TestFaultInjectionReduceMerge spills cleanly, then fails the
// reduce-time k-way merge's reopens and positioned reads at several
// points. The counting APIs must keep working through armed read
// failures (they are memory-only), the streaming read must surface the
// wrapped error rather than truncate, and clearing the injection must
// yield the full dataset — the files were never corrupted. An injected
// mmap fault, by contrast, must not surface at all.
func TestFaultInjectionReduceMerge(t *testing.T) {
	const budget, pairs, keys = 4, 32, 5
	build := func(fs *errfs.FS, mod ...func(*Options)) *Shuffle[int, int] {
		s, err := spillWorkload(t, fs, budget, pairs, keys, mod...)
		if err != nil {
			t.Fatalf("spill phase: %v", err)
		}
		fs.Reset() // ordinals below are local to the read phase
		return s
	}

	// Discovery: how many opens and section preads does a clean
	// streaming pass issue under the fallback?
	probe := errfs.New(nil)
	s := build(probe, noMmap)
	if err := s.Partition(0).ForEachGroup(func(int, []int) error { return nil }); err != nil {
		t.Fatalf("clean merge: %v", err)
	}
	opens, preads := probe.Calls(errfs.OpOpen), probe.Calls(errfs.OpReadAt)
	if opens < 2 || preads < opens {
		t.Fatalf("clean merge used %d opens / %d preads; expected a multi-run merge", opens, preads)
	}
	s.Close()

	cases := []struct {
		name string
		op   errfs.Op
		nth  int
	}{
		{"open-first-run", errfs.OpOpen, 1},
		{"open-last-run", errfs.OpOpen, opens},
		{"pread-first", errfs.OpReadAt, 1},
		{"pread-mid-stream", errfs.OpReadAt, preads / 2},
		{"pread-last", errfs.OpReadAt, preads},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := errfs.New(nil)
			s := build(fs, noMmap)
			defer s.Close()

			fs.FailAt(tc.op, tc.nth, nil)
			// Counting reads stay memory-only: the armed failure must not
			// fire, and the profile must be complete.
			st, err := s.Stats()
			if err != nil {
				t.Fatalf("Stats with armed %s failure: %v", tc.op, err)
			}
			if st.Pairs != pairs || st.Keys != keys {
				t.Fatalf("Stats = pairs %d keys %d, want %d and %d", st.Pairs, st.Keys, pairs, keys)
			}
			if n := s.Partition(0).NumKeys(); n != keys {
				t.Fatalf("NumKeys = %d, want %d", n, keys)
			}

			// The streaming merge hits the injection and must say so.
			err = s.Partition(0).ForEachGroup(func(int, []int) error { return nil })
			if err == nil {
				t.Fatal("ForEachGroup succeeded despite injected failure")
			}
			if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("injected cause lost from the chain: %v", err)
			}
			if !strings.Contains(err.Error(), "spill") {
				t.Fatalf("err = %v, want a spill-read error", err)
			}

			// And batch mode surfaces it identically.
			fs.FailAt(tc.op, tc.nth, nil)
			if err := s.Partition(0).ForEachGroupBatch(func(int, []int) error { return nil }); !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("batch read: injected cause lost: %v", err)
			}

			// No corruption, no truncation: with the injection cleared the
			// full dataset streams back.
			fs.Reset()
			got := 0
			if err := s.Partition(0).ForEachGroup(func(_ int, vs []int) error {
				got += len(vs)
				return nil
			}); err != nil {
				t.Fatalf("clean re-read after injected failure: %v", err)
			}
			if got != pairs {
				t.Fatalf("re-read streamed %d pairs, want %d (silent truncation)", got, pairs)
			}
		})
	}

	// With mapping enabled, a failed mmap is invisible to the reader:
	// the fallback engages and the stream completes.
	t.Run("mmap-fault-is-invisible", func(t *testing.T) {
		fs := errfs.New(nil)
		s := build(fs)
		defer s.Close()
		fs.FailAt(errfs.OpMmap, 1, nil)
		want := wantCounts(pairs, keys)
		got := groupCounts(t, s)
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("key %d has %d values, want %d", k, got[k], n)
			}
		}
	})
}

// TestFaultInjectionRangeMerge marches the same fault battery through
// the parallel range-merge path: spool opens during OpenRangeReader,
// clamped positioned reads inside concurrent ForEachGroupRange calls,
// and mapping faults (which must stay invisible via the pread
// fallback). Every injected failure must keep ErrInjected reachable
// through the chain, the shared reader must close cleanly with its
// semaphore slot released — proven by reopening and re-reading the full
// dataset — and the concurrent merges must join without leaks (-race).
func TestFaultInjectionRangeMerge(t *testing.T) {
	const budget, pairs, keys = 4, 32, 5
	build := func(fs *errfs.FS, mod ...func(*Options)) *Shuffle[int, int] {
		s, err := spillWorkload(t, fs, budget, pairs, keys, mod...)
		if err != nil {
			t.Fatalf("spill phase: %v", err)
		}
		fs.Reset()
		return s
	}
	plan := func(s *Shuffle[int, int]) []KeyRange[int] {
		ranges := s.Partition(0).PlanReduceRanges(int64(pairs)/3, 4)
		if ranges == nil {
			t.Fatal("workload did not plan a split; the march exercises nothing")
		}
		return ranges
	}
	// readAll runs every range concurrently through one shared reader
	// and returns the first error in range order plus the pairs read.
	readAll := func(rr *RangeReader[int, int], ranges []KeyRange[int]) (int, error) {
		counts := make([]int, len(ranges))
		errs := make([]error, len(ranges))
		var wg sync.WaitGroup
		for i := range ranges {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = rr.ForEachGroupRange(ranges[i], false, func(_ int, vs []int) error {
					counts[i] += len(vs)
					return nil
				})
			}(i)
		}
		wg.Wait()
		total := 0
		for i := range ranges {
			if errs[i] != nil {
				return 0, errs[i]
			}
			total += counts[i]
		}
		return total, nil
	}

	// Discovery: a clean ranged pass under the pread fallback.
	probe := errfs.New(nil)
	s := build(probe, noMmap)
	ranges := plan(s)
	rr, err := s.Partition(0).OpenRangeReader()
	if err != nil {
		t.Fatalf("clean open: %v", err)
	}
	if n, err := readAll(rr, ranges); err != nil || n != pairs {
		t.Fatalf("clean ranged read: %d pairs, err %v; want %d", n, err, pairs)
	}
	rr.Close()
	opens, preads := probe.Calls(errfs.OpOpen), probe.Calls(errfs.OpReadAt)
	if opens < 2 || preads < 2 {
		t.Fatalf("clean ranged pass used %d opens / %d preads; expected a multi-run merge", opens, preads)
	}
	s.Close()

	// Open faults: OpenRangeReader must fail wrapped, release everything
	// it took, and a clean retry on the same partition must succeed.
	for _, tc := range []struct {
		name string
		nth  int
	}{
		{"open-first-spool", 1},
		{"open-last-spool", opens},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := errfs.New(nil)
			s := build(fs, noMmap)
			defer s.Close()
			ranges := plan(s)
			fs.FailAt(errfs.OpOpen, tc.nth, nil)
			if _, err := s.Partition(0).OpenRangeReader(); err == nil {
				t.Fatal("OpenRangeReader succeeded despite injected open failure")
			} else if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("injected cause lost from the chain: %v", err)
			}
			fs.Reset()
			rr, err := s.Partition(0).OpenRangeReader()
			if err != nil {
				t.Fatalf("clean reopen after injected failure: %v", err)
			}
			defer rr.Close()
			if n, err := readAll(rr, ranges); err != nil || n != pairs {
				t.Fatalf("re-read after failed open: %d pairs, err %v; want %d", n, err, pairs)
			}
		})
	}

	// Read faults inside the concurrent merges: the hit range surfaces
	// the wrapped error, Close stays clean, and a fresh reader streams
	// the full dataset — nothing was corrupted or left held.
	for _, tc := range []struct {
		name string
		nth  int
	}{
		{"pread-first", 1},
		{"pread-mid", preads / 2},
		{"pread-last", preads},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := errfs.New(nil)
			s := build(fs, noMmap)
			defer s.Close()
			ranges := plan(s)
			rr, err := s.Partition(0).OpenRangeReader()
			if err != nil {
				t.Fatal(err)
			}
			fs.FailAt(errfs.OpReadAt, tc.nth, nil)
			if _, err := readAll(rr, ranges); err == nil {
				t.Fatal("ranged read succeeded despite injected read failure")
			} else if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("injected cause lost from the chain: %v", err)
			}
			if err := rr.Close(); err != nil {
				t.Fatalf("closing reader after injected failure: %v", err)
			}
			fs.Reset()
			rr2, err := s.Partition(0).OpenRangeReader()
			if err != nil {
				t.Fatalf("reopen after injected failure: %v", err)
			}
			defer rr2.Close()
			if n, err := readAll(rr2, ranges); err != nil || n != pairs {
				t.Fatalf("clean re-read: %d pairs, err %v; want %d (silent truncation)", n, err, pairs)
			}
		})
	}

	// Mapping faults must not surface through the ranged path either:
	// the shared view falls back to positioned reads.
	t.Run("mmap-fault-is-invisible", func(t *testing.T) {
		fs := errfs.New(nil)
		s := build(fs)
		defer s.Close()
		ranges := plan(s)
		fs.FailAt(errfs.OpMmap, 1, nil)
		rr, err := s.Partition(0).OpenRangeReader()
		if err != nil {
			t.Fatalf("mmap fault must engage the fallback, not fail the open: %v", err)
		}
		defer rr.Close()
		if n, err := readAll(rr, ranges); err != nil || n != pairs {
			t.Fatalf("ranged read under mmap fault: %d pairs, err %v; want %d", n, err, pairs)
		}
	})
}
