package shuffle

import "testing"

func TestStableHashDeterministic(t *testing.T) {
	// Two independent hashers must agree (no per-instance or per-process
	// state), and the mapping must be pinned forever: a changed constant
	// or codec layout would silently re-partition cross-process jobs, so
	// the expected values are hard-coded, not computed.
	var a, b StableHasher[string]
	for _, key := range []string{"", "a", "hello", "hello world"} {
		ha, err := a.Hash(key)
		if err != nil {
			t.Fatalf("Hash(%q): %v", key, err)
		}
		hb, err := b.Hash(key)
		if err != nil {
			t.Fatalf("Hash(%q): %v", key, err)
		}
		if ha != hb {
			t.Errorf("hashers disagree on %q: %#x vs %#x", key, ha, hb)
		}
	}
	// FNV-1a over the codec bytes; strings encode as raw bytes, so these
	// are the classic FNV-1a test vectors.
	if h, _ := a.Hash(""); h != 0xcbf29ce484222325 {
		t.Errorf("Hash(\"\") = %#x, want FNV-1a offset basis", h)
	}
	if h, _ := a.Hash("a"); h != 0xaf63dc4c8601ec8c {
		t.Errorf("Hash(\"a\") = %#x, want %#x", h, uint64(0xaf63dc4c8601ec8c))
	}
}

func TestStableHashTypedKeys(t *testing.T) {
	type cell struct{ R, C int }
	var h StableHasher[cell]
	h1, err := h.Hash(cell{2, 3})
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	h2, err := h.Hash(cell{2, 3})
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if h1 != h2 {
		t.Errorf("same struct key hashed differently: %#x vs %#x", h1, h2)
	}
	h3, _ := h.Hash(cell{3, 2})
	if h1 == h3 {
		t.Errorf("distinct keys collided: %#x", h1)
	}
}

func TestStablePartitionRange(t *testing.T) {
	var h StableHasher[int]
	seen := map[int]bool{}
	for k := 0; k < 1000; k++ {
		p, err := h.StablePartition(k, 8)
		if err != nil {
			t.Fatalf("StablePartition: %v", err)
		}
		if p < 0 || p >= 8 {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 8 {
		t.Errorf("1000 keys hit only %d of 8 partitions", len(seen))
	}
}
