// Streaming shuffle ingestion: the pipelined map→shuffle data path.
//
// The barrier-mode path (TaskBuffer + Merge) buffers every map task's
// entire output until the map phase ends, so the memory budget is only
// honored after the barrier and spill I/O never overlaps map CPU. The
// Ingester replaces that with block-based streaming: each map worker
// emits into small per-partition blocks (backed by the shuffle's
// sync.Pool) and flushes a full block immediately to its partition,
// which absorbs it under a per-partition lock — concurrently with
// still-running map tasks — sealing, combining and spilling as the
// budget fills. Sorting, encoding and disk writes therefore overlap
// mapping, and whole-round resident pairs stay bounded by
// P*MemoryBudget + writers*BlockPairs instead of the dataset size.
//
// Two invariants make this safe:
//
// Ordering. The runtime's deterministic output contract requires a
// key's values to appear in (task order, emission order within the
// task). Flushed blocks from concurrent tasks arrive interleaved, so a
// partition does not absorb them on arrival: it stages them per task
// and absorbs staged tasks strictly in task-index order, and only once
// every earlier task has finished (the Ingester's watermark). Within a
// partition, absorption order therefore equals task order, which makes
// seal order equal task order, which is exactly what the read-side
// k-way merge's (key, run order) heap needs to reproduce the contract.
//
// Fencing. A failed task attempt may already have flushed blocks; its
// pairs must never become visible. Staged runs are tagged with (task,
// attempt) and remain invisible to absorption until the attempt
// commits; Abort discards the attempt's staged blocks (and deletes any
// fenced spill files). Because only committed tasks absorb, a retry
// can re-emit from scratch without double counting.
//
// Staged data under memory pressure cannot be absorbed (its task has
// not committed) and cannot be dropped, so an over-budget partition
// relieves itself: first by early-sealing its live run (data a later
// seal would have written anyway), then — only when staged pairs alone
// approach the budget, a lagging or giant task — by "fencing" staged
// runs to disk, newest tasks first: the blocks are grouped, combined
// when a combiner is set, sorted and written as complete runs that
// stay attached to their (task, attempt) tag. On commit the fenced
// runs are adopted into the partition's disk-run list — after
// force-sealing the live run, so run order keeps matching task order,
// with the task's remaining blocks following them to disk so
// consecutive adoptions do not re-seal — and on abort their sections
// are released. All pressure writes append to one per-partition spool
// file with refcounted sections (see spool), so relief costs no file
// churn. This is what keeps resident memory bounded even when one
// giant task lags the watermark.
//
// The division of labor matters as much as the mechanisms: flushing is
// an O(1) staging append, absorption runs on committing workers (and
// the final Finish drain), and a flush only does ingest work itself as
// the over-budget backstop. The worker running the oldest task IS the
// watermark — everything else's staged data waits on it — so the flush
// path must never make that worker wait behind relief I/O.
package shuffle

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runfile"
)

// stagedRun is one task attempt's flushed-but-unabsorbed output for a
// single partition: in-memory blocks in flush order, preceded by any
// fenced spill runs (earlier flushes forced to disk under memory
// pressure), also in flush order.
type stagedRun[K comparable, V any] struct {
	attempt     int
	blocks      [][]Pair[K, V] // flushed blocks not yet absorbed, in flush order
	pairs       int            // in-memory pairs across blocks
	fenced      []diskRun[K]   // pressure-spilled prefixes, in spill order
	fencedPairs int64          // pairs in fenced runs (post-combine)
	fencedBytes int64          // run body bytes of fenced runs
	fencedIdx   int64          // footer-index bytes of fenced runs
}

// Ingester is the streaming ingestion front of a Shuffle: a set of
// per-task TaskWriters feeding per-partition staging, plus the
// watermark that gates absorption to task order. Create one per map
// phase; TaskWriters may be used from concurrent workers (one writer
// per worker at a time), and task indexes must be contiguous from 0 in
// dispatch order for the watermark to advance.
type Ingester[K comparable, V any] struct {
	s *Shuffle[K, V]

	mu   sync.Mutex   // guards done
	done map[int]bool // finished tasks at or above the watermark
	wm   atomic.Int64 // all tasks < wm are committed (or round-fatal)

	errMu sync.Mutex
	err   error

	finishing atomic.Bool  // Finish's drain is running; stop metering overlap
	overlapNs atomic.Int64 // ns of absorb/spill work overlapped with mapping
	finishNs  atomic.Int64 // wall ns of the Finish drain (the residual barrier)
}

// NewIngester starts a streaming ingestion round on the shuffle. It
// must not run concurrently with Merge, reads, or Close.
func (s *Shuffle[K, V]) NewIngester() *Ingester[K, V] {
	s.statsMu.Lock()
	s.statsMemo = nil // the profile is about to change
	s.statsMu.Unlock()
	return &Ingester[K, V]{s: s, done: make(map[int]bool)}
}

// Err returns the first error the ingestion hit (a failed seal, fence
// or compaction), or nil. Once set, further flushes are dropped and
// every Commit returns the error.
func (in *Ingester[K, V]) Err() error {
	in.errMu.Lock()
	defer in.errMu.Unlock()
	return in.err
}

func (in *Ingester[K, V]) fail(err error) {
	in.errMu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.errMu.Unlock()
}

// OverlapNs is the time spent absorbing, sealing and spilling while
// map tasks were still running — work the barrier path would have
// serialized after the map phase. FinishNs is the wall time of the
// Finish drain, the residual barrier.
func (in *Ingester[K, V]) OverlapNs() int64 { return in.overlapNs.Load() }
func (in *Ingester[K, V]) FinishNs() int64  { return in.finishNs.Load() }

// Task starts (or retries) one map task's writer. attempt tags the
// writer's flushes so a failed attempt can be fenced off; the engine
// retries a task serially, so at most one attempt per task is live.
func (in *Ingester[K, V]) Task(task, attempt int) *TaskWriter[K, V] {
	return &TaskWriter[K, V]{
		in: in, task: task, attempt: attempt,
		buckets: make([][]Pair[K, V], in.s.nparts),
	}
}

// TaskWriter buffers one task attempt's emissions into per-partition
// blocks, flushing the fullest block whenever the buffered total
// reaches the shuffle's block budget. Not safe for concurrent use.
type TaskWriter[K comparable, V any] struct {
	in       *Ingester[K, V]
	task     int
	attempt  int
	buckets  [][]Pair[K, V] // open block per partition
	buffered int            // pairs across open blocks, <= blockPairs
	done     bool
}

// Emit buffers one pair, flushing a block when the writer's buffered
// total reaches the block budget — so a writer never holds more than
// BlockPairs pairs, the per-writer term of the resident-memory bound.
func (w *TaskWriter[K, V]) Emit(k K, v V) {
	s := w.in.s
	p := s.PartitionOf(k)
	blk := w.buckets[p]
	if blk == nil {
		blk = s.getBlock()
	}
	w.buckets[p] = append(blk, Pair[K, V]{k, v})
	w.buffered++
	if w.buffered >= s.blockPairs {
		w.flushLargest()
	}
}

// flushLargest flushes the fullest open block, keeping flushed blocks
// chunky (at least buffered/P pairs) without per-partition thresholds
// that a skewed key space would starve.
func (w *TaskWriter[K, V]) flushLargest() {
	best, bestLen := -1, 0
	for p, blk := range w.buckets {
		if len(blk) > bestLen {
			best, bestLen = p, len(blk)
		}
	}
	if best >= 0 {
		w.flush(best)
	}
}

func (w *TaskWriter[K, V]) flush(p int) {
	blk := w.buckets[p]
	w.buckets[p] = nil
	w.buffered -= len(blk)
	w.in.stage(w.task, w.attempt, p, blk)
}

// Commit flushes the writer's remaining blocks, marks the task
// finished (advancing the watermark when it is the next expected
// task), and opportunistically drains newly absorbable partitions on
// the committing worker — map-phase CPU doing shuffle work. It returns
// the ingestion's first error, which is fatal for the round (the
// task's data may be partially absorbed; it must not be retried).
func (w *TaskWriter[K, V]) Commit() error {
	if w.done {
		return w.in.Err()
	}
	w.done = true
	for p, blk := range w.buckets {
		if len(blk) > 0 {
			w.flush(p)
		} else if blk != nil {
			w.in.s.putBlock(blk)
			w.buckets[p] = nil
		}
	}
	w.in.finishTask(w.task)
	w.in.drainAll()
	return w.in.Err()
}

// Abort discards the attempt: unflushed blocks return to the pool, and
// the attempt's staged blocks and fenced spill files are removed from
// every partition. The task may then be retried under a new attempt;
// none of the aborted attempt's pairs are visible anywhere.
func (w *TaskWriter[K, V]) Abort() {
	if w.done {
		return
	}
	w.done = true
	s := w.in.s
	for p, blk := range w.buckets {
		if blk != nil {
			s.putBlock(blk)
			w.buckets[p] = nil
		}
	}
	w.in.discard(w.task, w.attempt)
}

// stage appends a flushed block to its partition's staged run for the
// task — an O(1) append under the partition's tiny staging lock, so
// flushing never waits behind an absorb or a disk spill. A flush never
// makes anything newly absorbable (only commits advance the
// watermark), so the ingest step runs here only as backpressure: when
// the exchange is over its global budget, the flush blocks until it
// has relieved pressure itself, which is what makes the resident bound
// hold.
func (in *Ingester[K, V]) stage(task, attempt, p int, blk []Pair[K, V]) {
	s := in.s
	if len(blk) == 0 || in.Err() != nil {
		s.putBlock(blk)
		return
	}
	// Staging is an O(1) append under the tiny staging lock: the flush
	// path must never wait behind another worker's absorb or spill,
	// because the worker running the *oldest* task is the watermark —
	// every other task's staged data waits on its commit, and a
	// watermark worker stuck behind relief I/O turns commit pileup into
	// fence pressure into more relief I/O (the storm this design had to
	// engineer out). Absorption is driven by committers (drainAll) and
	// Finish; a flush only stops to run the ingest step itself when its
	// partition is over budget — the hard backstop that keeps the
	// resident bound true, checked against the lock-free live mirror.
	st := &s.parts[p]
	st.stageMu.Lock()
	sr := st.staged[task]
	if sr == nil {
		if st.staged == nil {
			st.staged = make(map[int]*stagedRun[K, V])
		}
		sr = &stagedRun[K, V]{attempt: attempt}
		st.staged[task] = sr
	}
	sr.blocks = append(sr.blocks, blk)
	sr.pairs += len(blk)
	staged := st.stagedPairs + len(blk)
	st.stagedPairs = staged
	st.stageMu.Unlock()
	s.addResident(len(blk))
	st.lane.Instant(obs.OpBlockFlush, int64(task), int64(len(blk)))

	budget := s.opts.MaxBufferedPairs
	if budget > 0 && s.opts.SpillDir != "" && int(st.liveApprox.Load())+staged >= budget {
		st.mu.Lock()
		err := in.ingestStep(st, true)
		st.mu.Unlock()
		if err != nil {
			in.fail(err)
		}
	}
}

// finishTask marks the task committed and advances the watermark over
// every contiguously finished task.
func (in *Ingester[K, V]) finishTask(task int) {
	in.mu.Lock()
	in.done[task] = true
	wm := int(in.wm.Load())
	for in.done[wm] {
		delete(in.done, wm)
		wm++
	}
	in.wm.Store(int64(wm))
	in.mu.Unlock()
}

// discard removes an aborted attempt's staged state from every
// partition: blocks back to the pool, fenced spill files deleted. It
// takes the work lock before the staging lock so it cannot interleave
// with a fence that has the attempt's blocks mid-write.
func (in *Ingester[K, V]) discard(task, attempt int) {
	s := in.s
	for p := range s.parts {
		st := &s.parts[p]
		st.mu.Lock()
		st.stageMu.Lock()
		if sr := st.staged[task]; sr != nil && sr.attempt == attempt {
			st.lane.Instant(obs.OpFenceAbort, int64(task), int64(attempt))
			for _, blk := range sr.blocks {
				s.putBlock(blk)
			}
			s.addResident(-sr.pairs)
			st.stagedPairs -= sr.pairs
			for _, dr := range sr.fenced {
				dr.file.release(s.fs)
			}
			delete(st.staged, task)
		}
		st.stageMu.Unlock()
		st.mu.Unlock()
	}
}

// drainAll runs the ingest step over every partition that has staged
// data the watermark now allows (or that is fence-eligible under
// pressure). Committers are the streaming path's absorption engine:
// every commit sweeps the partitions, so staged data drains within one
// commit interval of becoming absorbable while the flush path stays
// O(1). The quick stageMu peek keeps the pass cheap for partitions
// with nothing to do.
func (in *Ingester[K, V]) drainAll() {
	// Pressure only marks a partition non-idle when fencing could
	// actually relieve it — with no SpillDir the sweep would lock and
	// scan over-budget partitions forever to do nothing.
	budget := in.s.opts.MaxBufferedPairs
	canFence := budget > 0 && in.s.opts.SpillDir != ""
	for p := range in.s.parts {
		st := &in.s.parts[p]
		wm := int(in.wm.Load())
		st.stageMu.Lock()
		idle := st.minStagedBelow(wm) < 0 && !(canFence && st.stagedPairs >= budget)
		st.stageMu.Unlock()
		if idle {
			continue
		}
		st.mu.Lock()
		err := in.ingestStep(st, true)
		st.mu.Unlock()
		if err != nil {
			in.fail(err)
		}
	}
}

// ingestStep, with the partition lock held, absorbs every staged task
// the watermark allows (in task order) and then — when allowFence is
// set — fences this partition's staged runs while the shuffle as a
// whole is over its memory budget. The pressure signal is global — total resident pairs
// against P*MemoryBudget — not per-partition: live runs cycle between
// zero and the budget as they seal, so on average roughly half the
// global budget is free headroom that staged blocks can borrow,
// keeping fences (and the small run files they write) an overflow
// valve rather than the steady state. Each flush that lands over the
// threshold fences its own partition's staged data, so every staged
// pair is clamped by its partition's next flush or drain; transient
// overshoot is at most one in-flight block per writer, which is
// exactly the workers*BlockPairs term of the resident bound.
func (in *Ingester[K, V]) ingestStep(st *partitionState[K, V], allowFence bool) error {
	var started bool
	var start time.Time
	begin := func() {
		if !started {
			started, start = true, time.Now()
		}
	}
	if st.pspool == nil {
		st.pspool = &spool[K, V]{s: in.s}
	}
	sp := st.pspool
	defer func() {
		if started && !in.finishing.Load() {
			in.overlapNs.Add(time.Since(start).Nanoseconds())
		}
	}()

	// Absorb every staged run the watermark allows, in task order. The
	// staging area is re-read each iteration (watermark included), so a
	// long drain picks up tasks committed while it ran.
	for {
		wm := int(in.wm.Load())
		st.stageMu.Lock()
		task := st.minStagedBelow(wm)
		var sr *stagedRun[K, V]
		if task >= 0 {
			sr = st.staged[task]
			delete(st.staged, task)
			st.stagedPairs -= sr.pairs
		}
		st.stageMu.Unlock()
		if sr == nil {
			break
		}
		begin()
		if err := in.absorbStaged(st, sr, sp); err != nil {
			return err
		}
	}

	// Pressure relief, per partition and cheapest lever first. The
	// criterion is local — this partition's live+staged pairs against
	// its own budget — so every partition acts on its own signal (a
	// global measure would push partitions to fence staged data while
	// the real excess sat in someone else's live run). Early-sealing
	// the live run writes only data a later seal would have written
	// anyway (and lands in the spool, so it costs no file churn), but
	// only when it carries real weight — sealing a few-pair live over
	// and over would shred the partition into hundreds of dust runs.
	// Fencing then brings live+staged down to half the budget
	// (hysteresis: relief events are half as frequent and twice as
	// chunky as a fence-to-budget would be), newest tasks first — the
	// oldest staged runs are the next to absorb, and fencing data
	// moments before it becomes absorbable is the one pure waste in
	// this design. Summed over partitions this caps resident pairs at
	// P*budget plus the workers' in-flight blocks: the advertised
	// whole-round bound.
	// The arithmetic that closes the resident bound: after relief,
	// live <= dust (anything bigger was sealed) and staged < budget -
	// dust (anything bigger was fenced), so live+staged < budget per
	// partition, and the whole exchange stays under P*budget plus the
	// workers' in-flight blocks. Between those two thresholds nothing
	// is written at all — ordinary in-flight staging rides through on
	// the budget's own headroom.
	budget := in.s.opts.MaxBufferedPairs
	dust := budget / 8
	if allowFence && budget > 0 && in.s.opts.SpillDir != "" {
		if st.livePairs+st.stagedTotal() >= budget {
			begin()
			if st.livePairs > dust {
				if err := st.seal(in.s, true); err != nil {
					return err
				}
			}
			if st.stagedTotal() >= budget-dust {
				if err := in.fenceStaged(st, sp, budget); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// stagedTotal reports the partition's staged in-memory pairs.
func (st *partitionState[K, V]) stagedTotal() int {
	st.stageMu.Lock()
	defer st.stageMu.Unlock()
	return st.stagedPairs
}

// minStagedBelow returns the smallest staged task index under the
// watermark, or -1. Staged tasks under the watermark are committed:
// aborted attempts were discarded, and the watermark only passes
// finished tasks. Caller holds stageMu.
func (st *partitionState[K, V]) minStagedBelow(wm int) int {
	best := -1
	for t := range st.staged {
		if t < wm && (best < 0 || t < best) {
			best = t
		}
	}
	return best
}

// absorbStaged folds one committed task's staged run (already detached
// from the staging area) into the partition. A run without fenced data
// absorbs into the live map through the regular seal-at-budget path. A
// run that was fenced under pressure goes entirely to disk: the live
// run force-seals once (everything in it precedes the task in task
// order, and run order is value order), the fenced runs adopt, and the
// task's remaining in-memory blocks are written as one more run into
// the step's spool rather than re-entering live — so a storm of
// consecutive fenced-task adoptions finds live already empty and the
// force-seal does not cascade into a file per task.
func (in *Ingester[K, V]) absorbStaged(st *partitionState[K, V], sr *stagedRun[K, V], sp *spool[K, V]) error {
	s := in.s
	if len(sr.fenced) == 0 {
		for _, blk := range sr.blocks {
			err := st.absorb(s, blk)
			s.putBlock(blk)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if st.livePairs > 0 {
		if err := st.seal(s, true); err != nil {
			return err
		}
	}
	st.disk = append(st.disk, sr.fenced...)
	st.spilledToDisk = true
	st.pairs += sr.fencedPairs
	st.spillEvents += int64(len(sr.fenced))
	st.spilledPairs += sr.fencedPairs
	st.bytesSpilled += sr.fencedBytes
	st.indexBytes += sr.fencedIdx
	if len(sr.blocks) > 0 {
		dr, body, idx, err := sp.addRun(sr.blocks, sr.pairs)
		if err != nil {
			return err
		}
		st.disk = append(st.disk, dr)
		st.pairs += dr.pairs
		st.spillEvents++
		st.spilledPairs += dr.pairs
		st.bytesSpilled += body
		st.indexBytes += idx
	}
	if needsCompaction(st.disk) {
		s.diskSem <- struct{}{}
		err := st.compactDiskRuns(s)
		<-s.diskSem
		if err != nil {
			return err
		}
	}
	return nil
}

// spool accumulates complete, independently readable runs in one temp
// file: a partition's pressure writes — early seals, fences, fenced
// tasks' remainders — share a single file for the whole round, so
// relief costs no file churn no matter how many small runs it writes,
// and the refcounted runFile keeps each embedded run independently
// releasable (Abort drops only its own sections, compaction its
// inputs). The open writer holds one reference of its own, released by
// close, so a file whose every run was compacted away survives for
// further appends and disappears only after the writer lets go.
type spool[K comparable, V any] struct {
	s      *Shuffle[K, V]
	f      runfile.File
	rf     *runFile
	off    int64
	n      int
	broken bool // a failed append left bytes of unknown length; stop appending
}

// addRun groups one detached block list by key, combines it when the
// shuffle has a combiner (the blocks are a contiguous slice of each
// key's value sequence, which the combiner contract covers), sorts it,
// and appends it to the spool as a complete run. Blocks return to the
// pool and the pairs leave the resident count. body and idx are the
// run's data and footer byte sizes.
func (sp *spool[K, V]) addRun(blocks [][]Pair[K, V], nPairs int) (dr diskRun[K], body, idx int64, retErr error) {
	s := sp.s
	if s.spillTypeErr != nil {
		return dr, 0, 0, fmt.Errorf("shuffle: cannot spill: %w", s.spillTypeErr)
	}
	groups := make(map[K][]V, len(blocks[0]))
	for _, blk := range blocks {
		for i := range blk {
			groups[blk[i].Key] = append(groups[blk[i].Key], blk[i].Value)
		}
	}
	pairs := int64(nPairs)
	if s.combiner != nil {
		pairs = 0
		for k, vs := range groups {
			cv := s.combiner(k, vs)
			if len(cv) == 0 {
				delete(groups, k)
				continue
			}
			groups[k] = cv
			pairs += int64(len(cv))
		}
	}
	dr, body, idx, retErr = sp.addRunGroups(sortedMapKeys(groups), groups, pairs)
	if retErr != nil {
		return dr, 0, 0, retErr
	}
	for _, blk := range blocks {
		s.putBlock(blk)
	}
	s.addResident(-nPairs)
	return dr, body, idx, nil
}

// addRunGroups appends one already-grouped, already-combined run to
// the spool, keys in sorted order.
func (sp *spool[K, V]) addRunGroups(keys []K, groups map[K][]V, pairs int64) (dr diskRun[K], body, idx int64, retErr error) {
	s := sp.s
	if sp.broken {
		return dr, 0, 0, fmt.Errorf("shuffle: fence spool %s unusable after earlier write failure", sp.rf.path)
	}
	if sp.f == nil {
		f, err := s.fs.CreateTemp(s.opts.SpillDir, "mr-spool-*.run")
		if err != nil {
			return dr, 0, 0, fmt.Errorf("shuffle: creating fence spool: %w", err)
		}
		sp.f, sp.rf = f, &runFile{path: f.Name()}
		sp.rf.refs.Store(1) // the open writer's own hold, released by close
	}
	w := runfile.NewWriter(sp.f)
	if err := writeGroups(w, sp.f.Name(), keys, groups); err != nil {
		sp.broken = true
		return dr, 0, 0, err
	}
	if err := w.Finish(); err != nil {
		sp.broken = true
		return dr, 0, 0, fmt.Errorf("shuffle: flushing fence spool %s: %w", sp.f.Name(), err)
	}
	dr = diskRun[K]{
		file: sp.rf, off: sp.off, size: w.BytesWritten(), pairs: pairs,
		index: typedIndex(keys, w.Index()),
	}
	sp.off += w.BytesWritten()
	sp.n++
	// Reference the run immediately: a compaction in the same step may
	// release it long before the spool closes.
	sp.rf.refs.Add(1)
	return dr, w.BodyBytes(), w.BytesWritten() - w.BodyBytes(), nil
}

// close releases the writer's hold on the spool file (removing it when
// no recorded run survives) and closes the handle. Both the close and
// the removal can fail and both are reported — a leaked spill file is
// as real a failure as a leaked run file — except on a spool already
// marked broken, whose append failure surfaced first.
func (sp *spool[K, V]) close() error {
	if sp.f == nil {
		return nil
	}
	closeErr := sp.f.Close()
	releaseErr := sp.rf.release(sp.s.fs)
	sp.f = nil
	if sp.broken {
		return nil
	}
	if closeErr != nil && sp.n > 0 {
		return fmt.Errorf("shuffle: closing fence spool %s: %w", sp.rf.path, closeErr)
	}
	if releaseErr != nil {
		return fmt.Errorf("shuffle: removing fence spool %s: %w", sp.rf.path, releaseErr)
	}
	return nil
}

// fenceStaged spills staged runs into the partition's spool under
// memory pressure, detaching them newest-task-first, until the
// partition's live+staged pairs drop to half its budget. The runs join
// the partition only when their task commits; Abort releases them.
func (in *Ingester[K, V]) fenceStaged(st *partitionState[K, V], sp *spool[K, V], budget int) (err error) {
	var fenced int64
	spanOpen := false
	defer func() {
		if spanOpen {
			st.lane.End(obs.OpFence, fenced, errFlag(err))
		}
	}()
	for {
		st.stageMu.Lock()
		var sr *stagedRun[K, V]
		newest, pairs := -1, 0
		if st.livePairs+st.stagedPairs > budget/2 {
			for t, c := range st.staged {
				if c.pairs > 0 && t > newest {
					sr, newest, pairs = c, t, c.pairs
				}
			}
		}
		var blocks [][]Pair[K, V]
		if sr != nil {
			blocks = sr.blocks
			sr.blocks, sr.pairs = nil, 0
			st.stagedPairs -= pairs
		}
		st.stageMu.Unlock()
		if sr == nil {
			return nil
		}
		if !spanOpen {
			// Opened lazily: fenceStaged often finds relief already done.
			spanOpen = true
			st.lane.Begin(obs.OpFence, 0, 0)
		}
		dr, body, idx, err := sp.addRun(blocks, pairs)
		if err != nil {
			return err
		}
		fenced += dr.pairs
		st.stageMu.Lock()
		sr.fenced = append(sr.fenced, dr)
		sr.fencedPairs += dr.pairs
		sr.fencedBytes += body
		sr.fencedIdx += idx
		st.stageMu.Unlock()
	}
}

// Finish drains every partition to completion — the residual barrier,
// run in parallel across partitions — and returns the ingestion's
// first error. After Finish (with all tasks committed) every pair is
// absorbed or adopted and the shuffle is ready for Stats and reads.
func (in *Ingester[K, V]) Finish() error {
	start := time.Now()
	in.finishing.Store(true)
	s := in.s
	workers := runtime.GOMAXPROCS(0)
	if workers > s.nparts {
		workers = s.nparts
	}
	var wg sync.WaitGroup
	pCh := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range pCh {
				st := &s.parts[p]
				st.mu.Lock()
				err := in.ingestStep(st, true)
				if st.pspool != nil {
					// The round's ingest writes are done; release the
					// pressure spool's write handle (removing the file if
					// nothing references it).
					if cerr := st.pspool.close(); cerr != nil && err == nil {
						err = cerr
					}
					st.pspool = nil
				}
				st.mu.Unlock()
				if err != nil {
					in.fail(err)
				}
			}
		}()
	}
	for p := 0; p < s.nparts; p++ {
		pCh <- p
	}
	close(pCh)
	wg.Wait()
	in.finishNs.Add(time.Since(start).Nanoseconds())
	return in.Err()
}
