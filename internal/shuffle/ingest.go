// Streaming shuffle ingestion: the pipelined map→shuffle data path.
//
// The barrier-mode path (TaskBuffer + Merge) buffers every map task's
// entire output until the map phase ends, so the memory budget is only
// honored after the barrier and spill I/O never overlaps map CPU. The
// Ingester replaces that with block-based streaming: each map worker
// emits into small per-partition blocks (backed by the shuffle's
// sync.Pool) and flushes a full block immediately to its partition,
// which absorbs it under a per-partition lock — concurrently with
// still-running map tasks — sealing, combining and spilling as the
// budget fills. Sorting, encoding and disk writes therefore overlap
// mapping, and whole-round resident pairs stay bounded by
// P*MemoryBudget + writers*BlockPairs instead of the dataset size.
//
// Two invariants make this safe:
//
// Ordering. The runtime's deterministic output contract requires a
// key's values to appear in (task order, emission order within the
// task). Flushed blocks from concurrent tasks arrive interleaved, so a
// partition does not absorb them on arrival: it stages them per task
// and absorbs staged tasks strictly in task-index order, and only once
// every earlier task has finished (the Ingester's watermark). Within a
// partition, absorption order therefore equals task order, which makes
// seal order equal task order, which is exactly what the read-side
// k-way merge's (key, run order) heap needs to reproduce the contract.
//
// Fencing. A failed task attempt may already have flushed blocks; its
// pairs must never become visible. Staged runs are tagged with (task,
// attempt) and remain invisible to absorption until the attempt
// commits; Abort discards the attempt's staged blocks (and releases
// any pressure-swapped sections). Because only committed tasks absorb,
// a retry can re-emit from scratch without double counting.
//
// Staged data under memory pressure cannot be absorbed (its task has
// not committed) and cannot be dropped, so an over-budget partition
// relieves itself by *swapping*: the staged blocks are encoded
// verbatim — unsorted, uncombined, ungrouped — as one raw section of a
// per-partition stash file, newest tasks first, and read back in
// block-sized chunks at the moment their task's turn to absorb comes.
// The swapped bytes are pure bookkeeping: they never become shuffle
// output, so the partition's seal points — and therefore BytesSpilled,
// SpillEvents and every other spill statistic — remain a pure function
// of the committed pair stream, independent of flush timing, recorder
// overhead, or scheduling. (The previous design relieved pressure by
// early-sealing the live run and writing staged data as combined
// *runs*, which made spilled bytes timing-sensitive: two identical
// rounds could legitimately report different BytesSpilled depending on
// when relief fired. The bench now pins the invariant that they
// cannot.)
//
// All relief writes append to per-partition spool files with
// refcounted sections (see spool): seals share one spool file per
// partition, swaps share a stash file, so relief costs no file churn
// no matter how many sections it writes, and rotation retires a spool
// whose sections have mostly died (absorbed, aborted or compacted
// away) so long rounds reclaim disk mid-round.
//
// The division of labor matters as much as the mechanisms: flushing is
// an O(1) staging append, absorption runs on committing workers (and
// the final Finish drain), and a flush only does ingest work itself as
// the over-budget backstop. The worker running the oldest task IS the
// watermark — everything else's staged data waits on it — so the flush
// path must never make that worker wait behind relief I/O.
package shuffle

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runfile"
)

// swapSec is one pressure-swapped section of a stash file: a staged
// task's blocks encoded verbatim at [off, off+size) of the refcounted
// file, holding pairs raw (pre-combine) pairs. The section is released
// — and its bytes counted toward the stash's rotation trigger — when
// the task absorbs or aborts.
type swapSec struct {
	rf    *runFile
	off   int64
	size  int64
	pairs int
}

// stagedRun is one task attempt's flushed-but-unabsorbed output for a
// single partition: pressure-swapped sections first (earlier flushes
// shed to the stash), then in-memory blocks, both in flush order.
type stagedRun[K comparable, V any] struct {
	attempt int
	blocks  [][]Pair[K, V] // flushed blocks not yet absorbed, in flush order
	pairs   int            // in-memory pairs across blocks
	swapped []swapSec      // pressure-swapped earlier flushes, in swap order
}

// Ingester is the streaming ingestion front of a Shuffle: a set of
// per-task TaskWriters feeding per-partition staging, plus the
// watermark that gates absorption to task order. Create one per map
// phase; TaskWriters may be used from concurrent workers (one writer
// per worker at a time), and task indexes must be contiguous from 0 in
// dispatch order for the watermark to advance.
type Ingester[K comparable, V any] struct {
	s *Shuffle[K, V]

	mu   sync.Mutex   // guards done
	done map[int]bool // finished tasks at or above the watermark
	wm   atomic.Int64 // all tasks < wm are committed (or round-fatal)

	errMu sync.Mutex
	err   error

	finishing atomic.Bool  // Finish's drain is running; stop metering overlap
	overlapNs atomic.Int64 // ns of absorb/spill work overlapped with mapping
	finishNs  atomic.Int64 // wall ns of the Finish drain (the residual barrier)
}

// NewIngester starts a streaming ingestion round on the shuffle. It
// must not run concurrently with Merge, reads, or Close.
func (s *Shuffle[K, V]) NewIngester() *Ingester[K, V] {
	s.invalidateStats() // the profile is about to change
	return &Ingester[K, V]{s: s, done: make(map[int]bool)}
}

// Err returns the first error the ingestion hit (a failed seal, swap
// or compaction), or nil. Once set, further flushes are dropped and
// every Commit returns the error.
func (in *Ingester[K, V]) Err() error {
	in.errMu.Lock()
	defer in.errMu.Unlock()
	return in.err
}

func (in *Ingester[K, V]) fail(err error) {
	in.errMu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.errMu.Unlock()
}

// OverlapNs is the time spent absorbing, sealing and spilling while
// map tasks were still running — work the barrier path would have
// serialized after the map phase. FinishNs is the wall time of the
// Finish drain, the residual barrier.
func (in *Ingester[K, V]) OverlapNs() int64 { return in.overlapNs.Load() }
func (in *Ingester[K, V]) FinishNs() int64  { return in.finishNs.Load() }

// Task starts (or retries) one map task's writer. attempt tags the
// writer's flushes so a failed attempt can be fenced off; the engine
// retries a task serially, so at most one attempt per task is live.
func (in *Ingester[K, V]) Task(task, attempt int) *TaskWriter[K, V] {
	return &TaskWriter[K, V]{
		in: in, task: task, attempt: attempt,
		buckets: make([][]Pair[K, V], in.s.nparts),
	}
}

// TaskWriter buffers one task attempt's emissions into per-partition
// blocks, flushing the fullest block whenever the buffered total
// reaches the shuffle's block budget. Not safe for concurrent use.
type TaskWriter[K comparable, V any] struct {
	in       *Ingester[K, V]
	task     int
	attempt  int
	buckets  [][]Pair[K, V] // open block per partition
	buffered int            // pairs across open blocks, <= blockPairs
	done     bool
}

// Emit buffers one pair, flushing a block when the writer's buffered
// total reaches the block budget — so a writer never holds more than
// BlockPairs pairs, the per-writer term of the resident-memory bound.
func (w *TaskWriter[K, V]) Emit(k K, v V) {
	s := w.in.s
	p := s.PartitionOf(k)
	blk := w.buckets[p]
	if blk == nil {
		blk = s.getBlock()
	}
	w.buckets[p] = append(blk, Pair[K, V]{k, v})
	w.buffered++
	if w.buffered >= s.blockPairs {
		w.flushLargest()
	}
}

// flushLargest flushes the fullest open block, keeping flushed blocks
// chunky (at least buffered/P pairs) without per-partition thresholds
// that a skewed key space would starve.
func (w *TaskWriter[K, V]) flushLargest() {
	best, bestLen := -1, 0
	for p, blk := range w.buckets {
		if len(blk) > bestLen {
			best, bestLen = p, len(blk)
		}
	}
	if best >= 0 {
		w.flush(best)
	}
}

func (w *TaskWriter[K, V]) flush(p int) {
	blk := w.buckets[p]
	w.buckets[p] = nil
	w.buffered -= len(blk)
	w.in.stage(w.task, w.attempt, p, blk)
}

// Commit flushes the writer's remaining blocks, marks the task
// finished (advancing the watermark when it is the next expected
// task), and opportunistically drains newly absorbable partitions on
// the committing worker — map-phase CPU doing shuffle work. It returns
// the ingestion's first error, which is fatal for the round (the
// task's data may be partially absorbed; it must not be retried).
func (w *TaskWriter[K, V]) Commit() error {
	if w.done {
		return w.in.Err()
	}
	w.done = true
	for p, blk := range w.buckets {
		if len(blk) > 0 {
			w.flush(p)
		} else if blk != nil {
			w.in.s.putBlock(blk)
			w.buckets[p] = nil
		}
	}
	w.in.finishTask(w.task)
	w.in.drainAll()
	return w.in.Err()
}

// Abort discards the attempt: unflushed blocks return to the pool, and
// the attempt's staged blocks and swapped stash sections are removed
// from every partition. The task may then be retried under a new
// attempt; none of the aborted attempt's pairs are visible anywhere.
func (w *TaskWriter[K, V]) Abort() {
	if w.done {
		return
	}
	w.done = true
	s := w.in.s
	for p, blk := range w.buckets {
		if blk != nil {
			s.putBlock(blk)
			w.buckets[p] = nil
		}
	}
	w.in.discard(w.task, w.attempt)
}

// stage appends a flushed block to its partition's staged run for the
// task — an O(1) append under the partition's tiny staging lock, so
// flushing never waits behind an absorb or a disk spill. A flush never
// makes anything newly absorbable (only commits advance the
// watermark), so the ingest step runs here only as backpressure: when
// the exchange is over its global budget, the flush blocks until it
// has relieved pressure itself, which is what makes the resident bound
// hold.
func (in *Ingester[K, V]) stage(task, attempt, p int, blk []Pair[K, V]) {
	s := in.s
	if len(blk) == 0 || in.Err() != nil {
		s.putBlock(blk)
		return
	}
	// Staging is an O(1) append under the tiny staging lock: the flush
	// path must never wait behind another worker's absorb or spill,
	// because the worker running the *oldest* task is the watermark —
	// every other task's staged data waits on its commit, and a
	// watermark worker stuck behind relief I/O turns commit pileup into
	// swap pressure into more relief I/O (the storm this design had to
	// engineer out). Absorption is driven by committers (drainAll) and
	// Finish; a flush only stops to run the ingest step itself when its
	// partition is over budget — the hard backstop that keeps the
	// resident bound true, checked against the lock-free live mirror.
	st := &s.parts[p]
	st.stageMu.Lock()
	sr := st.staged[task]
	if sr == nil {
		if st.staged == nil {
			st.staged = make(map[int]*stagedRun[K, V])
		}
		sr = &stagedRun[K, V]{attempt: attempt}
		st.staged[task] = sr
	}
	sr.blocks = append(sr.blocks, blk)
	sr.pairs += len(blk)
	staged := st.stagedPairs + len(blk)
	st.stagedPairs = staged
	st.stageMu.Unlock()
	s.addResident(len(blk))
	st.lane.Instant(obs.OpBlockFlush, int64(task), int64(len(blk)))

	budget := s.opts.MaxBufferedPairs
	if budget > 0 && s.opts.SpillDir != "" && int(st.liveApprox.Load())+staged >= budget {
		st.mu.Lock()
		err := in.ingestStep(st, true)
		st.mu.Unlock()
		if err != nil {
			in.fail(err)
		}
	}
}

// finishTask marks the task committed and advances the watermark over
// every contiguously finished task.
func (in *Ingester[K, V]) finishTask(task int) {
	in.mu.Lock()
	in.done[task] = true
	wm := int(in.wm.Load())
	for in.done[wm] {
		delete(in.done, wm)
		wm++
	}
	in.wm.Store(int64(wm))
	in.mu.Unlock()
}

// discard removes an aborted attempt's staged state from every
// partition: blocks back to the pool, swapped stash sections released.
// It takes the work lock before the staging lock so it cannot
// interleave with a swap that has the attempt's blocks mid-write.
func (in *Ingester[K, V]) discard(task, attempt int) {
	s := in.s
	for p := range s.parts {
		st := &s.parts[p]
		st.mu.Lock()
		st.stageMu.Lock()
		if sr := st.staged[task]; sr != nil && sr.attempt == attempt {
			st.lane.Instant(obs.OpFenceAbort, int64(task), int64(attempt))
			for _, blk := range sr.blocks {
				s.putBlock(blk)
			}
			s.addResident(-sr.pairs)
			st.stagedPairs -= sr.pairs
			for _, sec := range sr.swapped {
				// The section's bytes are dead: count them toward the
				// stash's rotation trigger and drop the file when this
				// was the last holder. A removal failure cannot be
				// reported from Abort; the path is retried at close.
				sec.rf.dead.Add(sec.size)
				sec.rf.release(s.fs, &s.bytesReclaimed)
			}
			delete(st.staged, task)
			s.invalidateStats()
		}
		st.stageMu.Unlock()
		st.mu.Unlock()
	}
}

// drainAll runs the ingest step over every partition that has staged
// data the watermark now allows (or that is swap-eligible under
// pressure). Committers are the streaming path's absorption engine:
// every commit sweeps the partitions, so staged data drains within one
// commit interval of becoming absorbable while the flush path stays
// O(1). The quick stageMu peek keeps the pass cheap for partitions
// with nothing to do.
func (in *Ingester[K, V]) drainAll() {
	// Pressure only marks a partition non-idle when swapping could
	// actually relieve it — with no SpillDir the sweep would lock and
	// scan over-budget partitions forever to do nothing.
	budget := in.s.opts.MaxBufferedPairs
	canSwap := budget > 0 && in.s.opts.SpillDir != ""
	for p := range in.s.parts {
		st := &in.s.parts[p]
		wm := int(in.wm.Load())
		st.stageMu.Lock()
		idle := st.minStagedBelow(wm) < 0 && !(canSwap && st.stagedPairs >= budget)
		st.stageMu.Unlock()
		if idle {
			continue
		}
		st.mu.Lock()
		err := in.ingestStep(st, true)
		st.mu.Unlock()
		if err != nil {
			in.fail(err)
		}
	}
}

// ingestStep, with the partition lock held, absorbs every staged task
// the watermark allows (in task order) and then — when allowSwap is
// set — swaps this partition's staged blocks to the stash while the
// partition is over its memory budget. The live run is never sealed
// early and staged data is never written as shuffle runs: relief moves
// raw bytes only, so where the seal points fall — and with them every
// spill statistic — depends only on the committed pair stream, never
// on when pressure happened to fire. Each flush that lands over the
// threshold swaps its own partition's staged data, so every staged
// pair is clamped by its partition's next flush or drain; transient
// overshoot is at most one in-flight block per writer, which is
// exactly the workers*BlockPairs term of the resident bound.
func (in *Ingester[K, V]) ingestStep(st *partitionState[K, V], allowSwap bool) error {
	var started bool
	var start time.Time
	begin := func() {
		if !started {
			started, start = true, time.Now()
			// The step is about to change the partition's profile
			// (absorbs move pairs, swaps move residency); a Stats memo
			// taken mid-round must not survive it.
			in.s.invalidateStats()
		}
	}
	if st.pspool == nil && in.s.sealSink == nil {
		// A seal sink owns sealed-run storage; only sink-less streaming
		// spools seals itself. (Pressure swaps still use the stash.)
		st.pspool = &spool[K, V]{s: in.s, pattern: "mr-spool-*.run", kind: "seal spool"}
	}
	defer func() {
		if started && !in.finishing.Load() {
			in.overlapNs.Add(time.Since(start).Nanoseconds())
		}
	}()

	// Absorb every staged run the watermark allows, in task order. The
	// staging area is re-read each iteration (watermark included), so a
	// long drain picks up tasks committed while it ran.
	for {
		wm := int(in.wm.Load())
		st.stageMu.Lock()
		task := st.minStagedBelow(wm)
		var sr *stagedRun[K, V]
		if task >= 0 {
			sr = st.staged[task]
			delete(st.staged, task)
			st.stagedPairs -= sr.pairs
		}
		st.stageMu.Unlock()
		if sr == nil {
			break
		}
		begin()
		if err := in.absorbStaged(st, sr); err != nil {
			return err
		}
	}

	// Pressure relief. The criterion is local — this partition's
	// live+staged pairs against its own budget — so every partition
	// acts on its own signal (a global measure would push partitions to
	// swap staged data while the real excess sat in someone else's live
	// run). Swapping brings live+staged down to half the budget
	// (hysteresis: relief events are half as frequent and twice as
	// chunky as a swap-to-budget would be), newest tasks first — the
	// oldest staged runs are the next to absorb, and swapping data
	// moments before it becomes absorbable is the one pure waste in
	// this design. The live run is left alone: it seals at exactly the
	// budget through the regular absorb path and never before, which is
	// what keeps the spill statistics deterministic. Summed over
	// partitions this caps resident pairs at P*budget plus the workers'
	// in-flight blocks: the advertised whole-round bound.
	budget := in.s.opts.MaxBufferedPairs
	if allowSwap && budget > 0 && in.s.opts.SpillDir != "" {
		if st.livePairs+st.stagedTotal() >= budget {
			begin()
			if err := in.swapStaged(st, budget); err != nil {
				return err
			}
		}
	}
	return nil
}

// stagedTotal reports the partition's staged in-memory pairs.
func (st *partitionState[K, V]) stagedTotal() int {
	st.stageMu.Lock()
	defer st.stageMu.Unlock()
	return st.stagedPairs
}

// minStagedBelow returns the smallest staged task index under the
// watermark, or -1. Staged tasks under the watermark are committed:
// aborted attempts were discarded, and the watermark only passes
// finished tasks. Caller holds stageMu.
func (st *partitionState[K, V]) minStagedBelow(wm int) int {
	best := -1
	for t := range st.staged {
		if t < wm && (best < 0 || t < best) {
			best = t
		}
	}
	return best
}

// absorbStaged folds one committed task's staged run (already detached
// from the staging area) into the partition, swapped sections first —
// they hold the task's earlier flushes — then the in-memory blocks,
// all through the regular absorb/seal path. Swapped pairs re-enter in
// block-sized chunks, so reading a giant swapped task back never
// spikes residency beyond the ordinary absorb overshoot, and sealing
// still happens at exactly the budget boundaries the committed stream
// dictates.
func (in *Ingester[K, V]) absorbStaged(st *partitionState[K, V], sr *stagedRun[K, V]) error {
	s := in.s
	for _, sec := range sr.swapped {
		if err := in.absorbSwapped(st, sec); err != nil {
			return err
		}
	}
	for _, blk := range sr.blocks {
		err := st.absorb(s, blk)
		s.putBlock(blk)
		if err != nil {
			return err
		}
	}
	return nil
}

// absorbSwapped reads one pressure-swapped section back from the stash
// and folds its pairs into the partition in block-sized chunks,
// releasing the section afterwards. The stash's open handle is reused
// when the section still lives in the current stash file; a section in
// a rotated-out file is reopened by path.
func (in *Ingester[K, V]) absorbSwapped(st *partitionState[K, V], sec swapSec) error {
	s := in.s
	var ra io.ReaderAt
	if st.stash != nil && st.stash.rf == sec.rf && st.stash.f != nil {
		ra = st.stash.f
	} else {
		f, err := s.fs.Open(sec.rf.path)
		if err != nil {
			return fmt.Errorf("shuffle: reopening swap spool %s: %w", sec.rf.path, err)
		}
		defer f.Close()
		ra = f
	}
	// The readback is deliberately not metered into DiskBytesRead: that
	// counter means "spill run bytes read", the engine's memory-only
	// diagnosis asserts it stays zero before reduce, and swap traffic is
	// already fully visible as SwapBytes (each section is written and
	// read back exactly once).
	if int64(cap(st.swapBuf)) < sec.size {
		st.swapBuf = make([]byte, sec.size)
	}
	buf := st.swapBuf[:sec.size]
	if _, err := io.ReadFull(io.NewSectionReader(ra, sec.off, sec.size), buf); err != nil {
		return fmt.Errorf("shuffle: reading swap spool %s: %w", sec.rf.path, err)
	}

	n, m := binary.Uvarint(buf)
	if m <= 0 || int(n) != sec.pairs {
		return fmt.Errorf("shuffle: swap spool %s: %w: section header says %d pairs, expected %d",
			sec.rf.path, runfile.ErrCorrupt, n, sec.pairs)
	}
	rest := buf[m:]
	next := func() ([]byte, error) {
		l, m := binary.Uvarint(rest)
		if m <= 0 || int64(l) > int64(len(rest)-m) {
			return nil, fmt.Errorf("shuffle: swap spool %s: %w: truncated swapped pair",
				sec.rf.path, runfile.ErrCorrupt)
		}
		b := rest[m : m+int(l)]
		rest = rest[m+int(l):]
		return b, nil
	}
	if cap(st.swapChunk) < s.blockPairs {
		st.swapChunk = make([]Pair[K, V], 0, s.blockPairs)
	}
	chunk := st.swapChunk[:0]
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		// The pairs re-enter shuffle memory chunk by chunk; absorb
		// copies them into the live run, so the chunk slice is reused.
		s.addResident(len(chunk))
		err := st.absorb(s, chunk)
		chunk = chunk[:0]
		return err
	}
	for i := 0; i < int(n); i++ {
		kb, err := next()
		if err != nil {
			return err
		}
		k, err := st.decodeSwappedKey(kb)
		if err != nil {
			return fmt.Errorf("shuffle: decoding swapped key in spool %s: %w", sec.rf.path, err)
		}
		vb, err := next()
		if err != nil {
			return err
		}
		v, err := runfile.Decode[V](vb)
		if err != nil {
			return fmt.Errorf("shuffle: decoding swapped value in spool %s: %w", sec.rf.path, err)
		}
		chunk = append(chunk, Pair[K, V]{k, v})
		if len(chunk) >= s.blockPairs {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	sec.rf.dead.Add(sec.size)
	if err := sec.rf.release(s.fs, &s.bytesReclaimed); err != nil {
		return fmt.Errorf("shuffle: removing swap spool %s: %w", sec.rf.path, err)
	}
	return nil
}

// decodeSwappedKey decodes one swapped pair's key, interning string
// keys through the partition's dedup table: the readback revisits each
// hot key once per pair, and the map lookup on the raw bytes is
// allocation-free, so repeat keys share one decoded string instead of
// allocating per pair. Non-string keys decode directly.
func (st *partitionState[K, V]) decodeSwappedKey(kb []byte) (K, error) {
	var zero K
	if _, isString := any(zero).(string); !isString {
		return runfile.Decode[K](kb)
	}
	if k, ok := st.intern[string(kb)]; ok {
		return k, nil
	}
	k, err := runfile.Decode[K](kb)
	if err != nil {
		return zero, err
	}
	if st.intern == nil {
		st.intern = make(map[string]K)
	}
	st.intern[any(k).(string)] = k
	return k, nil
}

// swapStaged sheds staged blocks to the partition's stash under memory
// pressure, detaching them newest-task-first, until the partition's
// live+staged pairs drop to half its budget (or nothing staged
// remains). The sections rejoin the stream only when their task
// absorbs; Abort releases them.
func (in *Ingester[K, V]) swapStaged(st *partitionState[K, V], budget int) (err error) {
	s := in.s
	if s.spillTypeErr != nil {
		return fmt.Errorf("shuffle: cannot swap staged pairs: %w", s.spillTypeErr)
	}
	if st.stash == nil {
		st.stash = &spool[K, V]{s: s, pattern: "mr-swap-*.spool", kind: "swap spool"}
	}
	var swapped int64
	spanOpen := false
	defer func() {
		if spanOpen {
			st.lane.End(obs.OpFence, swapped, errFlag(err))
		}
	}()
	for {
		st.stageMu.Lock()
		var sr *stagedRun[K, V]
		newest, pairs := -1, 0
		if st.livePairs+st.stagedPairs > budget/2 {
			for t, c := range st.staged {
				if c.pairs > 0 && t > newest {
					sr, newest, pairs = c, t, c.pairs
				}
			}
		}
		var blocks [][]Pair[K, V]
		if sr != nil {
			blocks = sr.blocks
			sr.blocks, sr.pairs = nil, 0
			st.stagedPairs -= pairs
		}
		st.stageMu.Unlock()
		if sr == nil {
			return nil
		}
		if !spanOpen {
			// Opened lazily: swapStaged often finds relief already done.
			spanOpen = true
			st.lane.Begin(obs.OpFence, 0, 0)
		}
		sec, werr := st.stash.addSwap(blocks, pairs)
		if werr != nil {
			return werr
		}
		for _, blk := range blocks {
			s.putBlock(blk)
		}
		s.addResident(-pairs)
		s.swapBytes.Add(sec.size)
		swapped += int64(pairs)
		// Reattach under the staging lock. discard cannot run between
		// the detach above and here (it takes st.mu first, which the
		// ingest step holds), so the section always lands on a staged
		// run that is still the attempt's.
		st.stageMu.Lock()
		sr.swapped = append(sr.swapped, sec)
		st.stageMu.Unlock()
	}
}

// spool accumulates independently releasable sections in one temp
// file: a partition's seal runs share one spool file ("seal spool"),
// its pressure swaps another ("swap spool"), so relief costs no file
// churn no matter how many sections it writes. The refcounted runFile
// keeps each section independently releasable (Abort drops only its
// own sections, compaction its inputs, absorption its readbacks), the
// open writer holds one reference of its own released by close, and
// rotation retires a file whose dead bytes — released sections —
// outgrew Options.SpoolRotateBytes, so a long round's spools reclaim
// disk instead of growing monotonically.
type spool[K comparable, V any] struct {
	s       *Shuffle[K, V]
	pattern string // CreateTemp pattern ("mr-spool-*.run", "mr-swap-*.spool")
	kind    string // error-message noun ("seal spool", "swap spool")
	f       runfile.File
	rf      *runFile
	off     int64
	n       int             // sections written into the current file
	w       *runfile.Writer // reused across runs (Reset), nil until first run
	wbuf    []byte          // reused swap-section encode buffer
	kbuf    []byte          // reused key/value encode scratch
	broken  bool            // a failed append left bytes of unknown length; stop appending
}

// rotateEvery resolves Options.SpoolRotateBytes: the dead-byte
// threshold at which a spool rotates to a fresh file, 0 when rotation
// is disabled.
func rotateEvery(v int64) int64 {
	if v == 0 {
		return 4 << 20
	}
	if v < 0 {
		return 0
	}
	return v
}

// ensure opens the spool's current file, rotating first when the file
// has accumulated enough dead bytes. Rotation creates the replacement
// before letting go of the old file — a failed create keeps the old
// spool working, because rotation is an optimization, never
// correctness — then releases the writer's hold on the old file, which
// deletes it as soon as its last live section is released and credits
// the reclaimed bytes.
func (sp *spool[K, V]) ensure() error {
	s := sp.s
	if sp.broken {
		return fmt.Errorf("shuffle: %s %s unusable after earlier write failure", sp.kind, sp.rf.path)
	}
	if sp.f != nil {
		if re := rotateEvery(s.opts.SpoolRotateBytes); re > 0 && sp.rf.dead.Load() >= re {
			if f, err := s.fs.CreateTemp(s.opts.SpillDir, sp.pattern); err == nil {
				old, oldRF := sp.f, sp.rf
				sp.f, sp.rf, sp.off, sp.n = f, &runFile{path: f.Name()}, 0, 0
				sp.rf.refs.Store(1)
				// The old handle is done: surviving sections are reopened
				// by path (merge cursors, swap readback), so only the
				// writer held it. Close errors are unactionable here.
				old.Close()
				if rerr := oldRF.release(s.fs, &s.bytesReclaimed); rerr != nil {
					return fmt.Errorf("shuffle: removing rotated %s %s: %w", sp.kind, oldRF.path, rerr)
				}
			}
		}
		return nil
	}
	f, err := s.fs.CreateTemp(s.opts.SpillDir, sp.pattern)
	if err != nil {
		return fmt.Errorf("shuffle: creating %s: %w", sp.kind, err)
	}
	sp.f, sp.rf, sp.off, sp.n = f, &runFile{path: f.Name()}, 0, 0
	sp.rf.refs.Store(1) // the open writer's own hold, released by close
	return nil
}

// addRunGroups appends one already-grouped, already-combined run to
// the spool, keys in sorted order, reusing one runfile.Writer (and its
// write buffer) across every run the spool ever writes.
func (sp *spool[K, V]) addRunGroups(keys []K, groups map[K][]V, pairs int64) (dr diskRun[K], body, idx int64, retErr error) {
	if err := sp.ensure(); err != nil {
		return dr, 0, 0, err
	}
	if sp.w == nil {
		sp.w = runfile.NewWriter(sp.f)
	} else {
		sp.w.Reset(sp.f)
	}
	w := sp.w
	if err := writeGroups(w, sp.f.Name(), keys, groups); err != nil {
		sp.broken = true
		return dr, 0, 0, err
	}
	if err := w.Finish(); err != nil {
		sp.broken = true
		return dr, 0, 0, fmt.Errorf("shuffle: flushing %s %s: %w", sp.kind, sp.f.Name(), err)
	}
	dr = diskRun[K]{
		file: sp.rf, off: sp.off, size: w.BytesWritten(), pairs: pairs,
		index: typedIndex(keys, w.Index(), w.BodyBytes()),
	}
	sp.off += w.BytesWritten()
	sp.rf.size.Store(sp.off)
	sp.n++
	// Reference the run immediately: a compaction in the same step may
	// release it long before the spool closes.
	sp.rf.refs.Add(1)
	return dr, w.BodyBytes(), w.BytesWritten() - w.BodyBytes(), nil
}

// addSwap appends one staged task's blocks as a single raw section: a
// pair count followed by each pair's length-framed encoded key and
// value, in flush order — no grouping, no sort, no combine, because
// the bytes come straight back at absorb time and must reproduce the
// exact staged stream.
func (sp *spool[K, V]) addSwap(blocks [][]Pair[K, V], nPairs int) (sec swapSec, retErr error) {
	if err := sp.ensure(); err != nil {
		return sec, err
	}
	buf := binary.AppendUvarint(sp.wbuf[:0], uint64(nPairs))
	kb := sp.kbuf
	var err error
	for _, blk := range blocks {
		for i := range blk {
			if kb, err = runfile.Append(kb[:0], blk[i].Key); err != nil {
				return sec, fmt.Errorf("shuffle: swapping key: %w", err)
			}
			buf = binary.AppendUvarint(buf, uint64(len(kb)))
			buf = append(buf, kb...)
			if kb, err = runfile.Append(kb[:0], blk[i].Value); err != nil {
				return sec, fmt.Errorf("shuffle: swapping value: %w", err)
			}
			buf = binary.AppendUvarint(buf, uint64(len(kb)))
			buf = append(buf, kb...)
		}
	}
	sp.wbuf, sp.kbuf = buf, kb
	if _, err := sp.f.Write(buf); err != nil {
		sp.broken = true
		return sec, fmt.Errorf("shuffle: writing %s %s: %w", sp.kind, sp.f.Name(), err)
	}
	sec = swapSec{rf: sp.rf, off: sp.off, size: int64(len(buf)), pairs: nPairs}
	sp.off += int64(len(buf))
	sp.rf.size.Store(sp.off)
	sp.n++
	sp.rf.refs.Add(1)
	return sec, nil
}

// close releases the writer's hold on the spool file (removing it when
// no recorded section survives — for a drained stash that is the
// normal case, and the removal credits reclaimed when non-nil) and
// closes the handle. Both the close and the removal can fail and both
// are reported — a leaked spill file is as real a failure as a leaked
// run file — except on a spool already marked broken, whose append
// failure surfaced first.
func (sp *spool[K, V]) close(reclaimed *atomic.Int64) error {
	if sp.f == nil {
		return nil
	}
	closeErr := sp.f.Close()
	releaseErr := sp.rf.release(sp.s.fs, reclaimed)
	sp.f, sp.w = nil, nil
	if sp.broken {
		return nil
	}
	if closeErr != nil && sp.n > 0 {
		return fmt.Errorf("shuffle: closing %s %s: %w", sp.kind, sp.rf.path, closeErr)
	}
	if releaseErr != nil {
		return fmt.Errorf("shuffle: removing %s %s: %w", sp.kind, sp.rf.path, releaseErr)
	}
	return nil
}

// Finish drains every partition to completion — the residual barrier,
// run in parallel across partitions — closes the partitions' spools,
// waits out the background compaction queue, and returns the
// ingestion's first error. After Finish (with all tasks committed)
// every pair is absorbed and the shuffle is ready for Stats and reads.
func (in *Ingester[K, V]) Finish() error {
	start := time.Now()
	in.finishing.Store(true)
	s := in.s
	workers := runtime.GOMAXPROCS(0)
	if workers > s.nparts {
		workers = s.nparts
	}
	var wg sync.WaitGroup
	pCh := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range pCh {
				st := &s.parts[p]
				st.mu.Lock()
				err := in.ingestStep(st, true)
				// The round's ingest writes are done; release the spools'
				// write handles. A fully drained stash is removed here and
				// its bytes credited as reclaimed; the seal spool usually
				// survives until Close on its runs' references.
				if st.pspool != nil {
					if cerr := st.pspool.close(&s.bytesReclaimed); cerr != nil && err == nil {
						err = cerr
					}
					st.pspool = nil
				}
				if st.stash != nil {
					if cerr := st.stash.close(&s.bytesReclaimed); cerr != nil && err == nil {
						err = cerr
					}
					st.stash = nil
				}
				st.mu.Unlock()
				if err != nil {
					in.fail(err)
				}
			}
		}()
	}
	for p := 0; p < s.nparts; p++ {
		pCh <- p
	}
	close(pCh)
	wg.Wait()
	// Background compactions may still be rewriting run files; the
	// round must not report success while one of them is failing
	// (nothing else would surface the error before reads hit missing
	// files).
	if err := s.waitCompactions(); err != nil {
		in.fail(err)
	}
	in.finishNs.Add(time.Since(start).Nanoseconds())
	return in.Err()
}
