package shuffle

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/errfs"
	"repro/internal/obs"
)

// TestTracingUnderFaultInjection marches the errfs failure points over
// the whole disk data path — seal, compaction, and the reduce-time
// merge — with the recorder armed. Two invariants: the injected error
// still surfaces wrapped (tracing must not swallow it), and every span
// opened on the way down is closed on the error path (the deferred
// Ends fire), so the snapshot stays balanced.
func TestTracingUnderFaultInjection(t *testing.T) {
	// OpRead never fires on the zero-copy read path and OpMmap/OpMadvise/
	// OpMunmap faults are absorbed by the pread fallback; the march
	// tolerates never-firing ops, and the balance check still covers the
	// spans around them.
	ops := []errfs.Op{
		errfs.OpCreate, errfs.OpWrite, errfs.OpClose, errfs.OpOpen,
		errfs.OpRead, errfs.OpReadAt, errfs.OpMmap, errfs.OpMadvise, errfs.OpMunmap,
	}
	for _, op := range ops {
		for nth := 1; nth <= 6; nth++ {
			fs := errfs.New(nil)
			fs.FailAt(op, nth, nil)
			rec := obs.NewRecorder(0)
			s := New[int, int](Options{
				Partitions: 1, MaxBufferedPairs: 1, // one seal per pair: compaction runs
				SpillDir: t.TempDir(), FS: fs, Recorder: rec,
			})
			buf := s.NewTaskBuffer()
			for i := 0; i < maxDiskRunFanIn+2; i++ {
				buf.Emit(i%5, i)
			}
			err := s.Merge([]*TaskBuffer[int, int]{buf})
			if err == nil {
				// Exercise the reduce-merge (open/read) path too.
				err = s.Partition(0).ForEachGroup(func(int, []int) error { return nil })
			}
			if err != nil && !errors.Is(err, errfs.ErrInjected) {
				t.Errorf("%v#%d: injected cause lost from the chain: %v", op, nth, err)
			}
			if berr := obs.CheckBalanced(rec.Snapshot()); berr != nil {
				t.Errorf("%v#%d: span left open on error path: %v", op, nth, berr)
			}
			s.Close()
		}
	}
}

// TestRecorderConcurrentStress streams many tasks through concurrent
// workers into a spilling shuffle with a deliberately tiny ring: the
// map workers, pressure-relief fences and compactions all emit
// concurrently, the rings wrap, and the recorder must count drops
// instead of blocking or corrupting. Run under -race in CI.
func TestRecorderConcurrentStress(t *testing.T) {
	rec := obs.NewRecorder(16) // tiny: guarantees wrap under load
	s := New[int, int](Options{
		Partitions: 4, MaxBufferedPairs: 8, BlockPairs: 4,
		SpillDir: t.TempDir(), Recorder: rec,
	})
	defer s.Close()

	const workers, tasks, pairs = 8, 32, 200
	ing := s.NewIngester()
	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range taskCh {
				tw := ing.Task(ti, 0)
				for i := 0; i < pairs; i++ {
					tw.Emit((ti*31+i)%97, i)
				}
				if err := tw.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for ti := 0; ti < tasks; ti++ {
		taskCh <- ti
	}
	close(taskCh)
	wg.Wait()
	if err := ing.Finish(); err != nil {
		t.Fatal(err)
	}

	// The run itself must be unharmed by recording...
	var total int64
	for p := 0; p < s.NumPartitions(); p++ {
		total += s.Partition(p).Pairs()
	}
	if want := int64(tasks * pairs); total != want {
		t.Errorf("pairs = %d, want %d", total, want)
	}
	// ...and the overload must show up as drops, not a hang.
	if rec.Dropped() == 0 {
		t.Error("tiny ring never wrapped: Dropped() = 0, want > 0")
	}
	// The snapshot is still well-formed (sorted, bounded) even after
	// wrap; balance is NOT guaranteed — wrap loses events by design.
	for _, lane := range rec.Snapshot() {
		for i := 1; i < len(lane.Events); i++ {
			if lane.Events[i].TS < lane.Events[i-1].TS {
				t.Fatalf("lane %s: timestamps out of order after wrap", lane.Name())
			}
		}
	}
}

// TestStatsGroupSizeLog2 pins the q-distribution histogram: bucket i
// counts the keys whose group size lands in [2^i, 2^(i+1)).
func TestStatsGroupSizeLog2(t *testing.T) {
	check := func(t *testing.T, opts Options) {
		t.Helper()
		s := New[int, int](opts)
		defer s.Close()
		buf := s.NewTaskBuffer()
		// Group sizes: key 0 → 1 pair, key 1 → 3, key 2 → 4, key 3 → 9.
		sizes := []int{1, 3, 4, 9}
		for k, n := range sizes {
			for i := 0; i < n; i++ {
				buf.Emit(k, i)
			}
		}
		if err := s.Merge([]*TaskBuffer[int, int]{buf}); err != nil {
			t.Fatal(err)
		}
		st, err := s.Stats()
		if err != nil {
			t.Fatal(err)
		}
		// 1 → bucket 0; 3 → bucket 1; 4 → bucket 2; 9 → bucket 3.
		want := []int64{1, 1, 1, 1}
		if len(st.GroupSizeLog2) != len(want) {
			t.Fatalf("GroupSizeLog2 = %v, want %v", st.GroupSizeLog2, want)
		}
		for i, n := range want {
			if st.GroupSizeLog2[i] != n {
				t.Fatalf("GroupSizeLog2 = %v, want %v", st.GroupSizeLog2, want)
			}
		}
	}
	t.Run("in-memory", func(t *testing.T) {
		check(t, Options{Partitions: 2})
	})
	t.Run("spilled", func(t *testing.T) {
		check(t, Options{Partitions: 2, MaxBufferedPairs: 2, SpillDir: t.TempDir()})
	})
}

func TestLog2Bucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1 << 20: 20}
	for n, want := range cases {
		if got := log2Bucket(n); got != want {
			t.Errorf("log2Bucket(%d) = %d, want %d", n, got, want)
		}
	}
}
