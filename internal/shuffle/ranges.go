// Key-range splitting of the reduce merge: one partition's sorted key
// space is cut into balanced, class-aligned ranges so disjoint slices
// of the same partition can be merged and reduced concurrently.
//
// The plan comes entirely from the resident run indexes (a counting
// merge — no disk read): PlanReduceRanges walks the partition's groups
// in canonical order, accumulating pair counts, and closes a range
// whenever the accumulated load passes the target *and* the next group
// starts a new order-equivalence class. Boundaries land only at class
// starts, so a key — including distinct keys the fallback comparator
// cannot separate — never straddles two ranges, and the one-reducer-
// per-group contract survives the split.
//
// RangeReader is the concurrent read surface: it opens the partition's
// spool files and mmaps once (openRunViews — the same shared per-spool
// mapping the whole-partition merge uses), and each ForEachGroupRange
// call builds its own clamped cursor set over subslices of the resident
// indexes, seeked by binary search. Ranges emitted in plan order
// concatenate to exactly the whole-partition merge's group sequence,
// value-order contract included, which is the determinism argument: the
// split changes who reads a group, never what the group is or where it
// appears.
package shuffle

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// KeyRange is one planned slice of a partition's sorted key space:
// [Lo, Hi) in canonical key order, where an unset bound (HasLo/HasHi
// false) extends to the partition's edge. Bounds always sit on
// order-equivalence-class starts: every key order-equal to Lo is
// inside, every key order-equal to Hi is in the next range.
type KeyRange[K comparable] struct {
	Lo    K
	HasLo bool
	Hi    K
	HasHi bool
	// Pairs and Keys are the range's planned load from the resident
	// indexes — the weights range units are scheduled by.
	Pairs int64
	Keys  int64

	// Cached formatted bounds for the fallback comparator, computed at
	// plan time so clamping never re-formats them.
	loFmt, hiFmt string
}

// Contains reports whether k falls in the range under the canonical
// order (the comparator behind SortKeys). Keys order-equal to Lo are
// inside; keys order-equal to Hi are not.
func (r KeyRange[K]) Contains(k K) bool {
	less := nativeLess[K]()
	if less != nil {
		if r.HasLo && less(k, r.Lo) {
			return false
		}
		if r.HasHi && !less(k, r.Hi) {
			return false
		}
		return true
	}
	kf := fmt.Sprint(k)
	if r.HasLo && kf < r.loFmt {
		return false
	}
	if r.HasHi && !(kf < r.hiFmt) {
		return false
	}
	return true
}

// PlanReduceRanges cuts the partition into class-aligned key ranges of
// roughly targetPairs pairs each, weighted by the resident indexes'
// per-group counts (a pure in-memory counting merge — no run file is
// opened). maxRanges caps the cut; the final range absorbs whatever
// remains. Returns nil — meaning "don't split" — when targetPairs or
// maxRanges disables splitting, when the partition is empty or fits a
// single range, or when the counting pass fails (the whole-partition
// merge will surface the error).
func (p Partition[K, V]) PlanReduceRanges(targetPairs int64, maxRanges int) []KeyRange[K] {
	if targetPairs <= 0 || maxRanges <= 1 {
		return nil
	}
	less := nativeLess[K]()
	var ranges []KeyRange[K]
	var cur KeyRange[K]
	var curPairs, curKeys int64
	var prev K
	var prevFmt string
	started := false
	err := p.forEachGroup(false, false, func(k K, count int, _ []V) error {
		var kf string
		if less == nil {
			kf = fmt.Sprint(k)
		}
		if started && curPairs >= targetPairs && len(ranges) < maxRanges-1 {
			// Close the current range here only if k starts a new
			// order-equivalence class: strictly greater than the previous
			// group under the comparator. Groups the comparator cannot
			// separate stay together.
			classStart := false
			if less != nil {
				classStart = less(prev, k)
			} else {
				classStart = prevFmt < kf
			}
			if classStart {
				cur.Hi, cur.HasHi, cur.hiFmt = k, true, kf
				cur.Pairs, cur.Keys = curPairs, curKeys
				ranges = append(ranges, cur)
				cur = KeyRange[K]{Lo: k, HasLo: true, loFmt: kf}
				curPairs, curKeys = 0, 0
			}
		}
		curPairs += int64(count)
		curKeys++
		prev, prevFmt, started = k, kf, true
		return nil
	})
	if err != nil || !started || len(ranges) == 0 {
		return nil
	}
	cur.Pairs, cur.Keys = curPairs, curKeys
	ranges = append(ranges, cur)
	return ranges
}

// PlanRangesFromCounts cuts a sorted distinct-key sequence with per-key
// pair counts into class-aligned ranges of roughly targetPairs pairs —
// the standalone twin of Partition.PlanReduceRanges for callers that
// already aggregated their (key, count) profile (proc reduce workers
// plan from their sections' decoded indexes). keys must be in canonical
// order (SortKeys). Returns nil when splitting is disabled or the
// sequence fits a single range.
func PlanRangesFromCounts[K comparable](keys []K, counts []int64, targetPairs int64, maxRanges int) []KeyRange[K] {
	if targetPairs <= 0 || maxRanges <= 1 || len(keys) == 0 {
		return nil
	}
	less := nativeLess[K]()
	var ranges []KeyRange[K]
	var cur KeyRange[K]
	var curPairs, curKeys int64
	var prevFmt string
	for i, k := range keys {
		var kf string
		if less == nil {
			kf = fmt.Sprint(k)
		}
		if i > 0 && curPairs >= targetPairs && len(ranges) < maxRanges-1 {
			classStart := false
			if less != nil {
				classStart = less(keys[i-1], k)
			} else {
				classStart = prevFmt < kf
			}
			if classStart {
				cur.Hi, cur.HasHi, cur.hiFmt = k, true, kf
				cur.Pairs, cur.Keys = curPairs, curKeys
				ranges = append(ranges, cur)
				cur = KeyRange[K]{Lo: k, HasLo: true, loFmt: kf}
				curPairs, curKeys = 0, 0
			}
		}
		curPairs += counts[i]
		curKeys++
		prevFmt = kf
	}
	if len(ranges) == 0 {
		return nil
	}
	cur.Pairs, cur.Keys = curPairs, curKeys
	return append(ranges, cur)
}

// Clamp resolves the range to the [lo, hi) index window of keys, which
// must be sorted in canonical order — the exported seek proc reduce
// workers use to slice their section cursors per range.
func (r KeyRange[K]) Clamp(keys []K) (lo, hi int) {
	return clampRange(len(keys), func(i int) K { return keys[i] }, nativeLess[K](), r)
}

// lowerBound returns the first i in [0, n) whose key (via keyAt) is not
// below the bound under the canonical order — the clamp seek shared by
// the typed and formatted-fallback comparators. boundFmt is the bound's
// cached formatted form, used when less is nil.
func lowerBound[K comparable](n int, keyAt func(int) K, less func(a, b K) bool, bound K, boundFmt string) int {
	if less != nil {
		return sort.Search(n, func(i int) bool { return !less(keyAt(i), bound) })
	}
	return sort.Search(n, func(i int) bool { return !(fmt.Sprint(keyAt(i)) < boundFmt) })
}

// clampRange resolves a KeyRange to the [lo, hi) index window of a
// sorted key sequence. The sequence must be sorted in canonical order
// (it is: run indexes and sorted key slices are written that way).
func clampRange[K comparable](n int, keyAt func(int) K, less func(a, b K) bool, r KeyRange[K]) (lo, hi int) {
	lo, hi = 0, n
	if r.HasLo {
		lo = lowerBound(n, keyAt, less, r.Lo, r.loFmt)
	}
	if r.HasHi {
		hi = lowerBound(n, keyAt, less, r.Hi, r.hiFmt)
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// RangeReader reads disjoint key ranges of one partition concurrently.
// It holds the partition's read surface open once — spool handles and
// shared mmaps (openRunViews), the disk-read semaphore slot, the
// reduce-merge span — while any number of goroutines each run
// ForEachGroupRange over their own range. Close releases all of it.
// The partition must be quiescent (reduce phase): no concurrent writes.
type RangeReader[K comparable, V any] struct {
	s    *Shuffle[K, V]
	st   *partitionState[K, V]
	less func(a, b K) bool

	views    []runView // one per disk run, sharing per-spool handles/mmaps
	closeAll func()

	memRuns []map[K][]V // sealed in-memory runs, then the live run
	memKeys [][]K       // their sorted key slices, computed once

	hasDisk   bool
	closeOnce sync.Once
	closeErr  error
}

// OpenRangeReader opens the partition's shared read surface for
// concurrent range merges. With disk runs it takes a disk-read
// semaphore slot and opens every spool handle and mapping exactly once,
// held until Close; the reduce-merge span covers the same window.
func (p Partition[K, V]) OpenRangeReader() (*RangeReader[K, V], error) {
	st := &p.s.parts[p.idx]
	if p.s.closed && st.spilledToDisk {
		return nil, fmt.Errorf("shuffle: partition %d read after Close: spilled runs deleted", p.idx)
	}
	rr := &RangeReader[K, V]{s: p.s, st: st, less: nativeLess[K]()}
	if len(st.disk) > 0 {
		rr.hasDisk = true
		p.s.diskSem <- struct{}{}
		st.lane.Begin(obs.OpReduceMerge, int64(len(st.disk)), 0)
		views, closeAll, err := openRunViews(p.s, st.disk)
		if err != nil {
			closeAll()
			st.lane.End(obs.OpReduceMerge, 0, 1)
			<-p.s.diskSem
			return nil, err
		}
		rr.views, rr.closeAll = views, closeAll
	}
	for _, run := range st.runs {
		rr.memRuns = append(rr.memRuns, run)
		rr.memKeys = append(rr.memKeys, sortedMapKeys(run))
	}
	if len(st.live) > 0 {
		rr.memRuns = append(rr.memRuns, st.live)
		rr.memKeys = append(rr.memKeys, sortedMapKeys(st.live))
	}
	return rr, nil
}

// Close releases the reader's handles, mappings, semaphore slot and
// span. Safe to call more than once; must not race ForEachGroupRange.
func (rr *RangeReader[K, V]) Close() error {
	rr.closeOnce.Do(func() {
		if rr.closeAll != nil {
			rr.closeAll()
		}
		if rr.hasDisk {
			rr.st.lane.End(obs.OpReduceMerge, 0, 0)
			<-rr.s.diskSem
		}
	})
	return rr.closeErr
}

// ForEachGroupRange streams the partition's groups inside r, in
// canonical key order, through fn — the clamped twin of ForEachGroup
// (reuseValues false) and ForEachGroupBatch (reuseValues true: the
// slice is scratch, valid only during the call). Every cursor is seeked
// to the range by binary search over its resident index and reads
// through the reader's shared views, so concurrent calls with disjoint
// ranges are safe and the concatenation of all planned ranges in order
// reproduces the whole-partition merge exactly.
func (rr *RangeReader[K, V]) ForEachGroupRange(r KeyRange[K], reuseValues bool, fn func(k K, vs []V) error) error {
	fmtKeys := rr.less == nil
	reuseValues = reuseValues && !fmtKeys
	var cursors []*groupCursor[K, V]
	for i, dr := range rr.st.disk {
		idx := dr.index
		lo, hi := clampRange(len(idx), func(j int) K { return idx[j].key }, rr.less, r)
		if lo == hi {
			continue
		}
		cursors = append(cursors, &groupCursor[K, V]{
			runIdx: i, fmtKeys: fmtKeys, idx: idx[lo:hi],
			file: rr.views[i].file, img: rr.views[i].img, ra: rr.views[i].ra, raOff: rr.views[i].raOff,
			meter: &rr.s.diskRead,
		})
	}
	base := len(rr.st.disk)
	for i, run := range rr.memRuns {
		keys := rr.memKeys[i]
		lo, hi := clampRange(len(keys), func(j int) K { return keys[j] }, rr.less, r)
		if lo == hi {
			continue
		}
		cursors = append(cursors, &groupCursor[K, V]{
			runIdx: base + i, fmtKeys: fmtKeys, mem: run, memKeys: keys[lo:hi],
		})
	}
	return mergeGroupCursors(cursors, rr.less, true, reuseValues, func(k K, _ int, vs []V) error {
		return fn(k, vs)
	})
}
