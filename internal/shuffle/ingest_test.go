package shuffle

import (
	"errors"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/errfs"
)

// ingestTasks builds deterministic per-task pair slices: task t emits
// seq pairs (key = (t*7+i) % keys, value = t*1e6 + i) in order, so a
// value encodes exactly which (task, seq) produced it and the global
// expected value order of a key is reconstructible.
func ingestTasks(nTasks, perTask, keys int) [][]Pair[int, int] {
	tasks := make([][]Pair[int, int], nTasks)
	for t := range tasks {
		ps := make([]Pair[int, int], perTask)
		for i := range ps {
			ps[i] = Pair[int, int]{Key: (t*7 + i) % keys, Value: t*1_000_000 + i}
		}
		tasks[t] = ps
	}
	return tasks
}

// streamTasks drives the tasks through an Ingester with the given
// number of concurrent workers, committing each task on completion.
func streamTasks(t testing.TB, s *Shuffle[int, int], tasks [][]Pair[int, int], workers int) {
	t.Helper()
	ing := s.NewIngester()
	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range taskCh {
				tw := ing.Task(ti, 0)
				for _, p := range tasks[ti] {
					tw.Emit(p.Key, p.Value)
				}
				if err := tw.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for ti := range tasks {
		taskCh <- ti
	}
	close(taskCh)
	wg.Wait()
	if err := ing.Finish(); err != nil {
		t.Fatal(err)
	}
}

// collectGroups streams every partition's groups into one map.
func collectGroups(t testing.TB, s *Shuffle[int, int]) map[int][]int {
	t.Helper()
	got := make(map[int][]int)
	for p := 0; p < s.NumPartitions(); p++ {
		err := s.Partition(p).ForEachGroup(func(k int, vs []int) error {
			got[k] = append([]int(nil), vs...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return got
}

// TestStreamingMatchesMerge pins the streaming path's value-order
// contract against the barrier path: for the same tasks, every key's
// concatenated values must be byte-identical — (task order, emission
// order) — whether the shuffle was fed by concurrent streaming writers
// or a post-phase Merge, across spill on/off and combiner on/off.
func TestStreamingMatchesMerge(t *testing.T) {
	const nTasks, perTask, keys = 24, 50, 17
	tasks := ingestTasks(nTasks, perTask, keys)
	sum := func(_ int, vs []int) []int {
		total := 0
		for _, v := range vs {
			total += v
		}
		return []int{total}
	}
	for _, tc := range []struct {
		name    string
		spill   bool
		combine bool
	}{
		{"in-memory", false, false},
		{"spill", true, false},
		{"spill-combiner", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Partitions: 4, MaxBufferedPairs: 32, BlockPairs: 16}
			if tc.spill {
				opts.SpillDir = t.TempDir()
			}
			merged := New[int, int](opts)
			if tc.combine {
				merged.SetCombiner(sum)
			}
			bufs := make([]*TaskBuffer[int, int], len(tasks))
			for ti, ps := range tasks {
				bufs[ti] = merged.NewTaskBuffer()
				for _, p := range ps {
					bufs[ti].Emit(p.Key, p.Value)
				}
			}
			if err := merged.Merge(bufs); err != nil {
				t.Fatal(err)
			}
			defer merged.Close()

			if tc.spill {
				opts.SpillDir = t.TempDir()
			}
			streamed := New[int, int](opts)
			if tc.combine {
				streamed.SetCombiner(sum)
			}
			streamTasks(t, streamed, tasks, 4)
			defer streamed.Close()

			want := collectGroups(t, merged)
			got := collectGroups(t, streamed)
			if tc.combine {
				// Combine application points differ between the paths
				// (seal timing vs fence timing), so only the per-key sums
				// are comparable.
				for k, vs := range want {
					var ws, gs int
					for _, v := range vs {
						ws += v
					}
					for _, v := range got[k] {
						gs += v
					}
					if ws != gs {
						t.Fatalf("key %d: streamed sum %d, merged sum %d", k, gs, ws)
					}
				}
				return
			}
			if !reflect.DeepEqual(got, want) {
				for k := range want {
					if !reflect.DeepEqual(got[k], want[k]) {
						t.Fatalf("key %d values diverge\nstreamed %v\nmerged   %v", k, got[k], want[k])
					}
				}
				t.Fatalf("group sets diverge: %d streamed keys, %d merged", len(got), len(want))
			}
		})
	}
}

// TestStreamingAbortFencesFlushedPairs emits a full task through the
// ingester, aborts it, retries under a new attempt, and requires that
// none of the aborted attempt's pairs — staged blocks and fenced spill
// runs alike — are visible, while the retry's pairs all are, and that
// no spill file outlives Close.
func TestStreamingAbortFencesFlushedPairs(t *testing.T) {
	const budget, blockPairs = 8, 16
	fs := errfs.New(nil)
	spillDir := t.TempDir()
	s := New[int, int](Options{
		Partitions: 1, MaxBufferedPairs: budget, BlockPairs: blockPairs,
		SpillDir: spillDir, FS: fs,
	})
	defer s.Close()
	ing := s.NewIngester()

	// Task 1 commits first but stays above the watermark (task 0 is
	// unfinished), so its blocks stage and, with the budget this small,
	// fence to disk — uncommitted-spill machinery in action.
	tw1 := ing.Task(1, 0)
	for i := 0; i < 64; i++ {
		tw1.Emit(i%5, 1000+i)
	}
	if err := tw1.Commit(); err != nil {
		t.Fatal(err)
	}

	// Task 0 attempt 0: emits everything (flushing along the way, which
	// fences under this tiny budget), then fails. Its flushed pairs
	// must be fenced off.
	tw0 := ing.Task(0, 0)
	for i := 0; i < 64; i++ {
		tw0.Emit(i%5, -1) // poison values: must never appear
	}
	if fs.Calls(errfs.OpCreate) == 0 {
		t.Fatal("attempt never spilled; the fencing path is not exercised")
	}
	tw0.Abort()

	// Retry commits clean data; the watermark then passes both tasks.
	tw0r := ing.Task(0, 1)
	for i := 0; i < 64; i++ {
		tw0r.Emit(i%5, i)
	}
	if err := tw0r.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Finish(); err != nil {
		t.Fatal(err)
	}

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 128 {
		t.Fatalf("Pairs = %d, want 128 (64 from each committed task)", st.Pairs)
	}
	got := collectGroups(t, s)
	total := 0
	for k, vs := range got {
		// Task order: task 0's retry values (i) precede task 1's (1000+i).
		for i, v := range vs {
			if v < 0 {
				t.Fatalf("key %d: aborted attempt's value %d leaked", k, v)
			}
			if i > 0 && vs[i-1] >= 1000 && v < 1000 {
				t.Fatalf("key %d: task order violated: %v", k, vs)
			}
		}
		_ = k
		total += len(vs)
	}
	if total != 128 {
		t.Fatalf("streamed %d pairs, want 128", total)
	}

	// Every spill file — including spools holding aborted sections —
	// is gone after Close.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill dir not empty after Close: %d files remain", len(entries))
	}
}

// TestStreamingPeakResidentBound is the whole-round memory assertion:
// a dataset many times the total budget, streamed by concurrent
// workers, must keep peak resident pairs within
// P*MemoryBudget + workers*BlockPairs.
func TestStreamingPeakResidentBound(t *testing.T) {
	const (
		parts      = 4
		budget     = 256
		blockPairs = 64
		workers    = 4
		nTasks     = 32
		perTask    = 1024 // 32k pairs ~ 32x the total budget
	)
	tasks := ingestTasks(nTasks, perTask, 301)
	s := New[int, int](Options{
		Partitions: parts, MaxBufferedPairs: budget,
		BlockPairs: blockPairs, SpillDir: t.TempDir(),
	})
	defer s.Close()
	streamTasks(t, s, tasks, workers)

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != nTasks*perTask {
		t.Fatalf("Pairs = %d, want %d", st.Pairs, nTasks*perTask)
	}
	if st.MaxLivePairs > budget {
		t.Errorf("MaxLivePairs = %d exceeds budget %d", st.MaxLivePairs, budget)
	}
	bound := int64(parts*budget + workers*blockPairs)
	if st.PeakResidentPairs > bound {
		t.Errorf("PeakResidentPairs = %d exceeds bound %d (= %d*%d + %d*%d)",
			st.PeakResidentPairs, bound, parts, budget, workers, blockPairs)
	}
	if st.PeakResidentPairs <= 0 {
		t.Error("PeakResidentPairs = 0: metric never measured anything")
	}
	// Everything still streams back complete and in order.
	got := collectGroups(t, s)
	total := 0
	for _, vs := range got {
		total += len(vs)
		for i := 1; i < len(vs); i++ {
			if vs[i-1] >= vs[i] {
				t.Fatalf("value order violated: %d before %d", vs[i-1], vs[i])
			}
		}
	}
	if total != nTasks*perTask {
		t.Fatalf("streamed %d pairs, want %d", total, nTasks*perTask)
	}
}

// TestStreamingStress is the -race workout: many workers flushing
// concurrently into few partitions with a tiny budget (constant
// fencing and compaction), injected aborts with retries, and a final
// exact comparison of every key's value sequence against the
// single-threaded expectation.
func TestStreamingStress(t *testing.T) {
	const (
		nTasks, perTask, keys = 60, 40, 11
		workers               = 8
	)
	tasks := ingestTasks(nTasks, perTask, keys)
	s := New[int, int](Options{
		Partitions: 2, MaxBufferedPairs: 16, BlockPairs: 16,
		SpillDir: t.TempDir(),
	})
	defer s.Close()

	ing := s.NewIngester()
	rng := rand.New(rand.NewSource(42))
	abortFirst := make([]bool, nTasks) // decided up front; workers read only
	for i := range abortFirst {
		abortFirst[i] = rng.Intn(3) == 0
	}
	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range taskCh {
				attempt := 0
				if abortFirst[ti] {
					tw := ing.Task(ti, attempt)
					// Emit a prefix (flushing some blocks), then abort.
					for _, p := range tasks[ti][:perTask/2] {
						tw.Emit(p.Key, -p.Value-1) // poison
					}
					tw.Abort()
					attempt++
				}
				tw := ing.Task(ti, attempt)
				for _, p := range tasks[ti] {
					tw.Emit(p.Key, p.Value)
				}
				if err := tw.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for ti := range tasks {
		taskCh <- ti
	}
	close(taskCh)
	wg.Wait()
	if err := ing.Finish(); err != nil {
		t.Fatal(err)
	}

	want := make(map[int][]int)
	for _, ps := range tasks {
		for _, p := range ps {
			want[p.Key] = append(want[p.Key], p.Value)
		}
	}
	got := collectGroups(t, s)
	if !reflect.DeepEqual(got, want) {
		for k := range want {
			if !reflect.DeepEqual(got[k], want[k]) {
				t.Fatalf("key %d diverges\ngot  %v\nwant %v", k, got[k], want[k])
			}
		}
		t.Fatal("group sets diverge")
	}
}

// TestStreamingFaultInjection marches errfs failures through the
// streaming path's disk surface — fence-spill creates and writes, seal
// writes, closes — and requires the injected cause to surface wrapped
// from Commit or Finish, with Close still cleaning up.
func TestStreamingFaultInjection(t *testing.T) {
	workload := func(fs *errfs.FS) error {
		s := New[int, int](Options{
			Partitions: 1, MaxBufferedPairs: 4, BlockPairs: 16,
			SpillDir: t.TempDir(), FS: fs,
		})
		defer s.Close()
		ing := s.NewIngester()
		var firstErr error
		for ti := 0; ti < 6; ti++ {
			tw := ing.Task(ti, 0)
			for i := 0; i < 32; i++ {
				tw.Emit(i%5, ti*100+i)
			}
			if err := tw.Commit(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := ing.Finish(); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	}

	// Probe: count a clean run's operations. (Creates are few by
	// design: the partition's pressure spool batches every fence and
	// early seal into one file.)
	probe := errfs.New(nil)
	if err := workload(probe); err != nil {
		t.Fatalf("clean streaming run failed: %v", err)
	}
	creates, writes, closes := probe.Calls(errfs.OpCreate), probe.Calls(errfs.OpWrite), probe.Calls(errfs.OpClose)
	if creates < 1 || writes < 3 || closes < 1 {
		t.Fatalf("clean run did %d creates / %d writes / %d closes; spill path never engaged",
			creates, writes, closes)
	}

	cases := []struct {
		name string
		op   errfs.Op
		nth  int
	}{
		{"create-first", errfs.OpCreate, 1},
		{"create-last", errfs.OpCreate, creates},
		{"write-first", errfs.OpWrite, 1},
		{"write-mid", errfs.OpWrite, writes / 2},
		{"write-last", errfs.OpWrite, writes},
		{"close-first", errfs.OpClose, 1},
		{"close-last", errfs.OpClose, closes},
	}
	seen := map[string]bool{}
	for _, tc := range cases {
		key := string(tc.op) + ":" + strconv.Itoa(tc.nth)
		if tc.nth < 1 || seen[key] {
			continue // ordinals collapse when the probe found few calls
		}
		seen[key] = true
		t.Run(tc.name, func(t *testing.T) {
			fs := errfs.New(nil)
			fs.FailAt(tc.op, tc.nth, nil)
			err := workload(fs)
			if err == nil {
				t.Fatal("streaming ingestion succeeded despite injected failure")
			}
			if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("injected cause lost from the chain: %v", err)
			}
			if !strings.Contains(err.Error(), "spill") && !strings.Contains(err.Error(), "spool") &&
				!strings.Contains(err.Error(), "compact") {
				t.Fatalf("err = %v, want a spill/spool/compaction context", err)
			}
		})
	}
}

// TestSpoolRotationFaultTolerance marches an injected create failure
// over every file-create a rotating streaming round performs. Spool
// rotation creates the replacement file before retiring the old one,
// and a failed rotation create is opportunistic — the round keeps the
// old spool and carries on. So each ordinal must end one of two ways:
// the round fails with the injected cause wrapped (a mandatory create
// — first spool, swap stash, compaction output), or it succeeds with
// byte-identical output (a rotation create). At least one ordinal must
// take the survivable path, proving rotation actually engaged.
func TestSpoolRotationFaultTolerance(t *testing.T) {
	const nTasks, perTask, keys = 12, 48, 7
	tasks := ingestTasks(nTasks, perTask, keys)
	want := make(map[int][]int)
	for _, ps := range tasks {
		for _, p := range ps {
			want[p.Key] = append(want[p.Key], p.Value)
		}
	}

	run := func(fs *errfs.FS, rotate int64) (map[int][]int, Stats, error) {
		s := New[int, int](Options{
			Partitions: 1, MaxBufferedPairs: 8, BlockPairs: 8,
			SpillDir: t.TempDir(), FS: fs,
			SpoolRotateBytes: rotate,
			// Inline compaction keeps the round single-threaded, so the
			// create ordinals are deterministic and the march is exact.
			CompactionConcurrency: -1,
		})
		defer s.Close()
		ing := s.NewIngester()
		var firstErr error
		for ti := range tasks {
			tw := ing.Task(ti, 0)
			for _, p := range tasks[ti] {
				tw.Emit(p.Key, p.Value)
			}
			if err := tw.Commit(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := ing.Finish(); err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			return nil, Stats{}, firstErr
		}
		st, err := s.Stats()
		if err != nil {
			return nil, Stats{}, err
		}
		return collectGroups(t, s), st, nil
	}

	// Probe: rotation (threshold 1: any dead byte rotates) must create
	// more files than the non-rotating round, and reclaim disk while the
	// round still runs.
	plain := errfs.New(nil)
	if _, _, err := run(plain, -1); err != nil {
		t.Fatalf("non-rotating round failed: %v", err)
	}
	probe := errfs.New(nil)
	got, st, err := run(probe, 1)
	if err != nil {
		t.Fatalf("rotating round failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("rotating round output diverges")
	}
	creates := probe.Calls(errfs.OpCreate)
	if creates <= plain.Calls(errfs.OpCreate) {
		t.Fatalf("rotation never created a replacement spool: %d creates with rotation, %d without",
			creates, plain.Calls(errfs.OpCreate))
	}
	if st.BytesReclaimed == 0 {
		t.Fatal("rotating round reclaimed nothing mid-round")
	}

	survived := 0
	for nth := 1; nth <= creates; nth++ {
		fs := errfs.New(nil)
		fs.FailAt(errfs.OpCreate, nth, nil)
		got, _, err := run(fs, 1)
		if err != nil {
			if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("create#%d: injected cause lost from the chain: %v", nth, err)
			}
			continue
		}
		survived++
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("create#%d: round survived the fault but its output diverges", nth)
		}
	}
	if survived == 0 {
		t.Fatal("every create ordinal was fatal: the opportunistic rotation create never engaged")
	}
}

// TestStreamingStatsInvalidation pins the memoized-Stats contract
// under streaming ingestion: a Stats call mid-round memoizes the
// profile, and every later mutation — absorbed blocks, seals,
// background compactions, swap-section adds and releases — must
// invalidate that memo so the post-Finish Stats reflects the whole
// round. (Same regression shape as the SetCombiner staleness fix: a
// mutation path that forgets to invalidate serves the stale profile.)
func TestStreamingStatsInvalidation(t *testing.T) {
	const perTask = 64
	s := New[int, int](Options{
		Partitions: 2, MaxBufferedPairs: 8, BlockPairs: 4,
		SpillDir: t.TempDir(),
	})
	defer s.Close()
	ing := s.NewIngester()

	tw := ing.Task(0, 0)
	for i := 0; i < perTask; i++ {
		tw.Emit(i%5, i)
	}
	if err := tw.Commit(); err != nil {
		t.Fatal(err)
	}

	// Memoize mid-round, twice: the second call must hit the memo path,
	// so whatever the third call sees went through invalidation.
	st1, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stats(); err != nil {
		t.Fatal(err)
	}

	tw = ing.Task(1, 0)
	for i := 0; i < perTask; i++ {
		tw.Emit(i%5, 1000+i)
	}
	if err := tw.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Finish(); err != nil {
		t.Fatal(err)
	}

	st2, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pairs != 2*perTask {
		t.Fatalf("stale Stats memo: post-Finish Pairs = %d, want %d (mid-round memo saw %d)",
			st2.Pairs, 2*perTask, st1.Pairs)
	}
	// The whole round is 8x the total budget, so the second half must
	// have added spill volume on top of whatever the memo captured.
	if st2.BytesSpilled <= st1.BytesSpilled {
		t.Fatalf("stale Stats memo: BytesSpilled %d not above mid-round %d",
			st2.BytesSpilled, st1.BytesSpilled)
	}
	got := collectGroups(t, s)
	total := 0
	for _, vs := range got {
		total += len(vs)
	}
	if total != 2*perTask {
		t.Fatalf("streamed %d pairs, want %d", total, 2*perTask)
	}
}

// TestStreamingEmptyAndSingleTask covers the degenerate shapes: no
// tasks at all, and one task owning every pair (the watermark cannot
// advance until the very end, so everything stages and fences).
func TestStreamingEmptyAndSingleTask(t *testing.T) {
	s := New[int, int](Options{Partitions: 2, MaxBufferedPairs: 8, SpillDir: t.TempDir()})
	defer s.Close()
	ing := s.NewIngester()
	if err := ing.Finish(); err != nil {
		t.Fatalf("empty ingestion: %v", err)
	}

	s2 := New[int, int](Options{Partitions: 2, MaxBufferedPairs: 8, BlockPairs: 16, SpillDir: t.TempDir()})
	defer s2.Close()
	ing2 := s2.NewIngester()
	tw := ing2.Task(0, 0)
	const n = 512
	for i := 0; i < n; i++ {
		tw.Emit(i%7, i)
	}
	if err := tw.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ing2.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := s2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != n {
		t.Fatalf("Pairs = %d, want %d", st.Pairs, n)
	}
	// One giant task: the bound still holds because staged data fences
	// to disk under pressure instead of accumulating in memory.
	bound := int64(2*8 + 1*16)
	if st.PeakResidentPairs > bound {
		t.Errorf("single-task PeakResidentPairs = %d exceeds bound %d", st.PeakResidentPairs, bound)
	}
	got := collectGroups(t, s2)
	total := 0
	for _, vs := range got {
		total += len(vs)
		for i := 1; i < len(vs); i++ {
			if vs[i-1] >= vs[i] {
				t.Fatalf("value order violated: %v", vs)
			}
		}
	}
	if total != n {
		t.Fatalf("streamed %d pairs, want %d", total, n)
	}
}
