package shuffle

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// benchPairs builds nTasks task outputs totalling ~total pairs over
// nKeys distinct string keys, mimicking a map phase's pre-bucketed
// output. The same pair slices feed both merge strategies.
func benchPairs(total, nTasks, nKeys int) [][]Pair[string, int] {
	perTask := total / nTasks
	tasks := make([][]Pair[string, int], nTasks)
	for t := range tasks {
		ps := make([]Pair[string, int], perTask)
		for i := range ps {
			ps[i] = Pair[string, int]{fmt.Sprintf("key-%08d", (t*perTask+i)%nKeys), i}
		}
		tasks[t] = ps
	}
	return tasks
}

// BenchmarkMerge1MPairs compares the seed runtime's shuffle (every map
// task's output folded into one global map under a single goroutine,
// then all keys sorted) against the partitioned shuffle (P per-
// partition merges running in parallel, then per-partition sorted keys)
// on one million emitted pairs. This is the acceptance benchmark for
// the partitioned executor: the partitioned exchange must win.
func BenchmarkMerge1MPairs(b *testing.B) {
	const (
		total  = 1 << 20 // ~1.05M pairs
		nTasks = 64
		nKeys  = 50000
	)
	tasks := benchPairs(total, nTasks, nKeys)

	b.Run("seed-global-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged := make(map[string][]int)
			for _, ps := range tasks {
				for _, p := range ps {
					merged[p.Key] = append(merged[p.Key], p.Value)
				}
			}
			keys := make([]string, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			SortKeys(keys)
			if len(keys) != nKeys {
				b.Fatalf("got %d keys", len(keys))
			}
		}
	})

	b.Run(fmt.Sprintf("partitioned-P=%d", DefaultPartitions()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := New[string, int](Options{})
			bufs := make([]*TaskBuffer[string, int], len(tasks))
			for t, ps := range tasks {
				buf := s.NewTaskBuffer()
				for _, p := range ps {
					buf.Emit(p.Key, p.Value)
				}
				bufs[t] = buf
			}
			b.StartTimer()
			s.Merge(bufs)
			var keys int
			for p := 0; p < s.NumPartitions(); p++ {
				keys += len(s.Partition(p).SortedKeys())
			}
			if keys != nKeys {
				b.Fatalf("got %d keys", keys)
			}
		}
	})

	// The end-to-end comparison including the pre-bucketing the map side
	// pays for: bucket + merge vs. the single global map.
	b.Run("partitioned-incl-bucketing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New[string, int](Options{})
			bufs := make([]*TaskBuffer[string, int], len(tasks))
			for t, ps := range tasks {
				buf := s.NewTaskBuffer()
				for _, p := range ps {
					buf.Emit(p.Key, p.Value)
				}
				bufs[t] = buf
			}
			s.Merge(bufs)
			var keys int
			for p := 0; p < s.NumPartitions(); p++ {
				keys += len(s.Partition(p).SortedKeys())
			}
			if keys != nKeys {
				b.Fatalf("got %d keys", keys)
			}
		}
	})
}

// BenchmarkExternalShuffle is the acceptance benchmark for the
// disk-backed spill path: a dataset 8x the total memory budget is
// merged and fully streamed back, comparing all-in-memory execution
// against the external shuffle, with and without the combiner pushed
// down into sealing. Beyond ns/op it reports the memory story:
// retained-MB is the heap still live after the merge (the in-memory
// mode retains the whole dataset; the spill mode only the bounded live
// buffers — near-flat as the dataset grows), and live-pairs-peak
// proves the budget held. The disk story: spilled-MB is bytes written,
// disk-read-MB bytes read back by the streaming merge, and
// stats-read-MB the disk cost of the Stats profile — zero, since the
// counting pass merges the runs' resident indexes in memory. The
// combiner variant must show lower spilled-MB and disk-read-MB than
// the plain spill run: spilled volume tracks the post-combine
// communication cost.
func BenchmarkExternalShuffle(b *testing.B) {
	const (
		parts  = 8
		budget = 1024
		total  = 8 * parts * budget // 8x the total budget
		nTasks = 16
		nKeys  = 4096
	)
	tasks := benchPairs(total, nTasks, nKeys)

	sum := func(_ string, vs []int) []int {
		total := 0
		for _, v := range vs {
			total += v
		}
		return []int{total}
	}

	run := func(b *testing.B, opts Options, combine bool) {
		b.ReportAllocs()
		var retained, spilledMB, indexMB, statsReadMB, diskReadMB float64
		var peak int
		var streamed int64
		for i := 0; i < b.N; i++ {
			s := New[string, int](opts)
			if combine {
				s.SetCombiner(sum)
			}
			bufs := make([]*TaskBuffer[string, int], len(tasks))
			for t, ps := range tasks {
				buf := s.NewTaskBuffer()
				for _, p := range ps {
					buf.Emit(p.Key, p.Value)
				}
				bufs[t] = buf
			}
			bufsDone := func() { // release task buffers before measuring
				for i := range bufs {
					bufs[i] = nil
				}
			}
			if err := s.Merge(bufs); err != nil {
				b.Fatal(err)
			}
			bufsDone()
			var ms runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms)
			retained = float64(ms.HeapAlloc) / (1 << 20)

			readBefore := s.DiskBytesRead()
			st, err := s.Stats()
			if err != nil {
				b.Fatal(err)
			}
			if opts.MaxBufferedPairs > 0 && st.MaxLivePairs > opts.MaxBufferedPairs {
				b.Fatalf("live pairs %d exceeded budget %d", st.MaxLivePairs, opts.MaxBufferedPairs)
			}
			if opts.SpillDir != "" && st.BytesSpilled == 0 {
				b.Fatal("external mode never spilled")
			}
			peak = st.MaxLivePairs
			spilledMB = float64(st.BytesSpilled) / (1 << 20)
			indexMB = float64(st.IndexBytesSpilled) / (1 << 20)
			statsReadMB = float64(s.DiskBytesRead()-readBefore) / (1 << 20)

			// Stream every group back, counting pairs: the reduce-side
			// k-way merge is part of the cost being measured. With a
			// combiner the streamed pair count is the (smaller)
			// post-combine volume; the per-key sums are checked instead.
			var got, sums int64
			for p := 0; p < s.NumPartitions(); p++ {
				err := s.Partition(p).ForEachGroup(func(_ string, vs []int) error {
					got += int64(len(vs))
					for _, v := range vs {
						sums += int64(v)
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if !combine && got != total {
				b.Fatalf("streamed %d pairs, want %d", got, total)
			}
			var wantSum int64
			for _, ps := range tasks {
				for _, p := range ps {
					wantSum += int64(p.Value)
				}
			}
			if sums != wantSum {
				b.Fatalf("streamed value sum %d, want %d", sums, wantSum)
			}
			streamed += got
			diskReadMB = float64(s.DiskBytesRead()) / (1 << 20)
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(retained, "retained-MB")
		b.ReportMetric(spilledMB, "spilled-MB")
		b.ReportMetric(indexMB, "index-MB")
		b.ReportMetric(statsReadMB, "stats-read-MB")
		b.ReportMetric(diskReadMB, "disk-read-MB")
		b.ReportMetric(float64(peak), "live-pairs-peak")
		// Reduce-side throughput: values streamed back per second of
		// total benchmark time (build + merge + full streaming read).
		// With a combiner, values/s counts the (smaller) post-combine
		// volume, so it is not comparable across lanes; input-pairs/s
		// normalizes by the pairs fed in and is the cross-lane number.
		b.ReportMetric(float64(streamed)/b.Elapsed().Seconds(), "values/s")
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "input-pairs/s")
	}

	b.Run("in-memory", func(b *testing.B) {
		run(b, Options{Partitions: parts}, false)
	})
	// The two spill lanes pin key placement (WithSeed): their gated
	// spilled-MB depends on which keys share a partition — above all in
	// the combiner lane, where seal cancellation hinges on per-partition
	// group sizes — and the default per-process maphash seed moves it
	// ±25% between runs, which no tight benchcmp gate survives. Pinned,
	// the spill metrics are a pure function of the workload. The -seeded
	// suffix marks the measurement-condition change: benchcmp treats the
	// renamed lanes as new benchmarks, so the pinned constants are never
	// diffed against unpinned-era samples. The streaming lanes stay on
	// the default hasher: their values/s floor is a comparison against
	// maphash-placed history, and the seeded FNV fallback costs ~10% of
	// exactly the ingest throughput being gated (their spilled-MB is
	// already seal-point-deterministic, and benchcmp's 10% gate absorbs
	// its small cross-seed spread).
	b.Run("spill-to-disk-seeded", func(b *testing.B) {
		defer WithSeed(42)()
		run(b, Options{Partitions: parts, MaxBufferedPairs: budget, SpillDir: b.TempDir()}, false)
	})
	b.Run("spill-with-combiner-seeded", func(b *testing.B) {
		defer WithSeed(42)()
		run(b, Options{Partitions: parts, MaxBufferedPairs: budget, SpillDir: b.TempDir()}, true)
	})

	// The streaming data path on the same workload as spill-to-disk:
	// concurrent workers emit through an Ingester, flushing blocks into
	// the exchange while mapping, so sort+encode+spill overlap emission
	// instead of serializing behind a barrier. The acceptance gates:
	// ns/op at or below the barrier spill path, and whole-round peak
	// resident pairs within P*budget + workers*BlockPairs (asserted
	// in-benchmark and exported as peak-resident-pairs; compare with
	// the total pair count — streaming residency tracks the budget, not
	// the dataset). Tasks are finer than the barrier variants' (128 vs
	// 16): task granularity is the pipeline's scheduling knob — it sets
	// how much uncommitted in-flight output the ordering watermark
	// keeps staged — and the barrier path is insensitive to it.
	// untracedSpilled carries the streaming lane's spilled bytes into
	// the streaming-traced lane: with swap-based relief the seal points
	// are a pure function of the committed pair stream, so attaching the
	// recorder must not move a single spilled byte. The cross-lane
	// assert pins that invariant (the old fence-valve relief was
	// timing-sensitive and the recorder's overhead shifted it).
	var untracedSpilled int64
	streamBench := func(b *testing.B, traced bool) {
		const (
			workers    = 8
			blockPairs = 256
			nStream    = 128
		)
		streamTasks := benchPairs(total, nStream, nKeys)
		b.ReportAllocs()
		var spilledMB, diskReadMB, swapMB, reclaimedMB, overlapMs, finishMs float64
		var reduceRanges, rangeSkew float64
		var peakResident int64
		var streamed, wantSpilled int64
		// One recorder for the whole run: the rings are allocated here,
		// once, so the measured rounds see the recording cost alone, not
		// the allocation churn of fresh buffers (whose GC stalls the
		// fence pressure valve reads as absorption lag). Event rings are
		// pointer-free, so the live buffers are GC-noscan. The default
		// capacity holds every event of a default benchtime run; a long
		// -benchtime wraps the rings, which only trips the drop counter.
		var rec *obs.Recorder
		if traced {
			rec = obs.NewRecorder(0)
		}
		for i := -1; i < b.N; i++ {
			if i == 0 {
				// Rounds before this one (i = -1) are untimed warmup: a
				// fresh heap's tiny GC target makes the first round's
				// collection stalls read as absorption lag, which the
				// fence pressure valve can amplify into real (measured)
				// spill I/O. The warmup gets the timed rounds to the
				// steady-state heap directly.
				b.ResetTimer()
			}
			s := New[string, int](Options{
				Partitions: parts, MaxBufferedPairs: budget,
				BlockPairs: blockPairs, SpillDir: b.TempDir(),
				// A small rotation threshold so long rounds exercise
				// spool rotation (dead swap/compacted sections reclaimed
				// mid-round) under the measured workload.
				SpoolRotateBytes: 64 << 10,
				Recorder:         rec,
			})
			ing := s.NewIngester()
			var wg sync.WaitGroup
			taskCh := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for ti := range taskCh {
						tw := ing.Task(ti, 0)
						for _, p := range streamTasks[ti] {
							tw.Emit(p.Key, p.Value)
						}
						if err := tw.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			for ti := range streamTasks {
				taskCh <- ti
			}
			close(taskCh)
			wg.Wait()
			if err := ing.Finish(); err != nil {
				b.Fatal(err)
			}

			st, err := s.Stats()
			if err != nil {
				b.Fatal(err)
			}
			if st.MaxLivePairs > budget {
				b.Fatalf("live pairs %d exceeded budget %d", st.MaxLivePairs, budget)
			}
			bound := int64(parts*budget + workers*blockPairs)
			if st.PeakResidentPairs > bound {
				b.Fatalf("peak resident pairs %d exceeded bound %d (= P*budget + workers*blockPairs)",
					st.PeakResidentPairs, bound)
			}
			if st.BytesSpilled == 0 {
				b.Fatal("streaming mode never spilled")
			}
			// Spilled bytes are deterministic: seal points depend only on
			// the committed pair stream, never on relief timing, so every
			// iteration of this workload must spill the same bytes.
			if wantSpilled == 0 {
				wantSpilled = st.BytesSpilled
			} else if st.BytesSpilled != wantSpilled {
				b.Fatalf("spilled bytes drifted between iterations: %d then %d", wantSpilled, st.BytesSpilled)
			}
			peakResident = st.PeakResidentPairs
			spilledMB = float64(st.BytesSpilled) / (1 << 20)
			swapMB = float64(st.SwapBytes) / (1 << 20)
			reclaimedMB = float64(st.BytesReclaimed) / (1 << 20)
			overlapMs = float64(ing.OverlapNs()) / 1e6
			finishMs = float64(ing.FinishNs()) / 1e6

			// Range-split parallel read-back: plan key ranges per
			// partition from the resident footer indexes and read each
			// range as an independent unit on the worker pool — the
			// production reduce shape (PlanReduceRanges + RangeReader).
			// Each unit's batch merge reuses its value arena, so this is
			// also the allocation-light decode path.
			type rbUnit struct {
				p, rng int // rng < 0: whole-partition fallback
				kr     KeyRange[string]
			}
			var units []rbUnit
			var rangeUnits int
			var maxRangePairs, sumRangePairs int64
			for p := 0; p < s.NumPartitions(); p++ {
				krs := s.Partition(p).PlanReduceRanges(int64(total/parts/4), 4)
				if krs == nil {
					units = append(units, rbUnit{p: p, rng: -1})
					continue
				}
				for r, kr := range krs {
					units = append(units, rbUnit{p: p, rng: r, kr: kr})
					if kr.Pairs > maxRangePairs {
						maxRangePairs = kr.Pairs
					}
					sumRangePairs += kr.Pairs
					rangeUnits++
				}
			}
			// One refcounted reader per split partition: the first unit
			// in opens it, the last one out closes it, so at most
			// `workers` readers hold disk-read slots at any moment.
			type partRd struct {
				mu    sync.Mutex
				rr    *RangeReader[string, int]
				users int
			}
			rds := make([]partRd, parts)
			for ui := range units {
				if units[ui].rng >= 0 {
					rds[units[ui].p].users++
				}
			}
			counts := make([]int64, len(units))
			rerrs := make([]error, len(units))
			unitCh := make(chan int, len(units))
			var rwg sync.WaitGroup
			for w := 0; w < workers; w++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for ui := range unitCh {
						u := units[ui]
						var n int64
						count := func(_ string, vs []int) error {
							n += int64(len(vs))
							return nil
						}
						var err error
						if u.rng < 0 {
							err = s.Partition(u.p).ForEachGroupBatch(count)
						} else {
							rd := &rds[u.p]
							rd.mu.Lock()
							if rd.rr == nil {
								rd.rr, err = s.Partition(u.p).OpenRangeReader()
							}
							rr := rd.rr
							rd.mu.Unlock()
							if err == nil && rr != nil {
								err = rr.ForEachGroupRange(u.kr, true, count)
							}
							rd.mu.Lock()
							rd.users--
							if rd.users == 0 && rd.rr != nil {
								if cerr := rd.rr.Close(); cerr != nil && err == nil {
									err = cerr
								}
								rd.rr = nil
							}
							rd.mu.Unlock()
						}
						counts[ui], rerrs[ui] = n, err
					}
				}()
			}
			for ui := range units {
				unitCh <- ui
			}
			close(unitCh)
			rwg.Wait()
			var got int64
			for ui := range units {
				if rerrs[ui] != nil {
					b.Fatal(rerrs[ui])
				}
				got += counts[ui]
			}
			if got != total {
				b.Fatalf("streamed %d pairs, want %d", got, total)
			}
			reduceRanges = float64(rangeUnits)
			if rangeUnits > 0 {
				rangeSkew = float64(maxRangePairs) / (float64(sumRangePairs) / float64(rangeUnits))
			}
			if i >= 0 { // warmup pairs are outside the timed window
				streamed += got
			}
			diskReadMB = float64(s.DiskBytesRead()) / (1 << 20)
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		if traced {
			if untracedSpilled != 0 && wantSpilled != untracedSpilled {
				b.Fatalf("recorder changed spill behavior: traced round spilled %d bytes, untraced %d",
					wantSpilled, untracedSpilled)
			}
		} else {
			untracedSpilled = wantSpilled
		}
		b.ReportMetric(float64(peakResident), "peak-resident-pairs")
		b.ReportMetric(spilledMB, "spilled-MB")
		b.ReportMetric(swapMB, "swap-MB")
		b.ReportMetric(reclaimedMB, "reclaimed-MB")
		b.ReportMetric(diskReadMB, "disk-read-MB")
		b.ReportMetric(overlapMs, "overlap-ms")
		b.ReportMetric(finishMs, "finish-drain-ms")
		b.ReportMetric(reduceRanges, "reduce-ranges")
		b.ReportMetric(rangeSkew, "range-skew")
		b.ReportMetric(float64(streamed)/b.Elapsed().Seconds(), "values/s")
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "input-pairs/s")
		if traced {
			dropped := rec.Dropped()
			b.ReportMetric(float64(dropped), "dropped-events")
			if dropped == 0 { // wrap loses Ends by design; only then skip
				if err := obs.CheckBalanced(rec.Snapshot()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("streaming", func(b *testing.B) { streamBench(b, false) })
	// The recorder-overhead gate: same workload with every lifecycle
	// event recorded. Compare ns/op against the plain streaming run —
	// the acceptance bound is a regression of at most 5%.
	b.Run("streaming-traced", func(b *testing.B) { streamBench(b, true) })
}

// BenchmarkReduceMergeDecode compares the reduce-side decode paths on
// a one-million-pair spilled workload (16x the total memory budget):
// the legacy per-value decode (one framing read and one typed decode
// per value), the batch decode now behind ForEachGroup (one
// value-section read and one type dispatch per group), and the full
// batch contract (ForEachGroupBatch, which additionally reuses the
// decoded slice). Build and spill are identical untimed setup; only
// the streaming k-way merge is measured, so values/s compares the
// decode paths directly. This is the acceptance benchmark for the
// batch read path: batch must beat per-value.
func BenchmarkReduceMergeDecode(b *testing.B) {
	const (
		parts  = 8
		budget = 1024
		total  = 1 << 20 // 1M pairs
		nTasks = 16
		nKeys  = 4096
	)
	tasks := benchPairs(total, nTasks, nKeys)

	build := func(b *testing.B, perValue bool) *Shuffle[string, int] {
		b.Helper()
		s := New[string, int](Options{Partitions: parts, MaxBufferedPairs: budget, SpillDir: b.TempDir()})
		s.perValue = perValue
		bufs := make([]*TaskBuffer[string, int], len(tasks))
		for t, ps := range tasks {
			buf := s.NewTaskBuffer()
			for _, p := range ps {
				buf.Emit(p.Key, p.Value)
			}
			bufs[t] = buf
		}
		if err := s.Merge(bufs); err != nil {
			b.Fatal(err)
		}
		return s
	}

	for _, mode := range []string{"per-value", "batch", "batch-reduce"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			var streamed int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := build(b, mode == "per-value")
				b.StartTimer()
				var got int64
				count := func(_ string, vs []int) error {
					got += int64(len(vs))
					return nil
				}
				for p := 0; p < s.NumPartitions(); p++ {
					var err error
					if mode == "batch-reduce" {
						err = s.Partition(p).ForEachGroupBatch(count)
					} else {
						err = s.Partition(p).ForEachGroup(count)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if got != total {
					b.Fatalf("streamed %d pairs, want %d", got, total)
				}
				streamed += got
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(streamed)/b.Elapsed().Seconds(), "values/s")
		})
	}
}

// BenchmarkReduceRangeSkew pits whole-partition LPT scheduling against
// index-driven range units on a skewed shuffle: ~70% of all pairs land
// in one partition, so the whole-partition plan's makespan is pinned to
// the hot partition no matter how the workers are loaded, while range
// splitting cuts the hot partition into class-aligned units any worker
// can take. Both plans are balanced with the same LPT scheduler
// (core.BalanceLoads); the bench asserts the range plan's makespan is
// strictly smaller and reports both in pairs-per-busiest-worker. The
// timed section reads every range unit through RangeReader, so values/s
// tracks the split merge's real decode cost on skewed data.
func BenchmarkReduceRangeSkew(b *testing.B) {
	// Pinned placement makes the reported makespans exact constants
	// (the probe below adapts the key population to whatever seed is
	// in force, but the resulting group sizes — and so the planned
	// loads benchcmp compares — would still drift per process).
	defer WithSeed(42)()
	const (
		parts   = 4
		workers = 4
		budget  = 1024
		total   = 1 << 15
	)
	// Probe the partition hash for a key population that pins ~70% of
	// the pairs to partition 0.
	probe := New[string, int](Options{Partitions: parts})
	var hotKeys, coldKeys []string
	for i := 0; len(hotKeys) < 64 || len(coldKeys) < 192; i++ {
		k := fmt.Sprintf("skew-%06d", i)
		if probe.PartitionOf(k) == 0 {
			if len(hotKeys) < 64 {
				hotKeys = append(hotKeys, k)
			}
		} else if len(coldKeys) < 192 {
			coldKeys = append(coldKeys, k)
		}
	}
	if err := probe.Close(); err != nil {
		b.Fatal(err)
	}
	pairs := make([]Pair[string, int], total)
	for i := range pairs {
		if i%10 < 7 {
			pairs[i] = Pair[string, int]{hotKeys[i%len(hotKeys)], i}
		} else {
			pairs[i] = Pair[string, int]{coldKeys[i%len(coldKeys)], i}
		}
	}

	b.ReportAllocs()
	var streamed int64
	var lptMakespan, rangeMakespan int64
	var rangeUnits int
	var rangeSkew float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New[string, int](Options{Partitions: parts, MaxBufferedPairs: budget, SpillDir: b.TempDir()})
		buf := s.NewTaskBuffer()
		for _, p := range pairs {
			buf.Emit(p.Key, p.Value)
		}
		if err := s.Merge([]*TaskBuffer[string, int]{buf}); err != nil {
			b.Fatal(err)
		}

		// Whole-partition plan: LPT over per-partition pair counts.
		partLoads := make([]int, parts)
		for p := 0; p < parts; p++ {
			partLoads[p] = int(s.Partition(p).Pairs())
		}
		_, lptMakespan = core.BalanceLoads(partLoads, workers)

		// Range plan: the same scheduler over index-planned range units.
		type rbUnit struct {
			p, rng int // rng < 0: whole-partition unit
			kr     KeyRange[string]
		}
		var units []rbUnit
		var unitLoads []int
		var maxRangePairs, sumRangePairs int64
		rangeUnits = 0
		for p := 0; p < parts; p++ {
			krs := s.Partition(p).PlanReduceRanges(int64(total/(workers*2)), workers)
			if krs == nil {
				units = append(units, rbUnit{p: p, rng: -1})
				unitLoads = append(unitLoads, partLoads[p])
				continue
			}
			for r, kr := range krs {
				units = append(units, rbUnit{p: p, rng: r, kr: kr})
				unitLoads = append(unitLoads, int(kr.Pairs))
				if kr.Pairs > maxRangePairs {
					maxRangePairs = kr.Pairs
				}
				sumRangePairs += kr.Pairs
				rangeUnits++
			}
		}
		_, rangeMakespan = core.BalanceLoads(unitLoads, workers)
		if rangeMakespan >= lptMakespan {
			b.Fatalf("range plan makespan %d did not beat whole-partition LPT makespan %d",
				rangeMakespan, lptMakespan)
		}
		if rangeUnits > 0 {
			rangeSkew = float64(maxRangePairs) / (float64(sumRangePairs) / float64(rangeUnits))
		}

		readers := make([]*RangeReader[string, int], parts)
		b.StartTimer()
		var got int64
		count := func(_ string, vs []int) error {
			got += int64(len(vs))
			return nil
		}
		for _, u := range units {
			var err error
			if u.rng < 0 {
				err = s.Partition(u.p).ForEachGroupBatch(count)
			} else {
				if readers[u.p] == nil {
					if readers[u.p], err = s.Partition(u.p).OpenRangeReader(); err != nil {
						b.Fatal(err)
					}
				}
				err = readers[u.p].ForEachGroupRange(u.kr, true, count)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for _, rr := range readers {
			if rr != nil {
				if err := rr.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if got != total {
			b.Fatalf("read %d pairs, want %d", got, total)
		}
		streamed += got
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(lptMakespan), "lpt-makespan-pairs")
	b.ReportMetric(float64(rangeMakespan), "range-makespan-pairs")
	b.ReportMetric(float64(rangeUnits), "reduce-ranges")
	b.ReportMetric(rangeSkew, "range-skew")
	b.ReportMetric(float64(streamed)/b.Elapsed().Seconds(), "values/s")
}

// BenchmarkMergeScaling shows merge throughput as partitions scale from
// 1 (the seed's effective layout) to 4x cores.
func BenchmarkMergeScaling(b *testing.B) {
	const (
		total  = 1 << 19
		nTasks = 32
		nKeys  = 20000
	)
	tasks := benchPairs(total, nTasks, nKeys)
	for _, p := range []int{1, 4, runtime.GOMAXPROCS(0), DefaultPartitions()} {
		b.Run(fmt.Sprintf("P=%d", ceilPow2(p)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := New[string, int](Options{Partitions: p})
				bufs := make([]*TaskBuffer[string, int], len(tasks))
				for t, ps := range tasks {
					buf := s.NewTaskBuffer()
					for _, pr := range ps {
						buf.Emit(pr.Key, pr.Value)
					}
					bufs[t] = buf
				}
				b.StartTimer()
				s.Merge(bufs)
			}
		})
	}
}
