package shuffle

import (
	"fmt"
	"runtime"
	"testing"
)

// benchPairs builds nTasks task outputs totalling ~total pairs over
// nKeys distinct string keys, mimicking a map phase's pre-bucketed
// output. The same pair slices feed both merge strategies.
func benchPairs(total, nTasks, nKeys int) [][]Pair[string, int] {
	perTask := total / nTasks
	tasks := make([][]Pair[string, int], nTasks)
	for t := range tasks {
		ps := make([]Pair[string, int], perTask)
		for i := range ps {
			ps[i] = Pair[string, int]{fmt.Sprintf("key-%08d", (t*perTask+i)%nKeys), i}
		}
		tasks[t] = ps
	}
	return tasks
}

// BenchmarkMerge1MPairs compares the seed runtime's shuffle (every map
// task's output folded into one global map under a single goroutine,
// then all keys sorted) against the partitioned shuffle (P per-
// partition merges running in parallel, then per-partition sorted keys)
// on one million emitted pairs. This is the acceptance benchmark for
// the partitioned executor: the partitioned exchange must win.
func BenchmarkMerge1MPairs(b *testing.B) {
	const (
		total  = 1 << 20 // ~1.05M pairs
		nTasks = 64
		nKeys  = 50000
	)
	tasks := benchPairs(total, nTasks, nKeys)

	b.Run("seed-global-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged := make(map[string][]int)
			for _, ps := range tasks {
				for _, p := range ps {
					merged[p.Key] = append(merged[p.Key], p.Value)
				}
			}
			keys := make([]string, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			SortKeys(keys)
			if len(keys) != nKeys {
				b.Fatalf("got %d keys", len(keys))
			}
		}
	})

	b.Run(fmt.Sprintf("partitioned-P=%d", DefaultPartitions()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := New[string, int](Options{})
			bufs := make([]*TaskBuffer[string, int], len(tasks))
			for t, ps := range tasks {
				buf := s.NewTaskBuffer()
				for _, p := range ps {
					buf.Emit(p.Key, p.Value)
				}
				bufs[t] = buf
			}
			b.StartTimer()
			s.Merge(bufs)
			var keys int
			for p := 0; p < s.NumPartitions(); p++ {
				keys += len(s.Partition(p).SortedKeys())
			}
			if keys != nKeys {
				b.Fatalf("got %d keys", keys)
			}
		}
	})

	// The end-to-end comparison including the pre-bucketing the map side
	// pays for: bucket + merge vs. the single global map.
	b.Run("partitioned-incl-bucketing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New[string, int](Options{})
			bufs := make([]*TaskBuffer[string, int], len(tasks))
			for t, ps := range tasks {
				buf := s.NewTaskBuffer()
				for _, p := range ps {
					buf.Emit(p.Key, p.Value)
				}
				bufs[t] = buf
			}
			s.Merge(bufs)
			var keys int
			for p := 0; p < s.NumPartitions(); p++ {
				keys += len(s.Partition(p).SortedKeys())
			}
			if keys != nKeys {
				b.Fatalf("got %d keys", keys)
			}
		}
	})
}

// BenchmarkMergeScaling shows merge throughput as partitions scale from
// 1 (the seed's effective layout) to 4x cores.
func BenchmarkMergeScaling(b *testing.B) {
	const (
		total  = 1 << 19
		nTasks = 32
		nKeys  = 20000
	)
	tasks := benchPairs(total, nTasks, nKeys)
	for _, p := range []int{1, 4, runtime.GOMAXPROCS(0), DefaultPartitions()} {
		b.Run(fmt.Sprintf("P=%d", ceilPow2(p)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := New[string, int](Options{Partitions: p})
				bufs := make([]*TaskBuffer[string, int], len(tasks))
				for t, ps := range tasks {
					buf := s.NewTaskBuffer()
					for _, pr := range ps {
						buf.Emit(pr.Key, pr.Value)
					}
					bufs[t] = buf
				}
				b.StartTimer()
				s.Merge(bufs)
			}
		})
	}
}
