package lp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMinimization(t *testing.T) {
	// minimize x + y s.t. x + 2y >= 4, 3x + y >= 6: optimum at the
	// intersection (8/5, 6/5), value 14/5.
	sol, err := Solve(Problem{
		Minimize: []float64{1, 1},
		Constraints: []Constraint{
			{[]float64{1, 2}, GE, 4},
			{[]float64{3, 1}, GE, 6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2.8) {
		t.Errorf("value = %v, want 2.8", sol.Value)
	}
	if !approx(sol.X[0], 1.6) || !approx(sol.X[1], 1.2) {
		t.Errorf("x = %v, want (1.6, 1.2)", sol.X)
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: classic
	// optimum (2, 6) with value 36 — minimize the negation.
	sol, err := Solve(Problem{
		Minimize: []float64{-3, -5},
		Constraints: []Constraint{
			{[]float64{1, 0}, LE, 4},
			{[]float64{0, 2}, LE, 12},
			{[]float64{3, 2}, LE, 18},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, -36) {
		t.Errorf("value = %v, want -36", sol.Value)
	}
	if !approx(sol.X[0], 2) || !approx(sol.X[1], 6) {
		t.Errorf("x = %v, want (2, 6)", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// minimize x + 2y s.t. x + y = 10, x <= 6 ⇒ x=6, y=4, value 14.
	sol, err := Solve(Problem{
		Minimize: []float64{1, 2},
		Constraints: []Constraint{
			{[]float64{1, 1}, EQ, 10},
			{[]float64{1, 0}, LE, 6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 14) {
		t.Errorf("value = %v, want 14", sol.Value)
	}
}

func TestInfeasible(t *testing.T) {
	_, err := Solve(Problem{
		Minimize: []float64{1},
		Constraints: []Constraint{
			{[]float64{1}, GE, 5},
			{[]float64{1}, LE, 3},
		},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// minimize -x s.t. x >= 1: x can grow without bound.
	_, err := Solve(Problem{
		Minimize: []float64{-1},
		Constraints: []Constraint{
			{[]float64{1}, GE, 1},
		},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 is equivalent to y - x >= 2; minimize y gives x=0, y=2.
	sol, err := Solve(Problem{
		Minimize: []float64{0, 1},
		Constraints: []Constraint{
			{[]float64{1, -1}, LE, -2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2) {
		t.Errorf("value = %v, want 2", sol.Value)
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, err := Solve(Problem{
		Minimize:    []float64{1, 1},
		Constraints: []Constraint{{[]float64{1}, GE, 1}},
	})
	if err == nil {
		t.Error("want error on coefficient count mismatch")
	}
}

func TestDegenerateRedundantConstraints(t *testing.T) {
	// Duplicate constraints cause degeneracy; Bland's rule must not cycle.
	sol, err := Solve(Problem{
		Minimize: []float64{1, 1},
		Constraints: []Constraint{
			{[]float64{1, 1}, GE, 2},
			{[]float64{1, 1}, GE, 2},
			{[]float64{2, 2}, GE, 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2) {
		t.Errorf("value = %v, want 2", sol.Value)
	}
}

// Fractional edge cover LPs (minimize Σ x_e subject to, for each vertex,
// Σ_{e ∋ v} x_e ≥ 1) with known optima.
func coverLP(numVertices int, edges [][]int) Problem {
	p := Problem{Minimize: make([]float64, len(edges))}
	for j := range p.Minimize {
		p.Minimize[j] = 1
	}
	for v := 0; v < numVertices; v++ {
		row := make([]float64, len(edges))
		for j, e := range edges {
			for _, u := range e {
				if u == v {
					row[j] = 1
				}
			}
		}
		p.Constraints = append(p.Constraints, Constraint{row, GE, 1})
	}
	return p
}

func TestFractionalCoverTriangle(t *testing.T) {
	// Triangle query: 3 vertices, 3 edges; optimal fractional cover 3/2
	// with each x_e = 1/2 (the AGM bound's famous example).
	sol, err := Solve(coverLP(3, [][]int{{0, 1}, {1, 2}, {0, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1.5) {
		t.Errorf("triangle cover = %v, want 1.5", sol.Value)
	}
}

func TestFractionalCoverTwoPathQuery(t *testing.T) {
	// R(A,B) ⋈ S(B,C): two edges {A,B}, {B,C}; both endpoints A and C
	// force x = 1 each, so ρ = 2.
	sol, err := Solve(coverLP(3, [][]int{{0, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2) {
		t.Errorf("2-path cover = %v, want 2", sol.Value)
	}
}

func TestFractionalCoverChain(t *testing.T) {
	// Chain of N=5 binary relations over 6 vertices: ρ = ⌈(N+1)/2⌉ = 3.
	edges := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	sol, err := Solve(coverLP(6, edges))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 3) {
		t.Errorf("5-chain cover = %v, want 3", sol.Value)
	}
}

func TestFractionalCoverOddCycle(t *testing.T) {
	// 5-cycle: optimal fractional cover 5/2 with all x_e = 1/2.
	edges := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	sol, err := Solve(coverLP(5, edges))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2.5) {
		t.Errorf("5-cycle cover = %v, want 2.5", sol.Value)
	}
}

func TestFractionalCoverStar(t *testing.T) {
	// Star join with 4 dimension edges sharing a center: each leaf forces
	// its edge to 1, so ρ = 4 (the center is then over-covered).
	edges := [][]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	sol, err := Solve(coverLP(5, edges))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 4) {
		t.Errorf("4-star cover = %v, want 4", sol.Value)
	}
}

func TestFractionalCoverHyperedges(t *testing.T) {
	// One ternary relation covering all of {0,1,2}: ρ = 1.
	sol, err := Solve(coverLP(3, [][]int{{0, 1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1) {
		t.Errorf("single hyperedge cover = %v, want 1", sol.Value)
	}
}

// Property: the returned solution of a feasible cover LP is itself
// feasible and its value matches Σ x_e.
func TestPropertyCoverSolutionFeasible(t *testing.T) {
	f := func(maskRaw uint16, nRaw uint8) bool {
		n := int(nRaw%4) + 3 // 3..6 vertices
		// Build an edge set from the mask over all C(n,2) pairs; ensure
		// every vertex is covered by adding a fallback edge.
		var edges [][]int
		idx := 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if maskRaw&(1<<uint(idx%16)) != 0 {
					edges = append(edges, []int{u, v})
				}
				idx++
			}
		}
		covered := make([]bool, n)
		for _, e := range edges {
			for _, u := range e {
				covered[u] = true
			}
		}
		for u := 0; u < n; u++ {
			if !covered[u] {
				edges = append(edges, []int{u, (u + 1) % n})
			}
		}
		sol, err := Solve(coverLP(n, edges))
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
			sum += x
		}
		if !approx(sum, sol.Value) {
			return false
		}
		for v := 0; v < n; v++ {
			cov := 0.0
			for j, e := range edges {
				for _, u := range e {
					if u == v {
						cov += sol.X[j]
					}
				}
			}
			if cov < 1-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
