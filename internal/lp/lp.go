// Package lp implements a small dense two-phase primal simplex solver for
// linear programs, sufficient to compute the optimal fractional edge
// covers of query hypergraphs that Section 5.5 of the paper takes from
// Atserias, Grohe and Marx [6] (the parameter ρ in Table 1).
//
// The solver handles minimization with ≤, ≥ and = constraints and
// non-negative variables, uses Bland's rule to prevent cycling, and
// reports infeasibility and unboundedness distinctly.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // Σ aᵢxᵢ ≤ rhs
	GE                 // Σ aᵢxᵢ ≥ rhs
	EQ                 // Σ aᵢxᵢ = rhs
)

// Constraint is a single linear constraint over the problem's variables.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program: minimize Minimize·x subject to the
// constraints and x ≥ 0.
type Problem struct {
	Minimize    []float64
	Constraints []Constraint
}

// Solution holds an optimal vertex of the feasible region.
type Solution struct {
	X     []float64
	Value float64
}

// Sentinel errors distinguishing the two failure modes of a bounded
// feasible LP solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Solve runs the two-phase simplex method and returns an optimal solution,
// ErrInfeasible, or ErrUnbounded.
func Solve(p Problem) (Solution, error) {
	n := len(p.Minimize)
	m := len(p.Constraints)
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return Solution{}, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
	}

	// Normalize rows to RHS ≥ 0 by flipping signs (and senses).
	rows := make([]Constraint, m)
	for i, c := range p.Constraints {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		rel, rhs := c.Rel, c.RHS
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = Constraint{coeffs, rel, rhs}
	}

	// Column layout: n structural, then one slack/surplus per inequality,
	// then one artificial per GE/EQ row.
	numSlack := 0
	for _, c := range rows {
		if c.Rel != EQ {
			numSlack++
		}
	}
	numArt := 0
	for _, c := range rows {
		if c.Rel != LE {
			numArt++
		}
	}
	total := n + numSlack + numArt

	// tableau[i] is row i with total+1 entries (last is RHS).
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt := n
	artAt := n + numSlack
	artCols := make([]bool, total)
	for i, c := range rows {
		row := make([]float64, total+1)
		copy(row, c.Coeffs)
		row[total] = c.RHS
		switch c.Rel {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		}
		tab[i] = row
	}

	if numArt > 0 {
		// Phase 1: minimize the sum of artificial variables.
		obj := make([]float64, total)
		for j := range obj {
			if artCols[j] {
				obj[j] = 1
			}
		}
		val, err := simplex(tab, basis, obj, total)
		if err != nil {
			return Solution{}, err
		}
		if val > eps {
			return Solution{}, ErrInfeasible
		}
		// Drive any lingering artificial basics out of the basis.
		for i, b := range basis {
			if !artCols[b] {
				continue
			}
			pivoted := false
			for j := 0; j < total && !pivoted; j++ {
				if !artCols[j] && math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivoted = true
				}
			}
			// A row with only artificial support is redundant (all-zero);
			// its artificial stays basic at value 0, which is harmless as
			// long as phase 2 never lets it grow — enforced by keeping
			// the artificial columns out of the phase-2 objective and
			// barring them from entering (see simplex's blocked set).
		}
	}

	// Phase 2: original objective; artificial columns may not enter.
	obj := make([]float64, total)
	copy(obj, p.Minimize)
	blocked := artCols
	val, err := simplexBlocked(tab, basis, obj, total, blocked)
	if err != nil {
		return Solution{}, err
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	return Solution{X: x, Value: val}, nil
}

// simplex minimizes obj over the current tableau with no blocked columns.
func simplex(tab [][]float64, basis []int, obj []float64, total int) (float64, error) {
	return simplexBlocked(tab, basis, obj, total, nil)
}

// simplexBlocked runs the primal simplex with Bland's rule, never letting
// a blocked column enter the basis. Returns the optimal objective value.
func simplexBlocked(tab [][]float64, basis []int, obj []float64, total int, blocked []bool) (float64, error) {
	m := len(tab)
	// Reduced costs require the objective expressed in terms of nonbasic
	// variables: z[j] = obj[j] - Σᵢ obj[basis[i]]·tab[i][j].
	for iter := 0; iter < 10000; iter++ {
		// Compute reduced costs.
		var entering = -1
		for j := 0; j < total; j++ {
			if blocked != nil && blocked[j] {
				continue
			}
			rc := obj[j]
			for i := 0; i < m; i++ {
				rc -= obj[basis[i]] * tab[i][j]
			}
			if rc < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering == -1 {
			// Optimal: objective value is Σ obj[basis[i]]·rhs[i].
			val := 0.0
			for i := 0; i < m; i++ {
				val += obj[basis[i]] * tab[i][total]
			}
			return val, nil
		}
		// Ratio test with Bland's tie-break on smallest basis index.
		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][entering]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && (leaving == -1 || basis[i] < basis[leaving])) {
					bestRatio = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return 0, ErrUnbounded
		}
		pivot(tab, basis, leaving, entering)
	}
	return 0, errors.New("lp: iteration limit exceeded")
}

// pivot makes column col basic in row r.
func pivot(tab [][]float64, basis []int, r, col int) {
	m := len(tab)
	width := len(tab[r])
	p := tab[r][col]
	for j := 0; j < width; j++ {
		tab[r][j] /= p
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[r][j]
		}
	}
	basis[r] = col
}
