package lp

import (
	"fmt"
	"testing"
)

// BenchmarkSolveCover measures simplex throughput on fractional-cover LPs
// of growing size (cycle hypergraphs: n vertices, n edges).
func BenchmarkSolveCover(b *testing.B) {
	for _, n := range []int{5, 15, 40} {
		edges := make([][]int, n)
		for i := range edges {
			edges[i] = []int{i, (i + 1) % n}
		}
		p := coverLP(n, edges)
		b.Run(fmt.Sprintf("cycle-n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Solve(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveDense measures a dense random-ish LP via a fixed seedless
// construction (diagonal-dominant system).
func BenchmarkSolveDense(b *testing.B) {
	const n = 20
	p := Problem{Minimize: make([]float64, n)}
	for j := range p.Minimize {
		p.Minimize[j] = 1 + float64(j%3)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = float64((i*j)%5) / 4
		}
		row[i] = 2
		p.Constraints = append(p.Constraints, Constraint{row, GE, 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
