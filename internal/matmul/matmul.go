// Package matmul implements Section 6 of the paper: n×n matrix
// multiplication as a map-reduce problem. It provides the problem model
// (each output t_ik depends on row i of R and column k of S — 2n inputs),
// the lower bound r ≥ 2n²/q with its g(q) = q²/4n² rectangle argument, the
// matching one-phase tiling algorithm of Section 6.2, and the two-phase
// algorithm of Section 6.3 whose total communication 4n³/√q beats the
// one-phase 4n⁴/q for every q < n².
package matmul

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Matrix is a dense row-major n×m matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random fills a matrix with small random integers (kept integral so that
// reordered summations compare exactly).
func Random(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float64(rng.Intn(9) - 4)
	}
	return m
}

// At returns m[i][k].
func (m *Matrix) At(i, k int) float64 { return m.Data[i*m.Cols+k] }

// Set assigns m[i][k].
func (m *Matrix) Set(i, k int, v float64) { m.Data[i*m.Cols+k] = v }

// Mul is the serial baseline product m·b (ikj loop order).
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("matmul: %dx%d times %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r := m.At(i, j)
			if r == 0 {
				continue
			}
			for k := 0; k < b.Cols; k++ {
				out.Data[i*out.Cols+k] += r * b.At(j, k)
			}
		}
	}
	return out
}

// Equal compares two matrices within tolerance.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Problem is the matrix-multiplication problem in the Section 2 model for
// n×n matrices: |I| = 2n² (the entries of R and S), |O| = n², and output
// t_ik depends on the 2n inputs of row i of R and column k of S.
type Problem struct {
	N int
}

// NewProblem returns the problem for n×n matrices.
func NewProblem(n int) Problem { return Problem{N: n} }

// Name implements core.Problem.
func (p Problem) Name() string { return fmt.Sprintf("matmul(n=%d)", p.N) }

// NumInputs implements core.Problem.
func (p Problem) NumInputs() int { return 2 * p.N * p.N }

// NumOutputs implements core.Problem.
func (p Problem) NumOutputs() int { return p.N * p.N }

// RIndex and SIndex give the dense input indices of R's and S's entries.
func (p Problem) RIndex(i, j int) int { return i*p.N + j }

// SIndex gives the dense input index of S[j][k].
func (p Problem) SIndex(j, k int) int { return p.N*p.N + j*p.N + k }

// ForEachOutput implements core.Problem.
func (p Problem) ForEachOutput(fn func(inputs []int) bool) {
	buf := make([]int, 2*p.N)
	for i := 0; i < p.N; i++ {
		for k := 0; k < p.N; k++ {
			for j := 0; j < p.N; j++ {
				buf[j] = p.RIndex(i, j)
				buf[p.N+j] = p.SIndex(j, k)
			}
			if !fn(buf) {
				return
			}
		}
	}
}

// Recipe returns the Section 6.1 recipe: a reducer's covered outputs form
// a w×h rectangle with n(w+h) ≤ q inputs, maximized by the square
// w = h = q/2n, so g(q) = q²/4n²; with |I| = 2n², |O| = n² the bound is
// r ≥ 2n²/q.
func Recipe(n int) core.Recipe {
	nf := float64(n)
	return core.Recipe{
		ProblemName: fmt.Sprintf("matmul(n=%d)", n),
		G:           func(q float64) float64 { return q * q / (4 * nf * nf) },
		NumInputs:   2 * nf * nf,
		NumOutputs:  nf * nf,
	}
}

// LowerBound is the closed form r ≥ 2n²/q, valid for 2n ≤ q ≤ 2n².
func LowerBound(n int, q float64) float64 {
	return 2 * float64(n) * float64(n) / q
}

// OnePhaseCommunication is the total communication of the optimal
// one-phase algorithm at reducer size q: r·|I| = (2n²/q)·2n² = 4n⁴/q.
func OnePhaseCommunication(n int, q float64) float64 {
	nf := float64(n)
	return 4 * nf * nf * nf * nf / q
}

// TwoPhaseCommunication is the Section 6.3 total communication at
// first-phase reducer size q with the optimal 2:1 tiles (s = √q, t = √q/2):
// 2n³/s + n³/t = 4n³/√q.
func TwoPhaseCommunication(n int, q float64) float64 {
	nf := float64(n)
	return 4 * nf * nf * nf / math.Sqrt(q)
}

// CrossoverQ is the reducer size n² at which one- and two-phase
// communication coincide; for q < n² two-phase is strictly cheaper.
func CrossoverQ(n int) float64 { return float64(n) * float64(n) }

// OptimalST returns the Lagrange-optimal first-phase tile sides for
// reducer size q: s = √q rows/columns and t = √q/2 j-values (the 2:1
// aspect ratio of Section 6.3), so that 2st = q.
func OptimalST(q float64) (s, t float64) {
	s = math.Sqrt(q)
	return s, s / 2
}
