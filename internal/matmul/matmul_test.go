package matmul

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mr"
)

func TestSerialMul(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12] ⇒ ab = [58 64; 139 154].
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched dims should panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestProblemModel(t *testing.T) {
	p := NewProblem(4)
	if p.NumInputs() != 32 || p.NumOutputs() != 16 {
		t.Errorf("|I|=%d |O|=%d, want 32 and 16", p.NumInputs(), p.NumOutputs())
	}
	count := 0
	p.ForEachOutput(func(inputs []int) bool {
		if len(inputs) != 8 { // 2n = 8 inputs per output
			t.Fatalf("output depends on %d inputs, want 8", len(inputs))
		}
		count++
		return true
	})
	if count != 16 {
		t.Errorf("enumerated %d outputs, want 16", count)
	}
}

func TestRecipeAndLowerBound(t *testing.T) {
	n := 64
	rc := Recipe(n)
	for _, q := range []float64{128, 512, 8192} {
		want := LowerBound(n, q)
		if got := rc.LowerBound(q); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("recipe(%v) = %v, want %v", q, got, want)
		}
	}
	if !rc.GOverQMonotone(float64(2*n), float64(2*n*n), 100) {
		t.Error("g(q)/q must be monotone")
	}
	// Endpoints: q = 2n² ⇒ r = 1; q = 2n ⇒ r = n.
	if LowerBound(n, float64(2*n*n)) != 1 {
		t.Error("r(2n²) should be 1")
	}
	if LowerBound(n, float64(2*n)) != float64(n) {
		t.Error("r(2n) should be n")
	}
}

func TestOnePhaseSchemaValidAndMatchesBound(t *testing.T) {
	n := 8
	p := NewProblem(n)
	for _, s := range []int{1, 2, 4, 8} {
		schema, err := NewOnePhaseSchema(n, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(p, schema, schema.ReducerSize()); err != nil {
			t.Errorf("s=%d: invalid: %v", s, err)
		}
		st := core.Measure(p, schema)
		// r = n/s exactly, which equals the lower bound 2n²/q at q = 2sn.
		wantR := float64(n) / float64(s)
		if st.ReplicationRate != wantR {
			t.Errorf("s=%d: r = %v, want %v", s, st.ReplicationRate, wantR)
		}
		if lb := LowerBound(n, float64(schema.ReducerSize())); math.Abs(st.ReplicationRate-lb) > 1e-9 {
			t.Errorf("s=%d: r = %v does not match bound %v", s, st.ReplicationRate, lb)
		}
		if st.MaxReducerLoad != schema.ReducerSize() {
			t.Errorf("s=%d: load %d, want q = %d", s, st.MaxReducerLoad, schema.ReducerSize())
		}
	}
}

func TestOnePhaseSchemaRejectsBadS(t *testing.T) {
	if _, err := NewOnePhaseSchema(8, 3); err == nil {
		t.Error("s=3 does not divide 8")
	}
	if _, err := NewOnePhaseSchema(8, 0); err == nil {
		t.Error("s=0 rejected")
	}
}

func TestRunOnePhaseCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 12
	r := Random(n, n, rng)
	s := Random(n, n, rng)
	want := r.Mul(s)
	for _, ss := range []int{1, 2, 3, 4, 6, 12} {
		schema, err := NewOnePhaseSchema(n, ss)
		if err != nil {
			t.Fatal(err)
		}
		got, met, err := RunOnePhase(r, s, schema, mr.Config{})
		if err != nil {
			t.Fatalf("s=%d: %v", ss, err)
		}
		if !Equal(got, want, 1e-9) {
			t.Errorf("s=%d: product differs from serial", ss)
		}
		// Measured replication = n/s exactly.
		if rr := met.ReplicationRate(); rr != float64(n)/float64(ss) {
			t.Errorf("s=%d: measured r = %v, want %v", ss, rr, float64(n)/float64(ss))
		}
		if met.MaxReducerInput != int64(schema.ReducerSize()) {
			t.Errorf("s=%d: q = %d, want %d", ss, met.MaxReducerInput, schema.ReducerSize())
		}
	}
}

func TestRunOnePhaseRejectsWrongShape(t *testing.T) {
	schema, _ := NewOnePhaseSchema(8, 2)
	if _, _, err := RunOnePhase(NewMatrix(4, 4), NewMatrix(4, 4), schema, mr.Config{}); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestRunTwoPhaseCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 12
	r := Random(n, n, rng)
	s := Random(n, n, rng)
	want := r.Mul(s)
	for _, tc := range []struct{ s, t int }{{2, 1}, {4, 2}, {6, 3}, {2, 2}, {12, 6}} {
		schema, err := NewTwoPhaseSchema(n, tc.s, tc.t)
		if err != nil {
			t.Fatal(err)
		}
		got, pipe, err := RunTwoPhase(r, s, schema, mr.Config{})
		if err != nil {
			t.Fatalf("s=%d t=%d: %v", tc.s, tc.t, err)
		}
		if !Equal(got, want, 1e-9) {
			t.Errorf("s=%d t=%d: product differs from serial", tc.s, tc.t)
		}
		if len(pipe.Rounds) != 2 {
			t.Fatalf("want 2 rounds, got %d", len(pipe.Rounds))
		}
		// Phase communication matches the closed forms exactly.
		if got1 := pipe.Rounds[0].Metrics.PairsEmitted; got1 != schema.PredictedPhase1Communication() {
			t.Errorf("s=%d t=%d: phase-1 comm %d, want %d", tc.s, tc.t, got1, schema.PredictedPhase1Communication())
		}
		if got2 := pipe.Rounds[1].Metrics.PairsEmitted; got2 != schema.PredictedPhase2Communication() {
			t.Errorf("s=%d t=%d: phase-2 comm %d, want %d", tc.s, tc.t, got2, schema.PredictedPhase2Communication())
		}
		// First-phase reducers hold exactly q = 2st inputs.
		if q := pipe.Rounds[0].Metrics.MaxReducerInput; q != int64(schema.ReducerSize()) {
			t.Errorf("s=%d t=%d: q = %d, want %d", tc.s, tc.t, q, schema.ReducerSize())
		}
	}
}

func TestTwoPhaseSchemaRejectsBadParams(t *testing.T) {
	if _, err := NewTwoPhaseSchema(12, 5, 2); err == nil {
		t.Error("s=5 does not divide 12")
	}
	if _, err := NewTwoPhaseSchema(12, 4, 5); err == nil {
		t.Error("t=5 does not divide 12")
	}
}

func TestTwoPhaseBeatsOnePhaseBelowCrossover(t *testing.T) {
	n := 64
	for _, q := range []float64{256, 1024, float64(n*n) / 2} {
		one := OnePhaseCommunication(n, q)
		two := TwoPhaseCommunication(n, q)
		if two >= one {
			t.Errorf("q=%v < n²: two-phase %v should beat one-phase %v", q, two, one)
		}
	}
	// At the crossover q = n² they are equal.
	q := CrossoverQ(n)
	if math.Abs(OnePhaseCommunication(n, q)-TwoPhaseCommunication(n, q)) > 1e-6 {
		t.Error("communication should coincide at q = n²")
	}
	// Above the crossover, one-phase wins.
	if OnePhaseCommunication(n, 2*q) >= TwoPhaseCommunication(n, 2*q) {
		t.Error("one-phase should win for q > n²")
	}
}

func TestAspectRatioOptimum(t *testing.T) {
	// The paper's Lagrange claim: at fixed q = 2st, total communication
	// 2n³/s + n³/t is minimized at s = 2t. Sweep every integral tiling
	// with st = 18 on n = 36 and verify the measured minimum sits at the
	// 2:1 tile (s,t) = (6,3).
	rng := rand.New(rand.NewSource(41))
	n := 36
	r := Random(n, n, rng)
	s := Random(n, n, rng)
	want := r.Mul(s)

	type tile struct{ s, t int }
	tiles := []tile{{18, 1}, {9, 2}, {6, 3}, {3, 6}, {2, 9}, {1, 18}}
	best := tile{}
	var bestComm int64 = math.MaxInt64
	for _, tl := range tiles {
		schema, err := NewTwoPhaseSchema(n, tl.s, tl.t)
		if err != nil {
			t.Fatalf("(%d,%d): %v", tl.s, tl.t, err)
		}
		got, pipe, err := RunTwoPhase(r, s, schema, mr.Config{})
		if err != nil {
			t.Fatalf("(%d,%d): %v", tl.s, tl.t, err)
		}
		if !Equal(got, want, 1e-9) {
			t.Fatalf("(%d,%d): wrong product", tl.s, tl.t)
		}
		if comm := pipe.TotalPairsEmitted(); comm < bestComm {
			bestComm, best = comm, tl
		}
	}
	if best != (tile{6, 3}) {
		t.Errorf("minimum communication at (s,t) = (%d,%d), want the 2:1 tile (6,3)", best.s, best.t)
	}
}

func TestOptimalST(t *testing.T) {
	s, tt := OptimalST(64)
	if s != 8 || tt != 4 {
		t.Errorf("OptimalST(64) = (%v,%v), want (8,4)", s, tt)
	}
	// Constraint 2st = q holds.
	if 2*s*tt != 64 {
		t.Error("2st != q")
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 8
	r := Random(n, n, rng)
	s := Random(n, n, rng)
	want := r.Mul(s)
	schema, err := NewTwoPhaseSchema(n, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunTwoPhase(r, s, schema, mr.Config{FailureEveryN: 3, MaxRetries: 3, MapChunk: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want, 1e-9) {
		t.Error("faulty two-phase run differs from serial")
	}
}

// Property: one- and two-phase runs agree with the serial product for
// random sizes and tilings.
func TestPropertyPhasesAgree(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		sizes := []struct{ n, s, t int }{
			{4, 2, 1}, {4, 2, 2}, {6, 3, 1}, {6, 2, 3}, {8, 4, 2},
		}
		c := sizes[int(pick)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		r := Random(c.n, c.n, rng)
		s := Random(c.n, c.n, rng)
		want := r.Mul(s)
		one, err := NewOnePhaseSchema(c.n, c.s)
		if err != nil {
			return false
		}
		got1, _, err := RunOnePhase(r, s, one, mr.Config{})
		if err != nil || !Equal(got1, want, 1e-9) {
			return false
		}
		two, err := NewTwoPhaseSchema(c.n, c.s, c.t)
		if err != nil {
			return false
		}
		got2, _, err := RunTwoPhase(r, s, two, mr.Config{})
		return err == nil && Equal(got2, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the measured one-phase communication equals 4n⁴/q when s|n.
func TestPropertyOnePhaseCommFormula(t *testing.T) {
	f := func(pick uint8) bool {
		n := 12
		ss := []int{1, 2, 3, 4, 6}[int(pick)%5]
		schema, err := NewOnePhaseSchema(n, ss)
		if err != nil {
			return false
		}
		p := NewProblem(n)
		st := core.Measure(p, schema)
		q := float64(schema.ReducerSize())
		want := OnePhaseCommunication(n, q)
		return math.Abs(float64(st.TotalAssigned)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
