package matmul

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mr"
)

// entry is one matrix element tagged with its origin (0 = R, 1 = S).
type entry struct {
	Mat      int8
	Row, Col int
	Val      float64
}

// entries flattens R and S into the job's input records.
func entries(r, s *Matrix) []entry {
	out := make([]entry, 0, len(r.Data)+len(s.Data))
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < r.Cols; j++ {
			out = append(out, entry{0, i, j, r.At(i, j)})
		}
	}
	for j := 0; j < s.Rows; j++ {
		for k := 0; k < s.Cols; k++ {
			out = append(out, entry{1, j, k, s.At(j, k)})
		}
	}
	return out
}

// OnePhaseSchema is the Section 6.2 tiling: partition R's rows into n/s
// groups of s and S's columns likewise; one reducer per (row-group,
// column-group) pair with q = 2sn inputs and replication rate
// n/s = 2n²/q, exactly matching the lower bound.
type OnePhaseSchema struct {
	N, S int
}

// NewOnePhaseSchema validates that s divides n.
func NewOnePhaseSchema(n, s int) (OnePhaseSchema, error) {
	if s < 1 || n%s != 0 {
		return OnePhaseSchema{}, fmt.Errorf("matmul: s=%d must divide n=%d", s, n)
	}
	return OnePhaseSchema{N: n, S: s}, nil
}

// Groups is n/s.
func (o OnePhaseSchema) Groups() int { return o.N / o.S }

// ReducerSize is q = 2sn.
func (o OnePhaseSchema) ReducerSize() int { return 2 * o.S * o.N }

// NumReducers implements core.MappingSchema: (n/s)².
func (o OnePhaseSchema) NumReducers() int { return o.Groups() * o.Groups() }

// Assign implements core.MappingSchema over the Problem input indexing:
// R[i][j] goes to the n/s reducers (group(i), *); S[j][k] to (*, group(k)).
func (o OnePhaseSchema) Assign(in int) []int {
	g := o.Groups()
	n2 := o.N * o.N
	rs := make([]int, g)
	if in < n2 { // R[i][j]
		gi := (in / o.N) / o.S
		for h := 0; h < g; h++ {
			rs[h] = gi*g + h
		}
	} else { // S[j][k]
		gk := ((in - n2) % o.N) / o.S
		for gi := 0; gi < g; gi++ {
			rs[gi] = gi*g + gk
		}
	}
	return rs
}

var _ core.MappingSchema = OnePhaseSchema{}

// RunOnePhase executes the one-phase algorithm, returning the product and
// the round metrics. Each reducer computes its s×s output tile from its s
// rows of R and s columns of S.
func RunOnePhase(r, s *Matrix, schema OnePhaseSchema, cfg mr.Config) (*Matrix, mr.Metrics, error) {
	n, g, ss := schema.N, schema.Groups(), schema.S
	if r.Rows != n || r.Cols != n || s.Rows != n || s.Cols != n {
		return nil, mr.Metrics{}, fmt.Errorf("matmul: matrices must be %dx%d", n, n)
	}
	type out struct {
		I, K int
		V    float64
	}
	job := &mr.Job[entry, int, entry, out]{
		Name: fmt.Sprintf("matmul-1phase(n=%d,s=%d)", n, ss),
		Map: func(e entry, emit func(int, entry)) {
			if e.Mat == 0 {
				gi := e.Row / ss
				for h := 0; h < g; h++ {
					emit(gi*g+h, e)
				}
			} else {
				gk := e.Col / ss
				for gi := 0; gi < g; gi++ {
					emit(gi*g+gk, e)
				}
			}
		},
		Reduce: func(cell int, es []entry, emit func(out)) {
			gi, gk := cell/g, cell%g
			rBlock := make([]float64, ss*n) // rows gi*ss..gi*ss+ss-1
			sBlock := make([]float64, n*ss) // cols gk*ss..
			for _, e := range es {
				if e.Mat == 0 {
					rBlock[(e.Row-gi*ss)*n+e.Col] = e.Val
				} else {
					sBlock[e.Row*ss+(e.Col-gk*ss)] = e.Val
				}
			}
			for bi := 0; bi < ss; bi++ {
				for bk := 0; bk < ss; bk++ {
					sum := 0.0
					for j := 0; j < n; j++ {
						sum += rBlock[bi*n+j] * sBlock[j*ss+bk]
					}
					emit(out{gi*ss + bi, gk*ss + bk, sum})
				}
			}
		},
		Config: cfg,
	}
	outs, met, err := job.Run(entries(r, s))
	if err != nil {
		return nil, met, err
	}
	prod := NewMatrix(n, n)
	for _, o := range outs {
		prod.Set(o.I, o.K, o.V)
	}
	return prod, met, nil
}

// TwoPhaseSchema configures the Section 6.3 two-phase algorithm: the
// first phase tiles the i×k×j index cube with s×s×t blocks (one reducer
// per block, q = 2st inputs), computing partial sums over each block's t
// j-values; the second phase groups the partials by (i,k) and adds them.
type TwoPhaseSchema struct {
	N, S, T int
}

// NewTwoPhaseSchema validates that s and t divide n.
func NewTwoPhaseSchema(n, s, t int) (TwoPhaseSchema, error) {
	if s < 1 || n%s != 0 {
		return TwoPhaseSchema{}, fmt.Errorf("matmul: s=%d must divide n=%d", s, n)
	}
	if t < 1 || n%t != 0 {
		return TwoPhaseSchema{}, fmt.Errorf("matmul: t=%d must divide n=%d", t, n)
	}
	return TwoPhaseSchema{N: n, S: s, T: t}, nil
}

// ReducerSize is the first-phase q = 2st.
func (o TwoPhaseSchema) ReducerSize() int { return 2 * o.S * o.T }

// NumFirstPhaseReducers is (n/s)²·(n/t).
func (o TwoPhaseSchema) NumFirstPhaseReducers() int {
	g := o.N / o.S
	return g * g * (o.N / o.T)
}

// PredictedPhase1Communication is 2n³/s.
func (o TwoPhaseSchema) PredictedPhase1Communication() int64 {
	n := int64(o.N)
	return 2 * n * n * n / int64(o.S)
}

// PredictedPhase2Communication is n³/t.
func (o TwoPhaseSchema) PredictedPhase2Communication() int64 {
	n := int64(o.N)
	return n * n * n / int64(o.T)
}

// partial is a phase-1 output: a partial sum for output (I,K).
type partial struct {
	I, K int
	V    float64
}

// RunTwoPhase executes both rounds and returns the product together with
// the per-round pipeline metrics.
func RunTwoPhase(r, s *Matrix, schema TwoPhaseSchema, cfg mr.Config) (*Matrix, *mr.Pipeline, error) {
	n, ss, tt := schema.N, schema.S, schema.T
	if r.Rows != n || r.Cols != n || s.Rows != n || s.Cols != n {
		return nil, nil, fmt.Errorf("matmul: matrices must be %dx%d", n, n)
	}
	g := n / ss
	gj := n / tt
	phase1 := &mr.Job[entry, int, entry, partial]{
		Name: fmt.Sprintf("matmul-2phase-multiply(n=%d,s=%d,t=%d)", n, ss, tt),
		Map: func(e entry, emit func(int, entry)) {
			if e.Mat == 0 { // R[i][j]: fix i-group and j-group, all k-groups
				gi, gjj := e.Row/ss, e.Col/tt
				for gk := 0; gk < g; gk++ {
					emit((gi*g+gk)*gj+gjj, e)
				}
			} else { // S[j][k]: fix j-group and k-group, all i-groups
				gjj, gk := e.Row/tt, e.Col/ss
				for gi := 0; gi < g; gi++ {
					emit((gi*g+gk)*gj+gjj, e)
				}
			}
		},
		Reduce: func(cell int, es []entry, emit func(partial)) {
			gjj := cell % gj
			gk := (cell / gj) % g
			gi := cell / (gj * g)
			rB := make([]float64, ss*tt)
			sB := make([]float64, tt*ss)
			for _, e := range es {
				if e.Mat == 0 {
					rB[(e.Row-gi*ss)*tt+(e.Col-gjj*tt)] = e.Val
				} else {
					sB[(e.Row-gjj*tt)*ss+(e.Col-gk*ss)] = e.Val
				}
			}
			for bi := 0; bi < ss; bi++ {
				for bk := 0; bk < ss; bk++ {
					sum := 0.0
					for j := 0; j < tt; j++ {
						sum += rB[bi*tt+j] * sB[j*ss+bk]
					}
					emit(partial{gi*ss + bi, gk*ss + bk, sum})
				}
			}
		},
		Config: cfg,
	}
	phase2 := &mr.Job[partial, int, float64, partial]{
		Name: "matmul-2phase-sum",
		Map: func(p partial, emit func(int, float64)) {
			emit(p.I*n+p.K, p.V)
		},
		Reduce: func(ik int, vs []float64, emit func(partial)) {
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			emit(partial{ik / n, ik % n, sum})
		},
		Config: cfg,
	}
	// The two rounds run as a pipeline through the partitioned executor.
	outAny, pipe, err := mr.RunPipeline(entries(r, s), mr.RoundOf(phase1), mr.RoundOf(phase2))
	if err != nil {
		return nil, pipe, err
	}
	prod := NewMatrix(n, n)
	for _, o := range outAny.([]partial) {
		prod.Set(o.I, o.K, o.V)
	}
	return prod, pipe, nil
}
