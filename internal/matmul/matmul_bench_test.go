package matmul

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mr"
)

// BenchmarkSerial is the baseline dense multiply.
func BenchmarkSerial(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		rng := rand.New(rand.NewSource(1))
		x := Random(n, n, rng)
		y := Random(n, n, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.Mul(y)
			}
		})
	}
}

// BenchmarkOnePhase sweeps the tile size at n = 48.
func BenchmarkOnePhase(b *testing.B) {
	const n = 48
	rng := rand.New(rand.NewSource(2))
	x := Random(n, n, rng)
	y := Random(n, n, rng)
	for _, s := range []int{2, 8, 24} {
		schema, err := NewOnePhaseSchema(n, s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := RunOnePhase(x, y, schema, mr.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTwoPhase sweeps tiles at the same n.
func BenchmarkTwoPhase(b *testing.B) {
	const n = 48
	rng := rand.New(rand.NewSource(3))
	x := Random(n, n, rng)
	y := Random(n, n, rng)
	for _, tc := range []struct{ s, t int }{{8, 4}, {16, 8}, {24, 12}} {
		schema, err := NewTwoPhaseSchema(n, tc.s, tc.t)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("s=%d_t=%d", tc.s, tc.t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := RunTwoPhase(x, y, schema, mr.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
