// Package obs is the runtime's observability layer: a low-overhead
// event recorder for the round lifecycle (map tasks, block flushes,
// seals, fences, compactions, reduce merges, phase boundaries) plus two
// exporters — Chrome trace-event JSON (Perfetto-loadable timelines, one
// lane per worker and per partition) and a Prometheus text-format
// metrics registry with an optional HTTP endpoint.
//
// The recorder is built for the shuffle's hot path:
//
//   - Emitting an event is one atomic slot reservation plus one struct
//     store into a pre-allocated ring — no locks, no allocation, no
//     formatting. Event arguments are two raw int64s whose meaning is
//     fixed per Op; strings never enter the hot path.
//   - A nil *Recorder (and the nil *Ring it hands out) is a supported
//     fast path: every emit method is a nil-check and return, so an
//     uninstrumented run pays one predictable branch per call site and
//     nothing else. Instrumented code never guards call sites itself.
//   - A full ring drops new events and counts them (Dropped) instead of
//     blocking or resizing: tracing must never stall the data path it
//     observes. Size rings for the round (Config in NewRecorder) when
//     completeness matters; the drop counter says when it didn't hold.
//
// Lanes group events the way the trace renders them: one ring per map
// or reduce worker, one per shuffle partition, one for the round
// driver. Lane creation (Recorder.Lane) locks and may allocate — do it
// at setup, keep the *Ring, emit through it. Span events (Begin/End)
// on one lane must nest; the runtime's emitters hold the partition lock
// around partition-lane spans and own their worker lane outright, so
// the invariant holds by construction. Snapshots (Snapshot, WriteTrace)
// are meant for quiescent recorders — after Finish/Run returns — and
// order each lane's events by timestamp.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies what an event describes. The two int64 arguments of an
// event have a fixed, per-Op meaning, documented here and rendered with
// the matching names by the trace exporter.
type Op uint8

const (
	opInvalid Op = iota

	// OpPhaseMap spans the whole map phase (with streaming ingestion:
	// mapping plus the Finish drain). Round lane. Begin A = task count.
	OpPhaseMap
	// OpPhaseProfile spans the shuffle Stats profiling pass. Round lane.
	OpPhaseProfile
	// OpPhaseReduce spans the reduce phase including output assembly.
	// Round lane. Begin A = partition count.
	OpPhaseReduce

	// OpMapTask spans one map task attempt. Worker lane. Begin A = task,
	// B = attempt; End A = pairs emitted, B = 1 on failure else 0.
	OpMapTask
	// OpReduceTask spans one reduce partition attempt. Worker lane.
	// Begin A = partition, B = attempt; End A = keys reduced, B = 1 on
	// failure else 0.
	OpReduceTask

	// OpBlockFlush marks one streaming block staged into a partition.
	// Partition lane, instant. A = task, B = pairs in the block.
	OpBlockFlush
	// OpSeal spans closing a partition's live run (to disk or to the
	// in-memory run list). Partition lane. Begin A = live pairs; End
	// A = pairs sealed, B = 1 on failure else 0.
	OpSeal
	// OpFence spans pressure-relief fencing of staged runs to the spool.
	// Partition lane. End A = pairs fenced, B = 1 on failure else 0.
	OpFence
	// OpFenceAbort marks a task attempt's staged data being discarded.
	// Partition lane, instant. A = task, B = attempt.
	OpFenceAbort
	// OpCompact spans a disk-run compaction. Partition lane. Begin
	// A = input runs; End A = output pairs, B = 1 on failure else 0.
	OpCompact
	// OpReduceMerge spans a reduce-time k-way merge holding its run
	// files open. Partition lane. Begin A = disk runs; End B = 1 on
	// failure else 0.
	OpReduceMerge
	// OpReduceRange spans one key-range unit of a split partition's
	// reduce merge. Range lane. Begin A = partition, B = range index;
	// End A = keys reduced, B = 1 on failure else 0.
	OpReduceRange

	// OpWorkerLife spans one worker process from spawn to exit. Proc
	// lane. Begin A = pid; End A = pid, B = 1 on unexpected death else 0.
	OpWorkerLife
	// OpProcMapTask spans one multi-process map assignment, grant to
	// verdict. Proc lane. Begin A = task, B = attempt; End A = task,
	// B = 1 if the attempt was refused/failed else 0.
	OpProcMapTask
	// OpProcReduceTask spans one multi-process reduce assignment. Proc
	// lane. Begin A = partition, B = attempt; End A = partition, B = 1 on
	// refusal/failure else 0.
	OpProcReduceTask
	// OpLeaseExpire marks a task lease fenced by the TTL sweeper. Proc
	// lane, instant. A = task (negative-1-minus-partition for reduce),
	// B = attempt.
	OpLeaseExpire
	// OpWorkerDeath marks a worker process exiting while the job still
	// needed it. Proc lane, instant. A = pid, B = tasks fenced.
	OpWorkerDeath
	// OpSalvage marks a dead worker's committed map task adopted from its
	// manifest instead of re-executed. Proc lane, instant. A = task,
	// B = attempt.
	OpSalvage
	// OpStaleReport marks a report refused by attempt fencing. Proc lane,
	// instant. A = task (negative-1-minus-partition for reduce),
	// B = attempt.
	OpStaleReport

	numOps // count sentinel; keep last
)

// opNames maps each Op to its trace-event name and the names of its two
// arguments (begin args; ends reuse the same keys prefixed with "end_"
// contextually — the exporter labels them a and b).
var opNames = [numOps]struct{ name, a, b string }{
	OpPhaseMap:     {"phase:map", "tasks", ""},
	OpPhaseProfile: {"phase:profile", "", ""},
	OpPhaseReduce:  {"phase:reduce", "partitions", ""},
	OpMapTask:      {"map-task", "task", "attempt"},
	OpReduceTask:   {"reduce-task", "partition", "attempt"},
	OpBlockFlush:   {"block-flush", "task", "pairs"},
	OpSeal:         {"seal", "pairs", "err"},
	OpFence:        {"fence", "pairs", "err"},
	OpFenceAbort:   {"fence-abort", "task", "attempt"},
	OpCompact:      {"compact", "runs", "err"},
	OpReduceMerge:  {"reduce-merge", "runs", "err"},
	OpReduceRange:  {"reduce-range", "partition", "range"},

	OpWorkerLife:     {"worker-life", "pid", "died"},
	OpProcMapTask:    {"proc-map-task", "task", "attempt"},
	OpProcReduceTask: {"proc-reduce-task", "partition", "attempt"},
	OpLeaseExpire:    {"lease-expire", "task", "attempt"},
	OpWorkerDeath:    {"worker-death", "pid", "fenced"},
	OpSalvage:        {"salvage", "task", "attempt"},
	OpStaleReport:    {"stale-report", "task", "attempt"},
}

// Name returns the op's stable trace-event name.
func (op Op) Name() string {
	if op == opInvalid || op >= numOps {
		return fmt.Sprintf("op-%d", uint8(op))
	}
	return opNames[op].name
}

// Kind distinguishes span boundaries from point events.
type Kind uint8

const (
	KindBegin Kind = iota + 1
	KindEnd
	KindInstant
)

// Event is one recorded occurrence. TS is nanoseconds since the
// recorder was created, taken from the monotonic clock. A and B are the
// op-specific arguments.
type Event struct {
	TS   int64
	A, B int64
	Op   Op
	Kind Kind
}

// LaneKind groups lanes into trace "processes".
type LaneKind uint8

const (
	LaneRound     LaneKind = iota + 1 // the round driver
	LaneWorker                        // one map/reduce worker
	LanePartition                     // one shuffle partition
	LaneCompactor                     // one async compaction worker
	LaneProc                          // one worker *process* (multi-process mode)
	LaneRange                         // one reduce key-range unit (split partitions)
)

func (k LaneKind) String() string {
	switch k {
	case LaneRound:
		return "round"
	case LaneWorker:
		return "worker"
	case LanePartition:
		return "partition"
	case LaneCompactor:
		return "compactor"
	case LaneProc:
		return "proc-worker"
	case LaneRange:
		return "reduce-range"
	default:
		return fmt.Sprintf("lane-kind-%d", uint8(k))
	}
}

// DefaultRingCap is the per-lane event capacity when NewRecorder is
// given a non-positive one: enough for every seal, fence, compaction
// and merge of a large round, and for the block flushes of roughly
// 4M streamed pairs per partition at the default block size.
const DefaultRingCap = 4096

// Recorder hands out lanes and anchors their shared monotonic clock.
// A nil *Recorder is valid everywhere: Lane returns a nil *Ring whose
// emit methods are no-ops.
type Recorder struct {
	start   time.Time // monotonic anchor; TS = time.Since(start)
	ringCap int

	mu    sync.Mutex
	lanes []*Ring
	index map[laneKey]*Ring
}

type laneKey struct {
	kind LaneKind
	id   int
}

// NewRecorder creates a recorder whose lanes hold ringCap events each
// (<= 0 selects DefaultRingCap).
func NewRecorder(ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Recorder{
		start:   time.Now(),
		ringCap: ringCap,
		index:   make(map[laneKey]*Ring),
	}
}

// now is the recorder's monotonic timestamp in nanoseconds.
func (r *Recorder) now() int64 { return time.Since(r.start).Nanoseconds() }

// Lane returns the ring for (kind, id), creating it on first use. On a
// nil recorder it returns nil — the no-op ring. Lane locks; call it at
// setup time and keep the result, not per event.
func (r *Recorder) Lane(kind LaneKind, id int) *Ring {
	if r == nil {
		return nil
	}
	key := laneKey{kind, id}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.index[key]; ok {
		return g
	}
	g := &Ring{
		rec:  r,
		kind: kind,
		id:   id,
		buf:  make([]Event, r.ringCap),
	}
	r.index[key] = g
	r.lanes = append(r.lanes, g)
	return g
}

// Dropped is the total number of events discarded across all lanes
// because their ring was full. Zero means the trace is complete.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	lanes := append([]*Ring(nil), r.lanes...)
	r.mu.Unlock()
	var n int64
	for _, g := range lanes {
		n += g.dropped.Load()
	}
	return n
}

// LaneSnapshot is one lane's recorded events, ordered by timestamp.
type LaneSnapshot struct {
	Kind    LaneKind
	ID      int
	Events  []Event
	Dropped int64
}

// Name is the lane's display name ("worker 3", "partition 0", "round").
func (ls LaneSnapshot) Name() string {
	if ls.Kind == LaneRound {
		return "round"
	}
	return fmt.Sprintf("%s %d", ls.Kind, ls.ID)
}

// Snapshot copies every lane's events, each lane sorted by timestamp
// (stable, so simultaneous events keep emission order). Lanes are
// ordered (kind, id). Take snapshots of quiescent recorders — after the
// round's Run/Finish returned — not concurrently with emitters.
func (r *Recorder) Snapshot() []LaneSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lanes := append([]*Ring(nil), r.lanes...)
	r.mu.Unlock()
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].kind != lanes[j].kind {
			return lanes[i].kind < lanes[j].kind
		}
		return lanes[i].id < lanes[j].id
	})
	out := make([]LaneSnapshot, 0, len(lanes))
	for _, g := range lanes {
		n := g.next.Load()
		if n > int64(len(g.buf)) {
			n = int64(len(g.buf))
		}
		evs := append([]Event(nil), g.buf[:n]...)
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		out = append(out, LaneSnapshot{
			Kind: g.kind, ID: g.id, Events: evs, Dropped: g.dropped.Load(),
		})
	}
	return out
}

// Ring is one lane's fixed-capacity event buffer. All emit methods are
// safe for concurrent use (each event reserves its own slot atomically)
// and are no-ops on a nil ring.
type Ring struct {
	rec  *Recorder
	kind LaneKind
	id   int

	next    atomic.Int64 // next free slot; beyond len(buf) counts drops
	dropped atomic.Int64
	buf     []Event
}

// emit is the hot path: one atomic add, one monotonic clock read, one
// struct store. A full ring counts the event as dropped and returns —
// it never blocks and never allocates.
func (g *Ring) emit(kind Kind, op Op, a, b int64) {
	if g == nil {
		return
	}
	i := g.next.Add(1) - 1
	if i >= int64(len(g.buf)) {
		g.dropped.Add(1)
		return
	}
	g.buf[i] = Event{TS: g.rec.now(), A: a, B: b, Op: op, Kind: kind}
}

// Begin opens a span. Spans on one lane must nest (close them in LIFO
// order); End closes the innermost open span of the op.
func (g *Ring) Begin(op Op, a, b int64) { g.emit(KindBegin, op, a, b) }

// End closes the innermost open span of op.
func (g *Ring) End(op Op, a, b int64) { g.emit(KindEnd, op, a, b) }

// Instant records a point event.
func (g *Ring) Instant(op Op, a, b int64) { g.emit(KindInstant, op, a, b) }

// Dropped is the number of events this lane discarded because its ring
// was full.
func (g *Ring) Dropped() int64 {
	if g == nil {
		return 0
	}
	return g.dropped.Load()
}

// Interval is one [Start, End) span in recorder nanoseconds.
type Interval struct{ Start, End int64 }

// SpanIntervals extracts the closed spans of the given ops from a
// snapshot, merged into a sorted, non-overlapping interval set across
// all lanes. Unclosed spans (dropped End events, rounds that died
// mid-span) are ignored.
func SpanIntervals(lanes []LaneSnapshot, ops ...Op) []Interval {
	want := make(map[Op]bool, len(ops))
	for _, op := range ops {
		want[op] = true
	}
	var raw []Interval
	for _, ls := range lanes {
		// Per-op begin stacks: spans of one op nest per lane.
		open := make(map[Op][]int64)
		for _, ev := range ls.Events {
			if !want[ev.Op] {
				continue
			}
			switch ev.Kind {
			case KindBegin:
				open[ev.Op] = append(open[ev.Op], ev.TS)
			case KindEnd:
				if st := open[ev.Op]; len(st) > 0 {
					raw = append(raw, Interval{st[len(st)-1], ev.TS})
					open[ev.Op] = st[:len(st)-1]
				}
			}
		}
	}
	return mergeIntervals(raw)
}

// mergeIntervals sorts and unions an interval set.
func mergeIntervals(in []Interval) []Interval {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Start < in[j].Start })
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// OverlapNs is the total time two merged interval sets overlap — e.g.
// map-task spans against seal/fence/compact spans, the realized
// pipelining the streaming path's SpillOverlapNs metric claims.
func OverlapNs(a, b []Interval) int64 {
	var total int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}
