package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Chrome trace-event export. The output is the JSON object format
// ({"traceEvents":[...]}) understood by Perfetto and chrome://tracing.
// Lanes map onto the viewer's process/thread hierarchy: each LaneKind
// is a "process" (round / workers / partitions) and each lane a named
// "thread" inside it, so map-task spans on worker lanes visually
// overlap seal/fence/compact spans on partition lanes — SpillOverlapNs
// as geometry instead of a scalar.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"` // microseconds
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func lanePID(kind LaneKind) int { return int(kind) }

// WriteTrace exports a quiescent recorder's snapshot as Chrome
// trace-event JSON. Unmatched Begin events (spans cut off by a ring
// wrap or a crashed round) are dropped rather than emitted unbalanced,
// so the output always validates.
func WriteTrace(w io.Writer, r *Recorder) error {
	return writeTraceLanes(w, r.Snapshot())
}

// WriteTraceFile writes WriteTrace output to path atomically enough
// for post-mortems: the file appears complete or not at all (temp file
// + rename), so a worker process exporting its trace at exit can be
// killed without leaving a half-written JSON for tooling to choke on.
func WriteTraceFile(path string, r *Recorder) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".trace-*")
	if err != nil {
		return err
	}
	if err := WriteTrace(f, r); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}

func writeTraceLanes(w io.Writer, lanes []LaneSnapshot) error {
	var evs []traceEvent

	// Metadata: name the processes after the lane kinds…
	seenKind := map[LaneKind]bool{}
	for _, ls := range lanes {
		if !seenKind[ls.Kind] {
			seenKind[ls.Kind] = true
			evs = append(evs, traceEvent{
				Name: "process_name", Ph: "M", PID: lanePID(ls.Kind),
				Args: map[string]any{"name": ls.Kind.String() + "s"},
			})
		}
		// …and the threads after the lanes.
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", PID: lanePID(ls.Kind), TID: ls.ID,
			Args: map[string]any{"name": ls.Name()},
		})
	}

	for _, ls := range lanes {
		evs = append(evs, laneEvents(ls)...)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range evs {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// laneEvents converts one lane's snapshot, pairing Begin/End per op so
// only balanced spans are emitted.
func laneEvents(ls LaneSnapshot) []traceEvent {
	type openSpan struct {
		idx int // index into out of the "B" event
	}
	var out []traceEvent
	open := map[Op][]openSpan{} // per-op stack of emitted B events
	for _, ev := range ls.Events {
		names := opNames[opInvalid]
		if ev.Op > opInvalid && ev.Op < numOps {
			names = opNames[ev.Op]
		}
		ts := float64(ev.TS) / 1e3
		switch ev.Kind {
		case KindBegin:
			te := traceEvent{
				Name: ev.Op.Name(), Ph: "B",
				PID: lanePID(ls.Kind), TID: ls.ID, TS: ts,
				Args: spanArgs(names.a, ev.A, names.b, ev.B),
			}
			out = append(out, te)
			open[ev.Op] = append(open[ev.Op], openSpan{idx: len(out) - 1})
		case KindEnd:
			st := open[ev.Op]
			if len(st) == 0 {
				continue // End without Begin (wrapped ring): drop
			}
			open[ev.Op] = st[:len(st)-1]
			out = append(out, traceEvent{
				Name: ev.Op.Name(), Ph: "E",
				PID: lanePID(ls.Kind), TID: ls.ID, TS: ts,
				Args: spanArgs(names.a, ev.A, names.b, ev.B),
			})
		case KindInstant:
			out = append(out, traceEvent{
				Name: ev.Op.Name(), Ph: "i", S: "t",
				PID: lanePID(ls.Kind), TID: ls.ID, TS: ts,
				Args: spanArgs(names.a, ev.A, names.b, ev.B),
			})
		}
	}
	// Remove unmatched Begin events (in reverse index order so the
	// earlier indexes stay valid).
	var orphans []int
	for _, st := range open {
		for _, sp := range st {
			orphans = append(orphans, sp.idx)
		}
	}
	if len(orphans) > 0 {
		sort.Sort(sort.Reverse(sort.IntSlice(orphans)))
		for _, i := range orphans {
			out = append(out[:i], out[i+1:]...)
		}
	}
	return out
}

func spanArgs(aName string, a int64, bName string, b int64) map[string]any {
	var m map[string]any
	if aName != "" {
		m = map[string]any{aName: a}
	}
	if bName != "" {
		if m == nil {
			m = map[string]any{}
		}
		m[bName] = b
	}
	return m
}

// ValidateTrace checks an exported Chrome trace: it must parse, every
// lane's timestamps must be non-decreasing, and every lane's B/E span
// events must balance (matched names, LIFO order, nothing left open).
// It is strict on purpose — an unbalanced span is an instrumentation
// bug, not a rendering nuisance.
func ValidateTrace(data []byte) error {
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace does not parse: %w", err)
	}
	type lane struct{ pid, tid int }
	lastTS := map[lane]float64{}
	stacks := map[lane][]string{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		ln := lane{ev.PID, ev.TID}
		if prev, ok := lastTS[ln]; ok && ev.TS < prev {
			return fmt.Errorf("event %d (%s) on pid=%d tid=%d: ts %.3f < previous %.3f",
				i, ev.Name, ev.PID, ev.TID, ev.TS, prev)
		}
		lastTS[ln] = ev.TS
		switch ev.Ph {
		case "B":
			stacks[ln] = append(stacks[ln], ev.Name)
		case "E":
			st := stacks[ln]
			if len(st) == 0 {
				return fmt.Errorf("event %d: E %q on pid=%d tid=%d with no open span",
					i, ev.Name, ev.PID, ev.TID)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return fmt.Errorf("event %d: E %q on pid=%d tid=%d closes open span %q",
					i, ev.Name, ev.PID, ev.TID, top)
			}
			stacks[ln] = st[:len(st)-1]
		case "i":
			// fine
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
	}
	for ln, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("pid=%d tid=%d: %d span(s) left open, innermost %q",
				ln.pid, ln.tid, len(st), st[len(st)-1])
		}
	}
	return nil
}

// CheckBalanced verifies that every lane of a snapshot has balanced
// Begin/End events (matched ops, LIFO, none left open). Error-path
// tests use it to prove instrumentation closes its spans even when the
// instrumented operation fails.
func CheckBalanced(lanes []LaneSnapshot) error {
	for _, ls := range lanes {
		var stack []Op
		for i, ev := range ls.Events {
			switch ev.Kind {
			case KindBegin:
				stack = append(stack, ev.Op)
			case KindEnd:
				if len(stack) == 0 {
					return fmt.Errorf("lane %s event %d: End %s with no open span",
						ls.Name(), i, ev.Op.Name())
				}
				if top := stack[len(stack)-1]; top != ev.Op {
					return fmt.Errorf("lane %s event %d: End %s closes open %s",
						ls.Name(), i, ev.Op.Name(), top.Name())
				}
				stack = stack[:len(stack)-1]
			}
		}
		if len(stack) > 0 {
			return fmt.Errorf("lane %s: %d span(s) left open, innermost %s",
				ls.Name(), len(stack), stack[len(stack)-1].Name())
		}
	}
	return nil
}
