package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderNoops(t *testing.T) {
	var rec *Recorder
	lane := rec.Lane(LaneWorker, 0)
	if lane != nil {
		t.Fatalf("nil recorder returned non-nil lane")
	}
	// All of these must be safe no-ops.
	lane.Begin(OpMapTask, 1, 2)
	lane.End(OpMapTask, 0, 0)
	lane.Instant(OpBlockFlush, 3, 4)
	if got := lane.Dropped(); got != 0 {
		t.Fatalf("nil lane Dropped() = %d", got)
	}
	if got := rec.Dropped(); got != 0 {
		t.Fatalf("nil recorder Dropped() = %d", got)
	}
	if snap := rec.Snapshot(); snap != nil {
		t.Fatalf("nil recorder Snapshot() = %v", snap)
	}
}

func TestLaneReuse(t *testing.T) {
	rec := NewRecorder(16)
	a := rec.Lane(LanePartition, 3)
	b := rec.Lane(LanePartition, 3)
	if a != b {
		t.Fatalf("Lane(partition,3) not stable across calls")
	}
	if c := rec.Lane(LanePartition, 4); c == a {
		t.Fatalf("distinct lane ids share a ring")
	}
}

func TestRingWrapCountsDrops(t *testing.T) {
	const cap = 8
	rec := NewRecorder(cap)
	lane := rec.Lane(LaneWorker, 0)
	for i := 0; i < cap+5; i++ {
		lane.Instant(OpBlockFlush, int64(i), 0)
	}
	if got := lane.Dropped(); got != 5 {
		t.Fatalf("Dropped() = %d, want 5", got)
	}
	if got := rec.Dropped(); got != 5 {
		t.Fatalf("recorder Dropped() = %d, want 5", got)
	}
	snap := rec.Snapshot()
	if len(snap) != 1 || len(snap[0].Events) != cap {
		t.Fatalf("snapshot kept %d events, want %d", len(snap[0].Events), cap)
	}
}

func TestConcurrentEmitRace(t *testing.T) {
	rec := NewRecorder(64) // deliberately small: force wrap under contention
	const workers = 16
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lane := rec.Lane(LaneWorker, w%4) // share lanes across goroutines
		wg.Add(1)
		go func(lane *Ring, w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lane.Begin(OpMapTask, int64(i), 0)
				lane.Instant(OpBlockFlush, int64(i), 1)
				lane.End(OpMapTask, int64(i), 0)
			}
		}(lane, w)
	}
	wg.Wait()
	total := int64(0)
	for _, ls := range rec.Snapshot() {
		total += int64(len(ls.Events)) + ls.Dropped
	}
	if want := int64(workers * perWorker * 3); total != want {
		t.Fatalf("events+drops = %d, want %d", total, want)
	}
	if rec.Dropped() == 0 {
		t.Fatalf("expected drops with 64-slot rings and %d emits per lane", workers/4*perWorker*3)
	}
}

func TestSnapshotOrdersLanes(t *testing.T) {
	rec := NewRecorder(8)
	rec.Lane(LanePartition, 1).Instant(OpBlockFlush, 0, 0)
	rec.Lane(LaneWorker, 2).Instant(OpBlockFlush, 0, 0)
	rec.Lane(LaneRound, 0).Instant(OpBlockFlush, 0, 0)
	rec.Lane(LaneWorker, 0).Instant(OpBlockFlush, 0, 0)
	snap := rec.Snapshot()
	var got []string
	for _, ls := range snap {
		got = append(got, ls.Name())
	}
	want := []string{"round", "worker 0", "worker 2", "partition 1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("lane order = %v, want %v", got, want)
	}
}

func TestWriteTraceValidates(t *testing.T) {
	rec := NewRecorder(64)
	round := rec.Lane(LaneRound, 0)
	w0 := rec.Lane(LaneWorker, 0)
	p0 := rec.Lane(LanePartition, 0)

	round.Begin(OpPhaseMap, 4, 0)
	w0.Begin(OpMapTask, 0, 1)
	p0.Instant(OpBlockFlush, 0, 256)
	p0.Begin(OpSeal, 256, 0)
	p0.End(OpSeal, 256, 0)
	w0.End(OpMapTask, 256, 0)
	round.End(OpPhaseMap, 0, 0)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"map-task"`, `"seal"`, `"block-flush"`, `"phase:map"`, `"process_name"`, `"thread_name"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestWriteTraceDropsOrphanSpans(t *testing.T) {
	rec := NewRecorder(64)
	lane := rec.Lane(LanePartition, 0)
	lane.Begin(OpSeal, 1, 0) // never closed (simulates wrap losing the End)
	lane.Begin(OpCompact, 2, 0)
	lane.End(OpCompact, 2, 0)
	lane.End(OpFence, 0, 0) // End without Begin

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace with orphans should still validate: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), `"seal"`) {
		t.Errorf("orphan Begin leaked into trace:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), `"fence"`) {
		t.Errorf("orphan End leaked into trace:\n%s", buf.String())
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":      `not json`,
		"unbalanced":   `{"traceEvents":[{"name":"seal","ph":"B","pid":3,"tid":0,"ts":1}]}`,
		"crossed":      `{"traceEvents":[{"name":"a","ph":"B","pid":1,"tid":0,"ts":1},{"name":"b","ph":"B","pid":1,"tid":0,"ts":2},{"name":"a","ph":"E","pid":1,"tid":0,"ts":3}]}`,
		"nonmonotone":  `{"traceEvents":[{"name":"x","ph":"i","s":"t","pid":1,"tid":0,"ts":5},{"name":"y","ph":"i","s":"t","pid":1,"tid":0,"ts":4}]}`,
		"strayEnd":     `{"traceEvents":[{"name":"a","ph":"E","pid":1,"tid":0,"ts":1}]}`,
		"unknownPhase": `{"traceEvents":[{"name":"a","ph":"Q","pid":1,"tid":0,"ts":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: ValidateTrace accepted invalid trace", name)
		}
	}
	// Different lanes are independent: non-monotone across lanes is fine.
	ok := `{"traceEvents":[{"name":"x","ph":"i","s":"t","pid":1,"tid":0,"ts":5},{"name":"y","ph":"i","s":"t","pid":1,"tid":1,"ts":4}]}`
	if err := ValidateTrace([]byte(ok)); err != nil {
		t.Errorf("cross-lane timestamps wrongly rejected: %v", err)
	}
}

func TestSpanIntervalsAndOverlap(t *testing.T) {
	mk := func(pairs ...int64) []Interval {
		var out []Interval
		for i := 0; i < len(pairs); i += 2 {
			out = append(out, Interval{pairs[i], pairs[i+1]})
		}
		return out
	}
	a := mergeIntervals(mk(0, 10, 5, 12, 20, 30))
	if len(a) != 2 || a[0] != (Interval{0, 12}) || a[1] != (Interval{20, 30}) {
		t.Fatalf("mergeIntervals = %v", a)
	}
	b := mk(8, 25)
	if got := OverlapNs(a, b); got != 9 { // [8,12) + [20,25)
		t.Fatalf("OverlapNs = %d, want 9", got)
	}
	if got := OverlapNs(a, nil); got != 0 {
		t.Fatalf("OverlapNs vs empty = %d", got)
	}

	// Through a snapshot: two lanes, overlapping map-task and seal spans.
	rec := NewRecorder(16)
	w := rec.Lane(LaneWorker, 0)
	p := rec.Lane(LanePartition, 0)
	w.Begin(OpMapTask, 0, 0)
	p.Begin(OpSeal, 0, 0)
	p.End(OpSeal, 0, 0)
	w.End(OpMapTask, 0, 0)
	snap := rec.Snapshot()
	mapIv := SpanIntervals(snap, OpMapTask)
	sealIv := SpanIntervals(snap, OpSeal, OpFence, OpCompact)
	if len(mapIv) != 1 || len(sealIv) != 1 {
		t.Fatalf("intervals: map=%v seal=%v", mapIv, sealIv)
	}
	if ov := OverlapNs(mapIv, sealIv); ov <= 0 {
		t.Fatalf("nested spans should overlap, got %d", ov)
	}
}

func TestCheckBalanced(t *testing.T) {
	rec := NewRecorder(16)
	lane := rec.Lane(LanePartition, 0)
	lane.Begin(OpSeal, 0, 0)
	lane.End(OpSeal, 0, 0)
	if err := CheckBalanced(rec.Snapshot()); err != nil {
		t.Fatalf("balanced snapshot rejected: %v", err)
	}
	lane.Begin(OpCompact, 0, 0)
	if err := CheckBalanced(rec.Snapshot()); err == nil {
		t.Fatalf("open span not detected")
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("mr_pairs_emitted_total", "pairs emitted by map tasks")
	c.Add(42)
	c.Add(-5) // ignored: counters only go up
	g := reg.Gauge("mr_round_replication_rate", "replication rate r of the last round")
	g.Set(1.5)
	h := reg.Histogram("mr_reducer_input_size", "pairs per reducer (q distribution)", 4)
	h.ObserveN(1, 3)   // le=1
	h.ObserveN(2, 2)   // le=2
	h.ObserveN(5, 1)   // le=8
	h.ObserveN(100, 1) // overflows into last bucket (le=8)

	if reg.Counter("mr_pairs_emitted_total", "dup") != c {
		t.Fatalf("Counter not idempotent by name")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	wants := []string{
		"# TYPE mr_pairs_emitted_total counter",
		"mr_pairs_emitted_total 42",
		"# TYPE mr_round_replication_rate gauge",
		"mr_round_replication_rate 1.5",
		"# TYPE mr_reducer_input_size histogram",
		`mr_reducer_input_size_bucket{le="1"} 3`,
		`mr_reducer_input_size_bucket{le="2"} 5`,
		`mr_reducer_input_size_bucket{le="4"} 5`,
		`mr_reducer_input_size_bucket{le="8"} 7`,
		`mr_reducer_input_size_bucket{le="+Inf"} 7`,
		"mr_reducer_input_size_sum 112",
		"mr_reducer_input_size_count 7",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	names := reg.MetricNames()
	if len(names) != 3 || names[0] != "mr_pairs_emitted_total" {
		t.Errorf("MetricNames = %v", names)
	}
}

func TestNilMetricNoops(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	g.Set(1)
	h.ObserveN(1, 1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil metrics not zero")
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mr_rounds_total", "rounds executed").Add(1)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "mr_rounds_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ unexpected body:\n%.200s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars unexpected body:\n%.200s", body)
	}
}
