package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Prometheus text-format exposition, stdlib only. The registry is a
// deliberately small surface: counters (cumulative across rounds),
// gauges (last round's value), and log2-bucketed histograms (the
// paper's reducer-input q distribution). Metric values are updated with
// atomics so scrapes never contend with a running round.

// metric is anything the registry can render.
type metric interface {
	name() string
	help() string
	write(w io.Writer)
}

// Registry holds metrics in registration order and renders them in
// Prometheus text format.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	index   map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]metric)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.index[m.name()]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name()))
	}
	r.index[m.name()] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers (or returns the existing) cumulative counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	if m, ok := r.index[name]; ok {
		r.mu.Unlock()
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a counter", name))
		}
		return c
	}
	r.mu.Unlock()
	c := &Counter{nm: name, hp: help}
	r.register(c)
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	if m, ok := r.index[name]; ok {
		r.mu.Unlock()
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a gauge", name))
		}
		return g
	}
	r.mu.Unlock()
	g := &Gauge{nm: name, hp: help}
	r.register(g)
	return g
}

// Histogram registers (or returns the existing) log2-bucketed
// histogram with buckets le=1,2,4,…,2^(nBuckets-1),+Inf.
func (r *Registry) Histogram(name, help string, nBuckets int) *Histogram {
	r.mu.Lock()
	if m, ok := r.index[name]; ok {
		r.mu.Unlock()
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
		}
		return h
	}
	r.mu.Unlock()
	if nBuckets < 1 {
		nBuckets = 1
	}
	h := &Histogram{nm: name, hp: help, buckets: make([]atomic.Int64, nBuckets)}
	r.register(h)
	return h
}

// WritePrometheus renders every registered metric in text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, m := range metrics {
		m.write(bw)
	}
	return bw.Flush()
}

// Counter is a cumulative, monotonically increasing metric.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// Add increments the counter by d (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.nm, c.hp, c.nm, c.nm, c.v.Load())
}

// Gauge is a metric that can go up and down; rounds Set it to their
// latest value.
type Gauge struct {
	nm, hp string
	bits   atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", g.nm, g.hp, g.nm, g.nm, g.Value())
}

// Histogram counts observations into log2 buckets: bucket i has upper
// bound 2^i (le=1,2,4,…), with an implicit +Inf bucket. Built for
// integer size distributions (reducer input sizes), observed in bulk
// from a per-round profile.
type Histogram struct {
	nm, hp  string
	buckets []atomic.Int64 // raw per-bucket counts; write() accumulates
	sum     atomic.Int64
	count   atomic.Int64
}

// ObserveN records n observations of value v.
func (h *Histogram) ObserveN(v int64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := 0
	for ub := int64(1); ub < v && i < len(h.buckets)-1; ub <<= 1 {
		i++
	}
	h.buckets[i].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
}

// Observe records one observation of value v.
func (h *Histogram) Observe(v int64) { h.ObserveN(v, 1) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }
func (h *Histogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.nm, h.hp, h.nm)
	var cum int64
	ub := int64(1)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.nm, ub, cum)
		ub <<= 1
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, h.count.Load())
	fmt.Fprintf(w, "%s_sum %d\n", h.nm, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
}

// Server is a debug/metrics HTTP endpoint started by Serve.
type Server struct {
	Addr string // actual listen address (useful with ":0")
	ln   net.Listener
	srv  *http.Server
}

// Serve mounts /metrics (the registry), /debug/pprof/* and /debug/vars
// (expvar) on addr and serves in a background goroutine. Pass ":0" to
// pick a free port; read the chosen address from Server.Addr. The
// default http mux is untouched — handlers are registered on a private
// mux so tests can run many servers.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and releases its port.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// MetricNames returns the registered metric names in registration
// order (handy for docs and tests).
func (r *Registry) MetricNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		names[i] = m.name()
	}
	return names
}
