package mr

// RoundMetrics pairs a round name with the metrics it produced, so that
// multi-round pipelines (such as the two-phase matrix multiplication of
// Section 6.3 of the paper) can report per-phase and total communication.
type RoundMetrics struct {
	Name    string
	Metrics Metrics
}

// Pipeline accumulates the metrics of a sequence of rounds. The total
// communication of a pipeline is the sum over rounds of the pairs shuffled
// between that round's map and reduce phases, which is how the paper sums
// the cost of the two-phase matrix multiplication.
type Pipeline struct {
	Rounds []RoundMetrics
}

// Record appends one executed round.
func (p *Pipeline) Record(name string, m Metrics) {
	p.Rounds = append(p.Rounds, RoundMetrics{Name: name, Metrics: m})
}

// TotalCommunication is the total number of key-value pairs shuffled across
// all rounds.
func (p *Pipeline) TotalCommunication() int64 {
	var total int64
	for _, r := range p.Rounds {
		total += r.Metrics.PairsShuffled
	}
	return total
}

// TotalPairsEmitted is the total communication before combining.
func (p *Pipeline) TotalPairsEmitted() int64 {
	var total int64
	for _, r := range p.Rounds {
		total += r.Metrics.PairsEmitted
	}
	return total
}

// MaxReducerInput is the largest reducer input observed in any round.
func (p *Pipeline) MaxReducerInput() int64 {
	var max int64
	for _, r := range p.Rounds {
		if r.Metrics.MaxReducerInput > max {
			max = r.Metrics.MaxReducerInput
		}
	}
	return max
}

// Chain runs two jobs in sequence, feeding the first round's outputs to the
// second round, and records both rounds in the returned Pipeline.
func Chain[I any, K1 comparable, V1, M any, K2 comparable, V2, O any](
	first *Job[I, K1, V1, M],
	second *Job[M, K2, V2, O],
	inputs []I,
) ([]O, *Pipeline, error) {
	p := &Pipeline{}
	mid, m1, err := first.Run(inputs)
	if err != nil {
		return nil, p, err
	}
	p.Record(first.Name, m1)
	out, m2, err := second.Run(mid)
	if err != nil {
		return nil, p, err
	}
	p.Record(second.Name, m2)
	return out, p, nil
}
