package mr

import "fmt"

// RoundMetrics pairs a round name with the metrics it produced, so that
// multi-round pipelines (such as the two-phase matrix multiplication of
// Section 6.3 of the paper) can report per-phase and total communication.
type RoundMetrics struct {
	Name    string
	Metrics Metrics
}

// Pipeline accumulates the metrics of a sequence of rounds. The total
// communication of a pipeline is the sum over rounds of the pairs shuffled
// between that round's map and reduce phases, which is how the paper sums
// the cost of the two-phase matrix multiplication.
type Pipeline struct {
	Rounds []RoundMetrics
}

// Record appends one executed round.
func (p *Pipeline) Record(name string, m Metrics) {
	p.Rounds = append(p.Rounds, RoundMetrics{Name: name, Metrics: m})
}

// TotalCommunication is the total number of key-value pairs shuffled across
// all rounds.
func (p *Pipeline) TotalCommunication() int64 {
	var total int64
	for _, r := range p.Rounds {
		total += r.Metrics.PairsShuffled
	}
	return total
}

// TotalPairsEmitted is the total communication before combining.
func (p *Pipeline) TotalPairsEmitted() int64 {
	var total int64
	for _, r := range p.Rounds {
		total += r.Metrics.PairsEmitted
	}
	return total
}

// MaxReducerInput is the largest reducer input observed in any round.
func (p *Pipeline) MaxReducerInput() int64 {
	var max int64
	for _, r := range p.Rounds {
		if r.Metrics.MaxReducerInput > max {
			max = r.Metrics.MaxReducerInput
		}
	}
	return max
}

// Round is one typed job in an N-round pipeline, obtained from RoundOf.
// The interface hides the job's type parameters so rounds with different
// intermediate types can share one slice; RunPipeline checks at run time
// that each round's input type matches its predecessor's output.
type Round interface {
	roundName() string
	runAny(in any) (out any, m Metrics, err error)
}

type jobRound[I any, K comparable, V, O any] struct {
	j *Job[I, K, V, O]
}

func (r jobRound[I, K, V, O]) roundName() string { return r.j.Name }

func (r jobRound[I, K, V, O]) runAny(in any) (any, Metrics, error) {
	ins, ok := in.([]I)
	if !ok {
		var want []I
		return nil, Metrics{}, fmt.Errorf("mr: round %q expects %T, got %T", r.j.Name, want, in)
	}
	outs, m, err := r.j.Run(ins)
	return outs, m, err
}

// RoundOf wraps a typed Job for use in RunPipeline.
func RoundOf[I any, K comparable, V, O any](j *Job[I, K, V, O]) Round {
	return jobRound[I, K, V, O]{j: j}
}

// RunPipeline executes an N-round pipeline through the partitioned
// executor, feeding each round's outputs to the next and recording every
// completed round's metrics. A failed round is not recorded; the error
// and the rounds completed before it are returned. The final value is
// the last round's output slice (assert it back to its concrete []O).
func RunPipeline(input any, rounds ...Round) (any, *Pipeline, error) {
	p := &Pipeline{}
	cur := input
	for _, r := range rounds {
		out, m, err := r.runAny(cur)
		if err != nil {
			return nil, p, err
		}
		p.Record(r.roundName(), m)
		cur = out
	}
	return cur, p, nil
}

// Chain runs two jobs in sequence, feeding the first round's outputs to the
// second round, and records both rounds in the returned Pipeline. It is the
// typed two-round convenience over RunPipeline.
func Chain[I any, K1 comparable, V1, M any, K2 comparable, V2, O any](
	first *Job[I, K1, V1, M],
	second *Job[M, K2, V2, O],
	inputs []I,
) ([]O, *Pipeline, error) {
	out, p, err := RunPipeline(inputs, RoundOf(first), RoundOf(second))
	if err != nil {
		return nil, p, err
	}
	return out.([]O), p, nil
}
