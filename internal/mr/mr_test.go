package mr

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/obs"
)

// wordCountJob is the canonical word-count example used throughout the
// tests; the paper uses it in Example 2.5 to illustrate replication rate 1.
func wordCountJob(cfg Config) *Job[string, string, int, string] {
	return &Job[string, string, int, string]{
		Name: "wordcount",
		Map: func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		Reduce: func(w string, counts []int, emit func(string)) {
			total := 0
			for _, c := range counts {
				total += c
			}
			emit(w + "=" + itoa(total))
		},
		Config: cfg,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestWordCount(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"the fox jumps over the lazy dog",
	}
	out, met, err := wordCountJob(Config{Workers: 4}).Run(docs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{
		"brown=1", "dog=2", "fox=2", "jumps=1", "lazy=2", "over=1", "quick=1", "the=4",
	}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("outputs = %v, want %v", out, want)
	}
	if met.MapInputs != 3 {
		t.Errorf("MapInputs = %d, want 3", met.MapInputs)
	}
	if met.PairsEmitted != 14 {
		t.Errorf("PairsEmitted = %d, want 14", met.PairsEmitted)
	}
	if met.Reducers != 8 {
		t.Errorf("Reducers = %d, want 8", met.Reducers)
	}
	if met.MaxReducerInput != 4 { // "the" appears 4 times
		t.Errorf("MaxReducerInput = %d, want 4", met.MaxReducerInput)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	docs := []string{"b a c", "c b a", "a a b"}
	var first []string
	for trial := 0; trial < 10; trial++ {
		out, _, err := wordCountJob(Config{Workers: 8, MapChunk: 1}).Run(docs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if trial == 0 {
			first = out
			continue
		}
		if !reflect.DeepEqual(out, first) {
			t.Fatalf("trial %d: outputs %v differ from first run %v", trial, out, first)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	out, met, err := wordCountJob(Config{}).Run(nil)
	if err != nil {
		t.Fatalf("Run on empty input: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("outputs = %v, want empty", out)
	}
	if met.ReplicationRate() != 0 {
		t.Errorf("ReplicationRate = %v, want 0 on empty input", met.ReplicationRate())
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	// 100 copies of the same word in one document: the combiner should
	// collapse each map task's values for a key to a single partial count.
	doc := strings.Repeat("x ", 100)
	job := &Job[string, string, int, int]{
		Name: "combined-count",
		Map: func(d string, emit func(string, int)) {
			for _, w := range strings.Fields(d) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int) []int {
			total := 0
			for _, v := range vs {
				total += v
			}
			return []int{total}
		},
		Reduce: func(_ string, vs []int, emit func(int)) {
			total := 0
			for _, v := range vs {
				total += v
			}
			emit(total)
		},
		Config: Config{Workers: 2},
	}
	out, met, err := job.Run([]string{doc, doc})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 1 || out[0] != 200 {
		t.Fatalf("outputs = %v, want [200]", out)
	}
	if met.PairsEmitted != 200 {
		t.Errorf("PairsEmitted = %d, want 200", met.PairsEmitted)
	}
	if met.PairsShuffled >= met.PairsEmitted {
		t.Errorf("PairsShuffled = %d, want < PairsEmitted = %d", met.PairsShuffled, met.PairsEmitted)
	}
	if met.PairsShuffled < 1 || met.PairsShuffled > 8 {
		t.Errorf("PairsShuffled = %d, want one partial per map task (small)", met.PairsShuffled)
	}
}

func TestMaxReducerInputEnforced(t *testing.T) {
	job := wordCountJob(Config{MaxReducerInput: 3})
	_, _, err := job.Run([]string{"a a a a"})
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
	// At the limit exactly, the job must succeed.
	if _, _, err := wordCountJob(Config{MaxReducerInput: 4}).Run([]string{"a a a a"}); err != nil {
		t.Fatalf("at limit: %v", err)
	}
}

func TestFaultInjectionRecovers(t *testing.T) {
	docs := []string{"a b", "b c", "c d", "d e", "e f", "f g"}
	clean, _, err := wordCountJob(Config{Workers: 3}).Run(docs)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	faulty := wordCountJob(Config{Workers: 3, MapChunk: 1, FailureEveryN: 2, MaxRetries: 3})
	out, met, err := faulty.Run(docs)
	if err != nil {
		t.Fatalf("faulty run: %v", err)
	}
	if !reflect.DeepEqual(out, clean) {
		t.Errorf("faulty run output %v differs from clean %v", out, clean)
	}
	if met.MapRetries == 0 {
		t.Errorf("MapRetries = 0, want > 0 with FailureEveryN=2")
	}
	if met.ReduceRetries == 0 {
		t.Errorf("ReduceRetries = 0, want > 0 with FailureEveryN=2")
	}
	// Metrics must not double-count retried work.
	if met.PairsEmitted != 12 {
		t.Errorf("PairsEmitted = %d, want 12 (no double counting on retry)", met.PairsEmitted)
	}
}

func TestFaultInjectionExhaustsRetries(t *testing.T) {
	// FailureEveryN=1 fails every first attempt; MaxRetries=0 would default,
	// so use a job where every attempt of task 0 fails by failing attempts
	// 0.. up to the retry limit. With FailureEveryN=1 only attempt 0 fails,
	// so to force exhaustion we use MaxRetries < 1 via a direct check:
	// attempt 0 fails, and MaxRetries defaults to 2, so the job succeeds.
	job := wordCountJob(Config{FailureEveryN: 1})
	if _, _, err := job.Run([]string{"a"}); err != nil {
		t.Fatalf("retry should recover: %v", err)
	}
}

func TestReplicationRateWordCountIsOne(t *testing.T) {
	// Example 2.5: viewing word occurrences as the inputs, word count has
	// replication rate exactly 1.
	occurrences := []string{"the", "quick", "the", "fox", "fox", "fox"}
	job := &Job[string, string, int, string]{
		Name:   "occurrence-count",
		Map:    func(w string, emit func(string, int)) { emit(w, 1) },
		Reduce: func(w string, vs []int, emit func(string)) { emit(w) },
	}
	_, met, err := job.Run(occurrences)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r := met.ReplicationRate(); r != 1.0 {
		t.Errorf("ReplicationRate = %v, want exactly 1 (embarrassingly parallel)", r)
	}
}

func TestWorkerSkewMetrics(t *testing.T) {
	job := wordCountJob(Config{ReduceWorkersHint: 4})
	_, met, err := job.Run([]string{"a b c d e f g h i j k l"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(met.WorkerInputs) != 4 {
		t.Fatalf("WorkerInputs = %v, want 4 workers", met.WorkerInputs)
	}
	var total int64
	for _, w := range met.WorkerInputs {
		total += w
	}
	if total != met.TotalReducerInput {
		t.Errorf("sum(WorkerInputs) = %d, want %d", total, met.TotalReducerInput)
	}
}

func TestCustomPartitioner(t *testing.T) {
	job := wordCountJob(Config{ReduceWorkersHint: 2})
	job.Partition = func(string) int { return 0 } // everything to worker 0
	_, met, err := job.Run([]string{"a b c"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.WorkerInputs[0] != met.TotalReducerInput || met.WorkerInputs[1] != 0 {
		t.Errorf("WorkerInputs = %v, want all on worker 0", met.WorkerInputs)
	}
}

func TestIntKeysSortedNumerically(t *testing.T) {
	job := &Job[int, int, int, int]{
		Name:   "identity",
		Map:    func(x int, emit func(int, int)) { emit(x, x) },
		Reduce: func(k int, _ []int, emit func(int)) { emit(k) },
	}
	out, _, err := job.Run([]int{10, 2, 33, 4, 100, 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{2, 4, 5, 10, 33, 100}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("outputs = %v, want numerically sorted %v", out, want)
	}
}

func TestChainTwoRounds(t *testing.T) {
	// Round 1: per-document word counts; round 2: global sum per word.
	round1 := &Job[string, string, int, Pair[string, int]]{
		Name: "local-count",
		Map: func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		Reduce: func(w string, vs []int, emit func(Pair[string, int])) {
			emit(Pair[string, int]{w, len(vs)})
		},
	}
	round2 := &Job[Pair[string, int], string, int, string]{
		Name: "global-sum",
		Map: func(p Pair[string, int], emit func(string, int)) {
			emit(p.Key, p.Value)
		},
		Reduce: func(w string, vs []int, emit func(string)) {
			total := 0
			for _, v := range vs {
				total += v
			}
			emit(w + ":" + itoa(total))
		},
	}
	out, pipe, err := Chain(round1, round2, []string{"a b a", "b b c"})
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	want := []string{"a:2", "b:3", "c:1"}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("outputs = %v, want %v", out, want)
	}
	if len(pipe.Rounds) != 2 {
		t.Fatalf("Rounds = %d, want 2", len(pipe.Rounds))
	}
	if pipe.TotalCommunication() != pipe.Rounds[0].Metrics.PairsShuffled+pipe.Rounds[1].Metrics.PairsShuffled {
		t.Errorf("TotalCommunication mismatch")
	}
	if pipe.MaxReducerInput() < 1 {
		t.Errorf("MaxReducerInput = %d, want >= 1", pipe.MaxReducerInput())
	}
}

// TestPropertyWorkersInvariant: results must be identical regardless of
// worker count and chunk size.
func TestPropertyWorkersInvariant(t *testing.T) {
	f := func(words []uint8, workers uint8, chunk uint8) bool {
		docs := make([]string, 0, len(words))
		for _, w := range words {
			docs = append(docs, string(rune('a'+w%16)))
		}
		base, _, err := wordCountJob(Config{Workers: 1, MapChunk: 1}).Run(docs)
		if err != nil {
			return false
		}
		cfg := Config{Workers: int(workers%8) + 1, MapChunk: int(chunk%5) + 1}
		got, _, err := wordCountJob(cfg).Run(docs)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(base, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPairsEmittedEqualsSumOfMapEmissions: the replication-rate
// denominator and numerator must agree with a direct recount.
func TestPropertyPairsEmittedEqualsSumOfMapEmissions(t *testing.T) {
	f := func(seed []uint8) bool {
		docs := make([]string, 0, len(seed))
		total := 0
		for _, s := range seed {
			n := int(s % 7)
			docs = append(docs, strings.TrimSpace(strings.Repeat("w ", n)))
			total += n
		}
		_, met, err := wordCountJob(Config{}).Run(docs)
		if err != nil {
			return false
		}
		return met.PairsEmitted == int64(total) && met.MapInputs == int64(len(docs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMetricsMeanAndString(t *testing.T) {
	_, met, err := wordCountJob(Config{}).Run([]string{"a a b"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := met.MeanReducerInput(); got != 1.5 {
		t.Errorf("MeanReducerInput = %v, want 1.5", got)
	}
	if s := met.String(); !strings.Contains(s, "reducers=2") {
		t.Errorf("String() = %q, want it to mention reducers=2", s)
	}
}

func TestMetricsStringGolden(t *testing.T) {
	// The one-line summary is what operators grep out of logs; pin the
	// exact format so fields cannot silently drop out of it again.
	m := Metrics{
		MapInputs:         100,
		PairsEmitted:      400,
		PairsShuffled:     400,
		Reducers:          7,
		MaxReducerInput:   9,
		Partitions:        []engine.PartitionStat{{Pairs: 300}, {Pairs: 100}},
		BytesSpilled:      2048,
		DiskBytesRead:     1024,
		PeakResidentPairs: 256,
		SpillOverlapNs:    7_500_000,
		TaskRetries:       3,
		WorkerDeaths:      1,
		LeaseExpirations:  2,
	}
	want := "inputs=100 pairs=400 reducers=7 maxq=9 r=4.0000 skew=1.50 " +
		"spilled=2048B read=1024B peakResident=256 overlap=7ms " +
		"retries=3 deaths=1 leasesExpired=2"
	if got := m.String(); got != want {
		t.Errorf("String() =\n  %q\nwant\n  %q", got, want)
	}
}

func TestMetricsPublishTo(t *testing.T) {
	m := Metrics{
		MapInputs:        10,
		PairsEmitted:     40,
		PairsShuffled:    30,
		Reducers:         4,
		MaxReducerInput:  16,
		BytesSpilled:     512,
		TaskRetries:      5,
		WorkerDeaths:     2,
		LeaseExpirations: 3,
		SalvagedTasks:    1,
		ReducerInputLog2: []int64{1, 2, 0, 0, 1}, // 1×[1,2), 2×[2,4), 1×[16,32)
	}
	reg := obs.NewRegistry()
	m.PublishTo(reg)
	m.PublishTo(reg) // counters accumulate, gauges overwrite

	if got := reg.Counter("mr_pairs_emitted_total", "").Value(); got != 80 {
		t.Errorf("mr_pairs_emitted_total = %d, want 80", got)
	}
	if got := reg.Counter("mr_rounds_total", "").Value(); got != 2 {
		t.Errorf("mr_rounds_total = %d, want 2", got)
	}
	if got := reg.Gauge("mr_round_replication_rate", "").Value(); got != 4 {
		t.Errorf("mr_round_replication_rate = %v, want 4", got)
	}
	// Histogram: 4 groups per round, 8 after two publishes; values 1, 2,
	// 2, 16 land at le="1"→1, le="2"→3, le="16"→4 cumulatively per round.
	if got := reg.Histogram("mr_reducer_input_size", "", 32).Count(); got != 8 {
		t.Errorf("mr_reducer_input_size count = %d, want 8", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{
		"mr_pairs_emitted_total 80",
		"mr_round_max_reducer_input 16",
		`mr_reducer_input_size_bucket{le="2"} 6`,
		"mr_reducer_input_size_count 8",
		"mr_task_retries_total 10",
		"mr_worker_deaths_total 4",
		"mr_lease_expired_total 6",
		"mr_tasks_salvaged_total 2",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestRecorderRoundTraceIsValid(t *testing.T) {
	// A recorded round must export a well-formed trace: JSON that
	// parses, spans balanced per lane, timestamps monotone — and the
	// raw snapshot must balance too (every Begin has its End even
	// before export-time repair).
	rec := obs.NewRecorder(0)
	docs := []string{"a b c d", "b c d e", "c d e f", "d e f g"}
	out, met, err := wordCountJob(Config{Workers: 2, MemoryBudget: 2, Recorder: rec}).Run(docs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no outputs")
	}
	if err := obs.CheckBalanced(rec.Snapshot()); err != nil {
		t.Errorf("snapshot unbalanced: %v", err)
	}
	var buf strings.Builder
	if err := obs.WriteTrace(&buf, rec); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := obs.ValidateTrace([]byte(buf.String())); err != nil {
		t.Errorf("invalid trace: %v", err)
	}
	for _, want := range []string{"phase:map", "phase:reduce", "map-task", "reduce-task", "seal"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace missing %q spans", want)
		}
	}
	// The q distribution must cover all reducers: 7 distinct words.
	var groups int64
	for _, n := range met.ReducerInputLog2 {
		groups += n
	}
	if groups != met.Reducers {
		t.Errorf("ReducerInputLog2 sums to %d groups, want Reducers = %d", groups, met.Reducers)
	}
}

func TestSortedKeysStability(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := sortedKeys(m)
	if !sort.StringsAreSorted(got) {
		t.Errorf("sortedKeys = %v, want sorted", got)
	}
	mi := map[uint64]int{5: 1, 2: 2, 9: 3}
	gi := sortedKeys(mi)
	if !(gi[0] == 2 && gi[1] == 5 && gi[2] == 9) {
		t.Errorf("sortedKeys(uint64) = %v, want [2 5 9]", gi)
	}
}

func TestMapChunkLargerThanInput(t *testing.T) {
	out, met, err := wordCountJob(Config{MapChunk: 1000}).Run([]string{"a b", "b c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("outputs = %v, want 3 words", out)
	}
	if met.PairsEmitted != 4 {
		t.Errorf("PairsEmitted = %d, want 4", met.PairsEmitted)
	}
}

func TestMoreWorkersThanTasks(t *testing.T) {
	out, _, err := wordCountJob(Config{Workers: 64, MapChunk: 1}).Run([]string{"x y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("outputs = %v, want 2", out)
	}
}

func TestCombinerWithFaultInjection(t *testing.T) {
	// A retried map task must re-run its combiner without double counting.
	doc := strings.Repeat("w ", 40)
	job := &Job[string, string, int, int]{
		Name: "combined-faulty",
		Map: func(d string, emit func(string, int)) {
			for _, w := range strings.Fields(d) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int) []int {
			total := 0
			for _, v := range vs {
				total += v
			}
			return []int{total}
		},
		Reduce: func(_ string, vs []int, emit func(int)) {
			total := 0
			for _, v := range vs {
				total += v
			}
			emit(total)
		},
		Config: Config{FailureEveryN: 1, MaxRetries: 2, MapChunk: 10},
	}
	out, met, err := job.Run([]string{doc, doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 80 {
		t.Fatalf("out = %v, want [80]", out)
	}
	if met.MapRetries == 0 {
		t.Error("expected retries")
	}
	if met.PairsEmitted != 80 {
		t.Errorf("PairsEmitted = %d, want 80 (no double count across retries)", met.PairsEmitted)
	}
}

func TestReducerOverflowWithCombiner(t *testing.T) {
	// The limit applies to post-combine reducer input: combining 100
	// occurrences into a handful of partials must pass a small q.
	doc := strings.Repeat("z ", 100)
	job := &Job[string, string, int, int]{
		Name: "combined-limited",
		Map: func(d string, emit func(string, int)) {
			for _, w := range strings.Fields(d) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int) []int {
			total := 0
			for _, v := range vs {
				total += v
			}
			return []int{total}
		},
		Reduce: func(_ string, vs []int, emit func(int)) {
			total := 0
			for _, v := range vs {
				total += v
			}
			emit(total)
		},
		Config: Config{MaxReducerInput: 16, MapChunk: 10},
	}
	out, _, err := job.Run([]string{doc})
	if err != nil {
		t.Fatalf("combined values should fit q=16: %v", err)
	}
	if out[0] != 100 {
		t.Errorf("out = %v, want 100", out)
	}
}

func TestPipelineEmptyTotal(t *testing.T) {
	p := &Pipeline{}
	if p.TotalCommunication() != 0 || p.MaxReducerInput() != 0 || p.TotalPairsEmitted() != 0 {
		t.Error("empty pipeline should report zeros")
	}
}

func TestChainPropagatesFirstRoundError(t *testing.T) {
	bad := &Job[int, int, int, int]{
		Name:   "overflowing",
		Map:    func(x int, emit func(int, int)) { emit(0, x) },
		Reduce: func(_ int, vs []int, emit func(int)) { emit(len(vs)) },
		Config: Config{MaxReducerInput: 1},
	}
	second := &Job[int, int, int, int]{
		Name:   "never-runs",
		Map:    func(x int, emit func(int, int)) { emit(x, x) },
		Reduce: func(k int, _ []int, emit func(int)) { emit(k) },
	}
	_, pipe, err := Chain(bad, second, []int{1, 2, 3})
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
	if len(pipe.Rounds) != 0 {
		t.Errorf("failed first round must not be recorded, got %d rounds", len(pipe.Rounds))
	}
}

func TestRecordLoads(t *testing.T) {
	out, met, err := wordCountJob(Config{RecordLoads: true}).Run([]string{"a a b", "b c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("outputs = %v", out)
	}
	// Keys sorted a, b, c with loads 2, 2, 1.
	want := []int{2, 2, 1}
	if !reflect.DeepEqual(met.ReducerLoads, want) {
		t.Errorf("ReducerLoads = %v, want %v", met.ReducerLoads, want)
	}
	var sum int64
	for _, l := range met.ReducerLoads {
		sum += int64(l)
	}
	if sum != met.TotalReducerInput {
		t.Errorf("loads sum %d != TotalReducerInput %d", sum, met.TotalReducerInput)
	}
	// Off by default.
	_, met2, err := wordCountJob(Config{}).Run([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if met2.ReducerLoads != nil {
		t.Error("ReducerLoads should be nil without RecordLoads")
	}
}
