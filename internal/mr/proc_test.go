package mr

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestMain makes the test binary double as the ProcMode worker binary:
// jobs are registered for both roles, then MaybeProcWorker hijacks the
// process when the driver re-executed it with the worker environment.
func TestMain(m *testing.M) {
	RegisterProc(procWordcount)
	RegisterProc(procWordcountNoCombine)
	MaybeProcWorker()
	os.Exit(m.Run())
}

type procWC struct {
	Word  string
	Count int
}

var procWordcount = &Job[string, string, int, procWC]{
	Name: "mr-proc-wordcount",
	Map: func(line string, emit func(string, int)) {
		for _, w := range strings.Fields(line) {
			emit(w, 1)
		}
	},
	Combine: func(_ string, vs []int) []int {
		s := 0
		for _, v := range vs {
			s += v
		}
		return []int{s}
	},
	Reduce: func(k string, vs []int, emit func(procWC)) {
		s := 0
		for _, v := range vs {
			s += v
		}
		emit(procWC{Word: k, Count: s})
	},
}

var procWordcountNoCombine = &Job[string, string, int, procWC]{
	Name:   "mr-proc-wordcount-nocombine",
	Map:    procWordcount.Map,
	Reduce: procWordcount.Reduce,
}

func procLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%02d w%02d common", i%19, (i*5)%29)
	}
	return lines
}

// TestProcModeMatchesInProcess is the veneer-level determinism
// contract: the same Job, run in-process and across worker processes,
// produces identical outputs — same records, same order.
func TestProcModeMatchesInProcess(t *testing.T) {
	lines := procLines(90)

	inproc := *procWordcount
	wantOuts, _, err := inproc.Run(lines)
	if err != nil {
		t.Fatal(err)
	}

	pj := *procWordcount
	pj.Config = Config{
		Workers:     3,
		Partitions:  4,
		ProcMode:    true,
		ProcTimeout: 90 * time.Second,
	}
	outs, met, err := pj.Run(lines)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, wantOuts) {
		t.Fatalf("ProcMode output diverges from in-process output:\n got %d records\nwant %d records", len(outs), len(wantOuts))
	}

	if met.MapInputs != 90 || met.Outputs != int64(len(wantOuts)) {
		t.Errorf("logical metrics off: %+v", met)
	}
	// The shuffle crossed a real process boundary: spool bytes and
	// read-back are non-zero even though no SpillDir was configured.
	if met.BytesSpilled <= 0 || met.DiskBytesRead <= 0 {
		t.Errorf("boundary bytes not accounted: spilled=%d read=%d", met.BytesSpilled, met.DiskBytesRead)
	}
	if met.TaskRetries != 0 || met.WorkerDeaths != 0 || met.LeaseExpirations != 0 {
		t.Errorf("clean ProcMode run recorded faults: %+v", met)
	}
}

// TestProcModeReducerOverflow: the paper's q limit keeps its sentinel
// across the process boundary.
func TestProcModeReducerOverflow(t *testing.T) {
	pj := *procWordcountNoCombine
	pj.Config = Config{
		Workers:         2,
		Partitions:      3,
		MaxReducerInput: 5,
		ProcMode:        true,
		ProcTimeout:     90 * time.Second,
	}
	_, _, err := pj.Run(procLines(40)) // "common" appears 40 times
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
}
