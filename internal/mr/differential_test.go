package mr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Differential testing of the whole data path: for randomized
// workloads — random key/value types, partition counts, memory
// budgets, worker counts, chunk sizes, combiner on or off, batch
// reduce path on or off, streaming versus legacy shuffle ingestion —
// the executor's outputs and logical metrics must be identical to a
// naive single-map reference executor, and identical with disk spill
// forced on versus off. The physical profile (partition placement,
// makespan, spill boundaries) is allowed to vary; the paper's
// quantities are not.

// refResult is what the naive reference executor produces: every map
// ran in input order under one goroutine, groups reduced in canonical
// key order.
type refResult[O any] struct {
	outputs      []O
	pairsEmitted int64
	reducers     int64
	maxQ         int64
}

func referenceRun[I any, K comparable, V, O any](j *Job[I, K, V, O], inputs []I) refResult[O] {
	groups := make(map[K][]V)
	var res refResult[O]
	for _, in := range inputs {
		j.Map(in, func(k K, v V) {
			groups[k] = append(groups[k], v)
			res.pairsEmitted++
		})
	}
	res.reducers = int64(len(groups))
	for _, k := range sortedKeys(groups) {
		vs := groups[k]
		if q := int64(len(vs)); q > res.maxQ {
			res.maxQ = q
		}
		j.Reduce(k, vs, func(o O) { res.outputs = append(res.outputs, o) })
	}
	return res
}

// randomConfig draws execution parameters that must not change
// results, including the streaming-vs-legacy ingestion toggle.
func randomConfig(rng *rand.Rand) Config {
	partitions := []int{0, 1, 2, 4, 8, 32}[rng.Intn(6)]
	return Config{
		Workers:     1 + rng.Intn(4),
		MapChunk:    rng.Intn(6), // 0 = automatic
		Partitions:  partitions,
		LegacyMerge: rng.Intn(2) == 0,
	}
}

// checkDifferential runs one job family through the three-way
// comparison: reference vs executor, and spill-off vs spill-on.
// It returns the bytes spilled so callers can assert the spill path
// was genuinely exercised across trials.
func checkDifferential[I any, K comparable, V, O any](
	t *testing.T, trial string,
	mk func(cfg Config) *Job[I, K, V, O],
	inputs []I, combiner bool, rng *rand.Rand, spillDir string,
) int64 {
	t.Helper()
	cfg := randomConfig(rng)
	ref := referenceRun(mk(cfg), inputs)

	out, met, err := mk(cfg).Run(inputs)
	if err != nil {
		t.Fatalf("%s: executor: %v", trial, err)
	}
	if !reflect.DeepEqual(out, ref.outputs) {
		t.Fatalf("%s: outputs diverge from reference\ngot  %v\nwant %v", trial, out, ref.outputs)
	}
	if met.PairsEmitted != ref.pairsEmitted || met.Reducers != ref.reducers {
		t.Fatalf("%s: logical metrics diverge: emitted %d/%d reducers %d/%d",
			trial, met.PairsEmitted, ref.pairsEmitted, met.Reducers, ref.reducers)
	}
	if met.ReplicationRate() != 0 && met.MapInputs != int64(len(inputs)) {
		t.Fatalf("%s: MapInputs = %d, want %d", trial, met.MapInputs, len(inputs))
	}
	if !combiner {
		// Without a combiner the shuffle is the raw emission stream.
		if met.PairsShuffled != ref.pairsEmitted || met.MaxReducerInput != ref.maxQ {
			t.Fatalf("%s: shuffled %d (want %d), max q %d (want %d)",
				trial, met.PairsShuffled, ref.pairsEmitted, met.MaxReducerInput, ref.maxQ)
		}
	}

	// Spill forced on: identical outputs and logical metrics.
	spillCfg := cfg
	spillCfg.MemoryBudget = []int{1, 2, 7, 16}[rng.Intn(4)]
	spillCfg.SpillDir = spillDir
	outS, metS, err := mk(spillCfg).Run(inputs)
	if err != nil {
		t.Fatalf("%s: spill run: %v", trial, err)
	}
	if !reflect.DeepEqual(outS, out) {
		t.Fatalf("%s: spill-on outputs diverge\ngot  %v\nwant %v", trial, outS, out)
	}
	if metS.PairsEmitted != met.PairsEmitted || metS.PairsShuffled != met.PairsShuffled ||
		metS.Reducers != met.Reducers || metS.MaxReducerInput != met.MaxReducerInput ||
		metS.ReplicationRate() != met.ReplicationRate() {
		t.Fatalf("%s: spill-on logical metrics diverge\noff %+v\non  %+v", trial, met, metS)
	}
	if metS.MaxLivePairs > spillCfg.MemoryBudget {
		t.Fatalf("%s: MaxLivePairs %d exceeds budget %d", trial, metS.MaxLivePairs, spillCfg.MemoryBudget)
	}

	// Streaming vs legacy ingestion on the spilled config: flipping the
	// data path must change nothing observable — same outputs, same
	// logical metrics — even though spill boundaries, fencing and run
	// counts differ wildly between the two. (checkDifferential only
	// runs combiner-free jobs, so comparing PairsShuffled is sound; a
	// combiner's post-combine count depends on where the combiner ran,
	// which legitimately differs between the paths.)
	flipCfg := spillCfg
	flipCfg.LegacyMerge = !spillCfg.LegacyMerge
	outF, metF, err := mk(flipCfg).Run(inputs)
	if err != nil {
		t.Fatalf("%s: flipped-ingestion run: %v", trial, err)
	}
	if !reflect.DeepEqual(outF, outS) {
		t.Fatalf("%s: streaming/legacy outputs diverge (legacy=%v)\ngot  %v\nwant %v",
			trial, flipCfg.LegacyMerge, outF, outS)
	}
	if metF.PairsEmitted != metS.PairsEmitted || metF.PairsShuffled != metS.PairsShuffled ||
		metF.Reducers != metS.Reducers || metF.MaxReducerInput != metS.MaxReducerInput {
		t.Fatalf("%s: streaming/legacy logical metrics diverge\none %+v\nother %+v", trial, metS, metF)
	}
	if metF.MaxLivePairs > spillCfg.MemoryBudget {
		t.Fatalf("%s: flipped MaxLivePairs %d exceeds budget %d", trial, metF.MaxLivePairs, spillCfg.MemoryBudget)
	}

	// Range-split reduce on the spilled config: cutting heavy partitions
	// into concurrent key-range units must change nothing observable —
	// same outputs in the same order, same logical metrics.
	splitCfg := spillCfg
	splitCfg.ReduceSplitPairs = 1 + rng.Intn(8)
	splitCfg.ReduceRangeConcurrency = rng.Intn(5)
	outR, metR, err := mk(splitCfg).Run(inputs)
	if err != nil {
		t.Fatalf("%s: range-split run: %v", trial, err)
	}
	if !reflect.DeepEqual(outR, outS) {
		t.Fatalf("%s: range-split outputs diverge (split=%d conc=%d)\ngot  %v\nwant %v",
			trial, splitCfg.ReduceSplitPairs, splitCfg.ReduceRangeConcurrency, outR, outS)
	}
	if metR.PairsEmitted != metS.PairsEmitted || metR.PairsShuffled != metS.PairsShuffled ||
		metR.Reducers != metS.Reducers || metR.MaxReducerInput != metS.MaxReducerInput {
		t.Fatalf("%s: range-split logical metrics diverge\noff %+v\non  %+v", trial, metS, metR)
	}

	// Batch reduce path, randomly toggled: the arena-reuse contract must
	// change nothing observable, spill off and on. (The reduce funcs in
	// this suite render their values immediately, so they qualify.)
	if rng.Intn(2) == 0 {
		for variant, c := range map[string]Config{"spill-off": cfg, "spill-on": spillCfg} {
			jb := mk(c)
			jb.ReduceBatch = jb.Reduce
			outB, metB, err := jb.Run(inputs)
			if err != nil {
				t.Fatalf("%s: batch %s run: %v", trial, variant, err)
			}
			if !reflect.DeepEqual(outB, out) {
				t.Fatalf("%s: batch %s outputs diverge from per-value path\ngot  %v\nwant %v",
					trial, variant, outB, out)
			}
			if metB.PairsEmitted != met.PairsEmitted || metB.Reducers != met.Reducers ||
				metB.MaxReducerInput != met.MaxReducerInput {
				t.Fatalf("%s: batch %s logical metrics diverge\ngot  %+v\nwant %+v",
					trial, variant, metB, met)
			}
		}
	}
	return metS.BytesSpilled
}

// TestRangeSplitSkewedAndFaulted drives the split path hard on a
// workload with one dominant key: the hot partition must actually be
// cut into range units (ReduceRanges > 0), outputs must match the
// unsplit run exactly, and deterministic fault injection must retry
// range units to the same outputs.
func TestRangeSplitSkewedAndFaulted(t *testing.T) {
	inputs := make([]int, 2000)
	for i := range inputs {
		inputs[i] = i
	}
	mk := func(cfg Config) *Job[int, string, int, string] {
		return &Job[int, string, int, string]{
			Name: "range-skew",
			Map: func(x int, emit func(string, int)) {
				emit("hot", x) // every input hits one key
				emit(fmt.Sprintf("k%02d", x%50), x)
			},
			Reduce: func(k string, vs []int, emit func(string)) {
				emit(fmt.Sprint(k, len(vs), vs[0], vs[len(vs)-1]))
			},
			Config: cfg,
		}
	}
	base := Config{Workers: 4, Partitions: 4, MemoryBudget: 32, SpillDir: t.TempDir()}
	want, wantMet, err := mk(base).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	split := base
	split.ReduceSplitPairs = 64
	got, met, err := mk(split).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("range-split outputs diverge from whole-partition run")
	}
	if met.ReduceRanges == 0 {
		t.Fatal("hot partition was not split; ReduceRanges = 0")
	}
	if met.ReduceRangeSkew < 1 {
		t.Fatalf("ReduceRangeSkew = %v, want >= 1 when ranges exist", met.ReduceRangeSkew)
	}
	if met.Reducers != wantMet.Reducers || met.PairsShuffled != wantMet.PairsShuffled {
		t.Fatalf("logical metrics diverge: %+v vs %+v", met, wantMet)
	}

	faulted := split
	faulted.FailureEveryN = 2
	faulted.MaxRetries = 3
	gotF, metF, err := mk(faulted).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotF, want) {
		t.Fatal("range-split outputs diverge under fault injection")
	}
	if metF.ReduceRetries == 0 {
		t.Fatal("fault injection never retried a reduce unit")
	}
}

func TestDifferentialStringKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	dir := t.TempDir()
	var spilled int64
	for trial := 0; trial < 12; trial++ {
		dom := 1 + rng.Intn(30)
		inputs := make([]int, rng.Intn(240))
		for i := range inputs {
			inputs[i] = rng.Intn(1000)
		}
		mk := func(cfg Config) *Job[int, string, int, string] {
			return &Job[int, string, int, string]{
				Name: "diff-string",
				Map: func(x int, emit func(string, int)) {
					for j := 0; j <= x%3; j++ {
						emit(fmt.Sprintf("k%02d", (x+j)%dom), x*10+j)
					}
				},
				// Order-sensitive reduce: catches any value reordering.
				Reduce: func(k string, vs []int, emit func(string)) {
					emit(fmt.Sprint(k, vs))
				},
				Config: cfg,
			}
		}
		spilled += checkDifferential(t, fmt.Sprintf("string/%d", trial), mk, inputs, false, rng, dir)
	}
	if spilled == 0 {
		t.Error("no trial spilled to disk; the differential never exercised the external path")
	}
}

func TestDifferentialIntKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	dir := t.TempDir()
	var spilled int64
	for trial := 0; trial < 12; trial++ {
		dom := int64(1 + rng.Intn(40))
		inputs := make([]int64, rng.Intn(240))
		for i := range inputs {
			inputs[i] = rng.Int63n(100000)
		}
		mk := func(cfg Config) *Job[int64, int64, string, string] {
			return &Job[int64, int64, string, string]{
				Name: "diff-int",
				Map: func(x int64, emit func(int64, string)) {
					emit(x%dom, fmt.Sprintf("v%d", x))
					if x%2 == 0 {
						emit((x+1)%dom, fmt.Sprintf("w%d", x))
					}
				},
				Reduce: func(k int64, vs []string, emit func(string)) {
					emit(fmt.Sprint(k, ":", vs))
				},
				Config: cfg,
			}
		}
		spilled += checkDifferential(t, fmt.Sprintf("int64/%d", trial), mk, inputs, false, rng, dir)
	}
	if spilled == 0 {
		t.Error("no trial spilled to disk")
	}
}

func TestDifferentialStructKeysWithCombiner(t *testing.T) {
	type edge struct{ U, V int }
	rng := rand.New(rand.NewSource(303))
	dir := t.TempDir()
	var spilled int64
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		inputs := make([]int, rng.Intn(240))
		for i := range inputs {
			inputs[i] = rng.Intn(10000)
		}
		combine := trial%2 == 0
		mk := func(cfg Config) *Job[int, edge, float64, string] {
			j := &Job[int, edge, float64, string]{
				Name: "diff-struct",
				Map: func(x int, emit func(edge, float64)) {
					emit(edge{x % n, (x / n) % n}, float64(x)/4)
				},
				// Order-insensitive reduce so the combiner is transparent.
				Reduce: func(k edge, vs []float64, emit func(string)) {
					var sum float64
					for _, v := range vs {
						sum += v
					}
					emit(fmt.Sprintf("%v=%.2f/%d", k, sum, len(vs)))
				},
				Config: cfg,
			}
			if combine {
				j.Combine = func(_ edge, vs []float64) []float64 {
					var sum float64
					for _, v := range vs {
						sum += v
					}
					return []float64{sum}
				}
			}
			return j
		}
		if combine {
			// The combiner changes group sizes but not sums; the reduce
			// output above folds len(vs), so compare combiner runs only
			// against themselves (spill on/off), not the reference.
			mkSum := func(cfg Config) *Job[int, edge, float64, string] {
				j := mk(cfg)
				j.Reduce = func(k edge, vs []float64, emit func(string)) {
					var sum float64
					for _, v := range vs {
						sum += v
					}
					emit(fmt.Sprintf("%v=%.2f", k, sum))
				}
				return j
			}
			cfg := randomConfig(rng)
			out, met, err := mkSum(cfg).Run(inputs)
			if err != nil {
				t.Fatal(err)
			}
			noCombine := mkSum(cfg)
			noCombine.Combine = nil
			ref := referenceRun(noCombine, inputs)
			if !reflect.DeepEqual(out, ref.outputs) {
				t.Fatalf("combiner changed results:\ngot  %v\nwant %v", out, ref.outputs)
			}
			spillCfg := cfg
			spillCfg.MemoryBudget = 1 + rng.Intn(8)
			spillCfg.SpillDir = dir
			outS, metS, err := mkSum(spillCfg).Run(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(outS, out) {
				t.Fatalf("spill-on combiner outputs diverge")
			}
			if metS.PairsEmitted != met.PairsEmitted || metS.Reducers != met.Reducers {
				t.Fatalf("spill-on combiner metrics diverge: %+v vs %+v", metS, met)
			}
			// Batch reduce with the combiner pushed down, spill on and
			// off: same outputs again.
			for _, c := range []Config{cfg, spillCfg} {
				jb := mkSum(c)
				jb.ReduceBatch = jb.Reduce
				outB, _, err := jb.Run(inputs)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(outB, out) {
					t.Fatalf("batch+combiner outputs diverge\ngot  %v\nwant %v", outB, out)
				}
			}
			spilled += metS.BytesSpilled
			continue
		}
		spilled += checkDifferential(t, fmt.Sprintf("struct/%d", trial), mk, inputs, false, rng, dir)
	}
	if spilled == 0 {
		t.Error("no trial spilled to disk")
	}
}
