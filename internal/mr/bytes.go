package mr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PairSizer estimates the wire size in bytes of one key-value pair. The
// paper measures communication in key-value pairs (its replication rate
// is pairs per input); byte accounting is the production-grade refinement
// for clusters that bill by volume, and multiplies into the same tradeoff
// because every pair of a given job has near-constant size.
type PairSizer[K comparable, V any] func(K, V) int

// SizeOf estimates the encoded size of common scalar types: fixed-width
// integers and floats by width, strings by length plus a 4-byte length
// prefix, and everything else by its formatted length (an upper bound).
func SizeOf(v any) int {
	switch x := v.(type) {
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	case int16, uint16:
		return 2
	case int8, uint8, bool:
		return 1
	case string:
		return 4 + len(x)
	case []byte:
		return 4 + len(x)
	default:
		return len(fmt.Sprint(v))
	}
}

// MeasureBytes reruns the map phase of a job's inputs through the sizer
// to compute the byte volume of the shuffle without re-executing reduce.
// It returns total bytes and the mean pair size.
func MeasureBytes[I any, K comparable, V, O any](j *Job[I, K, V, O], inputs []I, sizer PairSizer[K, V]) (total int64, meanPair float64) {
	var pairs int64
	emit := func(k K, v V) {
		total += int64(sizer(k, v))
		pairs++
	}
	for _, in := range inputs {
		j.Map(in, emit)
	}
	if pairs == 0 {
		return 0, 0
	}
	return total, float64(total) / float64(pairs)
}

// VarintLen is the length of x in unsigned varint encoding, the framing
// most storage formats use for record headers.
func VarintLen(x uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], x)
}

// CommunicationBytes converts a replication rate and an input profile
// into an estimated shuffle volume: r · numInputs · bytesPerPair.
func CommunicationBytes(replicationRate float64, numInputs int64, bytesPerPair float64) float64 {
	v := replicationRate * float64(numInputs) * bytesPerPair
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}
