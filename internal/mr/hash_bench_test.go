package mr

import (
	"fmt"
	"testing"
)

// fnvSprintPartition is the seed runtime's defaultPartition, kept here
// as the benchmark baseline: format the key with fmt, then FNV-1a the
// resulting string.
func fnvSprintPartition[K comparable](k K, nw int) int {
	s := fmt.Sprint(k)
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h % uint32(nw))
}

// cellKey stands in for the composite reducer-cell keys the schemas use
// (e.g. the (i-group, k-group, j-group) cells of two-phase matmul).
type cellKey struct {
	I, J, Round int
}

// BenchmarkDefaultPartition is the before/after for the satellite task:
// the seed's fmt.Sprint+FNV key hashing against the maphash-based typed
// fast path, on string and struct keys.
func BenchmarkDefaultPartition(b *testing.B) {
	const nw = 64

	strKeys := make([]string, 1024)
	for i := range strKeys {
		strKeys[i] = fmt.Sprintf("reducer-key-%d", i)
	}
	b.Run("string/seed-fmt-fnv", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			sink += fnvSprintPartition(strKeys[i%len(strKeys)], nw)
		}
		_ = sink
	})
	b.Run("string/maphash", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			sink += defaultPartition(strKeys[i%len(strKeys)], nw)
		}
		_ = sink
	})

	structKeys := make([]cellKey, 1024)
	for i := range structKeys {
		structKeys[i] = cellKey{I: i % 32, J: i / 32, Round: i % 3}
	}
	b.Run("struct/seed-fmt-fnv", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			sink += fnvSprintPartition(structKeys[i%len(structKeys)], nw)
		}
		_ = sink
	})
	b.Run("struct/maphash", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			sink += defaultPartition(structKeys[i%len(structKeys)], nw)
		}
		_ = sink
	})
}

// TestDefaultPartitionAgreesWithItself pins the properties the runtime
// needs from the new hash: stable within a process and in range.
func TestDefaultPartitionProperties(t *testing.T) {
	for _, nw := range []int{1, 2, 7, 64} {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("k%d", i)
			p := defaultPartition(k, nw)
			if p < 0 || p >= nw {
				t.Fatalf("defaultPartition(%q, %d) = %d out of range", k, nw, p)
			}
			if q := defaultPartition(k, nw); q != p {
				t.Fatalf("defaultPartition not stable: %d then %d", p, q)
			}
		}
	}
	spread := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		spread[defaultPartition(cellKey{i, i * 7, i % 5}, 64)] = true
	}
	if len(spread) < 48 {
		t.Errorf("struct keys hit only %d/64 partitions", len(spread))
	}
}
