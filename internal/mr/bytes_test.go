package mr

import (
	"strings"
	"testing"
)

func TestSizeOf(t *testing.T) {
	tests := []struct {
		v    any
		want int
	}{
		{int(7), 8}, {int64(7), 8}, {uint64(7), 8}, {float64(1.5), 8},
		{int32(7), 4}, {uint32(7), 4}, {float32(1.5), 4},
		{int16(7), 2}, {uint16(7), 2},
		{int8(7), 1}, {uint8(7), 1}, {true, 1},
		{"abc", 7}, {[]byte{1, 2}, 6},
	}
	for _, tc := range tests {
		if got := SizeOf(tc.v); got != tc.want {
			t.Errorf("SizeOf(%T %v) = %d, want %d", tc.v, tc.v, got, tc.want)
		}
	}
	// Fallback path formats the value.
	if got := SizeOf(struct{ X int }{42}); got <= 0 {
		t.Errorf("SizeOf(struct) = %d, want > 0", got)
	}
}

func TestMeasureBytes(t *testing.T) {
	job := wordCountJob(Config{})
	docs := []string{"aa bb", "cc"}
	total, mean := MeasureBytes(job, docs, func(k string, v int) int {
		return SizeOf(k) + SizeOf(v)
	})
	// 3 pairs, each key is 2 chars (4+2=6) + int value 8 = 14 bytes.
	if total != 42 {
		t.Errorf("total = %d, want 42", total)
	}
	if mean != 14 {
		t.Errorf("mean = %v, want 14", mean)
	}
}

func TestMeasureBytesEmpty(t *testing.T) {
	job := wordCountJob(Config{})
	total, mean := MeasureBytes(job, nil, func(k string, v int) int { return 1 })
	if total != 0 || mean != 0 {
		t.Errorf("empty input: total=%d mean=%v, want zeros", total, mean)
	}
}

func TestVarintLen(t *testing.T) {
	tests := []struct {
		x    uint64
		want int
	}{{0, 1}, {127, 1}, {128, 2}, {1 << 14, 3}, {1 << 63, 10}}
	for _, tc := range tests {
		if got := VarintLen(tc.x); got != tc.want {
			t.Errorf("VarintLen(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestCommunicationBytes(t *testing.T) {
	if got := CommunicationBytes(2, 1000, 16); got != 32000 {
		t.Errorf("CommunicationBytes = %v, want 32000", got)
	}
	if got := CommunicationBytes(-1, 10, 10); got != 0 {
		t.Errorf("negative input should clamp to 0, got %v", got)
	}
}

func TestMeasureBytesAgreesWithMetrics(t *testing.T) {
	// The byte measurement must see exactly the pairs the engine emits.
	doc := strings.Repeat("x ", 50)
	job := wordCountJob(Config{})
	_, met, err := job.Run([]string{doc})
	if err != nil {
		t.Fatal(err)
	}
	var pairs int64
	MeasureBytes(job, []string{doc}, func(string, int) int { pairs++; return 1 })
	if pairs != met.PairsEmitted {
		t.Errorf("sizer saw %d pairs, engine emitted %d", pairs, met.PairsEmitted)
	}
}
