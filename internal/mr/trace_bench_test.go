package mr

import (
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

// BenchmarkStreamingTrace1M runs a ~1M-pair word count through the
// streaming data path with the recorder armed and proves the pipeline
// overlap is real: the exported timeline must show map-task spans
// (worker lanes) overlapping the shuffle's seal/fence/compaction spans
// (partition lanes) — the span-level view of the SpillOverlapNs the
// metrics report. With MRTRACE_OUT set, the last round's trace is
// written there as Chrome trace-event JSON (scripts/bench.sh sets it
// to BENCH_trace_streaming.json and CI uploads the artifact).
func BenchmarkStreamingTrace1M(b *testing.B) {
	docs := benchDocs(52429) // 20 words each: ~1.05M emitted pairs
	cfg := Config{
		Workers:      8,
		Partitions:   8,
		MemoryBudget: 1024,
		SpillDir:     b.TempDir(),
	}
	b.ReportAllocs()
	var rec *obs.Recorder
	var overlapMs, spillOverlapMs float64
	for i := 0; i < b.N; i++ {
		rec = obs.NewRecorder(1 << 15)
		cfg.Recorder = rec
		_, met, err := wordCountJob(cfg).Run(docs)
		if err != nil {
			b.Fatal(err)
		}
		if met.SpillEvents == 0 {
			b.Fatal("1M-pair run never spilled")
		}

		snap := rec.Snapshot()
		mapSpans := obs.SpanIntervals(snap, obs.OpMapTask)
		spillSpans := obs.SpanIntervals(snap, obs.OpSeal, obs.OpFence, obs.OpCompact)
		overlap := obs.OverlapNs(mapSpans, spillSpans)
		if overlap == 0 {
			b.Fatal("trace shows no map-task/spill overlap: the streaming pipeline serialized")
		}
		if met.SpillOverlapNs == 0 {
			b.Fatal("Metrics.SpillOverlapNs = 0 despite overlapping trace spans")
		}
		overlapMs = float64(overlap) / 1e6
		spillOverlapMs = float64(met.SpillOverlapNs) / 1e6
	}
	b.ReportMetric(overlapMs, "trace-overlap-ms")
	b.ReportMetric(spillOverlapMs, "spill-overlap-ms")
	b.ReportMetric(float64(rec.Dropped()), "dropped-events")

	if out := os.Getenv("MRTRACE_OUT"); out != "" {
		f, err := os.Create(out)
		if err != nil {
			b.Fatal(err)
		}
		if err := obs.WriteTrace(f, rec); err != nil {
			f.Close()
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			b.Fatal(err)
		}
		if err := obs.ValidateTrace(data); err != nil {
			b.Fatalf("exported trace invalid: %v", err)
		}
		if !strings.Contains(string(data), "map-task") {
			b.Fatal("exported trace has no map-task spans")
		}
		b.Logf("trace written to %s", out)
	}
}
