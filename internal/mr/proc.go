// ProcMode: the bridge from the Job veneer to the multi-process
// executor (internal/proc). The same Job definition runs either
// in-process on the shuffle engine or across worker processes with
// lease-fenced scheduling and kill -9 recovery; outputs are identical.
package mr

import (
	"fmt"
	"strings"

	"repro/internal/proc"
)

// RegisterProc registers the job for ProcMode execution under its
// Name. Because ProcMode forks worker processes that must execute the
// same code as the driver, registration has to happen in BOTH roles —
// call it from package init or early in main, before Job.Run in the
// driver and before MaybeProcWorker in the worker (normally the same
// binary, so one call site covers both).
//
// The job's Map, Reduce (or ReduceBatch) and Combine carry over
// directly; ShufflePartition, when set, becomes the cross-process
// placement function and must be a pure function of the key.
func RegisterProc[I any, K comparable, V, O any](j *Job[I, K, V, O]) {
	reduce := j.Reduce
	batch := false
	if reduce == nil {
		// A ReduceBatch job promises not to retain the values slice, so
		// the proc reduce worker is told it may reuse one decode arena
		// across keys (the batch contract's whole point).
		reduce = j.ReduceBatch
		batch = true
	}
	proc.Register(proc.JobSpec[I, K, V, O]{
		Name:        j.Name,
		Map:         j.Map,
		Reduce:      reduce,
		Combine:     j.Combine,
		Partition:   j.ShufflePartition,
		BatchReduce: batch,
	})
}

// MaybeProcWorker hands the process over to the ProcMode worker loop
// when the worker environment is set, and never returns in that case.
// Binaries that run ProcMode jobs with the default worker command (the
// current binary re-executed) must call it early in main, after their
// RegisterProc calls.
func MaybeProcWorker() { proc.MaybeWorker() }

// runProc executes the job on the multi-process executor and maps the
// proc run's metrics into the mr.Metrics shape. Fields that only exist
// in-process (partition profile, spill pressure) stay zero;
// BytesSpilled/IndexBytesSpilled/DiskBytesRead here are real bytes over
// the process boundary — the spool files that carried the shuffle —
// and PeakResidentPairs is the worst buffered-pair high-water mark any
// worker's task attempt observed, the same bound Config.MemoryBudget
// enforces in-process.
func (j *Job[I, K, V, O]) runProc(inputs []I) ([]O, Metrics, error) {
	outs, pm, err := proc.Run[I, K, V, O](j.Name, inputs, proc.Options{
		Workers:                j.Config.Workers,
		Partitions:             j.Config.Partitions,
		MapChunk:               j.Config.MapChunk,
		MemoryBudget:           j.Config.MemoryBudget,
		Dir:                    j.Config.ProcDir,
		WorkerCommand:          j.Config.ProcWorkerCommand,
		LeaseTTL:               j.Config.ProcLeaseTTL,
		MaxReducerInput:        j.Config.MaxReducerInput,
		ReduceSplitPairs:       j.Config.ReduceSplitPairs,
		ReduceRangeConcurrency: j.Config.ReduceRangeConcurrency,
		Timeout:                j.Config.ProcTimeout,
		Recorder:               j.Config.Recorder,
	})
	met := Metrics{
		MapInputs:         pm.MapInputs,
		PairsEmitted:      pm.PairsEmitted,
		PairsShuffled:     pm.PairsShuffled,
		Reducers:          pm.Reducers,
		MaxReducerInput:   pm.MaxReducerInput,
		TotalReducerInput: pm.PairsShuffled,
		Outputs:           pm.Outputs,
		MapRetries:        pm.MapRetries,
		ReduceRetries:     pm.ReduceRetries,
		TaskRetries:       pm.MapRetries + pm.ReduceRetries,
		WorkerDeaths:      pm.WorkerDeaths,
		LeaseExpirations:  pm.LeaseExpirations,
		SalvagedTasks:     pm.SalvagedTasks,
		BytesSpilled:      pm.BytesSpilled,
		IndexBytesSpilled: pm.IndexBytesSpilled,
		DiskBytesRead:     pm.DiskBytesRead,
		PeakResidentPairs: pm.PeakResidentPairs,
		ReduceRanges:      pm.ReduceRanges,
	}
	if err != nil {
		// The reducer-size limit crosses the RPC boundary as a fatal
		// error string, so the sentinel is re-attached by message here.
		if strings.Contains(err.Error(), "values, limit") {
			return nil, met, fmt.Errorf("%w: job %q: %v", ErrReducerOverflow, j.Name, err)
		}
		return nil, met, err
	}
	return outs, met, nil
}
