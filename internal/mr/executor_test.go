package mr

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/shuffle"
)

// These tests exercise the paper-facing Job API specifically through
// the partitioned shuffle executor: partition-pinned overflow, fault
// injection across partition boundaries, per-partition metrics, and the
// bounded-memory mode.

func TestOverflowWhenKeyIsAloneInItsPartition(t *testing.T) {
	// The partition-boundary case: the overflowing key is the only key
	// in its partition, so the limit must be enforced from that
	// partition's own stats.
	job := &Job[int, int, int, int]{
		Name:             "boundary",
		Map:              func(x int, emit func(int, int)) { emit(x, x) },
		Reduce:           func(k int, vs []int, emit func(int)) { emit(len(vs)) },
		ShufflePartition: func(k int) int { return k }, // key k -> partition k
		Config:           Config{Partitions: 2, MaxReducerInput: 3},
	}
	inputs := []int{0, 0, 0, 0, 1} // key 0: 4 values in partition 0, alone
	_, met, err := job.Run(inputs)
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
	if !strings.Contains(err.Error(), `job "boundary" saw reducer with 4 inputs, limit 3`) {
		t.Errorf("error text = %q", err)
	}
	if met.MaxReducerInput != 4 || met.Reducers != 2 {
		t.Errorf("metrics at failure: %+v", met)
	}

	// RecordLoads survives the overflow path (the seed runtime also
	// reported per-reducer loads on a failed run).
	job.Config.RecordLoads = true
	_, met, err = job.Run(inputs)
	if !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v", err)
	}
	if !reflect.DeepEqual(met.ReducerLoads, []int{4, 1}) {
		t.Errorf("ReducerLoads at failure = %v, want [4 1]", met.ReducerLoads)
	}
	job.Config.RecordLoads = false

	// At the limit exactly the run succeeds and outputs stay sorted.
	job.Config.MaxReducerInput = 4
	out, _, err := job.Run(inputs)
	if err != nil {
		t.Fatalf("at limit: %v", err)
	}
	if !reflect.DeepEqual(out, []int{4, 1}) {
		t.Errorf("outputs = %v, want [4 1] (keys 0 then 1)", out)
	}
}

func TestFaultInjectionAcrossPartitions(t *testing.T) {
	docs := []string{"a b", "b c", "c d", "d e", "e f", "f g"}
	clean, _, err := wordCountJob(Config{Workers: 3}).Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 8, 64} {
		faulty := wordCountJob(Config{
			Workers: 3, MapChunk: 1, Partitions: parts,
			FailureEveryN: 2, MaxRetries: 3,
		})
		out, met, err := faulty.Run(docs)
		if err != nil {
			t.Fatalf("P=%d: %v", parts, err)
		}
		if !reflect.DeepEqual(out, clean) {
			t.Errorf("P=%d: outputs diverge under injection", parts)
		}
		if met.MapRetries == 0 || met.ReduceRetries == 0 {
			t.Errorf("P=%d: retries = map %d, reduce %d; want both > 0",
				parts, met.MapRetries, met.ReduceRetries)
		}
		if met.PairsEmitted != 12 {
			t.Errorf("P=%d: PairsEmitted = %d, want 12 (no double count)", parts, met.PairsEmitted)
		}
	}
}

func TestFaultInjectionWithOverflowStillDetected(t *testing.T) {
	// Retries and the q limit interact: the retried map tasks must not
	// inflate group sizes past the limit, and a genuine overflow must
	// still surface after recovery.
	ok := wordCountJob(Config{MaxReducerInput: 4, FailureEveryN: 2, MaxRetries: 3, MapChunk: 1})
	if _, _, err := ok.Run([]string{"a a", "a a"}); err != nil {
		t.Fatalf("4 inputs at limit 4 should pass despite retries: %v", err)
	}
	bad := wordCountJob(Config{MaxReducerInput: 3, FailureEveryN: 2, MaxRetries: 3, MapChunk: 1})
	if _, _, err := bad.Run([]string{"a a", "a a"}); !errors.Is(err, ErrReducerOverflow) {
		t.Fatalf("err = %v, want ErrReducerOverflow", err)
	}
}

func TestPartitionMetricsExposed(t *testing.T) {
	job := wordCountJob(Config{Partitions: 4, Workers: 2})
	_, met, err := job.Run([]string{"a b c d e f g h i j"})
	if err != nil {
		t.Fatal(err)
	}
	if len(met.Partitions) != 4 {
		t.Fatalf("Partitions = %d entries, want 4", len(met.Partitions))
	}
	var pairs, keys int64
	for _, ps := range met.Partitions {
		pairs += ps.Pairs
		keys += ps.Keys
	}
	if pairs != met.PairsShuffled || keys != met.Reducers {
		t.Errorf("partition sums (%d, %d) != totals (%d, %d)", pairs, keys, met.PairsShuffled, met.Reducers)
	}
	if met.Makespan < met.IdealMakespan || met.IdealMakespan <= 0 {
		t.Errorf("makespan %d, ideal %d", met.Makespan, met.IdealMakespan)
	}
	if met.PartitionSkew() < 1 {
		t.Errorf("PartitionSkew = %v, want >= 1", met.PartitionSkew())
	}
}

func TestBoundedMemoryModeThroughJob(t *testing.T) {
	docs := make([]string, 64)
	for i := range docs {
		docs[i] = "x y"
	}
	job := wordCountJob(Config{Partitions: 2, MaxBufferedPairs: 8})
	out, met, err := job.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	// 128 pairs against an 8-pair budget seal exactly 16 runs whether
	// the two keys share a partition (16 seals there) or split (8
	// each), so the spill profile is exact despite hash placement.
	if met.SpillEvents != 16 || met.SpilledPairs != 128 {
		t.Errorf("spill profile = %d events, %d pairs; want 16 and 128", met.SpillEvents, met.SpilledPairs)
	}
	if met.MaxLivePairs != 8 {
		t.Errorf("MaxLivePairs = %d, want exactly the 8-pair budget", met.MaxLivePairs)
	}
	want := []string{"x=64", "y=64"}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("outputs = %v, want %v (grouping must survive sealed runs)", out, want)
	}
}

func TestDiskSpillThroughJob(t *testing.T) {
	// MemoryBudget + SpillDir on the public Job API: a dataset 4x the
	// total budget completes with identical outputs and logical
	// metrics, nonzero disk traffic, and the live buffer bounded.
	const parts, budget = 2, 64
	docs := make([]string, 4*parts*budget)
	for i := range docs {
		docs[i] = "k" + itoa(i%13)
	}
	countJob := func(cfg Config) *Job[string, string, int, string] {
		return &Job[string, string, int, string]{
			Name:   "occurrences",
			Map:    func(w string, emit func(string, int)) { emit(w, 1) },
			Reduce: func(w string, vs []int, emit func(string)) { emit(w + "=" + itoa(len(vs))) },
			Config: cfg,
		}
	}
	base, baseMet, err := countJob(Config{Partitions: parts}).Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	out, met, err := countJob(Config{
		Partitions: parts, MemoryBudget: budget, SpillDir: t.TempDir(),
	}).Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, base) {
		t.Errorf("spilled outputs diverge: %v vs %v", out, base)
	}
	if met.BytesSpilled == 0 || met.SpillEvents == 0 {
		t.Errorf("no disk spill on a 4x-budget dataset: %+v", met)
	}
	if met.MaxLivePairs > budget {
		t.Errorf("MaxLivePairs = %d exceeds budget %d", met.MaxLivePairs, budget)
	}
	if met.RunsMerged == 0 {
		t.Error("RunsMerged = 0, want multi-run reduce merges")
	}
	if met.DiskBytesRead == 0 {
		t.Error("DiskBytesRead = 0, want the reduce merge's spill reads surfaced")
	}
	if baseMet.DiskBytesRead != 0 {
		t.Errorf("in-memory run reported DiskBytesRead = %d, want 0", baseMet.DiskBytesRead)
	}
	if met.Reducers != baseMet.Reducers || met.PairsShuffled != baseMet.PairsShuffled ||
		met.MaxReducerInput != baseMet.MaxReducerInput {
		t.Errorf("logical metrics diverge under spill:\nbase  %+v\nspill %+v", baseMet, met)
	}
}

func TestPinnedSeedMakesPhysicalProfileDeterministic(t *testing.T) {
	// Under shuffle.WithSeed the *physical* profile — which partition
	// every key lands in, and therefore Partitions, Makespan and spill
	// counts — is reproducible: identical across runs, and equal to a
	// placement replayed with an independently created pinned hasher.
	restore := shuffle.WithSeed(7)
	defer restore()

	docs := []string{"a b c d e f g h i j k l m n o p", "a b c d a b c d"}
	cfg := Config{Partitions: 4, Workers: 2, MaxBufferedPairs: 4}
	_, met1, err := wordCountJob(cfg).Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	_, met2, err := wordCountJob(cfg).Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(met1.Partitions, met2.Partitions) {
		t.Errorf("pinned-seed partition profiles differ:\n%+v\n%+v", met1.Partitions, met2.Partitions)
	}
	if met1.Makespan != met2.Makespan || met1.SpillEvents != met2.SpillEvents ||
		met1.SpilledPairs != met2.SpilledPairs || met1.MaxLivePairs != met2.MaxLivePairs {
		t.Errorf("pinned-seed physical metrics differ:\n%+v\n%+v", met1, met2)
	}

	// Replay placement with a fresh pinned hasher: per-partition pair
	// counts must match the executor's reported profile exactly.
	h := shuffle.NewHasher[string]()
	wantPairs := make([]int64, 4)
	for _, doc := range docs {
		for _, w := range strings.Fields(doc) {
			wantPairs[h.Hash(w)&3]++
		}
	}
	for p, ps := range met1.Partitions {
		if ps.Pairs != wantPairs[p] {
			t.Errorf("partition %d pairs = %d, replayed placement says %d", p, ps.Pairs, wantPairs[p])
		}
	}
}

func TestShufflePartitionDoesNotChangeResults(t *testing.T) {
	docs := []string{"b a c a", "c b a"}
	base, baseMet, err := wordCountJob(Config{}).Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	pinned := wordCountJob(Config{Partitions: 4})
	pinned.ShufflePartition = func(w string) int { return int(w[0]) }
	out, met, err := pinned.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, base) {
		t.Errorf("pinned layout changed outputs: %v vs %v", out, base)
	}
	if met.Reducers != baseMet.Reducers || met.PairsShuffled != baseMet.PairsShuffled {
		t.Errorf("pinned layout changed logical metrics: %+v vs %+v", met, baseMet)
	}
}

func TestRunPipelineThreeRounds(t *testing.T) {
	// Tokenize -> count -> histogram: an N=3 pipeline through the
	// generalized Chain.
	tokenize := &Job[string, string, int, string]{
		Name: "tokenize",
		Map: func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		Reduce: func(w string, counts []int, emit func(string)) {
			for range counts {
				emit(w)
			}
		},
	}
	count := &Job[string, string, int, Pair[string, int]]{
		Name: "count",
		Map:  func(w string, emit func(string, int)) { emit(w, 1) },
		Reduce: func(w string, counts []int, emit func(Pair[string, int])) {
			emit(Pair[string, int]{w, len(counts)})
		},
	}
	histogram := &Job[Pair[string, int], int, int, Pair[int, int]]{
		Name: "histogram",
		Map:  func(p Pair[string, int], emit func(int, int)) { emit(p.Value, 1) },
		Reduce: func(n int, ones []int, emit func(Pair[int, int])) {
			emit(Pair[int, int]{n, len(ones)})
		},
	}
	out, pipe, err := RunPipeline([]string{"a b a", "b b c"},
		RoundOf(tokenize), RoundOf(count), RoundOf(histogram))
	if err != nil {
		t.Fatal(err)
	}
	// Counts a=2 b=3 c=1: one word each of count 1, 2, 3.
	want := []Pair[int, int]{{1, 1}, {2, 1}, {3, 1}}
	if !reflect.DeepEqual(out.([]Pair[int, int]), want) {
		t.Errorf("outputs = %v, want %v", out, want)
	}
	if len(pipe.Rounds) != 3 {
		t.Fatalf("recorded %d rounds, want 3", len(pipe.Rounds))
	}
	if pipe.Rounds[1].Name != "count" {
		t.Errorf("round order: %v", pipe.Rounds)
	}
	if pipe.TotalCommunication() != pipe.Rounds[0].Metrics.PairsShuffled+
		pipe.Rounds[1].Metrics.PairsShuffled+pipe.Rounds[2].Metrics.PairsShuffled {
		t.Error("TotalCommunication does not sum all three rounds")
	}
}

func TestRunPipelineTypeMismatch(t *testing.T) {
	ints := &Job[int, int, int, int]{
		Name:   "ints",
		Map:    func(x int, emit func(int, int)) { emit(x, x) },
		Reduce: func(k int, _ []int, emit func(int)) { emit(k) },
	}
	strs := &Job[string, string, int, string]{
		Name:   "strings",
		Map:    func(s string, emit func(string, int)) { emit(s, 1) },
		Reduce: func(k string, _ []int, emit func(string)) { emit(k) },
	}
	_, pipe, err := RunPipeline([]int{1, 2}, RoundOf(ints), RoundOf(strs))
	if err == nil || !strings.Contains(err.Error(), "expects []string") {
		t.Fatalf("err = %v, want type mismatch naming []string", err)
	}
	if len(pipe.Rounds) != 1 {
		t.Errorf("recorded %d rounds, want 1 (the successful first)", len(pipe.Rounds))
	}
}

func TestStreamingMemoryBoundThroughJob(t *testing.T) {
	// The whole-round bounded-memory guarantee on the public Job API: a
	// dataset many times the total budget, mapped by concurrent workers
	// on the default streaming path, keeps peak resident pairs within
	// P*MemoryBudget + workers*BlockPairs (BlockPairs defaults to half
	// the budget), and reports the map/spill overlap metrics.
	const parts, budget, workers = 2, 64, 4
	blockPairs := budget / 2
	docs := make([]string, 16*parts*budget)
	for i := range docs {
		docs[i] = "k" + itoa(i%23)
	}
	job := &Job[string, string, int, string]{
		Name:   "streaming-bound",
		Map:    func(w string, emit func(string, int)) { emit(w, 1) },
		Reduce: func(w string, vs []int, emit func(string)) { emit(w + "=" + itoa(len(vs))) },
		Config: Config{
			Partitions: parts, Workers: workers,
			MemoryBudget: budget, SpillDir: t.TempDir(),
		},
	}
	out, met, err := job.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 23 {
		t.Fatalf("outputs = %d keys, want 23", len(out))
	}
	if met.BytesSpilled == 0 {
		t.Fatal("16x-budget dataset never spilled")
	}
	bound := int64(parts*budget + workers*blockPairs)
	if met.PeakResidentPairs <= 0 || met.PeakResidentPairs > bound {
		t.Errorf("PeakResidentPairs = %d, want in (0, %d]: whole-round residency must track the budget, not the %d-pair dataset",
			met.PeakResidentPairs, bound, len(docs))
	}
	if met.SpillOverlapNs <= 0 {
		t.Error("SpillOverlapNs = 0: no shuffle work overlapped the map phase")
	}

	// The legacy barrier on the same workload: identical outputs, but
	// no overlapped shuffle work — the whole dataset sits in task
	// buffers (outside the shuffle's residency metric) until the
	// post-map merge.
	legacy := *job
	legacy.Config.LegacyMerge = true
	legacy.Config.SpillDir = t.TempDir()
	outL, metL, err := legacy.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outL, out) {
		t.Fatalf("legacy outputs diverge: %v vs %v", outL, out)
	}
	if metL.SpillOverlapNs != 0 || metL.FinishDrainNs != 0 {
		t.Errorf("legacy path reported streaming overlap (%d ns overlap, %d ns drain), want 0",
			metL.SpillOverlapNs, metL.FinishDrainNs)
	}
}
