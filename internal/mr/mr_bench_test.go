package mr

import (
	"fmt"
	"strings"
	"testing"
)

func benchDocs(n int) []string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	docs := make([]string, n)
	for i := range docs {
		var b strings.Builder
		for j := 0; j < 20; j++ {
			b.WriteString(words[(i+j)%len(words)])
			b.WriteByte(' ')
		}
		docs[i] = b.String()
	}
	return docs
}

// BenchmarkWordCount measures raw engine throughput on the canonical job.
func BenchmarkWordCount(b *testing.B) {
	docs := benchDocs(500)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			job := wordCountJob(Config{Workers: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := job.Run(docs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCombiner compares shuffle volume with and without a combiner.
func BenchmarkCombiner(b *testing.B) {
	docs := benchDocs(500)
	run := func(b *testing.B, withCombiner bool) {
		job := &Job[string, string, int, int]{
			Name: "count",
			Map: func(d string, emit func(string, int)) {
				for _, w := range strings.Fields(d) {
					emit(w, 1)
				}
			},
			Reduce: func(_ string, vs []int, emit func(int)) {
				total := 0
				for _, v := range vs {
					total += v
				}
				emit(total)
			},
		}
		if withCombiner {
			job.Combine = func(_ string, vs []int) []int {
				total := 0
				for _, v := range vs {
					total += v
				}
				return []int{total}
			}
		}
		var met Metrics
		for i := 0; i < b.N; i++ {
			var err error
			_, met, err = job.Run(docs)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(met.PairsShuffled), "shuffled")
	}
	b.Run("no-combiner", func(b *testing.B) { run(b, false) })
	b.Run("combiner", func(b *testing.B) { run(b, true) })
}

// BenchmarkFaultInjectionOverhead measures the retry path's cost.
func BenchmarkFaultInjectionOverhead(b *testing.B) {
	docs := benchDocs(200)
	for _, fe := range []int{0, 4} {
		name := "clean"
		if fe > 0 {
			name = fmt.Sprintf("fail-every-%d", fe)
		}
		b.Run(name, func(b *testing.B) {
			job := wordCountJob(Config{FailureEveryN: fe, MaxRetries: 3, MapChunk: 10})
			for i := 0; i < b.N; i++ {
				if _, _, err := job.Run(docs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
