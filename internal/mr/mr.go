// Package mr implements a small but complete in-process MapReduce runtime.
//
// The runtime exists so that the mapping schemas of Afrati, Das Sarma,
// Salihoglu and Ullman, "Upper and Lower Bounds on the Cost of a Map-Reduce
// Computation" (VLDB 2013), can be executed rather than merely analyzed: a
// Job runs a map phase, a shuffle, and a reduce phase over real data, while
// Metrics records exactly the quantities the paper reasons about — the
// number of key-value pairs communicated between the phases (from which the
// replication rate is derived) and the number of inputs each reducer
// receives (the paper's reducer size q).
//
// The engine is deliberately faithful to the paper's cost model rather than
// to any particular distributed implementation: mappers work on input
// records independently, every emitted pair is counted as communication,
// and a "reducer" is one reduce key together with its list of values.
// Parallelism is real (worker goroutines), and the engine supports
// combiners, custom partitioners, multi-round pipelines, and deterministic
// fault injection with task retry, so that tests can exercise the
// fault-tolerance path that defines MapReduce.
package mr

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Pair is a single key-value pair emitted by a map task.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// MapFunc transforms one input record into zero or more key-value pairs.
// It must be deterministic and side-effect free: the engine may re-execute
// it when fault injection is enabled.
type MapFunc[I any, K comparable, V any] func(in I, emit func(K, V))

// ReduceFunc processes one reduce key together with all values that were
// emitted for it, producing zero or more output records. Like MapFunc it
// must be deterministic so that retried tasks produce identical results.
type ReduceFunc[K comparable, V, O any] func(key K, values []V, emit func(O))

// CombineFunc optionally pre-aggregates the values for one key inside a
// single map task before shuffle, reducing communication. It must be
// semantically transparent: reduce(k, combine(vs)) == reduce(k, vs).
type CombineFunc[K comparable, V any] func(key K, values []V) []V

// Config controls the execution of a Job.
type Config struct {
	// Workers is the number of parallel map (and reduce) workers.
	// Zero means runtime.NumCPU().
	Workers int

	// MapChunk is the number of input records grouped into one map task.
	// Zero means an automatic chunk size targeting ~4 tasks per worker.
	MapChunk int

	// ReduceWorkersHint, when positive, partitions reduce keys into this
	// many logical reduce workers for the per-worker skew metrics. It does
	// not change results, only Metrics.WorkerInputs.
	ReduceWorkersHint int

	// MaxReducerInput, when positive, makes the job fail if any reduce key
	// receives more than this many values. It enforces the paper's reducer
	// size limit q at runtime.
	MaxReducerInput int

	// RecordLoads, when true, stores every reducer's input size in
	// Metrics.ReducerLoads (in sorted key order), for downstream
	// scheduling and cost simulation.
	RecordLoads bool

	// FailureEveryN, when positive, deterministically fails each task's
	// first attempt whenever the task index is divisible by FailureEveryN.
	// Failed tasks are retried up to MaxRetries times. This exercises the
	// engine's fault-tolerance path without nondeterminism.
	FailureEveryN int

	// MaxRetries is the number of retries granted to a failing task.
	// Zero means 2 when FailureEveryN is set.
	MaxRetries int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	if c.FailureEveryN > 0 {
		return 2
	}
	return 0
}

// Metrics records the communication profile of one executed round. All
// counts refer to logical records, matching the paper's convention that
// communication cost is measured in key-value pairs.
type Metrics struct {
	// MapInputs is the number of input records consumed by the map phase.
	MapInputs int64
	// PairsEmitted is the number of key-value pairs produced by map tasks
	// before any combiner ran. This is the paper's communication cost.
	PairsEmitted int64
	// PairsShuffled is the number of pairs actually sent to the reduce
	// phase, after combining. Equal to PairsEmitted without a combiner.
	PairsShuffled int64
	// Reducers is the number of distinct reduce keys ("reducers" in the
	// paper's sense: a key plus its list of values).
	Reducers int64
	// MaxReducerInput is the largest number of values any one reduce key
	// received — the realized reducer size q.
	MaxReducerInput int64
	// TotalReducerInput is the sum over reducers of their input sizes;
	// equal to PairsShuffled.
	TotalReducerInput int64
	// Outputs is the number of records produced by the reduce phase.
	Outputs int64
	// MapRetries and ReduceRetries count task re-executions triggered by
	// fault injection.
	MapRetries    int64
	ReduceRetries int64
	// WorkerInputs, when ReduceWorkersHint was set, is the number of
	// values routed to each logical reduce worker (for skew analysis).
	WorkerInputs []int64
	// ReducerLoads, when Config.RecordLoads was set, holds every
	// reducer's input size in sorted key order.
	ReducerLoads []int
}

// ReplicationRate is the average number of key-value pairs created per map
// input: the paper's replication rate r for this round.
func (m Metrics) ReplicationRate() float64 {
	if m.MapInputs == 0 {
		return 0
	}
	return float64(m.PairsEmitted) / float64(m.MapInputs)
}

// ShuffledReplicationRate is the replication rate after combining.
func (m Metrics) ShuffledReplicationRate() float64 {
	if m.MapInputs == 0 {
		return 0
	}
	return float64(m.PairsShuffled) / float64(m.MapInputs)
}

// MeanReducerInput is the average reducer input size.
func (m Metrics) MeanReducerInput() float64 {
	if m.Reducers == 0 {
		return 0
	}
	return float64(m.TotalReducerInput) / float64(m.Reducers)
}

// String renders a one-line summary suitable for harness output.
func (m Metrics) String() string {
	return fmt.Sprintf("inputs=%d pairs=%d reducers=%d maxq=%d r=%.4f",
		m.MapInputs, m.PairsEmitted, m.Reducers, m.MaxReducerInput, m.ReplicationRate())
}

// Job is a single-round MapReduce computation from inputs of type I,
// through keys K and values V, to outputs of type O.
type Job[I any, K comparable, V, O any] struct {
	Name    string
	Map     MapFunc[I, K, V]
	Reduce  ReduceFunc[K, V, O]
	Combine CombineFunc[K, V] // optional
	// Partition maps a key to a logical reduce worker in
	// [0, ReduceWorkersHint). Optional; defaults to a modular hash of the
	// key's formatted value.
	Partition func(K) int
	Config    Config
}

// ErrReducerOverflow is returned (wrapped) when a reduce key exceeds the
// configured MaxReducerInput.
var ErrReducerOverflow = errors.New("mr: reducer input exceeds configured maximum")

// errInjected marks a deterministic injected task failure.
var errInjected = errors.New("mr: injected task failure")

// Run executes the job over inputs and returns the reduce outputs together
// with the round's metrics. Output order is deterministic: reduce keys are
// processed in a stable sorted order (by formatted key), and within a key
// the outputs appear in emission order.
func (j *Job[I, K, V, O]) Run(inputs []I) ([]O, Metrics, error) {
	var met Metrics
	met.MapInputs = int64(len(inputs))

	groups, err := j.runMapPhase(inputs, &met)
	if err != nil {
		return nil, met, err
	}

	keys := sortedKeys(groups)
	met.Reducers = int64(len(keys))
	if j.Config.RecordLoads {
		met.ReducerLoads = make([]int, 0, len(keys))
	}
	for _, k := range keys {
		n := int64(len(groups[k]))
		met.TotalReducerInput += n
		if n > met.MaxReducerInput {
			met.MaxReducerInput = n
		}
		if j.Config.RecordLoads {
			met.ReducerLoads = append(met.ReducerLoads, int(n))
		}
	}
	met.PairsShuffled = met.TotalReducerInput
	if j.Combine == nil {
		// Without a combiner every emitted pair is shuffled.
		met.PairsShuffled = met.PairsEmitted
	}
	if max := j.Config.MaxReducerInput; max > 0 && met.MaxReducerInput > int64(max) {
		return nil, met, fmt.Errorf("%w: job %q saw reducer with %d inputs, limit %d",
			ErrReducerOverflow, j.Name, met.MaxReducerInput, max)
	}
	j.recordWorkerSkew(groups, keys, &met)

	outs, err := j.runReducePhase(groups, keys, &met)
	if err != nil {
		return nil, met, err
	}
	met.Outputs = int64(len(outs))
	return outs, met, nil
}

// runMapPhase executes map tasks in parallel and merges their outputs into
// key groups. Each worker keeps a private group map; maps are merged once
// at the end to avoid lock contention on the hot emit path.
func (j *Job[I, K, V, O]) runMapPhase(inputs []I, met *Metrics) (map[K][]V, error) {
	workers := j.Config.workers()
	chunk := j.Config.MapChunk
	if chunk <= 0 {
		chunk = (len(inputs) + workers*4 - 1) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	type task struct{ lo, hi, idx int }
	var tasks []task
	for lo, idx := 0, 0; lo < len(inputs); lo, idx = lo+chunk, idx+1 {
		hi := lo + chunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		tasks = append(tasks, task{lo, hi, idx})
	}

	results := make([]map[K][]V, len(tasks))
	emitted := make([]int64, len(tasks))
	retries := make([]int64, len(tasks))
	errs := make([]error, len(tasks))

	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range taskCh {
				t := tasks[ti]
				attempts := 0
				for {
					local := make(map[K][]V)
					var count int64
					err := j.attemptMapTask(inputs[t.lo:t.hi], t.idx, attempts, local, &count)
					if err == nil {
						if j.Combine != nil {
							for k, vs := range local {
								local[k] = j.Combine(k, vs)
							}
						}
						results[ti], emitted[ti] = local, count
						break
					}
					attempts++
					retries[ti]++
					if attempts > j.Config.maxRetries() {
						errs[ti] = fmt.Errorf("mr: map task %d of job %q failed after %d attempts: %w",
							t.idx, j.Name, attempts, err)
						break
					}
				}
			}
		}()
	}
	for ti := range tasks {
		taskCh <- ti
	}
	close(taskCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make(map[K][]V)
	for ti, local := range results {
		met.PairsEmitted += emitted[ti]
		met.MapRetries += retries[ti]
		for k, vs := range local {
			merged[k] = append(merged[k], vs...)
		}
	}
	return merged, nil
}

func (j *Job[I, K, V, O]) attemptMapTask(records []I, taskIdx, attempt int, local map[K][]V, count *int64) error {
	if fe := j.Config.FailureEveryN; fe > 0 && attempt == 0 && taskIdx%fe == 0 {
		return errInjected
	}
	emit := func(k K, v V) {
		local[k] = append(local[k], v)
		*count++
	}
	for _, rec := range records {
		j.Map(rec, emit)
	}
	return nil
}

// runReducePhase executes one reduce task per key, in parallel, with keys
// pre-sorted for deterministic output ordering.
func (j *Job[I, K, V, O]) runReducePhase(groups map[K][]V, keys []K, met *Metrics) ([]O, error) {
	workers := j.Config.workers()
	results := make([][]O, len(keys))
	retries := make([]int64, len(keys))
	errs := make([]error, len(keys))

	var wg sync.WaitGroup
	keyCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ki := range keyCh {
				k := keys[ki]
				attempts := 0
				for {
					var outs []O
					err := j.attemptReduceTask(k, groups[k], ki, attempts, &outs)
					if err == nil {
						results[ki] = outs
						break
					}
					attempts++
					retries[ki]++
					if attempts > j.Config.maxRetries() {
						errs[ki] = fmt.Errorf("mr: reduce task %d of job %q failed after %d attempts: %w",
							ki, j.Name, attempts, err)
						break
					}
				}
			}
		}()
	}
	for ki := range keys {
		keyCh <- ki
	}
	close(keyCh)
	wg.Wait()

	var outs []O
	for ki := range keys {
		if errs[ki] != nil {
			return nil, errs[ki]
		}
		met.ReduceRetries += retries[ki]
		outs = append(outs, results[ki]...)
	}
	return outs, nil
}

func (j *Job[I, K, V, O]) attemptReduceTask(key K, values []V, taskIdx, attempt int, outs *[]O) error {
	if fe := j.Config.FailureEveryN; fe > 0 && attempt == 0 && taskIdx%fe == 0 {
		return errInjected
	}
	j.Reduce(key, values, func(o O) { *outs = append(*outs, o) })
	return nil
}

func (j *Job[I, K, V, O]) recordWorkerSkew(groups map[K][]V, keys []K, met *Metrics) {
	nw := j.Config.ReduceWorkersHint
	if nw <= 0 {
		return
	}
	part := j.Partition
	if part == nil {
		part = func(k K) int { return defaultPartition(k, nw) }
	}
	met.WorkerInputs = make([]int64, nw)
	for _, k := range keys {
		w := part(k) % nw
		if w < 0 {
			w += nw
		}
		met.WorkerInputs[w] += int64(len(groups[k]))
	}
}

// defaultPartition hashes the formatted key with FNV-1a.
func defaultPartition[K comparable](k K, nw int) int {
	s := fmt.Sprint(k)
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h % uint32(nw))
}

// sortedKeys returns the map's keys in a stable deterministic order: fast
// paths for integer and string keys, fmt-based ordering otherwise.
func sortedKeys[K comparable, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	switch ks := any(keys).(type) {
	case []int:
		sort.Ints(ks)
	case []int64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []uint64:
		sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	case []string:
		sort.Strings(ks)
	default:
		sort.Slice(keys, func(a, b int) bool {
			return fmt.Sprint(keys[a]) < fmt.Sprint(keys[b])
		})
	}
	return keys
}
