// Package mr implements a small but complete in-process MapReduce runtime.
//
// The runtime exists so that the mapping schemas of Afrati, Das Sarma,
// Salihoglu and Ullman, "Upper and Lower Bounds on the Cost of a Map-Reduce
// Computation" (VLDB 2013), can be executed rather than merely analyzed: a
// Job runs a map phase, a shuffle, and a reduce phase over real data, while
// Metrics records exactly the quantities the paper reasons about — the
// number of key-value pairs communicated between the phases (from which the
// replication rate is derived) and the number of inputs each reducer
// receives (the paper's reducer size q).
//
// The engine is deliberately faithful to the paper's cost model rather than
// to any particular distributed implementation: mappers work on input
// records independently, every emitted pair is counted as communication,
// and a "reducer" is one reduce key together with its list of values.
// Parallelism is real (worker goroutines), and the engine supports
// combiners, custom partitioners, multi-round pipelines, and deterministic
// fault injection with task retry, so that tests can exercise the
// fault-tolerance path that defines MapReduce.
//
// Execution happens on the partitioned shuffle executor (internal/engine
// over internal/shuffle): map tasks pre-bucket their output into P hash
// partitions, the exchange merges one goroutine per partition, and reduce
// partitions — not single keys — are scheduled onto workers with the LPT
// balancer of the paper's footnote 4. Job is the stable typed veneer over
// that subsystem; its outputs remain in global deterministic key order and
// its Metrics additionally expose the per-partition profile of the real
// exchange.
//
// Reproducibility contract: outputs and the paper's logical quantities
// (pairs emitted/shuffled, reducers, max q, replication rate, reducer
// loads) are identical across runs. The *physical* profile — which key
// lands in which partition, and therefore Metrics.Partitions, Makespan,
// WorkerInputs under the default partitioner, and retry counts under
// fault injection — depends on the shuffle's per-process hash seed, as
// in a real cluster. Pin ShufflePartition (and Partition) for a fully
// reproducible exchange, or shuffle.WithSeed in tests that assert on
// the physical profile.
package mr

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shuffle"
)

// Pair is a single key-value pair emitted by a map task.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// MapFunc transforms one input record into zero or more key-value pairs.
// It must be deterministic and side-effect free: the engine may re-execute
// it when fault injection is enabled.
type MapFunc[I any, K comparable, V any] func(in I, emit func(K, V))

// ReduceFunc processes one reduce key together with all values that were
// emitted for it, producing zero or more output records. Like MapFunc it
// must be deterministic so that retried tasks produce identical results.
type ReduceFunc[K comparable, V, O any] func(key K, values []V, emit func(O))

// CombineFunc optionally pre-aggregates the values for one key inside a
// single map task before shuffle, reducing communication. It must be
// semantically transparent: reduce(k, combine(vs)) == reduce(k, vs).
type CombineFunc[K comparable, V any] func(key K, values []V) []V

// Config controls the execution of a Job.
type Config struct {
	// Workers is the number of parallel map (and reduce) workers.
	// Zero means runtime.NumCPU().
	Workers int

	// MapChunk is the number of input records grouped into one map task.
	// Zero means an automatic chunk size targeting ~4 tasks per worker.
	MapChunk int

	// Partitions is the number of shuffle partitions the executor fans
	// the key space into; reduce partitions are the unit of scheduling.
	// The effective count is rounded up to a power of two (so Metrics
	// may report more partitions than requested). Zero or negative
	// selects shuffle.DefaultPartitions().
	Partitions int

	// MemoryBudget is the per-partition memory budget, in buffered
	// pairs: a shuffle partition whose live buffer reaches the budget
	// seals its run, so live buffered pairs never exceed the budget.
	// Together with SpillDir this makes datasets much larger than
	// memory executable; alone it reports spill pressure with sealed
	// runs kept in memory. MaxBufferedPairs is the older alias for the
	// same knob, honored when MemoryBudget is zero.
	MemoryBudget     int
	MaxBufferedPairs int

	// SpillDir, when set together with MemoryBudget, directs sealed
	// runs to temp run files under this directory (deleted when the
	// job finishes). Reduce partitions then stream a k-way merge over
	// disk and live runs instead of materializing the partition.
	// SpillDir without a budget is a configuration error, and spilling
	// requires a key type whose equality survives an encode/decode
	// round trip (no pointer, interface or channel fields).
	SpillDir string

	// CompactionConcurrency sizes the background worker pool that
	// compacts spill runs while streaming ingestion continues: zero
	// selects the runtime default, negative compacts inline with
	// sealing. SpoolRotateBytes bounds how many dead (compacted or
	// aborted) bytes a spill spool file may accumulate before the
	// runtime rotates it and reclaims the disk mid-job: zero selects
	// the default threshold, negative disables rotation. Both are
	// physical-profile knobs; outputs never depend on them.
	CompactionConcurrency int
	SpoolRotateBytes      int64

	// ReduceWorkersHint, when positive, partitions reduce keys into this
	// many logical reduce workers for the per-worker skew metrics. It does
	// not change results, only Metrics.WorkerInputs.
	ReduceWorkersHint int

	// ReduceSplitPairs, when positive, splits reduce partitions heavier
	// than this many pairs into class-aligned key-range units that merge
	// and reduce concurrently (planned from the resident run indexes).
	// Outputs are byte-identical to the unsplit round; only scheduling
	// granularity changes. ReduceRangeConcurrency caps how many ranges
	// one partition may split into; zero selects the worker count. Both
	// apply in ProcMode too, where each reduce worker splits its own
	// partition merge the same way.
	ReduceSplitPairs       int
	ReduceRangeConcurrency int

	// MaxReducerInput, when positive, makes the job fail if any reduce key
	// receives more than this many values. It enforces the paper's reducer
	// size limit q at runtime.
	MaxReducerInput int

	// RecordLoads, when true, stores every reducer's input size in
	// Metrics.ReducerLoads (in sorted key order), for downstream
	// scheduling and cost simulation.
	RecordLoads bool

	// FailureEveryN, when positive, deterministically fails each task's
	// first attempt whenever the task index is divisible by FailureEveryN.
	// Failed tasks are retried up to MaxRetries times. This exercises the
	// engine's fault-tolerance path without nondeterminism. Reduce tasks
	// are shuffle partitions; their index counts non-empty partitions in
	// ascending order.
	FailureEveryN int

	// MaxRetries is the number of retries granted to a failing task.
	// Zero means 2 when FailureEveryN is set.
	MaxRetries int

	// LegacyMerge opts the job out of streaming shuffle ingestion (map
	// workers flushing blocks into the exchange while mapping) and back
	// onto the collect-then-merge barrier. Outputs, PairsEmitted,
	// Reducers and MaxReducerInput are identical either way; only the
	// physical profile (resident memory, spill timing) differs. With a
	// Combine func, PairsShuffled — a post-combine count — depends on
	// where the combiner was applied and, like spill-on vs spill-off,
	// is comparable only within one configuration. Intended for tests
	// and benchmarks comparing the two data paths.
	LegacyMerge bool

	// Recorder, when non-nil, captures the job's round as a timeline:
	// phase boundaries, per-worker map/reduce task spans, and the
	// shuffle's seal/fence/compaction/merge activity per partition.
	// Export after Run with obs.WriteTrace (Chrome trace JSON) or feed
	// the job's Metrics to a registry with Metrics.PublishTo. Nil (the
	// default) records nothing and costs nothing on the data path.
	Recorder *obs.Recorder

	// ProcMode executes the job across worker operating-system
	// processes (internal/proc) instead of goroutines: Workers becomes
	// a process count, the shuffle becomes per-partition spool files on
	// disk, and the run survives kill -9 of workers mid-round via
	// lease fencing and manifest salvage. The job must be registered
	// with RegisterProc in both the driver and worker binaries (by
	// default the same binary, re-executed; see proc.MaybeWorker).
	// Workers, MapChunk, Partitions, MaxReducerInput, MemoryBudget and
	// Recorder carry over — each map worker runs its own streaming
	// shuffle under the budget, sealing sorted spool sections mid-task,
	// and reduce workers merge-read the committed sections, so worker
	// residency obeys the same bound the in-process engine proves
	// (Metrics.PeakResidentPairs reports the worst attempt). Spilling
	// needs no SpillDir here: the spool files ARE the spill. Remaining
	// in-process knobs (SpillDir, CompactionConcurrency, LegacyMerge,
	// FailureEveryN, ...) do not apply in this mode. Outputs are
	// identical either way.
	ProcMode bool
	// ProcWorkerCommand is the argv spawned per worker process in
	// ProcMode. Empty re-executes the current binary.
	ProcWorkerCommand []string
	// ProcLeaseTTL is the task-lease heartbeat deadline in ProcMode:
	// a worker silent this long is fenced and its task re-granted.
	// Zero selects the proc default (2s).
	ProcLeaseTTL time.Duration
	// ProcDir is the ProcMode scratch directory (spools, manifests,
	// socket). Empty uses a private temp dir removed after the run.
	ProcDir string
	// ProcTimeout bounds a ProcMode run. Zero selects the proc
	// default (2 minutes).
	ProcTimeout time.Duration
}

// Metrics records the communication profile of one executed round. All
// counts refer to logical records, matching the paper's convention that
// communication cost is measured in key-value pairs.
type Metrics struct {
	// MapInputs is the number of input records consumed by the map phase.
	MapInputs int64
	// PairsEmitted is the number of key-value pairs produced by map tasks
	// before any combiner ran. This is the paper's communication cost.
	PairsEmitted int64
	// PairsShuffled is the number of pairs actually sent to the reduce
	// phase, after combining. Equal to PairsEmitted without a combiner.
	PairsShuffled int64
	// Reducers is the number of distinct reduce keys ("reducers" in the
	// paper's sense: a key plus its list of values).
	Reducers int64
	// MaxReducerInput is the largest number of values any one reduce key
	// received — the realized reducer size q.
	MaxReducerInput int64
	// TotalReducerInput is the sum over reducers of their input sizes;
	// equal to PairsShuffled.
	TotalReducerInput int64
	// Outputs is the number of records produced by the reduce phase.
	Outputs int64
	// MapRetries and ReduceRetries count task re-executions triggered by
	// fault injection (in-process) or by worker death, lease expiry and
	// speculation (ProcMode). TaskRetries is their sum — the round's
	// total re-grants beyond each task's first attempt.
	MapRetries    int64
	ReduceRetries int64
	TaskRetries   int64
	// WorkerDeaths counts worker processes that exited without being
	// asked to, and LeaseExpirations counts task leases the driver
	// fenced after missed heartbeats. Both are ProcMode fault-tolerance
	// counters; in-process rounds leave them zero.
	WorkerDeaths     int64
	LeaseExpirations int64
	// SalvagedTasks counts ProcMode map tasks whose committed output
	// was adopted from a dead worker's manifest instead of re-executed.
	SalvagedTasks int64
	// WorkerInputs, when ReduceWorkersHint was set, is the number of
	// values routed to each logical reduce worker (for skew analysis).
	WorkerInputs []int64
	// ReducerLoads, when Config.RecordLoads was set, holds every
	// reducer's input size in sorted key order.
	ReducerLoads []int

	// Partitions is the per-partition profile of the real exchange: the
	// pairs, distinct keys, largest key group, and assigned reduce
	// worker of every shuffle partition. Under the default hash
	// placement the profile varies with the per-process seed (see the
	// package's reproducibility contract).
	Partitions []engine.PartitionStat
	// Makespan is the heaviest reduce worker's pair load under the LPT
	// partition schedule; IdealMakespan is the load-balance floor.
	Makespan      int64
	IdealMakespan int64
	// SpillEvents and SpilledPairs report bounded-memory pressure when
	// a memory budget was set. BytesSpilled and RunsMerged report the
	// realized disk traffic and reduce-time merge width when SpillDir
	// made the spills real; with a Combine func the spilled volume
	// tracks the post-combine communication cost, since the combiner
	// is also applied inside the shuffle whenever a run seals.
	// DiskBytesRead is the total read back from spill files over the
	// round — profiling is index-backed and memory-only, so this
	// measures the reduce-time merge alone. MaxLivePairs is the
	// high-water mark of any partition's live buffer — under a budget
	// it never exceeds the budget, which is the runtime's
	// bounded-memory guarantee.
	// IndexBytesSpilled is the footer-index metadata written alongside
	// BytesSpilled (run-file format v2); total spill file bytes are
	// the sum of the two.
	SpillEvents       int64
	SpilledPairs      int64
	BytesSpilled      int64
	IndexBytesSpilled int64
	RunsMerged        int64
	DiskBytesRead     int64
	// SwapBytes is pressure-relief traffic the streaming path staged to
	// swap stash files and read back verbatim — bookkeeping, reported
	// separately so BytesSpilled stays the deterministic communication
	// cost. BytesReclaimed is the total size of spill files deleted
	// while the job was still running (spool rotation, compaction
	// retiring inputs): disk returned before teardown.
	SwapBytes      int64
	BytesReclaimed int64
	MaxLivePairs   int
	// PeakResidentPairs is the whole-round high-water mark of pairs
	// resident in shuffle memory. On the default streaming path with a
	// SpillDir it stays bounded by P*MemoryBudget plus one block per
	// map worker — the dataset size never enters the bound.
	// SpillOverlapNs is shuffle absorb/seal/spill work that overlapped
	// still-running map tasks; FinishDrainNs is the residual post-map
	// drain. Both are zero under Config.LegacyMerge.
	PeakResidentPairs int64
	SpillOverlapNs    int64
	FinishDrainNs     int64
	// ReduceRanges is how many key-range units split partitions were cut
	// into under Config.ReduceSplitPairs (zero when splitting was off or
	// no partition crossed the threshold). ReduceRangeSkew is max/mean
	// planned pair load across those range units.
	ReduceRanges    int64
	ReduceRangeSkew float64
	// ReducerInputLog2 is the log2-bucketed distribution of reducer
	// input sizes — the paper's q distribution as realized by this
	// round. Bucket i counts the reducers whose input size lies in
	// [2^i, 2^(i+1)); the slice is trimmed after the last non-empty
	// bucket.
	ReducerInputLog2 []int64
}

// ReplicationRate is the average number of key-value pairs created per map
// input: the paper's replication rate r for this round.
func (m Metrics) ReplicationRate() float64 {
	if m.MapInputs == 0 {
		return 0
	}
	return float64(m.PairsEmitted) / float64(m.MapInputs)
}

// ShuffledReplicationRate is the replication rate after combining.
func (m Metrics) ShuffledReplicationRate() float64 {
	if m.MapInputs == 0 {
		return 0
	}
	return float64(m.PairsShuffled) / float64(m.MapInputs)
}

// MeanReducerInput is the average reducer input size.
func (m Metrics) MeanReducerInput() float64 {
	if m.Reducers == 0 {
		return 0
	}
	return float64(m.TotalReducerInput) / float64(m.Reducers)
}

// PartitionSkew is the heaviest partition's pair count over the mean
// (1 = perfectly even exchange, 0 = empty).
func (m Metrics) PartitionSkew() float64 {
	return engine.Metrics{Partitions: m.Partitions, PairsShuffled: m.PairsShuffled}.PartitionSkew()
}

// String renders a one-line summary suitable for harness output: the
// logical quantities of LogicalString followed by the physical profile
// of the round — partition skew, spilled and re-read disk bytes, the
// resident-memory high-water mark, and how much spill work overlapped
// mapping. The physical fields depend on the per-process hash seed and
// on wall-clock timing; output that must be byte-reproducible across
// runs (the examples, golden files) prints LogicalString instead.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"%s skew=%.2f spilled=%dB read=%dB peakResident=%d overlap=%dms retries=%d deaths=%d leasesExpired=%d",
		m.LogicalString(), m.PartitionSkew(), m.BytesSpilled, m.DiskBytesRead,
		m.PeakResidentPairs, m.SpillOverlapNs/1e6,
		m.TaskRetries, m.WorkerDeaths, m.LeaseExpirations)
}

// LogicalString renders only the paper's logical quantities — inputs,
// pairs emitted, reducers, realized q, replication rate — which are
// identical on every run of the same job regardless of hash seed,
// worker count, or timing.
func (m Metrics) LogicalString() string {
	return fmt.Sprintf("inputs=%d pairs=%d reducers=%d maxq=%d r=%.4f",
		m.MapInputs, m.PairsEmitted, m.Reducers, m.MaxReducerInput, m.ReplicationRate())
}

// PublishTo folds the round's metrics into a metrics registry:
// cumulative counters accumulate across rounds (counts, spilled and
// re-read bytes, retries, overlap time), per-round gauges overwrite
// with this round's profile (reducers, realized q, replication rate,
// skew, makespan, resident peak), and the reducer-input histogram
// receives the round's q distribution. Metric names are stable; see
// the README's observability section for the full reference. Safe to
// call once per round from the process that scrapes or serves reg
// (obs.Serve mounts it on /metrics).
func (m Metrics) PublishTo(reg *obs.Registry) {
	reg.Counter("mr_rounds_total", "map-reduce rounds executed").Add(1)
	reg.Counter("mr_map_inputs_total", "input records consumed by map phases").Add(m.MapInputs)
	reg.Counter("mr_pairs_emitted_total", "key-value pairs emitted by map tasks (pre-combine communication cost)").Add(m.PairsEmitted)
	reg.Counter("mr_pairs_shuffled_total", "pairs crossing the exchange post-combine").Add(m.PairsShuffled)
	reg.Counter("mr_outputs_total", "records produced by reduce phases").Add(m.Outputs)
	reg.Counter("mr_map_retries_total", "map task re-executions").Add(m.MapRetries)
	reg.Counter("mr_reduce_retries_total", "reduce task re-executions").Add(m.ReduceRetries)
	reg.Counter("mr_task_retries_total", "task re-grants beyond each task's first attempt").Add(m.TaskRetries)
	reg.Counter("mr_worker_deaths_total", "worker processes that died mid-job (ProcMode)").Add(m.WorkerDeaths)
	reg.Counter("mr_lease_expired_total", "task leases fenced after missed heartbeats (ProcMode)").Add(m.LeaseExpirations)
	reg.Counter("mr_tasks_salvaged_total", "map tasks adopted from dead workers' manifests (ProcMode)").Add(m.SalvagedTasks)
	reg.Counter("mr_spill_events_total", "shuffle runs sealed under memory pressure").Add(m.SpillEvents)
	reg.Counter("mr_spilled_pairs_total", "pairs written to sealed runs").Add(m.SpilledPairs)
	reg.Counter("mr_bytes_spilled_total", "run data bytes written to spill files").Add(m.BytesSpilled)
	reg.Counter("mr_index_bytes_spilled_total", "footer-index bytes written to spill files").Add(m.IndexBytesSpilled)
	reg.Counter("mr_disk_bytes_read_total", "bytes read back from spill files").Add(m.DiskBytesRead)
	reg.Counter("mr_swap_bytes_total", "pressure-relief bytes staged to swap stash files").Add(m.SwapBytes)
	reg.Counter("mr_bytes_reclaimed_total", "spill file bytes deleted while the job was still running").Add(m.BytesReclaimed)
	reg.Counter("mr_spill_overlap_ns_total", "nanoseconds of spill work overlapped with mapping").Add(m.SpillOverlapNs)
	reg.Counter("mr_finish_drain_ns_total", "nanoseconds spent in the post-map finish drain").Add(m.FinishDrainNs)

	reg.Gauge("mr_round_reducers", "distinct reduce keys of the last round").Set(float64(m.Reducers))
	reg.Gauge("mr_round_max_reducer_input", "largest reducer input of the last round (realized q)").Set(float64(m.MaxReducerInput))
	reg.Gauge("mr_round_replication_rate", "pairs emitted per map input of the last round (the paper's r)").Set(m.ReplicationRate())
	reg.Gauge("mr_round_partition_skew", "max/mean partition pairs of the last round").Set(m.PartitionSkew())
	reg.Gauge("mr_round_makespan_pairs", "heaviest reduce worker load of the last round, in pairs").Set(float64(m.Makespan))
	reg.Gauge("mr_round_peak_resident_pairs", "whole-round high-water mark of shuffle-resident pairs").Set(float64(m.PeakResidentPairs))
	reg.Gauge("mr_round_max_live_pairs", "high-water mark of any partition's live buffer in the last round").Set(float64(m.MaxLivePairs))
	reg.Gauge("mr_round_reduce_ranges", "key-range units split partitions were cut into in the last round").Set(float64(m.ReduceRanges))
	reg.Gauge("mr_round_reduce_range_skew", "max/mean planned pair load across range units of the last round").Set(m.ReduceRangeSkew)

	h := reg.Histogram("mr_reducer_input_size", "reducer input sizes (the paper's q distribution), log2 buckets", 32)
	for i, n := range m.ReducerInputLog2 {
		h.ObserveN(int64(1)<<i, n)
	}
}

// Job is a single-round MapReduce computation from inputs of type I,
// through keys K and values V, to outputs of type O.
type Job[I any, K comparable, V, O any] struct {
	Name    string
	Map     MapFunc[I, K, V]
	Reduce  ReduceFunc[K, V, O]
	Combine CombineFunc[K, V] // optional
	// ReduceBatch, when set, replaces Reduce and opts the job into the
	// executor's batch reduce path: each spilled key group's value
	// section is read in one pass and decoded into a reused scratch
	// slice, so the values slice is valid only during the call — the
	// function must not retain it (copy to keep). Outputs are
	// identical to Reduce; only the allocation contract differs.
	// Reduce remains the compatible default for functions that read
	// their values after the call returns.
	ReduceBatch ReduceFunc[K, V, O]
	// Partition maps a key to a logical reduce worker in
	// [0, ReduceWorkersHint). Optional; defaults to a modular maphash of
	// the key. It affects only Metrics.WorkerInputs.
	Partition func(K) int
	// ShufflePartition, when set, overrides hash placement of keys onto
	// the executor's shuffle partitions, reduced modulo the effective
	// partition count (Config.Partitions rounded up to a power of two).
	// Schemas with an explicit reducer layout, and tests that need to
	// pin a key to a partition, use this. It does not change outputs,
	// only the physical exchange.
	ShufflePartition func(K) int
	Config           Config
}

// ErrReducerOverflow is returned (wrapped) when a reduce key exceeds the
// configured MaxReducerInput.
var ErrReducerOverflow = errors.New("mr: reducer input exceeds configured maximum")

// Run executes the job over inputs and returns the reduce outputs together
// with the round's metrics. Output order is deterministic: reduce keys are
// processed in a stable sorted order (numeric for the number kinds, byte
// order for strings, formatted order otherwise), and within a key the
// outputs appear in emission order. Execution happens on the partitioned
// shuffle executor; the returned Metrics carry its per-partition profile.
func (j *Job[I, K, V, O]) Run(inputs []I) ([]O, Metrics, error) {
	if j.Config.ProcMode {
		return j.runProc(inputs)
	}
	round := engine.Round[I, K, V, O]{
		Name:        j.Name,
		Map:         engine.MapFunc[I, K, V](j.Map),
		Reduce:      engine.ReduceFunc[K, V, O](j.Reduce),
		Partitioner: j.ShufflePartition,
		Config: engine.Config{
			Workers:                j.Config.Workers,
			MapChunk:               j.Config.MapChunk,
			Partitions:             j.Config.Partitions,
			MemoryBudget:           j.Config.MemoryBudget,
			MaxBufferedPairs:       j.Config.MaxBufferedPairs,
			SpillDir:               j.Config.SpillDir,
			CompactionConcurrency:  j.Config.CompactionConcurrency,
			SpoolRotateBytes:       j.Config.SpoolRotateBytes,
			MaxReducerInput:        j.Config.MaxReducerInput,
			ReduceSplitPairs:       j.Config.ReduceSplitPairs,
			ReduceRangeConcurrency: j.Config.ReduceRangeConcurrency,
			RecordLoads:            j.Config.RecordLoads,
			RecordKeys:             j.Config.ReduceWorkersHint > 0,
			FailureEveryN:          j.Config.FailureEveryN,
			MaxRetries:             j.Config.MaxRetries,
			LegacyMerge:            j.Config.LegacyMerge,
			Recorder:               j.Config.Recorder,
		},
	}
	if j.Combine != nil {
		round.Combine = engine.CombineFunc[K, V](j.Combine)
	}
	if j.ReduceBatch != nil {
		round.ReduceBatch = engine.ReduceFunc[K, V, O](j.ReduceBatch)
	}

	res, err := engine.Run(round, inputs)
	met := Metrics{
		MapInputs:         res.Metrics.MapInputs,
		PairsEmitted:      res.Metrics.PairsEmitted,
		PairsShuffled:     res.Metrics.PairsShuffled,
		Reducers:          res.Metrics.Reducers,
		MaxReducerInput:   res.Metrics.MaxReducerInput,
		TotalReducerInput: res.Metrics.TotalReducerInput,
		Outputs:           res.Metrics.Outputs,
		MapRetries:        res.Metrics.MapRetries,
		ReduceRetries:     res.Metrics.ReduceRetries,
		TaskRetries:       res.Metrics.MapRetries + res.Metrics.ReduceRetries,
		Partitions:        res.Metrics.Partitions,
		Makespan:          res.Metrics.Makespan,
		IdealMakespan:     res.Metrics.IdealMakespan,
		SpillEvents:       res.Metrics.SpillEvents,
		SpilledPairs:      res.Metrics.SpilledPairs,
		BytesSpilled:      res.Metrics.BytesSpilled,
		IndexBytesSpilled: res.Metrics.IndexBytesSpilled,
		RunsMerged:        res.Metrics.RunsMerged,
		DiskBytesRead:     res.Metrics.DiskBytesRead,
		SwapBytes:         res.Metrics.SwapBytes,
		BytesReclaimed:    res.Metrics.BytesReclaimed,
		MaxLivePairs:      res.Metrics.MaxLivePairs,
		PeakResidentPairs: res.Metrics.PeakResidentPairs,
		SpillOverlapNs:    res.Metrics.SpillOverlapNs,
		FinishDrainNs:     res.Metrics.FinishDrainNs,
		ReduceRanges:      res.Metrics.ReduceRanges,
		ReduceRangeSkew:   res.Metrics.ReduceRangeSkew,
		ReducerInputLog2:  res.Metrics.ReducerInputLog2,
	}
	if j.Config.RecordLoads {
		met.ReducerLoads = res.Loads
	}
	if err != nil {
		if errors.Is(err, engine.ErrReducerOverflow) {
			return nil, met, fmt.Errorf("%w: job %q saw reducer with %d inputs, limit %d",
				ErrReducerOverflow, j.Name, met.MaxReducerInput, j.Config.MaxReducerInput)
		}
		return nil, met, err
	}
	j.recordWorkerSkew(res.Keys, res.Loads, &met)
	return res.Outputs, met, nil
}

// recordWorkerSkew routes each reducer's load to its logical reduce
// worker for the Metrics.WorkerInputs skew profile.
func (j *Job[I, K, V, O]) recordWorkerSkew(keys []K, loads []int, met *Metrics) {
	nw := j.Config.ReduceWorkersHint
	if nw <= 0 {
		return
	}
	part := j.Partition
	if part == nil {
		part = func(k K) int { return defaultPartition(k, nw) }
	}
	met.WorkerInputs = make([]int64, nw)
	for i, k := range keys {
		w := part(k) % nw
		if w < 0 {
			w += nw
		}
		met.WorkerInputs[w] += int64(loads[i])
	}
}

// defaultPartition hashes the key with the runtime's typed maphash fast
// path (no formatting, boxing, or reflection — unlike the seed's
// fmt.Sprint + FNV-1a of the formatted key).
func defaultPartition[K comparable](k K, nw int) int {
	return int(shuffle.NewHasher[K]().Hash(k) % uint64(nw))
}

// sortedKeys returns the map's keys in the runtime's canonical
// deterministic order: typed fast paths for the number kinds and
// strings, format-once ordering otherwise (see shuffle.SortKeys).
func sortedKeys[K comparable, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	shuffle.SortKeys(keys)
	return keys
}
