//go:build linux || darwin

package runfile

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// hasMmap gates the OSFS Mapper implementation; tests use it to skip
// mapping assertions on platforms compiled with the stub.
const hasMmap = true

func sysMmap(f *os.File, length int64) ([]byte, error) {
	if length > math.MaxInt32 && ^uint(0)>>32 == 0 {
		return nil, fmt.Errorf("runfile: %d-byte mapping exceeds address space", length)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
}

func sysMadvise(data []byte) error {
	// Merges sweep each run forward; tell readahead so.
	return syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}

func sysMunmap(data []byte) error { return syscall.Munmap(data) }
