// Typed encoding of Go keys and values onto run-file byte strings.
//
// The codec has a fast path for every kind the shuffle sorts natively
// (the integer kinds, floats, bools, strings and byte slices): fixed
// little-endian or raw-byte layouts with no per-item framing, since the
// run-file layer already length-prefixes each item. Fixed-width types
// that the switch does not name — structs of fixed-width exported
// fields, named scalar types — use a compiled per-type copy plan
// (fixed.go) with no per-value reflection. Every other type
// falls back to encoding/gob, one self-describing stream per item —
// more bytes, but spilled runs of struct keys (matrix cells, graph
// edges) round-trip without registration. Types gob cannot encode
// (for example structs with only unexported fields) surface an error,
// which the shuffle reports as a failed spill rather than silently
// corrupting a run.
package runfile

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"unsafe"
)

// CanRoundTripIdentity reports whether values of type T preserve
// equality through Append/Decode. Two ways a type can fail: the gob
// fallback decodes pointers (and pointer-bearing struct fields,
// interfaces, channels) into fresh allocations, so two spilled
// occurrences of the same key would compare unequal after decode; and
// gob silently drops unexported struct fields, so keys differing only
// there would collapse into one. Callers that group decoded values by
// == — the shuffle's spill path gates its key type on this — must
// reject such types up front.
func CanRoundTripIdentity[T any]() error {
	t := reflect.TypeOf((*T)(nil)).Elem()
	return checkIdentity(t, t)
}

// CanRoundTripFidelity reports whether values of type T survive
// Append/Decode without silent data loss. Unlike identity, fidelity
// tolerates pointers, slices and maps (gob rebuilds them faithfully)
// and flags only the silent failure mode: unexported struct fields,
// which gob drops without error whenever the struct also has an
// exported field. Types gob rejects outright (channels, funcs,
// unregistered interfaces) are not flagged here — they fail loudly at
// encode time. The shuffle gates its value type on this before
// spilling.
func CanRoundTripFidelity[T any]() error {
	t := reflect.TypeOf((*T)(nil)).Elem()
	return checkFidelity(t, t, map[reflect.Type]bool{})
}

func checkFidelity(t, root reflect.Type, seen map[reflect.Type]bool) error {
	if seen[t] {
		return nil
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				return fmt.Errorf("runfile: unexported field %s.%s (in %v) is silently dropped by gob",
					t, f.Name, root)
			}
			if err := checkFidelity(f.Type, root, seen); err != nil {
				return err
			}
		}
		return nil
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return checkFidelity(t.Elem(), root, seen)
	case reflect.Map:
		if err := checkFidelity(t.Key(), root, seen); err != nil {
			return err
		}
		return checkFidelity(t.Elem(), root, seen)
	default:
		return nil
	}
}

func checkIdentity(t, root reflect.Type) error {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128, reflect.String:
		return nil
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				return fmt.Errorf("runfile: unexported field %s.%s (in %v) is dropped by gob and breaks == across encode/decode",
					t, f.Name, root)
			}
			if err := checkIdentity(f.Type, root); err != nil {
				return err
			}
		}
		return nil
	case reflect.Array:
		return checkIdentity(t.Elem(), root)
	default:
		// Pointer, interface and channel (maps, slices and funcs are
		// not comparable, so they cannot reach here as key types).
		return fmt.Errorf("runfile: type %v (in %v) does not preserve == across encode/decode", t, root)
	}
}

// Append encodes v and appends its byte representation to dst.
func Append[T any](dst []byte, v T) ([]byte, error) {
	switch x := any(v).(type) {
	case int:
		return binary.AppendVarint(dst, int64(x)), nil
	case int8:
		return binary.AppendVarint(dst, int64(x)), nil
	case int16:
		return binary.AppendVarint(dst, int64(x)), nil
	case int32:
		return binary.AppendVarint(dst, int64(x)), nil
	case int64:
		return binary.AppendVarint(dst, x), nil
	case uint:
		return binary.AppendUvarint(dst, uint64(x)), nil
	case uint8:
		return binary.AppendUvarint(dst, uint64(x)), nil
	case uint16:
		return binary.AppendUvarint(dst, uint64(x)), nil
	case uint32:
		return binary.AppendUvarint(dst, uint64(x)), nil
	case uint64:
		return binary.AppendUvarint(dst, x), nil
	case uintptr:
		return binary.AppendUvarint(dst, uint64(x)), nil
	case float32:
		return binary.LittleEndian.AppendUint32(dst, math.Float32bits(x)), nil
	case float64:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(x)), nil
	case bool:
		if x {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case string:
		return append(dst, x...), nil
	case []byte:
		return append(dst, x...), nil
	default:
		if plan := fixedPlanFor[T](); plan != nil {
			// Fixed-width fast path: replay the type's compiled plan —
			// no reflection per value, no gob type descriptors.
			return plan.appendTo(dst, fixedPtr(&v)), nil
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return nil, fmt.Errorf("runfile: cannot encode %T: %w", v, err)
		}
		return append(dst, buf.Bytes()...), nil
	}
}

// Decode reconstructs a value of type T from bytes produced by Append.
// Its typed switch is mirrored by DecodeBatch in batch.go (one
// dispatch per batch instead of per value); layout changes must land
// in both — TestDecodeBatchKinds pins their agreement.
func Decode[T any](data []byte) (T, error) {
	// The fast paths dispatch on (*T)(nil) and build their result in a
	// case-local value reinterpreted by castTo: a type switch on
	// any(&out) would force out — and so every decoded key and value on
	// the merge and swap-readback paths — through the heap.
	switch any((*T)(nil)).(type) {
	case *int:
		x, err := decodeVarint(data)
		return castTo[T](int(x)), err
	case *int8:
		x, err := decodeVarint(data)
		return castTo[T](int8(x)), err
	case *int16:
		x, err := decodeVarint(data)
		return castTo[T](int16(x)), err
	case *int32:
		x, err := decodeVarint(data)
		return castTo[T](int32(x)), err
	case *int64:
		x, err := decodeVarint(data)
		return castTo[T](x), err
	case *uint:
		x, err := decodeUvarint(data)
		return castTo[T](uint(x)), err
	case *uint8:
		x, err := decodeUvarint(data)
		return castTo[T](uint8(x)), err
	case *uint16:
		x, err := decodeUvarint(data)
		return castTo[T](uint16(x)), err
	case *uint32:
		x, err := decodeUvarint(data)
		return castTo[T](uint32(x)), err
	case *uint64:
		x, err := decodeUvarint(data)
		return castTo[T](x), err
	case *uintptr:
		x, err := decodeUvarint(data)
		return castTo[T](uintptr(x)), err
	case *float32:
		if len(data) != 4 {
			var out T
			return out, fmt.Errorf("runfile: float32 needs 4 bytes, got %d", len(data))
		}
		return castTo[T](math.Float32frombits(binary.LittleEndian.Uint32(data))), nil
	case *float64:
		if len(data) != 8 {
			var out T
			return out, fmt.Errorf("runfile: float64 needs 8 bytes, got %d", len(data))
		}
		return castTo[T](math.Float64frombits(binary.LittleEndian.Uint64(data))), nil
	case *bool:
		if len(data) != 1 {
			var out T
			return out, fmt.Errorf("runfile: bool needs 1 byte, got %d", len(data))
		}
		return castTo[T](data[0] != 0), nil
	case *string:
		return castTo[T](string(data)), nil
	case *[]byte:
		return castTo[T](append([]byte(nil), data...)), nil
	default:
		var out T
		if plan := fixedPlanFor[T](); plan != nil {
			if err := plan.decodeInto(data, fixedPtr(&out)); err != nil {
				return out, err
			}
			return out, nil
		}
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
			return out, fmt.Errorf("runfile: cannot decode %T: %w", out, err)
		}
		return out, nil
	}
}

// castTo reinterprets a fast-path case's concrete value as T. Sound
// only when U is exactly T (each switch case guarantees it); the copy
// through unsafe keeps the value out of the heap.
func castTo[T, U any](u U) T { return *(*T)(unsafe.Pointer(&u)) }

func decodeVarint(data []byte) (int64, error) {
	x, n := binary.Varint(data)
	if n <= 0 || n != len(data) {
		return 0, fmt.Errorf("runfile: invalid varint")
	}
	return x, nil
}

func decodeUvarint(data []byte) (uint64, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 || n != len(data) {
		return 0, fmt.Errorf("runfile: invalid uvarint")
	}
	return x, nil
}
